/**
 * @file
 * fdp_analyze: semantic static analysis for the FDP simulator.
 *
 * A self-contained C++20 analyzer (no libclang/clang-tidy/cppcheck
 * dependency) enforcing the repo's determinism, layering, and audit
 * contracts over a real token stream. See tools/analyze/checks.hh for
 * the rule catalog and DESIGN.md section 14 for the architecture.
 *
 * Usage:
 *   fdp_analyze [--root DIR]                 analyze, print findings
 *   fdp_analyze --root DIR --baseline FILE   gate on regressions only
 *   fdp_analyze --json FILE                  write fdp-findings-v1 JSON
 *   fdp_analyze --write-baseline FILE        snapshot current findings
 *   fdp_analyze --self-test [--corpus DIR]   prove checks non-vacuous
 *   fdp_analyze --list-checks                print the rule catalog
 *
 * Exit status: 0 clean (or baseline-covered), 1 findings/regressions/
 * self-test failures, 2 usage or I/O errors.
 */

#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyzer.hh"
#include "analyze/baseline.hh"
#include "analyze/checks.hh"

namespace
{

int
usage()
{
    std::cerr << "usage: fdp_analyze [--root DIR] [--baseline FILE]\n"
                 "                   [--json FILE] [--write-baseline FILE]\n"
                 "                   [--self-test] [--corpus DIR]\n"
                 "                   [--list-checks]\n";
    return 2;
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    out << content;
    out.flush();
    if (!out) {
        std::cerr << "fdp_analyze: cannot write " << path << "\n";
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace fdp::analyze;

    std::string root = ".";
    std::string baselinePath, jsonPath, writeBaselinePath, corpus;
    bool selfTest = false, listChecks = false;

    std::vector<std::string> args(argv + 1, argv + argc);
    for (std::size_t i = 0; i < args.size(); ++i) {
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= args.size()) {
                std::cerr << "fdp_analyze: " << flag << " needs a value\n";
                std::exit(usage());
            }
            return args[++i];
        };
        if (args[i] == "--root")
            root = value("--root");
        else if (args[i] == "--baseline")
            baselinePath = value("--baseline");
        else if (args[i] == "--json")
            jsonPath = value("--json");
        else if (args[i] == "--write-baseline")
            writeBaselinePath = value("--write-baseline");
        else if (args[i] == "--corpus")
            corpus = value("--corpus");
        else if (args[i] == "--self-test")
            selfTest = true;
        else if (args[i] == "--list-checks")
            listChecks = true;
        else
            return usage();
    }

    if (listChecks) {
        for (const CheckInfo &c : checkCatalog())
            std::cout << c.rule << "  -  " << c.summary << "\n";
        return 0;
    }

    try {
        if (selfTest) {
            if (corpus.empty())
                corpus = root + "/tests/analyze/corpus";
            return runSelfTest(corpus, std::cout) == 0 ? 0 : 1;
        }

        std::vector<Finding> findings = analyzeTree(root);

        if (!jsonPath.empty() &&
            !writeFile(jsonPath, toFindingsJson(findings)))
            return 2;
        if (!writeBaselinePath.empty()) {
            if (!writeFile(writeBaselinePath, toFindingsJson(findings)))
                return 2;
            std::cout << "fdp_analyze: wrote baseline ("
                      << findings.size() << " finding(s)) to "
                      << writeBaselinePath << "\n";
            return 0;
        }

        if (baselinePath.empty()) {
            printFindings(std::cout, findings);
            if (!findings.empty()) {
                std::cout << "fdp_analyze: " << findings.size()
                          << " finding(s)\n";
                return 1;
            }
            std::cout << "fdp_analyze: clean\n";
            return 0;
        }

        std::ifstream in(baselinePath, std::ios::binary);
        if (!in) {
            std::cerr << "fdp_analyze: cannot read baseline "
                      << baselinePath << "\n";
            return 2;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        std::vector<Finding> baseline;
        std::string err;
        if (!parseFindingsJson(buf.str(), &baseline, &err)) {
            std::cerr << "fdp_analyze: bad baseline " << baselinePath
                      << ": " << err << "\n";
            return 2;
        }

        BaselineDiff diff = diffAgainstBaseline(findings, baseline);
        if (!diff.fresh.empty()) {
            std::cout << "fdp_analyze: " << diff.fresh.size()
                      << " new finding(s) not covered by the baseline:\n";
            printFindings(std::cout, diff.fresh);
            std::cout << "fix them, suppress with a reason, or (for "
                         "pre-existing debt) add them to "
                      << baselinePath << "\n";
            return 1;
        }
        if (!diff.fixed.empty()) {
            std::cout << "fdp_analyze: " << diff.fixed.size()
                      << " baselined finding(s) no longer fire - shrink "
                      << baselinePath << ":\n";
            printFindings(std::cout, diff.fixed);
        }
        std::cout << "fdp_analyze: clean ("
                  << (findings.size() - diff.fresh.size())
                  << " baselined, " << diff.fixed.size()
                  << " fixable)\n";
        return 0;
    } catch (const std::exception &e) {
        std::cerr << "fdp_analyze: " << e.what() << "\n";
        return 2;
    }
}
