#!/usr/bin/env python3
"""Repo-specific lint for the FDP simulator.

Enforces conventions a generic linter cannot know:

  rng-only        all randomness goes through fdp::Rng: std::mt19937,
                  std::random_device, rand()/srand()/time() are banned
                  outside src/sim/rng.hh (determinism: a stray seed source
                  breaks reproducible simulations).
  no-raw-new      no raw new/delete; components own state via containers
                  and std::unique_ptr (`= delete` declarations are fine).
  logging-only    no printf-family calls in src/ outside sim/logging.hh
                  and sim/table.cc; everything else reports through
                  panic/fatal/warn/inform or writes to a std::ostream.
  include-guard   src/<dir>/<file>.hh uses guard FDP_<DIR>_<FILE>_HH.
  test-pairing    every src/<dir>/<file>.cc has tests/<dir>/test_<file>.cc.
  pool-only-threading
                  no raw std::thread/std::jthread/std::async or
                  pthread_create outside src/harness/sweep_pool.* — all
                  threading goes through the sweep pool so there is one
                  audited place where concurrency enters the simulator.
  file-io         no raw file I/O (std::ifstream/ofstream/fstream,
                  fopen/freopen/tmpfile) outside src/trace/ and
                  src/harness/reporting.* — trace files and results
                  files are the only artifacts the simulator touches,
                  and both ends must fatal() cleanly on I/O failure.
  typed-core-id   core identities travel as the typed CoreId
                  (sim/types.hh), never as raw integers: declaring a
                  core id with an integer type, or doing arithmetic on
                  .index(), is banned outside src/mc/ (the co-run
                  subsystem owns core enumeration). Using .index() to
                  subscript a per-core container or compare ids stays
                  legal everywhere.

Comments and string literals are stripped before the regex rules run, so
prose like "transfer time (bandwidth)" cannot trip the time() ban.

Usage:
  tools/fdp_lint.py [--root DIR]   lint the tree (exit 1 on findings)
  tools/fdp_lint.py --self-test    verify each rule catches a seeded
                                   violation (exit 1 on a vacuous rule)
"""

import argparse
import re
import sys
import tempfile
from pathlib import Path


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving newlines
    (and therefore line numbers) so findings point at real code."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


RNG_BAN = re.compile(
    r"std::mt19937(?:_64)?\b|std::random_device\b|std::minstd_rand\b"
    r"|\b(?:rand|srand|time)\s*\(")
NEW_BAN = re.compile(r"\bnew\b")
DELETED_DECL = re.compile(r"=\s*delete\b")
PRINTF_BAN = re.compile(
    r"\b(?:f|s|sn|v|vf|vs|vsn)?printf\s*\(|\bf?puts\s*\(|\bputchar\s*\(")
THREAD_BAN = re.compile(
    r"\bstd::(?:thread|jthread|async)\b|\bpthread_create\s*\(")
FILE_IO_BAN = re.compile(
    r"\bstd::[iow]?fstream\b|\b(?:fopen|freopen|tmpfile)\s*\(")
INT_CORE_DECL = re.compile(
    r"\b(?:unsigned(?:\s+int)?|int|short|long|std::size_t|size_t"
    r"|std::u?int(?:8|16|32|64)_t|u?int(?:8|16|32|64)_t)"
    r"\s+(?:core|core_?[iI][dD]\w*|core_?[iI]dx\w*|core_?index\w*)"
    r"\s*[=;,)]")
CORE_INDEX_ARITH = re.compile(
    r"\.index\(\)\s*[-+*/%]|[-+*/%]\s*[A-Za-z_]\w*\.index\(\)")
GUARD_RE = re.compile(r"^\s*#ifndef\s+(\w+)", re.MULTILINE)
DEFINE_RE = re.compile(r"^\s*#define\s+(\w+)", re.MULTILINE)


def _regex_findings(path, rel, code, pattern, rule, message, findings):
    for m in pattern.finditer(code):
        line = code.count("\n", 0, m.start()) + 1
        findings.append(Finding(rel, line, rule,
                                f"{message} (matched `{m.group(0).strip()}')"))


def lint_rng(root, findings):
    for path, rel in _sources(root, ("src", "tools"), (".cc", ".hh")):
        if rel == Path("src/sim/rng.hh"):
            continue
        code = strip_comments_and_strings(path.read_text())
        _regex_findings(path, rel, code, RNG_BAN, "rng-only",
                        "randomness outside fdp::Rng (use sim/rng.hh)",
                        findings)


def lint_new_delete(root, findings):
    for path, rel in _sources(root, ("src", "tools"), (".cc", ".hh")):
        code = strip_comments_and_strings(path.read_text())
        # `= delete`d declarations are idiomatic, not memory management;
        # blank them out without disturbing line numbers.
        code = DELETED_DECL.sub(
            lambda m: re.sub(r"\S", " ", m.group(0)), code)
        _regex_findings(path, rel, code, NEW_BAN, "no-raw-new",
                        "raw new (own state in containers/unique_ptr)",
                        findings)
        for m in re.finditer(r"\bdelete\b", code):
            line = code.count("\n", 0, m.start()) + 1
            findings.append(Finding(rel, line, "no-raw-new",
                                    "raw delete (use RAII ownership)"))


PRINTF_OK = {Path("src/sim/logging.hh"), Path("src/sim/logging.cc"),
             Path("src/sim/table.cc")}


def lint_printf(root, findings):
    for path, rel in _sources(root, ("src",), (".cc", ".hh")):
        if rel in PRINTF_OK:
            continue
        code = strip_comments_and_strings(path.read_text())
        _regex_findings(path, rel, code, PRINTF_BAN, "logging-only",
                        "printf-family call (use panic/fatal/warn/inform "
                        "or a std::ostream)", findings)


THREAD_OK = {Path("src/harness/sweep_pool.hh"),
             Path("src/harness/sweep_pool.cc")}


def lint_threading(root, findings):
    for path, rel in _sources(root, ("src", "tools"), (".cc", ".hh")):
        if rel in THREAD_OK:
            continue
        code = strip_comments_and_strings(path.read_text())
        _regex_findings(path, rel, code, THREAD_BAN, "pool-only-threading",
                        "raw threading primitive (go through "
                        "harness/sweep_pool.hh)", findings)


FILE_IO_OK = {Path("src/harness/reporting.cc"),
              Path("src/harness/reporting.hh")}


def lint_file_io(root, findings):
    for path, rel in _sources(root, ("src", "tools"), (".cc", ".hh")):
        if rel in FILE_IO_OK or rel.parts[:2] == ("src", "trace"):
            continue
        code = strip_comments_and_strings(path.read_text())
        _regex_findings(path, rel, code, FILE_IO_BAN, "file-io",
                        "raw file I/O outside src/trace/ and "
                        "harness/reporting (route through TraceReader/"
                        "TraceWriter or ResultsJson)", findings)


CORE_ID_OK = {Path("src/sim/types.hh")}


def lint_core_id(root, findings):
    for path, rel in _sources(root, ("src", "tools"), (".cc", ".hh")):
        if rel in CORE_ID_OK or rel.parts[:2] == ("src", "mc"):
            continue
        code = strip_comments_and_strings(path.read_text())
        _regex_findings(path, rel, code, INT_CORE_DECL, "typed-core-id",
                        "raw integer core id (use fdp::CoreId from "
                        "sim/types.hh)", findings)
        _regex_findings(path, rel, code, CORE_INDEX_ARITH, "typed-core-id",
                        "arithmetic on CoreId::index() outside src/mc/ "
                        "(subscripting and comparison stay legal)",
                        findings)


def expected_guard(rel):
    # src/mem/cache.hh -> FDP_MEM_CACHE_HH
    parts = [p.upper() for p in rel.parts[1:-1]]
    stem = re.sub(r"\W", "_", rel.stem).upper()
    return "_".join(["FDP"] + parts + [stem, "HH"])


def lint_include_guards(root, findings):
    for path, rel in _sources(root, ("src",), (".hh",)):
        text = path.read_text()
        want = expected_guard(rel)
        ifndef = GUARD_RE.search(text)
        if not ifndef:
            findings.append(Finding(rel, 1, "include-guard",
                                    f"missing include guard {want}"))
            continue
        if ifndef.group(1) != want:
            line = text.count("\n", 0, ifndef.start()) + 1
            findings.append(Finding(
                rel, line, "include-guard",
                f"guard {ifndef.group(1)} should be {want}"))
            continue
        define = DEFINE_RE.search(text, ifndef.end())
        if not define or define.group(1) != want:
            findings.append(Finding(rel, 1, "include-guard",
                                    f"#define does not match guard {want}"))


def lint_test_pairing(root, findings):
    for path, rel in _sources(root, ("src",), (".cc",)):
        sub = rel.parts[1:-1]
        test = root.joinpath("tests", *sub, f"test_{rel.stem}.cc")
        if not test.exists():
            findings.append(Finding(
                rel, 1, "test-pairing",
                f"no test file {test.relative_to(root)}"))


def _sources(root, top_dirs, suffixes):
    for top in top_dirs:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in suffixes and path.is_file():
                yield path, path.relative_to(root)


RULES = [lint_rng, lint_new_delete, lint_printf, lint_threading,
         lint_file_io, lint_core_id, lint_include_guards,
         lint_test_pairing]


def run_lint(root):
    findings = []
    for rule in RULES:
        rule(root, findings)
    return findings


# ---------------------------------------------------------------------------
# Self-test: seed one violation per rule in a scratch tree and check that
# the rule flags it (and that a clean file stays clean).
# ---------------------------------------------------------------------------

SELF_TEST_CASES = [
    ("rng-only", "src/sim/bad_rng.cc",
     "#include <random>\nstd::mt19937 gen(42);\n"),
    ("rng-only", "src/core/bad_time.cc",
     "#include <ctime>\nlong seed() { return time(nullptr); }\n"),
    ("no-raw-new", "src/mem/bad_new.cc",
     "int *leak() { return new int(7); }\n"),
    ("no-raw-new", "src/mem/bad_delete.cc",
     "void drop(int *p) { delete p; }\n"),
    ("logging-only", "src/cpu/bad_printf.cc",
     "#include <cstdio>\nvoid f() { std::printf(\"hi\\n\"); }\n"),
    ("pool-only-threading", "src/mem/bad_thread.cc",
     "#include <thread>\nvoid f() { std::thread t([] {}); t.join(); }\n"),
    ("file-io", "src/mem/bad_io.cc",
     "#include <fstream>\nint peek() { std::ifstream in(\"x\"); "
     "return in.get(); }\n"),
    ("file-io", "src/cpu/bad_fopen.cc",
     "#include <cstdio>\nvoid *h() { return fopen(\"x\", \"r\"); }\n"),
    ("typed-core-id", "src/mem/bad_core_decl.cc",
     "void tag(unsigned core) { unsigned coreId = core; (void)coreId; }\n"),
    ("typed-core-id", "src/mem/bad_core_arith.cc",
     "unsigned next(CoreId id, unsigned n)\n"
     "{ return (id.index() + 1) % n; }\n"),
    ("include-guard", "src/mem/bad_guard.hh",
     "#ifndef WRONG_GUARD_HH\n#define WRONG_GUARD_HH\n#endif\n"),
    ("test-pairing", "src/sim/orphan.cc",
     "int orphan() { return 1; }\n"),
]

CLEAN_FILE = (
    "src/sim/clean.hh",
    "#ifndef FDP_SIM_CLEAN_HH\n"
    "#define FDP_SIM_CLEAN_HH\n"
    "// a comment saying rand( and new and printf( and std::thread\n"
    "// and std::ifstream and fopen(\n"
    "// changes nothing\n"
    "const char *s = \"delete this std::mt19937 string\";\n"
    "struct NoCopy { NoCopy(const NoCopy &) = delete; };\n"
    "inline int pick(const int *perCore, CoreId id)\n"
    "{ return perCore[id.index()]; }\n"
    "inline bool samePlace(CoreId a, CoreId b)\n"
    "{ return a.index() == b.index(); }\n"
    "#endif  // FDP_SIM_CLEAN_HH\n",
)


def self_test():
    failures = 0
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        for _, rel, content in [(r, Path(p), c)
                                for r, p, c in SELF_TEST_CASES]:
            target = root / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(content)
        clean_rel, clean_content = CLEAN_FILE
        clean = root / clean_rel
        clean.parent.mkdir(parents=True, exist_ok=True)
        clean.write_text(clean_content)

        findings = run_lint(root)
        for rule, rel, _ in SELF_TEST_CASES:
            hits = [f for f in findings
                    if f.rule == rule and str(f.path) == rel]
            if hits:
                print(f"self-test ok: {rule} flags {rel}")
            else:
                print(f"self-test FAIL: {rule} missed the violation "
                      f"seeded in {rel}")
                failures += 1
        stray = [f for f in findings if str(f.path) == clean_rel]
        if stray:
            print("self-test FAIL: clean file flagged:")
            for f in stray:
                print(f"  {f}")
            failures += 1
        else:
            print("self-test ok: clean file produces no findings")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", type=Path,
                    default=Path(__file__).resolve().parent.parent,
                    help="repository root (default: this script's repo)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify every rule catches a seeded violation")
    args = ap.parse_args()

    if args.self_test:
        failures = self_test()
        return 1 if failures else 0

    if not (args.root / "src").is_dir():
        print(f"fdp_lint: no src/ directory under {args.root}",
              file=sys.stderr)
        return 2

    findings = run_lint(args.root)
    for f in findings:
        print(f)
    if findings:
        print(f"fdp_lint: {len(findings)} finding(s)")
        return 1
    print("fdp_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
