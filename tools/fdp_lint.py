#!/usr/bin/env python3
"""Repo-specific lint entry point for the FDP simulator.

Most semantic rules live in fdp_analyze (tools/analyze/), a compiled
token-level analyzer: rng-only, wall-clock, no-raw-new,
pool-only-threading, file-io, typed-core-id, include-guard,
include-cycle, layering, unordered-iter, pointer-order, audit-coverage,
unit-mixing, suppression. This script stays the single lint entry point:
it runs its two native rules, then delegates to the fdp_analyze binary
(gated against tools/analyze/baseline.json).

Native rules (line-oriented by nature, so they stay in Python):

  logging-only    no printf-family calls in src/ outside sim/logging.hh
                  and sim/table.cc; everything else reports through
                  panic/fatal/warn/inform or writes to a std::ostream.
  test-pairing    every src/<dir>/<file>.cc has tests/<dir>/test_<file>.cc.

Comments and string literals are stripped before the regex rules run, so
prose like "printf-style" cannot trip the ban.

Usage:
  tools/fdp_lint.py [--root DIR]      lint the tree (exit 1 on findings)
  tools/fdp_lint.py --self-test       verify each native rule catches a
                                      seeded violation and that delegation
                                      to fdp_analyze actually runs
  tools/fdp_lint.py --require-analyze fail (exit 2) when the fdp_analyze
                                      binary cannot be found instead of
                                      warning and running native rules only
  tools/fdp_lint.py --analyze-bin P   explicit fdp_analyze binary (else
                                      $FDP_ANALYZE, else build*/tools/
                                      analyze/fdp_analyze under --root)
  tools/fdp_lint.py --findings-json F forward to fdp_analyze --json F
"""

import argparse
import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving newlines
    (and therefore line numbers) so findings point at real code."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


PRINTF_BAN = re.compile(
    r"\b(?:f|s|sn|v|vf|vs|vsn)?printf\s*\(|\bf?puts\s*\(|\bputchar\s*\(")


def _regex_findings(path, rel, code, pattern, rule, message, findings):
    for m in pattern.finditer(code):
        line = code.count("\n", 0, m.start()) + 1
        findings.append(Finding(rel, line, rule,
                                f"{message} (matched `{m.group(0).strip()}')"))


PRINTF_OK = {Path("src/sim/logging.hh"), Path("src/sim/logging.cc"),
             Path("src/sim/table.cc")}


def lint_printf(root, findings):
    for path, rel in _sources(root, ("src",), (".cc", ".hh")):
        if rel in PRINTF_OK:
            continue
        code = strip_comments_and_strings(path.read_text())
        _regex_findings(path, rel, code, PRINTF_BAN, "logging-only",
                        "printf-family call (use panic/fatal/warn/inform "
                        "or a std::ostream)", findings)


def lint_test_pairing(root, findings):
    for path, rel in _sources(root, ("src",), (".cc",)):
        sub = rel.parts[1:-1]
        test = root.joinpath("tests", *sub, f"test_{rel.stem}.cc")
        if not test.exists():
            findings.append(Finding(
                rel, 1, "test-pairing",
                f"no test file {test.relative_to(root)}"))


def _sources(root, top_dirs, suffixes):
    for top in top_dirs:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in suffixes and path.is_file():
                yield path, path.relative_to(root)


RULES = [lint_printf, lint_test_pairing]


def run_lint(root):
    findings = []
    for rule in RULES:
        rule(root, findings)
    return findings


# ---------------------------------------------------------------------------
# Delegation to fdp_analyze.
# ---------------------------------------------------------------------------


def find_analyze_bin(root, explicit):
    """Locate the fdp_analyze binary: --analyze-bin, then $FDP_ANALYZE,
    then any build*/tools/analyze/fdp_analyze under the root."""
    if explicit:
        return Path(explicit)
    env = os.environ.get("FDP_ANALYZE")
    if env:
        return Path(env)
    hits = sorted(root.glob("build*/tools/analyze/fdp_analyze"))
    return hits[0] if hits else None


def run_analyze(root, bin_path, findings_json):
    """Run fdp_analyze over `root`, baseline-gated when the committed
    baseline exists. Returns the subprocess exit status."""
    cmd = [str(bin_path), "--root", str(root)]
    baseline = root / "tools" / "analyze" / "baseline.json"
    if baseline.is_file():
        cmd += ["--baseline", str(baseline)]
    if findings_json:
        cmd += ["--json", str(findings_json)]
    print(f"fdp_lint: delegating to {bin_path}")
    try:
        return subprocess.run(cmd).returncode
    except OSError as e:
        print(f"fdp_lint: cannot run {bin_path}: {e}", file=sys.stderr)
        return 2


# ---------------------------------------------------------------------------
# Self-test: seed one violation per native rule in a scratch tree and
# check that the rule flags it, that a clean file stays clean, and that
# delegation to fdp_analyze really runs (via a stub binary) and
# propagates its exit status.
# ---------------------------------------------------------------------------

SELF_TEST_CASES = [
    ("logging-only", "src/cpu/bad_printf.cc",
     "#include <cstdio>\nvoid f() { std::printf(\"hi\\n\"); }\n"),
    ("test-pairing", "src/sim/orphan.cc",
     "int orphan() { return 1; }\n"),
]

CLEAN_FILE = (
    "src/sim/clean.hh",
    "#ifndef FDP_SIM_CLEAN_HH\n"
    "#define FDP_SIM_CLEAN_HH\n"
    "// a comment saying printf( and puts( changes nothing\n"
    "const char *s = \"and a printf( in a string is fine too\";\n"
    "#endif  // FDP_SIM_CLEAN_HH\n",
)


def _write(root, rel, content):
    target = root / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(content)
    return target


def _stub_analyze(root, name, exit_code):
    """An executable stub standing in for fdp_analyze: records its argv
    and exits with the given status."""
    log = root / f"{name}.argv"
    stub = root / name
    stub.write_text("#!/bin/sh\n"
                    f"printf '%s\\n' \"$@\" > {log}\n"
                    f"exit {exit_code}\n")
    stub.chmod(0o755)
    return stub, log


def self_test():
    failures = 0
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        for _, rel, content in [(r, Path(p), c)
                                for r, p, c in SELF_TEST_CASES]:
            _write(root, rel, content)
        clean_rel, clean_content = CLEAN_FILE
        _write(root, Path(clean_rel), clean_content)

        findings = run_lint(root)
        for rule, rel, _ in SELF_TEST_CASES:
            hits = [f for f in findings
                    if f.rule == rule and str(f.path) == rel]
            if hits:
                print(f"self-test ok: {rule} flags {rel}")
            else:
                print(f"self-test FAIL: {rule} missed the violation "
                      f"seeded in {rel}")
                failures += 1
        stray = [f for f in findings if str(f.path) == clean_rel]
        if stray:
            print("self-test FAIL: clean file flagged:")
            for f in stray:
                print(f"  {f}")
            failures += 1
        else:
            print("self-test ok: clean file produces no findings")

        # Delegation must actually invoke the analyzer, pass --root and
        # the committed baseline, and surface its verdict.
        _write(root, Path("tools/analyze/baseline.json"),
               '{"schema": "fdp-findings-v1", "findings": []}\n')
        ok_stub, ok_log = _stub_analyze(root, "stub_ok", 0)
        status = run_analyze(root, ok_stub, None)
        argv = ok_log.read_text().splitlines() if ok_log.exists() else []
        if status == 0 and "--root" in argv and "--baseline" in argv:
            print("self-test ok: delegation runs fdp_analyze with "
                  "--root and --baseline")
        else:
            print(f"self-test FAIL: delegation did not run the analyzer "
                  f"as expected (status {status}, argv {argv})")
            failures += 1

        bad_stub, _ = _stub_analyze(root, "stub_bad", 1)
        if run_analyze(root, bad_stub, None) == 1:
            print("self-test ok: analyzer failure propagates")
        else:
            print("self-test FAIL: analyzer failure was swallowed")
            failures += 1

        missing = find_analyze_bin(root, None)
        if missing is None:
            print("self-test ok: no analyzer binary found in empty tree")
        else:
            print(f"self-test FAIL: phantom analyzer binary {missing}")
            failures += 1
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", type=Path,
                    default=Path(__file__).resolve().parent.parent,
                    help="repository root (default: this script's repo)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify every native rule catches a seeded "
                         "violation and delegation runs")
    ap.add_argument("--analyze-bin", type=Path, default=None,
                    help="fdp_analyze binary (default: $FDP_ANALYZE or "
                         "build*/tools/analyze/fdp_analyze)")
    ap.add_argument("--require-analyze", action="store_true",
                    help="error out when fdp_analyze cannot be found")
    ap.add_argument("--findings-json", type=Path, default=None,
                    help="forward to fdp_analyze --json")
    args = ap.parse_args()

    if args.self_test:
        failures = self_test()
        return 1 if failures else 0

    if not (args.root / "src").is_dir():
        print(f"fdp_lint: no src/ directory under {args.root}",
              file=sys.stderr)
        return 2

    findings = run_lint(args.root)
    for f in findings:
        print(f)

    analyze_status = 0
    bin_path = find_analyze_bin(args.root, args.analyze_bin)
    if bin_path is None or not bin_path.exists():
        msg = ("fdp_lint: fdp_analyze binary not found (build it: "
               "cmake --build build --target fdp_analyze)")
        if args.require_analyze:
            print(msg, file=sys.stderr)
            return 2
        print(f"{msg}; running native rules only", file=sys.stderr)
    else:
        analyze_status = run_analyze(args.root, bin_path,
                                     args.findings_json)
        if analyze_status >= 2:
            return analyze_status

    if findings:
        print(f"fdp_lint: {len(findings)} native finding(s)")
        return 1
    if analyze_status:
        return analyze_status
    print("fdp_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
