#!/usr/bin/env bash
# Benchmark runner: builds the Release benchmark tree, runs the
# micro_structures (google-benchmark) and macro_throughput (end-to-end
# insts/s) suites, and merges both into one fdp-results-v1 JSON file,
# BENCH_<rev>.json by default.
#
#   tools/bench.sh                          # full run, BENCH_<rev>.json
#   tools/bench.sh --quick --out /tmp/b.json   # CI smoke: one fast pass
#   tools/bench.sh --baseline BENCH_old.json   # embed baseline + speedups
#
# With --baseline, every micro entry also gets a baseline_ns and speedup
# entry computed against the same-named micro/<bench>/ns value in the
# baseline file, plus one micro/core_geomean_speedup summary over the
# cache/event-queue/MSHR benchmarks. This is how a hot-path change
# documents its win in-tree: run once on the parent commit, once on the
# change with --baseline, and check in the result.
#
# Perf numbers are machine-dependent; nothing here gates on them.

set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"

BUILD_DIR="$ROOT/build-bench"
OUT=""
BASELINE=""
QUICK=0

usage() {
    echo "usage: tools/bench.sh [--build-dir DIR] [--out FILE]" >&2
    echo "                      [--baseline FILE] [--quick]" >&2
    exit 2
}

while [ $# -gt 0 ]; do
    case "$1" in
      --build-dir) [ $# -ge 2 ] || usage; BUILD_DIR="$2"; shift 2 ;;
      --out)       [ $# -ge 2 ] || usage; OUT="$2"; shift 2 ;;
      --baseline)  [ $# -ge 2 ] || usage; BASELINE="$2"; shift 2 ;;
      --quick)     QUICK=1; shift ;;
      *) usage ;;
    esac
done

if [ -z "$OUT" ]; then
    REV="$(git -C "$ROOT" rev-parse --short HEAD 2>/dev/null || echo local)"
    OUT="$ROOT/BENCH_${REV}.json"
fi

CMAKE_EXTRA=()
if command -v ccache >/dev/null 2>&1; then
    CMAKE_EXTRA+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

echo "==== bench: Release build in $BUILD_DIR ===="
cmake -B "$BUILD_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release \
    "${CMAKE_EXTRA[@]+"${CMAKE_EXTRA[@]}"}"
cmake --build "$BUILD_DIR" -j "$JOBS" \
    --target micro_structures macro_throughput

# The older google-benchmark in the image wants a plain double for
# --benchmark_min_time (no "s" suffix).
if [ "$QUICK" = 1 ]; then
    MIN_TIME=0.01
    MACRO_ARGS=(--insts 200000)
else
    MIN_TIME=0.2
    MACRO_ARGS=()
fi

MICRO_JSON="$BUILD_DIR/micro_structures.json"
MACRO_JSON="$BUILD_DIR/macro_throughput.json"

echo "==== bench: micro_structures (min_time=${MIN_TIME}s) ===="
"$BUILD_DIR/bench/micro_structures" \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_format=json > "$MICRO_JSON"

echo "==== bench: macro_throughput ===="
"$BUILD_DIR/bench/macro_throughput" \
    --trace-file "$BUILD_DIR/macro_throughput.fdptrace" \
    "${MACRO_ARGS[@]+"${MACRO_ARGS[@]}"}" > "$MACRO_JSON"

echo "==== bench: merging into $OUT ===="
python3 - "$MICRO_JSON" "$MACRO_JSON" "$OUT" "$BASELINE" <<'PYEOF'
import json
import math
import sys

micro_path, macro_path, out_path, baseline_path = sys.argv[1:5]

with open(micro_path) as f:
    micro = json.load(f)
with open(macro_path) as f:
    macro = json.load(f)
if macro.get("schema") != "fdp-results-v1":
    sys.exit("macro_throughput did not emit fdp-results-v1")

entries = []
micro_ns = {}
for bench in micro["benchmarks"]:
    # Skip aggregate rows (mean/median/stddev) if repetitions were used.
    if bench.get("run_type", "iteration") != "iteration":
        continue
    name = bench["name"].removeprefix("BM_")
    ns = float(bench["real_time"])
    micro_ns[name] = ns
    entries.append({"name": f"micro/{name}/ns", "unit": "ns/op",
                    "better": "lower", "value": ns})

baseline_ns = {}
if baseline_path:
    with open(baseline_path) as f:
        base = json.load(f)
    if base.get("schema") != "fdp-results-v1":
        sys.exit(f"baseline {baseline_path} is not fdp-results-v1")
    for e in base["entries"]:
        name = e["name"]
        if name.startswith("micro/") and name.endswith("/ns"):
            baseline_ns[name[len("micro/"):-len("/ns")]] = float(e["value"])

# The geomean summarizes only the rewritten core structures; the other
# microbenchmarks (prefetchers, workload generator, ...) still get
# per-benchmark speedup entries for anyone tracking them.
CORE_PREFIXES = ("Cache", "EventQueue", "Mshr")
core_speedups = []
for name, ns in micro_ns.items():
    if name not in baseline_ns:
        continue
    speedup = baseline_ns[name] / ns
    if name.startswith(CORE_PREFIXES):
        core_speedups.append(speedup)
    entries.append({"name": f"micro/{name}/baseline_ns", "unit": "ns/op",
                    "better": "lower", "value": baseline_ns[name]})
    entries.append({"name": f"micro/{name}/speedup", "unit": "x",
                    "better": "higher", "value": speedup})
if core_speedups:
    geomean = math.exp(sum(math.log(s) for s in core_speedups) /
                       len(core_speedups))
    entries.append({"name": "micro/core_geomean_speedup", "unit": "x",
                    "better": "higher", "value": geomean})
    print(f"micro core geomean speedup vs baseline: {geomean:.3f}x")

entries.extend(macro["entries"])

with open(out_path, "w") as f:
    json.dump({"schema": "fdp-results-v1", "source": "tools/bench.sh",
               "entries": entries}, f, indent=2)
    f.write("\n")
print(f"wrote {len(entries)} entries to {out_path}")
PYEOF

echo "==== bench: done ===="
