// Calibration probe: per-benchmark metrics across configurations.
#include <cstdio>
#include <cstring>
#include <cctype>
#include "harness/experiment.hh"
#include "workload/spec_suite.hh"
using namespace fdp;

int main(int argc, char **argv) {
    std::uint64_t insts = instructionBudget(argc, argv, 600000);
    std::vector<std::string> benches;
    for (int i = 1; i < argc; ++i)
        if (argv[i][0] != '-' && !isdigit(argv[i][0])) benches.push_back(argv[i]);
    if (benches.empty()) benches = memoryIntensiveBenchmarks();
    std::printf("%-8s %-5s %6s %6s %5s %5s %5s %8s %8s %7s %7s %7s %7s %6s\n",
                "bench", "cfg", "IPC", "BPKI", "acc", "late", "poll",
                "prefSent", "l2miss", "dGrant", "wbGr", "stall", "dropQ", "mLat");
    for (const auto &b : benches) {
        for (const auto &[label, cfg] : std::vector<std::pair<std::string, RunConfig>>{
                 {"none", RunConfig::noPrefetching()},
                 {"vc", RunConfig::staticLevelConfig(1)},
                 {"mid", RunConfig::staticLevelConfig(3)},
                 {"va", RunConfig::staticLevelConfig(5)},
                 {"fdp", RunConfig::fullFdp()}}) {
            RunConfig c = cfg;
            c.numInsts = insts;
            c.fdp.intervalEvictions = 2048;
            const auto r = runBenchmark(b, c, label);
            std::printf("%-8s %-5s %6.3f %6.2f %5.2f %5.2f %5.2f %8llu %8llu %7llu %7llu %7llu %7llu %6.0f\n",
                        b.c_str(), label.c_str(), r.ipc, r.bpki, r.accuracy,
                        r.lateness, r.pollution,
                        (unsigned long long)r.prefSent,
                        (unsigned long long)r.l2Misses,
                        (unsigned long long)r.demandGrants,
                        (unsigned long long)r.writebackGrants,
                        (unsigned long long)r.mshrStallCount,
                        (unsigned long long)r.prefDropQueueFull,
                        r.avgMissLatency);
        }
        std::printf("\n");
    }
    return 0;
}
