/**
 * @file
 * fdp_snap - inspect and verify fdpsnap-v1 machine snapshots.
 *
 *   fdp_snap info warm.fdpsnap
 *   fdp_snap verify warm.fdpsnap
 *
 * info prints the header (benchmark, geometry, warm-up length) and the
 * per-section byte layout. verify is the full integrity pass: framing
 * magic, CRC, version, and section-by-section byte accounting — the
 * same checks a restore performs, without building a machine.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "snap/snapshot_file.hh"

namespace
{

using namespace fdp;

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: fdp_snap <command> PATH\n"
        "  info PATH      print the snapshot header and section layout\n"
        "  verify PATH    full integrity pass: magic, CRC, version,\n"
        "                 section byte accounting\n");
    std::exit(1);
}

struct SectionSpan
{
    std::string name;
    std::uint32_t payloadBytes = 0;
};

/**
 * Decode the body's section framing (u8 nameLen + name + u32 payloadLen
 * + payload, little-endian) without interpreting any payload. Fatal on
 * truncation, so both commands double as structural checks.
 */
std::vector<SectionSpan>
walkSections(const SnapshotImage &image, const std::string &path)
{
    const std::vector<std::uint8_t> &b = image.body;
    std::vector<SectionSpan> sections;
    std::size_t pos = 0;
    while (pos < b.size()) {
        const std::size_t nameLen = b[pos++];
        if (pos + nameLen + 4 > b.size())
            fatal("snapshot %s: truncated section header at body "
                  "offset %zu", path.c_str(), pos - 1);
        SectionSpan s;
        s.name.assign(reinterpret_cast<const char *>(&b[pos]), nameLen);
        pos += nameLen;
        for (int i = 0; i < 4; ++i)
            s.payloadBytes |= static_cast<std::uint32_t>(b[pos + i])
                              << (8 * i);
        pos += 4;
        if (pos + s.payloadBytes > b.size())
            fatal("snapshot %s: section `%s' claims %u payload bytes "
                  "but only %zu remain", path.c_str(), s.name.c_str(),
                  s.payloadBytes, b.size() - pos);
        pos += s.payloadBytes;
        sections.push_back(std::move(s));
    }
    if (sections.size() != image.sectionCount)
        fatal("snapshot %s: header promises %u sections but the body "
              "holds %zu", path.c_str(), image.sectionCount,
              sections.size());
    return sections;
}

int
cmdInfo(const std::string &path)
{
    const SnapshotImage image = readSnapshotFile(path);
    const std::vector<SectionSpan> sections = walkSections(image, path);
    std::printf("snapshot:   %s\n", path.c_str());
    std::printf("format:     fdpsnap-v%u\n", kSnapVersion);
    std::printf("benchmark:  %s\n", image.benchmark.c_str());
    std::printf("geometry:   %s\n", image.geometry.c_str());
    std::printf("warmup:     %llu micro-ops\n",
                static_cast<unsigned long long>(image.warmupInsts));
    std::printf("body:       %zu bytes in %zu sections\n",
                image.body.size(), sections.size());
    for (const SectionSpan &s : sections)
        std::printf("  %-22s %u bytes\n", s.name.c_str(),
                    s.payloadBytes);
    return 0;
}

int
cmdVerify(const std::string &path)
{
    // readSnapshotFile already rejects bad magic, CRC, version, and
    // truncation; the section walk adds body-level byte accounting.
    const SnapshotImage image = readSnapshotFile(path);
    const std::vector<SectionSpan> sections = walkSections(image, path);
    std::printf("fdp_snap: %s ok (%s, %llu warm-up micro-ops, "
                "%zu sections, %zu body bytes)\n", path.c_str(),
                image.benchmark.c_str(),
                static_cast<unsigned long long>(image.warmupInsts),
                sections.size(), image.body.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 3)
        usage();
    const std::string cmd = argv[1];
    const std::string path = argv[2];
    if (cmd == "info")
        return cmdInfo(path);
    if (cmd == "verify")
        return cmdVerify(path);
    usage();
}
