#!/usr/bin/env bash
# Run every static-analysis pass available on this machine.
#
# Always runs: fdp_lint.py (plus its self-test, so a vacuous rule is
# itself a failure). clang-tidy and cppcheck run when installed and are
# skipped with a notice otherwise — the container toolchain has neither,
# and their absence must not break the pipeline. FDP_LINT_ONLY=1 skips
# them even when installed (used by the CI static job, which must not
# depend on whatever analyzer versions the runner image happens to
# carry).
#
# Exit status is nonzero if any pass that ran found a problem.

set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build}"
status=0

echo "== fdp_lint: repo conventions =="
python3 "$ROOT/tools/fdp_lint.py" --root "$ROOT" || status=1

echo "== fdp_lint: self-test =="
python3 "$ROOT/tools/fdp_lint.py" --self-test || status=1

if [ "${FDP_LINT_ONLY:-0}" = "1" ]; then
    echo "== FDP_LINT_ONLY=1: clang-tidy/cppcheck skipped =="
elif command -v clang-tidy >/dev/null 2>&1; then
    echo "== clang-tidy =="
    if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
        cmake -B "$BUILD_DIR" -S "$ROOT" >/dev/null || status=1
    fi
    # shellcheck disable=SC2046
    clang-tidy -p "$BUILD_DIR" --quiet \
        $(find "$ROOT/src" "$ROOT/tools" -name '*.cc') || status=1
else
    echo "== clang-tidy not installed: skipped =="
fi

if [ "${FDP_LINT_ONLY:-0}" = "1" ]; then
    : # skipped above
elif command -v cppcheck >/dev/null 2>&1; then
    echo "== cppcheck =="
    if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
        cmake -B "$BUILD_DIR" -S "$ROOT" >/dev/null || status=1
    fi
    cppcheck --project="$BUILD_DIR/compile_commands.json" \
        --enable=warning,performance,portability \
        --suppress=missingIncludeSystem --inline-suppr \
        --error-exitcode=2 --quiet || status=1
else
    echo "== cppcheck not installed: skipped =="
fi

if [ "$status" -eq 0 ]; then
    echo "static analysis: all passes clean"
else
    echo "static analysis: FAILURES (see above)"
fi
exit "$status"
