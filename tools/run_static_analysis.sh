#!/usr/bin/env bash
# Run every static-analysis pass available on this machine.
#
# Always runs: fdp_analyze (built on demand, baseline-gated) and its
# self-test, then fdp_lint.py with --require-analyze (plus its
# self-test, so a vacuous rule is itself a failure). clang-tidy and
# cppcheck run when installed and are skipped with a notice otherwise —
# the container toolchain has neither, and their absence must not break
# the pipeline. FDP_LINT_ONLY=1 skips them even when installed (used by
# the CI static job, which must not depend on whatever analyzer
# versions the runner image happens to carry).
#
# FDP_FINDINGS_JSON=path makes fdp_analyze write its fdp-findings-v1
# document there (CI archives it as an artifact).
#
# Exit status is nonzero if any pass that ran found a problem.

set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build}"
ANALYZE_BIN="$BUILD_DIR/tools/analyze/fdp_analyze"
status=0

ensure_configured() {
    # (Re)configure if needed, and fail fast when the expected output
    # still does not appear: every later pass depends on it.
    if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
        cmake -B "$BUILD_DIR" -S "$ROOT" >/dev/null || return 1
    fi
    if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
        echo "error: cmake ran but $BUILD_DIR/compile_commands.json is" \
             "still missing (is CMAKE_EXPORT_COMPILE_COMMANDS off?)" >&2
        return 1
    fi
}

echo "== fdp_analyze: build =="
if ! ensure_configured || \
   ! cmake --build "$BUILD_DIR" --target fdp_analyze -j >/dev/null; then
    echo "error: could not build fdp_analyze" >&2
    exit 1
fi
if [ ! -x "$ANALYZE_BIN" ]; then
    echo "error: built fdp_analyze but $ANALYZE_BIN is missing" >&2
    exit 1
fi

echo "== fdp_analyze: self-test =="
"$ANALYZE_BIN" --root "$ROOT" --self-test || status=1

echo "== fdp_lint + fdp_analyze: repo contracts =="
FDP_ANALYZE="$ANALYZE_BIN" python3 "$ROOT/tools/fdp_lint.py" \
    --root "$ROOT" --require-analyze \
    ${FDP_FINDINGS_JSON:+--findings-json "$FDP_FINDINGS_JSON"} || status=1

echo "== fdp_lint: self-test =="
python3 "$ROOT/tools/fdp_lint.py" --self-test || status=1

if [ "${FDP_LINT_ONLY:-0}" = "1" ]; then
    echo "== FDP_LINT_ONLY=1: clang-tidy/cppcheck skipped =="
elif command -v clang-tidy >/dev/null 2>&1; then
    echo "== clang-tidy =="
    if ensure_configured; then
        find "$ROOT/src" "$ROOT/tools" -name '*.cc' -print0 |
            xargs -0 clang-tidy -p "$BUILD_DIR" --quiet || status=1
    else
        status=1
    fi
else
    echo "== clang-tidy not installed: skipped =="
fi

if [ "${FDP_LINT_ONLY:-0}" = "1" ]; then
    : # skipped above
elif command -v cppcheck >/dev/null 2>&1; then
    echo "== cppcheck =="
    if ensure_configured; then
        cppcheck --project="$BUILD_DIR/compile_commands.json" \
            --enable=warning,performance,portability --std=c++20 \
            --suppress=missingIncludeSystem --inline-suppr \
            --error-exitcode=2 --quiet || status=1
    else
        status=1
    fi
else
    echo "== cppcheck not installed: skipped =="
fi

if [ "$status" -eq 0 ]; then
    echo "static analysis: all passes clean"
else
    echo "static analysis: FAILURES (see above)"
fi
exit "$status"
