#!/usr/bin/env bash
# CI entrypoint: the full correctness gate for one change.
#
# Stages (run all by default, or select one with --stage so local runs
# and the GitHub Actions jobs share this single entrypoint):
#
#   tier1   default (RelWithDebInfo) build + full ctest
#   asan    ASan+UBSan build + full ctest with FDP_AUDIT=1, so every
#           run also audits structural invariants at each sampling
#           interval boundary
#   tsan    ThreadSanitizer build; runs the harness/sim tests (the ones
#           that exercise the parallel sweep scheduler and the logging
#           sink) plus one quick multi-threaded paper sweep
#   static  tools/run_static_analysis.sh (repo lint always;
#           clang-tidy/cppcheck when installed)
#   bench-smoke
#           tools/bench.sh --quick smoke: builds the benchmark suite,
#           runs one fast repetition, and validates the fdp-results-v1
#           JSON it emits (schema only).
#   bench-diff
#           trajectory gate: diffs the fresh quick-bench output against
#           the committed BENCH_quick_baseline.json with fdp_results.
#           Deterministic simulation counters must match EXACTLY — any
#           drift is a semantics change that needs a baseline regen (and
#           a result_store.hh kSimCoreVersion bump) to land. Timing
#           metrics get wide tolerances and never block (CI machines are
#           too noisy for perf gating). Also smokes the sweep result
#           store: a warm --resume of a paper sweep must skip every
#           cached cell and print bit-identical stdout.
#   bench   both bench stages.
#
# Fails fast: any stage failing stops the pipeline with its exit status.
# ccache is used automatically when installed.

set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"

CMAKE_EXTRA=()
if command -v ccache >/dev/null 2>&1; then
    CMAKE_EXTRA+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

usage() {
    echo "usage: tools/ci.sh [--stage tier1|asan|tsan|static|" >&2
    echo "                    bench-smoke|bench-diff|bench|all]" >&2
    exit 2
}

STAGE=all
while [ $# -gt 0 ]; do
    case "$1" in
      --stage)
        [ $# -ge 2 ] || usage
        STAGE="$2"
        shift 2
        ;;
      *)
        usage
        ;;
    esac
done

stage_tier1() {
    echo "==== stage tier1: build + tests ===="
    cmake -B "$ROOT/build-ci" -S "$ROOT" "${CMAKE_EXTRA[@]+"${CMAKE_EXTRA[@]}"}"
    cmake --build "$ROOT/build-ci" -j "$JOBS"
    ctest --test-dir "$ROOT/build-ci" --output-on-failure -j "$JOBS"

    echo "==== stage tier1: trace record/verify/replay round trip ===="
    # Record swim through the live generator, prove the file passes a
    # full integrity pass, then prove replay is bit-identical to the
    # recording run — stdout tables and results JSON both.
    local tdir="$ROOT/build-ci/trace-smoke"
    rm -rf "$tdir" && mkdir -p "$tdir"
    "$ROOT/build-ci/bench/fdp_sim" --bench swim --insts 200000 \
        --record "$tdir/swim.fdptrace" --out "$tdir/record.json" \
        > "$tdir/record.out"
    "$ROOT/build-ci/bench/fdp_trace" info "$tdir/swim.fdptrace"
    "$ROOT/build-ci/bench/fdp_trace" verify "$tdir/swim.fdptrace"
    "$ROOT/build-ci/bench/fdp_sim" --trace "$tdir/swim.fdptrace" \
        --insts 200000 --out "$tdir/replay.json" > "$tdir/replay.out"
    diff "$tdir/record.out" "$tdir/replay.out"
    diff "$tdir/record.json" "$tdir/replay.json"
    echo "trace smoke: replay bit-identical to the recording run"

    echo "==== stage tier1: snapshot round-trip smoke ===="
    # Warm swim in place and measure, then warm once into an fdpsnap-v1
    # image and fork the measured run from it: stdout tables and results
    # JSON must be bit-identical or the snapshot missed machine state.
    local ndir="$ROOT/build-ci/snap-smoke"
    rm -rf "$ndir" && mkdir -p "$ndir"
    "$ROOT/build-ci/bench/fdp_sim" --bench swim --warmup 200000 \
        --insts 200000 --out "$ndir/cold.json" > "$ndir/cold.out" \
        2> /dev/null
    "$ROOT/build-ci/bench/fdp_sim" --bench swim --warmup 200000 \
        --save-snap "$ndir/swim.fdpsnap" > /dev/null 2>&1
    "$ROOT/build-ci/bench/fdp_snap" verify "$ndir/swim.fdpsnap"
    "$ROOT/build-ci/bench/fdp_sim" --load-snap "$ndir/swim.fdpsnap" \
        --insts 200000 --out "$ndir/fork.json" > "$ndir/fork.out" \
        2> /dev/null
    diff "$ndir/cold.out" "$ndir/fork.out"
    diff "$ndir/cold.json" "$ndir/fork.json"
    echo "snap smoke: forked run bit-identical to in-place warm-up"

    echo "==== stage tier1: warm-fork sweep determinism smoke ===="
    # A warmed multi-config sweep normally warms each benchmark once and
    # forks every cell from the snapshot; FDP_NO_WARM_FORK=1 forces the
    # per-cell cold warm-up path. The two must be bit-identical.
    local fdir="$ROOT/build-ci/fork-smoke"
    rm -rf "$fdir" && mkdir -p "$fdir"
    "$ROOT/build-ci/bench/fdp_sim" --bench swim --bench mgrid \
        --warmup 100000 --insts 100000 --jobs 2 \
        --out "$fdir/fork.json" > "$fdir/fork.out" 2> /dev/null
    FDP_NO_WARM_FORK=1 "$ROOT/build-ci/bench/fdp_sim" \
        --bench swim --bench mgrid --warmup 100000 --insts 100000 \
        --jobs 2 --out "$fdir/cold.json" > "$fdir/cold.out" 2> /dev/null
    diff "$fdir/cold.out" "$fdir/fork.out"
    diff "$fdir/cold.json" "$fdir/fork.json"
    echo "fork smoke: warm-fork sweep bit-identical to cold warm-up"

    echo "==== stage tier1: 2-core mix determinism smoke ===="
    # One bandwidth-bound co-run end to end, then the same mix again
    # with a different worker count: stdout tables and results JSON
    # must be bit-identical or the sweep scheduler leaked its thread
    # interleaving into the simulation.
    local mdir="$ROOT/build-ci/mix-smoke"
    rm -rf "$mdir" && mkdir -p "$mdir"
    "$ROOT/build-ci/bench/fdp_sim" --cores 2 --mix mix2-stream \
        --insts 100000 --jobs 1 --out "$mdir/jobs1.json" \
        > "$mdir/jobs1.out" 2> /dev/null
    "$ROOT/build-ci/bench/fdp_sim" --cores 2 --mix mix2-stream \
        --insts 100000 --jobs 4 --out "$mdir/jobs4.json" \
        > "$mdir/jobs4.out" 2> /dev/null
    diff "$mdir/jobs1.out" "$mdir/jobs4.out"
    diff "$mdir/jobs1.json" "$mdir/jobs4.json"
    echo "mix smoke: co-run bit-identical across --jobs 1 and --jobs 4"

    echo "==== stage tier1: manager determinism smoke ===="
    # The adaptive prefetcher manager explores/exploits off interval
    # feedback; its FSM must be a pure function of the simulation, so a
    # managed sweep is bit-identical across worker counts too.
    local gdir="$ROOT/build-ci/manager-smoke"
    rm -rf "$gdir" && mkdir -p "$gdir"
    "$ROOT/build-ci/bench/fdp_sim" --list-prefetchers > "$gdir/list.out"
    grep -q '^manager$' "$gdir/list.out"
    "$ROOT/build-ci/bench/fdp_sim" --bench swim --bench mgrid \
        --manager explore --insts 200000 --jobs 1 \
        --out "$gdir/jobs1.json" > "$gdir/jobs1.out" 2> /dev/null
    "$ROOT/build-ci/bench/fdp_sim" --bench swim --bench mgrid \
        --manager explore --insts 200000 --jobs 4 \
        --out "$gdir/jobs4.json" > "$gdir/jobs4.out" 2> /dev/null
    diff "$gdir/jobs1.out" "$gdir/jobs4.out"
    diff "$gdir/jobs1.json" "$gdir/jobs4.json"
    echo "manager smoke: managed sweep bit-identical across --jobs 1/4"

    echo "==== stage tier1: FR-FCFS 8-core determinism smoke ===="
    # The FR-FCFS memory controller schedules per channel off the FDP
    # accuracy tiers; an 8-core co-run through it (plus its alone
    # baselines) must stay bit-identical across worker counts.
    local ddir="$ROOT/build-ci/dram-smoke"
    rm -rf "$ddir" && mkdir -p "$ddir"
    "$ROOT/build-ci/bench/fdp_sim" --mix mix8-bw --dram controller \
        --channels 4 --insts 50000 --jobs 1 --out "$ddir/jobs1.json" \
        > "$ddir/jobs1.out" 2> /dev/null
    "$ROOT/build-ci/bench/fdp_sim" --mix mix8-bw --dram controller \
        --channels 4 --insts 50000 --jobs 4 --out "$ddir/jobs4.json" \
        > "$ddir/jobs4.out" 2> /dev/null
    diff "$ddir/jobs1.out" "$ddir/jobs4.out"
    diff "$ddir/jobs1.json" "$ddir/jobs4.json"
    echo "dram smoke: FR-FCFS 8-core co-run bit-identical across --jobs 1/4"
}

stage_asan() {
    echo "==== stage asan: ASan+UBSan build + tests (FDP_AUDIT=1) ===="
    cmake -B "$ROOT/build-asan" -S "$ROOT" \
        -DFDP_SANITIZE="address;undefined" \
        "${CMAKE_EXTRA[@]+"${CMAKE_EXTRA[@]}"}"
    cmake --build "$ROOT/build-asan" -j "$JOBS"
    FDP_AUDIT=1 ctest --test-dir "$ROOT/build-asan" --output-on-failure \
        -j "$JOBS"
}

stage_tsan() {
    echo "==== stage tsan: ThreadSanitizer build + parallel-harness ===="
    cmake -B "$ROOT/build-tsan" -S "$ROOT" -DFDP_SANITIZE=thread \
        "${CMAKE_EXTRA[@]+"${CMAKE_EXTRA[@]}"}"
    cmake --build "$ROOT/build-tsan" -j "$JOBS" \
        --target test_harness test_sim test_trace test_mc \
        fig09_overall mix05_corun fdp_sim_cli
    # The threaded surface: pool + scheduler + logging sink tests, the
    # trace suite (its golden test drives the pool at --jobs 4), the
    # multi-core suite (its mix-runner tests sweep co-runs and alone
    # baselines through the pool), then one real multi-threaded sweep
    # each for the single-core and co-run paths. mix05_corun gets a
    # small explicit budget — the full default is minutes under TSan.
    # halt_on_error so a race fails CI.
    TSAN_OPTIONS="halt_on_error=1" "$ROOT/build-tsan/tests/test_harness"
    TSAN_OPTIONS="halt_on_error=1" "$ROOT/build-tsan/tests/test_sim"
    TSAN_OPTIONS="halt_on_error=1" "$ROOT/build-tsan/tests/test_trace"
    TSAN_OPTIONS="halt_on_error=1" "$ROOT/build-tsan/tests/test_mc"
    TSAN_OPTIONS="halt_on_error=1" \
        "$ROOT/build-tsan/bench/fig09_overall" --quick --jobs 4 \
        > /dev/null
    TSAN_OPTIONS="halt_on_error=1" \
        "$ROOT/build-tsan/bench/mix05_corun" --mix mix2-stream \
        --mix mix4-bw --mix mix4-zoo --insts 50000 --jobs 4 > /dev/null
    # The widest co-run through the FR-FCFS controller: 8 per-core FDP
    # loops feeding one multi-channel scheduler under the pool.
    TSAN_OPTIONS="halt_on_error=1" \
        "$ROOT/build-tsan/bench/fdp_sim" --mix mix8-bw \
        --dram controller --channels 4 --insts 50000 --jobs 4 \
        > /dev/null
    echo "tsan stage: zero data races reported"
}

stage_static() {
    echo "==== stage static: static analysis ===="
    # The findings JSON lands in the build dir so CI can archive it.
    BUILD_DIR="$ROOT/build-ci" \
        FDP_FINDINGS_JSON="$ROOT/build-ci/fdp-findings.json" \
        "$ROOT/tools/run_static_analysis.sh"
}

stage_bench_smoke() {
    echo "==== stage bench-smoke: benchmark smoke (schema only) ===="
    local out="$ROOT/build-bench-ci/bench-smoke.json"
    "$ROOT/tools/bench.sh" --quick --build-dir "$ROOT/build-bench-ci" \
        --out "$out"
    python3 - "$out" <<'PYEOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
if doc.get("schema") != "fdp-results-v1":
    sys.exit(f"bad schema: {doc.get('schema')!r}")
entries = doc["entries"]
names = {e["name"] for e in entries}
for e in entries:
    if e["better"] not in ("higher", "lower"):
        sys.exit(f"entry {e['name']}: bad better {e['better']!r}")
    float(e["value"])
for required in ("micro/CacheAccessHit/ns", "macro/insts_per_s",
                 "macro/trace_replay/insts_per_s",
                 "macro/mc2/insts_per_s",
                 "micro/GhbPrefetcherObserve/ns",
                 "micro/StreamFsmTransition/ns",
                 "micro/WorkloadNext/ns",
                 "micro/StatScalarIncrement/ns",
                 "micro/StatBatchedIncrement/ns",
                 "micro/VldpObserve/ns",
                 "micro/DspatchObserve/ns",
                 "micro/ManagerIntervalTick/ns",
                 "micro/DramSchedulePick/ns",
                 "micro/DramBankTick/ns",
                 "macro/sweep_warmfork/speedup"):
    if required not in names:
        sys.exit(f"missing required entry {required}")
print(f"bench smoke: {len(entries)} entries, schema valid")
PYEOF
}

stage_bench_diff() {
    echo "==== stage bench-diff: trajectory gate vs committed baseline ===="
    local bdir="$ROOT/build-bench-ci"
    local fresh="$bdir/bench-fresh.json"
    # The binary revision feeds every sweep-store key, so cells cached
    # by an earlier commit (e.g. out of an actions/cache restore) can
    # never satisfy a lookup from this one.
    FDP_BINARY_REV="$(git -C "$ROOT" rev-parse --short HEAD \
        2>/dev/null || echo local)"
    export FDP_BINARY_REV
    "$ROOT/tools/bench.sh" --quick --build-dir "$bdir" --out "$fresh"
    cmake --build "$bdir" -j "$JOBS" \
        --target fdp_results_cli fig09_overall
    # Exact for deterministic counters, wide non-blocking tolerance for
    # timing. The verdict JSON is archived by the workflow on failure.
    "$bdir/bench/fdp_results" diff \
        "$ROOT/BENCH_quick_baseline.json" "$fresh" \
        --verdict "$bdir/bench-diff-verdict.json"

    echo "==== stage bench-diff: sweep-store resume smoke ===="
    # Cold paper sweep populating a fresh store, then a warm resume at
    # a different worker count: every cell must come from the store
    # (misses=0) and stdout must be bit-identical to the cold run.
    # Keep $sdir/store itself: the workflow restores it from
    # actions/cache, and stale-revision entries are misses by key.
    local sdir="$bdir/store-smoke"
    mkdir -p "$sdir"
    rm -f "$sdir"/cold.* "$sdir"/warm.*
    "$bdir/bench/fig09_overall" --quick --jobs 2 \
        --store "$sdir/store" > "$sdir/cold.out" 2> "$sdir/cold.err"
    "$bdir/bench/fig09_overall" --quick --jobs 4 \
        --store "$sdir/store" --resume \
        > "$sdir/warm.out" 2> "$sdir/warm.err"
    diff "$sdir/cold.out" "$sdir/warm.out"
    grep -q "misses=0" "$sdir/warm.err" || {
        echo "store smoke: warm resume re-simulated cached cells:" >&2
        grep "sweep-store:" "$sdir/warm.err" >&2 || true
        exit 1
    }
    echo "store smoke: warm resume hit every cell, stdout bit-identical"
}

case "$STAGE" in
  tier1)  stage_tier1 ;;
  asan)   stage_asan ;;
  tsan)   stage_tsan ;;
  static) stage_static ;;
  bench-smoke) stage_bench_smoke ;;
  bench-diff)  stage_bench_diff ;;
  bench)
    stage_bench_smoke
    stage_bench_diff
    ;;
  all)
    stage_tier1
    stage_asan
    stage_tsan
    stage_static
    stage_bench_smoke
    stage_bench_diff
    ;;
  *) usage ;;
esac

echo "==== CI: stage(s) '$STAGE' passed ===="
