#!/usr/bin/env bash
# CI entrypoint: the full correctness gate for one change.
#
#   1. tier-1:  default (RelWithDebInfo) build + full ctest
#   2. asan:    ASan+UBSan build + full ctest with FDP_AUDIT=1, so every
#               run also audits structural invariants at each sampling
#               interval boundary
#   3. static analysis: tools/run_static_analysis.sh (repo lint always;
#               clang-tidy/cppcheck when installed)
#
# Fails fast: any stage failing stops the pipeline with its exit status.

set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "==== stage 1: tier-1 build + tests ===="
cmake -B "$ROOT/build-ci" -S "$ROOT"
cmake --build "$ROOT/build-ci" -j "$JOBS"
ctest --test-dir "$ROOT/build-ci" --output-on-failure -j "$JOBS"

echo "==== stage 2: ASan+UBSan build + tests (FDP_AUDIT=1) ===="
cmake -B "$ROOT/build-asan" -S "$ROOT" -DFDP_SANITIZE="address;undefined"
cmake --build "$ROOT/build-asan" -j "$JOBS"
FDP_AUDIT=1 ctest --test-dir "$ROOT/build-asan" --output-on-failure \
    -j "$JOBS"

echo "==== stage 3: static analysis ===="
BUILD_DIR="$ROOT/build-ci" "$ROOT/tools/run_static_analysis.sh"

echo "==== CI: all stages passed ===="
