/**
 * @file
 * The fdp_analyze check registry.
 *
 * Rule catalog (ids are stable; every finding carries one):
 *
 *   unordered-iter       iteration over std::unordered_* containers
 *                        (order is unspecified => nondeterministic runs)
 *   pointer-order        pointer values used as an ordering: pointer-keyed
 *                        std::map/std::set, std::less<T*>,
 *                        reinterpret_cast to (u)intptr_t
 *   rng-only             randomness sources outside fdp::Rng
 *   wall-clock           wall-clock time sources (std::chrono clocks,
 *                        time()/clock()/gettimeofday/clock_gettime)
 *   audit-coverage       class in src/{mem,sim,core,mc,prefetch} with
 *                        mutable container/counter state that neither
 *                        derives fdp::Auditable nor carries a suppression
 *   typed-core-id        raw-integer core ids / CoreId::index() arithmetic
 *                        outside src/mc/
 *   unit-mixing          additive arithmetic mixing cycle/inst/byte
 *                        unit-suffixed identifiers
 *   no-raw-new           raw new/delete (own state via containers and
 *                        std::unique_ptr)
 *   pool-only-threading  raw threading primitives outside the sweep pool
 *   file-io              raw file I/O outside src/trace/,
 *                        harness/reporting, and the analyzer itself
 *   include-guard        missing or misnamed FDP_<DIR>_<STEM>_HH guards
 *   include-cycle        cyclic quoted includes
 *   layering             subsystem layering violations (include_graph.hh)
 *   suppression          malformed fdp-analyze suppression annotations
 *
 * All checks run over the lexer's token stream, so comments, string
 * literals, line breaks, and macro bodies cannot hide a violation.
 */

#ifndef FDP_ANALYZE_CHECKS_HH
#define FDP_ANALYZE_CHECKS_HH

#include <string>
#include <vector>

#include "analyze/findings.hh"
#include "analyze/source.hh"

namespace fdp::analyze
{

/** One catalog entry for --list-checks and the self-test. */
struct CheckInfo
{
    const char *rule;
    const char *summary;
};

/** Every registered rule, in catalog order. */
const std::vector<CheckInfo> &checkCatalog();

/**
 * Run every check over the tree and return suppression-filtered,
 * sorted findings.
 */
std::vector<Finding> runChecks(const SourceTree &tree);

} // namespace fdp::analyze

#endif // FDP_ANALYZE_CHECKS_HH
