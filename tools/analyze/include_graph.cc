#include "analyze/include_graph.hh"

#include <algorithm>
#include <cctype>
#include <set>

namespace fdp::analyze
{

namespace
{

/** Subsystem ranks under src/ (see header comment). */
const std::map<std::string, int> &
layerRanks()
{
    static const std::map<std::string, int> ranks = {
        {"sim", 0},  {"prefetch", 1}, {"workload", 1}, {"core", 2},
        {"mem", 3},  {"trace", 3},    {"cpu", 4},      {"snap", 5},
        {"harness", 6}, {"mc", 7},
        // manage sees only the abstract Prefetcher interface, so it
        // sits just above prefetch; concrete zoos are wired in harness.
        {"manage", 2},
        // dram depends only on sim so both mem (3) and core (2) can see
        // the DramBackend/PrefetchTier vocabulary without a cycle.
        {"dram", 1},
    };
    return ranks;
}

/** The quoted path of an `include "..."` directive, or empty. */
std::string
quotedIncludeTarget(const PpDirective &pp)
{
    std::size_t p = 0;
    while (p < pp.text.size() &&
           std::isspace(static_cast<unsigned char>(pp.text[p])))
        ++p;
    if (pp.text.compare(p, 7, "include") != 0)
        return "";
    std::size_t open = pp.text.find('"', p + 7);
    if (open == std::string::npos)
        return "";
    std::size_t close = pp.text.find('"', open + 1);
    if (close == std::string::npos)
        return "";
    return pp.text.substr(open + 1, close - open - 1);
}

} // namespace

IncludeGraph
buildIncludeGraph(const SourceTree &tree)
{
    IncludeGraph graph;
    for (const SourceFile &f : tree.files) {
        for (const PpDirective &pp : f.lx.pp) {
            std::string target = quotedIncludeTarget(pp);
            if (target.empty())
                continue;
            for (const char *top : {"src/", "tools/"}) {
                std::string resolved = top + target;
                if (tree.find(resolved)) {
                    graph.edges[f.relPath].push_back({resolved, pp.line});
                    break;
                }
            }
        }
    }
    return graph;
}

namespace
{

struct CycleFinder
{
    const IncludeGraph &graph;
    std::map<std::string, int> color;  // 0 white, 1 on stack, 2 done
    std::vector<std::string> stack;
    std::set<std::string> reported;  // normalized cycle keys
    std::vector<Finding> *findings;

    void visit(const std::string &node)
    {
        color[node] = 1;
        stack.push_back(node);
        auto it = graph.edges.find(node);
        if (it != graph.edges.end()) {
            for (const IncludeEdge &e : it->second) {
                int c = color[e.to];
                if (c == 1)
                    report(e.to);
                else if (c == 0)
                    visit(e.to);
            }
        }
        stack.pop_back();
        color[node] = 2;
    }

    void report(const std::string &back)
    {
        auto at = std::find(stack.begin(), stack.end(), back);
        std::vector<std::string> cycle(at, stack.end());
        // Rotate so the lexicographically smallest node leads: one
        // canonical report per cycle, wherever the DFS entered it.
        auto lead = std::min_element(cycle.begin(), cycle.end());
        std::rotate(cycle.begin(), lead, cycle.end());
        std::string key;
        std::string path;
        for (const std::string &n : cycle) {
            key += n + "|";
            path += n + " -> ";
        }
        path += cycle.front();
        if (!reported.insert(key).second)
            return;
        findings->push_back({cycle.front(), 1, "include-cycle",
                             "include cycle: " + path});
    }
};

} // namespace

void
checkIncludeCycles(const IncludeGraph &graph, std::vector<Finding> *findings)
{
    CycleFinder cf{graph, {}, {}, {}, findings};
    for (const auto &[node, edges] : graph.edges)
        if (cf.color[node] == 0)
            cf.visit(node);
}

std::string
expectedGuard(const std::string &relPath)
{
    // src/mem/cache.hh -> FDP_MEM_CACHE_HH;
    // tools/analyze/lexer.hh -> FDP_ANALYZE_LEXER_HH.
    std::string guard = "FDP";
    std::size_t pos = 0;
    bool first = true;
    while (pos < relPath.size()) {
        std::size_t next = relPath.find('/', pos);
        std::string part = relPath.substr(
            pos, next == std::string::npos ? next : next - pos);
        pos = next == std::string::npos ? relPath.size() : next + 1;
        if (first && (part == "src" || part == "tools")) {
            first = false;
            continue;
        }
        first = false;
        if (pos >= relPath.size()) {  // filename: strip extension
            std::size_t dot = part.rfind('.');
            if (dot != std::string::npos)
                part = part.substr(0, dot);
        }
        guard += '_';
        for (char c : part)
            guard += std::isalnum(static_cast<unsigned char>(c))
                         ? static_cast<char>(
                               std::toupper(static_cast<unsigned char>(c)))
                         : '_';
    }
    return guard + "_HH";
}

void
checkIncludeGuards(const SourceTree &tree, std::vector<Finding> *findings)
{
    for (const SourceFile &f : tree.files) {
        if (!f.isHeader())
            continue;
        const std::string want = expectedGuard(f.relPath);
        const PpDirective *ifndef = nullptr;
        for (const PpDirective &pp : f.lx.pp) {
            std::string t = pp.text;
            std::size_t p = t.find_first_not_of(" \t");
            if (p == std::string::npos)
                continue;
            t = t.substr(p);
            if (t.rfind("ifndef", 0) == 0) {
                ifndef = &pp;
                break;
            }
            if (t.rfind("pragma", 0) == 0 &&
                t.find("once") != std::string::npos) {
                findings->push_back({f.relPath, pp.line, "include-guard",
                                     "#pragma once: this tree uses named "
                                     "guards (" + want + ")"});
                break;
            }
        }
        if (!ifndef) {
            if (findings->empty() || findings->back().file != f.relPath ||
                findings->back().rule != "include-guard")
                findings->push_back({f.relPath, 1, "include-guard",
                                     "missing include guard " + want});
            continue;
        }
        auto word = [](const std::string &text, std::size_t skip) {
            std::size_t a = text.find_first_not_of(" \t", skip);
            if (a == std::string::npos)
                return std::string();
            std::size_t b = text.find_first_of(" \t", a);
            return text.substr(a, b == std::string::npos ? b : b - a);
        };
        std::string t = ifndef->text;
        std::string got = word(t, t.find("ifndef") + 6);
        if (got != want) {
            findings->push_back({f.relPath, ifndef->line, "include-guard",
                                 "guard " + got + " should be " + want});
            continue;
        }
        // The matching #define must follow.
        bool defined = false;
        for (const PpDirective &pp : f.lx.pp) {
            if (pp.line < ifndef->line)
                continue;
            std::size_t d = pp.text.find("define");
            if (pp.text.find_first_not_of(" \t") == d && d != std::string::npos) {
                defined = word(pp.text, d + 6) == want;
                break;
            }
        }
        if (!defined)
            findings->push_back({f.relPath, ifndef->line, "include-guard",
                                 "#define does not match guard " + want});
    }
}

void
checkLayering(const IncludeGraph &graph, std::vector<Finding> *findings)
{
    const auto &ranks = layerRanks();
    for (const auto &[from, edges] : graph.edges) {
        const bool fromSrc = pathUnder(from, "src");
        const bool fromAnalyze = pathUnder(from, "tools/analyze") ||
                                 from == "tools/fdp_analyze.cc";
        const std::string fromDir = dirOf(from, 2);
        for (const IncludeEdge &e : edges) {
            const bool toSrc = pathUnder(e.to, "src");
            const bool toAnalyze = pathUnder(e.to, "tools/analyze");
            if (fromAnalyze) {
                if (!toAnalyze)
                    findings->push_back(
                        {from, e.line, "layering",
                         "fdp_analyze is self-contained and must not "
                         "include " + e.to});
                continue;
            }
            if (fromSrc && !toSrc) {
                findings->push_back({from, e.line, "layering",
                                     "src/ must not include tools/ (" +
                                         e.to + ")"});
                continue;
            }
            if (!fromSrc || !toSrc)
                continue;  // other tools/ may include anything
            const std::string toDir = dirOf(e.to, 2);
            if (fromDir == toDir)
                continue;
            auto fr = ranks.find(fromDir.substr(4));
            auto tr = ranks.find(toDir.substr(4));
            if (fr == ranks.end()) {
                findings->push_back(
                    {from, e.line, "layering",
                     "directory " + fromDir + " has no layer rank; add it "
                     "to the layer map in tools/analyze/include_graph.cc"});
                continue;
            }
            if (tr == ranks.end()) {
                findings->push_back(
                    {from, e.line, "layering",
                     "directory " + toDir + " has no layer rank; add it "
                     "to the layer map in tools/analyze/include_graph.cc"});
                continue;
            }
            if (tr->second >= fr->second)
                findings->push_back(
                    {from, e.line, "layering",
                     fromDir + " (rank " + std::to_string(fr->second) +
                         ") must not include " + e.to + " (rank " +
                         std::to_string(tr->second) +
                         "); only strictly lower layers are visible"});
        }
    }
}

} // namespace fdp::analyze
