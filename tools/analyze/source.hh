/**
 * @file
 * Loading a source tree into lexed form.
 *
 * A SourceTree holds every .cc/.hh under the analyzed root's `src/`
 * and `tools/` directories (the same scope tools/fdp_lint.py covers),
 * lexed and keyed by root-relative path with forward slashes.
 */

#ifndef FDP_ANALYZE_SOURCE_HH
#define FDP_ANALYZE_SOURCE_HH

#include <string>
#include <string_view>
#include <vector>

#include "analyze/token.hh"

namespace fdp::analyze
{

/** One lexed source file. */
struct SourceFile
{
    std::string relPath;  ///< e.g. "src/mem/cache.hh"
    LexedFile lx;

    bool isHeader() const
    {
        return relPath.size() > 3 &&
               relPath.compare(relPath.size() - 3, 3, ".hh") == 0;
    }
};

/** Every analyzed file of one root, sorted by relPath. */
struct SourceTree
{
    std::string root;
    std::vector<SourceFile> files;

    /** The file at `relPath`, or nullptr. */
    const SourceFile *find(std::string_view relPath) const;
};

/**
 * Load and lex every .cc/.hh under root/src and root/tools. Missing
 * directories are skipped; unreadable files are fatal (analysis over
 * a partial tree would silently under-report).
 */
SourceTree loadTree(const std::string &root);

/** True when `relPath` is `prefix` or lies under `prefix/`. */
bool pathUnder(std::string_view relPath, std::string_view prefix);

/** Leading directory components, e.g. dirOf("src/mem/cache.hh", 2) == "src/mem". */
std::string dirOf(std::string_view relPath, int components);

} // namespace fdp::analyze

#endif // FDP_ANALYZE_SOURCE_HH
