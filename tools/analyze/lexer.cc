#include "analyze/lexer.hh"

#include <cctype>
#include <cstddef>

namespace fdp::analyze
{

namespace
{

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
digit(char c)
{
    return std::isdigit(static_cast<unsigned char>(c));
}

/** Multi-char punctuators, longest first so greedy matching is right. */
constexpr std::string_view kPuncts[] = {
    "...", "->*", "<<=", ">>=", "<=>", "::", "->", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "+=",  "-=", "*=", "/=", "%=", "&=", "|=",
    "^=",  "++",  "--",  "##",
};

struct Lexer
{
    std::string_view s;
    std::size_t i = 0;
    int line = 1;
    bool atLineStart = true;  ///< only whitespace seen on this line
    bool allowPp;             ///< recognize # directives (off in macro bodies)
    LexedFile out;

    explicit Lexer(std::string_view text, bool pp) : s(text), allowPp(pp) {}

    char cur() const { return i < s.size() ? s[i] : '\0'; }
    char peek(std::size_t k = 1) const
    {
        return i + k < s.size() ? s[i + k] : '\0';
    }

    void run();
    void lexLineComment();
    void lexBlockComment();
    void lexString();
    void lexRawString();
    void lexChar();
    void lexNumber();
    void lexIdentOrLiteral();
    void lexDirective();
    void tokenizeMacroBody(const std::string &text, int atLine);
};

void
Lexer::lexLineComment()
{
    const int start = line;
    i += 2;
    std::size_t from = i;
    while (i < s.size() && s[i] != '\n')
        ++i;
    out.comments.push_back({start, std::string(s.substr(from, i - from))});
}

void
Lexer::lexBlockComment()
{
    const int start = line;
    i += 2;
    std::size_t from = i;
    while (i < s.size() && !(s[i] == '*' && peek() == '/')) {
        if (s[i] == '\n')
            ++line;
        ++i;
    }
    out.comments.push_back({start, std::string(s.substr(from, i - from))});
    i += 2;  // past the terminator (harmless at EOF)
}

void
Lexer::lexString()
{
    const int start = line;
    ++i;  // opening quote
    std::size_t from = i;
    while (i < s.size() && s[i] != '"') {
        if (s[i] == '\\' && i + 1 < s.size())
            ++i;
        if (s[i] == '\n')
            ++line;
        ++i;
    }
    out.tokens.push_back({Tok::Str, std::string(s.substr(from, i - from)),
                          start});
    ++i;  // closing quote
}

void
Lexer::lexRawString()
{
    // At the opening quote of R"delim( ... )delim".
    const int start = line;
    ++i;
    std::size_t d0 = i;
    while (i < s.size() && s[i] != '(')
        ++i;
    std::string close = ")" + std::string(s.substr(d0, i - d0)) + "\"";
    ++i;  // past '('
    std::size_t from = i;
    while (i < s.size() && s.substr(i, close.size()) != close) {
        if (s[i] == '\n')
            ++line;
        ++i;
    }
    out.tokens.push_back({Tok::Str, std::string(s.substr(from, i - from)),
                          start});
    i += close.size();
}

void
Lexer::lexChar()
{
    const int start = line;
    ++i;
    std::size_t from = i;
    while (i < s.size() && s[i] != '\'') {
        if (s[i] == '\\' && i + 1 < s.size())
            ++i;
        if (s[i] == '\n')
            ++line;
        ++i;
    }
    out.tokens.push_back({Tok::Chr, std::string(s.substr(from, i - from)),
                          start});
    ++i;
}

void
Lexer::lexNumber()
{
    const int start = line;
    std::size_t from = i;
    while (i < s.size()) {
        char c = s[i];
        if (identChar(c) || c == '.') {
            // Exponent sign: 1e+9, 0x1p-3.
            if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') &&
                (peek() == '+' || peek() == '-') && from < i) {
                i += 2;
                continue;
            }
            ++i;
        } else if (c == '\'' && identChar(peek())) {
            i += 2;  // digit separator
        } else {
            break;
        }
    }
    out.tokens.push_back({Tok::Number, std::string(s.substr(from, i - from)),
                          start});
}

void
Lexer::lexIdentOrLiteral()
{
    const int start = line;
    std::size_t from = i;
    while (i < s.size() && identChar(s[i]))
        ++i;
    std::string_view id = s.substr(from, i - from);
    // Encoding/raw prefixes glue an identifier to a literal.
    if (cur() == '"') {
        if (id == "R" || id == "u8R" || id == "uR" || id == "UR" ||
            id == "LR") {
            lexRawString();
            return;
        }
        if (id == "u8" || id == "u" || id == "U" || id == "L") {
            lexString();
            return;
        }
    }
    if (cur() == '\'' && (id == "u8" || id == "u" || id == "U" || id == "L")) {
        lexChar();
        return;
    }
    out.tokens.push_back({Tok::Ident, std::string(id), start});
}

void
Lexer::tokenizeMacroBody(const std::string &text, int atLine)
{
    Lexer body(text, false);
    body.run();
    for (Token t : body.out.tokens) {
        t.line = atLine;  // continuations collapse to the directive line
        out.tokens.push_back(t);
    }
    for (Comment c : body.out.comments) {
        c.line = atLine;
        out.comments.push_back(c);
    }
}

void
Lexer::lexDirective()
{
    const int start = line;
    ++i;  // '#'
    std::string text;
    while (i < s.size()) {
        char c = s[i];
        if (c == '\n')
            break;
        if (c == '\\' && peek() == '\n') {
            text += ' ';
            i += 2;
            ++line;
            continue;
        }
        if (c == '/' && peek() == '/') {
            lexLineComment();
            break;
        }
        if (c == '/' && peek() == '*') {
            lexBlockComment();
            text += ' ';
            continue;
        }
        text += c;
        ++i;
    }
    out.pp.push_back({start, text});

    // Re-lex #define replacement lists so token checks see macro bodies.
    std::size_t p = 0;
    while (p < text.size() && std::isspace(static_cast<unsigned char>(text[p])))
        ++p;
    if (text.compare(p, 6, "define") != 0 ||
        (p + 6 < text.size() && identChar(text[p + 6])))
        return;
    p += 6;
    while (p < text.size() && std::isspace(static_cast<unsigned char>(text[p])))
        ++p;
    while (p < text.size() && identChar(text[p]))
        ++p;  // macro name
    if (p < text.size() && text[p] == '(') {
        int depth = 0;
        do {
            if (text[p] == '(')
                ++depth;
            else if (text[p] == ')')
                --depth;
            ++p;
        } while (p < text.size() && depth > 0);
    }
    if (p < text.size())
        tokenizeMacroBody(text.substr(p), start);
}

void
Lexer::run()
{
    while (i < s.size()) {
        char c = s[i];
        if (c == '\n') {
            ++line;
            ++i;
            atLineStart = true;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == '/' && peek() == '/') {
            lexLineComment();
            continue;
        }
        if (c == '/' && peek() == '*') {
            lexBlockComment();
            continue;
        }
        if (c == '#' && allowPp && atLineStart) {
            lexDirective();
            atLineStart = false;
            continue;
        }
        atLineStart = false;
        if (identStart(c)) {
            lexIdentOrLiteral();
            continue;
        }
        if (digit(c) || (c == '.' && digit(peek()))) {
            lexNumber();
            continue;
        }
        if (c == '"') {
            lexString();
            continue;
        }
        if (c == '\'') {
            lexChar();
            continue;
        }
        bool matched = false;
        for (std::string_view p : kPuncts) {
            if (s.substr(i, p.size()) == p) {
                out.tokens.push_back({Tok::Punct, std::string(p), line});
                i += p.size();
                matched = true;
                break;
            }
        }
        if (!matched) {
            out.tokens.push_back({Tok::Punct, std::string(1, c), line});
            ++i;
        }
    }
}

} // namespace

LexedFile
lex(std::string_view text)
{
    Lexer lx(text, true);
    lx.run();
    return std::move(lx.out);
}

} // namespace fdp::analyze
