/**
 * @file
 * Include-graph checks: cycles, guard naming, and layering.
 *
 * The layering contract (rule `layering`) is the subsystem partial
 * order the build's library graph implies, lowest first:
 *
 *   rank 0  sim
 *   rank 1  prefetch, workload
 *   rank 2  core
 *   rank 3  mem, trace
 *   rank 4  cpu
 *   rank 5  harness
 *   rank 6  mc
 *
 * A file may include its own directory or any strictly lower rank;
 * same-rank cross-directory includes (mem <-> trace) and upward
 * includes (mem -> harness) are findings. Directories absent from the
 * map are findings too, so a new subsystem (prefetcher zoo, DRAM
 * controller, RL throttler) must take a conscious layering position
 * before it can include anything. `tools/analyze/` must stay
 * self-contained: including any simulator header from it — or any
 * tools header from `src/` — is a violation.
 *
 * Non-analyzer `tools/` sources (the fdp_sim / fdp_trace / fdp_results
 * CLIs) sit above every rank and may include anything under src/ —
 * e.g. fdp_results.cc pulls harness/result_store.hh and
 * harness/results_diff.hh — but never the other way around.
 */

#ifndef FDP_ANALYZE_INCLUDE_GRAPH_HH
#define FDP_ANALYZE_INCLUDE_GRAPH_HH

#include <map>
#include <string>
#include <vector>

#include "analyze/findings.hh"
#include "analyze/source.hh"

namespace fdp::analyze
{

/** One `#include "..."` whose target resolves inside the tree. */
struct IncludeEdge
{
    std::string to;  ///< resolved relPath, e.g. "src/sim/check.hh"
    int line;
};

/** Quoted-include edges per file, for files with at least one. */
struct IncludeGraph
{
    std::map<std::string, std::vector<IncludeEdge>> edges;
};

/**
 * Resolve every `#include "P"` against src/P then tools/P (matching
 * the build's include directories). Unresolved includes are external
 * headers and carry no edge.
 */
IncludeGraph buildIncludeGraph(const SourceTree &tree);

/** Rule `include-cycle`: report each include cycle once. */
void checkIncludeCycles(const IncludeGraph &graph,
                        std::vector<Finding> *findings);

/** Rule `include-guard`: FDP_<DIR>_<STEM>_HH, #ifndef then #define. */
void checkIncludeGuards(const SourceTree &tree,
                        std::vector<Finding> *findings);

/** Rule `layering`: enforce the subsystem partial order above. */
void checkLayering(const IncludeGraph &graph, std::vector<Finding> *findings);

/** Expected guard for a header path (exposed for tests). */
std::string expectedGuard(const std::string &relPath);

} // namespace fdp::analyze

#endif // FDP_ANALYZE_INCLUDE_GRAPH_HH
