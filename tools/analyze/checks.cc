#include "analyze/checks.hh"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

#include "analyze/include_graph.hh"
#include "analyze/suppress.hh"

namespace fdp::analyze
{

namespace
{

// ---------------------------------------------------------------------------
// Token-stream helpers.
// ---------------------------------------------------------------------------

using Tokens = std::vector<Token>;

bool
is(const Tokens &t, std::size_t i, std::string_view text)
{
    // Never match inside string/char literals: `"new"` is data, not code.
    return i < t.size() && t[i].kind != Tok::Str && t[i].kind != Tok::Chr &&
           t[i].text == text;
}

bool
isIdent(const Tokens &t, std::size_t i)
{
    return i < t.size() && t[i].kind == Tok::Ident;
}

/** Index just past the '>' matching the '<' at `i`, or npos. */
std::size_t
skipTemplateArgs(const Tokens &t, std::size_t i)
{
    if (!is(t, i, "<"))
        return i;
    int depth = 0;
    for (std::size_t k = i; k < t.size(); ++k) {
        const std::string &x = t[k].text;
        if (x == "<")
            ++depth;
        else if (x == ">")
            --depth;
        else if (x == ">>")
            depth -= 2;
        else if (x == ";")
            return std::string::npos;  // not a template after all
        if (depth <= 0)
            return k + 1;
    }
    return std::string::npos;
}

bool
isArithOp(const std::string &x)
{
    return x == "+" || x == "-" || x == "*" || x == "/" || x == "%";
}

/** Lower-cased identifier with trailing underscores stripped. */
std::string
canonIdent(const std::string &text)
{
    std::string s;
    for (char c : text)
        s += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    while (!s.empty() && s.back() == '_')
        s.pop_back();
    return s;
}

bool
endsWith(const std::string &s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// ---------------------------------------------------------------------------
// Determinism checks.
// ---------------------------------------------------------------------------

const std::set<std::string> &
unorderedContainers()
{
    static const std::set<std::string> names = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    return names;
}

/** Names declared in this file with a std::unordered_* type. */
std::set<std::string>
collectUnorderedNames(const Tokens &t)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
        if (!is(t, i, "std") || !is(t, i + 1, "::") || !isIdent(t, i + 2) ||
            !unorderedContainers().count(t[i + 2].text))
            continue;
        std::size_t k = i + 3;
        if (is(t, k, "<"))
            k = skipTemplateArgs(t, k);
        if (k == std::string::npos)
            continue;
        while (k < t.size() &&
               (t[k].text == "&" || t[k].text == "*" || t[k].text == "const"))
            ++k;
        if (isIdent(t, k))
            names.insert(t[k].text);
    }
    return names;
}

void
checkUnorderedIter(const SourceFile &f, std::vector<Finding> *findings)
{
    const Tokens &t = f.lx.tokens;
    std::set<std::string> names = collectUnorderedNames(t);

    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        // Declaring one is fine; *iterating* one is the finding.
        if (is(t, i, "for") && is(t, i + 1, "(")) {
            int depth = 0;
            std::size_t colon = 0, close = 0;
            for (std::size_t k = i + 1; k < t.size(); ++k) {
                const std::string &x = t[k].text;
                if (x == "(")
                    ++depth;
                else if (x == ")" && --depth == 0) {
                    close = k;
                    break;
                } else if (x == ":" && depth == 1 && !colon)
                    colon = k;
            }
            if (!colon || !close)
                continue;
            for (std::size_t k = colon + 1; k < close; ++k) {
                if (isIdent(t, k) && names.count(t[k].text)) {
                    findings->push_back(
                        {f.relPath, t[i].line, "unordered-iter",
                         "range-for over std::unordered_* container `" +
                             t[k].text + "': iteration order is "
                             "unspecified and breaks bit-identical runs "
                             "(use an ordered container or sort first)"});
                    break;
                }
            }
        }
        if (isIdent(t, i) && names.count(t[i].text) &&
            (is(t, i + 1, ".") || is(t, i + 1, "->")) && i + 3 < t.size()) {
            const std::string &m = t[i + 2].text;
            if ((m == "begin" || m == "cbegin" || m == "rbegin" ||
                 m == "crbegin") &&
                is(t, i + 3, "(")) {
                findings->push_back(
                    {f.relPath, t[i].line, "unordered-iter",
                     "iterator walk of std::unordered_* container `" +
                         t[i].text + "': iteration order is unspecified "
                         "and breaks bit-identical runs"});
            }
        }
    }
}

void
checkPointerOrder(const SourceFile &f, std::vector<Finding> *findings)
{
    const Tokens &t = f.lx.tokens;
    static const std::set<std::string> ordered = {"map", "set", "multimap",
                                                  "multiset"};
    for (std::size_t i = 0; i + 3 < t.size(); ++i) {
        if (is(t, i, "std") && is(t, i + 1, "::") && isIdent(t, i + 2) &&
            ordered.count(t[i + 2].text) && is(t, i + 3, "<")) {
            // A '*' anywhere in the first template argument means the
            // ordering key is a pointer value, which varies run to run.
            int depth = 0;
            for (std::size_t k = i + 3; k < t.size(); ++k) {
                const std::string &x = t[k].text;
                if (x == "<")
                    ++depth;
                else if (x == ">" || x == ">>")
                    depth -= x == ">>" ? 2 : 1;
                else if (x == ";")
                    break;
                else if (x == "," && depth == 1)
                    break;
                else if (x == "*") {
                    findings->push_back(
                        {f.relPath, t[k].line, "pointer-order",
                         "pointer-keyed std::" + t[i + 2].text +
                             ": ordering by pointer value differs run to "
                             "run; key by a stable id instead"});
                    break;
                }
                if (depth <= 0)
                    break;
            }
        }
        if (is(t, i, "std") && is(t, i + 1, "::") && is(t, i + 2, "less") &&
            is(t, i + 3, "<")) {
            std::size_t end = skipTemplateArgs(t, i + 3);
            for (std::size_t k = i + 3;
                 end != std::string::npos && k < end; ++k) {
                if (t[k].text == "*") {
                    findings->push_back(
                        {f.relPath, t[k].line, "pointer-order",
                         "std::less over a pointer type: pointer order "
                         "differs run to run"});
                    break;
                }
            }
        }
        if (is(t, i, "reinterpret_cast") && is(t, i + 1, "<")) {
            std::size_t end = skipTemplateArgs(t, i + 1);
            for (std::size_t k = i + 1;
                 end != std::string::npos && k < end; ++k) {
                if (isIdent(t, k) && endsWith(t[k].text, "intptr_t")) {
                    findings->push_back(
                        {f.relPath, t[k].line, "pointer-order",
                         "pointer value converted to an integer: using it "
                         "as a key, seed, or sort input differs run to "
                         "run"});
                    break;
                }
            }
        }
    }
}

/** Shared prev-token logic: is t[i] a plain or std:: qualified call? */
bool
calledBare(const Tokens &t, std::size_t i)
{
    if (i == 0)
        return true;
    const std::string &prev = t[i - 1].text;
    if (prev == "." || prev == "->")
        return false;  // member function of some object: not the libc one
    if (prev == "::")
        return i >= 2 && is(t, i - 2, "std");
    return true;
}

void
checkRngOnly(const SourceFile &f, std::vector<Finding> *findings)
{
    if (f.relPath == "src/sim/rng.hh")
        return;
    const Tokens &t = f.lx.tokens;
    static const std::set<std::string> engines = {
        "mt19937",       "mt19937_64",       "minstd_rand",
        "minstd_rand0",  "random_device",    "default_random_engine",
        "knuth_b",       "ranlux24",         "ranlux48"};
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (is(t, i, "std") && is(t, i + 1, "::") && isIdent(t, i + 2) &&
            engines.count(t[i + 2].text)) {
            findings->push_back({f.relPath, t[i + 2].line, "rng-only",
                                 "randomness source std::" + t[i + 2].text +
                                     " outside fdp::Rng (use sim/rng.hh so "
                                     "every seed is controlled)"});
        }
        if (isIdent(t, i) &&
            (t[i].text == "rand" || t[i].text == "srand") &&
            is(t, i + 1, "(") && calledBare(t, i)) {
            findings->push_back({f.relPath, t[i].line, "rng-only",
                                 t[i].text + "() outside fdp::Rng (use "
                                 "sim/rng.hh so every seed is controlled)"});
        }
    }
}

void
checkWallClock(const SourceFile &f, std::vector<Finding> *findings)
{
    const Tokens &t = f.lx.tokens;
    static const std::set<std::string> clocks = {
        "steady_clock", "system_clock", "high_resolution_clock"};
    static const std::set<std::string> cApis = {
        "time", "clock", "gettimeofday", "clock_gettime", "timespec_get"};
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (is(t, i, "chrono") && is(t, i + 1, "::") && isIdent(t, i + 2) &&
            clocks.count(t[i + 2].text)) {
            findings->push_back(
                {f.relPath, t[i + 2].line, "wall-clock",
                 "wall-clock source std::chrono::" + t[i + 2].text +
                     ": simulated behavior must never depend on host "
                     "time (suppress if only reporting throughput)"});
        }
        if (isIdent(t, i) && cApis.count(t[i].text) && is(t, i + 1, "(") &&
            calledBare(t, i)) {
            findings->push_back(
                {f.relPath, t[i].line, "wall-clock",
                 t[i].text + "(): simulated behavior must never depend "
                 "on host time (suppress if only reporting throughput)"});
        }
    }
}

// ---------------------------------------------------------------------------
// Audit coverage.
// ---------------------------------------------------------------------------

struct ClassDecl
{
    std::string name;
    std::vector<std::string> bases;
    bool isClass = false;  ///< `class` keyword (structs are data records)
    int line = 0;
    std::size_t bodyBegin = 0, bodyEnd = 0;  ///< token indices of { }
    bool hasBody = false;
};

std::vector<ClassDecl>
collectClasses(const SourceFile &f)
{
    const Tokens &t = f.lx.tokens;
    std::vector<ClassDecl> out;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (!isIdent(t, i) || (t[i].text != "class" && t[i].text != "struct"))
            continue;
        if (i > 0 && is(t, i - 1, "enum"))
            continue;
        if (!isIdent(t, i + 1))
            continue;
        std::size_t j = i + 1;
        // `template <class T>` / `<class T, ...>`: a type parameter,
        // not a declaration.
        if (is(t, j + 1, ">") || is(t, j + 1, ",") || is(t, j + 1, "=") ||
            is(t, j + 1, ">>"))
            continue;
        ClassDecl decl;
        decl.name = t[j].text;
        decl.isClass = t[i].text == "class";
        decl.line = t[i].line;
        ++j;
        if (is(t, j, "final"))
            ++j;
        if (is(t, j, ";"))
            continue;  // forward declaration
        if (is(t, j, ":")) {
            ++j;
            // Base-specifier list: remember the terminal identifier of
            // each qualified base name.
            std::string last;
            while (j < t.size() && !is(t, j, "{") && !is(t, j, ";")) {
                const std::string &x = t[j].text;
                if (x == "<") {
                    j = skipTemplateArgs(t, j);
                    if (j == std::string::npos)
                        break;
                    continue;
                }
                if (x == ",") {
                    if (!last.empty())
                        decl.bases.push_back(last);
                    last.clear();
                } else if (t[j].kind == Tok::Ident && x != "public" &&
                           x != "protected" && x != "private" &&
                           x != "virtual") {
                    last = x;
                }
                ++j;
            }
            if (!last.empty())
                decl.bases.push_back(last);
        }
        if (j == std::string::npos || !is(t, j, "{"))
            continue;
        decl.hasBody = true;
        decl.bodyBegin = j;
        int depth = 0;
        for (std::size_t k = j; k < t.size(); ++k) {
            if (t[k].text == "{")
                ++depth;
            else if (t[k].text == "}" && --depth == 0) {
                decl.bodyEnd = k;
                break;
            }
        }
        if (decl.bodyEnd)
            out.push_back(std::move(decl));
    }
    return out;
}

const std::set<std::string> &
statefulContainers()
{
    static const std::set<std::string> names = {
        "vector", "deque",          "list",          "map",
        "set",    "multimap",       "multiset",      "unordered_map",
        "unordered_set", "unordered_multimap", "unordered_multiset",
        "array",  "stack",          "queue",         "priority_queue",
        "bitset"};
    return names;
}

/** Does one member-declaration token run hold container/counter state? */
bool
runIsStateful(const std::vector<const Token *> &run)
{
    if (run.empty())
        return false;
    static const std::set<std::string> skipLead = {
        "using", "typedef", "friend",  "static", "enum",
        "class", "struct",  "template", "union",  "public",
        "private", "protected", "operator"};
    if (skipLead.count(run.front()->text))
        return false;
    int angle = 0;
    for (std::size_t k = 0; k < run.size(); ++k) {
        const std::string &x = run[k]->text;
        if (x == "(")
            return false;  // function declaration
        if (x == "<")
            ++angle;
        else if (x == ">")
            --angle;
        else if (x == ">>")
            angle -= 2;
        // Top-level const => immutable member, set once at construction.
        if (x == "const" && angle <= 0)
            return false;
    }
    for (std::size_t k = 0; k < run.size(); ++k) {
        const std::string &x = run[k]->text;
        if (x == "Counter" || x == "ScalarStat" || x == "DistributionStat")
            return true;
        if (k + 2 < run.size() && x == "std" && run[k + 1]->text == "::" &&
            statefulContainers().count(run[k + 2]->text))
            return true;
    }
    return false;
}

/**
 * The declared name of a member run: the last identifier before any
 * `=` initializer (for `std::vector<Run> rows_;` that is `rows_`, not
 * `std`). Falls back to the run's first token.
 */
const Token *
memberName(const std::vector<const Token *> &run)
{
    std::size_t end = run.size();
    int angle = 0;
    for (std::size_t k = 0; k < run.size(); ++k) {
        const std::string &x = run[k]->text;
        if (x == "<")
            ++angle;
        else if (x == ">")
            --angle;
        else if (x == ">>")
            angle -= 2;
        else if (x == "=" && angle <= 0) {
            end = k;
            break;
        }
    }
    for (std::size_t k = end; k-- > 0;)
        if (run[k]->kind == Tok::Ident)
            return run[k];
    return run.front();
}

/** Name token of the first stateful member run of a class body. */
const Token *
findStatefulMember(const Tokens &t, const ClassDecl &decl)
{
    std::vector<const Token *> run;
    for (std::size_t k = decl.bodyBegin + 1; k < decl.bodyEnd; ++k) {
        const std::string &x = t[k].text;
        if (x == "{") {
            // A brace group: a method body if the run has a '(',
            // otherwise a brace initializer. Skip it either way; a
            // method body also terminates the run.
            bool isFunction = false;
            for (const Token *r : run)
                if (r->text == "(") {
                    isFunction = true;
                    break;
                }
            int depth = 0;
            while (k < decl.bodyEnd) {
                if (t[k].text == "{")
                    ++depth;
                else if (t[k].text == "}" && --depth == 0)
                    break;
                ++k;
            }
            if (isFunction)
                run.clear();
            continue;
        }
        if (x == ";") {
            if (runIsStateful(run))
                return memberName(run);
            run.clear();
            continue;
        }
        if (x == ":" && run.size() == 1 &&
            (run[0]->text == "public" || run[0]->text == "private" ||
             run[0]->text == "protected")) {
            run.clear();
            continue;
        }
        run.push_back(&t[k]);
    }
    return nullptr;
}

void
collectClassHierarchy(const SourceTree &tree,
                      std::map<std::string, std::vector<std::string>> *bases)
{
    for (const SourceFile &f : tree.files)
        for (const ClassDecl &d : collectClasses(f))
            for (const std::string &b : d.bases)
                (*bases)[d.name].push_back(b);
}

bool
derivesFrom(const std::string &name, const std::string &target,
            const std::map<std::string, std::vector<std::string>> &bases,
            std::set<std::string> *visiting)
{
    if (name == target)
        return true;
    if (!visiting->insert(name).second)
        return false;  // inheritance cycle: corrupt input, stay safe
    auto it = bases.find(name);
    if (it == bases.end())
        return false;
    for (const std::string &b : it->second)
        if (derivesFrom(b, target, bases, visiting))
            return true;
    return false;
}

bool
inAuditScope(const std::string &relPath)
{
    static const char *scope[] = {"src/mem", "src/sim", "src/core", "src/mc",
                                  "src/prefetch"};
    for (const char *dir : scope)
        if (pathUnder(relPath, dir))
            return true;
    return false;
}

void
checkAuditCoverage(const SourceFile &f,
                   const std::map<std::string, std::vector<std::string>> &bases,
                   std::vector<Finding> *findings)
{
    if (!inAuditScope(f.relPath))
        return;
    for (const ClassDecl &d : collectClasses(f)) {
        if (!d.isClass || !d.hasBody)
            continue;  // structs are passive records audited by owners
        std::set<std::string> visiting;
        if (derivesFrom(d.name, "Auditable", bases, &visiting))
            continue;
        const Token *member = findStatefulMember(f.lx.tokens, d);
        if (!member)
            continue;
        findings->push_back(
            {f.relPath, d.line, "audit-coverage",
             "class `" + d.name + "' holds mutable container/counter "
             "state (`" + member->text + "' member, line " +
                 std::to_string(member->line) + ") but does not derive "
                 "fdp::Auditable; implement audit() or add "
                 "// fdp-analyze: suppress(audit-coverage, reason)"});
    }
}

/**
 * Snapshot coverage rides the same hierarchy walk: a class important
 * enough to audit holds checkpointable state, so it must also be
 * capturable by fdpsnap-v1 machine snapshots. Genuinely transient
 * state earns a reasoned suppression instead.
 */
void
checkSnapshotCoverage(
    const SourceFile &f,
    const std::map<std::string, std::vector<std::string>> &bases,
    std::vector<Finding> *findings)
{
    if (!inAuditScope(f.relPath))
        return;
    for (const ClassDecl &d : collectClasses(f)) {
        if (!d.isClass || !d.hasBody)
            continue;
        if (d.name == "Auditable" || d.name == "Snapshottable")
            continue;  // the interfaces themselves
        std::set<std::string> visiting;
        if (!derivesFrom(d.name, "Auditable", bases, &visiting))
            continue;
        visiting.clear();
        if (derivesFrom(d.name, "Snapshottable", bases, &visiting))
            continue;
        findings->push_back(
            {f.relPath, d.line, "snapshot-coverage",
             "class `" + d.name + "' derives fdp::Auditable (it holds "
             "simulation state worth checking) but not fdp::Snapshottable, "
             "so fdpsnap-v1 machine snapshots cannot capture it; implement "
             "saveState()/loadState() or add "
             "// fdp-analyze: suppress(snapshot-coverage, reason)"});
    }
}

// ---------------------------------------------------------------------------
// Typed units.
// ---------------------------------------------------------------------------

bool
isCoreName(const std::string &text)
{
    std::string s;
    for (char c : text)
        if (c != '_')
            s += static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
    return s == "core" || s.rfind("coreid", 0) == 0 ||
           s.rfind("coreindex", 0) == 0;
}

void
checkTypedCoreId(const SourceFile &f, std::vector<Finding> *findings)
{
    if (pathUnder(f.relPath, "src/mc") || f.relPath == "src/sim/types.hh")
        return;
    const Tokens &t = f.lx.tokens;
    static const std::set<std::string> intTypes = {
        "int",      "unsigned", "short",    "long",     "size_t",
        "int8_t",   "int16_t",  "int32_t",  "int64_t",  "uint8_t",
        "uint16_t", "uint32_t", "uint64_t"};
    for (std::size_t i = 1; i + 1 < t.size(); ++i) {
        if (isIdent(t, i) && isCoreName(t[i].text) &&
            isIdent(t, i - 1) && intTypes.count(t[i - 1].text)) {
            const std::string &next = t[i + 1].text;
            if (next == ";" || next == "=" || next == "," || next == ")" ||
                next == "{") {
                findings->push_back(
                    {f.relPath, t[i].line, "typed-core-id",
                     "core id `" + t[i].text + "' declared as raw `" +
                         t[i - 1].text + "': use fdp::CoreId "
                         "(sim/types.hh) outside src/mc/"});
            }
        }
        if (is(t, i, ".") && is(t, i + 1, "index") && is(t, i + 2, "(") &&
            is(t, i + 3, ")")) {
            const bool before = isArithOp(t[i - 1].text);
            const bool after = i + 4 < t.size() && isArithOp(t[i + 4].text);
            if (before || after)
                findings->push_back(
                    {f.relPath, t[i].line, "typed-core-id",
                     "arithmetic on CoreId::index() outside src/mc/ "
                     "(subscripting and comparison stay legal)"});
        }
    }
}

/** Unit suffix of an identifier: "cycle", "inst", "byte", or "". */
std::string
unitOf(const std::string &text)
{
    std::string s = canonIdent(text);
    if (endsWith(s, "cycles") || endsWith(s, "cycle"))
        return "cycle";
    if (endsWith(s, "insts") || endsWith(s, "inst"))
        return "inst";
    if (endsWith(s, "bytes") || endsWith(s, "byte"))
        return "byte";
    return "";
}

void
checkUnitMixing(const SourceFile &f, std::vector<Finding> *findings)
{
    const Tokens &t = f.lx.tokens;
    for (std::size_t i = 1; i + 1 < t.size(); ++i) {
        const std::string &op = t[i].text;
        if (op != "+" && op != "-" && op != "+=" && op != "-=")
            continue;
        // Left operand: the identifier just before, or the callee of a
        // call just before (`transferCycles() + x`).
        std::size_t li = i - 1;
        if (is(t, li, ")")) {
            int depth = 0;
            while (li > 0) {
                if (t[li].text == ")")
                    ++depth;
                else if (t[li].text == "(" && --depth == 0)
                    break;
                --li;
            }
            if (li == 0)
                continue;
            --li;
        }
        if (!isIdent(t, li))
            continue;
        // Right operand: follow a.b->c chains to the terminal name.
        std::size_t ri = i + 1;
        if (!isIdent(t, ri))
            continue;
        while (ri + 2 < t.size() &&
               (t[ri + 1].text == "." || t[ri + 1].text == "->" ||
                t[ri + 1].text == "::") &&
               isIdent(t, ri + 2))
            ri += 2;
        const std::string lu = unitOf(t[li].text);
        const std::string ru = unitOf(t[ri].text);
        if (lu.empty() || ru.empty() || lu == ru)
            continue;
        findings->push_back(
            {f.relPath, t[i].line, "unit-mixing",
             "`" + t[li].text + "' (" + lu + "s) " + op + " `" +
                 t[ri].text + "' (" + ru + "s) mixes units; convert "
                 "explicitly or rename the identifier"});
    }
}

// ---------------------------------------------------------------------------
// Ownership, threading, and I/O discipline.
// ---------------------------------------------------------------------------

void
checkNoRawNew(const SourceFile &f, std::vector<Finding> *findings)
{
    const Tokens &t = f.lx.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (is(t, i, "new") && !(i > 0 && is(t, i - 1, "operator"))) {
            findings->push_back({f.relPath, t[i].line, "no-raw-new",
                                 "raw new: own state via containers or "
                                 "std::unique_ptr"});
        }
        if (is(t, i, "delete") &&
            !(i > 0 && (is(t, i - 1, "=") || is(t, i - 1, "operator")))) {
            findings->push_back({f.relPath, t[i].line, "no-raw-new",
                                 "raw delete: use RAII ownership"});
        }
    }
}

bool
isAnalyzerFile(const std::string &rel)
{
    return pathUnder(rel, "tools/analyze") || rel == "tools/fdp_analyze.cc";
}

void
checkThreading(const SourceFile &f, std::vector<Finding> *findings)
{
    if (f.relPath == "src/harness/sweep_pool.hh" ||
        f.relPath == "src/harness/sweep_pool.cc")
        return;
    const Tokens &t = f.lx.tokens;
    static const std::set<std::string> primitives = {"thread", "jthread",
                                                     "async"};
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (is(t, i, "std") && is(t, i + 1, "::") && isIdent(t, i + 2) &&
            primitives.count(t[i + 2].text)) {
            findings->push_back(
                {f.relPath, t[i + 2].line, "pool-only-threading",
                 "std::" + t[i + 2].text + " outside the sweep pool: all "
                 "concurrency enters through harness/sweep_pool.hh"});
        }
        if (is(t, i, "pthread_create") && is(t, i + 1, "(")) {
            findings->push_back(
                {f.relPath, t[i].line, "pool-only-threading",
                 "pthread_create outside the sweep pool: all concurrency "
                 "enters through harness/sweep_pool.hh"});
        }
    }
}

void
checkFileIo(const SourceFile &f, std::vector<Finding> *findings)
{
    // The sanctioned homes of raw file I/O: the trace codecs, the
    // snapshot container (fdpsnap-v1), the two results-artifact writers
    // (reporting, the result store), and the differ that reads them
    // back. Everything else routes through them.
    if (pathUnder(f.relPath, "src/trace") ||
        pathUnder(f.relPath, "src/snap") ||
        f.relPath == "src/harness/reporting.hh" ||
        f.relPath == "src/harness/reporting.cc" ||
        f.relPath == "src/harness/result_store.cc" ||
        f.relPath == "src/harness/results_diff.cc" ||
        isAnalyzerFile(f.relPath))
        return;
    const Tokens &t = f.lx.tokens;
    static const std::set<std::string> streams = {
        "ifstream", "ofstream", "fstream", "wifstream", "wofstream",
        "wfstream", "filebuf"};
    static const std::set<std::string> cApis = {"fopen", "freopen",
                                                "tmpfile"};
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (is(t, i, "std") && is(t, i + 1, "::") && isIdent(t, i + 2) &&
            streams.count(t[i + 2].text)) {
            findings->push_back(
                {f.relPath, t[i + 2].line, "file-io",
                 "std::" + t[i + 2].text + " outside src/trace/ and the "
                 "harness artifact writers: route artifacts through "
                 "TraceReader/TraceWriter, ResultsJson, or ResultStore"});
        }
        if (isIdent(t, i) && cApis.count(t[i].text) && is(t, i + 1, "(") &&
            calledBare(t, i)) {
            findings->push_back(
                {f.relPath, t[i].line, "file-io",
                 t[i].text + "() outside src/trace/ and the harness "
                 "artifact writers: route artifacts through TraceReader/"
                 "TraceWriter, ResultsJson, or ResultStore"});
        }
    }
}

} // namespace

const std::vector<CheckInfo> &
checkCatalog()
{
    static const std::vector<CheckInfo> catalog = {
        {"unordered-iter", "iteration over std::unordered_* containers"},
        {"pointer-order", "pointer values used as an ordering or key"},
        {"rng-only", "randomness sources outside fdp::Rng"},
        {"wall-clock", "wall-clock time sources in simulation code"},
        {"audit-coverage",
         "stateful class without Auditable in src/{mem,sim,core,mc,prefetch}"},
        {"snapshot-coverage",
         "Auditable class without Snapshottable in the same subsystems"},
        {"typed-core-id", "raw integer core ids outside src/mc/"},
        {"unit-mixing", "additive arithmetic across cycle/inst/byte units"},
        {"no-raw-new", "raw new/delete"},
        {"pool-only-threading", "threading primitives outside the sweep pool"},
        {"file-io", "raw file I/O outside the sanctioned sinks"},
        {"include-guard", "missing or misnamed include guards"},
        {"include-cycle", "cyclic quoted includes"},
        {"layering", "subsystem layering violations"},
        {"suppression", "malformed suppression annotations"},
    };
    return catalog;
}

std::vector<Finding>
runChecks(const SourceTree &tree)
{
    std::vector<Finding> findings;

    std::map<std::string, std::vector<std::string>> bases;
    collectClassHierarchy(tree, &bases);

    std::map<std::string, Suppressions> suppressions;
    for (const SourceFile &f : tree.files)
        suppressions[f.relPath] =
            parseSuppressions(f.relPath, f.lx.comments, &findings);

    std::vector<Finding> raw;
    for (const SourceFile &f : tree.files) {
        checkUnorderedIter(f, &raw);
        checkPointerOrder(f, &raw);
        checkRngOnly(f, &raw);
        checkWallClock(f, &raw);
        checkAuditCoverage(f, bases, &raw);
        checkSnapshotCoverage(f, bases, &raw);
        checkTypedCoreId(f, &raw);
        checkUnitMixing(f, &raw);
        checkNoRawNew(f, &raw);
        checkThreading(f, &raw);
        checkFileIo(f, &raw);
    }

    IncludeGraph graph = buildIncludeGraph(tree);
    checkIncludeCycles(graph, &raw);
    checkIncludeGuards(tree, &raw);
    checkLayering(graph, &raw);

    for (Finding &f : raw) {
        auto it = suppressions.find(f.file);
        if (it != suppressions.end() && it->second.covers(f))
            continue;
        findings.push_back(std::move(f));
    }
    std::sort(findings.begin(), findings.end(), findingLess);
    return findings;
}

} // namespace fdp::analyze
