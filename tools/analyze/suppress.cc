#include "analyze/suppress.hh"

#include <cctype>

namespace fdp::analyze
{

namespace
{

std::string
trim(const std::string &s)
{
    std::size_t a = 0, b = s.size();
    while (a < b && std::isspace(static_cast<unsigned char>(s[a])))
        ++a;
    while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1])))
        --b;
    return s.substr(a, b - a);
}

} // namespace

bool
Suppressions::covers(const Finding &f) const
{
    if (wholeFile.count(f.rule))
        return true;
    return atLine.count({f.line, f.rule}) ||
           atLine.count({f.line - 1, f.rule});
}

Suppressions
parseSuppressions(const std::string &file,
                  const std::vector<Comment> &comments,
                  std::vector<Finding> *findings)
{
    Suppressions sup;
    for (std::size_t ci = 0; ci < comments.size(); ++ci) {
        const Comment &c = comments[ci];
        std::size_t at = c.text.find("fdp-analyze:");
        if (at == std::string::npos)
            continue;
        std::string rest = trim(c.text.substr(at + 12));
        bool fileWide = false;
        if (rest.rfind("suppress-file(", 0) == 0) {
            fileWide = true;
            rest = rest.substr(14);
        } else if (rest.rfind("suppress(", 0) == 0) {
            rest = rest.substr(9);
        } else {
            findings->push_back(
                {file, c.line, "suppression",
                 "malformed fdp-analyze annotation (want "
                 "suppress(rule, reason) or suppress-file(rule, reason))"});
            continue;
        }
        // A reason is prose; let it wrap across `//' comments on
        // consecutive lines until the closing paren.
        int prevLine = c.line;
        while (rest.find(')') == std::string::npos &&
               ci + 1 < comments.size() &&
               comments[ci + 1].line == prevLine + 1) {
            ++ci;
            prevLine = comments[ci].line;
            rest += " " + trim(comments[ci].text);
        }
        std::size_t close = rest.rfind(')');
        std::size_t comma = rest.find(',');
        if (close == std::string::npos || comma == std::string::npos ||
            comma > close) {
            findings->push_back(
                {file, c.line, "suppression",
                 "suppression lacks a reason: use "
                 "suppress(rule, why this is acceptable)"});
            continue;
        }
        std::string rule = trim(rest.substr(0, comma));
        std::string reason = trim(rest.substr(comma + 1, close - comma - 1));
        if (rule.empty() || reason.empty()) {
            findings->push_back({file, c.line, "suppression",
                                 "suppression needs a nonempty rule id "
                                 "and reason"});
            continue;
        }
        if (fileWide)
            sup.wholeFile.insert(rule);
        else
            sup.atLine.insert({prevLine, rule});  // last line of annotation
    }
    return sup;
}

std::vector<std::string>
parseExpectations(const std::vector<Comment> &comments)
{
    std::vector<std::string> rules;
    for (const Comment &c : comments) {
        std::size_t at = c.text.find("fdp-analyze-expect:");
        if (at == std::string::npos)
            continue;
        std::string rule = trim(c.text.substr(at + 19));
        // Allow trailing prose after the rule id.
        std::size_t sp = rule.find_first_of(" \t");
        if (sp != std::string::npos)
            rule = rule.substr(0, sp);
        if (!rule.empty())
            rules.push_back(rule);
    }
    return rules;
}

} // namespace fdp::analyze
