/**
 * @file
 * In-source annotations the analyzer understands.
 *
 * Suppressions silence one rule with a recorded reason:
 *
 *   // fdp-analyze: suppress(rule-id, why this is fine)          same or
 *                                                                next line
 *   // fdp-analyze: suppress-file(rule-id, why this is fine)     whole file
 *
 * A suppression without a reason is itself a finding (rule
 * `suppression`) — silent opt-outs are exactly what the analyzer
 * exists to prevent.
 *
 * The self-test corpus uses expectation annotations:
 *
 *   // fdp-analyze-expect: rule-id     this file must trigger rule-id
 *   // fdp-analyze-expect: clean       this file must produce no findings
 */

#ifndef FDP_ANALYZE_SUPPRESS_HH
#define FDP_ANALYZE_SUPPRESS_HH

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analyze/findings.hh"
#include "analyze/token.hh"

namespace fdp::analyze
{

/** Parsed suppressions of one file. */
struct Suppressions
{
    /** (line, rule) pairs: suppress `rule` on that line or the next. */
    std::set<std::pair<int, std::string>> atLine;
    /** Rules suppressed for the whole file. */
    std::set<std::string> wholeFile;

    bool covers(const Finding &f) const;
};

/**
 * Parse a file's comments. Malformed annotations (missing rule or
 * reason) are appended to `findings` under rule `suppression`.
 */
Suppressions parseSuppressions(const std::string &file,
                               const std::vector<Comment> &comments,
                               std::vector<Finding> *findings);

/** Corpus expectations: rule ids, or the single entry "clean". */
std::vector<std::string> parseExpectations(
    const std::vector<Comment> &comments);

} // namespace fdp::analyze

#endif // FDP_ANALYZE_SUPPRESS_HH
