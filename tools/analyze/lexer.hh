/**
 * @file
 * A small real C++ lexer shared by every fdp_analyze check.
 *
 * Handles // and block comments, ordinary/char/raw string literals
 * (with encoding prefixes), digit separators, multi-char operators,
 * and preprocessor directives with backslash continuations. `#define`
 * replacement lists are re-lexed into the main token stream so checks
 * see code hidden in macro bodies.
 */

#ifndef FDP_ANALYZE_LEXER_HH
#define FDP_ANALYZE_LEXER_HH

#include <string_view>

#include "analyze/token.hh"

namespace fdp::analyze
{

/** Lex one translation unit. Never fails: bad input lexes best-effort. */
LexedFile lex(std::string_view text);

} // namespace fdp::analyze

#endif // FDP_ANALYZE_LEXER_HH
