#include "analyze/analyzer.hh"

#include <map>
#include <ostream>
#include <set>

#include "analyze/checks.hh"
#include "analyze/source.hh"
#include "analyze/suppress.hh"

namespace fdp::analyze
{

std::vector<Finding>
analyzeTree(const std::string &root)
{
    return runChecks(loadTree(root));
}

int
runSelfTest(const std::string &corpusRoot, std::ostream &os)
{
    SourceTree tree = loadTree(corpusRoot);
    int failures = 0;
    if (tree.files.empty()) {
        os << "self-test FAIL: no corpus files under " << corpusRoot << "\n";
        return 1;
    }

    std::vector<Finding> findings = runChecks(tree);
    std::map<std::string, std::set<std::string>> fired;
    for (const Finding &f : findings)
        fired[f.file].insert(f.rule);

    std::set<std::string> seededRules;
    for (const SourceFile &f : tree.files) {
        std::vector<std::string> expected = parseExpectations(f.lx.comments);
        if (expected.empty()) {
            os << "self-test FAIL: " << f.relPath
               << " has no fdp-analyze-expect annotation\n";
            ++failures;
            continue;
        }
        const std::set<std::string> &got = fired[f.relPath];
        bool wantClean = false;
        for (const std::string &rule : expected) {
            if (rule == "clean") {
                wantClean = true;
                continue;
            }
            seededRules.insert(rule);
            if (got.count(rule)) {
                os << "self-test ok: " << rule << " flags " << f.relPath
                   << "\n";
            } else {
                os << "self-test FAIL: " << rule
                   << " missed the violation seeded in " << f.relPath
                   << " (vacuous check)\n";
                ++failures;
            }
        }
        if (wantClean && !got.empty()) {
            os << "self-test FAIL: " << f.relPath
               << " expected clean but fired:";
            for (const std::string &r : got)
                os << " " << r;
            os << "\n";
            ++failures;
        } else if (wantClean) {
            os << "self-test ok: " << f.relPath << " stays clean\n";
        }
        // A rule firing with no expectation is a false positive the
        // corpus must either expect or stop provoking.
        for (const std::string &r : got) {
            bool wasExpected = false;
            for (const std::string &e : expected)
                wasExpected = wasExpected || e == r;
            if (!wasExpected && !wantClean) {
                os << "self-test FAIL: " << f.relPath
                   << " fired unexpected rule " << r << "\n";
                ++failures;
            }
        }
    }

    for (const CheckInfo &info : checkCatalog()) {
        if (!seededRules.count(info.rule)) {
            os << "self-test FAIL: no corpus case seeds rule " << info.rule
               << "\n";
            ++failures;
        }
    }

    if (failures == 0)
        os << "self-test: every check catches its seeded violation\n";
    return failures;
}

} // namespace fdp::analyze
