/**
 * @file
 * Token and lexed-file types for fdp_analyze.
 *
 * The analyzer is deliberately self-contained (no simulator headers, no
 * libclang): every check runs over this token stream, so checks see
 * through comments, string literals, line breaks, and macro bodies —
 * the false-negative classes a line-regex linter cannot close.
 */

#ifndef FDP_ANALYZE_TOKEN_HH
#define FDP_ANALYZE_TOKEN_HH

#include <string>
#include <vector>

namespace fdp::analyze
{

/** Lexical class of one token. */
enum class Tok
{
    Ident,   ///< identifier or keyword
    Number,  ///< numeric literal (incl. digit separators, exponents)
    Punct,   ///< operator / punctuator (multi-char ops are one token)
    Str,     ///< string literal (ordinary or raw, any prefix)
    Chr,     ///< character literal
};

/** One lexed token with its 1-based source line. */
struct Token
{
    Tok kind;
    std::string text;
    int line;
};

/**
 * One preprocessor directive, captured as a single logical line:
 * backslash continuations are spliced and comments stripped. `text`
 * starts after the `#` (e.g. `include "mem/cache.hh"`).
 */
struct PpDirective
{
    int line;  ///< line of the `#`
    std::string text;
};

/** One comment, attributed to the line where it starts. */
struct Comment
{
    int line;
    std::string text;  ///< body without the // or block delimiters
};

/**
 * A fully lexed translation unit. `#define` replacement lists are
 * tokenized into `tokens` (attributed to the directive's line) so
 * token checks reach inside macro bodies.
 */
struct LexedFile
{
    std::vector<Token> tokens;
    std::vector<PpDirective> pp;
    std::vector<Comment> comments;
};

} // namespace fdp::analyze

#endif // FDP_ANALYZE_TOKEN_HH
