/**
 * @file
 * Findings: what every fdp_analyze check emits, and the
 * `fdp-findings-v1` JSON serialization CI archives and the baseline
 * differ consumes.
 */

#ifndef FDP_ANALYZE_FINDINGS_HH
#define FDP_ANALYZE_FINDINGS_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace fdp::analyze
{

/** One rule violation at one source location. */
struct Finding
{
    std::string file;  ///< path relative to the analyzed root
    int line = 0;      ///< 1-based
    std::string rule;  ///< rule id, e.g. "unordered-iter"
    std::string message;

    friend bool operator==(const Finding &, const Finding &) = default;
};

/** Stable order: file, line, rule, message. */
bool findingLess(const Finding &a, const Finding &b);

/**
 * Baseline identity of a finding. Deliberately excludes the line
 * number so unrelated edits that shift code do not churn the
 * baseline; two findings with the same key are matched by count.
 */
std::string findingKey(const Finding &f);

/** Serialize as an `fdp-findings-v1` document (sorted, trailing \n). */
std::string toFindingsJson(const std::vector<Finding> &findings);

/** Print one finding per line in file:line: [rule] message form. */
void printFindings(std::ostream &os, const std::vector<Finding> &findings);

} // namespace fdp::analyze

#endif // FDP_ANALYZE_FINDINGS_HH
