#include "analyze/source.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "analyze/lexer.hh"

namespace fdp::analyze
{

namespace fs = std::filesystem;

const SourceFile *
SourceTree::find(std::string_view relPath) const
{
    for (const SourceFile &f : files)
        if (f.relPath == relPath)
            return &f;
    return nullptr;
}

namespace
{

std::string
readWholeFile(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        throw std::runtime_error("fdp_analyze: cannot read " + p.string());
    std::ostringstream buf;
    buf << in.rdbuf();
    return std::move(buf).str();
}

} // namespace

SourceTree
loadTree(const std::string &root)
{
    SourceTree tree;
    tree.root = root;
    for (const char *top : {"src", "tools"}) {
        fs::path base = fs::path(root) / top;
        if (!fs::is_directory(base))
            continue;
        for (const auto &entry : fs::recursive_directory_iterator(base)) {
            if (!entry.is_regular_file())
                continue;
            const fs::path &p = entry.path();
            if (p.extension() != ".cc" && p.extension() != ".hh")
                continue;
            SourceFile sf;
            sf.relPath = fs::relative(p, root).generic_string();
            sf.lx = lex(readWholeFile(p));
            tree.files.push_back(std::move(sf));
        }
    }
    std::sort(tree.files.begin(), tree.files.end(),
              [](const SourceFile &a, const SourceFile &b) {
                  return a.relPath < b.relPath;
              });
    return tree;
}

bool
pathUnder(std::string_view relPath, std::string_view prefix)
{
    if (relPath == prefix)
        return true;
    return relPath.size() > prefix.size() &&
           relPath.compare(0, prefix.size(), prefix) == 0 &&
           relPath[prefix.size()] == '/';
}

std::string
dirOf(std::string_view relPath, int components)
{
    std::size_t pos = 0;
    for (int c = 0; c < components; ++c) {
        std::size_t next = relPath.find('/', pos);
        if (next == std::string_view::npos)
            return std::string(relPath);
        pos = next + 1;
    }
    return std::string(relPath.substr(0, pos ? pos - 1 : 0));
}

} // namespace fdp::analyze
