/**
 * @file
 * Top-level fdp_analyze entry points: analyze a tree, and prove the
 * checks non-vacuous against the seeded corpus.
 */

#ifndef FDP_ANALYZE_ANALYZER_HH
#define FDP_ANALYZE_ANALYZER_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "analyze/findings.hh"

namespace fdp::analyze
{

/** Lex root/src and root/tools, run every check, return findings. */
std::vector<Finding> analyzeTree(const std::string &root);

/**
 * Self-test over a seeded known-bad corpus (tests/analyze/corpus).
 *
 * Every corpus file declares its own contract in comments:
 * `// fdp-analyze-expect: <rule>` lines (one per rule it must
 * trigger), or `// fdp-analyze-expect: clean` for files that must
 * stay finding-free. The self-test fails when a rule misses its
 * seeded violation (vacuous check), when a file fires a rule it did
 * not expect (false positive), when a corpus file carries no
 * expectation at all, or when a catalog rule has no corpus case.
 *
 * Returns the number of failures; prints one line per verdict.
 */
int runSelfTest(const std::string &corpusRoot, std::ostream &os);

} // namespace fdp::analyze

#endif // FDP_ANALYZE_ANALYZER_HH
