#include "analyze/baseline.hh"

#include <algorithm>
#include <cctype>
#include <map>

namespace fdp::analyze
{

namespace
{

/**
 * Minimal recursive-descent JSON reader — just enough for the
 * fdp-findings-v1 shape, so the analyzer stays dependency-free.
 */
struct JsonReader
{
    const std::string &s;
    std::size_t i = 0;
    std::string err;

    explicit JsonReader(const std::string &text) : s(text) {}

    bool fail(const std::string &what)
    {
        if (err.empty())
            err = what + " at offset " + std::to_string(i);
        return false;
    }

    void skipWs()
    {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
    }

    bool expect(char c)
    {
        skipWs();
        if (i >= s.size() || s[i] != c)
            return fail(std::string("expected '") + c + "'");
        ++i;
        return true;
    }

    bool peekIs(char c)
    {
        skipWs();
        return i < s.size() && s[i] == c;
    }

    bool readString(std::string *out)
    {
        if (!expect('"'))
            return false;
        out->clear();
        while (i < s.size() && s[i] != '"') {
            char c = s[i++];
            if (c != '\\') {
                *out += c;
                continue;
            }
            if (i >= s.size())
                return fail("truncated escape");
            char e = s[i++];
            switch (e) {
              case '"': *out += '"'; break;
              case '\\': *out += '\\'; break;
              case '/': *out += '/'; break;
              case 'n': *out += '\n'; break;
              case 't': *out += '\t'; break;
              case 'r': *out += '\r'; break;
              case 'b': *out += '\b'; break;
              case 'f': *out += '\f'; break;
              case 'u': {
                if (i + 4 > s.size())
                    return fail("truncated \\u escape");
                int code = 0;
                for (int k = 0; k < 4; ++k) {
                    char h = s[i++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += h - '0';
                    else if (h >= 'a' && h <= 'f')
                        code += h - 'a' + 10;
                    else if (h >= 'A' && h <= 'F')
                        code += h - 'A' + 10;
                    else
                        return fail("bad \\u escape");
                }
                // Findings are ASCII; anything exotic round-trips lossily
                // but never crashes.
                *out += static_cast<char>(code & 0x7f);
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        if (i >= s.size())
            return fail("unterminated string");
        ++i;
        return true;
    }

    bool readInt(long *out)
    {
        skipWs();
        std::size_t from = i;
        if (i < s.size() && (s[i] == '-' || s[i] == '+'))
            ++i;
        while (i < s.size() &&
               std::isdigit(static_cast<unsigned char>(s[i])))
            ++i;
        if (i == from)
            return fail("expected integer");
        *out = std::stol(s.substr(from, i - from));
        return true;
    }

    bool readFinding(Finding *f)
    {
        if (!expect('{'))
            return false;
        bool first = true;
        while (!peekIs('}')) {
            if (!first && !expect(','))
                return false;
            first = false;
            std::string key;
            if (!readString(&key) || !expect(':'))
                return false;
            if (key == "line") {
                long line = 0;
                if (!readInt(&line))
                    return false;
                f->line = static_cast<int>(line);
            } else {
                std::string value;
                if (!readString(&value))
                    return false;
                if (key == "file")
                    f->file = value;
                else if (key == "rule")
                    f->rule = value;
                else if (key == "message")
                    f->message = value;
                else
                    return fail("unknown finding key `" + key + "'");
            }
        }
        return expect('}');
    }
};

} // namespace

bool
parseFindingsJson(const std::string &text, std::vector<Finding> *out,
                  std::string *err)
{
    out->clear();
    JsonReader r(text);
    std::string schema;
    bool sawFindings = false;

    if (!r.expect('{'))
        goto bad;
    {
        bool first = true;
        while (!r.peekIs('}')) {
            if (!first && !r.expect(','))
                goto bad;
            first = false;
            std::string key;
            if (!r.readString(&key) || !r.expect(':'))
                goto bad;
            if (key == "schema") {
                if (!r.readString(&schema))
                    goto bad;
            } else if (key == "findings") {
                sawFindings = true;
                if (!r.expect('['))
                    goto bad;
                while (!r.peekIs(']')) {
                    if (!out->empty() && !r.expect(','))
                        goto bad;
                    Finding f;
                    if (!r.readFinding(&f))
                        goto bad;
                    out->push_back(std::move(f));
                }
                if (!r.expect(']'))
                    goto bad;
            } else {
                r.fail("unknown top-level key `" + key + "'");
                goto bad;
            }
        }
        if (!r.expect('}'))
            goto bad;
    }
    if (schema != "fdp-findings-v1") {
        *err = "schema is `" + schema + "', want fdp-findings-v1";
        return false;
    }
    if (!sawFindings) {
        *err = "document has no `findings' array";
        return false;
    }
    return true;

bad:
    *err = r.err.empty() ? "malformed JSON" : r.err;
    return false;
}

BaselineDiff
diffAgainstBaseline(const std::vector<Finding> &current,
                    const std::vector<Finding> &baseline)
{
    std::map<std::string, int> budget;
    for (const Finding &f : baseline)
        ++budget[findingKey(f)];

    BaselineDiff diff;
    std::vector<Finding> sorted = current;
    std::sort(sorted.begin(), sorted.end(), findingLess);
    for (const Finding &f : sorted) {
        auto it = budget.find(findingKey(f));
        if (it != budget.end() && it->second > 0)
            --it->second;
        else
            diff.fresh.push_back(f);
    }
    std::vector<Finding> base = baseline;
    std::sort(base.begin(), base.end(), findingLess);
    std::map<std::string, int> unspent = budget;
    for (const Finding &f : base) {
        auto it = unspent.find(findingKey(f));
        if (it != unspent.end() && it->second > 0) {
            --it->second;
            diff.fixed.push_back(f);
        }
    }
    return diff;
}

} // namespace fdp::analyze
