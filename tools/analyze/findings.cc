#include "analyze/findings.hh"

#include <algorithm>
#include <ostream>
#include <tuple>

namespace fdp::analyze
{

bool
findingLess(const Finding &a, const Finding &b)
{
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
}

std::string
findingKey(const Finding &f)
{
    std::string key;
    key.reserve(f.file.size() + f.rule.size() + f.message.size() + 2);
    key += f.file;
    key += '\0';
    key += f.rule;
    key += '\0';
    key += f.message;
    return key;
}

namespace
{

void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char hex[] = "0123456789abcdef";
                out += "\\u00";
                out += hex[(c >> 4) & 0xf];
                out += hex[c & 0xf];
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

} // namespace

std::string
toFindingsJson(const std::vector<Finding> &findings)
{
    std::vector<Finding> sorted = findings;
    std::sort(sorted.begin(), sorted.end(), findingLess);

    std::string out = "{\n  \"schema\": \"fdp-findings-v1\",\n"
                      "  \"findings\": [";
    bool first = true;
    for (const Finding &f : sorted) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    {\"file\": ";
        appendJsonString(out, f.file);
        out += ", \"line\": " + std::to_string(f.line) + ", \"rule\": ";
        appendJsonString(out, f.rule);
        out += ", \"message\": ";
        appendJsonString(out, f.message);
        out += "}";
    }
    out += first ? "]\n}\n" : "\n  ]\n}\n";
    return out;
}

void
printFindings(std::ostream &os, const std::vector<Finding> &findings)
{
    std::vector<Finding> sorted = findings;
    std::sort(sorted.begin(), sorted.end(), findingLess);
    for (const Finding &f : sorted)
        os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
           << "\n";
}

} // namespace fdp::analyze
