/**
 * @file
 * Baseline loading and diffing.
 *
 * The committed baseline (`tools/analyze/baseline.json`) is an
 * `fdp-findings-v1` document listing findings that predate a rule and
 * are tolerated until cleaned up. CI gates on *regressions*: a current
 * finding whose key (file, rule, message — line excluded) is not
 * covered by the baseline fails the build; a baselined finding that no
 * longer fires is reported so the baseline can shrink.
 */

#ifndef FDP_ANALYZE_BASELINE_HH
#define FDP_ANALYZE_BASELINE_HH

#include <string>
#include <vector>

#include "analyze/findings.hh"

namespace fdp::analyze
{

/** Result of diffing current findings against a baseline. */
struct BaselineDiff
{
    std::vector<Finding> fresh;  ///< current, not covered by baseline
    std::vector<Finding> fixed;  ///< baselined, no longer firing
};

/**
 * Parse an `fdp-findings-v1` document. On malformed input or a wrong
 * schema tag, returns false and sets `err`.
 */
bool parseFindingsJson(const std::string &text, std::vector<Finding> *out,
                       std::string *err);

/**
 * Match current findings against baselined ones by key; duplicate keys
 * match by count (N baselined occurrences cover at most N current).
 */
BaselineDiff diffAgainstBaseline(const std::vector<Finding> &current,
                                 const std::vector<Finding> &baseline);

} // namespace fdp::analyze

#endif // FDP_ANALYZE_BASELINE_HH
