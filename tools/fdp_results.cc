/**
 * @file
 * fdp_results - operate on fdp-results-v1 files and fdp-store-v1
 * sweep result stores.
 *
 *   fdp_results diff BASE.json FRESH.json [--timing-tol X] [--det-tol X]
 *                    [--strict-timing] [--verdict PATH] [--all]
 *   fdp_results ls DIR
 *   fdp_results gc DIR [--keep-rev REV] [--dry-run]
 *   fdp_results merge DST_DIR SRC_DIR...
 *
 * diff compares two results files metric by metric: deterministic
 * counters must match exactly (any drift is a simulation-behavior
 * change and fails the diff), timing metrics get a wide relative
 * tolerance and report as noise. Exit status: 0 pass, 1 blocking
 * regressions/missing entries (or any usage/I/O error via fatal).
 *
 * ls/gc/merge manage result stores: listing entries, collecting
 * corrupt or superseded-revision entries, and merging stores produced
 * on different machines (stored cells are location-independent by the
 * determinism contract).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/result_store.hh"
#include "harness/results_diff.hh"
#include "sim/logging.hh"
#include "sim/table.hh"

namespace
{

using namespace fdp;

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: fdp_results <command> ...\n"
        "  diff BASE FRESH [--timing-tol X] [--det-tol X]\n"
        "                  [--strict-timing] [--verdict PATH] [--all]\n"
        "                  compare two fdp-results-v1 files; exact for\n"
        "                  deterministic counters, tolerant for timing.\n"
        "                  exit 1 when the diff blocks. --verdict also\n"
        "                  writes a machine-readable fdp-diff-v1 file;\n"
        "                  --all prints unchanged entries too\n"
        "  ls DIR          list the entries of a result store\n"
        "  gc DIR [--keep-rev REV] [--dry-run]\n"
        "                  drop corrupt entries, plus entries from\n"
        "                  other binary revisions when --keep-rev is\n"
        "                  given\n"
        "  merge DST SRC...\n"
        "                  copy entries absent from DST out of the SRC\n"
        "                  stores (corrupt sources are skipped)\n");
    std::exit(1);
}

double
parseTol(const char *flag, const char *text)
{
    char *end = nullptr;
    const double v = std::strtod(text, &end);
    if (end == text || *end != '\0' || v < 0.0)
        fatal("%s: '%s' is not a non-negative number", flag, text);
    return v;
}

int
cmdDiff(int argc, char **argv)
{
    std::string basePath;
    std::string freshPath;
    std::string verdictPath;
    DiffOptions options;
    bool everything = false;
    for (int i = 2; i < argc; ++i) {
        const char *a = argv[i];
        auto need = [&](int &j) -> const char * {
            if (j + 1 >= argc)
                usage();
            return argv[++j];
        };
        if (!std::strcmp(a, "--timing-tol"))
            options.timingTol = parseTol("--timing-tol", need(i));
        else if (!std::strcmp(a, "--det-tol"))
            options.detTol = parseTol("--det-tol", need(i));
        else if (!std::strcmp(a, "--strict-timing"))
            options.strictTiming = true;
        else if (!std::strcmp(a, "--verdict"))
            verdictPath = need(i);
        else if (!std::strcmp(a, "--all"))
            everything = true;
        else if (basePath.empty())
            basePath = a;
        else if (freshPath.empty())
            freshPath = a;
        else
            usage();
    }
    if (basePath.empty() || freshPath.empty())
        usage();

    ResultsFile base;
    ResultsFile fresh;
    std::string error;
    if (!loadResultsFile(basePath, &base, &error))
        fatal("diff baseline: %s", error.c_str());
    if (!loadResultsFile(freshPath, &fresh, &error))
        fatal("diff fresh: %s", error.c_str());

    const DiffReport report = diffResults(base, fresh, options);
    buildDiffTable(report, everything).print();
    if (!verdictPath.empty())
        writeVerdictFile(verdictPath, report, base, fresh, options);

    if (report.blocking()) {
        std::fprintf(stderr,
                     "fdp_results diff: FAIL (%zu regressed, %zu "
                     "missing)\n",
                     report.regressed, report.missing);
        return 1;
    }
    std::printf("fdp_results diff: pass\n");
    return 0;
}

int
cmdLs(int argc, char **argv)
{
    if (argc != 3)
        usage();
    const ResultStore store(argv[2]);
    Table table("result store " + store.dir());
    table.setHeader(
        {"entry", "benchmark", "config", "rev", "simcore", "insts"});
    std::size_t corrupt = 0;
    for (const std::string &file : store.entryFiles()) {
        StoreEntry entry;
        std::string error;
        if (!store.readEntry(file, &entry, &error)) {
            warn("ls: %s: %s", file.c_str(), error.c_str());
            ++corrupt;
            continue;
        }
        table.addRow({file.substr(0, 16), entry.benchmark,
                      entry.configLabel, entry.binaryRev,
                      std::to_string(entry.simCoreVersion),
                      std::to_string(entry.result.insts)});
    }
    table.print();
    std::printf("%zu entries (%zu corrupt)\n",
                table.numRows(), corrupt);
    return 0;
}

int
cmdGc(int argc, char **argv)
{
    std::string dir;
    std::string keepRev;
    bool dryRun = false;
    for (int i = 2; i < argc; ++i) {
        const char *a = argv[i];
        auto need = [&](int &j) -> const char * {
            if (j + 1 >= argc)
                usage();
            return argv[++j];
        };
        if (!std::strcmp(a, "--keep-rev"))
            keepRev = need(i);
        else if (!std::strcmp(a, "--dry-run"))
            dryRun = true;
        else if (dir.empty())
            dir = a;
        else
            usage();
    }
    if (dir.empty())
        usage();

    const ResultStore store(dir);
    std::size_t kept = 0;
    std::size_t dropped = 0;
    for (const std::string &file : store.entryFiles()) {
        StoreEntry entry;
        std::string error;
        std::string why;
        if (!store.readEntry(file, &entry, &error))
            why = "corrupt: " + error;
        else if (!keepRev.empty() && entry.binaryRev != keepRev)
            why = "revision " + entry.binaryRev + " != " + keepRev;
        if (why.empty()) {
            ++kept;
            continue;
        }
        ++dropped;
        std::printf("%s %s (%s)\n", dryRun ? "would drop" : "drop",
                    file.c_str(), why.c_str());
        if (!dryRun)
            store.removeEntry(file);
    }
    std::printf("gc: %zu kept, %zu %s\n", kept, dropped,
                dryRun ? "droppable (dry run)" : "dropped");
    return 0;
}

int
cmdMerge(int argc, char **argv)
{
    if (argc < 4)
        usage();
    const ResultStore dst(argv[2]);
    std::size_t copied = 0;
    std::size_t skipped = 0;
    std::size_t corrupt = 0;
    for (int i = 3; i < argc; ++i) {
        const ResultStore src(argv[i]);
        // Existing destination entries win: same key means same
        // simulated content, so copying again is pure I/O.
        std::vector<std::string> have = dst.entryFiles();
        for (const std::string &file : src.entryFiles()) {
            if (std::find(have.begin(), have.end(), file) != have.end()) {
                ++skipped;
                continue;
            }
            std::string error;
            if (!src.copyEntryTo(file, dst, &error)) {
                warn("merge: %s: %s", file.c_str(), error.c_str());
                ++corrupt;
                continue;
            }
            ++copied;
        }
    }
    std::printf("merge: %zu copied, %zu already present, %zu corrupt\n",
                copied, skipped, corrupt);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    const std::string cmd = argv[1];
    if (cmd == "diff")
        return cmdDiff(argc, argv);
    if (cmd == "ls")
        return cmdLs(argc, argv);
    if (cmd == "gc")
        return cmdGc(argc, argv);
    if (cmd == "merge")
        return cmdMerge(argc, argv);
    usage();
}
