/**
 * @file
 * fdp_sim - command-line driver for the FDP simulator.
 *
 * Run any benchmark stand-in (or all of them) under any prefetcher and
 * throttling policy, with the machine knobs exposed:
 *
 *   fdp_sim --bench art --policy fdp --insts 8000000
 *   fdp_sim --bench swim --prefetcher ghb --policy static --level 5
 *   fdp_sim --all --policy fdp --l2-kb 512 --mem-latency 750 --stats
 *
 * Prints one row per run (IPC, BPKI, accuracy, lateness, pollution,
 * level/insertion distributions) and optionally the full stats dump.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "harness/sweep_pool.hh"
#include "harness/warm_fork.hh"
#include "mc/mix_runner.hh"
#include "sim/logging.hh"
#include "workload/spec_suite.hh"

namespace
{

using namespace fdp;

struct Options
{
    std::vector<std::string> benches;
    std::string prefetcher = "stream";  // knownPrefetcherNames()
    std::string manager = "off";        // off | explore
    std::string policy = "fdp";  // none | static | dyn-aggr | dyn-ins |
                                 // fdp | accuracy-only
    unsigned level = 5;
    std::uint64_t insts = 8'000'000;
    std::size_t l2KB = 1024;
    Cycle memLatency = 500;
    double busGBps = 4.5;
    std::size_t pcacheKB = 0;  // 0 = off
    bool fullStats = false;
    unsigned jobs = 0;  // 0 = defaultSweepJobs()
    std::string outPath;  // empty = no results file
    std::string recordPath;  // --record: capture the run's micro-ops
    std::string tracePath;   // --trace: replay instead of generating
    std::string mix;         // --mix: multi-core co-run of a named mix
    unsigned cores = 0;      // --cores: expected core count (0 = mix's)
    SweepStoreConfig store;  // --store DIR / --resume
    std::uint64_t warmup = 0;  // --warmup: unmeasured warm-up micro-ops
    std::string saveSnapPath;  // --save-snap: warm up, capture, exit
    std::string loadSnapPath;  // --load-snap: fork the run from an image
    std::string dram = "flat";  // --dram: flat | controller
    unsigned channels = 0;      // --channels (0 = controller default)
    std::string rowPolicy;      // --row-policy: open | closed | adaptive
    std::string qos;            // --qos: off | cap:<n> | weighted | both
    std::string fdpPriority;    // --fdp-priority: on | off
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: fdp_sim [options]\n"
        "  --bench NAME        benchmark stand-in (repeatable); "
        "--all for every one\n"
        "  --list              list available benchmarks and exit\n"
        "  --prefetcher KIND   none | stream | ghb | stride | vldp |\n"
        "                      dspatch | nextline | manager "
        "(default stream)\n"
        "  --manager M         off | explore: wrap the run in the\n"
        "                      adaptive prefetcher manager (explore =\n"
        "                      POWER7-style explore/exploit over the\n"
        "                      default zoo; `--prefetcher manager' is\n"
        "                      shorthand for explore)\n"
        "  --list-prefetchers  list prefetcher selections and exit\n"
        "  --policy P          none | static | dyn-aggr | dyn-ins | fdp |"
        " accuracy-only (default fdp)\n"
        "  --level N           static aggressiveness 1..5 (default 5)\n"
        "  --insts N           micro-ops to retire (default 8000000)\n"
        "  --l2-kb N           L2 size in KB (default 1024)\n"
        "  --mem-latency N     unloaded DRAM latency in cycles "
        "(default 500)\n"
        "  --bus-gbps X        memory bus bandwidth (default 4.5)\n"
        "  --pcache-kb N       add a separate prefetch cache of N KB\n"
        "  --dram D            flat | controller: flat Table 3 bus model\n"
        "                      (default) or the FR-FCFS multi-channel\n"
        "                      memory controller (DESIGN.md section 18)\n"
        "  --channels N        controller channel count, a power of two\n"
        "                      (default 2; needs --dram controller)\n"
        "  --row-policy R      open | closed | adaptive row-buffer\n"
        "                      policy (default open; needs --dram\n"
        "                      controller)\n"
        "  --qos Q             off | cap:<n> | weighted | cap:<n>+weighted\n"
        "                      per-core bandwidth QoS (default off;\n"
        "                      needs --dram controller)\n"
        "  --fdp-priority F    on | off: accuracy-directed prefetch\n"
        "                      scheduling in the controller (default on;\n"
        "                      needs --dram controller)\n"
        "  --jobs N            worker threads for multi-benchmark runs\n"
        "                      (default: FDP_JOBS or all hardware "
        "threads)\n"
        "  --out PATH          write per-run metrics to PATH as "
        "fdp-results-v1 JSON\n"
        "  --record PATH       record the run's micro-op stream to PATH\n"
        "                      (fdptrace-v1; needs exactly one --bench)\n"
        "  --trace PATH        replay a recorded trace instead of the\n"
        "                      live generator (replaces --bench)\n"
        "  --mix NAME          co-run a named multi-core workload mix\n"
        "                      (N cores share L2 + DRAM, per-core FDP;\n"
        "                      prints weighted/harmonic speedup tables)\n"
        "  --cores N           assert the mix's core count (optional\n"
        "                      with --mix, which defines N)\n"
        "  --list-mixes        list available workload mixes and exit\n"
        "  --store DIR         persist per-run results in a result store\n"
        "  --resume            serve runs already in --store DIR from it\n"
        "                      (stdout stays bit-identical to a cold run)\n"
        "  --warmup N          run N unmeasured micro-ops first (stats\n"
        "                      reset at the measurement boundary; sweeps\n"
        "                      share one warm-up per benchmark)\n"
        "  --save-snap PATH    warm up (needs --warmup and exactly one\n"
        "                      --bench), write an fdpsnap-v1 image, exit\n"
        "  --load-snap PATH    fork the measured run from a saved image\n"
        "                      (benchmark and warm-up come from the file)\n"
        "  --stats             dump the full statistics groups\n");
    std::exit(1);
}

Options
parse(int argc, char **argv)
{
    Options o;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage();
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (!std::strcmp(a, "--bench")) {
            o.benches.emplace_back(need(i));
        } else if (!std::strcmp(a, "--all")) {
            o.benches = allBenchmarks();
        } else if (!std::strcmp(a, "--list")) {
            for (const auto &b : allBenchmarks())
                std::printf("%s\n", b.c_str());
            std::exit(0);
        } else if (!std::strcmp(a, "--prefetcher")) {
            // Validated on the main thread: an unknown name is a user
            // error listing the valid selections, never a worker fatal.
            o.prefetcher = need(i);
            prefetcherSelectionFromName(o.prefetcher);
        } else if (!std::strcmp(a, "--manager")) {
            o.manager = need(i);
            if (o.manager != "off" && o.manager != "explore")
                fatal("--manager wants off or explore (got `%s')",
                      o.manager.c_str());
        } else if (!std::strcmp(a, "--list-prefetchers")) {
            for (const auto &p : knownPrefetcherNames())
                std::printf("%s\n", p.c_str());
            std::exit(0);
        } else if (!std::strcmp(a, "--policy")) {
            o.policy = need(i);
        } else if (!std::strcmp(a, "--level")) {
            o.level = static_cast<unsigned>(
                parseCountArg("--level", need(i), 5));
        } else if (!std::strcmp(a, "--insts")) {
            o.insts = parseCountArg("--insts", need(i));
        } else if (!std::strcmp(a, "--l2-kb")) {
            o.l2KB = parseCountArg("--l2-kb", need(i));
        } else if (!std::strcmp(a, "--mem-latency")) {
            o.memLatency = parseCountArg("--mem-latency", need(i));
        } else if (!std::strcmp(a, "--bus-gbps")) {
            o.busGBps = std::stod(need(i));
        } else if (!std::strcmp(a, "--pcache-kb")) {
            o.pcacheKB = parseCountArg("--pcache-kb", need(i));
        } else if (!std::strcmp(a, "--dram")) {
            o.dram = need(i);
            if (o.dram != "flat" && o.dram != "controller")
                fatal("--dram wants flat or controller (got `%s')",
                      o.dram.c_str());
        } else if (!std::strcmp(a, "--channels")) {
            o.channels = static_cast<unsigned>(
                parseCountArg("--channels", need(i), 64));
        } else if (!std::strcmp(a, "--row-policy")) {
            o.rowPolicy = need(i);
            if (o.rowPolicy != "open" && o.rowPolicy != "closed" &&
                o.rowPolicy != "adaptive")
                fatal("--row-policy wants open, closed, or adaptive "
                      "(got `%s')", o.rowPolicy.c_str());
        } else if (!std::strcmp(a, "--qos")) {
            o.qos = need(i);
        } else if (!std::strcmp(a, "--fdp-priority")) {
            o.fdpPriority = need(i);
            if (o.fdpPriority != "on" && o.fdpPriority != "off")
                fatal("--fdp-priority wants on or off (got `%s')",
                      o.fdpPriority.c_str());
        } else if (!std::strcmp(a, "--jobs")) {
            o.jobs = static_cast<unsigned>(
                parseCountArg("--jobs", need(i), 4096));
        } else if (!std::strcmp(a, "--out")) {
            o.outPath = need(i);
        } else if (!std::strcmp(a, "--record")) {
            o.recordPath = need(i);
        } else if (!std::strcmp(a, "--trace")) {
            o.tracePath = need(i);
        } else if (!std::strcmp(a, "--mix")) {
            o.mix = need(i);
        } else if (!std::strcmp(a, "--cores")) {
            o.cores = static_cast<unsigned>(
                parseCountArg("--cores", need(i), 64));
        } else if (!std::strcmp(a, "--list-mixes")) {
            for (const MixSpec &m : namedMixes()) {
                std::string programs;
                for (const MixEntry &e : m.entries)
                    programs += (programs.empty() ? "" : " ") +
                                e.displayName();
                std::printf("%-12s %u cores: %s\n", m.name.c_str(),
                            m.numCores(), programs.c_str());
            }
            std::exit(0);
        } else if (!std::strcmp(a, "--stats")) {
            o.fullStats = true;
        } else if (!std::strcmp(a, "--store")) {
            o.store.dir = need(i);
        } else if (!std::strcmp(a, "--resume")) {
            o.store.resume = true;
        } else if (!std::strcmp(a, "--warmup")) {
            o.warmup = parseCountArg("--warmup", need(i));
        } else if (!std::strcmp(a, "--save-snap")) {
            o.saveSnapPath = need(i);
        } else if (!std::strcmp(a, "--load-snap")) {
            o.loadSnapPath = need(i);
        } else {
            usage();
        }
    }
    if (o.store.resume && o.store.dir.empty())
        fatal("--resume needs --store DIR (nothing to resume from)");
    if (o.dram != "controller" &&
        (o.channels != 0 || !o.rowPolicy.empty() || !o.qos.empty() ||
         !o.fdpPriority.empty()))
        fatal("--channels/--row-policy/--qos/--fdp-priority configure "
              "the memory controller; give --dram controller");
    if (!o.saveSnapPath.empty()) {
        if (o.warmup == 0)
            fatal("--save-snap captures a warmed machine; give "
                  "--warmup N");
        if (o.benches.size() != 1)
            fatal("--save-snap captures one benchmark's warm-up; give "
                  "exactly one --bench (got %zu)", o.benches.size());
        if (!o.tracePath.empty() || !o.recordPath.empty() ||
            !o.mix.empty() || o.store.enabled() ||
            !o.loadSnapPath.empty())
            fatal("--save-snap cannot be combined with --trace/--record/"
                  "--mix/--store/--load-snap");
    }
    if (!o.loadSnapPath.empty()) {
        if (!o.benches.empty())
            fatal("--load-snap reads the benchmark from the image; drop "
                  "--bench/--all");
        if (o.warmup != 0)
            fatal("--load-snap reads the warm-up length from the image; "
                  "drop --warmup");
        if (!o.tracePath.empty() || !o.recordPath.empty() ||
            !o.mix.empty() || o.store.enabled())
            fatal("--load-snap cannot be combined with --trace/--record/"
                  "--mix/--store");
    }
    if (!o.mix.empty()) {
        if (o.warmup != 0)
            fatal("--warmup applies to single-core runs; --mix co-runs "
                  "do not support it yet");
        if (!o.benches.empty())
            fatal("--mix defines the per-core programs; drop "
                  "--bench/--all");
        if (!o.tracePath.empty() || !o.recordPath.empty())
            fatal("--mix cannot be combined with --record/--trace");
        if (o.store.enabled())
            fatal("--store keys on single-core benchmark cells; it "
                  "cannot cache --mix co-runs");
        return o;
    }
    if (o.store.enabled() &&
        (!o.tracePath.empty() || !o.recordPath.empty()))
        fatal("--store caches generator-workload runs; it cannot be "
              "combined with --record/--trace");
    if (o.cores != 0)
        fatal("--cores needs --mix (see --list-mixes)");
    if (!o.tracePath.empty() && !o.benches.empty())
        fatal("--trace replays a recorded stream; drop --bench/--all");
    if (!o.tracePath.empty() && !o.recordPath.empty())
        fatal("--record and --trace are mutually exclusive");
    if (o.benches.empty() && o.tracePath.empty() &&
        o.loadSnapPath.empty())
        o.benches.push_back("swim");
    if (!o.recordPath.empty() && o.benches.size() != 1)
        fatal("--record captures one run; give exactly one --bench "
              "(got %zu)", o.benches.size());
    return o;
}

RunConfig
buildConfig(const Options &o)
{
    RunConfig c;
    if (o.policy == "none")
        c = RunConfig::noPrefetching();
    else if (o.policy == "static")
        c = RunConfig::staticLevelConfig(o.level);
    else if (o.policy == "dyn-aggr")
        c = RunConfig::dynamicAggressiveness();
    else if (o.policy == "dyn-ins")
        c = RunConfig::dynamicInsertion(o.level);
    else if (o.policy == "fdp")
        c = RunConfig::fullFdp();
    else if (o.policy == "accuracy-only")
        c = RunConfig::accuracyOnlyFdp();
    else
        usage();

    if (o.policy != "none") {
        c = applyPrefetcherSelection(c, o.prefetcher);
        if (o.manager == "explore")
            c.manager = ManagerKind::Explore;
    }
    c.numInsts = o.insts;
    c.machine.l2.sizeBytes = o.l2KB * 1024;
    c.machine.dram = DramParams::withUnloadedLatency(o.memLatency);
    c.machine.dram.busBytesPerCycle = o.busGBps / 4.0;  // 4 GHz core
    if (o.dram == "controller") {
        c.machine.dramCtrl.kind = DramKind::Controller;
        if (o.channels != 0)
            c.machine.dramCtrl.channels = o.channels;
        if (o.rowPolicy == "closed")
            c.machine.dramCtrl.rowPolicy = RowPolicy::Closed;
        else if (o.rowPolicy == "adaptive")
            c.machine.dramCtrl.rowPolicy = RowPolicy::Adaptive;
        if (o.fdpPriority == "off")
            c.machine.dramCtrl.fdpPriority = false;
        if (!o.qos.empty() && o.qos != "off") {
            // off | cap:<n> | weighted | cap:<n>+weighted
            std::string spec = o.qos;
            const std::size_t plus = spec.find('+');
            for (const std::string part :
                 {spec.substr(0, plus),
                  plus == std::string::npos ? std::string()
                                            : spec.substr(plus + 1)}) {
                if (part.empty())
                    continue;
                if (part == "weighted")
                    c.machine.dramCtrl.qosWeighted = true;
                else if (part.rfind("cap:", 0) == 0)
                    c.machine.dramCtrl.qosInFlightCap =
                        static_cast<unsigned>(parseCountArg(
                            "--qos cap", part.c_str() + 4, 4096));
                else
                    fatal("--qos wants off, cap:<n>, weighted, or "
                          "cap:<n>+weighted (got `%s')", o.qos.c_str());
            }
        }
    }
    if (o.pcacheKB > 0) {
        c.machine.prefetchCache.enabled = true;
        c.machine.prefetchCache.sizeBytes = o.pcacheKB * 1024;
        c.machine.prefetchCache.assoc = o.pcacheKB <= 2 ? 0 : 16;
    }
    // Keep the paper's "half the L2 blocks" interval rule across sizes.
    c.fdp.intervalEvictions = c.machine.l2.sizeBytes / kBlockBytes / 2;
    c.warmupInsts = o.warmup;
    return c;
}

/** Multi-core co-run of a named mix under the one requested policy. */
int
runMixMain(const Options &o, const RunConfig &config)
{
    const MixSpec &spec = mixByName(o.mix);
    if (o.cores != 0 && o.cores != spec.numCores())
        fatal("--cores %u disagrees with mix %s, which has %u cores",
              o.cores, spec.name.c_str(), spec.numCores());

    McLabeledConfig cfg;
    cfg.label = o.policy;
    cfg.config.base = config;
    cfg.config.numCores = spec.numCores();
    const std::vector<McRunResult> results =
        runMixSweep(spec, {cfg}, o.jobs);

    if (!o.outPath.empty()) {
        ResultsJson out("fdp_sim");
        for (const McRunResult &r : results)
            addMcRunResult(out, r);
        out.writeFile(o.outPath);
    }
    buildMixSummaryTable(results).print();
    buildMixCoreTable(results).print();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parse(argc, argv);
    setSweepStore(o.store);
    const RunConfig config = buildConfig(o);
    if (!o.mix.empty())
        return runMixMain(o, config);

    if (!o.saveSnapPath.empty()) {
        saveWarmSnapshot(o.benches.front(), config, o.saveSnapPath);
        std::printf("fdp_sim: wrote warm snapshot of %s (%llu warm-up "
                    "micro-ops) to %s\n", o.benches.front().c_str(),
                    static_cast<unsigned long long>(o.warmup),
                    o.saveSnapPath.c_str());
        return 0;
    }

    Table t("fdp_sim: " + o.policy + " policy, " +
            std::to_string(o.insts) + " micro-ops");
    t.setHeader({"benchmark", "IPC", "BPKI", "accuracy", "lateness",
                 "pollution", "pref sent", "L2 misses"});

    // All three frontends print through the identical table/JSON path,
    // so a replayed run's stdout is bit-identical to the live one.
    std::vector<RunResult> results;
    if (!o.loadSnapPath.empty()) {
        const SnapshotImage image = readSnapshotFile(o.loadSnapPath);
        RunConfig forked = config;
        forked.warmupInsts = image.warmupInsts;
        results.push_back(
            runBenchmarkFromSnapshot(image, forked, o.policy));
    } else if (!o.tracePath.empty())
        results.push_back(replayTrace(o.tracePath, config, o.policy));
    else if (!o.recordPath.empty())
        results.push_back(recordBenchmark(o.benches.front(), config,
                                          o.policy, o.recordPath));
    else
        results = runSuiteParallel(o.benches, config, o.policy, o.jobs);
    if (!o.outPath.empty()) {
        ResultsJson out("fdp_sim");
        for (const RunResult &r : results)
            out.addRunResult(r.benchmark + "/" + o.policy, r);
        out.writeFile(o.outPath);
    }
    for (const RunResult &r : results) {
        t.addRow({r.benchmark, fmtDouble(r.ipc, 3), fmtDouble(r.bpki, 2),
                  fmtDouble(r.accuracy, 2), fmtDouble(r.lateness, 2),
                  fmtDouble(r.pollution, 3), std::to_string(r.prefSent),
                  std::to_string(r.l2Misses)});
    }
    if (results.size() > 1) {
        t.addRule();
        t.addRow({"gmean/amean",
                  fmtDouble(meanOf(results, metricIpc,
                                   MeanKind::Geometric), 3),
                  fmtDouble(meanOf(results, metricBpki,
                                   MeanKind::Arithmetic), 2),
                  "-", "-", "-", "-", "-"});
    }
    t.print();

    if (o.fullStats) {
        for (const auto &r : results) {
            std::printf("\n-- %s: level distribution (1..5):",
                        r.benchmark.c_str());
            for (double f : r.levelDist)
                std::printf(" %.2f", f);
            std::printf("\n-- %s: insertion distribution (LRU..MRU):",
                        r.benchmark.c_str());
            for (double f : r.insertDist)
                std::printf(" %.2f", f);
            std::printf("\n");
        }
    }
    return 0;
}
