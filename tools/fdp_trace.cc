/**
 * @file
 * fdp_trace - inspect and produce fdptrace-v1 micro-op traces.
 *
 *   fdp_trace record --bench swim --ops 8000000 --out swim.fdptrace
 *   fdp_trace info swim.fdptrace
 *   fdp_trace dump swim.fdptrace --limit 20
 *   fdp_trace verify swim.fdptrace
 *
 * record pulls the named benchmark's calibrated generator directly
 * (no simulation), so producing replay input for an N-inst run is a
 * generator-speed operation. verify is the full integrity pass: CRC,
 * record-by-record decode, and byte accounting.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "harness/experiment.hh"
#include "sim/logging.hh"
#include "trace/trace_diff.hh"
#include "trace/trace_reader.hh"
#include "trace/trace_workload.hh"
#include "workload/spec_suite.hh"

namespace
{

using namespace fdp;

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: fdp_trace <command> ...\n"
        "  record --bench NAME --ops N --out PATH\n"
        "                    generate N micro-ops from the calibrated\n"
        "                    benchmark generator into an fdptrace-v1 file\n"
        "  info PATH         print the trace header and size summary\n"
        "  dump PATH [--limit N]\n"
        "                    print records human-readably (default 32;\n"
        "                    0 = all)\n"
        "  verify PATH       full integrity pass: header/footer, every\n"
        "                    record, CRC, byte accounting\n"
        "  diff PATH PATH    compare two traces op by op; report the\n"
        "                    first divergence (exit 0 identical, 1 not)\n");
    std::exit(1);
}

const char *
kindName(OpKind kind)
{
    switch (kind) {
      case OpKind::Int:
        return "int";
      case OpKind::Load:
        return "load";
      case OpKind::Store:
        return "store";
    }
    return "?";
}

int
cmdRecord(int argc, char **argv)
{
    std::string bench;
    std::string out;
    std::uint64_t ops = 0;
    for (int i = 2; i < argc; ++i) {
        const char *a = argv[i];
        auto need = [&](int &j) -> const char * {
            if (j + 1 >= argc)
                usage();
            return argv[++j];
        };
        if (!std::strcmp(a, "--bench"))
            bench = need(i);
        else if (!std::strcmp(a, "--ops"))
            ops = parseCountArg("--ops", need(i));
        else if (!std::strcmp(a, "--out"))
            out = need(i);
        else
            usage();
    }
    if (bench.empty() || out.empty() || ops == 0)
        usage();

    auto workload = makeBenchmark(bench);  // fatal on unknown names
    TraceWriter writer(out, bench, workload->params().seed);
    for (std::uint64_t i = 0; i < ops; ++i)
        writer.append(workload->next());
    writer.finish();

    TraceReader reader(out);
    std::printf("recorded %llu micro-ops of %s to %s "
                "(%llu bytes, %.2f bytes/op)\n",
                static_cast<unsigned long long>(ops), bench.c_str(),
                out.c_str(),
                static_cast<unsigned long long>(reader.fileBytes()),
                static_cast<double>(reader.recordBytes()) /
                    static_cast<double>(ops));
    return 0;
}

int
cmdInfo(const std::string &path)
{
    TraceReader reader(path);
    const TraceHeader &h = reader.header();
    std::printf("trace:       %s\n", path.c_str());
    std::printf("format:      fdptrace-v%u\n", h.version);
    std::printf("benchmark:   %s\n", h.benchmark.c_str());
    std::printf("seed:        %llu\n",
                static_cast<unsigned long long>(h.seed));
    std::printf("micro-ops:   %llu\n",
                static_cast<unsigned long long>(h.opCount));
    std::printf("file bytes:  %llu\n",
                static_cast<unsigned long long>(reader.fileBytes()));
    std::printf("record bytes: %llu (%.2f bytes/op)\n",
                static_cast<unsigned long long>(reader.recordBytes()),
                static_cast<double>(reader.recordBytes()) /
                    static_cast<double>(h.opCount));
    return 0;
}

int
cmdDump(const std::string &path, std::uint64_t limit)
{
    TraceReader reader(path);
    MicroOp op;
    std::uint64_t shown = 0;
    while ((limit == 0 || shown < limit) && reader.next(op)) {
        if (op.kind == OpKind::Int)
            std::printf("%10llu  int\n",
                        static_cast<unsigned long long>(shown));
        else
            std::printf("%10llu  %-5s 0x%012llx  pc 0x%08llx%s\n",
                        static_cast<unsigned long long>(shown),
                        kindName(op.kind),
                        static_cast<unsigned long long>(op.addr),
                        static_cast<unsigned long long>(op.pc),
                        op.depPrevLoad ? "  dep" : "");
        ++shown;
    }
    const std::uint64_t total = reader.header().opCount;
    if (shown < total)
        std::printf("... %llu more micro-ops (of %llu total)\n",
                    static_cast<unsigned long long>(total - shown),
                    static_cast<unsigned long long>(total));
    return 0;
}

int
cmdVerify(const std::string &path)
{
    TraceReader reader(path);
    reader.verifyAll();
    std::printf("verify ok: %s (%s, %llu micro-ops, CRC and record "
                "accounting clean)\n", path.c_str(),
                reader.header().benchmark.c_str(),
                static_cast<unsigned long long>(reader.header().opCount));
    return 0;
}

int
cmdDiff(const std::string &pathA, const std::string &pathB)
{
    const TraceDiff d = diffTraces(pathA, pathB);
    printTraceDiff(d, std::cout);
    return d.identical() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    const std::string cmd = argv[1];

    if (cmd == "record")
        return cmdRecord(argc, argv);
    if (cmd == "diff") {
        if (argc != 4)
            usage();
        return cmdDiff(argv[2], argv[3]);
    }

    // The remaining commands all take one trace path plus options.
    if (argc < 3)
        usage();
    const std::string path = argv[2];
    if (cmd == "info" && argc == 3)
        return cmdInfo(path);
    if (cmd == "verify" && argc == 3)
        return cmdVerify(path);
    if (cmd == "dump") {
        std::uint64_t limit = 32;
        if (argc == 5 && !std::strcmp(argv[3], "--limit"))
            limit = std::strcmp(argv[4], "0") == 0
                        ? 0
                        : parseCountArg("--limit", argv[4]);
        else if (argc != 3)
            usage();
        return cmdDump(path, limit);
    }
    usage();
}
