/**
 * @file
 * Prefetcher zoo: run the same workloads under the three prefetcher
 * families FDP supports (stream, GHB C/DC delta correlation, PC-based
 * stride), each with and without feedback, and compare accuracy and
 * bandwidth - Section 5.7/5.8 of the paper in miniature.
 *
 * Build & run:  ./build/examples/prefetcher_zoo
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "sim/table.hh"
#include "workload/spec_suite.hh"

int
main()
{
    using namespace fdp;

    const std::vector<std::string> benches = {"swim", "mgrid", "art",
                                              "parser"};
    const std::uint64_t insts = 4'000'000;

    const std::vector<std::pair<std::string, PrefetcherKind>> kinds = {
        {"stream", PrefetcherKind::Stream},
        {"ghb-cdc", PrefetcherKind::GhbCdc},
        {"pc-stride", PrefetcherKind::Stride},
    };

    for (const auto &bench : benches) {
        Table t("prefetcher zoo: " + bench);
        t.setHeader({"prefetcher", "policy", "IPC", "accuracy", "lateness",
                     "BPKI", "pref sent"});
        RunConfig none = RunConfig::noPrefetching();
        none.numInsts = insts;
        const auto rnone = runBenchmark(bench, none, "none");
        t.addRow({"(none)", "-", fmtDouble(rnone.ipc, 3), "-", "-",
                  fmtDouble(rnone.bpki, 2), "0"});

        for (const auto &[kname, kind] : kinds) {
            for (const bool feedback : {false, true}) {
                RunConfig c = feedback ? RunConfig::fullFdp()
                                       : RunConfig::staticLevelConfig(5);
                c.prefetcher = kind;
                c.numInsts = insts;
                const auto r = runBenchmark(bench, c,
                                            feedback ? "fdp" : "va");
                t.addRow({kname, feedback ? "FDP" : "Very Aggr.",
                          fmtDouble(r.ipc, 3), fmtDouble(r.accuracy, 2),
                          fmtDouble(r.lateness, 2), fmtDouble(r.bpki, 2),
                          std::to_string(r.prefSent)});
            }
        }
        t.print();
    }

    std::printf("\nExpected: the stream prefetcher dominates on regular "
                "streams, GHB C/DC follows repeating delta patterns, the "
                "PC-stride prefetcher needs stable per-instruction "
                "strides; FDP keeps each family's wins while cutting its "
                "bandwidth on hostile workloads (art).\n");
    return 0;
}
