/**
 * @file
 * Bandwidth-budget scenario: the paper's motivation section argues that
 * FDP's bandwidth-efficiency matters more as the per-core memory
 * bandwidth shrinks (chip multiprocessors sharing one memory channel).
 * This example sweeps the bus bandwidth from the baseline 4.5 GB/s down
 * to a quarter of it and compares Very Aggressive prefetching against
 * FDP on a mixed pair of workloads.
 *
 * Build & run:  ./build/examples/bandwidth_budget
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "sim/table.hh"
#include "workload/spec_suite.hh"

int
main()
{
    using namespace fdp;

    const std::vector<std::string> benches = {"swim", "facerec", "art",
                                              "gap"};
    const std::uint64_t insts = 4'000'000;

    Table t("FDP vs Very Aggressive under shrinking bus bandwidth");
    t.setHeader({"bus (GB/s)", "VA IPC", "FDP IPC", "delta IPC", "VA BPKI",
                 "FDP BPKI", "delta BPKI"});

    for (const double gbps : {4.5, 2.25, 1.125}) {
        RunConfig va = RunConfig::staticLevelConfig(5);
        RunConfig fdp = RunConfig::fullFdp();
        va.machine.dram.busBytesPerCycle = gbps / 4.0;  // 4 GHz core
        fdp.machine.dram.busBytesPerCycle = gbps / 4.0;
        va.numInsts = insts;
        fdp.numInsts = insts;

        const auto rva = runSuite(benches, va, "va");
        const auto rfdp = runSuite(benches, fdp, "fdp");
        const double va_ipc = meanOf(rva, metricIpc, MeanKind::Geometric);
        const double fdp_ipc =
            meanOf(rfdp, metricIpc, MeanKind::Geometric);
        const double va_bpki =
            meanOf(rva, metricBpki, MeanKind::Arithmetic);
        const double fdp_bpki =
            meanOf(rfdp, metricBpki, MeanKind::Arithmetic);
        t.addRow({fmtDouble(gbps, 2), fmtDouble(va_ipc, 3),
                  fmtDouble(fdp_ipc, 3),
                  fmtPercent(fdp_ipc / va_ipc - 1.0),
                  fmtDouble(va_bpki, 2), fmtDouble(fdp_bpki, 2),
                  fmtPercent(fdp_bpki / va_bpki - 1.0)});
    }
    t.print();

    std::printf("\nReading the table: at the baseline bus FDP wins both "
                "IPC and bandwidth outright. As the bus shrinks toward "
                "saturation the two converge - demand-over-prefetch "
                "arbitration already shields demands, so the remaining "
                "FDP benefit is the bandwidth it does not waste "
                "(paper Section 1's CMP argument).\n");
    return 0;
}
