/**
 * @file
 * Phase adaptation demo: a workload that alternates between a streaming
 * phase (prefetching is a big win) and a cache-resident polluting phase
 * (aggressive prefetching hurts). FDP's Dynamic Configuration Counter
 * is sampled as the run progresses so you can watch it throttle up and
 * down with the phases - the run-time behavior Section 3.2 of the paper
 * designs the sampling intervals for.
 *
 * Build & run:  ./build/examples/adaptive_phases
 */

#include <cstdio>
#include <memory>

#include "core/fdp_controller.hh"
#include "cpu/ooo_core.hh"
#include "mem/memory_system.hh"
#include "prefetch/stream_prefetcher.hh"
#include "workload/generators.hh"

int
main()
{
    using namespace fdp;

    // Phase A: long streams, high accuracy.
    SyntheticParams streaming;
    streaming.name = "streaming-phase";
    streaming.pStream = 0.08;
    streaming.numStreams = 4;
    streaming.streamLenBlocks = 8192;
    streaming.seed = 11;

    // Phase B: a near-L2-sized sweep set plus short false streams.
    SyntheticParams polluting;
    polluting.name = "polluting-phase";
    polluting.pStream = 0.06;
    polluting.numStreams = 8;
    polluting.streamLenBlocks = 6;
    polluting.pHot = 0.48;
    polluting.hotBlocks = 15360;
    polluting.hotPattern = SyntheticParams::HotPattern::Sweep;
    polluting.seed = 12;

    const std::uint64_t phase_ops = 4'000'000;
    PhasedWorkload workload(
        std::make_unique<SyntheticWorkload>(streaming),
        std::make_unique<SyntheticWorkload>(polluting), phase_ops,
        "phased");

    EventQueue events;
    StatGroup fdp_stats("fdp"), mem_stats("mem"), core_stats("core");
    StreamPrefetcher prefetcher;
    FdpParams fdp_params;
    fdp_params.intervalEvictions = 1024;  // quick adaptation for the demo
    FdpController fdp(fdp_params, &prefetcher, fdp_stats);
    MachineParams machine;
    MemorySystem memory(machine, events, &prefetcher, fdp, mem_stats);
    CoreParams core_params;
    OooCore core(core_params, memory, events, workload, core_stats);

    std::printf("%10s %18s %6s %6s %8s %8s %10s\n", "micro-ops", "phase",
                "level", "insert", "accuracy", "pollut.", "IPC-so-far");
    const std::uint64_t step = 500'000;
    for (int chunk = 1; chunk <= 24; ++chunk) {
        core.run(step);  // resumable: each call retires `step` more ops
        std::printf("%10llu %18s %6u %6s %8.2f %8.2f %10.3f\n",
                    static_cast<unsigned long long>(core.retired()),
                    workload.currentPhase() == 0 ? "streaming"
                                                 : "polluting",
                    fdp.level(), insertPosName(fdp.insertPos()),
                    fdp.counters().accuracy(),
                    fdp.counters().pollution(), core.ipc());
    }

    std::printf("\nExpected: the level climbs toward 5 (Very Aggressive) "
                "in streaming phases and collapses toward 1 (Very "
                "Conservative), with LRU-ward insertion, in polluting "
                "phases.\n");
    return 0;
}
