/**
 * @file
 * Quickstart: assemble a complete simulated machine from the public API
 * (no harness), run one workload under full FDP, and read the feedback
 * metrics back out.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>
#include <iostream>

#include "core/fdp_controller.hh"
#include "cpu/ooo_core.hh"
#include "mem/memory_system.hh"
#include "prefetch/stream_prefetcher.hh"
#include "sim/event_queue.hh"
#include "workload/spec_suite.hh"

int
main()
{
    using namespace fdp;

    // 1. The shared event queue driving all timed behavior.
    EventQueue events;

    // 2. A stream prefetcher (paper Section 2.1). FDP will drive its
    //    aggressiveness, so the initial level is Middle-of-the-Road.
    StreamPrefetcherParams pf_params;
    StreamPrefetcher prefetcher(pf_params);

    // 3. The FDP controller (the paper's contribution): feedback
    //    counters, pollution filter, Table 2 policy, dynamic insertion.
    StatGroup fdp_stats("fdp");
    FdpParams fdp_params;  // both dynamic mechanisms on by default
    FdpController fdp(fdp_params, &prefetcher, fdp_stats);

    // 4. The paper Table 3 memory hierarchy: 64KB L1, 1MB L2,
    //    128 MSHRs, 32-bank DRAM behind a 4.5 GB/s bus.
    StatGroup mem_stats("mem");
    MachineParams machine;
    MemorySystem memory(machine, events, &prefetcher, fdp, mem_stats);

    // 5. An 8-wide, 128-entry-ROB out-of-order core fed by a synthetic
    //    SPEC stand-in (here: art, the paper's pollution victim).
    StatGroup core_stats("core");
    auto workload = makeBenchmark("art");
    CoreParams core_params;
    OooCore core(core_params, memory, events, *workload, core_stats);

    // 6. Run 5M micro-ops.
    core.run(5'000'000);

    // 7. Read the results.
    std::printf("workload            : %s\n", workload->name());
    std::printf("retired micro-ops   : %llu\n",
                static_cast<unsigned long long>(core.retired()));
    std::printf("cycles              : %llu\n",
                static_cast<unsigned long long>(core.cycles()));
    std::printf("IPC                 : %.3f\n", core.ipc());
    std::printf("L2 demand misses    : %llu\n",
                static_cast<unsigned long long>(memory.l2Misses()));
    std::printf("bus accesses        : %llu\n",
                static_cast<unsigned long long>(
                    memory.dram().busAccesses()));
    std::printf("prefetch accuracy   : %.2f\n", fdp.lifetimeAccuracy());
    std::printf("prefetch lateness   : %.2f\n", fdp.lifetimeLateness());
    std::printf("cache pollution     : %.2f\n", fdp.lifetimePollution());
    std::printf("final aggressiveness: %u (%s)\n", fdp.level(),
                aggrLevelName(fdp.level()));
    std::printf("insertion position  : %s\n",
                insertPosName(fdp.insertPos()));

    std::printf("\nFull statistics dump:\n");
    core_stats.dump(std::cout);
    mem_stats.dump(std::cout);
    fdp_stats.dump(std::cout);
    return 0;
}
