file(REMOVE_RECURSE
  "CMakeFiles/test_fdp.dir/core/test_fdp_controller.cc.o"
  "CMakeFiles/test_fdp.dir/core/test_fdp_controller.cc.o.d"
  "CMakeFiles/test_fdp.dir/core/test_feedback_counters.cc.o"
  "CMakeFiles/test_fdp.dir/core/test_feedback_counters.cc.o.d"
  "CMakeFiles/test_fdp.dir/core/test_insertion.cc.o"
  "CMakeFiles/test_fdp.dir/core/test_insertion.cc.o.d"
  "CMakeFiles/test_fdp.dir/core/test_pollution_filter.cc.o"
  "CMakeFiles/test_fdp.dir/core/test_pollution_filter.cc.o.d"
  "test_fdp"
  "test_fdp.pdb"
  "test_fdp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
