file(REMOVE_RECURSE
  "CMakeFiles/test_prefetchers.dir/prefetch/test_aggressiveness.cc.o"
  "CMakeFiles/test_prefetchers.dir/prefetch/test_aggressiveness.cc.o.d"
  "CMakeFiles/test_prefetchers.dir/prefetch/test_ghb_prefetcher.cc.o"
  "CMakeFiles/test_prefetchers.dir/prefetch/test_ghb_prefetcher.cc.o.d"
  "CMakeFiles/test_prefetchers.dir/prefetch/test_stream_prefetcher.cc.o"
  "CMakeFiles/test_prefetchers.dir/prefetch/test_stream_prefetcher.cc.o.d"
  "CMakeFiles/test_prefetchers.dir/prefetch/test_stride_prefetcher.cc.o"
  "CMakeFiles/test_prefetchers.dir/prefetch/test_stride_prefetcher.cc.o.d"
  "test_prefetchers"
  "test_prefetchers.pdb"
  "test_prefetchers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prefetchers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
