# Empty compiler generated dependencies file for prefetcher_zoo.
# This may be replaced when dependencies are built.
