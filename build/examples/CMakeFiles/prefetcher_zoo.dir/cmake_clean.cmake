file(REMOVE_RECURSE
  "CMakeFiles/prefetcher_zoo.dir/prefetcher_zoo.cpp.o"
  "CMakeFiles/prefetcher_zoo.dir/prefetcher_zoo.cpp.o.d"
  "prefetcher_zoo"
  "prefetcher_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetcher_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
