file(REMOVE_RECURSE
  "libfdp_sim.a"
)
