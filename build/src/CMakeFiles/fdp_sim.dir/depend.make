# Empty dependencies file for fdp_sim.
# This may be replaced when dependencies are built.
