file(REMOVE_RECURSE
  "CMakeFiles/fdp_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/fdp_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/fdp_sim.dir/sim/stats.cc.o"
  "CMakeFiles/fdp_sim.dir/sim/stats.cc.o.d"
  "CMakeFiles/fdp_sim.dir/sim/table.cc.o"
  "CMakeFiles/fdp_sim.dir/sim/table.cc.o.d"
  "libfdp_sim.a"
  "libfdp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
