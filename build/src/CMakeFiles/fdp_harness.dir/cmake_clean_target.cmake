file(REMOVE_RECURSE
  "libfdp_harness.a"
)
