# Empty dependencies file for fdp_harness.
# This may be replaced when dependencies are built.
