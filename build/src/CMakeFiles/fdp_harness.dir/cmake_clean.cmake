file(REMOVE_RECURSE
  "CMakeFiles/fdp_harness.dir/harness/experiment.cc.o"
  "CMakeFiles/fdp_harness.dir/harness/experiment.cc.o.d"
  "CMakeFiles/fdp_harness.dir/harness/reporting.cc.o"
  "CMakeFiles/fdp_harness.dir/harness/reporting.cc.o.d"
  "libfdp_harness.a"
  "libfdp_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdp_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
