file(REMOVE_RECURSE
  "CMakeFiles/fdp_core.dir/core/fdp_controller.cc.o"
  "CMakeFiles/fdp_core.dir/core/fdp_controller.cc.o.d"
  "CMakeFiles/fdp_core.dir/core/feedback_counters.cc.o"
  "CMakeFiles/fdp_core.dir/core/feedback_counters.cc.o.d"
  "CMakeFiles/fdp_core.dir/core/pollution_filter.cc.o"
  "CMakeFiles/fdp_core.dir/core/pollution_filter.cc.o.d"
  "libfdp_core.a"
  "libfdp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
