file(REMOVE_RECURSE
  "libfdp_core.a"
)
