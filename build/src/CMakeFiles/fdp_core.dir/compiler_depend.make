# Empty compiler generated dependencies file for fdp_core.
# This may be replaced when dependencies are built.
