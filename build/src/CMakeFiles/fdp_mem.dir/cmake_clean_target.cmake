file(REMOVE_RECURSE
  "libfdp_mem.a"
)
