file(REMOVE_RECURSE
  "CMakeFiles/fdp_mem.dir/mem/cache.cc.o"
  "CMakeFiles/fdp_mem.dir/mem/cache.cc.o.d"
  "CMakeFiles/fdp_mem.dir/mem/dram.cc.o"
  "CMakeFiles/fdp_mem.dir/mem/dram.cc.o.d"
  "CMakeFiles/fdp_mem.dir/mem/memory_system.cc.o"
  "CMakeFiles/fdp_mem.dir/mem/memory_system.cc.o.d"
  "CMakeFiles/fdp_mem.dir/mem/mshr.cc.o"
  "CMakeFiles/fdp_mem.dir/mem/mshr.cc.o.d"
  "CMakeFiles/fdp_mem.dir/mem/prefetch_cache.cc.o"
  "CMakeFiles/fdp_mem.dir/mem/prefetch_cache.cc.o.d"
  "libfdp_mem.a"
  "libfdp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
