# Empty dependencies file for fdp_mem.
# This may be replaced when dependencies are built.
