
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prefetch/ghb_prefetcher.cc" "src/CMakeFiles/fdp_prefetch.dir/prefetch/ghb_prefetcher.cc.o" "gcc" "src/CMakeFiles/fdp_prefetch.dir/prefetch/ghb_prefetcher.cc.o.d"
  "/root/repo/src/prefetch/stream_prefetcher.cc" "src/CMakeFiles/fdp_prefetch.dir/prefetch/stream_prefetcher.cc.o" "gcc" "src/CMakeFiles/fdp_prefetch.dir/prefetch/stream_prefetcher.cc.o.d"
  "/root/repo/src/prefetch/stride_prefetcher.cc" "src/CMakeFiles/fdp_prefetch.dir/prefetch/stride_prefetcher.cc.o" "gcc" "src/CMakeFiles/fdp_prefetch.dir/prefetch/stride_prefetcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fdp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
