file(REMOVE_RECURSE
  "CMakeFiles/fdp_prefetch.dir/prefetch/ghb_prefetcher.cc.o"
  "CMakeFiles/fdp_prefetch.dir/prefetch/ghb_prefetcher.cc.o.d"
  "CMakeFiles/fdp_prefetch.dir/prefetch/stream_prefetcher.cc.o"
  "CMakeFiles/fdp_prefetch.dir/prefetch/stream_prefetcher.cc.o.d"
  "CMakeFiles/fdp_prefetch.dir/prefetch/stride_prefetcher.cc.o"
  "CMakeFiles/fdp_prefetch.dir/prefetch/stride_prefetcher.cc.o.d"
  "libfdp_prefetch.a"
  "libfdp_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdp_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
