# Empty dependencies file for fdp_prefetch.
# This may be replaced when dependencies are built.
