file(REMOVE_RECURSE
  "libfdp_prefetch.a"
)
