file(REMOVE_RECURSE
  "CMakeFiles/fdp_workload.dir/workload/generators.cc.o"
  "CMakeFiles/fdp_workload.dir/workload/generators.cc.o.d"
  "CMakeFiles/fdp_workload.dir/workload/spec_suite.cc.o"
  "CMakeFiles/fdp_workload.dir/workload/spec_suite.cc.o.d"
  "libfdp_workload.a"
  "libfdp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
