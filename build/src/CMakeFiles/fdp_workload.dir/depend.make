# Empty dependencies file for fdp_workload.
# This may be replaced when dependencies are built.
