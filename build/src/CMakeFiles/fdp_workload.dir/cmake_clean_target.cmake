file(REMOVE_RECURSE
  "libfdp_workload.a"
)
