file(REMOVE_RECURSE
  "CMakeFiles/fdp_cpu.dir/cpu/ooo_core.cc.o"
  "CMakeFiles/fdp_cpu.dir/cpu/ooo_core.cc.o.d"
  "libfdp_cpu.a"
  "libfdp_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdp_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
