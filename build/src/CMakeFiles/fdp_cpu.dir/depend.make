# Empty dependencies file for fdp_cpu.
# This may be replaced when dependencies are built.
