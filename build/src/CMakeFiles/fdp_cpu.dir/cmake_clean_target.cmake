file(REMOVE_RECURSE
  "libfdp_cpu.a"
)
