file(REMOVE_RECURSE
  "CMakeFiles/sec56_accuracy_only.dir/sec56_accuracy_only.cc.o"
  "CMakeFiles/sec56_accuracy_only.dir/sec56_accuracy_only.cc.o.d"
  "sec56_accuracy_only"
  "sec56_accuracy_only.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec56_accuracy_only.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
