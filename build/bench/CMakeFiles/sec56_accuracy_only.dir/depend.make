# Empty dependencies file for sec56_accuracy_only.
# This may be replaced when dependencies are built.
