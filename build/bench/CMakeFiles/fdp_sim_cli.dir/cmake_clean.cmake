file(REMOVE_RECURSE
  "CMakeFiles/fdp_sim_cli.dir/__/tools/fdp_sim.cc.o"
  "CMakeFiles/fdp_sim_cli.dir/__/tools/fdp_sim.cc.o.d"
  "fdp_sim"
  "fdp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdp_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
