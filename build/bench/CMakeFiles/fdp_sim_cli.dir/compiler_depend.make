# Empty compiler generated dependencies file for fdp_sim_cli.
# This may be replaced when dependencies are built.
