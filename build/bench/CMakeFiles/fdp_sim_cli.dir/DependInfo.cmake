
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/fdp_sim.cc" "bench/CMakeFiles/fdp_sim_cli.dir/__/tools/fdp_sim.cc.o" "gcc" "bench/CMakeFiles/fdp_sim_cli.dir/__/tools/fdp_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fdp_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdp_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdp_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
