file(REMOVE_RECURSE
  "CMakeFiles/fig07_dynamic_insertion.dir/fig07_dynamic_insertion.cc.o"
  "CMakeFiles/fig07_dynamic_insertion.dir/fig07_dynamic_insertion.cc.o.d"
  "fig07_dynamic_insertion"
  "fig07_dynamic_insertion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_dynamic_insertion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
