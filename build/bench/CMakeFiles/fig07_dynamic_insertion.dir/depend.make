# Empty dependencies file for fig07_dynamic_insertion.
# This may be replaced when dependencies are built.
