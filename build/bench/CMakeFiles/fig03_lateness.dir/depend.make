# Empty dependencies file for fig03_lateness.
# This may be replaced when dependencies are built.
