file(REMOVE_RECURSE
  "CMakeFiles/fig03_lateness.dir/fig03_lateness.cc.o"
  "CMakeFiles/fig03_lateness.dir/fig03_lateness.cc.o.d"
  "fig03_lateness"
  "fig03_lateness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_lateness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
