
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig09_overall.cc" "bench/CMakeFiles/fig09_overall.dir/fig09_overall.cc.o" "gcc" "bench/CMakeFiles/fig09_overall.dir/fig09_overall.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fdp_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdp_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdp_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
