# Empty dependencies file for fig14_other_benchmarks.
# This may be replaced when dependencies are built.
