file(REMOVE_RECURSE
  "CMakeFiles/fig14_other_benchmarks.dir/fig14_other_benchmarks.cc.o"
  "CMakeFiles/fig14_other_benchmarks.dir/fig14_other_benchmarks.cc.o.d"
  "fig14_other_benchmarks"
  "fig14_other_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_other_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
