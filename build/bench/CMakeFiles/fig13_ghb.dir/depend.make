# Empty dependencies file for fig13_ghb.
# This may be replaced when dependencies are built.
