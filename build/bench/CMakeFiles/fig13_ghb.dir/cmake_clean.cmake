file(REMOVE_RECURSE
  "CMakeFiles/fig13_ghb.dir/fig13_ghb.cc.o"
  "CMakeFiles/fig13_ghb.dir/fig13_ghb.cc.o.d"
  "fig13_ghb"
  "fig13_ghb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_ghb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
