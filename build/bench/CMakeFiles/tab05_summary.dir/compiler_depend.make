# Empty compiler generated dependencies file for tab05_summary.
# This may be replaced when dependencies are built.
