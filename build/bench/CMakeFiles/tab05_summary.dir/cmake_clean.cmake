file(REMOVE_RECURSE
  "CMakeFiles/tab05_summary.dir/tab05_summary.cc.o"
  "CMakeFiles/tab05_summary.dir/tab05_summary.cc.o.d"
  "tab05_summary"
  "tab05_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab05_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
