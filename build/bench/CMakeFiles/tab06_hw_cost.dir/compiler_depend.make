# Empty compiler generated dependencies file for tab06_hw_cost.
# This may be replaced when dependencies are built.
