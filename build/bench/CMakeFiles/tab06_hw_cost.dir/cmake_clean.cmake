file(REMOVE_RECURSE
  "CMakeFiles/tab06_hw_cost.dir/tab06_hw_cost.cc.o"
  "CMakeFiles/tab06_hw_cost.dir/tab06_hw_cost.cc.o.d"
  "tab06_hw_cost"
  "tab06_hw_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab06_hw_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
