# Empty dependencies file for fig11_12_prefetch_cache.
# This may be replaced when dependencies are built.
