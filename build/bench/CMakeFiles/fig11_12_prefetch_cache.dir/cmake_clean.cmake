file(REMOVE_RECURSE
  "CMakeFiles/fig11_12_prefetch_cache.dir/fig11_12_prefetch_cache.cc.o"
  "CMakeFiles/fig11_12_prefetch_cache.dir/fig11_12_prefetch_cache.cc.o.d"
  "fig11_12_prefetch_cache"
  "fig11_12_prefetch_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_12_prefetch_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
