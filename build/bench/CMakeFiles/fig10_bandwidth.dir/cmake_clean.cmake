file(REMOVE_RECURSE
  "CMakeFiles/fig10_bandwidth.dir/fig10_bandwidth.cc.o"
  "CMakeFiles/fig10_bandwidth.dir/fig10_bandwidth.cc.o.d"
  "fig10_bandwidth"
  "fig10_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
