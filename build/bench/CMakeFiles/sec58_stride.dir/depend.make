# Empty dependencies file for sec58_stride.
# This may be replaced when dependencies are built.
