file(REMOVE_RECURSE
  "CMakeFiles/sec58_stride.dir/sec58_stride.cc.o"
  "CMakeFiles/sec58_stride.dir/sec58_stride.cc.o.d"
  "sec58_stride"
  "sec58_stride.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec58_stride.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
