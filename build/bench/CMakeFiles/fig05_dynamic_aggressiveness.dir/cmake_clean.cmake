file(REMOVE_RECURSE
  "CMakeFiles/fig05_dynamic_aggressiveness.dir/fig05_dynamic_aggressiveness.cc.o"
  "CMakeFiles/fig05_dynamic_aggressiveness.dir/fig05_dynamic_aggressiveness.cc.o.d"
  "fig05_dynamic_aggressiveness"
  "fig05_dynamic_aggressiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_dynamic_aggressiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
