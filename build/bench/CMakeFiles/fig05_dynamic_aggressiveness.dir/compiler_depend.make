# Empty compiler generated dependencies file for fig05_dynamic_aggressiveness.
# This may be replaced when dependencies are built.
