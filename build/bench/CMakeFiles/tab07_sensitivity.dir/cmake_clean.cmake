file(REMOVE_RECURSE
  "CMakeFiles/tab07_sensitivity.dir/tab07_sensitivity.cc.o"
  "CMakeFiles/tab07_sensitivity.dir/tab07_sensitivity.cc.o.d"
  "tab07_sensitivity"
  "tab07_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab07_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
