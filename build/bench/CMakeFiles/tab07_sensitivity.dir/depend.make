# Empty dependencies file for tab07_sensitivity.
# This may be replaced when dependencies are built.
