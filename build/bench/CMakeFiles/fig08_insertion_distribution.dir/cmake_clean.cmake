file(REMOVE_RECURSE
  "CMakeFiles/fig08_insertion_distribution.dir/fig08_insertion_distribution.cc.o"
  "CMakeFiles/fig08_insertion_distribution.dir/fig08_insertion_distribution.cc.o.d"
  "fig08_insertion_distribution"
  "fig08_insertion_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_insertion_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
