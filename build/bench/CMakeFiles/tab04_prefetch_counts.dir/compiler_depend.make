# Empty compiler generated dependencies file for tab04_prefetch_counts.
# This may be replaced when dependencies are built.
