file(REMOVE_RECURSE
  "CMakeFiles/tab04_prefetch_counts.dir/tab04_prefetch_counts.cc.o"
  "CMakeFiles/tab04_prefetch_counts.dir/tab04_prefetch_counts.cc.o.d"
  "tab04_prefetch_counts"
  "tab04_prefetch_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_prefetch_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
