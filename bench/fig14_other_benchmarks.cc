/**
 * @file
 * Paper Figure 14: IPC and BPKI impact of FDP on the remaining 9 SPEC
 * CPU2000 benchmarks (the quiet, low-miss group). FDP should match the
 * best conventional configuration with no losses, and help gcc by
 * curbing pollution.
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "harness/sweep_pool.hh"
#include "workload/spec_suite.hh"

using namespace fdp;

int
main(int argc, char **argv)
{
    const std::uint64_t insts = instructionBudget(argc, argv, 6'000'000);
    const unsigned jobs = sweepJobs(argc, argv);
    configureSweepStore(argc, argv);
    const auto &benches = remainingBenchmarks();

    std::vector<LabeledConfig> configs = {
        {"No Prefetching", RunConfig::noPrefetching()},
        {"Very Conservative", RunConfig::staticLevelConfig(1)},
        {"Middle-of-the-Road", RunConfig::staticLevelConfig(3)},
        {"Very Aggressive", RunConfig::staticLevelConfig(5)},
        {"FDP", RunConfig::fullFdp()},
    };
    std::vector<std::string> names;
    for (auto &[label, c] : configs) {
        c.numInsts = insts;
        names.push_back(label);
    }

    const auto results = runSweep(benches, configs, jobs);
    writeSweepResults(resultsOutPath(argc, argv), "fig14_other_benchmarks",
                      benches, names, results);

    buildMetricTable("Figure 14 (top): remaining 9 benchmarks (IPC)",
                     benches, names, results, metricIpc, 3,
                     MeanKind::Geometric)
        .print();
    buildMetricTable("Figure 14 (bottom): remaining 9 benchmarks (BPKI)",
                     benches, names, results, metricBpki, 2,
                     MeanKind::Arithmetic)
        .print();

    // Best static configuration for this group.
    std::size_t best = 1;
    for (std::size_t i = 2; i <= 3; ++i)
        if (meanOf(results[i], metricIpc, MeanKind::Geometric) >
            meanOf(results[best], metricIpc, MeanKind::Geometric))
            best = i;
    std::printf(
        "\nFDP vs best static (%s): %s IPC (paper: +0.4%%), %s bandwidth "
        "(paper: -0.2%%)\n",
        names[best].c_str(),
        fmtPercent(meanDelta(results[best], results[4], metricIpc,
                             MeanKind::Geometric))
            .c_str(),
        fmtPercent(meanDelta(results[best], results[4], metricBpki,
                             MeanKind::Arithmetic))
            .c_str());

    int losers = 0;
    for (std::size_t b = 0; b < benches.size(); ++b)
        if (results[4][b].ipc < results[0][b].ipc * 0.99)
            ++losers;
    std::printf("Benchmarks losing vs no prefetching under FDP: %d "
                "(paper: none)\n",
                losers);
    return 0;
}
