/**
 * @file
 * Paper Figure 5: Dynamic Aggressiveness (FDP throttling only, MRU
 * insertion) vs. the four traditional configurations. The dynamic
 * mechanism should track the best-performing static configuration per
 * benchmark and eliminate the large art/ammp losses.
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "workload/spec_suite.hh"

using namespace fdp;

int
main(int argc, char **argv)
{
    const std::uint64_t insts = instructionBudget(argc, argv, 8'000'000);
    const auto &benches = memoryIntensiveBenchmarks();

    const std::vector<std::pair<std::string, RunConfig>> configs = {
        {"No Prefetching", RunConfig::noPrefetching()},
        {"Very Conservative", RunConfig::staticLevelConfig(1)},
        {"Middle-of-the-Road", RunConfig::staticLevelConfig(3)},
        {"Very Aggressive", RunConfig::staticLevelConfig(5)},
        {"Dynamic Aggr.", RunConfig::dynamicAggressiveness()},
    };

    std::vector<std::string> names;
    std::vector<std::vector<RunResult>> results;
    for (const auto &[label, base] : configs) {
        RunConfig c = base;
        c.numInsts = insts;
        names.push_back(label);
        results.push_back(runSuite(benches, c, label));
    }

    buildMetricTable("Figure 5: dynamic adjustment of prefetcher "
                     "aggressiveness (IPC)",
                     benches, names, results, metricIpc, 3,
                     MeanKind::Geometric)
        .print();

    std::printf(
        "\nDynamic Aggressiveness vs Very Aggressive: %s IPC "
        "(paper: +4.7%%)\n",
        fmtPercent(meanDelta(results[3], results[4], metricIpc,
                             MeanKind::Geometric))
            .c_str());
    std::printf(
        "Dynamic Aggressiveness vs Middle-of-the-Road: %s IPC "
        "(paper: +11.9%%)\n",
        fmtPercent(meanDelta(results[2], results[4], metricIpc,
                             MeanKind::Geometric))
            .c_str());

    // The paper's headline: the big losses disappear.
    for (std::size_t b = 0; b < benches.size(); ++b) {
        if (benches[b] != "art" && benches[b] != "ammp")
            continue;
        const double va = (results[3][b].ipc / results[0][b].ipc) - 1.0;
        const double dyn = (results[4][b].ipc / results[0][b].ipc) - 1.0;
        std::printf("%s vs no prefetching: Very Aggressive %s, Dynamic %s\n",
                    benches[b].c_str(), fmtPercent(va).c_str(),
                    fmtPercent(dyn).c_str());
    }
    return 0;
}
