/**
 * @file
 * Paper Table 5: average IPC and BPKI of every traditional stream
 * prefetcher configuration vs. FDP, plus the paper's
 * "bandwidth-matched" comparison (FDP vs. the static configuration
 * that consumes a similar amount of bandwidth).
 */

#include <cmath>
#include <cstdio>

#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "harness/sweep_pool.hh"
#include "workload/spec_suite.hh"

using namespace fdp;

int
main(int argc, char **argv)
{
    const std::uint64_t insts = instructionBudget(argc, argv, 8'000'000);
    const unsigned jobs = sweepJobs(argc, argv);
    configureSweepStore(argc, argv);
    const auto &benches = memoryIntensiveBenchmarks();

    std::vector<LabeledConfig> configs = {
        {"No Prefetching", RunConfig::noPrefetching()},
        {"Very Conservative", RunConfig::staticLevelConfig(1)},
        {"Conservative", RunConfig::staticLevelConfig(2)},
        {"Middle-of-the-Road", RunConfig::staticLevelConfig(3)},
        {"Aggressive", RunConfig::staticLevelConfig(4)},
        {"Very Aggressive", RunConfig::staticLevelConfig(5)},
        {"FDP", RunConfig::fullFdp()},
    };
    std::vector<std::string> names;
    for (auto &[label, c] : configs) {
        c.numInsts = insts;
        names.push_back(label);
    }

    const auto results = runSweep(benches, configs, jobs);
    writeSweepResults(resultsOutPath(argc, argv), "tab05_summary", benches,
                      names, results);

    Table t("Table 5: average IPC and BPKI, conventional configurations "
            "vs FDP");
    t.setHeader({"configuration", "IPC (gmean)", "BPKI (amean)"});
    std::vector<double> ipcs, bpkis;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const double ipc =
            meanOf(results[i], metricIpc, MeanKind::Geometric);
        const double bpki =
            meanOf(results[i], metricBpki, MeanKind::Arithmetic);
        ipcs.push_back(ipc);
        bpkis.push_back(bpki);
        if (i + 1 == results.size())
            t.addRule();
        t.addRow({names[i], fmtDouble(ipc, 3), fmtDouble(bpki, 2)});
    }
    t.print();

    // Bandwidth-matched comparison: find the static configuration whose
    // BPKI is closest to FDP's (paper: Middle-of-the-Road, within 2.5%).
    const double fdp_bpki = bpkis.back();
    std::size_t match = 1;
    for (std::size_t i = 1; i + 1 < results.size(); ++i)
        if (std::abs(bpkis[i] - fdp_bpki) <
            std::abs(bpkis[match] - fdp_bpki))
            match = i;
    std::printf("\nBandwidth-matched static configuration: %s "
                "(BPKI %.2f vs FDP %.2f)\n",
                names[match].c_str(), bpkis[match], fdp_bpki);
    std::printf("FDP vs %s: %s IPC (paper: +13.6%% vs the "
                "bandwidth-matched configuration)\n",
                names[match].c_str(),
                fmtPercent(ipcs.back() / ipcs[match] - 1.0).c_str());
    std::printf("FDP vs Very Aggressive: %s IPC, %s bandwidth "
                "(paper: +6.5%% IPC, -18.7%% bandwidth)\n",
                fmtPercent(ipcs.back() / ipcs[5] - 1.0).c_str(),
                fmtPercent(bpkis.back() / bpkis[5] - 1.0).c_str());
    return 0;
}
