/**
 * @file
 * Paper Figures 11 and 12: a Very Aggressive prefetcher with a separate
 * prefetch cache (2KB fully-associative up to 1MB 16-way) vs. FDP
 * prefetching into the L2. FDP should beat small prefetch caches,
 * approach the large ones, and consume less bandwidth than either.
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "workload/spec_suite.hh"

using namespace fdp;

namespace
{

RunConfig
prefetchCacheConfig(std::size_t bytes, unsigned assoc)
{
    RunConfig c = RunConfig::staticLevelConfig(5);
    c.machine.prefetchCache.enabled = true;
    c.machine.prefetchCache.sizeBytes = bytes;
    c.machine.prefetchCache.assoc = assoc;
    return c;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t insts = instructionBudget(argc, argv, 6'000'000);
    const auto &benches = memoryIntensiveBenchmarks();

    const std::vector<std::pair<std::string, RunConfig>> configs = {
        {"VA (base)", RunConfig::staticLevelConfig(5)},
        {"2KB f.a.", prefetchCacheConfig(2 * 1024, 0)},
        {"8KB", prefetchCacheConfig(8 * 1024, 16)},
        {"32KB", prefetchCacheConfig(32 * 1024, 16)},
        {"64KB", prefetchCacheConfig(64 * 1024, 16)},
        {"1MB", prefetchCacheConfig(1024 * 1024, 16)},
        {"FDP", RunConfig::fullFdp()},
    };

    std::vector<std::string> names;
    std::vector<std::vector<RunResult>> results;
    for (const auto &[label, base] : configs) {
        RunConfig c = base;
        c.numInsts = insts;
        names.push_back(label);
        results.push_back(runSuite(benches, c, label));
    }

    buildMetricTable("Figure 11: prefetch cache vs FDP (IPC)", benches,
                     names, results, metricIpc, 3, MeanKind::Geometric)
        .print();
    buildMetricTable("Figure 12: prefetch cache vs FDP (BPKI)", benches,
                     names, results, metricBpki, 2, MeanKind::Arithmetic)
        .print();

    std::printf(
        "\nFDP vs VA + 32KB prefetch cache: %s IPC (paper: +5.3%%), "
        "%s bandwidth (paper: -16%%)\n",
        fmtPercent(meanDelta(results[3], results[6], metricIpc,
                             MeanKind::Geometric))
            .c_str(),
        fmtPercent(meanDelta(results[3], results[6], metricBpki,
                             MeanKind::Arithmetic))
            .c_str());
    std::printf(
        "FDP vs VA + 64KB prefetch cache: %s IPC (paper: within 2%%), "
        "%s bandwidth (paper: -9%%)\n",
        fmtPercent(meanDelta(results[4], results[6], metricIpc,
                             MeanKind::Geometric))
            .c_str(),
        fmtPercent(meanDelta(results[4], results[6], metricBpki,
                             MeanKind::Arithmetic))
            .c_str());
    return 0;
}
