/**
 * @file
 * Multi-core co-run experiment (DESIGN.md §13): every named workload
 * mix under {No Prefetching, Very Aggressive (static level 5), per-core
 * FDP}, reporting weighted/harmonic speedup, fairness, and per-core
 * bandwidth/pollution attribution. The paper's single-core claim —
 * feedback throttling keeps prefetching's wins while cutting its
 * bandwidth cost — must survive contention: on bandwidth-bound mixes,
 * per-core FDP beats the fixed Very Aggressive configuration.
 */

#include <cstdio>
#include <cstring>

#include "harness/reporting.hh"
#include "harness/sweep_pool.hh"
#include "mc/mix_runner.hh"

using namespace fdp;

int
main(int argc, char **argv)
{
    const std::uint64_t insts = instructionBudget(argc, argv, 2'000'000);
    const unsigned jobs = sweepJobs(argc, argv);

    // Optional: restrict to explicitly named mixes (repeatable --mix).
    std::vector<const MixSpec *> mixes;
    for (int i = 1; i < argc; ++i)
        if (!std::strcmp(argv[i], "--mix") && i + 1 < argc)
            mixes.push_back(&mixByName(argv[++i]));
    if (mixes.empty())
        for (const MixSpec &m : namedMixes())
            mixes.push_back(&m);

    const std::vector<std::string> labels = {"No Prefetching",
                                             "Very Aggressive", "FDP"};
    ResultsJson json("mix05_corun");
    Table overview("Co-run overview: weighted speedup per mix");
    overview.setHeader({"mix", "cores", labels[0], labels[1], labels[2],
                        "FDP vs aggr"});

    double aggrWsOnBwMixes = 0.0, fdpWsOnBwMixes = 0.0;
    for (const MixSpec *mix : mixes) {
        std::vector<McLabeledConfig> configs;
        const RunConfig bases[] = {RunConfig::noPrefetching(),
                                   RunConfig::staticLevelConfig(5),
                                   RunConfig::fullFdp()};
        for (std::size_t c = 0; c < labels.size(); ++c) {
            McLabeledConfig lc;
            lc.label = labels[c];
            lc.config.base = bases[c];
            lc.config.base.numInsts = insts;
            lc.config.numCores = mix->numCores();
            configs.push_back(std::move(lc));
        }

        const auto results = runMixSweep(*mix, configs, jobs);
        buildMixSummaryTable(results).print();
        buildMixCoreTable(results).print();
        for (const McRunResult &r : results)
            addMcRunResult(json, r);

        overview.addRow(
            {mix->name, std::to_string(mix->numCores()),
             fmtDouble(results[0].weightedSpeedup, 3),
             fmtDouble(results[1].weightedSpeedup, 3),
             fmtDouble(results[2].weightedSpeedup, 3),
             fmtPercent(results[2].weightedSpeedup /
                            results[1].weightedSpeedup -
                        1.0)});
        // Bandwidth-bound mixes: every core is a streamer, so the
        // shared bus is the bottleneck and throttling has to pay off.
        if (mix->name == "mix2-stream" || mix->name == "mix4-bw") {
            aggrWsOnBwMixes += results[1].weightedSpeedup;
            fdpWsOnBwMixes += results[2].weightedSpeedup;
        }
    }

    overview.print();
    if (aggrWsOnBwMixes > 0.0)
        std::printf("\nFDP vs Very Aggressive on bandwidth-bound mixes: "
                    "%s weighted speedup\n",
                    fmtPercent(fdpWsOnBwMixes / aggrWsOnBwMixes - 1.0)
                        .c_str());

    const std::string outPath = resultsOutPath(argc, argv);
    if (!outPath.empty())
        json.writeFile(outPath);
    return 0;
}
