/**
 * @file
 * Paper Section 5.6: throttling on prefetch accuracy alone vs. the
 * comprehensive mechanism (accuracy + lateness + pollution). The full
 * mechanism should win on both performance and bandwidth.
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "harness/sweep_pool.hh"
#include "workload/spec_suite.hh"

using namespace fdp;

int
main(int argc, char **argv)
{
    const std::uint64_t insts = instructionBudget(argc, argv, 8'000'000);
    const unsigned jobs = sweepJobs(argc, argv);
    configureSweepStore(argc, argv);
    const auto &benches = memoryIntensiveBenchmarks();

    std::vector<LabeledConfig> configs = {
        {"Accuracy-only", RunConfig::accuracyOnlyFdp()},
        {"Full FDP", RunConfig::fullFdp()},
    };
    std::vector<std::string> names;
    for (auto &[label, c] : configs) {
        c.numInsts = insts;
        names.push_back(label);
    }

    const auto results = runSweep(benches, configs, jobs);
    writeSweepResults(resultsOutPath(argc, argv), "sec56_accuracy_only",
                      benches, names, results);

    buildMetricTable("Section 5.6: accuracy-only throttling vs full FDP "
                     "(IPC)",
                     benches, names, results, metricIpc, 3,
                     MeanKind::Geometric)
        .print();
    buildMetricTable("Section 5.6: accuracy-only throttling vs full FDP "
                     "(BPKI)",
                     benches, names, results, metricBpki, 2,
                     MeanKind::Arithmetic)
        .print();

    std::printf(
        "\nFull FDP vs accuracy-only: %s IPC (paper: +3.4%%), "
        "%s bandwidth (paper: -2.5%%)\n",
        fmtPercent(meanDelta(results[0], results[1], metricIpc,
                             MeanKind::Geometric))
            .c_str(),
        fmtPercent(meanDelta(results[0], results[1], metricBpki,
                             MeanKind::Arithmetic))
            .c_str());
    return 0;
}
