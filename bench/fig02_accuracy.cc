/**
 * @file
 * Paper Figure 2: IPC (left) and prefetch accuracy (right) of the four
 * traditional stream-prefetcher configurations. Accuracy below 40%
 * (A_low) marks the benchmarks where prefetching always hurts.
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "workload/spec_suite.hh"

using namespace fdp;

int
main(int argc, char **argv)
{
    const std::uint64_t insts = instructionBudget(argc, argv, 8'000'000);
    const auto &benches = memoryIntensiveBenchmarks();

    const std::vector<std::pair<std::string, RunConfig>> configs = {
        {"Very Conservative", RunConfig::staticLevelConfig(1)},
        {"Middle-of-the-Road", RunConfig::staticLevelConfig(3)},
        {"Very Aggressive", RunConfig::staticLevelConfig(5)},
    };

    std::vector<std::string> names;
    std::vector<std::vector<RunResult>> results;
    for (const auto &[label, base] : configs) {
        RunConfig c = base;
        c.numInsts = insts;
        names.push_back(label);
        results.push_back(runSuite(benches, c, label));
    }

    buildMetricTable("Figure 2 (left): IPC per configuration", benches,
                     names, results, metricIpc, 3, MeanKind::Geometric)
        .print();
    buildMetricTable("Figure 2 (right): prefetch accuracy", benches, names,
                     results, metricAccuracy, 3, MeanKind::Arithmetic)
        .print();

    std::printf("\nBenchmarks with Very Aggressive accuracy below A_low "
                "(0.40), where the paper finds prefetching always "
                "degrades performance:\n ");
    for (std::size_t b = 0; b < benches.size(); ++b)
        if (results[2][b].accuracy < 0.40)
            std::printf(" %s", benches[b].c_str());
    std::printf("\n");
    return 0;
}
