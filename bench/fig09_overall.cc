/**
 * @file
 * Paper Figure 9: overall performance of FDP. Five configurations:
 * No Prefetching, Very Aggressive, Very Aggressive + Dynamic Insertion,
 * Dynamic Aggressiveness, and full FDP (Dynamic Aggressiveness +
 * Dynamic Insertion).
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "harness/sweep_pool.hh"
#include "workload/spec_suite.hh"

using namespace fdp;

int
main(int argc, char **argv)
{
    const std::uint64_t insts = instructionBudget(argc, argv, 8'000'000);
    const unsigned jobs = sweepJobs(argc, argv);
    configureSweepStore(argc, argv);
    const auto &benches = memoryIntensiveBenchmarks();

    std::vector<LabeledConfig> configs = {
        {"No Prefetching", RunConfig::noPrefetching()},
        {"Very Aggressive", RunConfig::staticLevelConfig(5)},
        {"VA + Dyn. Insertion", RunConfig::dynamicInsertion()},
        {"Dynamic Aggr.", RunConfig::dynamicAggressiveness()},
        {"Dyn. Aggr. + Dyn. Ins.", RunConfig::fullFdp()},
    };
    std::vector<std::string> names;
    for (auto &[label, c] : configs) {
        c.numInsts = insts;
        names.push_back(label);
    }

    const auto results = runSweep(benches, configs, jobs);
    writeSweepResults(resultsOutPath(argc, argv), "fig09_overall", benches,
                      names, results);

    buildMetricTable("Figure 9: overall performance of FDP (IPC)", benches,
                     names, results, metricIpc, 3, MeanKind::Geometric)
        .print();

    std::printf(
        "\nFull FDP vs Very Aggressive (best static): %s IPC "
        "(paper: +6.5%%)\n",
        fmtPercent(meanDelta(results[1], results[4], metricIpc,
                             MeanKind::Geometric))
            .c_str());

    // Paper: with full FDP no benchmark loses vs no prefetching.
    int losers = 0;
    for (std::size_t b = 0; b < benches.size(); ++b) {
        if (results[4][b].ipc < results[0][b].ipc * 0.995) {
            ++losers;
            std::printf("  %s still loses: %.3f vs %.3f\n",
                        benches[b].c_str(), results[4][b].ipc,
                        results[0][b].ipc);
        }
    }
    if (losers == 0)
        std::printf("No benchmark loses vs no prefetching under full FDP "
                    "(matches paper).\n");
    return 0;
}
