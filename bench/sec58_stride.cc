/**
 * @file
 * Paper Section 5.8: FDP applied to a PC-based stride prefetcher.
 * The paper reports a 4% performance gain and a 24% bandwidth reduction
 * over the best-performing conventional stride configuration.
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "harness/sweep_pool.hh"
#include "workload/spec_suite.hh"

using namespace fdp;

int
main(int argc, char **argv)
{
    const std::uint64_t insts = instructionBudget(argc, argv, 6'000'000);
    const unsigned jobs = sweepJobs(argc, argv);
    configureSweepStore(argc, argv);
    const auto &benches = memoryIntensiveBenchmarks();

    std::vector<LabeledConfig> configs = {
        {"No Prefetching", RunConfig::noPrefetching()},
        {"Very Conservative", RunConfig::staticLevelConfig(1)},
        {"Middle-of-the-Road", RunConfig::staticLevelConfig(3)},
        {"Very Aggressive", RunConfig::staticLevelConfig(5)},
        {"FDP", RunConfig::fullFdp()},
    };
    std::vector<std::string> names;
    for (auto &[label, c] : configs) {
        if (c.prefetcher != PrefetcherKind::None)
            c.prefetcher = PrefetcherKind::Stride;
        c.numInsts = insts;
        names.push_back(label);
    }

    const auto results = runSweep(benches, configs, jobs);
    writeSweepResults(resultsOutPath(argc, argv), "sec58_stride", benches,
                      names, results);

    buildMetricTable("Section 5.8: PC-based stride prefetcher (IPC)",
                     benches, names, results, metricIpc, 3,
                     MeanKind::Geometric)
        .print();
    buildMetricTable("Section 5.8: PC-based stride prefetcher (BPKI)",
                     benches, names, results, metricBpki, 2,
                     MeanKind::Arithmetic)
        .print();

    // Best static configuration by mean IPC.
    std::size_t best = 1;
    for (std::size_t i = 2; i <= 3; ++i)
        if (meanOf(results[i], metricIpc, MeanKind::Geometric) >
            meanOf(results[best], metricIpc, MeanKind::Geometric))
            best = i;
    std::printf(
        "\nFDP-stride vs best static (%s): %s IPC (paper: +4%%), "
        "%s bandwidth (paper: -24%%)\n",
        names[best].c_str(),
        fmtPercent(meanDelta(results[best], results[4], metricIpc,
                             MeanKind::Geometric))
            .c_str(),
        fmtPercent(meanDelta(results[best], results[4], metricBpki,
                             MeanKind::Arithmetic))
            .c_str());
    return 0;
}
