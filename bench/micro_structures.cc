/**
 * @file
 * google-benchmark microbenchmarks for the core simulator data
 * structures: these are the per-access costs that dominate simulation
 * wall-clock time, kept here so regressions are visible.
 */

#include <benchmark/benchmark.h>

#include <array>
#include <cstdint>

#include "core/fdp_controller.hh"
#include "core/pollution_filter.hh"
#include "dram/dram_controller.hh"
#include "harness/experiment.hh"
#include "manage/prefetcher_manager.hh"
#include "mem/cache.hh"
#include "mem/mshr.hh"
#include "prefetch/dspatch_prefetcher.hh"
#include "prefetch/ghb_prefetcher.hh"
#include "prefetch/stream_prefetcher.hh"
#include "prefetch/vldp_prefetcher.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "workload/generators.hh"
#include "workload/spec_suite.hh"

namespace
{

using namespace fdp;

/**
 * Payload matching the real event-queue call sites: the DRAM fill
 * wrapper captures a completion callback plus the fill cycle (~40-64
 * bytes), so callbacks benchmarked here carry the same weight instead
 * of an unrealistically empty capture.
 */
using CallbackPayload = std::array<std::uint64_t, 5>;

void
BM_CacheAccessHit(benchmark::State &state)
{
    SetAssocCache cache(CacheParams{"L2", 1024 * 1024, 16});
    for (BlockAddr b = 0; b < cache.numBlocks(); ++b)
        cache.insert(b, false, InsertPos::Mru, false);
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            cache.access(rng.range(cache.numBlocks()), false).hit);
}
BENCHMARK(BM_CacheAccessHit);

void
BM_CacheInsertEvict(benchmark::State &state)
{
    SetAssocCache cache(CacheParams{"L2", 1024 * 1024, 16});
    Rng rng(2);
    BlockAddr next = 0;
    for (auto _ : state) {
        const BlockAddr b = next++;
        if (!cache.probe(b))
            benchmark::DoNotOptimize(
                cache.insert(b, false, InsertPos::Mru, false).valid);
    }
}
BENCHMARK(BM_CacheInsertEvict);

void
BM_CacheInsertMid(benchmark::State &state)
{
    // The arbitrary-position insertion path of paper Section 3.3.2:
    // prefetch fills landing mid-stack under Dynamic Insertion.
    SetAssocCache cache(CacheParams{"L2", 1024 * 1024, 16});
    static constexpr InsertPos kPos[3] = {InsertPos::Lru, InsertPos::Lru4,
                                          InsertPos::Mid};
    Rng rng(5);
    BlockAddr next = 0;
    unsigned p = 0;
    for (auto _ : state) {
        const BlockAddr b = next++;
        benchmark::DoNotOptimize(
            cache.insert(b, true, kPos[p], false).valid);
        p = p == 2 ? 0 : p + 1;
    }
}
BENCHMARK(BM_CacheInsertMid);

void
BM_EventQueueScheduleService(benchmark::State &state)
{
    // One schedule + one dispatch per iteration, with the queue holding
    // a steady backlog the way the DRAM pump keeps it during a run.
    EventQueue q;
    CallbackPayload payload{1, 2, 3, 4, 5};
    std::uint64_t sink = 0;
    Cycle when = 1;
    for (Cycle c = 1; c <= 64; ++c)
        q.schedule(c, [payload, &sink] { sink += payload[0]; });
    when = 64;
    for (auto _ : state) {
        ++when;
        q.schedule(when, [payload, &sink] { sink += payload[0]; });
        q.serviceUntil(when - 64);
        benchmark::DoNotOptimize(sink);
    }
    q.reset();
}
BENCHMARK(BM_EventQueueScheduleService);

void
BM_EventQueueSameCycleBurst(benchmark::State &state)
{
    // Bursts of same-cycle events (a loaded bus draining), FIFO order.
    EventQueue q;
    CallbackPayload payload{7, 7, 7, 7, 7};
    std::uint64_t sink = 0;
    Cycle when = 0;
    for (auto _ : state) {
        ++when;
        for (int i = 0; i < 16; ++i)
            q.schedule(when, [payload, &sink] { sink += payload[1]; });
        q.serviceUntil(when);
        benchmark::DoNotOptimize(sink);
    }
}
BENCHMARK(BM_EventQueueSameCycleBurst);

void
BM_MshrAllocateDeallocate(benchmark::State &state)
{
    // The demand-miss path: allocate on miss, find + deallocate on fill,
    // with the file ~half full the whole time.
    MshrFile mshrs(32);
    for (BlockAddr b = 0; b < 16; ++b)
        mshrs.allocate(b, false, 0);
    BlockAddr next = 16;
    for (auto _ : state) {
        const BlockAddr fresh = next++;
        mshrs.allocate(fresh, false, 0);
        const BlockAddr old = fresh - 16;
        benchmark::DoNotOptimize(mshrs.find(old));
        mshrs.deallocate(old);
    }
}
BENCHMARK(BM_MshrAllocateDeallocate);

void
BM_MshrFindMixed(benchmark::State &state)
{
    // Lookup-heavy traffic: every demand access and every prefetch
    // candidate probes the file; most probes miss.
    MshrFile mshrs(32);
    for (BlockAddr b = 0; b < 24; ++b)
        mshrs.allocate(b * 3, false, 0);
    Rng rng(6);
    for (auto _ : state)
        benchmark::DoNotOptimize(mshrs.find(rng.range(96)));
}
BENCHMARK(BM_MshrFindMixed);

void
BM_MshrMergeWaiter(benchmark::State &state)
{
    // A demand merging into an in-flight miss: find + waiter push, then
    // the fill moves the waiters out (the per-fill hot sequence).
    MshrFile mshrs(32);
    std::uint64_t sink = 0;
    BlockAddr next = 0;
    for (auto _ : state) {
        const BlockAddr b = next++;
        MshrEntry &e = mshrs.allocate(b, false, 0);
        for (int w = 0; w < 2; ++w)
            e.waiters.push_back([&sink](Cycle c) { sink += c; });
        benchmark::DoNotOptimize(mshrs.find(b));
        mshrs.deallocate(b);
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_MshrMergeWaiter);

void
BM_PollutionFilter(benchmark::State &state)
{
    PollutionFilter filter;
    Rng rng(3);
    for (auto _ : state) {
        const BlockAddr b = rng.next() & 0xFFFFFF;
        filter.onDemandBlockEvictedByPrefetch(b);
        benchmark::DoNotOptimize(filter.demandMissCausedByPrefetcher(b));
    }
}
BENCHMARK(BM_PollutionFilter);

void
BM_StreamPrefetcherObserve(benchmark::State &state)
{
    StreamPrefetcher pf;
    pf.setAggressiveness(static_cast<unsigned>(state.range(0)));
    std::vector<BlockAddr> out;
    BlockAddr block = 1 << 20;
    for (auto _ : state) {
        out.clear();
        pf.observe({blockBase(block), block, 0x10, true}, out);
        benchmark::DoNotOptimize(out.size());
        ++block;
    }
}
BENCHMARK(BM_StreamPrefetcherObserve)->Arg(1)->Arg(5);

void
BM_StreamFsmTransition(benchmark::State &state)
{
    // The training half of the stream FSM: a fresh region every third
    // access keeps the prefetcher allocating and confirming entries
    // instead of riding one steady monitored stream.
    StreamPrefetcher pf;
    pf.setAggressiveness(3);
    std::vector<BlockAddr> out;
    BlockAddr region = 1 << 22;
    BlockAddr block = region;
    int step = 0;
    for (auto _ : state) {
        out.clear();
        pf.observe({blockBase(block), block, 0x20, true}, out);
        benchmark::DoNotOptimize(out.size());
        if (++step == 3) {
            step = 0;
            region += 4096;
            block = region;
        } else {
            ++block;
        }
    }
}
BENCHMARK(BM_StreamFsmTransition);

void
BM_GhbPrefetcherObserve(benchmark::State &state)
{
    GhbPrefetcher pf;
    pf.setAggressiveness(3);
    std::vector<BlockAddr> out;
    BlockAddr block = 1 << 20;
    for (auto _ : state) {
        out.clear();
        pf.observe({blockBase(block), block, 0x10, true}, out);
        benchmark::DoNotOptimize(out.size());
        block += 2;
    }
}
BENCHMARK(BM_GhbPrefetcherObserve);

void
BM_WorkloadNext(benchmark::State &state)
{
    SyntheticWorkload wl(benchmarkParams("parser"));
    for (auto _ : state)
        benchmark::DoNotOptimize(wl.next().addr);
}
BENCHMARK(BM_WorkloadNext);

void
BM_StatScalarIncrement(benchmark::State &state)
{
    // The per-op accounting pattern before batching: every event bumps
    // a registered ScalarStat directly.
    StatGroup stats("mem");
    ScalarStat demand(stats, "demand_accesses", "demand accesses");
    ScalarStat hits(stats, "l2_hits", "L2 hits");
    ScalarStat misses(stats, "l2_misses", "L2 misses");
    unsigned sel = 0;
    for (auto _ : state) {
        ++demand;
        if (sel++ & 1)
            ++hits;
        else
            ++misses;
        benchmark::DoNotOptimize(demand.value());
    }
}
BENCHMARK(BM_StatScalarIncrement);

void
BM_StatBatchedIncrement(benchmark::State &state)
{
    // The batched pattern the hot path uses: plain local counters,
    // flushed into the registered stats at sampling boundaries.
    StatGroup stats("mem");
    ScalarStat demand(stats, "demand_accesses", "demand accesses");
    ScalarStat hits(stats, "l2_hits", "L2 hits");
    ScalarStat misses(stats, "l2_misses", "L2 misses");
    std::uint64_t d = 0, h = 0, m = 0;
    unsigned sel = 0, pending = 0;
    for (auto _ : state) {
        ++d;
        if (sel++ & 1)
            ++h;
        else
            ++m;
        if (++pending == 1024) {
            demand += d;
            hits += h;
            misses += m;
            d = h = m = 0;
            pending = 0;
        }
        benchmark::DoNotOptimize(d);
    }
    demand += d;
    hits += h;
    misses += m;
    benchmark::DoNotOptimize(demand.value());
}
BENCHMARK(BM_StatBatchedIncrement);

void
BM_FdpControllerDemandMiss(benchmark::State &state)
{
    StatGroup stats("fdp");
    FdpParams params;
    FdpController fdp(params, nullptr, stats);
    Rng rng(4);
    for (auto _ : state)
        benchmark::DoNotOptimize(fdp.onDemandMiss(rng.next() & 0xFFFFFF));
}
BENCHMARK(BM_FdpControllerDemandMiss);

void
BM_VldpObserve(benchmark::State &state)
{
    VldpPrefetcher pf;
    pf.setAggressiveness(3);
    std::vector<BlockAddr> out;
    // Walk a repeating delta cycle across many pages: steady-state DHB
    // hits with DPT training plus the chained multi-degree predict.
    static constexpr unsigned kDeltas[3] = {1, 3, 2};
    Addr page = 0x5000;
    unsigned offset = 1, phase = 0;
    for (auto _ : state) {
        out.clear();
        const Addr a = (page << 12) + (Addr{offset} << kBlockShift);
        pf.observe({a, blockAddr(a), 0x14000, true}, out);
        benchmark::DoNotOptimize(out.size());
        offset += kDeltas[phase];
        phase = (phase + 1) % 3;
        if (offset >= 64) {
            offset = 1;
            ++page;
        }
    }
}
BENCHMARK(BM_VldpObserve);

void
BM_DspatchObserve(benchmark::State &state)
{
    DspatchPrefetcher pf;
    pf.setAggressiveness(3);
    std::vector<BlockAddr> out;
    // Dense region sweep under one PC: every region retirement trains
    // the SPT and every first touch replays a learned pattern.
    Addr block = 1 << 22;
    for (auto _ : state) {
        out.clear();
        pf.observe({blockBase(block), block, 0x20, true}, out);
        benchmark::DoNotOptimize(out.size());
        block += 2;
    }
}
BENCHMARK(BM_DspatchObserve);

void
BM_ManagerIntervalTick(benchmark::State &state)
{
    RunConfig config = RunConfig::fullFdp();
    config.manager = ManagerKind::Explore;
    auto pf = makeRunPrefetcher(config);  // manager over the full zoo
    std::uint64_t retired = 0, cycle = 0;
    double ipc = 0.9;
    for (auto _ : state) {
        retired += static_cast<std::uint64_t>(ipc * 10000);
        cycle += 10000;
        // Drift the signal so elections and collapses both happen.
        ipc = ipc > 1.4 ? 0.6 : ipc + 0.07;
        static_cast<ManagedPrefetcher &>(*pf).intervalTick(
            {0.5, 0.1, 0.05, retired, cycle});
        benchmark::DoNotOptimize(pf->aggressiveness());
    }
}
BENCHMARK(BM_ManagerIntervalTick);

void
BM_DramSchedulePick(benchmark::State &state)
{
    // Steady-state FR-FCFS scheduling over a populated queue with the
    // full comparator engaged: FDP tiers, weighted service, QoS caps.
    EventQueue events;
    StatGroup stats{"dram"};
    DramCtrlParams ctrl;
    ctrl.kind = DramKind::Controller;
    ctrl.channels = 2;
    ctrl.qosWeighted = true;
    DramController dram(DramParams{}, ctrl, events, stats, 4);
    static constexpr PrefetchTier kTiers[3] = {PrefetchTier::High,
                                               PrefetchTier::Medium,
                                               PrefetchTier::Low};
    std::uint64_t i = 0;
    for (auto _ : state) {
        const BusPriority prio =
            i % 3 == 0 ? BusPriority::Demand : BusPriority::Prefetch;
        dram.enqueue((i * 37) % (1 << 20), prio, events.horizon(),
                     [](Cycle) {}, CoreId(i % 4), kTiers[i % 3]);
        // Keep ~16 requests resident so every grant scans a real queue.
        if (++i % 16 == 0)
            events.serviceUntil(events.horizon() + 4000);
        benchmark::DoNotOptimize(dram.queued());
    }
}
BENCHMARK(BM_DramSchedulePick);

void
BM_DramBankTick(benchmark::State &state)
{
    // Single-channel bank/row bookkeeping: a same-row walk, so every
    // grant takes the row-hit path (activate bookkeeping amortized at
    // row boundaries) and the per-access cost is the bank timing tick.
    EventQueue events;
    StatGroup stats{"dram"};
    DramCtrlParams ctrl;
    ctrl.kind = DramKind::Controller;
    ctrl.channels = 1;
    DramController dram(DramParams{}, ctrl, events, stats);
    BlockAddr block = 0;
    for (auto _ : state) {
        dram.enqueue(block++, BusPriority::Demand, events.horizon(),
                     [](Cycle) {});
        events.serviceUntil(events.horizon() + 200);
        benchmark::DoNotOptimize(dram.busAccesses());
    }
}
BENCHMARK(BM_DramBankTick);

} // namespace

BENCHMARK_MAIN();
