/**
 * @file
 * google-benchmark microbenchmarks for the core simulator data
 * structures: these are the per-access costs that dominate simulation
 * wall-clock time, kept here so regressions are visible.
 */

#include <benchmark/benchmark.h>

#include "core/fdp_controller.hh"
#include "core/pollution_filter.hh"
#include "mem/cache.hh"
#include "prefetch/ghb_prefetcher.hh"
#include "prefetch/stream_prefetcher.hh"
#include "sim/rng.hh"
#include "workload/generators.hh"
#include "workload/spec_suite.hh"

namespace
{

using namespace fdp;

void
BM_CacheAccessHit(benchmark::State &state)
{
    SetAssocCache cache(CacheParams{"L2", 1024 * 1024, 16});
    for (BlockAddr b = 0; b < cache.numBlocks(); ++b)
        cache.insert(b, false, InsertPos::Mru, false);
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            cache.access(rng.range(cache.numBlocks()), false).hit);
}
BENCHMARK(BM_CacheAccessHit);

void
BM_CacheInsertEvict(benchmark::State &state)
{
    SetAssocCache cache(CacheParams{"L2", 1024 * 1024, 16});
    Rng rng(2);
    BlockAddr next = 0;
    for (auto _ : state) {
        const BlockAddr b = next++;
        if (!cache.probe(b))
            benchmark::DoNotOptimize(
                cache.insert(b, false, InsertPos::Mru, false).valid);
    }
}
BENCHMARK(BM_CacheInsertEvict);

void
BM_PollutionFilter(benchmark::State &state)
{
    PollutionFilter filter;
    Rng rng(3);
    for (auto _ : state) {
        const BlockAddr b = rng.next() & 0xFFFFFF;
        filter.onDemandBlockEvictedByPrefetch(b);
        benchmark::DoNotOptimize(filter.demandMissCausedByPrefetcher(b));
    }
}
BENCHMARK(BM_PollutionFilter);

void
BM_StreamPrefetcherObserve(benchmark::State &state)
{
    StreamPrefetcher pf;
    pf.setAggressiveness(static_cast<unsigned>(state.range(0)));
    std::vector<BlockAddr> out;
    BlockAddr block = 1 << 20;
    for (auto _ : state) {
        out.clear();
        pf.observe({blockBase(block), block, 0x10, true}, out);
        benchmark::DoNotOptimize(out.size());
        ++block;
    }
}
BENCHMARK(BM_StreamPrefetcherObserve)->Arg(1)->Arg(5);

void
BM_GhbPrefetcherObserve(benchmark::State &state)
{
    GhbPrefetcher pf;
    pf.setAggressiveness(3);
    std::vector<BlockAddr> out;
    BlockAddr block = 1 << 20;
    for (auto _ : state) {
        out.clear();
        pf.observe({blockBase(block), block, 0x10, true}, out);
        benchmark::DoNotOptimize(out.size());
        block += 2;
    }
}
BENCHMARK(BM_GhbPrefetcherObserve);

void
BM_WorkloadNext(benchmark::State &state)
{
    SyntheticWorkload wl(benchmarkParams("parser"));
    for (auto _ : state)
        benchmark::DoNotOptimize(wl.next().addr);
}
BENCHMARK(BM_WorkloadNext);

void
BM_FdpControllerDemandMiss(benchmark::State &state)
{
    StatGroup stats("fdp");
    FdpParams params;
    FdpController fdp(params, nullptr, stats);
    Rng rng(4);
    for (auto _ : state)
        benchmark::DoNotOptimize(fdp.onDemandMiss(rng.next() & 0xFFFFFF));
}
BENCHMARK(BM_FdpControllerDemandMiss);

} // namespace

BENCHMARK_MAIN();
