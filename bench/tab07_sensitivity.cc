/**
 * @file
 * Paper Table 7: sensitivity of FDP to the L2 cache size (512KB..4MB at
 * 500-cycle memory latency) and to the memory latency (250..1000 cycles
 * at 1MB L2). Reports the change in mean IPC and BPKI of FDP relative
 * to the best-performing conventional configuration (Very Aggressive).
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "harness/sweep_pool.hh"
#include "workload/spec_suite.hh"

using namespace fdp;

namespace
{

struct Point
{
    std::string label;
    MachineParams machine;
};

void
runPoint(const Point &pt, std::uint64_t insts, unsigned jobs, Table &t,
         ResultsJson &out)
{
    RunConfig va = RunConfig::staticLevelConfig(5);
    RunConfig fdp = RunConfig::fullFdp();
    va.machine = pt.machine;
    fdp.machine = pt.machine;
    va.numInsts = insts;
    fdp.numInsts = insts;
    // Scale the sampling interval with the cache size (T_interval is
    // half the L2 blocks, paper Section 3.2).
    fdp.fdp.intervalEvictions =
        pt.machine.l2.sizeBytes / kBlockBytes / 2;

    const auto &benches = memoryIntensiveBenchmarks();
    const std::vector<LabeledConfig> configs = {{"va", va},
                                                {"fdp", fdp}};
    const auto results = runSweep(benches, configs, jobs);
    const auto &rva = results[0];
    const auto &rfdp = results[1];
    for (std::size_t b = 0; b < benches.size(); ++b) {
        out.addRunResult(pt.label + "/" + benches[b] + "/va", rva[b]);
        out.addRunResult(pt.label + "/" + benches[b] + "/fdp", rfdp[b]);
    }
    t.addRow({pt.label,
              fmtPercent(meanDelta(rva, rfdp, metricIpc,
                                   MeanKind::Geometric)),
              fmtPercent(meanDelta(rva, rfdp, metricBpki,
                                   MeanKind::Arithmetic))});
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t insts = instructionBudget(argc, argv, 4'000'000);
    const unsigned jobs = sweepJobs(argc, argv);
    configureSweepStore(argc, argv);
    const std::string outPath = resultsOutPath(argc, argv);
    ResultsJson out("tab07_sensitivity");

    Table t("Table 7: FDP vs Very Aggressive across L2 sizes and memory "
            "latencies (delta IPC / delta BPKI)");
    t.setHeader({"configuration", "delta IPC", "delta BPKI"});

    for (const std::size_t kb : {512u, 1024u, 2048u, 4096u}) {
        Point pt;
        pt.label = "L2 " + std::to_string(kb) + "KB, 500-cycle memory";
        pt.machine.l2.sizeBytes = kb * 1024;
        runPoint(pt, insts, jobs, t, out);
    }
    for (const Cycle lat : {250u, 500u, 750u, 1000u}) {
        Point pt;
        pt.label = "1MB L2, " + std::to_string(lat) + "-cycle memory";
        pt.machine.dram = DramParams::withUnloadedLatency(lat);
        runPoint(pt, insts, jobs, t, out);
    }
    if (!outPath.empty())
        out.writeFile(outPath);
    t.print();
    std::printf("\nPaper: FDP wins on IPC and saves significant bandwidth "
                "at every cache size and memory latency, with the IPC "
                "gain growing as memory latency grows.\n");
    return 0;
}
