/**
 * @file
 * Paper Table 4: number of prefetches sent to memory by a Very
 * Aggressive stream prefetcher for each benchmark in the (synthetic)
 * SPEC CPU2000 suite. The paper's memory-intensive cut-off is 200K
 * prefetches over 250M instructions, i.e. 0.8 prefetches per thousand
 * instructions - the same per-instruction threshold is reported here.
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "workload/spec_suite.hh"

using namespace fdp;

int
main(int argc, char **argv)
{
    const std::uint64_t insts = instructionBudget(argc, argv, 5'000'000);

    RunConfig c = RunConfig::staticLevelConfig(5);
    c.numInsts = insts;

    Table t("Table 4: prefetches sent by a Very Aggressive stream "
            "prefetcher");
    t.setHeader({"benchmark", "prefetches", "per 1000 insts",
                 "memory-intensive?"});
    for (const auto &name : allBenchmarks()) {
        const RunResult r = runBenchmark(name, c, "va");
        const double pki = ratio(static_cast<double>(r.prefSent),
                                 static_cast<double>(r.insts) / 1000.0);
        t.addRow({name, std::to_string(r.prefSent), fmtDouble(pki, 2),
                  pki >= 0.8 ? "yes" : "no"});
    }
    t.print();
    std::printf("\nPaper cut-off: 200K prefetches / 250M instructions "
                "= 0.8 per 1000 instructions.\n");
    return 0;
}
