/**
 * @file
 * Paper Figure 1: IPC performance vs. static aggressiveness of the
 * stream prefetcher (No Prefetching / Very Conservative /
 * Middle-of-the-Road / Very Aggressive) on the 17 memory-intensive
 * benchmarks. Also prints the Table 1 configurations for reference.
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "workload/spec_suite.hh"

using namespace fdp;

int
main(int argc, char **argv)
{
    const std::uint64_t insts = instructionBudget(argc, argv, 8'000'000);
    const auto &benches = memoryIntensiveBenchmarks();

    Table cfg("Table 1: stream prefetcher configurations");
    cfg.setHeader({"counter", "aggressiveness", "distance", "degree"});
    for (unsigned level = 1; level <= 5; ++level)
        cfg.addRow({std::to_string(level), aggrLevelName(level),
                    std::to_string(kStreamAggrTable[level].distance),
                    std::to_string(kStreamAggrTable[level].degree)});
    cfg.print();

    const std::vector<std::pair<std::string, RunConfig>> configs = {
        {"No Prefetching", RunConfig::noPrefetching()},
        {"Very Conservative", RunConfig::staticLevelConfig(1)},
        {"Middle-of-the-Road", RunConfig::staticLevelConfig(3)},
        {"Very Aggressive", RunConfig::staticLevelConfig(5)},
    };

    std::vector<std::string> names;
    std::vector<std::vector<RunResult>> results;
    for (const auto &[label, base] : configs) {
        RunConfig c = base;
        c.numInsts = insts;
        names.push_back(label);
        results.push_back(runSuite(benches, c, label));
    }

    Table t = buildMetricTable(
        "Figure 1: IPC vs. prefetcher aggressiveness (17 benchmarks)",
        benches, names, results, metricIpc, 3, MeanKind::Geometric);
    t.print();

    const double gain =
        meanDelta(results[0], results[3], metricIpc, MeanKind::Geometric);
    std::printf("\nVery Aggressive vs No Prefetching: %s average IPC "
                "(paper: +84%%)\n",
                fmtPercent(gain).c_str());
    return 0;
}
