/**
 * @file
 * Paper Figure 8: distribution of the LRU-stack position at which
 * prefetched blocks are inserted under Dynamic Insertion. Polluting
 * codes insert at/near LRU; clean streaming codes insert at MID.
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "workload/spec_suite.hh"

using namespace fdp;

int
main(int argc, char **argv)
{
    const std::uint64_t insts = instructionBudget(argc, argv, 8'000'000);
    const auto &benches = memoryIntensiveBenchmarks();

    RunConfig c = RunConfig::dynamicInsertion();
    c.numInsts = insts;

    Table t("Figure 8: distribution of the insertion position of "
            "prefetched blocks (fraction of prefetch fills)");
    t.setHeader({"benchmark", "LRU", "LRU-4", "MID", "MRU"});
    for (const auto &name : benches) {
        const RunResult r = runBenchmark(name, c, "dyn-ins");
        std::vector<std::string> row = {name};
        for (double f : r.insertDist)
            row.push_back(fmtPercent(f, 1));
        t.addRow(std::move(row));
    }
    t.print();
    std::printf("\nPaper: benchmarks best served by static LRU insertion "
                "(art, ammp) place >50%% of prefetched blocks at LRU.\n"
                "Note: the dynamic policy never chooses MRU (paper "
                "Section 3.3.2 footnote).\n");
    return 0;
}
