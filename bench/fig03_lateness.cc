/**
 * @file
 * Paper Figure 3: IPC (left) and prefetch lateness (right) with the
 * traditional configurations. Lateness falls as aggressiveness rises
 * (requests are issued earlier); mcf stays extremely late at every
 * configuration because its demand rate exceeds the bus.
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "workload/spec_suite.hh"

using namespace fdp;

int
main(int argc, char **argv)
{
    const std::uint64_t insts = instructionBudget(argc, argv, 8'000'000);
    const auto &benches = memoryIntensiveBenchmarks();

    const std::vector<std::pair<std::string, RunConfig>> configs = {
        {"Very Conservative", RunConfig::staticLevelConfig(1)},
        {"Middle-of-the-Road", RunConfig::staticLevelConfig(3)},
        {"Very Aggressive", RunConfig::staticLevelConfig(5)},
    };

    std::vector<std::string> names;
    std::vector<std::vector<RunResult>> results;
    for (const auto &[label, base] : configs) {
        RunConfig c = base;
        c.numInsts = insts;
        names.push_back(label);
        results.push_back(runSuite(benches, c, label));
    }

    buildMetricTable("Figure 3 (left): IPC per configuration", benches,
                     names, results, metricIpc, 3, MeanKind::Geometric)
        .print();
    buildMetricTable("Figure 3 (right): prefetch lateness", benches, names,
                     results, metricLateness, 3, MeanKind::Arithmetic)
        .print();

    // The paper's headline lateness observations.
    for (std::size_t b = 0; b < benches.size(); ++b) {
        if (benches[b] == "mcf") {
            std::printf("\nmcf: accuracy %.2f, lateness %.2f at Very "
                        "Conservative (paper: ~1.0 accuracy, >0.9 late)\n",
                        results[0][b].accuracy, results[0][b].lateness);
        }
    }
    return 0;
}
