/**
 * @file
 * Paper Figure 10: memory bandwidth impact of FDP, in Memory Bus
 * Accesses Per Kilo Instructions (BPKI). FDP must consume less
 * bandwidth than Very Aggressive while performing better.
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "harness/sweep_pool.hh"
#include "workload/spec_suite.hh"

using namespace fdp;

int
main(int argc, char **argv)
{
    const std::uint64_t insts = instructionBudget(argc, argv, 8'000'000);
    const unsigned jobs = sweepJobs(argc, argv);
    configureSweepStore(argc, argv);
    const auto &benches = memoryIntensiveBenchmarks();

    std::vector<LabeledConfig> configs = {
        {"No Prefetching", RunConfig::noPrefetching()},
        {"Very Conservative", RunConfig::staticLevelConfig(1)},
        {"Middle-of-the-Road", RunConfig::staticLevelConfig(3)},
        {"Very Aggressive", RunConfig::staticLevelConfig(5)},
        {"FDP", RunConfig::fullFdp()},
    };
    std::vector<std::string> names;
    for (auto &[label, c] : configs) {
        c.numInsts = insts;
        names.push_back(label);
    }

    const auto results = runSweep(benches, configs, jobs);
    writeSweepResults(resultsOutPath(argc, argv), "fig10_bandwidth",
                      benches, names, results);

    buildMetricTable("Figure 10: memory bus accesses per kilo "
                     "instructions (BPKI)",
                     benches, names, results, metricBpki, 2,
                     MeanKind::Arithmetic)
        .print();

    std::printf(
        "\nFDP vs Very Aggressive: %s bandwidth (paper: -18.7%%), "
        "%s IPC (paper: +6.5%%)\n",
        fmtPercent(meanDelta(results[3], results[4], metricBpki,
                             MeanKind::Arithmetic))
            .c_str(),
        fmtPercent(meanDelta(results[3], results[4], metricIpc,
                             MeanKind::Geometric))
            .c_str());
    return 0;
}
