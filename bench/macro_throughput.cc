/**
 * @file
 * End-to-end simulator throughput macro-benchmark: wall-clock insts/s
 * of complete machines (core + caches + MSHRs + DRAM + FDP) over three
 * representative stand-ins — a streaming winner (swim), the
 * high-lateness pointer chaser (mcf), and a pollution victim (art).
 *
 * Emits one fdp-results-v1 JSON document on stdout so tools/bench.sh
 * can merge it with the micro_structures numbers into BENCH_<rev>.json.
 * The simulated output is deterministic; only the wall-clock varies.
 *
 * Besides the timing rates, the document carries the full deterministic
 * metric set of every simulated run (sim/<bench>/... and the mc2
 * co-run) — these are bit-identical across hosts and feed the ci.sh
 * bench-diff trajectory gate, which diffs them exactly against the
 * committed quick baseline. A drift there is a simulation-semantics
 * change: either a bug, or an intended change that must come with a
 * baseline regen plus a result_store.hh kSimCoreVersion bump.
 */

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "harness/sweep_pool.hh"
#include "mc/mc_machine.hh"
#include "mc/mix_runner.hh"
#include "mc/workload_mix.hh"
#include "sim/logging.hh"

using namespace fdp;

int
main(int argc, char **argv)
{
    const std::uint64_t insts = instructionBudget(argc, argv, 2'000'000);
    const std::vector<std::string> benches = {"swim", "mcf", "art"};

    RunConfig config = RunConfig::fullFdp();
    config.numInsts = insts;

    // One untimed warm-up run so page faults and lazy init don't bill
    // the first timed benchmark.
    runBenchmark(benches.front(), config, "warmup");

    // Where the trace-replay section writes its temporary recording
    // (tools/bench.sh points this into the build tree).
    std::string trace_file = "macro_throughput.fdptrace";
    for (int i = 1; i + 1 < argc; ++i)
        if (std::string(argv[i]) == "--trace-file")
            trace_file = argv[i + 1];

    ResultsJson json("macro_throughput");
    std::uint64_t total_insts = 0;
    double total_wall = 0.0;
    double swim_rate = 0.0;
    for (const auto &b : benches) {
        const auto start = std::chrono::steady_clock::now();
        const RunResult r = runBenchmark(b, config, "full-fdp");
        const std::chrono::duration<double> wall =
            std::chrono::steady_clock::now() - start;
        total_insts += r.insts;
        total_wall += wall.count();
        const double rate = static_cast<double>(r.insts) / wall.count();
        if (b == "swim")
            swim_rate = rate;
        json.add("macro/" + b + "/insts_per_s", "insts/s", rate, "higher");
        json.addRunResult("sim/" + b, r);
        json.add("sim/" + b + "/insts", "count",
                 static_cast<double>(r.insts), "higher");
        json.add("sim/" + b + "/l2_misses", "count",
                 static_cast<double>(r.l2Misses), "lower");
        json.add("sim/" + b + "/pref_sent", "count",
                 static_cast<double>(r.prefSent), "higher");
    }
    json.add("macro/insts_per_s", "insts/s",
             static_cast<double>(total_insts) / total_wall, "higher");

    // Trace-replay throughput: record swim untimed, then time the same
    // run driven from the file. The ratio against the live run is the
    // frontend cost delta (decode + I/O vs. generator arithmetic).
    recordBenchmark("swim", config, "record", trace_file);
    const auto replay_start = std::chrono::steady_clock::now();
    const RunResult replayed = replayTrace(trace_file, config, "replay");
    const std::chrono::duration<double> replay_wall =
        std::chrono::steady_clock::now() - replay_start;
    const double replay_rate =
        static_cast<double>(replayed.insts) / replay_wall.count();
    json.add("macro/trace_replay/insts_per_s", "insts/s", replay_rate,
             "higher");
    json.add("macro/trace_replay/speedup_vs_live", "x",
             replay_rate / swim_rate, "higher");
    // Replay must reproduce the live run exactly; exporting its
    // deterministic metrics means the bench-diff gate also notices a
    // trace frontend divergence.
    json.addRunResult("sim/trace_replay", replayed);

    // Warm-fork sweep speedup: the same (benchmark, config) grid with
    // each cell warmed in place (cold) vs forked from one shared warm
    // image per benchmark (runSweep's warm-fork path). Both sides run
    // serially so the ratio isolates warm-up sharing, and the measured
    // results must match bit for bit — the determinism contract the
    // golden tests pin, re-checked here on every bench run.
    {
        const std::vector<std::string> sweepBenches = {"swim", "art"};
        std::vector<LabeledConfig> sweepConfigs;
        for (unsigned lvl : {1u, 3u, 5u})
            sweepConfigs.emplace_back("static-" + std::to_string(lvl),
                                      RunConfig::staticLevelConfig(lvl));
        sweepConfigs.emplace_back("fdp", RunConfig::fullFdp());
        sweepConfigs.emplace_back("dyn-ins", RunConfig::dynamicInsertion(5));
        for (auto &lc : sweepConfigs) {
            lc.second.numInsts = insts / 4;
            lc.second.warmupInsts = insts;  // warm-up dominates each cell
        }

        const auto cold_start = std::chrono::steady_clock::now();
        std::vector<std::vector<RunResult>> cold(sweepConfigs.size());
        for (std::size_t c = 0; c < sweepConfigs.size(); ++c)
            for (const auto &b : sweepBenches)
                cold[c].push_back(runBenchmark(b, sweepConfigs[c].second,
                                               sweepConfigs[c].first));
        const std::chrono::duration<double> cold_wall =
            std::chrono::steady_clock::now() - cold_start;

        const auto warm_start = std::chrono::steady_clock::now();
        const std::vector<std::vector<RunResult>> warm =
            runSweep(sweepBenches, sweepConfigs, 1);
        const std::chrono::duration<double> warm_wall =
            std::chrono::steady_clock::now() - warm_start;

        for (std::size_t c = 0; c < sweepConfigs.size(); ++c)
            for (std::size_t b = 0; b < sweepBenches.size(); ++b) {
                const RunResult &x = cold[c][b];
                const RunResult &y = warm[c][b];
                if (x.insts != y.insts || x.cycles != y.cycles ||
                    x.busAccesses != y.busAccesses ||
                    x.l2Misses != y.l2Misses || x.prefSent != y.prefSent ||
                    x.prefUsed != y.prefUsed ||
                    x.accuracy != y.accuracy || x.lateness != y.lateness ||
                    x.pollution != y.pollution)
                    fatal("warm-fork sweep diverged from cold warm-up "
                          "at %s/%s", sweepBenches[b].c_str(),
                          sweepConfigs[c].first.c_str());
            }

        json.add("macro/sweep_cold/wall_s", "s", cold_wall.count(),
                 "lower");
        json.add("macro/sweep_warmfork/wall_s", "s", warm_wall.count(),
                 "lower");
        json.add("macro/sweep_warmfork/speedup", "x",
                 cold_wall.count() / warm_wall.count(), "higher");
        // Deterministic metrics of one forked cell, so the bench-diff
        // gate also notices a warm-fork semantics divergence.
        json.addRunResult("sim/sweep_fdp_swim", warm[3][0]);
    }

    // Multi-core throughput: a 2-core bandwidth-bound co-run (shared
    // L2 + DRAM, per-core FDP). Rate is total retired instructions
    // across both cores per wall-clock second, so it is directly
    // comparable with the single-core macro rates above.
    McRunConfig mc;
    mc.base = config;
    mc.numCores = 2;
    const auto mc_start = std::chrono::steady_clock::now();
    const McRunResult corun =
        runMix(mixByName("mix2-stream"), mc, "full-fdp");
    const std::chrono::duration<double> mc_wall =
        std::chrono::steady_clock::now() - mc_start;
    std::uint64_t mc_insts = 0;
    for (const auto &c : corun.cores)
        mc_insts += c.insts;
    json.add("macro/mc2/insts_per_s", "insts/s",
             static_cast<double>(mc_insts) / mc_wall.count(), "higher");
    addMcRunResult(json, corun);

    json.write(std::cout);
    return 0;
}
