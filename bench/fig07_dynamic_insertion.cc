/**
 * @file
 * Paper Figure 7: Dynamic Insertion vs. static LRU / LRU-4 / MID / MRU
 * insertion of prefetched blocks, on a Very Aggressive prefetcher.
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "workload/spec_suite.hh"

using namespace fdp;

int
main(int argc, char **argv)
{
    const std::uint64_t insts = instructionBudget(argc, argv, 8'000'000);
    const auto &benches = memoryIntensiveBenchmarks();

    const std::vector<std::pair<std::string, RunConfig>> configs = {
        {"LRU", RunConfig::staticLevelConfig(5, InsertPos::Lru)},
        {"LRU-4", RunConfig::staticLevelConfig(5, InsertPos::Lru4)},
        {"MID", RunConfig::staticLevelConfig(5, InsertPos::Mid)},
        {"MRU", RunConfig::staticLevelConfig(5, InsertPos::Mru)},
        {"Dynamic Insertion", RunConfig::dynamicInsertion()},
    };

    std::vector<std::string> names;
    std::vector<std::vector<RunResult>> results;
    for (const auto &[label, base] : configs) {
        RunConfig c = base;
        c.numInsts = insts;
        names.push_back(label);
        results.push_back(runSuite(benches, c, label));
    }

    buildMetricTable("Figure 7: dynamic adjustment of the prefetch "
                     "insertion policy (IPC, Very Aggressive prefetcher)",
                     benches, names, results, metricIpc, 3,
                     MeanKind::Geometric)
        .print();

    std::printf(
        "\nDynamic Insertion vs MRU: %s IPC (paper: +5.1%%)\n",
        fmtPercent(meanDelta(results[3], results[4], metricIpc,
                             MeanKind::Geometric))
            .c_str());
    std::printf(
        "Dynamic Insertion vs LRU-4 (best static): %s IPC (paper: +1.9%%)\n",
        fmtPercent(meanDelta(results[1], results[4], metricIpc,
                             MeanKind::Geometric))
            .c_str());
    return 0;
}
