/**
 * @file
 * Paper Figure 6: distribution of the Dynamic Configuration Counter
 * value over all sampling intervals under Dynamic Aggressiveness.
 * Pollution victims (art, ammp) live at Very Conservative; streaming
 * winners live at Aggressive / Very Aggressive.
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "workload/spec_suite.hh"

using namespace fdp;

int
main(int argc, char **argv)
{
    const std::uint64_t insts = instructionBudget(argc, argv, 8'000'000);
    const auto &benches = memoryIntensiveBenchmarks();

    RunConfig c = RunConfig::dynamicAggressiveness();
    c.numInsts = insts;

    Table t("Figure 6: distribution of the dynamic aggressiveness level "
            "(fraction of sampling intervals)");
    t.setHeader({"benchmark", "VeryCons(1)", "Cons(2)", "Middle(3)",
                 "Aggr(4)", "VeryAggr(5)"});
    for (const auto &name : benches) {
        const RunResult r = runBenchmark(name, c, "dyn");
        std::vector<std::string> row = {name};
        for (double f : r.levelDist)
            row.push_back(fmtPercent(f, 1));
        t.addRow(std::move(row));
    }
    t.print();
    std::printf("\nPaper: art/ammp sit at Very Conservative in >98%% of "
                "intervals; swim-class codes sit at Very Aggressive.\n");
    return 0;
}
