/**
 * @file
 * Paper Table 6: hardware cost of FDP in bits of state, computed from
 * the modeled machine configuration (Table 3), plus the Table 3 machine
 * parameters themselves for reference.
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "sim/table.hh"

using namespace fdp;

int
main(int, char **)
{
    const MachineParams m;
    const FdpParams f;

    const std::uint64_t l2_blocks = m.l2.sizeBytes / kBlockBytes;
    const std::uint64_t pref_bits = l2_blocks;               // 1 per tag
    const std::uint64_t filter_bits = f.filterBits;
    const std::uint64_t counter_bits = 11 * 16;              // 11 counters
    const std::uint64_t mshr_bits = m.l2Mshrs;               // 1 per entry
    const std::uint64_t total =
        pref_bits + filter_bits + counter_bits + mshr_bits;

    Table t("Table 6: hardware cost of feedback directed prefetching");
    t.setHeader({"structure", "bits"});
    t.addRow({"pref-bit per L2 tag-store entry (16384 blocks)",
              std::to_string(pref_bits)});
    t.addRow({"pollution filter (4096-entry bit vector)",
              std::to_string(filter_bits)});
    t.addRow({"16-bit feedback counters (11 counters)",
              std::to_string(counter_bits)});
    t.addRow({"pref-bit per MSHR entry (128 entries)",
              std::to_string(mshr_bits)});
    t.addRule();
    t.addRow({"total", std::to_string(total)});
    t.print();

    std::printf("\nTotal: %llu bits = %.2f KB (paper: 20784 bits = "
                "2.54 KB)\n",
                static_cast<unsigned long long>(total),
                static_cast<double>(total) / 8.0 / 1024.0);
    std::printf("Overhead vs the 1MB L2 data store: %.3f%% (paper: "
                "0.24%%)\n",
                100.0 * (static_cast<double>(total) / 8.0) /
                    static_cast<double>(m.l2.sizeBytes));

    Table m3("Table 3: modeled machine (memory side)");
    m3.setHeader({"parameter", "value"});
    m3.addRow({"L1D", "64KB, 4-way, 2-cycle"});
    m3.addRow({"L2", "1MB, 16-way, 10-cycle, 128 MSHRs, LRU, 64B blocks"});
    m3.addRow({"DRAM", "32 banks, 500-cycle unloaded latency"});
    m3.addRow({"bus", "4.5 GB/s at 4 GHz (~57 cycles per 64B block)"});
    m3.addRow({"core", "8-wide, 128-entry ROB"});
    m3.addRow({"stream prefetcher", "64 streams, 128-entry request queue"});
    m3.print();
    return 0;
}
