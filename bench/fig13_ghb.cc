/**
 * @file
 * Paper Figure 13: FDP applied to the GHB-based C/DC delta-correlation
 * prefetcher - static aggressiveness configurations vs. the feedback
 * directed GHB prefetcher, in IPC and BPKI.
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "harness/sweep_pool.hh"
#include "workload/spec_suite.hh"

using namespace fdp;

int
main(int argc, char **argv)
{
    const std::uint64_t insts = instructionBudget(argc, argv, 6'000'000);
    const unsigned jobs = sweepJobs(argc, argv);
    configureSweepStore(argc, argv);
    const auto &benches = memoryIntensiveBenchmarks();

    std::vector<LabeledConfig> configs = {
        {"No Prefetching", RunConfig::noPrefetching()},
        {"Very Conservative", RunConfig::staticLevelConfig(1)},
        {"Middle-of-the-Road", RunConfig::staticLevelConfig(3)},
        {"Very Aggressive", RunConfig::staticLevelConfig(5)},
        {"FDP", RunConfig::fullFdp()},
    };
    std::vector<std::string> names;
    for (auto &[label, c] : configs) {
        if (c.prefetcher != PrefetcherKind::None)
            c.prefetcher = PrefetcherKind::GhbCdc;
        c.numInsts = insts;
        names.push_back(label);
    }

    const auto results = runSweep(benches, configs, jobs);
    writeSweepResults(resultsOutPath(argc, argv), "fig13_ghb", benches,
                      names, results);

    buildMetricTable("Figure 13 (top): GHB C/DC prefetcher (IPC)", benches,
                     names, results, metricIpc, 3, MeanKind::Geometric)
        .print();
    buildMetricTable("Figure 13 (bottom): GHB C/DC prefetcher (BPKI)",
                     benches, names, results, metricBpki, 2,
                     MeanKind::Arithmetic)
        .print();

    std::printf(
        "\nFDP-GHB vs Very Aggressive GHB: %s IPC, %s bandwidth "
        "(paper: similar IPC, -20.8%% bandwidth)\n",
        fmtPercent(meanDelta(results[3], results[4], metricIpc,
                             MeanKind::Geometric))
            .c_str(),
        fmtPercent(meanDelta(results[3], results[4], metricBpki,
                             MeanKind::Arithmetic))
            .c_str());
    std::printf(
        "FDP-GHB vs Middle-of-the-Road GHB (bandwidth-matched): %s IPC "
        "(paper: +9.9%%)\n",
        fmtPercent(meanDelta(results[2], results[4], metricIpc,
                             MeanKind::Geometric))
            .c_str());
    return 0;
}
