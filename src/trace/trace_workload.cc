#include "trace/trace_workload.hh"

#include "sim/logging.hh"

namespace fdp
{

TraceWorkload::TraceWorkload(const std::string &path) : reader_(path)
{
}

MicroOp
TraceWorkload::next()
{
    MicroOp op;
    if (!reader_.next(op))
        fatal("trace %s: exhausted after %llu micro-ops; the replayed "
              "run consumes more (record a longer trace)",
              reader_.path().c_str(),
              static_cast<unsigned long long>(reader_.header().opCount));
    return op;
}

void
TraceWorkload::audit() const
{
    reader_.audit();
}

void
TraceWorkload::saveState(SnapWriter &w) const
{
    w.beginSection(snapName());
    w.putString(reader_.header().benchmark);
    w.putU64(reader_.opsRead());
    w.endSection();
}

void
TraceWorkload::loadState(SnapReader &r)
{
    r.openSection(snapName());
    const std::string benchmark = r.getString();
    if (benchmark != reader_.header().benchmark)
        fatal("snapshot: trace %s replays %s, snapshot was taken on %s",
              reader_.path().c_str(), reader_.header().benchmark.c_str(),
              benchmark.c_str());
    const std::uint64_t ops = r.getU64();
    r.closeSection();
    reader_.reset();
    MicroOp op;
    for (std::uint64_t i = 0; i < ops; ++i)
        if (!reader_.next(op))
            fatal("snapshot: trace %s holds %llu micro-ops but the "
                  "snapshot consumed %llu",
                  reader_.path().c_str(),
                  static_cast<unsigned long long>(
                      reader_.header().opCount),
                  static_cast<unsigned long long>(ops));
}

MicroOp
RecordingWorkload::next()
{
    const MicroOp op = inner_.next();
    writer_.append(op);
    return op;
}

void
RecordingWorkload::reset()
{
    if (writer_.opCount() > 0)
        fatal("cannot reset workload %s while recording to %s: %llu "
              "micro-ops are already on disk", inner_.name(),
              writer_.path().c_str(),
              static_cast<unsigned long long>(writer_.opCount()));
    inner_.reset();
}

} // namespace fdp
