#include "trace/trace_workload.hh"

#include "sim/logging.hh"

namespace fdp
{

TraceWorkload::TraceWorkload(const std::string &path) : reader_(path)
{
}

MicroOp
TraceWorkload::next()
{
    MicroOp op;
    if (!reader_.next(op))
        fatal("trace %s: exhausted after %llu micro-ops; the replayed "
              "run consumes more (record a longer trace)",
              reader_.path().c_str(),
              static_cast<unsigned long long>(reader_.header().opCount));
    return op;
}

void
TraceWorkload::audit() const
{
    reader_.audit();
}

MicroOp
RecordingWorkload::next()
{
    const MicroOp op = inner_.next();
    writer_.append(op);
    return op;
}

void
RecordingWorkload::reset()
{
    if (writer_.opCount() > 0)
        fatal("cannot reset workload %s while recording to %s: %llu "
              "micro-ops are already on disk", inner_.name(),
              writer_.path().c_str(),
              static_cast<unsigned long long>(writer_.opCount()));
    inner_.reset();
}

} // namespace fdp
