#include "trace/trace_reader.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"

namespace fdp
{

namespace
{

/** Streaming read buffer size; decode never needs more than
 *  kTraceMaxRecordBytes contiguous. */
constexpr std::size_t kReaderBufBytes = 64 * 1024;

} // namespace

TraceReader::TraceReader(const std::string &path)
    : path_(path), in_(path, std::ios::binary)
{
    if (!in_)
        fatal("cannot open trace file %s", path_.c_str());
    parseHeaderAndFooter();
    buf_.resize(kReaderBufBytes);
    reset();
}

void
TraceReader::parseHeaderAndFooter()
{
    in_.seekg(0, std::ios::end);
    fileBytes_ = static_cast<std::uint64_t>(in_.tellg());
    in_.seekg(0);

    // Fixed prefix: magic + version + name length.
    constexpr std::size_t kPrefixBytes = kTraceMagicLen + 4 + 2;
    std::uint8_t prefix[kPrefixBytes];
    if (fileBytes_ < kPrefixBytes ||
        !in_.read(reinterpret_cast<char *>(prefix), kPrefixBytes))
        fatal("trace %s: truncated header (%llu bytes; need at least "
              "%zu)", path_.c_str(),
              static_cast<unsigned long long>(fileBytes_), kPrefixBytes);
    if (std::memcmp(prefix, kTraceMagic, kTraceMagicLen) != 0)
        fatal("trace %s: bad magic (not an fdptrace file)", path_.c_str());
    header_.version = getU32(prefix + kTraceMagicLen);
    if (header_.version != kTraceVersion)
        fatal("trace %s: unsupported fdptrace version %u (this build "
              "reads version %u)", path_.c_str(), header_.version,
              kTraceVersion);
    const std::uint16_t nameLen = getU16(prefix + kTraceMagicLen + 4);
    if (nameLen == 0 || nameLen > kTraceMaxNameLen)
        fatal("trace %s: benchmark name length %u outside 1..%zu",
              path_.c_str(), nameLen, kTraceMaxNameLen);

    // Variable rest of the header: name + seed + opCount.
    std::vector<std::uint8_t> rest(static_cast<std::size_t>(nameLen) + 16);
    if (fileBytes_ < kPrefixBytes + rest.size() + kTraceFooterBytes ||
        !in_.read(reinterpret_cast<char *>(rest.data()),
                  static_cast<std::streamsize>(rest.size())))
        fatal("trace %s: truncated header (file has %llu bytes)",
              path_.c_str(), static_cast<unsigned long long>(fileBytes_));
    header_.benchmark.assign(rest.begin(), rest.begin() + nameLen);
    header_.seed = getU64(rest.data() + nameLen);
    header_.opCount = getU64(rest.data() + nameLen + 8);
    if (header_.opCount == 0)
        fatal("trace %s: zero micro-ops; refusing to replay an empty "
              "trace", path_.c_str());
    recordStart_ = kPrefixBytes + rest.size();

    // Footer: CRC + repeated op count + end magic.
    std::uint8_t footer[kTraceFooterBytes];
    in_.seekg(static_cast<std::streamoff>(fileBytes_ - kTraceFooterBytes));
    if (!in_.read(reinterpret_cast<char *>(footer), kTraceFooterBytes))
        fatal("trace %s: cannot read footer", path_.c_str());
    if (std::memcmp(footer + 12, kTraceEndMagic, kTraceMagicLen) != 0)
        fatal("trace %s: bad footer magic (truncated or never "
              "finish()ed)", path_.c_str());
    footerCrc_ = getU32(footer);
    const std::uint64_t footerCount = getU64(footer + 4);
    if (footerCount != header_.opCount)
        fatal("trace %s: header says %llu micro-ops but footer says "
              "%llu", path_.c_str(),
              static_cast<unsigned long long>(header_.opCount),
              static_cast<unsigned long long>(footerCount));

    recordBytes_ = fileBytes_ - recordStart_ - kTraceFooterBytes;
    if (recordBytes_ < header_.opCount ||
        recordBytes_ > header_.opCount * kTraceMaxRecordBytes)
        fatal("trace %s: record region of %llu bytes cannot hold %llu "
              "micro-ops", path_.c_str(),
              static_cast<unsigned long long>(recordBytes_),
              static_cast<unsigned long long>(header_.opCount));
}

void
TraceReader::reset()
{
    in_.clear();
    in_.seekg(static_cast<std::streamoff>(recordStart_));
    if (!in_)
        fatal("trace %s: seek to record region failed", path_.c_str());
    bufPos_ = 0;
    bufLen_ = 0;
    fetched_ = 0;
    consumed_ = 0;
    opsRead_ = 0;
    prevAddr_ = 0;
    prevPc_ = 0;
    crc_.reset();
}

void
TraceReader::refill(std::size_t want)
{
    const std::size_t avail = bufLen_ - bufPos_;
    const std::uint64_t left = recordBytes_ - fetched_;
    if (avail >= want || left == 0)
        return;
    std::copy(buf_.begin() + static_cast<std::ptrdiff_t>(bufPos_),
              buf_.begin() + static_cast<std::ptrdiff_t>(bufLen_),
              buf_.begin());
    bufLen_ = avail;
    bufPos_ = 0;
    const std::size_t take = static_cast<std::size_t>(
        std::min<std::uint64_t>(buf_.size() - bufLen_, left));
    in_.read(reinterpret_cast<char *>(buf_.data() + bufLen_),
             static_cast<std::streamsize>(take));
    if (static_cast<std::size_t>(in_.gcount()) != take)
        fatal("trace %s: read failed %llu bytes into the record region",
              path_.c_str(), static_cast<unsigned long long>(fetched_));
    // The CRC covers record bytes in file order; every byte is fetched
    // exactly once, so accumulating at fetch time matches the writer.
    crc_.update(buf_.data() + bufLen_, take);
    bufLen_ += take;
    fetched_ += take;
}

bool
TraceReader::next(MicroOp &op)
{
    if (opsRead_ == header_.opCount)
        return false;
    refill(kTraceMaxRecordBytes);
    const std::size_t before = bufPos_;
    if (!decodeRecord(buf_.data(), bufLen_, bufPos_, op, prevAddr_,
                      prevPc_))
        fatal("trace %s: corrupt or truncated record %llu",
              path_.c_str(), static_cast<unsigned long long>(opsRead_));
    consumed_ += bufPos_ - before;
    ++opsRead_;

    if (opsRead_ == header_.opCount) {
        // The whole record region must be accounted for...
        if (consumed_ != recordBytes_)
            fatal("trace %s: %llu undecoded bytes after the last record",
                  path_.c_str(),
                  static_cast<unsigned long long>(recordBytes_ -
                                                  consumed_));
        // ...and match the checksum the writer sealed it with.
        if (crc_.value() != footerCrc_)
            fatal("trace %s: record CRC mismatch (stored 0x%08x, "
                  "computed 0x%08x); the file is corrupt", path_.c_str(),
                  footerCrc_, crc_.value());
    }
    return true;
}

void
TraceReader::verifyAll()
{
    reset();
    MicroOp op;
    std::uint64_t n = 0;
    while (next(op))
        ++n;
    FDP_ASSERT(n == header_.opCount,
               "verify pass delivered %llu of %llu records",
               static_cast<unsigned long long>(n),
               static_cast<unsigned long long>(header_.opCount));
    reset();
}

void
TraceReader::audit() const
{
    FDP_ASSERT(header_.version == kTraceVersion,
               "trace %s: version %u after construction", path_.c_str(),
               header_.version);
    FDP_ASSERT(!header_.benchmark.empty() &&
               header_.benchmark.size() <= kTraceMaxNameLen,
               "trace %s: benchmark name length %zu outside 1..%zu",
               path_.c_str(), header_.benchmark.size(), kTraceMaxNameLen);
    FDP_ASSERT(header_.opCount > 0, "trace %s: zero op count",
               path_.c_str());
    FDP_ASSERT(bufPos_ <= bufLen_,
               "trace %s: buffer cursor %zu beyond fill %zu",
               path_.c_str(), bufPos_, bufLen_);
    FDP_ASSERT(bufLen_ <= buf_.size(),
               "trace %s: buffer fill %zu beyond capacity %zu",
               path_.c_str(), bufLen_, buf_.size());
    FDP_ASSERT(consumed_ <= fetched_,
               "trace %s: consumed %llu of only %llu fetched bytes",
               path_.c_str(), static_cast<unsigned long long>(consumed_),
               static_cast<unsigned long long>(fetched_));
    FDP_ASSERT(fetched_ <= recordBytes_,
               "trace %s: fetched %llu of a %llu-byte record region",
               path_.c_str(), static_cast<unsigned long long>(fetched_),
               static_cast<unsigned long long>(recordBytes_));
    FDP_ASSERT(opsRead_ <= header_.opCount,
               "trace %s: delivered %llu of %llu records", path_.c_str(),
               static_cast<unsigned long long>(opsRead_),
               static_cast<unsigned long long>(header_.opCount));
    FDP_ASSERT(recordStart_ + recordBytes_ + kTraceFooterBytes ==
               fileBytes_,
               "trace %s: region sizes disagree with the file size",
               path_.c_str());
}

} // namespace fdp
