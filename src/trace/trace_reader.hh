/**
 * @file
 * Streaming fdptrace-v1 reader. Construction validates the header and
 * footer (magic, version, name, op counts); next() then decodes records
 * through a bounded buffer, accumulating the CRC as bytes are fetched
 * and checking it against the footer the moment the last record is
 * delivered. Every malformed input -- truncation, bad magic, a future
 * version, a zero-op file, a flipped byte -- is a clean fatal() naming
 * the file, never UB or silent garbage.
 */

#ifndef FDP_TRACE_TRACE_READER_HH
#define FDP_TRACE_TRACE_READER_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "sim/check.hh"
#include "trace/trace_format.hh"
#include "workload/workload.hh"

namespace fdp
{

/** Sequential reader over one fdptrace-v1 file. */
class TraceReader : public Auditable
{
  public:
    /** Open and validate @p path; fatal on any format violation. */
    explicit TraceReader(const std::string &path);

    const TraceHeader &header() const { return header_; }
    const std::string &path() const { return path_; }
    std::uint64_t fileBytes() const { return fileBytes_; }
    std::uint64_t recordBytes() const { return recordBytes_; }

    /** Records delivered since construction or the last reset(). */
    std::uint64_t opsRead() const { return opsRead_; }

    /**
     * Decode the next micro-op into @p op. Returns false once all
     * opCount records have been delivered (at which point the CRC has
     * been verified); fatal on a corrupt record or CRC mismatch.
     */
    bool next(MicroOp &op);

    /** Rewind to the first record. */
    void reset();

    /**
     * Full-file integrity pass: decode every record and check the CRC
     * and byte accounting. Fatal on the first violation; leaves the
     * reader rewound.
     */
    void verifyAll();

    void audit() const override;
    const char *auditName() const override { return "trace-reader"; }

    friend struct AuditCorrupter;

  private:
    void parseHeaderAndFooter();
    /** Top up the buffer so >= @p want bytes (or all that remain) are
     *  contiguous at bufPos_. */
    void refill(std::size_t want);

    std::string path_;
    std::ifstream in_;
    TraceHeader header_;
    std::uint64_t fileBytes_ = 0;
    std::uint64_t recordBytes_ = 0;
    std::uint64_t recordStart_ = 0;
    std::uint32_t footerCrc_ = 0;

    std::vector<std::uint8_t> buf_;
    std::size_t bufPos_ = 0;
    std::size_t bufLen_ = 0;
    /** Record-region bytes fetched from the file so far. */
    std::uint64_t fetched_ = 0;
    /** Record-region bytes consumed by the decoder so far. */
    std::uint64_t consumed_ = 0;
    std::uint64_t opsRead_ = 0;
    Addr prevAddr_ = 0;
    Addr prevPc_ = 0;
    Crc32 crc_;
};

} // namespace fdp

#endif // FDP_TRACE_TRACE_READER_HH
