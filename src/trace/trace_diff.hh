/**
 * @file
 * Op-by-op comparison of two fdptrace-v1 traces with first-divergence
 * reporting (the `fdp_trace diff` subcommand and the per-core replay
 * tests use it). Both inputs are decoded through TraceReader, so a
 * malformed file is a clean fatal() before any comparison happens.
 */

#ifndef FDP_TRACE_TRACE_DIFF_HH
#define FDP_TRACE_TRACE_DIFF_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "workload/workload.hh"

namespace fdp
{

/** Outcome of comparing two traces op by op. */
struct TraceDiff
{
    std::string pathA;
    std::string pathB;

    /** Header metadata (benchmark name / seed) disagrees. Informative
     *  only: two identical op streams may carry different labels. */
    bool benchmarkDiffers = false;
    bool seedDiffers = false;

    std::uint64_t opCountA = 0;
    std::uint64_t opCountB = 0;

    /** Records compared before the verdict (the shorter prefix). */
    std::uint64_t opsCompared = 0;

    /** True when some compared record pair disagrees. */
    bool diverged = false;
    /** Index of the first differing record (valid when diverged). */
    std::uint64_t divergeIndex = 0;
    /** The first differing record pair (valid when diverged). */
    MicroOp opA;
    MicroOp opB;
    /** Field that differs first: "kind", "addr", "pc", or "dep". */
    std::string field;

    /** Identical op streams: same length, no diverging record. */
    bool
    identical() const
    {
        return !diverged && opCountA == opCountB;
    }
};

/**
 * Decode @p pathA and @p pathB in lockstep and report the first
 * divergence. Stops at the first differing record; a pure length
 * difference (one trace is a proper prefix of the other) reports
 * diverged == false with unequal op counts. Fatal on unreadable or
 * corrupt inputs.
 */
TraceDiff diffTraces(const std::string &pathA, const std::string &pathB);

/**
 * Print @p d human-readably to @p out: one-line verdict for identical
 * traces, otherwise the first-divergence record pair (index, fields,
 * both values) and any header/length differences.
 */
void printTraceDiff(const TraceDiff &d, std::ostream &out);

} // namespace fdp

#endif // FDP_TRACE_TRACE_DIFF_HH
