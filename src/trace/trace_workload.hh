/**
 * @file
 * The replay frontend and its recording counterpart.
 *
 * TraceWorkload satisfies the Workload contract (next/reset/name) from
 * an fdptrace-v1 file, so the core, harness, and sweep pool run
 * recorded streams with no semantic changes; RecordingWorkload tees a
 * live workload's micro-ops into a TraceWriter, so a recorded run's
 * trace holds exactly the ops the simulated core consumed and replays
 * bit-identically (the core calls next() exactly numInsts times).
 */

#ifndef FDP_TRACE_TRACE_WORKLOAD_HH
#define FDP_TRACE_TRACE_WORKLOAD_HH

#include <string>

#include "sim/check.hh"
#include "sim/snapshot.hh"
#include "trace/trace_reader.hh"
#include "trace/trace_writer.hh"
#include "workload/workload.hh"

namespace fdp
{

/** Replays a recorded trace as a Workload; fatal if the run outruns
 *  the recorded op count. */
class TraceWorkload : public Workload, public Auditable, public Snapshottable
{
  public:
    explicit TraceWorkload(const std::string &path);

    MicroOp next() override;
    void reset() override { reader_.reset(); }
    const char *name() const override
    {
        return reader_.header().benchmark.c_str();
    }

    const TraceReader &reader() const { return reader_; }

    void audit() const override;
    const char *auditName() const override { return "trace-workload"; }

    /**
     * The replay cursor is just the delivered-op count: loadState()
     * rewinds the reader and re-skips that many records (re-verifying
     * the CRC prefix as a side effect).
     */
    void saveState(SnapWriter &w) const override;
    void loadState(SnapReader &r) override;
    const char *snapName() const override { return "workload"; }

  private:
    TraceReader reader_;
};

/** Pass-through Workload that records every produced micro-op. */
class RecordingWorkload : public Workload
{
  public:
    RecordingWorkload(Workload &inner, TraceWriter &writer)
        : inner_(inner), writer_(writer)
    {
    }

    MicroOp next() override;

    /**
     * Resetting the source mid-recording would desynchronize the trace
     * from the run that produced it, so it is fatal once any op has
     * been recorded.
     */
    void reset() override;

    const char *name() const override { return inner_.name(); }

  private:
    Workload &inner_;
    TraceWriter &writer_;
};

} // namespace fdp

#endif // FDP_TRACE_TRACE_WORKLOAD_HH
