#include "trace/trace_diff.hh"

#include <iomanip>
#include <ostream>

#include "trace/trace_reader.hh"

namespace fdp
{

namespace
{

const char *
kindName(OpKind kind)
{
    switch (kind) {
      case OpKind::Int:
        return "int";
      case OpKind::Load:
        return "load";
      case OpKind::Store:
        return "store";
    }
    return "?";
}

/** Name of the first field the two records disagree on, or nullptr. */
const char *
firstDifference(const MicroOp &a, const MicroOp &b)
{
    if (a.kind != b.kind)
        return "kind";
    if (a.kind != OpKind::Int && a.addr != b.addr)
        return "addr";
    if (a.kind != OpKind::Int && a.pc != b.pc)
        return "pc";
    if (a.depPrevLoad != b.depPrevLoad)
        return "dep";
    return nullptr;
}

void
printOp(std::ostream &out, const char *label, const std::string &path,
        const MicroOp &op)
{
    out << "  " << label << ' ' << path << ": ";
    if (op.kind == OpKind::Int) {
        out << "int\n";
        return;
    }
    out << std::left << std::setw(5) << kindName(op.kind) << std::right
        << " 0x" << std::hex << std::setfill('0') << std::setw(12)
        << op.addr << "  pc 0x" << std::setw(8) << op.pc << std::dec
        << std::setfill(' ') << (op.depPrevLoad ? "  dep" : "") << '\n';
}

} // namespace

TraceDiff
diffTraces(const std::string &pathA, const std::string &pathB)
{
    TraceReader a(pathA);
    TraceReader b(pathB);

    TraceDiff d;
    d.pathA = pathA;
    d.pathB = pathB;
    d.benchmarkDiffers = a.header().benchmark != b.header().benchmark;
    d.seedDiffers = a.header().seed != b.header().seed;
    d.opCountA = a.header().opCount;
    d.opCountB = b.header().opCount;

    MicroOp opA, opB;
    while (a.next(opA)) {
        if (!b.next(opB))
            break;  // B is a proper prefix of A
        if (const char *field = firstDifference(opA, opB)) {
            d.diverged = true;
            d.divergeIndex = d.opsCompared;
            d.opA = opA;
            d.opB = opB;
            d.field = field;
            return d;
        }
        ++d.opsCompared;
    }
    return d;
}

void
printTraceDiff(const TraceDiff &d, std::ostream &out)
{
    if (d.identical()) {
        out << "traces identical: " << d.opsCompared << " micro-ops\n";
        if (d.benchmarkDiffers || d.seedDiffers)
            out << "note: header metadata differs ("
                << (d.benchmarkDiffers ? "benchmark" : "")
                << (d.benchmarkDiffers && d.seedDiffers ? ", " : "")
                << (d.seedDiffers ? "seed" : "")
                << ") but the op streams match\n";
        return;
    }

    if (d.diverged) {
        out << "traces diverge at micro-op " << d.divergeIndex
            << " (field: " << d.field << ")\n";
        printOp(out, "<", d.pathA, d.opA);
        printOp(out, ">", d.pathB, d.opB);
    } else {
        out << "traces differ in length only: common prefix of "
            << d.opsCompared << " micro-ops is identical\n";
    }
    out << "  < " << d.pathA << ": " << d.opCountA << " micro-ops\n";
    out << "  > " << d.pathB << ": " << d.opCountB << " micro-ops\n";
}

} // namespace fdp
