/**
 * @file
 * Streaming fdptrace-v1 writer: append micro-ops one at a time into a
 * bounded in-memory buffer that drains to disk, then finish() seals the
 * file (footer CRC + header op-count patch). Every I/O failure is a
 * clean fatal() naming the file, never silent truncation.
 */

#ifndef FDP_TRACE_TRACE_WRITER_HH
#define FDP_TRACE_TRACE_WRITER_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/trace_format.hh"
#include "workload/workload.hh"

namespace fdp
{

/** Buffered writer for one fdptrace-v1 file. */
class TraceWriter
{
  public:
    /**
     * Create (truncate) @p path and write the header; @p benchmark and
     * @p seed record where the stream came from. Fatal on open failure
     * or an unencodable benchmark name.
     */
    TraceWriter(const std::string &path, const std::string &benchmark,
                std::uint64_t seed);

    /** Warns (does not seal) if the trace was never finish()ed. */
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one micro-op; fatal after finish() or on write failure. */
    void append(const MicroOp &op);

    /**
     * Flush the record buffer, write the footer, and patch the header's
     * op count. Fatal on a zero-op trace (nothing to replay) and on any
     * I/O failure.
     */
    void finish();

    std::uint64_t opCount() const { return opCount_; }
    const std::string &path() const { return path_; }
    bool finished() const { return finished_; }

  private:
    void flushBuffer();

    std::string path_;
    std::ofstream out_;
    std::vector<std::uint8_t> buf_;
    Crc32 crc_;
    Addr prevAddr_ = 0;
    Addr prevPc_ = 0;
    std::uint64_t opCount_ = 0;
    /** File offset of the header's opCount field, patched by finish(). */
    std::uint64_t opCountOffset_ = 0;
    bool finished_ = false;
};

} // namespace fdp

#endif // FDP_TRACE_TRACE_WRITER_HH
