/**
 * @file
 * The `fdptrace-v1` binary micro-op trace format (DESIGN.md Section 12).
 *
 * Layout (all fixed-width scalars little-endian):
 *
 *   magic     8 bytes   "FDPTRACE"
 *   version   u32       1
 *   nameLen   u16       1..255
 *   name      nameLen   benchmark name (reports use it verbatim)
 *   seed      u64       generator seed the stream was produced from
 *   opCount   u64       number of records (patched in by the writer's
 *                       finish(), so recording streams in bounded memory)
 *   records   variable  delta/varint-encoded micro-ops (below)
 *   crc       u32       CRC-32 (IEEE) of the records region
 *   opCount   u64       repeated, cross-checked against the header
 *   endMagic  8 bytes   "FDPTREND"
 *
 * Each record is one tag byte -- bits [1:0] OpKind, bit 2 depPrevLoad,
 * bits [7:3] reserved zero -- followed, for loads and stores only, by
 * two zigzag varints: the address delta and the pc delta against the
 * previous memory op. Int ops carry no payload (their addr/pc are zero
 * by construction). Streams encode as tiny constant deltas, so typical
 * traces land near two bytes per micro-op.
 */

#ifndef FDP_TRACE_TRACE_FORMAT_HH
#define FDP_TRACE_TRACE_FORMAT_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"
#include "workload/workload.hh"

namespace fdp
{

/// @name Format constants
/// @{
inline constexpr std::size_t kTraceMagicLen = 8;
inline constexpr char kTraceMagic[kTraceMagicLen + 1] = "FDPTRACE";
inline constexpr char kTraceEndMagic[kTraceMagicLen + 1] = "FDPTREND";
inline constexpr std::uint32_t kTraceVersion = 1;
inline constexpr std::size_t kTraceMaxNameLen = 255;
/** crc (4) + repeated opCount (8) + end magic (8). */
inline constexpr std::size_t kTraceFooterBytes = 4 + 8 + kTraceMagicLen;
/** Widest possible record: tag + two 10-byte varints. */
inline constexpr std::size_t kTraceMaxRecordBytes = 1 + 2 * 10;
/// @}

/// @name Record tag bits
/// @{
inline constexpr std::uint8_t kTagKindMask = 0x03;
inline constexpr std::uint8_t kTagDepBit = 0x04;
inline constexpr std::uint8_t kTagReservedMask = 0xf8;
/// @}

/** Everything the fixed part of a trace file's header carries. */
struct TraceHeader
{
    std::uint32_t version = kTraceVersion;
    std::string benchmark;
    std::uint64_t seed = 0;
    std::uint64_t opCount = 0;

    /** On-disk size of the header encoding this benchmark name. */
    std::size_t
    headerBytes() const
    {
        return kTraceMagicLen + 4 + 2 + benchmark.size() + 8 + 8;
    }
};

/** Incremental CRC-32 (IEEE 802.3, poly 0xEDB88320). */
class Crc32
{
  public:
    void update(const std::uint8_t *data, std::size_t len);
    std::uint32_t value() const { return state_ ^ 0xffffffffu; }
    void reset() { state_ = 0xffffffffu; }

  private:
    std::uint32_t state_ = 0xffffffffu;
};

/** One-shot CRC-32 of a byte range. */
std::uint32_t crc32(const std::uint8_t *data, std::size_t len);

/// @name Little-endian scalar append helpers
/// @{
void putU16(std::vector<std::uint8_t> &out, std::uint16_t v);
void putU32(std::vector<std::uint8_t> &out, std::uint32_t v);
void putU64(std::vector<std::uint8_t> &out, std::uint64_t v);
/// @}

/// @name Little-endian scalar read helpers (caller checks bounds)
/// @{
std::uint16_t getU16(const std::uint8_t *p);
std::uint32_t getU32(const std::uint8_t *p);
std::uint64_t getU64(const std::uint8_t *p);
/// @}

/** Map a signed delta onto an unsigned varint-friendly value. */
constexpr std::uint64_t
zigzagEncode(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

/** Inverse of zigzagEncode. */
constexpr std::int64_t
zigzagDecode(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

/** Append @p v as a LEB128 varint (1..10 bytes). */
void putVarint(std::vector<std::uint8_t> &out, std::uint64_t v);

/**
 * Decode one varint from data[pos..len); advances @p pos past it.
 * Returns false (leaving @p pos unspecified) on truncation or a varint
 * longer than 10 bytes.
 */
bool getVarint(const std::uint8_t *data, std::size_t len, std::size_t &pos,
               std::uint64_t &out);

/**
 * Append one encoded micro-op record, updating the caller's previous
 * memory-op address/pc delta state.
 */
void encodeRecord(std::vector<std::uint8_t> &out, const MicroOp &op,
                  Addr &prevAddr, Addr &prevPc);

/**
 * Decode one record from data[pos..len); advances @p pos and the delta
 * state exactly as encodeRecord did. Returns false on a malformed
 * record (reserved tag bits, kind 3, truncated varint).
 */
bool decodeRecord(const std::uint8_t *data, std::size_t len,
                  std::size_t &pos, MicroOp &op, Addr &prevAddr,
                  Addr &prevPc);

} // namespace fdp

#endif // FDP_TRACE_TRACE_FORMAT_HH
