#include "trace/trace_format.hh"

#include <array>

#include "sim/check.hh"

namespace fdp
{

namespace
{

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

const std::array<std::uint32_t, 256> &
crcTable()
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    return table;
}

} // namespace

void
Crc32::update(const std::uint8_t *data, std::size_t len)
{
    const auto &table = crcTable();
    std::uint32_t c = state_;
    for (std::size_t i = 0; i < len; ++i)
        c = table[(c ^ data[i]) & 0xffu] ^ (c >> 8);
    state_ = c;
}

std::uint32_t
crc32(const std::uint8_t *data, std::size_t len)
{
    Crc32 crc;
    crc.update(data, len);
    return crc.value();
}

void
putU16(std::vector<std::uint8_t> &out, std::uint16_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int shift = 0; shift < 32; shift += 8)
        out.push_back(static_cast<std::uint8_t>(v >> shift));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int shift = 0; shift < 64; shift += 8)
        out.push_back(static_cast<std::uint8_t>(v >> shift));
}

std::uint16_t
getU16(const std::uint8_t *p)
{
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t
getU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

bool
getVarint(const std::uint8_t *data, std::size_t len, std::size_t &pos,
          std::uint64_t &out)
{
    std::uint64_t v = 0;
    for (unsigned byte = 0; byte < 10; ++byte) {
        if (pos >= len)
            return false;
        const std::uint8_t b = data[pos++];
        v |= static_cast<std::uint64_t>(b & 0x7f) << (7 * byte);
        if ((b & 0x80) == 0) {
            out = v;
            return true;
        }
    }
    return false;  // > 10 continuation bytes cannot be a u64
}

void
encodeRecord(std::vector<std::uint8_t> &out, const MicroOp &op,
             Addr &prevAddr, Addr &prevPc)
{
    std::uint8_t tag = static_cast<std::uint8_t>(op.kind) & kTagKindMask;
    if (op.depPrevLoad)
        tag |= kTagDepBit;
    out.push_back(tag);
    if (op.kind == OpKind::Int) {
        // Int ops carry no payload; the generators produce them with
        // zero addr/pc, and the replay side reconstructs exactly that.
        FDP_ASSERT(op.addr == 0 && op.pc == 0,
                   "Int micro-op with nonzero addr/pc is not encodable");
        return;
    }
    putVarint(out, zigzagEncode(static_cast<std::int64_t>(op.addr) -
                                static_cast<std::int64_t>(prevAddr)));
    putVarint(out, zigzagEncode(static_cast<std::int64_t>(op.pc) -
                                static_cast<std::int64_t>(prevPc)));
    prevAddr = op.addr;
    prevPc = op.pc;
}

bool
decodeRecord(const std::uint8_t *data, std::size_t len, std::size_t &pos,
             MicroOp &op, Addr &prevAddr, Addr &prevPc)
{
    if (pos >= len)
        return false;
    const std::uint8_t tag = data[pos++];
    if ((tag & kTagReservedMask) != 0)
        return false;
    const std::uint8_t kind = tag & kTagKindMask;
    if (kind > static_cast<std::uint8_t>(OpKind::Store))
        return false;
    op.kind = static_cast<OpKind>(kind);
    op.depPrevLoad = (tag & kTagDepBit) != 0;
    op.addr = 0;
    op.pc = 0;
    if (op.kind == OpKind::Int)
        return true;
    std::uint64_t addrDelta = 0;
    std::uint64_t pcDelta = 0;
    if (!getVarint(data, len, pos, addrDelta) ||
        !getVarint(data, len, pos, pcDelta))
        return false;
    op.addr = static_cast<Addr>(static_cast<std::int64_t>(prevAddr) +
                                zigzagDecode(addrDelta));
    op.pc = static_cast<Addr>(static_cast<std::int64_t>(prevPc) +
                              zigzagDecode(pcDelta));
    prevAddr = op.addr;
    prevPc = op.pc;
    return true;
}

} // namespace fdp
