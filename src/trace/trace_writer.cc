#include "trace/trace_writer.hh"

#include "sim/check.hh"
#include "sim/logging.hh"

namespace fdp
{

namespace
{

/** Record buffer drained to disk whenever it crosses this size. */
constexpr std::size_t kWriterBufBytes = 64 * 1024;

} // namespace

TraceWriter::TraceWriter(const std::string &path,
                         const std::string &benchmark, std::uint64_t seed)
    : path_(path), out_(path, std::ios::binary | std::ios::trunc)
{
    if (!out_)
        fatal("cannot open trace file %s for writing", path_.c_str());
    if (benchmark.empty() || benchmark.size() > kTraceMaxNameLen)
        fatal("trace %s: benchmark name must be 1..%zu bytes (got %zu)",
              path_.c_str(), kTraceMaxNameLen, benchmark.size());

    std::vector<std::uint8_t> header;
    header.insert(header.end(), kTraceMagic, kTraceMagic + kTraceMagicLen);
    putU32(header, kTraceVersion);
    putU16(header, static_cast<std::uint16_t>(benchmark.size()));
    header.insert(header.end(), benchmark.begin(), benchmark.end());
    putU64(header, seed);
    opCountOffset_ = header.size();
    putU64(header, 0);  // opCount placeholder; finish() patches it
    out_.write(reinterpret_cast<const char *>(header.data()),
               static_cast<std::streamsize>(header.size()));
    if (!out_)
        fatal("failed writing trace header to %s", path_.c_str());
    buf_.reserve(kWriterBufBytes + kTraceMaxRecordBytes);
}

TraceWriter::~TraceWriter()
{
    if (!finished_)
        warn("trace %s discarded without finish(); the file is not a "
             "valid fdptrace-v1 trace", path_.c_str());
}

void
TraceWriter::flushBuffer()
{
    if (buf_.empty())
        return;
    crc_.update(buf_.data(), buf_.size());
    out_.write(reinterpret_cast<const char *>(buf_.data()),
               static_cast<std::streamsize>(buf_.size()));
    if (!out_)
        fatal("failed writing trace records to %s (disk full?)",
              path_.c_str());
    buf_.clear();
}

void
TraceWriter::append(const MicroOp &op)
{
    FDP_ASSERT(!finished_, "append to finished trace writer");
    encodeRecord(buf_, op, prevAddr_, prevPc_);
    ++opCount_;
    if (buf_.size() >= kWriterBufBytes)
        flushBuffer();
}

void
TraceWriter::finish()
{
    FDP_ASSERT(!finished_, "trace writer finished twice");
    if (opCount_ == 0)
        fatal("refusing to finalize trace %s: zero micro-ops recorded",
              path_.c_str());
    flushBuffer();

    std::vector<std::uint8_t> footer;
    putU32(footer, crc_.value());
    putU64(footer, opCount_);
    footer.insert(footer.end(), kTraceEndMagic,
                  kTraceEndMagic + kTraceMagicLen);
    out_.write(reinterpret_cast<const char *>(footer.data()),
               static_cast<std::streamsize>(footer.size()));

    // Seal the header: the op count was unknown while streaming.
    out_.seekp(static_cast<std::streamoff>(opCountOffset_));
    std::vector<std::uint8_t> count;
    putU64(count, opCount_);
    out_.write(reinterpret_cast<const char *>(count.data()),
               static_cast<std::streamsize>(count.size()));
    out_.flush();
    if (!out_)
        fatal("failed finalizing trace %s (disk full?)", path_.c_str());
    out_.close();
    finished_ = true;
}

} // namespace fdp
