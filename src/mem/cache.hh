/**
 * @file
 * Set-associative cache with a true-LRU recency stack that supports
 * inserting fills at an arbitrary stack position (paper Section 3.3.2).
 *
 * Each tag-store entry carries the pref-bit of paper Section 3.1.1: set
 * when a prefetch fill installs the block, cleared (and reported) when a
 * demand access touches the block.
 */

#ifndef FDP_MEM_CACHE_HH
#define FDP_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/insertion.hh"
#include "sim/check.hh"
#include "sim/types.hh"

namespace fdp
{

/** Geometry and identity of one cache. */
struct CacheParams
{
    std::string name = "cache";
    std::size_t sizeBytes = 1024 * 1024;
    unsigned assoc = 16;
};

/** Result of a demand lookup. */
struct CacheAccessResult
{
    bool hit = false;
    /** Hit on a block whose pref-bit was set (bit is cleared by the hit). */
    bool hitPrefetched = false;
};

/** Information about a block evicted by an insertion. */
struct CacheVictim
{
    bool valid = false;
    BlockAddr block = 0;
    bool prefBit = false;  ///< block was prefetched and never used
    bool dirty = false;
};

/** Set-associative, true-LRU, write-back cache model (tags only). */
class SetAssocCache : public Auditable
{
  public:
    explicit SetAssocCache(const CacheParams &params);

    /**
     * Demand access: on a hit the block moves to MRU, its pref-bit is
     * cleared, and @p isWrite marks it dirty.
     */
    CacheAccessResult access(BlockAddr block, bool isWrite);

    /** State-preserving presence check. */
    bool probe(BlockAddr block) const;

    /**
     * Install @p block at stack position @p pos, evicting the LRU block
     * of the set if the set is full. @p prefBit tags prefetch fills.
     */
    CacheVictim insert(BlockAddr block, bool prefBit, InsertPos pos,
                       bool dirty);

    /** Mark @p block dirty if present (L1 writeback landing in L2). */
    bool markDirty(BlockAddr block);

    /** Remove @p block if present; returns its pre-removal state. */
    CacheVictim invalidate(BlockAddr block);

    /**
     * Recency-stack depth of @p block: 0 = LRU .. assoc-1 = MRU,
     * or -1 when absent (test/introspection helper).
     */
    int stackDepth(BlockAddr block) const;

    std::size_t numSets() const { return sets_.size(); }
    unsigned assoc() const { return params_.assoc; }
    std::size_t numBlocks() const { return numSets() * assoc(); }
    const std::string &name() const { return params_.name; }

    /** Blocks currently valid (for tests). */
    std::size_t occupancy() const;

    void clear();

    /**
     * Invariants: each set's recency stack is a permutation of its valid
     * way indices, the valid-way count matches `used`, and every valid
     * block maps to the set that holds it.
     */
    void audit() const override;
    const char *auditName() const override { return params_.name.c_str(); }

  private:
    friend struct AuditCorrupter;

    struct Way
    {
        bool valid = false;
        BlockAddr block = 0;
        bool prefBit = false;
        bool dirty = false;
    };

    struct Set
    {
        std::vector<Way> ways;
        /** stack[0] = LRU way index .. stack[assoc-1] = MRU way index. */
        std::vector<std::uint8_t> stack;
        std::uint8_t used = 0;  ///< valid ways (== stack prefix length)
    };

    std::size_t setIndex(BlockAddr block) const;
    int findWay(const Set &set, BlockAddr block) const;
    static void promoteToMru(Set &set, std::uint8_t way);

    CacheParams params_;
    std::vector<Set> sets_;
};

} // namespace fdp

#endif // FDP_MEM_CACHE_HH
