/**
 * @file
 * Set-associative cache with a true-LRU recency stack that supports
 * inserting fills at an arbitrary stack position (paper Section 3.3.2).
 *
 * Each tag-store entry carries the pref-bit of paper Section 3.1.1: set
 * when a prefetch fill installs the block, cleared (and reported) when a
 * demand access touches the block.
 *
 * Layout: all ways of all sets live in one contiguous arena allocated at
 * construction (lines_[set * assoc + way]), and each set's recency order
 * is an intrusive doubly-linked chain threaded through its lines via
 * one-byte prev/next way indices (LRU head, MRU tail). Hit promotion,
 * LRU eviction, and arbitrary-position insertion are pointer splices —
 * no std::find over a recency vector and no mid-vector erase/insert —
 * and a demand access touches only the 16-way line span it maps to.
 */

#ifndef FDP_MEM_CACHE_HH
#define FDP_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/insertion.hh"
#include "sim/check.hh"
#include "sim/snapshot.hh"
#include "sim/types.hh"

namespace fdp
{

/** Geometry and identity of one cache. */
struct CacheParams
{
    std::string name = "cache";
    std::size_t sizeBytes = 1024 * 1024;
    unsigned assoc = 16;
    /** Cores that may own lines (shared caches in a multi-core machine);
     *  the audit rejects owner tags outside this range. */
    unsigned numCores = 1;
};

/** Result of a demand lookup. */
struct CacheAccessResult
{
    bool hit = false;
    /** Hit on a block whose pref-bit was set (bit is cleared by the hit). */
    bool hitPrefetched = false;
};

/** Information about a block evicted by an insertion. */
struct CacheVictim
{
    bool valid = false;
    BlockAddr block = 0;
    bool prefBit = false;  ///< block was prefetched and never used
    bool dirty = false;
    CoreId owner;          ///< core whose fill installed the block
};

/** Set-associative, true-LRU, write-back cache model (tags only). */
class SetAssocCache : public Auditable, public Snapshottable
{
  public:
    explicit SetAssocCache(const CacheParams &params);

    /**
     * Demand access: on a hit the block moves to MRU, its pref-bit is
     * cleared, and @p isWrite marks it dirty.
     */
    CacheAccessResult access(BlockAddr block, bool isWrite);

    /** State-preserving presence check. */
    bool probe(BlockAddr block) const;

    /**
     * Install @p block at stack position @p pos, evicting the LRU block
     * of the set if the set is full. @p prefBit tags prefetch fills;
     * @p owner records the core whose fill installed the block (shared
     * caches attribute victim bookkeeping by it).
     */
    CacheVictim insert(BlockAddr block, bool prefBit, InsertPos pos,
                       bool dirty, CoreId owner = kCore0);

    /** Owner tag of @p block, which must be present (see probe()). */
    CoreId ownerOf(BlockAddr block) const;

    /** Mark @p block dirty if present (L1 writeback landing in L2). */
    bool markDirty(BlockAddr block);

    /** Remove @p block if present; returns its pre-removal state. */
    CacheVictim invalidate(BlockAddr block);

    /**
     * Recency-stack depth of @p block: 0 = LRU .. assoc-1 = MRU,
     * or -1 when absent (test/introspection helper).
     */
    int stackDepth(BlockAddr block) const;

    std::size_t numSets() const { return sets_.size(); }
    unsigned assoc() const { return params_.assoc; }
    std::size_t numBlocks() const { return numSets() * assoc(); }
    const std::string &name() const { return params_.name; }

    /** Blocks currently valid (for tests). */
    std::size_t occupancy() const;

    void clear();

    /**
     * Invariants: each set's recency chain visits exactly its valid ways
     * once with consistent prev/next links, the valid-way count matches
     * `used`, every valid block maps to the set that holds it, and every
     * valid line's owner tag names a core below the configured count.
     */
    void audit() const override;
    const char *auditName() const override { return params_.name.c_str(); }

    /**
     * Serialize the full tag store: every line's tag/flags/recency links
     * and owner, plus each set's chain endpoints. loadState() checks the
     * restoring cache has identical geometry.
     */
    void saveState(SnapWriter &w) const override;
    void loadState(SnapReader &r) override;
    const char *snapName() const override { return snapName_.c_str(); }

  private:
    friend struct AuditCorrupter;

    static constexpr std::uint8_t kNoWay = 0xFF;
    static constexpr std::uint8_t kValid = 1 << 0;
    static constexpr std::uint8_t kPref = 1 << 1;
    static constexpr std::uint8_t kDirty = 1 << 2;

    /** One way of one set, in the flat arena. */
    struct Line
    {
        BlockAddr tag = 0;
        std::uint8_t flags = 0;
        std::uint8_t prev = kNoWay;  ///< toward LRU
        std::uint8_t next = kNoWay;  ///< toward MRU
        CoreId owner;                ///< core whose fill installed it
    };

    /** Per-set chain endpoints and occupancy. */
    struct SetLinks
    {
        std::uint8_t lru = kNoWay;
        std::uint8_t mru = kNoWay;
        std::uint8_t used = 0;
    };

    std::size_t setIndex(BlockAddr block) const;
    int findWay(std::size_t base, BlockAddr block) const;
    void unlink(SetLinks &set, std::size_t base, std::uint8_t way);
    void appendMru(SetLinks &set, std::size_t base, std::uint8_t way);
    void linkAtDepth(SetLinks &set, std::size_t base, std::uint8_t way,
                     unsigned depth, unsigned chainLen);

    CacheParams params_;
    std::string snapName_;        ///< "cache/" + params_.name
    std::vector<Line> lines_;     ///< the arena: lines_[set * assoc + way]
    std::vector<SetLinks> sets_;
};

} // namespace fdp

#endif // FDP_MEM_CACHE_HH
