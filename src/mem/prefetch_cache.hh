/**
 * @file
 * Separate prefetch buffer (paper Section 5.7, Figures 11/12).
 *
 * When configured, prefetched blocks are installed here instead of in
 * the L2; a demand L2 miss probes the prefetch cache in parallel with
 * the L2 (no added latency) and, on a hit, the block moves into the L2.
 */

#ifndef FDP_MEM_PREFETCH_CACHE_HH
#define FDP_MEM_PREFETCH_CACHE_HH

#include <cstdint>
#include <memory>

#include "mem/cache.hh"
#include "sim/snapshot.hh"
#include "sim/types.hh"

namespace fdp
{

/** Prefetch-cache configuration. */
struct PrefetchCacheParams
{
    bool enabled = false;
    std::size_t sizeBytes = 32 * 1024;
    /** 0 selects fully-associative (the paper's 2KB configuration). */
    unsigned assoc = 16;
};

/** Fully-managed prefetch-only buffer. */
class PrefetchCache : public Auditable, public Snapshottable
{
  public:
    explicit PrefetchCache(const PrefetchCacheParams &params);

    /** Install a prefetched block at MRU; the LRU victim is dropped. */
    void insert(BlockAddr block);

    /** State-preserving presence check. */
    bool probe(BlockAddr block) const;

    /** Remove @p block (demand hit moved it to the L2); true if found. */
    bool extract(BlockAddr block);

    std::size_t numBlocks() const { return cache_->numBlocks(); }
    std::size_t occupancy() const { return cache_->occupancy(); }

    /** Delegates to the backing tag store's structural audit. */
    void audit() const override { cache_->audit(); }
    const char *auditName() const override { return "prefetch_cache"; }

    /** Delegates to the backing tag store's serialization. */
    void saveState(SnapWriter &w) const override { cache_->saveState(w); }
    void loadState(SnapReader &r) override { cache_->loadState(r); }
    const char *snapName() const override { return cache_->snapName(); }

  private:
    friend struct AuditCorrupter;

    std::unique_ptr<SetAssocCache> cache_;
};

} // namespace fdp

#endif // FDP_MEM_PREFETCH_CACHE_HH
