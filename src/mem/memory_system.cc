#include "mem/memory_system.hh"

#include <utility>

#include "sim/logging.hh"

namespace fdp
{


MemorySystem::MemorySystem(const MachineParams &params, EventQueue &events,
                           Prefetcher *pf, FdpController &fdp,
                           StatGroup &stats)
    : params_(params), events_(events), prefetcher_(pf), fdp_(fdp),
      l1_(params.l1), l2_(params.l2), mshrs_(params.l2Mshrs),
      dram_(makeDramBackend(params.dram, params.dramCtrl, events, stats,
                            1)),
      demandAccesses_(stats, "demand_accesses", "demand loads+stores"),
      l1Hits_(stats, "l1_hits", "L1D hits"),
      l1Misses_(stats, "l1_misses", "L1D misses"),
      l2Hits_(stats, "l2_hits", "L2 demand hits"),
      l2Misses_(stats, "l2_misses", "L2 demand misses"),
      mshrMerges_(stats, "mshr_merges", "demands merged into in-flight MSHRs"),
      mshrStalls_(stats, "mshr_stalls", "demands stalled on a full MSHR file"),
      prefIssued_(stats, "pref_issued", "prefetch candidates produced"),
      prefDropL2Hit_(stats, "pref_drop_l2hit",
                     "prefetches dropped: block already cached"),
      prefDropInFlight_(stats, "pref_drop_inflight",
                        "prefetches dropped: block already in flight"),
      prefDropQueueFull_(stats, "pref_drop_queue_full",
                         "prefetches dropped: request queue overflow"),
      pcacheHits_(stats, "pcache_hits", "demand hits in the prefetch cache"),
      writebacks_(stats, "writebacks", "dirty blocks written back to DRAM"),
      demandMissFills_(stats, "demand_miss_fills",
                       "DRAM fills that served demand misses"),
      demandMissCycles_(stats, "demand_miss_cycles",
                        "total alloc-to-fill cycles of demand-miss fills")
{
    if (params_.mshrDemandReserve >= params_.l2Mshrs)
        fatal("MSHR demand reserve must be below the MSHR capacity");
    if (params_.prefetchCache.enabled)
        pcache_ = std::make_unique<PrefetchCache>(params_.prefetchCache);
}

void
MemorySystem::demandAccess(Addr addr, Addr pc, bool isWrite, Cycle now,
                           DoneFn done)
{
    ++hot_.demandAccesses;
    const BlockAddr block = blockAddr(addr);
    const Cycle t1 = now + params_.l1Latency;

    if (l1_.access(block, isWrite).hit) {
        ++hot_.l1Hits;
        done(t1);
        return;
    }
    ++hot_.l1Misses;

    const Cycle t2 = t1 + params_.l2Latency;
    const CacheAccessResult l2res = l2_.access(block, false);
    PrefetchObservation obs{addr, block, pc, !l2res.hit};

    if (l2res.hit) {
        ++hot_.l2Hits;
        if (l2res.hitPrefetched)
            fdp_.onPrefetchUsedInCache();
        fillL1(block, isWrite, t2);
        done(t2);
        observeAndIssue(obs, t2);
        return;
    }

    // Probed in parallel with the L2, so a prefetch-cache hit costs the
    // same latency as an L2 hit (paper Section 5.7).
    if (pcache_ && pcache_->extract(block)) {
        ++hot_.pcacheHits;
        fdp_.onPrefetchUsedInCache();
        insertL2Fill(block, false, false, t2);
        fillL1(block, isWrite, t2);
        done(t2);
        obs.miss = false;  // serviced without going to memory
        observeAndIssue(obs, t2);
        return;
    }

    ++hot_.l2Misses;
    fdp_.onDemandMiss(block);
    observeAndIssue(obs, t2);

    if (MshrEntry *e = mshrs_.find(block)) {
        ++hot_.mshrMerges;
        if (e->prefBit) {
            // Late prefetch: a demand wants data that a prefetch is
            // still fetching (paper Section 3.1.2).
            fdp_.onLatePrefetchMshrHit();
            e->prefBit = false;
            dram_->promoteToDemand(block);
        }
        if (isWrite)
            e->writeIntent = true;
        e->waiters.push_back(std::move(done));
        return;
    }

    if (mshrs_.full()) {
        ++hot_.mshrStalls;
        mshrWaitQ_.push_back({block, isWrite, std::move(done), t2});
        return;
    }
    startDemandMiss(block, isWrite, t2, std::move(done));
}

void
MemorySystem::startDemandMiss(BlockAddr block, bool isWrite, Cycle now,
                              DoneFn done)
{
    MshrEntry &e = mshrs_.allocate(block, false, now);
    e.writeIntent = isWrite;
    e.waiters.push_back(std::move(done));
    dram_->enqueue(block, BusPriority::Demand, now,
                  [this, block](Cycle c) { onFill(block, c); });
}

void
MemorySystem::observeAndIssue(const PrefetchObservation &obs, Cycle now)
{
    if (!prefetcher_)
        return;
    updateBusUtil(now);
    PrefetchObservation seen = obs;
    seen.busUtil = busUtil_;
    pfCandidates_.clear();
    const std::size_t budget =
        params_.prefetchQueueCap - prefetchQueue_.size();
    prefetcher_->observe(seen, pfCandidates_, budget);

    for (const BlockAddr b : pfCandidates_) {
        ++hot_.prefIssued;
        if (prefetchQueue_.size() >= params_.prefetchQueueCap) {
            ++hot_.prefDropQueueFull;
            continue;
        }
        prefetchQueue_.push_back(b);
    }
    drainPrefetchQueue(now);
}

void
MemorySystem::updateBusUtil(Cycle now)
{
    if (now < busWindowStart_ + kBusUtilWindow)
        return;
    const std::uint64_t busy = dram_->busBusyCycles();
    if (busy < busWindowBusy_) {
        // The bus-busy statistic was reset (measurement boundary):
        // re-prime the window and keep the last published value.
        busWindowStart_ = now;
        busWindowBusy_ = busy;
        return;
    }
    busUtil_ = static_cast<double>(busy - busWindowBusy_) /
               (static_cast<double>(now - busWindowStart_) *
                static_cast<double>(dram_->dataBuses()));
    if (busUtil_ > 1.0)
        busUtil_ = 1.0;
    busWindowStart_ = now;
    busWindowBusy_ = busy;
}

void
MemorySystem::drainPrefetchQueue(Cycle now)
{
    while (!prefetchQueue_.empty()) {
        const BlockAddr b = prefetchQueue_.front();
        if (l2_.probe(b) || (pcache_ && pcache_->probe(b))) {
            ++hot_.prefDropL2Hit;
            prefetchQueue_.pop_front();
            continue;
        }
        if (mshrs_.find(b)) {
            ++hot_.prefDropInFlight;
            prefetchQueue_.pop_front();
            continue;
        }
        // Prefetches may not take the MSHRs reserved for demands; when
        // none is available the queue simply waits for a deallocation.
        if (mshrs_.size() + params_.mshrDemandReserve >= mshrs_.capacity())
            return;
        mshrs_.allocate(b, true, now);
        const bool sent =
            dram_->enqueue(b, BusPriority::Prefetch, now,
                          [this, b](Cycle c) { onFill(b, c); },
                          kCore0, fdp_.accuracyTier());
        if (!sent) {
            // Bus queue full: keep the candidate queued for later.
            mshrs_.deallocate(b);
            return;
        }
        prefetchQueue_.pop_front();
        fdp_.onPrefetchSent();
    }
}

void
MemorySystem::onFill(BlockAddr block, Cycle fillCycle)
{
    MshrEntry *e = mshrs_.find(block);
    if (!e)
        panic("fill for block with no MSHR entry");

    const bool was_prefetch = e->prefBit;
    const bool write_intent = e->writeIntent;
    // Swap rather than move the waiters out: the entry slot inherits the
    // scratch vector's (empty) warm storage and the scratch vector keeps
    // its capacity across fills, so neither side reallocates in steady
    // state.
    fillWaiters_.clear();
    fillWaiters_.swap(e->waiters);
    if (!was_prefetch) {
        ++hot_.demandMissFills;
        hot_.demandMissCycles += fillCycle - e->allocCycle;
    }
    mshrs_.deallocate(block);

    if (was_prefetch) {
        if (pcache_) {
            pcache_->insert(block);
        } else {
            fdp_.onPrefetchFill(block);
            insertL2Fill(block, true, false, fillCycle);
        }
    } else {
        insertL2Fill(block, false, false, fillCycle);
        fillL1(block, write_intent, fillCycle);
    }

    for (auto &w : fillWaiters_)
        w(fillCycle);
    admitPending(fillCycle);
    drainPrefetchQueue(fillCycle);
}

void
MemorySystem::insertL2Fill(BlockAddr block, bool prefBit, bool dirty,
                           Cycle now)
{
    const InsertPos pos = prefBit ? fdp_.insertPos() : InsertPos::Mru;
    const CacheVictim v = l2_.insert(block, prefBit, pos, dirty);
    if (!v.valid)
        return;
    fdp_.onCacheEviction();
    if (prefBit && !v.prefBit)
        fdp_.onDemandBlockEvictedByPrefetch(v.block);
    if (v.dirty && params_.modelWritebacks) {
        ++hot_.writebacks;
        dram_->enqueue(v.block, BusPriority::Writeback, now, nullptr);
    }
}

void
MemorySystem::fillL1(BlockAddr block, bool isWrite, Cycle now)
{
    if (l1_.probe(block)) {
        if (isWrite)
            l1_.markDirty(block);
        return;
    }
    const CacheVictim v = l1_.insert(block, false, InsertPos::Mru, isWrite);
    if (v.valid && v.dirty) {
        // Dirty L1 victims land in the L2 when present there; otherwise
        // they must go all the way to memory.
        if (!l2_.markDirty(v.block) && params_.modelWritebacks) {
            ++hot_.writebacks;
            dram_->enqueue(v.block, BusPriority::Writeback, now, nullptr);
        }
    }
}

void
MemorySystem::admitPending(Cycle now)
{
    while (!mshrWaitQ_.empty() && !mshrs_.full()) {
        PendingDemand p = std::move(mshrWaitQ_.front());
        mshrWaitQ_.pop_front();
        // A prefetch issued while this demand waited may have brought
        // the block in already; it is a hit now.
        if (l2_.probe(p.block) || (pcache_ && pcache_->probe(p.block))) {
            if (pcache_ && pcache_->extract(p.block)) {
                ++hot_.pcacheHits;
                fdp_.onPrefetchUsedInCache();
                insertL2Fill(p.block, false, false, now);
            }
            fillL1(p.block, p.isWrite, now);
            p.done(now);
            continue;
        }
        if (MshrEntry *e = mshrs_.find(p.block)) {
            ++hot_.mshrMerges;
            if (e->prefBit) {
                fdp_.onLatePrefetchMshrHit();
                e->prefBit = false;
                dram_->promoteToDemand(p.block);
            }
            if (p.isWrite)
                e->writeIntent = true;
            e->waiters.push_back(std::move(p.done));
            continue;
        }
        startDemandMiss(p.block, p.isWrite, now, std::move(p.done));
    }
}

double
MemorySystem::avgDemandMissLatency() const
{
    return ratio(static_cast<double>(demandMissCycles_.value() +
                                     hot_.demandMissCycles),
                 static_cast<double>(demandMissFills_.value() +
                                     hot_.demandMissFills));
}

void
MemorySystem::audit() const
{
    FDP_ASSERT(prefetchQueue_.size() <= params_.prefetchQueueCap,
               "%s: prefetch request queue holds %zu of %zu entries",
               auditName(), prefetchQueue_.size(),
               params_.prefetchQueueCap);
    FDP_ASSERT(params_.mshrDemandReserve < mshrs_.capacity(),
               "%s: demand reserve %zu swallows all %zu MSHRs",
               auditName(), params_.mshrDemandReserve, mshrs_.capacity());
    FDP_ASSERT(busUtil_ >= 0.0 && busUtil_ <= 1.0,
               "%s: bus utilization %f outside [0, 1]", auditName(),
               busUtil_);
    l1_.audit();
    l2_.audit();
    mshrs_.audit();
    dram_->audit();
    if (pcache_)
        pcache_->audit();
}

bool
MemorySystem::quiesced() const
{
    return mshrs_.size() == 0 && mshrWaitQ_.empty() &&
           prefetchQueue_.empty() && dram_->queued() == 0;
}

void
MemorySystem::flushStats()
{
    demandAccesses_ += hot_.demandAccesses;
    l1Hits_ += hot_.l1Hits;
    l1Misses_ += hot_.l1Misses;
    l2Hits_ += hot_.l2Hits;
    l2Misses_ += hot_.l2Misses;
    mshrMerges_ += hot_.mshrMerges;
    mshrStalls_ += hot_.mshrStalls;
    prefIssued_ += hot_.prefIssued;
    prefDropL2Hit_ += hot_.prefDropL2Hit;
    prefDropInFlight_ += hot_.prefDropInFlight;
    prefDropQueueFull_ += hot_.prefDropQueueFull;
    pcacheHits_ += hot_.pcacheHits;
    writebacks_ += hot_.writebacks;
    demandMissFills_ += hot_.demandMissFills;
    demandMissCycles_ += hot_.demandMissCycles;
    hot_ = HotCounters{};
}

void
MemorySystem::saveState(SnapWriter &w) const
{
    FDP_ASSERT(quiesced(),
               "%s: snapshot with work in flight (%zu MSHRs, %zu stalled "
               "demands, %zu queued prefetches, %zu bus requests)",
               auditName(), mshrs_.size(), mshrWaitQ_.size(),
               prefetchQueue_.size(), dram_->queued());
    // The stat group is serialized alongside this section; unflushed
    // batched counts would silently vanish from the snapshot.
    FDP_ASSERT(hot_.demandAccesses == 0 && hot_.demandMissCycles == 0,
               "%s: snapshot with unflushed batched statistics (call "
               "flushStats() first)", auditName());
    w.beginSection(snapName());
    w.putBool(pcache_ != nullptr);
    w.putDouble(busUtil_);
    w.putU64(busWindowStart_);
    w.putU64(busWindowBusy_);
    w.endSection();
    l1_.saveState(w);
    l2_.saveState(w);
    mshrs_.saveState(w);
    dram_->saveState(w);
    if (pcache_)
        pcache_->saveState(w);
}

void
MemorySystem::loadState(SnapReader &r)
{
    FDP_ASSERT(quiesced(),
               "%s: restore with work in flight", auditName());
    r.openSection(snapName());
    const bool has_pcache = r.getBool();
    busUtil_ = r.getDouble();
    busWindowStart_ = r.getU64();
    busWindowBusy_ = r.getU64();
    r.closeSection();
    if (has_pcache != (pcache_ != nullptr))
        fatal("snapshot: prefetch cache is %s, snapshot has it %s",
              pcache_ ? "enabled" : "disabled",
              has_pcache ? "enabled" : "disabled");
    l1_.loadState(r);
    l2_.loadState(r);
    mshrs_.loadState(r);
    dram_->loadState(r);
    if (pcache_)
        pcache_->loadState(r);
}

} // namespace fdp
