/**
 * @file
 * The demand-side interface a core uses to reach its memory hierarchy.
 *
 * OooCore issues loads and stores through this port, so the same core
 * model runs against the single-core MemorySystem and against one
 * per-core port of the shared multi-core hierarchy (src/mc/) without
 * knowing which it is attached to.
 */

#ifndef FDP_MEM_MEMORY_PORT_HH
#define FDP_MEM_MEMORY_PORT_HH

#include "sim/inline_function.hh"
#include "sim/types.hh"

namespace fdp
{

/** Abstract demand-access endpoint for one core. */
class MemoryPort
{
  public:
    virtual ~MemoryPort() = default;

    /**
     * Demand load/store at cycle @p now. @p done fires with the cycle
     * the data is available (loads); stores invoke it too but the core
     * does not wait on them.
     */
    virtual void demandAccess(Addr addr, Addr pc, bool isWrite, Cycle now,
                              DoneFn done) = 0;
};

} // namespace fdp

#endif // FDP_MEM_MEMORY_PORT_HH
