#include "mem/prefetch_cache.hh"

namespace fdp
{

PrefetchCache::PrefetchCache(const PrefetchCacheParams &params)
{
    CacheParams cp;
    cp.name = "prefetch_cache";
    cp.sizeBytes = params.sizeBytes;
    cp.assoc = params.assoc == 0
                   ? static_cast<unsigned>(params.sizeBytes / kBlockBytes)
                   : params.assoc;
    cache_ = std::make_unique<SetAssocCache>(cp);
}

void
PrefetchCache::insert(BlockAddr block)
{
    if (cache_->probe(block))
        return;
    cache_->insert(block, true, InsertPos::Mru, false);
}

bool
PrefetchCache::probe(BlockAddr block) const
{
    return cache_->probe(block);
}

bool
PrefetchCache::extract(BlockAddr block)
{
    return cache_->invalidate(block).valid;
}

} // namespace fdp
