#include "mem/dram.hh"

#include <algorithm>

#include "dram/dram_controller.hh"
#include "sim/logging.hh"

namespace fdp
{

std::unique_ptr<DramBackend>
makeDramBackend(const DramParams &params, const DramCtrlParams &ctrl,
                EventQueue &events, StatGroup &stats, unsigned numCores)
{
    if (ctrl.kind == DramKind::Controller)
        return std::make_unique<DramController>(params, ctrl, events,
                                                stats, numCores);
    return std::make_unique<DramModel>(params, events, stats, numCores);
}

DramModel::DramModel(const DramParams &params, EventQueue &events,
                     StatGroup &stats, unsigned numCores)
    : params_(params), events_(events),
      transferCycles_(params.transferCycles()),
      bankReady_(params.banks, 0),
      openRow_(params.banks, ~std::uint64_t{0}),
      coreBusAccesses_(numCores, 0),
      busAccesses_(stats, "bus_accesses", "blocks transferred on the bus"),
      demandGrants_(stats, "demand_grants", "demand bus grants"),
      prefetchGrants_(stats, "prefetch_grants", "prefetch bus grants"),
      writebackGrants_(stats, "writeback_grants", "writeback bus grants"),
      rowHits_(stats, "row_hits", "row-buffer hits"),
      rowConflicts_(stats, "row_conflicts", "row-buffer conflicts"),
      busBusyCycles_(stats, "bus_busy_cycles", "cycles the data bus was busy"),
      promotions_(stats, "promotions", "prefetches promoted to demand")
{
    if (params_.banks == 0 || params_.rowBlocks == 0)
        fatal("DRAM needs nonzero banks and row size");
    if (numCores == 0)
        fatal("DRAM needs at least one requesting core");
}

bool
DramModel::enqueue(BlockAddr block, BusPriority prio, Cycle now, DoneFn done,
                   CoreId core, PrefetchTier /*tier*/)
{
    switch (prio) {
      case BusPriority::Demand:
        if (demandQ_.size() >= params_.queueCapacity)
            panic("demand bus queue overflow (MSHRs should bound it)");
        demandQ_.push_back({block, prio, now, core, std::move(done)});
        break;
      case BusPriority::Prefetch:
        if (prefQ_.size() >= params_.queueCapacity)
            return false;
        prefQ_.push_back({block, prio, now, core, std::move(done)});
        break;
      case BusPriority::Writeback:
        wbQ_.push_back({block, prio, now, core, std::move(done)});
        break;
    }
    schedulePump(now);
    return true;
}

std::uint64_t
DramModel::busAccessesByCore(CoreId core) const
{
    FDP_ASSERT(core.index() < coreBusAccesses_.size(),
               "%s: core %u of %zu asked for its bus accesses",
               auditName(), core.index(), coreBusAccesses_.size());
    return coreBusAccesses_[core.index()];
}

void
DramModel::promoteToDemand(BlockAddr block)
{
    auto it = std::find_if(prefQ_.begin(), prefQ_.end(),
                           [block](const Request &r) {
                               return r.block == block;
                           });
    if (it == prefQ_.end())
        return;  // already granted the bus; nothing to expedite
    Request req = std::move(*it);
    prefQ_.erase(it);
    req.prio = BusPriority::Demand;
    demandQ_.push_back(std::move(req));
    ++promotions_;
}

std::size_t
DramModel::queued() const
{
    return demandQ_.size() + prefQ_.size() + wbQ_.size();
}

void
DramModel::schedulePump(Cycle now)
{
    if (pumpScheduled_)
        return;
    pumpScheduled_ = true;
    events_.schedule(std::max(now, busFree_), [this] { pump(); });
}

bool
DramModel::popNext(Request &out)
{
    // Demand first; writebacks pre-empt prefetches only when their
    // backlog is high enough to threaten unbounded growth.
    std::deque<Request> *q = nullptr;
    if (!demandQ_.empty())
        q = &demandQ_;
    else if (wbQ_.size() > params_.writebackHighWater)
        q = &wbQ_;
    else if (!prefQ_.empty())
        q = &prefQ_;
    else if (!wbQ_.empty())
        q = &wbQ_;
    else
        return false;
    out = std::move(q->front());
    q->pop_front();
    return true;
}

void
DramModel::pump()
{
    pumpScheduled_ = false;
    Request req;
    if (!popNext(req))
        return;

    const Cycle now = events_.horizon();
    const std::uint64_t global_row = req.block / params_.rowBlocks;
    const unsigned bank =
        static_cast<unsigned>(global_row % params_.banks);
    const std::uint64_t row = global_row / params_.banks;

    const bool row_hit = openRow_[bank] == row;
    const Cycle access =
        row_hit ? params_.accessRowHit : params_.accessRowConflict;

    // The access phase is latency, counted from when the bank can accept
    // the command; open-row accesses pipeline at the CAS-to-CAS cadence
    // (their latency overlaps earlier operations), while a row conflict
    // (precharge + activate) occupies the bank until its transfer ends.
    // The data transfer itself serializes on the shared bus.
    const Cycle access_start = std::max(req.enqueueCycle, bankReady_[bank]);
    const Cycle data_start =
        std::max({access_start + access, busFree_, now});
    const Cycle data_end = data_start + transferCycles_;

    busFree_ = data_end;
    bankReady_[bank] =
        row_hit ? access_start + params_.casToCASCycles : data_end;
    openRow_[bank] = row;

    ++busAccesses_;
    ++coreBusAccesses_[req.core.index()];
    busBusyCycles_ += transferCycles_;
    if (row_hit)
        ++rowHits_;
    else
        ++rowConflicts_;
    switch (req.prio) {
      case BusPriority::Demand: ++demandGrants_; break;
      case BusPriority::Prefetch: ++prefetchGrants_; break;
      case BusPriority::Writeback: ++writebackGrants_; break;
    }

    if (req.done) {
        const Cycle fill = data_end + params_.returnCycles;
        events_.schedule(fill, [fn = std::move(req.done),
                                fill]() mutable { fn(fill); });
    }

    if (queued() > 0)
        schedulePump(busFree_);
}

void
DramModel::saveState(SnapWriter &w) const
{
    FDP_ASSERT(queued() == 0,
               "%s: snapshot with %zu requests queued (not quiesced)",
               auditName(), queued());
    FDP_ASSERT(!pumpScheduled_,
               "%s: snapshot with a pump event pending", auditName());
    w.beginSection(snapName());
    w.putU32(params_.banks);
    for (const Cycle ready : bankReady_)
        w.putU64(ready);
    for (const std::uint64_t row : openRow_)
        w.putU64(row);
    w.putU32(static_cast<std::uint32_t>(coreBusAccesses_.size()));
    for (const std::uint64_t n : coreBusAccesses_)
        w.putU64(n);
    w.putU64(busFree_);
    w.endSection();
}

void
DramModel::loadState(SnapReader &r)
{
    FDP_ASSERT(queued() == 0,
               "%s: restore with %zu requests queued", auditName(),
               queued());
    FDP_ASSERT(!pumpScheduled_,
               "%s: restore with a pump event pending", auditName());
    r.openSection(snapName());
    const std::uint32_t banks = r.getU32();
    if (banks != params_.banks)
        fatal("snapshot: DRAM has %u banks, snapshot has %u",
              params_.banks, banks);
    for (Cycle &ready : bankReady_)
        ready = r.getU64();
    for (std::uint64_t &row : openRow_)
        row = r.getU64();
    const std::uint32_t cores = r.getU32();
    if (cores != coreBusAccesses_.size())
        fatal("snapshot: DRAM serves %zu cores, snapshot has %u",
              coreBusAccesses_.size(), cores);
    for (std::uint64_t &n : coreBusAccesses_)
        n = r.getU64();
    busFree_ = r.getU64();
    r.closeSection();
}

void
DramModel::resetAttribution()
{
    for (std::uint64_t &n : coreBusAccesses_)
        n = 0;
}

void
DramModel::auditQueue(const std::deque<Request> &q, BusPriority prio,
                      const char *label) const
{
    for (const Request &r : q) {
        FDP_ASSERT(r.prio == prio,
                   "%s: %s bus queue holds a request with priority %u",
                   auditName(), label, static_cast<unsigned>(r.prio));
        FDP_ASSERT(r.core.index() < coreBusAccesses_.size(),
                   "%s: queued %s request for block %llu tagged with core "
                   "%u of %zu",
                   auditName(), label,
                   static_cast<unsigned long long>(r.block),
                   r.core.index(), coreBusAccesses_.size());
        if (prio == BusPriority::Writeback)
            FDP_ASSERT(!r.done,
                       "%s: queued writeback for block %llu has a "
                       "completion callback",
                       auditName(),
                       static_cast<unsigned long long>(r.block));
        else
            FDP_ASSERT(static_cast<bool>(r.done),
                       "%s: queued %s request for block %llu has no "
                       "completion callback",
                       auditName(), label,
                       static_cast<unsigned long long>(r.block));
    }
}

void
DramModel::audit() const
{
    FDP_ASSERT(demandQ_.size() <= params_.queueCapacity,
               "%s: demand bus queue holds %zu of %zu entries",
               auditName(), demandQ_.size(), params_.queueCapacity);
    FDP_ASSERT(prefQ_.size() <= params_.queueCapacity,
               "%s: prefetch bus queue holds %zu of %zu entries",
               auditName(), prefQ_.size(), params_.queueCapacity);
    FDP_ASSERT(bankReady_.size() == params_.banks &&
                   openRow_.size() == params_.banks,
               "%s: bank state sized %zu/%zu for %u banks", auditName(),
               bankReady_.size(), openRow_.size(), params_.banks);
    // Between event dispatches, queued work always has a pump pending:
    // enqueue() schedules one and pump() re-schedules while work remains.
    FDP_ASSERT(queued() == 0 || pumpScheduled_,
               "%s: %zu queued requests but no pump scheduled",
               auditName(), queued());
    std::uint64_t per_core_sum = 0;
    for (const std::uint64_t n : coreBusAccesses_)
        per_core_sum += n;
    FDP_ASSERT(per_core_sum == busAccesses_.value(),
               "%s: per-core bus accesses sum to %llu but the shared "
               "total is %llu",
               auditName(), static_cast<unsigned long long>(per_core_sum),
               static_cast<unsigned long long>(busAccesses_.value()));
    auditQueue(demandQ_, BusPriority::Demand, "demand");
    auditQueue(prefQ_, BusPriority::Prefetch, "prefetch");
    auditQueue(wbQ_, BusPriority::Writeback, "writeback");
}

} // namespace fdp
