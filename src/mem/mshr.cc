#include "mem/mshr.hh"

#include "sim/logging.hh"

namespace fdp
{

MshrFile::MshrFile(std::size_t capacity, unsigned numCores)
    : capacity_(capacity), numCores_(numCores)
{
    if (numCores_ == 0)
        fatal("MSHR file needs at least one core");
    slots_.resize(capacity_);
    freeSlots_.reserve(capacity_);
    for (std::size_t s = capacity_; s > 0; --s)
        freeSlots_.push_back(static_cast<std::uint32_t>(s - 1));

    // Keep the index at most half full so probe chains stay short.
    std::size_t buckets = 8;
    while (buckets < 2 * capacity_)
        buckets *= 2;
    index_.resize(buckets);
    indexMask_ = buckets - 1;
}

std::size_t
MshrFile::homeBucket(BlockAddr block) const
{
    // Fibonacci hashing: multiply spreads the low-entropy block-address
    // bits, the mask keeps the table a power of two.
    return static_cast<std::size_t>(
               (block * 0x9E3779B97F4A7C15ull) >> 32) & indexMask_;
}

std::size_t
MshrFile::probe(BlockAddr block) const
{
    std::size_t i = homeBucket(block);
    while (index_[i].slot != kNoSlot && index_[i].block != block)
        i = (i + 1) & indexMask_;
    return i;
}

MshrEntry *
MshrFile::find(BlockAddr block)
{
    const std::size_t i = probe(block);
    return index_[i].slot == kNoSlot ? nullptr : &slots_[index_[i].slot];
}

MshrEntry &
MshrFile::allocate(BlockAddr block, bool prefBit, Cycle now, CoreId core)
{
    if (full())
        panic("MSHR allocate while full (capacity %zu)", capacity_);
    const std::size_t i = probe(block);
    if (index_[i].slot != kNoSlot)
        panic("MSHR allocate for block already in flight");

    const std::uint32_t slot = freeSlots_.back();
    freeSlots_.pop_back();
    index_[i] = Bucket{block, slot};

    MshrEntry &e = slots_[slot];
    e.block = block;
    e.prefBit = prefBit;
    e.writeIntent = false;
    e.allocCycle = now;
    e.core = core;
    e.waiters.clear();
    return e;
}

void
MshrFile::deallocate(BlockAddr block)
{
    std::size_t i = probe(block);
    if (index_[i].slot == kNoSlot)
        panic("MSHR deallocate for absent block");

    MshrEntry &e = slots_[index_[i].slot];
    e.waiters.clear();  // recycle the storage with the slot
    freeSlots_.push_back(index_[i].slot);

    // Backward-shift deletion: pull every displaced successor in the
    // probe chain into the hole so lookups never need tombstones.
    std::size_t j = i;
    for (;;) {
        j = (j + 1) & indexMask_;
        if (index_[j].slot == kNoSlot)
            break;
        const std::size_t home = homeBucket(index_[j].block);
        const bool movable = j > i ? (home <= i || home > j)
                                   : (home <= i && home > j);
        if (movable) {
            index_[i] = index_[j];
            i = j;
        }
    }
    index_[i] = Bucket{};
}

void
MshrFile::clear()
{
    for (Bucket &b : index_)
        b = Bucket{};
    freeSlots_.clear();
    for (std::size_t s = capacity_; s > 0; --s)
        freeSlots_.push_back(static_cast<std::uint32_t>(s - 1));
    for (MshrEntry &e : slots_)
        e.waiters.clear();
}

void
MshrFile::saveState(SnapWriter &w) const
{
    FDP_ASSERT(size() == 0,
               "%s: snapshot with %zu misses in flight (not quiesced)",
               auditName(), size());
    w.beginSection(snapName());
    w.putU32(static_cast<std::uint32_t>(capacity_));
    w.endSection();
}

void
MshrFile::loadState(SnapReader &r)
{
    FDP_ASSERT(size() == 0,
               "%s: restore into a file with %zu misses in flight",
               auditName(), size());
    r.openSection(snapName());
    const std::uint32_t capacity = r.getU32();
    if (capacity != capacity_)
        fatal("snapshot: MSHR capacity is %zu, snapshot has %u", capacity_,
              capacity);
    r.closeSection();
}

void
MshrFile::audit() const
{
    FDP_ASSERT(size() <= capacity_,
               "%s: %zu entries exceed capacity %zu", auditName(),
               size(), capacity_);
    FDP_ASSERT(freeSlots_.size() <= capacity_,
               "%s: freelist holds %zu of %zu slots", auditName(),
               freeSlots_.size(), capacity_);

    std::vector<bool> live(capacity_, false);
    std::size_t occupied = 0;
    for (std::size_t i = 0; i < index_.size(); ++i) {
        const Bucket &b = index_[i];
        if (b.slot == kNoSlot)
            continue;
        ++occupied;
        FDP_ASSERT(b.slot < capacity_,
                   "%s: index names slot %u of %zu", auditName(), b.slot,
                   capacity_);
        FDP_ASSERT(!live[b.slot],
                   "%s: two index records share slot %u", auditName(),
                   b.slot);
        live[b.slot] = true;

        // The probe chain from the record's home bucket must reach it
        // without crossing an empty bucket, or lookups would miss it.
        for (std::size_t p = homeBucket(b.block); p != i;
             p = (p + 1) & indexMask_)
            FDP_ASSERT(index_[p].slot != kNoSlot,
                       "%s: probe chain for block %llu broken at bucket "
                       "%zu",
                       auditName(),
                       static_cast<unsigned long long>(b.block), p);

        const MshrEntry &e = slots_[b.slot];
        FDP_ASSERT(e.core.index() < numCores_,
                   "%s: entry for block %llu tagged with core %u of %u",
                   auditName(), static_cast<unsigned long long>(b.block),
                   e.core.index(), numCores_);
        FDP_ASSERT(e.block == b.block,
                   "%s: entry keyed by block %llu records block %llu",
                   auditName(), static_cast<unsigned long long>(b.block),
                   static_cast<unsigned long long>(e.block));
        if (e.prefBit) {
            FDP_ASSERT(e.waiters.empty(),
                       "%s: prefetch entry for block %llu has %zu demand "
                       "waiters",
                       auditName(),
                       static_cast<unsigned long long>(b.block),
                       e.waiters.size());
            FDP_ASSERT(!e.writeIntent,
                       "%s: prefetch entry for block %llu has write "
                       "intent",
                       auditName(),
                       static_cast<unsigned long long>(b.block));
        }
    }
    FDP_ASSERT(occupied == size(),
               "%s: index holds %zu records for %zu entries", auditName(),
               occupied, size());
    for (const std::uint32_t slot : freeSlots_) {
        FDP_ASSERT(slot < capacity_,
                   "%s: freelist names slot %u of %zu", auditName(), slot,
                   capacity_);
        FDP_ASSERT(!live[slot],
                   "%s: slot %u is both indexed and free", auditName(),
                   slot);
        live[slot] = true;
    }
}

} // namespace fdp
