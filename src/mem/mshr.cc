#include "mem/mshr.hh"

#include "sim/logging.hh"

namespace fdp
{

MshrEntry *
MshrFile::find(BlockAddr block)
{
    auto it = entries_.find(block);
    return it == entries_.end() ? nullptr : &it->second;
}

MshrEntry &
MshrFile::allocate(BlockAddr block, bool prefBit, Cycle now)
{
    if (full())
        panic("MSHR allocate while full (capacity %zu)", capacity_);
    auto [it, inserted] = entries_.try_emplace(block);
    if (!inserted)
        panic("MSHR allocate for block already in flight");
    MshrEntry &e = it->second;
    e.block = block;
    e.prefBit = prefBit;
    e.allocCycle = now;
    return e;
}

void
MshrFile::deallocate(BlockAddr block)
{
    if (entries_.erase(block) != 1)
        panic("MSHR deallocate for absent block");
}

void
MshrFile::audit() const
{
    FDP_ASSERT(entries_.size() <= capacity_,
               "%s: %zu entries exceed capacity %zu", auditName(),
               entries_.size(), capacity_);
    for (const auto &[block, e] : entries_) {
        FDP_ASSERT(e.block == block,
                   "%s: entry keyed by block %llu records block %llu",
                   auditName(), static_cast<unsigned long long>(block),
                   static_cast<unsigned long long>(e.block));
        if (e.prefBit) {
            FDP_ASSERT(e.waiters.empty(),
                       "%s: prefetch entry for block %llu has %zu demand "
                       "waiters",
                       auditName(),
                       static_cast<unsigned long long>(block),
                       e.waiters.size());
            FDP_ASSERT(!e.writeIntent,
                       "%s: prefetch entry for block %llu has write "
                       "intent",
                       auditName(),
                       static_cast<unsigned long long>(block));
        }
    }
}

} // namespace fdp
