#include "mem/mshr.hh"

#include "sim/logging.hh"

namespace fdp
{

MshrEntry *
MshrFile::find(BlockAddr block)
{
    auto it = entries_.find(block);
    return it == entries_.end() ? nullptr : &it->second;
}

MshrEntry &
MshrFile::allocate(BlockAddr block, bool prefBit, Cycle now)
{
    if (full())
        panic("MSHR allocate while full (capacity %zu)", capacity_);
    auto [it, inserted] = entries_.try_emplace(block);
    if (!inserted)
        panic("MSHR allocate for block already in flight");
    MshrEntry &e = it->second;
    e.block = block;
    e.prefBit = prefBit;
    e.allocCycle = now;
    return e;
}

void
MshrFile::deallocate(BlockAddr block)
{
    if (entries_.erase(block) != 1)
        panic("MSHR deallocate for absent block");
}

} // namespace fdp
