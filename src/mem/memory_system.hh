/**
 * @file
 * The full memory hierarchy of paper Table 3: L1D -> L2 -> DRAM, with
 * the L2-side hardware prefetcher and every FDP bookkeeping hook.
 *
 * Responsibilities:
 *  - demand path: L1 lookup, L2 lookup, MSHR allocate/merge, DRAM access,
 *    fill into L2 (at the FDP-selected stack position for prefetches) and
 *    into L1 (for demands);
 *  - prefetch path: run the prefetcher on every demand L2 access, filter
 *    candidates against L2 contents / prefetch cache / MSHRs / queue
 *    capacity, issue survivors at prefetch (lowest) priority;
 *  - late-prefetch detection: a demand that merges with an in-flight
 *    prefetch MSHR promotes it to demand priority and reports it late;
 *  - pollution bookkeeping: demand-fetched victims of prefetch fills set
 *    the pollution filter, prefetch fills clear it, demand misses test it;
 *  - optional prefetch cache (Section 5.7): prefetch fills bypass the L2.
 */

#ifndef FDP_MEM_MEMORY_SYSTEM_HH
#define FDP_MEM_MEMORY_SYSTEM_HH

#include <deque>
#include <memory>
#include <vector>

#include "core/fdp_controller.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/memory_port.hh"
#include "mem/mshr.hh"
#include "mem/prefetch_cache.hh"
#include "prefetch/prefetcher.hh"
#include "sim/event_queue.hh"
#include "sim/inline_function.hh"
#include "sim/snapshot.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace fdp
{

/** Paper Table 3 machine configuration (memory side). */
struct MachineParams
{
    CacheParams l1{"L1D", 64 * 1024, 4};
    Cycle l1Latency = 2;
    CacheParams l2{"L2", 1024 * 1024, 16};
    Cycle l2Latency = 10;
    std::size_t l2Mshrs = 128;
    /** MSHRs held back from prefetches so demands can always allocate. */
    std::size_t mshrDemandReserve = 16;
    /** Prefetch Request Queue capacity (paper Section 4.1: 128). */
    std::size_t prefetchQueueCap = 128;
    DramParams dram;
    /** DRAM backend selection + controller knobs (DramKind::Flat keeps
     *  the Table 3 flat bus model, the golden baseline). */
    DramCtrlParams dramCtrl;
    PrefetchCacheParams prefetchCache;
    bool modelWritebacks = true;
};

/** L1 + L2 + DRAM with prefetching and FDP instrumentation. */
class MemorySystem : public Auditable, public MemoryPort, public Snapshottable
{
  public:
    using DoneFn = fdp::DoneFn;

    /**
     * @param params  machine configuration
     * @param events  shared event queue
     * @param pf      L2 prefetcher (nullptr disables prefetching)
     * @param fdp     feedback controller (always present; it observes
     *                even when its dynamic policies are disabled)
     * @param stats   group receiving memory-side statistics
     */
    MemorySystem(const MachineParams &params, EventQueue &events,
                 Prefetcher *pf, FdpController &fdp, StatGroup &stats);

    /**
     * Demand load/store at cycle @p now. @p done fires with the cycle
     * the data is available (loads); stores invoke it too but the core
     * does not wait on them.
     */
    void demandAccess(Addr addr, Addr pc, bool isWrite, Cycle now,
                      DoneFn done) override;

    /** True when no misses are in flight and no requests are queued. */
    bool quiesced() const;

    /**
     * Attach (or detach, with nullptr) the L2 prefetcher. Used by the
     * warm-up boundary: the warm-up phase runs with no prefetcher so
     * the warmed state is independent of the prefetch configuration.
     */
    void setPrefetcher(Prefetcher *pf) { prefetcher_ = pf; }

    /** Publish any locally batched counters into the stat group. */
    void flushStats();

    /** Zero DRAM's per-core attribution (see DramBackend). */
    void resetAttribution() { dram_->resetAttribution(); }

    /** Data-bus utilization over the last closed measurement window,
     *  in [0, 1], measured from the backend's per-channel data-bus
     *  occupancy (PrefetchObservation::busUtil; DESIGN.md §17/18). */
    double busUtilization() const { return busUtil_; }

    /** Cycles per bus-utilization measurement window (shared with the
     *  multi-core memory system, whose bus uses the same cadence). */
    static constexpr Cycle kBusUtilWindow = 4096;

    const SetAssocCache &l1() const { return l1_; }
    const SetAssocCache &l2() const { return l2_; }
    DramBackend &dram() { return *dram_; }
    const DramBackend &dram() const { return *dram_; }
    const MachineParams &params() const { return params_; }

    /// @name Lifetime statistics
    /// Accessors fold in counts still sitting in the hot accumulators,
    /// so they are exact whether or not flushStats() has run.
    /// @{
    std::uint64_t demandAccesses() const
    {
        return demandAccesses_.value() + hot_.demandAccesses;
    }
    std::uint64_t l1Misses() const
    {
        return l1Misses_.value() + hot_.l1Misses;
    }
    std::uint64_t l2Misses() const
    {
        return l2Misses_.value() + hot_.l2Misses;
    }
    std::uint64_t prefetchesIssued() const
    {
        return prefIssued_.value() + hot_.prefIssued;
    }
    std::uint64_t prefetchCacheHits() const
    {
        return pcacheHits_.value() + hot_.pcacheHits;
    }
    std::uint64_t mshrStalls() const
    {
        return mshrStalls_.value() + hot_.mshrStalls;
    }

    /** Average cycles from demand-miss MSHR allocation to fill. */
    double avgDemandMissLatency() const;
    /// @}

    /**
     * Invariants: the Prefetch Request Queue stays within its capacity
     * and the demand-reserve configuration, plus the structural audits
     * of both caches, the MSHR file, the DRAM model, and the prefetch
     * cache when configured.
     */
    void audit() const override;
    const char *auditName() const override { return "memory_system"; }

    /**
     * Serialize the hierarchy: a "mem" marker section (asserting the
     * transient queues are empty, i.e. quiesced()), then the L1, L2,
     * MSHR file, DRAM, and optional prefetch cache in fixed order.
     */
    void saveState(SnapWriter &w) const override;
    void loadState(SnapReader &r) override;
    const char *snapName() const override { return "mem"; }

  private:
    friend struct AuditCorrupter;

    struct PendingDemand
    {
        BlockAddr block;
        bool isWrite;
        DoneFn done;
        Cycle arrival;
    };

    /** Run the prefetcher on a demand L2 access and queue candidates. */
    void observeAndIssue(const PrefetchObservation &obs, Cycle now);

    /** Close the bus-utilization window if @p now has moved past it. */
    void updateBusUtil(Cycle now);

    /**
     * Drain the Prefetch Request Queue into the MSHRs / bus queue as
     * capacity allows (prefetches wait here rather than being lost).
     */
    void drainPrefetchQueue(Cycle now);

    /** Allocate the MSHR and send a demand miss to DRAM. */
    void startDemandMiss(BlockAddr block, bool isWrite, Cycle now,
                         DoneFn done);

    /** DRAM fill arrived for @p block. */
    void onFill(BlockAddr block, Cycle fillCycle);

    /** Install a fill in the L2, handling victim bookkeeping. */
    void insertL2Fill(BlockAddr block, bool prefBit, bool dirty, Cycle now);

    /** Install a block in the L1, handling dirty-victim writeback. */
    void fillL1(BlockAddr block, bool isWrite, Cycle now);

    /** Admit MSHR-stalled demands after a deallocation. */
    void admitPending(Cycle now);

    /**
     * Per-op counters batched as plain integers in one packed struct
     * (one or two cache lines touched per demand instead of a spread of
     * registered statistics), published into the stat group by
     * flushStats() at sampling boundaries. DRAM/bus statistics are NOT
     * batched: the DRAM model owns them and its audit cross-checks
     * them in place.
     */
    struct HotCounters
    {
        std::uint64_t demandAccesses = 0;
        std::uint64_t l1Hits = 0;
        std::uint64_t l1Misses = 0;
        std::uint64_t l2Hits = 0;
        std::uint64_t l2Misses = 0;
        std::uint64_t mshrMerges = 0;
        std::uint64_t mshrStalls = 0;
        std::uint64_t prefIssued = 0;
        std::uint64_t prefDropL2Hit = 0;
        std::uint64_t prefDropInFlight = 0;
        std::uint64_t prefDropQueueFull = 0;
        std::uint64_t pcacheHits = 0;
        std::uint64_t writebacks = 0;
        std::uint64_t demandMissFills = 0;
        std::uint64_t demandMissCycles = 0;
    };

    MachineParams params_;
    EventQueue &events_;
    Prefetcher *prefetcher_;
    FdpController &fdp_;
    HotCounters hot_;

    SetAssocCache l1_;
    SetAssocCache l2_;
    MshrFile mshrs_;
    std::unique_ptr<DramBackend> dram_;
    std::unique_ptr<PrefetchCache> pcache_;

    /// @name Bus-utilization window
    /// Recomputed from busBusyCycles() deltas every kBusUtilWindow
    /// cycles; a pure function of simulated time, so deterministic.
    /// @{
    double busUtil_ = 0.0;
    Cycle busWindowStart_ = 0;
    std::uint64_t busWindowBusy_ = 0;
    /// @}

    std::deque<PendingDemand> mshrWaitQ_;
    std::deque<BlockAddr> prefetchQueue_;  ///< the Prefetch Request Queue
    std::vector<BlockAddr> pfCandidates_;  ///< scratch, reused per access
    std::vector<DoneFn> fillWaiters_;      ///< scratch, reused per fill

    ScalarStat demandAccesses_;
    ScalarStat l1Hits_;
    ScalarStat l1Misses_;
    ScalarStat l2Hits_;
    ScalarStat l2Misses_;
    ScalarStat mshrMerges_;
    ScalarStat mshrStalls_;
    ScalarStat prefIssued_;
    ScalarStat prefDropL2Hit_;
    ScalarStat prefDropInFlight_;
    ScalarStat prefDropQueueFull_;
    ScalarStat pcacheHits_;
    ScalarStat writebacks_;
    ScalarStat demandMissFills_;
    ScalarStat demandMissCycles_;
};

} // namespace fdp

#endif // FDP_MEM_MEMORY_SYSTEM_HH
