/**
 * @file
 * Bandwidth-limited DRAM + memory bus model (paper Table 3).
 *
 * Requests drain from three priority queues (demand > prefetch >
 * writeback, with a writeback high-water override so dirty data cannot
 * starve forever). The shared data bus is the serializing resource: each
 * 64B block occupies it for sizeBytes/busBytesPerCycle cycles, which with
 * the paper's 4.5 GB/s at 4 GHz is ~57 cycles per block. Banks model
 * open-row hits vs. conflicts; the unloaded end-to-end latency is
 * 500 cycles for a row conflict and 400 for a row hit.
 */

#ifndef FDP_MEM_DRAM_HH
#define FDP_MEM_DRAM_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/check.hh"
#include "sim/event_queue.hh"
#include "sim/inline_function.hh"
#include "sim/snapshot.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace fdp
{

/** DRAM timing/geometry parameters. */
struct DramParams
{
    unsigned banks = 32;
    /** Blocks per DRAM row (128 x 64B = 8KB rows). */
    unsigned rowBlocks = 128;
    /** Bank access phase, row-buffer hit (cycles). */
    Cycle accessRowHit = 150;
    /** Bank access phase, row conflict (cycles). */
    Cycle accessRowConflict = 250;
    /** Open-row command cadence: bank busy per pipelined row hit. */
    Cycle casToCASCycles = 8;
    /** Data-bus bandwidth (4.5 GB/s at 4 GHz = 1.125 B/cycle). */
    double busBytesPerCycle = 1.125;
    /** Fixed fill/return overhead after the transfer (cycles). */
    Cycle returnCycles = 193;
    /** Capacity of the demand and prefetch bus-request queues. */
    std::size_t queueCapacity = 128;
    /** Writebacks get demand priority beyond this backlog. */
    std::size_t writebackHighWater = 64;

    /** Cycles one block occupies the data bus. */
    Cycle transferCycles() const;

    /** Unloaded row-conflict latency (the paper's "minimum" 500). */
    Cycle unloadedLatency() const;

    /**
     * Derive a parameter set whose unloaded row-conflict latency is
     * @p total cycles (used by the Table 7 sensitivity sweep).
     */
    static DramParams withUnloadedLatency(Cycle total);
};

/** Priority of a bus request. */
enum class BusPriority : std::uint8_t { Demand, Prefetch, Writeback };

/** Event-driven DRAM/bus engine. */
class DramModel : public Auditable, public Snapshottable
{
  public:
    using DoneFn = fdp::DoneFn;

    /**
     * @param numCores  cores that may issue bus requests; per-core bus
     *                  accesses are tallied against this many counters
     */
    DramModel(const DramParams &params, EventQueue &events,
              StatGroup &stats, unsigned numCores = 1);

    /**
     * Enqueue a block request on behalf of @p core. Returns false (and
     * drops the request) only for prefetches when the prefetch queue is
     * full. @p done is invoked with the cycle at which the fill reaches
     * the L2; pass nullptr for writebacks.
     */
    bool enqueue(BlockAddr block, BusPriority prio, Cycle now, DoneFn done,
                 CoreId core = kCore0);

    /**
     * Promote a still-queued prefetch for @p block to demand priority
     * (a demand merged with it in the MSHR). No-op if already granted.
     */
    void promoteToDemand(BlockAddr block);

    /** Requests currently waiting (all priorities). */
    std::size_t queued() const;

    const DramParams &params() const { return params_; }

    /// @name Lifetime statistics
    /// @{
    std::uint64_t busAccesses() const { return busAccesses_.value(); }
    std::uint64_t busBusyCycles() const { return busBusyCycles_.value(); }
    std::uint64_t rowHits() const { return rowHits_.value(); }
    std::uint64_t rowConflicts() const { return rowConflicts_.value(); }

    /** Blocks transferred on the bus on behalf of @p core. */
    std::uint64_t busAccessesByCore(CoreId core) const;
    /// @}

    /**
     * Invariants: the demand/prefetch queues stay within capacity, each
     * request sits in the queue matching its priority with a completion
     * callback iff it is not a writeback and a core id below the
     * configured core count, the per-bank state arrays match the
     * configured bank count, a pump event is scheduled whenever work is
     * queued, and the per-core bus-access counters sum exactly to the
     * shared total.
     */
    void audit() const override;
    const char *auditName() const override { return "dram"; }

    /**
     * Snapshots are taken only at quiesce points: queued requests carry
     * completion closures, so saveState() asserts the queues are empty
     * and serializes the bank timing state, the open rows, the bus
     * horizon, and the per-core attribution counters.
     */
    void saveState(SnapWriter &w) const override;
    void loadState(SnapReader &r) override;
    const char *snapName() const override { return "dram"; }

    /**
     * Zero the per-core bus-access attribution alongside a StatGroup
     * reset: the audit cross-checks these counters against the
     * bus_accesses statistic, so a measurement boundary must clear both.
     */
    void resetAttribution();

  private:
    friend struct AuditCorrupter;

    struct Request
    {
        BlockAddr block = 0;
        BusPriority prio = BusPriority::Demand;
        Cycle enqueueCycle = 0;
        CoreId core;
        DoneFn done;
    };

    void auditQueue(const std::deque<Request> &q, BusPriority prio,
                    const char *label) const;

    void schedulePump(Cycle now);
    void pump();
    bool popNext(Request &out);

    DramParams params_;
    EventQueue &events_;
    Cycle transferCycles_;

    std::deque<Request> demandQ_;
    std::deque<Request> prefQ_;
    std::deque<Request> wbQ_;

    std::vector<Cycle> bankReady_;
    std::vector<std::uint64_t> openRow_;
    /** Bus accesses attributed to each requesting core. */
    std::vector<std::uint64_t> coreBusAccesses_;
    Cycle busFree_ = 0;
    bool pumpScheduled_ = false;

    ScalarStat busAccesses_;
    ScalarStat demandGrants_;
    ScalarStat prefetchGrants_;
    ScalarStat writebackGrants_;
    ScalarStat rowHits_;
    ScalarStat rowConflicts_;
    ScalarStat busBusyCycles_;
    ScalarStat promotions_;
};

} // namespace fdp

#endif // FDP_MEM_DRAM_HH
