/**
 * @file
 * Bandwidth-limited DRAM + memory bus model (paper Table 3), the
 * default DramBackend implementation.
 *
 * Requests drain from three priority queues (demand > prefetch >
 * writeback, with a writeback high-water override so dirty data cannot
 * starve forever). The shared data bus is the serializing resource: each
 * 64B block occupies it for sizeBytes/busBytesPerCycle cycles, which with
 * the paper's 4.5 GB/s at 4 GHz is ~57 cycles per block. Banks model
 * open-row hits vs. conflicts; the unloaded end-to-end latency is
 * 500 cycles for a row conflict and 400 for a row hit.
 *
 * The FR-FCFS multi-channel alternative lives in
 * dram/dram_controller.hh; makeDramBackend() picks between them.
 */

#ifndef FDP_MEM_DRAM_HH
#define FDP_MEM_DRAM_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "dram/dram_backend.hh"
#include "sim/check.hh"
#include "sim/event_queue.hh"
#include "sim/inline_function.hh"
#include "sim/snapshot.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace fdp
{

/** Event-driven DRAM/bus engine (the flat single-bus model). */
class DramModel : public DramBackend
{
  public:
    using DoneFn = fdp::DoneFn;

    /**
     * @param numCores  cores that may issue bus requests; per-core bus
     *                  accesses are tallied against this many counters
     */
    DramModel(const DramParams &params, EventQueue &events,
              StatGroup &stats, unsigned numCores = 1);

    /**
     * Enqueue a block request on behalf of @p core. Returns false (and
     * drops the request) only for prefetches when the prefetch queue is
     * full. @p done is invoked with the cycle at which the fill reaches
     * the L2; pass nullptr for writebacks. The flat model has no
     * accuracy-directed scheduling, so @p tier is ignored.
     */
    bool enqueue(BlockAddr block, BusPriority prio, Cycle now, DoneFn done,
                 CoreId core = kCore0,
                 PrefetchTier tier = PrefetchTier::High) override;

    /**
     * Promote a still-queued prefetch for @p block to demand priority
     * (a demand merged with it in the MSHR). No-op if already granted.
     */
    void promoteToDemand(BlockAddr block) override;

    /** Requests currently waiting (all priorities). */
    std::size_t queued() const override;

    const DramParams &params() const override { return params_; }

    /// @name Lifetime statistics
    /// @{
    std::uint64_t busAccesses() const override
    {
        return busAccesses_.value();
    }
    std::uint64_t busBusyCycles() const override
    {
        return busBusyCycles_.value();
    }
    std::uint64_t rowHits() const override { return rowHits_.value(); }
    std::uint64_t rowConflicts() const override
    {
        return rowConflicts_.value();
    }

    /** Blocks transferred on the bus on behalf of @p core. */
    std::uint64_t busAccessesByCore(CoreId core) const override;
    /// @}

    /** One serializing data bus. */
    unsigned dataBuses() const override { return 1; }

    /**
     * Invariants: the demand/prefetch queues stay within capacity, each
     * request sits in the queue matching its priority with a completion
     * callback iff it is not a writeback and a core id below the
     * configured core count, the per-bank state arrays match the
     * configured bank count, a pump event is scheduled whenever work is
     * queued, and the per-core bus-access counters sum exactly to the
     * shared total.
     */
    void audit() const override;
    const char *auditName() const override { return "dram"; }

    /**
     * Snapshots are taken only at quiesce points: queued requests carry
     * completion closures, so saveState() asserts the queues are empty
     * and serializes the bank timing state, the open rows, the bus
     * horizon, and the per-core attribution counters.
     */
    void saveState(SnapWriter &w) const override;
    void loadState(SnapReader &r) override;
    const char *snapName() const override { return "dram"; }

    /**
     * Zero the per-core bus-access attribution alongside a StatGroup
     * reset: the audit cross-checks these counters against the
     * bus_accesses statistic, so a measurement boundary must clear both.
     */
    void resetAttribution() override;

  private:
    friend struct AuditCorrupter;

    struct Request
    {
        BlockAddr block = 0;
        BusPriority prio = BusPriority::Demand;
        Cycle enqueueCycle = 0;
        CoreId core;
        DoneFn done;
    };

    void auditQueue(const std::deque<Request> &q, BusPriority prio,
                    const char *label) const;

    void schedulePump(Cycle now);
    void pump();
    bool popNext(Request &out);

    DramParams params_;
    EventQueue &events_;
    Cycle transferCycles_;

    std::deque<Request> demandQ_;
    std::deque<Request> prefQ_;
    std::deque<Request> wbQ_;

    std::vector<Cycle> bankReady_;
    std::vector<std::uint64_t> openRow_;
    /** Bus accesses attributed to each requesting core. */
    std::vector<std::uint64_t> coreBusAccesses_;
    Cycle busFree_ = 0;
    bool pumpScheduled_ = false;

    ScalarStat busAccesses_;
    ScalarStat demandGrants_;
    ScalarStat prefetchGrants_;
    ScalarStat writebackGrants_;
    ScalarStat rowHits_;
    ScalarStat rowConflicts_;
    ScalarStat busBusyCycles_;
    ScalarStat promotions_;
};

/**
 * Instantiate the configured DRAM backend: the flat Table 3 model
 * (DramKind::Flat, the default and the golden baseline) or the
 * FR-FCFS multi-channel controller (DramKind::Controller).
 */
std::unique_ptr<DramBackend>
makeDramBackend(const DramParams &params, const DramCtrlParams &ctrl,
                EventQueue &events, StatGroup &stats, unsigned numCores);

} // namespace fdp

#endif // FDP_MEM_DRAM_HH
