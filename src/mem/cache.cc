#include "mem/cache.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace fdp
{

SetAssocCache::SetAssocCache(const CacheParams &params) : params_(params)
{
    if (params_.assoc == 0 || params_.assoc > 255)
        fatal("%s: associativity %u unsupported", params_.name.c_str(),
              params_.assoc);
    const std::size_t blocks = params_.sizeBytes / kBlockBytes;
    if (blocks == 0 || blocks % params_.assoc != 0)
        fatal("%s: size %zu not divisible into %u-way sets",
              params_.name.c_str(), params_.sizeBytes, params_.assoc);
    const std::size_t num_sets = blocks / params_.assoc;
    if ((num_sets & (num_sets - 1)) != 0)
        fatal("%s: number of sets %zu must be a power of two",
              params_.name.c_str(), num_sets);

    sets_.resize(num_sets);
    for (auto &set : sets_) {
        set.ways.resize(params_.assoc);
        set.stack.reserve(params_.assoc);
    }
}

std::size_t
SetAssocCache::setIndex(BlockAddr block) const
{
    return static_cast<std::size_t>(block & (sets_.size() - 1));
}

int
SetAssocCache::findWay(const Set &set, BlockAddr block) const
{
    for (std::size_t w = 0; w < set.ways.size(); ++w)
        if (set.ways[w].valid && set.ways[w].block == block)
            return static_cast<int>(w);
    return -1;
}

void
SetAssocCache::promoteToMru(Set &set, std::uint8_t way)
{
    auto it = std::find(set.stack.begin(), set.stack.end(), way);
    set.stack.erase(it);
    set.stack.push_back(way);
}

CacheAccessResult
SetAssocCache::access(BlockAddr block, bool isWrite)
{
    Set &set = sets_[setIndex(block)];
    const int w = findWay(set, block);
    if (w < 0)
        return {};

    Way &way = set.ways[static_cast<std::size_t>(w)];
    CacheAccessResult result;
    result.hit = true;
    result.hitPrefetched = way.prefBit;
    way.prefBit = false;
    if (isWrite)
        way.dirty = true;
    promoteToMru(set, static_cast<std::uint8_t>(w));
    return result;
}

bool
SetAssocCache::probe(BlockAddr block) const
{
    const Set &set = sets_[setIndex(block)];
    return findWay(set, block) >= 0;
}

CacheVictim
SetAssocCache::insert(BlockAddr block, bool prefBit, InsertPos pos,
                      bool dirty)
{
    Set &set = sets_[setIndex(block)];
    if (findWay(set, block) >= 0)
        panic("%s: inserting block already present", params_.name.c_str());

    CacheVictim victim;
    std::uint8_t way_idx;
    if (set.used == params_.assoc) {
        // Set full: evict the LRU way and reuse it.
        way_idx = set.stack.front();
        set.stack.erase(set.stack.begin());
        Way &v = set.ways[way_idx];
        victim.valid = true;
        victim.block = v.block;
        victim.prefBit = v.prefBit;
        victim.dirty = v.dirty;
    } else {
        way_idx = 0;
        while (set.ways[way_idx].valid)
            ++way_idx;
        ++set.used;
    }

    Way &way = set.ways[way_idx];
    way.valid = true;
    way.block = block;
    way.prefBit = prefBit;
    way.dirty = dirty;

    const unsigned stack_pos =
        std::min<unsigned>(insertStackIndex(pos, params_.assoc),
                           static_cast<unsigned>(set.stack.size()));
    set.stack.insert(set.stack.begin() + stack_pos, way_idx);
    return victim;
}

bool
SetAssocCache::markDirty(BlockAddr block)
{
    Set &set = sets_[setIndex(block)];
    const int w = findWay(set, block);
    if (w < 0)
        return false;
    set.ways[static_cast<std::size_t>(w)].dirty = true;
    return true;
}

CacheVictim
SetAssocCache::invalidate(BlockAddr block)
{
    Set &set = sets_[setIndex(block)];
    const int w = findWay(set, block);
    if (w < 0)
        return {};

    Way &way = set.ways[static_cast<std::size_t>(w)];
    CacheVictim victim;
    victim.valid = true;
    victim.block = way.block;
    victim.prefBit = way.prefBit;
    victim.dirty = way.dirty;

    way = Way{};
    auto it = std::find(set.stack.begin(), set.stack.end(),
                        static_cast<std::uint8_t>(w));
    set.stack.erase(it);
    --set.used;
    return victim;
}

int
SetAssocCache::stackDepth(BlockAddr block) const
{
    const Set &set = sets_[setIndex(block)];
    const int w = findWay(set, block);
    if (w < 0)
        return -1;
    for (std::size_t i = 0; i < set.stack.size(); ++i)
        if (set.stack[i] == static_cast<std::uint8_t>(w))
            return static_cast<int>(i);
    panic("%s: valid way missing from recency stack", params_.name.c_str());
}

std::size_t
SetAssocCache::occupancy() const
{
    std::size_t n = 0;
    for (const auto &set : sets_)
        n += set.used;
    return n;
}

void
SetAssocCache::audit() const
{
    for (std::size_t s = 0; s < sets_.size(); ++s) {
        const Set &set = sets_[s];
        FDP_ASSERT(set.used <= params_.assoc,
                   "%s: set %zu uses %u of %u ways", auditName(), s,
                   set.used, params_.assoc);
        FDP_ASSERT(set.stack.size() == set.used,
                   "%s: set %zu recency stack holds %zu entries for %u "
                   "valid ways",
                   auditName(), s, set.stack.size(), set.used);

        // The stack must be a permutation of the valid way indices.
        std::vector<bool> on_stack(params_.assoc, false);
        for (const std::uint8_t w : set.stack) {
            FDP_ASSERT(w < params_.assoc,
                       "%s: set %zu stack names way %u of %u", auditName(),
                       s, w, params_.assoc);
            FDP_ASSERT(!on_stack[w],
                       "%s: set %zu stack lists way %u twice", auditName(),
                       s, w);
            on_stack[w] = true;
            FDP_ASSERT(set.ways[w].valid,
                       "%s: set %zu stack lists invalid way %u",
                       auditName(), s, w);
        }

        unsigned valid_ways = 0;
        for (std::size_t w = 0; w < set.ways.size(); ++w) {
            const Way &way = set.ways[w];
            if (!way.valid) {
                FDP_ASSERT(!on_stack[w],
                           "%s: set %zu invalid way %zu is on the stack",
                           auditName(), s, w);
                continue;
            }
            ++valid_ways;
            FDP_ASSERT(on_stack[w],
                       "%s: set %zu valid way %zu missing from the stack",
                       auditName(), s, w);
            for (std::size_t o = 0; o < w; ++o)
                FDP_ASSERT(!set.ways[o].valid ||
                               set.ways[o].block != way.block,
                           "%s: set %zu holds block %llu in ways %zu and "
                           "%zu",
                           auditName(), s,
                           static_cast<unsigned long long>(way.block), o,
                           w);
            FDP_ASSERT(setIndex(way.block) == s,
                       "%s: block %llu stored in set %zu but maps to set "
                       "%zu",
                       auditName(),
                       static_cast<unsigned long long>(way.block), s,
                       setIndex(way.block));
        }
        FDP_ASSERT(valid_ways == set.used,
                   "%s: set %zu has %u valid ways but used=%u",
                   auditName(), s, valid_ways, set.used);
    }
}

void
SetAssocCache::clear()
{
    for (auto &set : sets_) {
        for (auto &way : set.ways)
            way = Way{};
        set.stack.clear();
        set.used = 0;
    }
}

} // namespace fdp
