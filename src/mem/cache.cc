#include "mem/cache.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace fdp
{

SetAssocCache::SetAssocCache(const CacheParams &params)
    : params_(params), snapName_("cache/" + params.name)
{
    if (params_.assoc == 0 || params_.assoc > 254)
        fatal("%s: associativity %u unsupported", params_.name.c_str(),
              params_.assoc);
    if (params_.numCores == 0)
        fatal("%s: needs at least one owning core", params_.name.c_str());
    const std::size_t blocks = params_.sizeBytes / kBlockBytes;
    if (blocks == 0 || blocks % params_.assoc != 0)
        fatal("%s: size %zu not divisible into %u-way sets",
              params_.name.c_str(), params_.sizeBytes, params_.assoc);
    const std::size_t num_sets = blocks / params_.assoc;
    if ((num_sets & (num_sets - 1)) != 0)
        fatal("%s: number of sets %zu must be a power of two",
              params_.name.c_str(), num_sets);

    lines_.resize(blocks);
    sets_.resize(num_sets);
}

std::size_t
SetAssocCache::setIndex(BlockAddr block) const
{
    return static_cast<std::size_t>(block & (sets_.size() - 1));
}

int
SetAssocCache::findWay(std::size_t base, BlockAddr block) const
{
    for (unsigned w = 0; w < params_.assoc; ++w) {
        const Line &l = lines_[base + w];
        if ((l.flags & kValid) != 0 && l.tag == block)
            return static_cast<int>(w);
    }
    return -1;
}

void
SetAssocCache::unlink(SetLinks &set, std::size_t base, std::uint8_t way)
{
    Line &l = lines_[base + way];
    if (l.prev != kNoWay)
        lines_[base + l.prev].next = l.next;
    else
        set.lru = l.next;
    if (l.next != kNoWay)
        lines_[base + l.next].prev = l.prev;
    else
        set.mru = l.prev;
}

void
SetAssocCache::appendMru(SetLinks &set, std::size_t base, std::uint8_t way)
{
    Line &l = lines_[base + way];
    l.prev = set.mru;
    l.next = kNoWay;
    if (set.mru != kNoWay)
        lines_[base + set.mru].next = way;
    else
        set.lru = way;
    set.mru = way;
}

void
SetAssocCache::linkAtDepth(SetLinks &set, std::size_t base,
                           std::uint8_t way, unsigned depth,
                           unsigned chainLen)
{
    if (depth >= chainLen) {
        appendMru(set, base, way);
        return;
    }
    Line &l = lines_[base + way];
    if (depth == 0) {
        l.prev = kNoWay;
        l.next = set.lru;
        lines_[base + set.lru].prev = way;
        set.lru = way;
        return;
    }
    // Splice in after the node currently at depth-1: the new line then
    // has `depth` less-recent predecessors, matching a vector insert at
    // index `depth` in the old recency-stack representation.
    std::uint8_t before = set.lru;
    for (unsigned i = 1; i < depth; ++i)
        before = lines_[base + before].next;
    l.prev = before;
    l.next = lines_[base + before].next;
    lines_[base + before].next = way;
    lines_[base + l.next].prev = way;
}

CacheAccessResult
SetAssocCache::access(BlockAddr block, bool isWrite)
{
    const std::size_t s = setIndex(block);
    const std::size_t base = s * params_.assoc;
    const int w = findWay(base, block);
    if (w < 0)
        return {};

    Line &l = lines_[base + static_cast<std::size_t>(w)];
    CacheAccessResult result;
    result.hit = true;
    result.hitPrefetched = (l.flags & kPref) != 0;
    l.flags &= static_cast<std::uint8_t>(~kPref);
    if (isWrite)
        l.flags |= kDirty;
    SetLinks &set = sets_[s];
    if (set.mru != w) {
        unlink(set, base, static_cast<std::uint8_t>(w));
        appendMru(set, base, static_cast<std::uint8_t>(w));
    }
    return result;
}

bool
SetAssocCache::probe(BlockAddr block) const
{
    return findWay(setIndex(block) * params_.assoc, block) >= 0;
}

CacheVictim
SetAssocCache::insert(BlockAddr block, bool prefBit, InsertPos pos,
                      bool dirty, CoreId owner)
{
    const std::size_t s = setIndex(block);
    const std::size_t base = s * params_.assoc;
    if (findWay(base, block) >= 0)
        panic("%s: inserting block already present", params_.name.c_str());

    SetLinks &set = sets_[s];
    CacheVictim victim;
    std::uint8_t way;
    if (set.used == params_.assoc) {
        // Set full: evict the LRU way and reuse it.
        way = set.lru;
        unlink(set, base, way);
        const Line &v = lines_[base + way];
        victim.valid = true;
        victim.block = v.tag;
        victim.prefBit = (v.flags & kPref) != 0;
        victim.dirty = (v.flags & kDirty) != 0;
        victim.owner = v.owner;
    } else {
        way = 0;
        while ((lines_[base + way].flags & kValid) != 0)
            ++way;
        ++set.used;
    }

    Line &l = lines_[base + way];
    l.tag = block;
    l.flags = static_cast<std::uint8_t>(
        kValid | (prefBit ? kPref : 0) | (dirty ? kDirty : 0));
    l.owner = owner;

    const unsigned chain_len = set.used - 1u;
    const unsigned depth =
        std::min(insertStackIndex(pos, params_.assoc), chain_len);
    linkAtDepth(set, base, way, depth, chain_len);
    return victim;
}

CoreId
SetAssocCache::ownerOf(BlockAddr block) const
{
    const std::size_t base = setIndex(block) * params_.assoc;
    const int w = findWay(base, block);
    if (w < 0)
        panic("%s: ownerOf() for absent block", params_.name.c_str());
    return lines_[base + static_cast<std::size_t>(w)].owner;
}

bool
SetAssocCache::markDirty(BlockAddr block)
{
    const std::size_t base = setIndex(block) * params_.assoc;
    const int w = findWay(base, block);
    if (w < 0)
        return false;
    lines_[base + static_cast<std::size_t>(w)].flags |= kDirty;
    return true;
}

CacheVictim
SetAssocCache::invalidate(BlockAddr block)
{
    const std::size_t s = setIndex(block);
    const std::size_t base = s * params_.assoc;
    const int w = findWay(base, block);
    if (w < 0)
        return {};

    Line &l = lines_[base + static_cast<std::size_t>(w)];
    CacheVictim victim;
    victim.valid = true;
    victim.block = l.tag;
    victim.prefBit = (l.flags & kPref) != 0;
    victim.dirty = (l.flags & kDirty) != 0;
    victim.owner = l.owner;

    SetLinks &set = sets_[s];
    unlink(set, base, static_cast<std::uint8_t>(w));
    l = Line{};
    --set.used;
    return victim;
}

int
SetAssocCache::stackDepth(BlockAddr block) const
{
    const std::size_t s = setIndex(block);
    const std::size_t base = s * params_.assoc;
    const int w = findWay(base, block);
    if (w < 0)
        return -1;
    int depth = 0;
    for (std::uint8_t cur = sets_[s].lru; cur != kNoWay;
         cur = lines_[base + cur].next) {
        if (cur == w)
            return depth;
        ++depth;
    }
    panic("%s: valid way missing from recency stack", params_.name.c_str());
}

std::size_t
SetAssocCache::occupancy() const
{
    std::size_t n = 0;
    for (const auto &set : sets_)
        n += set.used;
    return n;
}

void
SetAssocCache::audit() const
{
    for (std::size_t s = 0; s < sets_.size(); ++s) {
        const SetLinks &set = sets_[s];
        const std::size_t base = s * params_.assoc;
        FDP_ASSERT(set.used <= params_.assoc,
                   "%s: set %zu uses %u of %u ways", auditName(), s,
                   set.used, params_.assoc);

        // Walk the recency chain LRU -> MRU, capped one past the
        // associativity so a cyclic chain still terminates and reports
        // a length mismatch instead of hanging the audit.
        std::vector<std::uint8_t> order;
        std::uint8_t cur = set.lru;
        while (cur != kNoWay && order.size() <= params_.assoc) {
            FDP_ASSERT(cur < params_.assoc,
                       "%s: set %zu stack names way %u of %u", auditName(),
                       s, cur, params_.assoc);
            order.push_back(cur);
            cur = lines_[base + cur].next;
        }
        FDP_ASSERT(order.size() == set.used,
                   "%s: set %zu recency stack holds %zu entries for %u "
                   "valid ways",
                   auditName(), s, order.size(), set.used);

        // The chain must be a permutation of the valid way indices with
        // consistent back links and endpoints.
        std::vector<bool> on_stack(params_.assoc, false);
        std::uint8_t expect_prev = kNoWay;
        for (const std::uint8_t w : order) {
            FDP_ASSERT(!on_stack[w],
                       "%s: set %zu stack lists way %u twice", auditName(),
                       s, w);
            on_stack[w] = true;
            const Line &l = lines_[base + w];
            FDP_ASSERT((l.flags & kValid) != 0,
                       "%s: set %zu stack lists invalid way %u",
                       auditName(), s, w);
            FDP_ASSERT(l.prev == expect_prev,
                       "%s: set %zu way %u back link names way %u",
                       auditName(), s, w, l.prev);
            expect_prev = w;
        }
        FDP_ASSERT(set.mru == expect_prev,
                   "%s: set %zu MRU endpoint names way %u", auditName(), s,
                   set.mru);

        unsigned valid_ways = 0;
        for (std::size_t w = 0; w < params_.assoc; ++w) {
            const Line &l = lines_[base + w];
            if ((l.flags & kValid) == 0) {
                FDP_ASSERT(!on_stack[w],
                           "%s: set %zu invalid way %zu is on the stack",
                           auditName(), s, w);
                continue;
            }
            ++valid_ways;
            FDP_ASSERT(on_stack[w],
                       "%s: set %zu valid way %zu missing from the stack",
                       auditName(), s, w);
            FDP_ASSERT(l.owner.index() < params_.numCores,
                       "%s: set %zu way %zu owned by core %u of %u",
                       auditName(), s, w, l.owner.index(),
                       params_.numCores);
            for (std::size_t o = 0; o < w; ++o) {
                const Line &other = lines_[base + o];
                FDP_ASSERT((other.flags & kValid) == 0 ||
                               other.tag != l.tag,
                           "%s: set %zu holds block %llu in ways %zu and "
                           "%zu",
                           auditName(), s,
                           static_cast<unsigned long long>(l.tag), o, w);
            }
            FDP_ASSERT(setIndex(l.tag) == s,
                       "%s: block %llu stored in set %zu but maps to set "
                       "%zu",
                       auditName(),
                       static_cast<unsigned long long>(l.tag), s,
                       setIndex(l.tag));
        }
        FDP_ASSERT(valid_ways == set.used,
                   "%s: set %zu has %u valid ways but used=%u",
                   auditName(), s, valid_ways, set.used);
    }
}

void
SetAssocCache::saveState(SnapWriter &w) const
{
    w.beginSection(snapName());
    w.putU32(static_cast<std::uint32_t>(sets_.size()));
    w.putU32(params_.assoc);
    for (const Line &l : lines_) {
        w.putU64(l.tag);
        w.putU8(l.flags);
        w.putU8(l.prev);
        w.putU8(l.next);
        w.putU8(static_cast<std::uint8_t>(l.owner.index()));
    }
    for (const SetLinks &set : sets_) {
        w.putU8(set.lru);
        w.putU8(set.mru);
        w.putU8(set.used);
    }
    w.endSection();
}

void
SetAssocCache::loadState(SnapReader &r)
{
    r.openSection(snapName());
    const std::uint32_t num_sets = r.getU32();
    const std::uint32_t assoc = r.getU32();
    if (num_sets != sets_.size() || assoc != params_.assoc)
        fatal("snapshot: %s geometry is %zu sets x %u ways, snapshot has "
              "%u x %u",
              params_.name.c_str(), sets_.size(), params_.assoc, num_sets,
              assoc);
    for (Line &l : lines_) {
        l.tag = r.getU64();
        l.flags = r.getU8();
        l.prev = r.getU8();
        l.next = r.getU8();
        l.owner = CoreId{r.getU8()};
    }
    for (SetLinks &set : sets_) {
        set.lru = r.getU8();
        set.mru = r.getU8();
        set.used = r.getU8();
    }
    r.closeSection();
}

void
SetAssocCache::clear()
{
    for (Line &l : lines_)
        l = Line{};
    for (SetLinks &set : sets_)
        set = SetLinks{};
}

} // namespace fdp
