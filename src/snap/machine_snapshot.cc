#include "snap/machine_snapshot.hh"

#include <sstream>

#include "sim/check.hh"
#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace fdp
{

std::string
machineGeometry(const MachineParams &machine, const CoreParams &core)
{
    std::ostringstream s;
    s << "l1{" << machine.l1.sizeBytes << "," << machine.l1.assoc
      << ",lat=" << machine.l1Latency << "}"
      << " l2{" << machine.l2.sizeBytes << "," << machine.l2.assoc
      << ",lat=" << machine.l2Latency << "}"
      << " mshrs=" << machine.l2Mshrs
      << " reserve=" << machine.mshrDemandReserve
      << " pfq=" << machine.prefetchQueueCap
      << " dram{banks=" << machine.dram.banks
      << ",row=" << machine.dram.rowBlocks
      << ",hit=" << machine.dram.accessRowHit
      << ",conf=" << machine.dram.accessRowConflict
      << ",cas=" << machine.dram.casToCASCycles
      << ",bus=" << machine.dram.busBytesPerCycle
      << ",ret=" << machine.dram.returnCycles
      << ",q=" << machine.dram.queueCapacity
      << ",wbhw=" << machine.dram.writebackHighWater << "}";
    // Geometry strings of flat-DRAM machines predate the controller, so
    // the controller block is appended only when it is selected: old
    // fdpsnap images keep loading against the default configuration.
    if (machine.dramCtrl.kind == DramKind::Controller)
        s << " dramctl{ch=" << machine.dramCtrl.channels
          << ",rowpol=" << static_cast<int>(machine.dramCtrl.rowPolicy)
          << ",fdpprio=" << (machine.dramCtrl.fdpPriority ? 1 : 0)
          << ",lowdrop=" << machine.dramCtrl.lowTierDropAt
          << ",qoscap=" << machine.dramCtrl.qosInFlightCap
          << ",qosw=" << (machine.dramCtrl.qosWeighted ? 1 : 0) << "}";
    if (machine.prefetchCache.enabled)
        s << " pcache{" << machine.prefetchCache.sizeBytes << ","
          << machine.prefetchCache.assoc << "}";
    else
        s << " pcache{off}";
    s << " wb=" << (machine.modelWritebacks ? 1 : 0)
      << " core{rob=" << core.robSize << ",w=" << core.width << "}";
    return s.str();
}

void
drainToQuiesce(EventQueue &events, MemorySystem &mem)
{
    while (!mem.quiesced()) {
        const Cycle nxt = events.nextEventCycle();
        FDP_ASSERT(nxt != kNoCycle,
                   "drainToQuiesce: memory busy with no pending events");
        events.serviceUntil(nxt);
    }
}

namespace
{

/** The snap library's own marker naming the saved prefetcher (or
 *  "none"), so restores can detect mismatches and forks can skip the
 *  prefetcher section without knowing its name in advance. */
constexpr const char *kPfMarker = "pf";

Snapshottable &
snapshottableWorkload(Workload &workload)
{
    auto *s = dynamic_cast<Snapshottable *>(&workload);
    if (s == nullptr)
        fatal("workload %s does not support snapshots (recording "
              "frontends never do; re-run without snapshotting)",
              workload.name());
    return *s;
}

} // namespace

SnapshotImageBody
captureMachine(const SnapshotParts &parts)
{
    SnapWriter w;
    parts.events.saveState(w);
    snapshottableWorkload(parts.workload).saveState(w);
    parts.core.saveState(w);
    parts.mem.saveState(w);
    parts.fdp.saveState(w);
    w.beginSection(kPfMarker);
    w.putString(parts.prefetcher ? parts.prefetcher->snapName() : "none");
    w.endSection();
    if (parts.prefetcher)
        parts.prefetcher->saveState(w);
    parts.fdpStats.saveState(w);
    parts.memStats.saveState(w);
    parts.coreStats.saveState(w);
    return SnapshotImageBody{w.bytes(), w.sectionCount()};
}

void
restoreMachine(const SnapshotParts &parts,
               const std::vector<std::uint8_t> &body, RestoreMode mode)
{
    SnapReader r(body);
    parts.events.loadState(r);
    snapshottableWorkload(parts.workload).loadState(r);
    parts.core.loadState(r);
    parts.mem.loadState(r);

    if (mode == RestoreMode::Fork) {
        // The forked cell rebuilds policy state from its own
        // configuration at the measurement boundary; skip the saved
        // sections, still validating the frame structure.
        r.skipSection("fdp");
        r.skipSection("fdp/counters");
        r.skipSection("fdp/filter");
    } else {
        parts.fdp.loadState(r);
    }

    r.openSection(kPfMarker);
    const std::string pf_name = r.getString();
    r.closeSection();
    if (mode == RestoreMode::Fork) {
        if (pf_name != "none")
            r.skipSection(pf_name);
    } else {
        const std::string have =
            parts.prefetcher ? parts.prefetcher->snapName() : "none";
        if (pf_name != have)
            fatal("snapshot: machine has prefetcher %s, snapshot has %s",
                  have.c_str(), pf_name.c_str());
        if (parts.prefetcher)
            parts.prefetcher->loadState(r);
    }

    if (mode == RestoreMode::Fork) {
        r.skipSection(parts.fdpStats.snapName());
        r.skipSection(parts.memStats.snapName());
        r.skipSection(parts.coreStats.snapName());
    } else {
        parts.fdpStats.loadState(r);
        parts.memStats.loadState(r);
        parts.coreStats.loadState(r);
    }

    if (!r.atEnd())
        fatal("snapshot: trailing bytes after the last section");
}

} // namespace fdp
