/**
 * @file
 * The `fdpsnap-v1` binary snapshot container (DESIGN.md Section 16).
 *
 * Layout (all fixed-width scalars little-endian):
 *
 *   magic        8 bytes   "FDPSNAPS"
 *   version      u32       kSnapVersion
 *   nameLen      u16       benchmark name length
 *   name         nameLen   benchmark the machine was warmed on
 *   geomLen      u16       geometry string length
 *   geometry     geomLen   machineGeometry() of the saving machine
 *   warmupInsts  u64       instructions retired before the snapshot
 *   sectionCount u32       sections in the body
 *   body         variable  SnapWriter sections (sim/snapshot.hh)
 *   crc          u32       CRC-32 (IEEE) of everything above
 *   endMagic     8 bytes   "FDPSNEND"
 *
 * Every way a file can be wrong — unreadable, truncated, foreign magic,
 * version skew, a flipped bit anywhere under the CRC — is a clean
 * one-line fatal() naming the file, mirroring the fdptrace-v1 reader.
 */

#ifndef FDP_SNAP_SNAPSHOT_FILE_HH
#define FDP_SNAP_SNAPSHOT_FILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace fdp
{

/// @name Container constants
/// @{
inline constexpr std::size_t kSnapMagicLen = 8;
inline constexpr char kSnapMagic[kSnapMagicLen + 1] = "FDPSNAPS";
inline constexpr char kSnapEndMagic[kSnapMagicLen + 1] = "FDPSNEND";
// v2: synthetic workloads grew the delta-walker/phase state and the
// memory system's bus-utilization window; v1 images no longer restore.
inline constexpr std::uint32_t kSnapVersion = 2;
/// @}

/** One decoded snapshot: identity header + opaque section body. */
struct SnapshotImage
{
    std::string benchmark;
    std::string geometry;
    std::uint64_t warmupInsts = 0;
    std::uint32_t sectionCount = 0;
    std::vector<std::uint8_t> body;
};

/** Write @p image to @p path; fatal on any I/O failure. */
void writeSnapshotFile(const std::string &path, const SnapshotImage &image);

/** Read and fully validate the snapshot at @p path; fatal on any
 *  corruption (see file comment). */
SnapshotImage readSnapshotFile(const std::string &path);

} // namespace fdp

#endif // FDP_SNAP_SNAPSHOT_FILE_HH
