/**
 * @file
 * Whole-machine snapshot capture and restore.
 *
 * A machine snapshot is the concatenation of every stateful component's
 * Snapshottable section, in the fixed order captureMachine() writes
 * them: events, workload, core, then the memory hierarchy, the FDP
 * controller, the prefetcher (behind a "pf" marker naming it), and the
 * three stat groups. Snapshots are only taken at quiesce points — no
 * misses in flight, no queued requests, empty ROB — because in-flight
 * transactions hold closures that cannot be serialized; callers reach
 * such a point with drainToQuiesce().
 *
 * Restores come in two flavors:
 *  - RestoreMode::Full rebuilds every component and requires the
 *    restoring machine to match the saving one exactly (same geometry,
 *    same prefetcher);
 *  - RestoreMode::Fork restores only the config-neutral prefix (events,
 *    workload, core, memory hierarchy) and skips the FDP, prefetcher,
 *    and stats sections, because a warm-forked cell rebuilds those from
 *    its own configuration at the measurement boundary.
 *
 * The warm-fork determinism contract (DESIGN.md Section 16): warming a
 * neutral machine, snapshotting, and fork-restoring into a fresh
 * per-config machine is bit-identical to warming that machine cold —
 * both sides then apply the same boundary reset and measured run.
 */

#ifndef FDP_SNAP_MACHINE_SNAPSHOT_HH
#define FDP_SNAP_MACHINE_SNAPSHOT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/fdp_controller.hh"
#include "cpu/ooo_core.hh"
#include "mem/memory_system.hh"
#include "prefetch/prefetcher.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "workload/workload.hh"

namespace fdp
{

/** Non-owning view of the components one machine snapshot covers. */
struct SnapshotParts
{
    EventQueue &events;
    Workload &workload;
    OooCore &core;
    MemorySystem &mem;
    FdpController &fdp;
    Prefetcher *prefetcher;  ///< nullptr when the machine has none
    StatGroup &fdpStats;
    StatGroup &memStats;
    StatGroup &coreStats;
};

/** How much of a snapshot body restoreMachine() consumes. */
enum class RestoreMode : std::uint8_t
{
    Full,  ///< every section; machine must match the saved one exactly
    Fork,  ///< config-neutral prefix only; FDP/prefetcher/stats skipped
};

/**
 * Canonical one-line description of the structural machine shape. Two
 * machines exchange snapshots only when their geometry strings match;
 * FDP policy and prefetcher parameters are deliberately excluded, so
 * every cell of a policy sweep shares one warm snapshot.
 */
std::string machineGeometry(const MachineParams &machine,
                            const CoreParams &core);

/**
 * Service events until the memory system is quiesced. The caller's
 * core must be between runs (nothing left to dispatch), so every
 * pending event belongs to an in-flight miss that drains in bounded
 * time.
 */
void drainToQuiesce(EventQueue &events, MemorySystem &mem);

/** Byte body + section count, as captureMachine produces and
 *  restoreMachine consumes. */
struct SnapshotImageBody
{
    std::vector<std::uint8_t> bytes;
    std::uint32_t sectionCount = 0;
};

/**
 * Serialize the full machine into a snapshot body. The machine must be
 * quiesced (the per-component saveState asserts enforce it) and the
 * workload must be Snapshottable — synthetic and trace frontends are;
 * recording frontends deliberately are not.
 */
SnapshotImageBody captureMachine(const SnapshotParts &parts);

/**
 * Restore @p parts from a snapshot body. The machine must already be
 * constructed (with matching geometry — the caller checks the header's
 * geometry string) and idle. Fatal on any structural mismatch.
 */
void restoreMachine(const SnapshotParts &parts,
                    const std::vector<std::uint8_t> &body,
                    RestoreMode mode);

} // namespace fdp

#endif // FDP_SNAP_MACHINE_SNAPSHOT_HH
