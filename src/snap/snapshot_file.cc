#include "snap/snapshot_file.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <limits>

#include "sim/logging.hh"
#include "trace/trace_format.hh"

namespace fdp
{

namespace
{

/** crc (4) + end magic (8). */
constexpr std::size_t kSnapFooterBytes = 4 + kSnapMagicLen;

void
putString16(std::vector<std::uint8_t> &out, const std::string &s,
            const char *what)
{
    if (s.size() > std::numeric_limits<std::uint16_t>::max())
        fatal("snapshot: %s string is %zu bytes (max %u)", what, s.size(),
              std::numeric_limits<std::uint16_t>::max());
    putU16(out, static_cast<std::uint16_t>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
}

} // namespace

void
writeSnapshotFile(const std::string &path, const SnapshotImage &image)
{
    std::vector<std::uint8_t> bytes;
    bytes.reserve(64 + image.benchmark.size() + image.geometry.size() +
                  image.body.size() + kSnapFooterBytes);
    bytes.insert(bytes.end(), kSnapMagic, kSnapMagic + kSnapMagicLen);
    putU32(bytes, kSnapVersion);
    putString16(bytes, image.benchmark, "benchmark");
    putString16(bytes, image.geometry, "geometry");
    putU64(bytes, image.warmupInsts);
    putU32(bytes, image.sectionCount);
    bytes.insert(bytes.end(), image.body.begin(), image.body.end());
    putU32(bytes, crc32(bytes.data(), bytes.size()));
    bytes.insert(bytes.end(), kSnapEndMagic, kSnapEndMagic + kSnapMagicLen);

    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        fatal("snapshot %s: cannot create: %s", path.c_str(),
              std::strerror(errno));
    const std::size_t wrote = std::fwrite(bytes.data(), 1, bytes.size(), f);
    if (wrote != bytes.size() || std::fclose(f) != 0)
        fatal("snapshot %s: write failed: %s", path.c_str(),
              std::strerror(errno));
}

SnapshotImage
readSnapshotFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        fatal("snapshot %s: cannot open: %s", path.c_str(),
              std::strerror(errno));
    std::vector<std::uint8_t> bytes;
    std::uint8_t buf[1 << 16];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
        bytes.insert(bytes.end(), buf, buf + got);
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error)
        fatal("snapshot %s: read failed: %s", path.c_str(),
              std::strerror(errno));

    // Smallest well-formed file: fixed header fields with empty strings
    // and an empty body, plus the footer.
    const std::size_t min_size =
        kSnapMagicLen + 4 + 2 + 2 + 8 + 4 + kSnapFooterBytes;
    if (bytes.size() < min_size)
        fatal("snapshot %s: truncated (%zu bytes)", path.c_str(),
              bytes.size());
    if (std::memcmp(bytes.data(), kSnapMagic, kSnapMagicLen) != 0)
        fatal("snapshot %s: not an fdpsnap file (bad magic)", path.c_str());
    if (std::memcmp(bytes.data() + bytes.size() - kSnapMagicLen,
                    kSnapEndMagic, kSnapMagicLen) != 0)
        fatal("snapshot %s: truncated (missing end marker)", path.c_str());

    const std::size_t crc_pos = bytes.size() - kSnapFooterBytes;
    const std::uint32_t stored_crc = getU32(bytes.data() + crc_pos);
    const std::uint32_t actual_crc = crc32(bytes.data(), crc_pos);
    if (stored_crc != actual_crc)
        fatal("snapshot %s: CRC mismatch (stored %08x, computed %08x)",
              path.c_str(), stored_crc, actual_crc);

    std::size_t pos = kSnapMagicLen;
    const std::uint32_t version = getU32(bytes.data() + pos);
    pos += 4;
    if (version != kSnapVersion)
        fatal("snapshot %s: format version %u, this build reads %u",
              path.c_str(), version, kSnapVersion);

    SnapshotImage image;
    for (std::string *s : {&image.benchmark, &image.geometry}) {
        if (pos + 2 > crc_pos)
            fatal("snapshot %s: truncated header", path.c_str());
        const std::uint16_t len = getU16(bytes.data() + pos);
        pos += 2;
        if (pos + len > crc_pos)
            fatal("snapshot %s: truncated header", path.c_str());
        s->assign(reinterpret_cast<const char *>(bytes.data() + pos), len);
        pos += len;
    }
    if (pos + 8 + 4 > crc_pos)
        fatal("snapshot %s: truncated header", path.c_str());
    image.warmupInsts = getU64(bytes.data() + pos);
    pos += 8;
    image.sectionCount = getU32(bytes.data() + pos);
    pos += 4;
    image.body.assign(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                      bytes.begin() + static_cast<std::ptrdiff_t>(crc_pos));
    return image;
}

} // namespace fdp
