#include "manage/prefetcher_manager.hh"

#include <algorithm>
#include <cstring>
#include <string>

#include "sim/logging.hh"

namespace fdp
{

ManagedPrefetcher::ManagedPrefetcher(
    const ManagerParams &params,
    std::vector<std::unique_ptr<Prefetcher>> zoo)
    : params_(params), zoo_(std::move(zoo)), level_(params.initialLevel),
      score_(zoo_.size(), 0.0), wins_(zoo_.size(), 0)
{
    if (zoo_.empty())
        fatal("prefetcher manager needs a nonempty zoo");
    if (params_.exploreIntervals == 0 || params_.exploitIntervals == 0)
        fatal("prefetcher manager needs nonzero explore/exploit intervals");
    for (std::size_t i = 0; i < zoo_.size(); ++i) {
        if (!zoo_[i])
            fatal("prefetcher manager: zoo candidate %zu is null", i);
        for (std::size_t k = i + 1; k < zoo_.size(); ++k)
            if (zoo_[k] &&
                std::strcmp(zoo_[i]->name(), zoo_[k]->name()) == 0)
                fatal("prefetcher manager: duplicate zoo candidate `%s'",
                      zoo_[i]->name());
    }
    setAggressiveness(params_.initialLevel);
    activate(0);
}

void
ManagedPrefetcher::setAggressiveness(unsigned level)
{
    if (level < kMinAggrLevel || level > kMaxAggrLevel)
        panic("prefetcher manager: bad aggressiveness level %u", level);
    level_ = level;
    zoo_[active_]->setAggressiveness(level);
}

void
ManagedPrefetcher::reset()
{
    for (auto &pf : zoo_)
        pf->reset();
    phase_ = Phase::Explore;
    exploreIdx_ = 0;
    incumbent_ = 0;
    haveIncumbent_ = false;
    exploitBase_ = 0.0;
    primed_ = false;
    intervalInPhase_ = 0;
    std::fill(score_.begin(), score_.end(), 0.0);
    std::fill(wins_.begin(), wins_.end(), std::uint64_t{0});
    lastRetired_ = 0;
    lastCycle_ = 0;
    ticks_ = 0;
    activate(0);
}

void
ManagedPrefetcher::activate(std::size_t idx)
{
    active_ = idx;
    // The incoming candidate inherits the published FDP level, so
    // throttling decisions survive reconfiguration.
    zoo_[active_]->setAggressiveness(level_);
}

void
ManagedPrefetcher::finishRound()
{
    // Strict > keeps ties at the lowest index: deterministic, and the
    // zoo's order encodes the tie-break preference.
    std::size_t best = 0;
    for (std::size_t i = 1; i < score_.size(); ++i)
        if (score_[i] > score_[best])
            best = i;
    // Hysteresis: an incumbent is only dethroned by a challenger that
    // beats its CURRENT round score by a clear margin, so two
    // near-equal candidates do not thrash.
    if (haveIncumbent_ && best != incumbent_) {
        const double bar =
            score_[incumbent_] * (1.0 + params_.hysteresisPct / 100.0);
        if (score_[best] <= bar)
            best = incumbent_;
    }
    incumbent_ = best;
    haveIncumbent_ = true;
    // The collapse baseline is NOT the election score: exploration
    // intervals misprice a candidate (cold caches inflate them, the
    // retraining that follows reactivation deflates them). The first
    // exploit interval primes the baseline instead.
    exploitBase_ = 0.0;
    ++wins_[best];
    phase_ = Phase::Exploit;
    intervalInPhase_ = 0;
    // Park the cursor inside the zoo while exploiting: the walk that
    // just finished left it one past the end, which the audit (and any
    // snapshot taken mid-exploit) would reject as a desync.
    exploreIdx_ = 0;
    activate(best);
}

void
ManagedPrefetcher::startExploreRound()
{
    phase_ = Phase::Explore;
    intervalInPhase_ = 0;
    std::fill(score_.begin(), score_.end(), 0.0);
    exploreIdx_ = 0;
    activate(0);
}

void
ManagedPrefetcher::intervalTick(const ManagerSignal &signal)
{
    ++ticks_;
    if (!primed_) {
        // First boundary after construction/reset: the cumulative
        // retired/cycle baselines are unknown (cycles do not restart at
        // a measurement boundary), so this tick only calibrates.
        primed_ = true;
        lastRetired_ = signal.retired;
        lastCycle_ = signal.cycle;
        return;
    }
    const std::uint64_t dInsts =
        signal.retired >= lastRetired_ ? signal.retired - lastRetired_ : 0;
    const Cycle dCycles =
        signal.cycle >= lastCycle_ ? signal.cycle - lastCycle_ : 0;
    lastRetired_ = signal.retired;
    lastCycle_ = signal.cycle;
    const double ipc =
        dCycles > 0 ? static_cast<double>(dInsts) /
                          static_cast<double>(dCycles)
                    : 0.0;
    // Interval IPC carries the performance signal; the feedback metrics
    // break near-ties toward candidates that earn their bandwidth
    // (penalize pollution, mildly reward accuracy).
    const double score = ipc * (1.0 - 0.5 * signal.pollution) *
                         (1.0 + 0.05 * signal.accuracy);

    if (phase_ == Phase::Explore) {
        score_[exploreIdx_] += score;
        if (++intervalInPhase_ < params_.exploreIntervals)
            return;
        intervalInPhase_ = 0;
        if (++exploreIdx_ < zoo_.size())
            activate(exploreIdx_);
        else
            finishRound();
        return;
    }
    // Exploit: ride the incumbent until the schedule expires — or until
    // its score collapses below the best it has shown this phase,
    // which is how a program phase change looks from here. The first
    // exploit interval covers the incumbent's retraining after
    // reactivation, so it primes the baseline instead of being judged
    // against one.
    if (intervalInPhase_ == 0) {
        exploitBase_ = score;
    } else {
        const bool collapsed =
            params_.reexploreDropPct > 0.0 &&
            score <
                exploitBase_ * (1.0 - params_.reexploreDropPct / 100.0);
        if (collapsed) {
            startExploreRound();
            return;
        }
        exploitBase_ = std::max(exploitBase_, score);
    }
    if (++intervalInPhase_ >= params_.exploitIntervals)
        startExploreRound();
}

void
ManagedPrefetcher::audit() const
{
    FDP_ASSERT(level_ >= kMinAggrLevel && level_ <= kMaxAggrLevel,
               "%s: aggressiveness level %u outside [%u, %u]", auditName(),
               level_, kMinAggrLevel, kMaxAggrLevel);
    FDP_ASSERT(!zoo_.empty(), "%s: empty zoo", auditName());
    FDP_ASSERT(active_ < zoo_.size(),
               "%s: active candidate %zu outside zoo of %zu", auditName(),
               active_, zoo_.size());
    FDP_ASSERT(exploreIdx_ < zoo_.size(),
               "%s: exploration cursor %zu outside zoo of %zu",
               auditName(), exploreIdx_, zoo_.size());
    FDP_ASSERT(incumbent_ < zoo_.size(),
               "%s: incumbent %zu outside zoo of %zu", auditName(),
               incumbent_, zoo_.size());
    FDP_ASSERT(phase_ != Phase::Explore || active_ == exploreIdx_,
               "%s: exploring candidate %zu but candidate %zu is live",
               auditName(), exploreIdx_, active_);
    const unsigned bound = phase_ == Phase::Explore
                               ? params_.exploreIntervals
                               : params_.exploitIntervals;
    FDP_ASSERT(intervalInPhase_ < bound,
               "%s: %u intervals into a phase bounded by %u", auditName(),
               intervalInPhase_, bound);
    FDP_ASSERT(score_.size() == zoo_.size() && wins_.size() == zoo_.size(),
               "%s: bookkeeping sized %zu/%zu for a zoo of %zu",
               auditName(), score_.size(), wins_.size(), zoo_.size());
    FDP_ASSERT(zoo_[active_]->aggressiveness() == level_,
               "%s: active candidate `%s' at level %u, manager at %u",
               auditName(), zoo_[active_]->name(),
               zoo_[active_]->aggressiveness(), level_);
    for (const auto &pf : zoo_)
        pf->audit();
}

void
ManagedPrefetcher::saveState(SnapWriter &w) const
{
    w.beginSection(snapName());
    w.putU8(static_cast<std::uint8_t>(level_));
    w.putU64(ticks_);
    w.putU8(static_cast<std::uint8_t>(phase_));
    w.putU32(static_cast<std::uint32_t>(active_));
    w.putU32(static_cast<std::uint32_t>(exploreIdx_));
    w.putU32(static_cast<std::uint32_t>(incumbent_));
    w.putBool(haveIncumbent_);
    w.putDouble(exploitBase_);
    w.putBool(primed_);
    w.putU32(intervalInPhase_);
    w.putU64(lastRetired_);
    w.putU64(lastCycle_);
    w.putU32(static_cast<std::uint32_t>(zoo_.size()));
    for (std::size_t i = 0; i < zoo_.size(); ++i) {
        w.putString(zoo_[i]->name());
        w.putDouble(score_[i]);
        w.putU64(wins_[i]);
    }
    // The zoo's own state nests as an opaque blob: each candidate
    // writes its usual single section into an inner body, so the
    // machine-level snapshot still sees exactly one "manager" section.
    SnapWriter inner;
    for (const auto &pf : zoo_)
        pf->saveState(inner);
    w.putBytes(inner.bytes());
    w.endSection();
}

void
ManagedPrefetcher::loadState(SnapReader &r)
{
    r.openSection(snapName());
    const unsigned level = r.getU8();
    if (level < kMinAggrLevel || level > kMaxAggrLevel)
        fatal("snapshot: prefetcher manager level %u out of range", level);
    level_ = level;
    ticks_ = r.getU64();
    const std::uint8_t phase = r.getU8();
    if (phase > static_cast<std::uint8_t>(Phase::Exploit))
        fatal("snapshot: prefetcher manager phase %u unknown", phase);
    phase_ = static_cast<Phase>(phase);
    active_ = r.getU32();
    exploreIdx_ = r.getU32();
    incumbent_ = r.getU32();
    haveIncumbent_ = r.getBool();
    exploitBase_ = r.getDouble();
    primed_ = r.getBool();
    intervalInPhase_ = r.getU32();
    lastRetired_ = r.getU64();
    lastCycle_ = r.getU64();
    const std::uint32_t n = r.getU32();
    if (n != zoo_.size())
        fatal("snapshot: manager zoo holds %zu candidates, snapshot has %u",
              zoo_.size(), n);
    if (active_ >= zoo_.size() || exploreIdx_ >= zoo_.size() ||
        incumbent_ >= zoo_.size())
        fatal("snapshot: manager candidate indices (%zu, %zu, %zu) outside "
              "zoo of %zu",
              active_, exploreIdx_, incumbent_, zoo_.size());
    for (std::size_t i = 0; i < zoo_.size(); ++i) {
        const std::string name = r.getString();
        if (name != zoo_[i]->name())
            fatal("snapshot: manager zoo candidate %zu is `%s', snapshot "
                  "has `%s'",
                  i, zoo_[i]->name(), name.c_str());
        score_[i] = r.getDouble();
        wins_[i] = r.getU64();
    }
    const std::vector<std::uint8_t> blob = r.getBytes();
    SnapReader inner(blob);
    for (auto &pf : zoo_)
        pf->loadState(inner);
    if (!inner.atEnd())
        fatal("snapshot: manager zoo blob has trailing bytes");
    r.closeSection();
}

void
ManagedPrefetcher::doObserve(const PrefetchObservation &obs,
                             std::vector<BlockAddr> &out,
                             std::size_t budget)
{
    zoo_[active_]->observe(obs, out, budget);
}

} // namespace fdp
