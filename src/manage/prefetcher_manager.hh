/**
 * @file
 * Runtime prefetcher management: the adaptive layer above FDP.
 *
 * FDP (the paper) throttles ONE prefetcher's aggressiveness from
 * accuracy/lateness/pollution feedback. This subsystem goes one level
 * up and chooses WHICH prefetcher runs, POWER7-style (Jimenez et al.,
 * "Adaptive and application dependent runtime guided hardware
 * prefetcher reconfiguration on the IBM POWER7", PAPERS.md):
 * ManagedPrefetcher owns a zoo of candidate prefetchers behind the
 * ordinary Prefetcher interface, and an exploration/exploitation FSM
 * driven at FDP sampling-interval boundaries scores each candidate
 * for `exploreIntervals` intervals (pollution-penalized interval IPC),
 * then exploits the winner — with hysteresis so an incumbent is only
 * dethroned by a clearly better challenger — for `exploitIntervals`
 * intervals before re-exploring.
 *
 * The FSM is a pure function of its intervalTick() sequence: no RNG,
 * no wall clock, so sweeps stay bit-identical across --jobs and the
 * whole manager (zoo included) snapshots for warm-fork.
 *
 * Layering: this subsystem sees only the abstract Prefetcher
 * interface. Candidate construction from RunConfig lives in
 * src/harness/ (makeRunPrefetcher); interval wiring lives in the FDP
 * controller's end-of-interval hook.
 */

#ifndef FDP_MANAGE_PREFETCHER_MANAGER_HH
#define FDP_MANAGE_PREFETCHER_MANAGER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace fdp
{

/** Exploration/exploitation schedule knobs. */
struct ManagerParams
{
    /** Intervals each candidate is scored for per exploration round.
     *  Sampling intervals are long (half the L2's blocks in evictions),
     *  so one interval per candidate keeps exploration cheap: with the
     *  default five-way zoo an exploration round costs five intervals
     *  against 96 spent exploiting the winner. */
    unsigned exploreIntervals = 1;
    /** Intervals the winner runs before the next exploration round. */
    unsigned exploitIntervals = 96;
    /** A challenger must beat the incumbent's round score by this many
     *  percent to dethrone it. */
    double hysteresisPct = 3.0;
    /** An exploit-phase interval scoring this many percent below the
     *  incumbent's best exploit interval this phase triggers an
     *  immediate exploration round: a program phase change dethrones
     *  the incumbent within an interval or two instead of after
     *  exploitIntervals. The first exploit interval only primes the
     *  baseline (it covers the incumbent's retraining after
     *  reactivation). 0 disables the early trigger (purely periodic
     *  re-exploration). */
    double reexploreDropPct = 25.0;
    /** Initial aggressiveness level (1..5) for every candidate. */
    unsigned initialLevel = kInitialAggrLevel;
};

/** One sampling interval's feedback, delivered at the boundary. */
struct ManagerSignal
{
    /** FDP feedback metrics for the interval that just closed. */
    double accuracy = 0.0;
    double lateness = 0.0;
    double pollution = 0.0;
    /** Cumulative retired micro-ops (monotone within a run). */
    std::uint64_t retired = 0;
    /** Cumulative simulated cycles (the event-queue horizon). */
    Cycle cycle = 0;
};

/**
 * A composite prefetcher that runs exactly one zoo candidate at a time
 * and reconfigures at sampling-interval boundaries. To the memory
 * system and the FDP controller it is an ordinary Prefetcher: observe()
 * delegates to the active candidate and setAggressiveness() follows it
 * across switches, so FDP throttling keeps working unchanged on
 * whichever candidate is live.
 */
class ManagedPrefetcher : public Prefetcher
{
  public:
    /** Reconfiguration FSM phases. */
    enum class Phase : std::uint8_t
    {
        Explore,
        Exploit,
    };

    /** Takes ownership of the zoo; fatal on an empty zoo or a null or
     *  duplicate-named candidate. Exploration starts at candidate 0. */
    ManagedPrefetcher(const ManagerParams &params,
                      std::vector<std::unique_ptr<Prefetcher>> zoo);

    void setAggressiveness(unsigned level) override;
    unsigned aggressiveness() const override { return level_; }
    const char *name() const override { return "manager"; }
    void reset() override;

    /**
     * Consume one closed sampling interval. The first tick after
     * construction/reset only primes the IPC baseline; every later
     * tick scores the active candidate and advances the FSM.
     */
    void intervalTick(const ManagerSignal &signal);

    Phase phase() const { return phase_; }
    std::size_t zooSize() const { return zoo_.size(); }
    std::size_t activeIndex() const { return active_; }
    const Prefetcher &candidate(std::size_t i) const { return *zoo_[i]; }
    const char *activeName() const { return zoo_[active_]->name(); }
    /** Exploration rounds candidate @p i has won (convergence metric). */
    std::uint64_t roundsWon(std::size_t i) const { return wins_[i]; }
    /** Completed intervalTick() calls since construction/reset. */
    std::uint64_t ticks() const { return ticks_; }

    /**
     * Invariants: aggressiveness level in range; FSM indices inside the
     * zoo; Explore phase runs the candidate it is scoring; phase
     * progress below its bound; the active candidate holds the
     * published aggressiveness level; score/win vectors sized to the
     * zoo; every candidate's own audit passes.
     */
    void audit() const override;

    /**
     * One "manager" section: FSM control state, the zoo's candidate
     * names (verified on load), and a nested snapshot body holding
     * each candidate's own section as an opaque blob.
     */
    void saveState(SnapWriter &w) const override;
    void loadState(SnapReader &r) override;

  private:
    friend struct AuditCorrupter;

    void doObserve(const PrefetchObservation &obs,
                   std::vector<BlockAddr> &out,
                   std::size_t budget) override;

    /** Make candidate @p idx the live one at the published level. */
    void activate(std::size_t idx);
    /** Close an exploration round: crown a winner, enter Exploit. */
    void finishRound();
    /** Zero the scores and begin exploring from candidate 0. */
    void startExploreRound();

    ManagerParams params_;
    std::vector<std::unique_ptr<Prefetcher>> zoo_;
    unsigned level_;
    Phase phase_ = Phase::Explore;
    /** Candidate currently observing the access stream. */
    std::size_t active_ = 0;
    /** Candidate the current exploration round is scoring. */
    std::size_t exploreIdx_ = 0;
    /** Winner of the last completed round (valid once haveIncumbent_). */
    std::size_t incumbent_ = 0;
    bool haveIncumbent_ = false;
    /** Best exploit-interval score the incumbent has shown this phase
     *  (primed by the first exploit interval); the baseline the
     *  reexploreDropPct early trigger compares against. */
    double exploitBase_ = 0.0;
    /** True once the IPC baseline has been primed by a first tick. */
    bool primed_ = false;
    unsigned intervalInPhase_ = 0;
    /** Accumulated score per candidate, current round. */
    std::vector<double> score_;
    /** Exploration rounds won per candidate (lifetime). */
    std::vector<std::uint64_t> wins_;
    std::uint64_t lastRetired_ = 0;
    Cycle lastCycle_ = 0;
    std::uint64_t ticks_ = 0;
};

} // namespace fdp

#endif // FDP_MANAGE_PREFETCHER_MANAGER_HH
