/**
 * @file
 * Trace-driven out-of-order core model (paper Table 3).
 *
 * Models the properties that matter to the prefetcher feedback loop:
 * a 128-entry reorder buffer bounding memory-level parallelism, 8-wide
 * dispatch and retirement, loads that complete when the memory hierarchy
 * responds, non-blocking stores, and serialized dependent (pointer-
 * chasing) loads. Branch prediction and wrong-path execution are not
 * modeled (see DESIGN.md substitutions).
 */

#ifndef FDP_CPU_OOO_CORE_HH
#define FDP_CPU_OOO_CORE_HH

#include <cstdint>
#include <vector>

#include "mem/memory_system.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "workload/workload.hh"

namespace fdp
{

/** Core configuration (paper Table 3). */
struct CoreParams
{
    unsigned robSize = 128;
    unsigned width = 8;
};

/** ROB-limited out-of-order core. */
class OooCore
{
  public:
    OooCore(const CoreParams &params, MemorySystem &mem, EventQueue &events,
            Workload &workload, StatGroup &stats);

    /** Simulate until @p numInsts micro-ops have retired. */
    void run(std::uint64_t numInsts);

    std::uint64_t cycles() const { return cycles_.value(); }
    std::uint64_t retired() const { return retired_.value(); }

    /** Retired micro-ops per cycle. */
    double ipc() const;

  private:
    struct RobEntry
    {
        OpKind kind = OpKind::Int;
        Addr addr = 0;
        Addr pc = 0;
        bool done = false;
        Cycle doneCycle = 0;
        bool issued = false;
        /** Generation tag so stale memory callbacks are ignored. */
        std::uint64_t seq = 0;
        /** ROB slot of a dependent load waiting on this one, or -1. */
        int waiter = -1;
    };

    void dispatchOne(Cycle now);
    void issueLoad(unsigned slot, Cycle now);
    void loadComplete(unsigned slot, std::uint64_t seq, Cycle when);

    unsigned robIndex(std::uint64_t pos) const
    {
        return static_cast<unsigned>(pos % rob_.size());
    }

    CoreParams params_;
    MemorySystem &mem_;
    EventQueue &events_;
    Workload &workload_;

    std::vector<RobEntry> rob_;
    std::uint64_t head_ = 0;  ///< oldest occupied position
    std::uint64_t tail_ = 0;  ///< next free position
    std::uint64_t nextSeq_ = 1;
    /** ROB position of the most recently dispatched load (or none). */
    std::uint64_t lastLoadPos_ = ~std::uint64_t{0};

    ScalarStat cycles_;
    ScalarStat retired_;
    ScalarStat loads_;
    ScalarStat stores_;
    ScalarStat robFullCycles_;
};

} // namespace fdp

#endif // FDP_CPU_OOO_CORE_HH
