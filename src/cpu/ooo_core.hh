/**
 * @file
 * Trace-driven out-of-order core model (paper Table 3).
 *
 * Models the properties that matter to the prefetcher feedback loop:
 * a 128-entry reorder buffer bounding memory-level parallelism, 8-wide
 * dispatch and retirement, loads that complete when the memory hierarchy
 * responds, non-blocking stores, and serialized dependent (pointer-
 * chasing) loads. Branch prediction and wrong-path execution are not
 * modeled (see DESIGN.md substitutions).
 */

#ifndef FDP_CPU_OOO_CORE_HH
#define FDP_CPU_OOO_CORE_HH

#include <cstdint>
#include <vector>

#include "mem/memory_port.hh"
#include "sim/event_queue.hh"
#include "sim/snapshot.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "workload/workload.hh"

namespace fdp
{

/** Core configuration (paper Table 3). */
struct CoreParams
{
    unsigned robSize = 128;
    unsigned width = 8;
};

/**
 * ROB-limited out-of-order core.
 *
 * Two driving styles share the same per-cycle machinery:
 *  - run() owns the event loop and simulates a whole single-core run;
 *  - the multi-core driver calls beginRun() once, then step() every
 *    cycle it chooses to simulate, using runDone()/wakeCycle()/
 *    noteDeadTime() to interleave several cores deterministically on
 *    one event queue and closeRun() to account the final cycle count.
 */
class OooCore : public Snapshottable
{
  public:
    OooCore(const CoreParams &params, MemoryPort &mem, EventQueue &events,
            Workload &workload, StatGroup &stats);

    /** Simulate until @p numInsts micro-ops have retired. */
    void run(std::uint64_t numInsts);

    /// @name Stepped driving (multi-core interleaving)
    /// @{

    /** Arm a run budget of @p numInsts micro-ops without simulating. */
    void beginRun(std::uint64_t numInsts);

    /**
     * Retire then dispatch up to `width` micro-ops at cycle @p now.
     * Returns true when any micro-op retired or dispatched. The caller
     * must have serviced the event queue up to @p now first.
     */
    bool step(Cycle now);

    /** True once the armed budget has fully retired. */
    bool runDone() const { return retiredCount_ >= budget_; }

    /**
     * Cycle at which the head-of-ROB micro-op can retire, or kNoCycle
     * when the ROB is empty or the head still waits on memory (in that
     * case a pending event-queue callback will complete it).
     */
    Cycle wakeCycle() const;

    /** Record @p cycles of dispatch stall if the ROB is full. */
    void noteDeadTime(Cycle cycles);

    /** Account a finished run spanning cycles @p start .. @p end. */
    void closeRun(Cycle start, Cycle end);

    bool robEmpty() const { return head_ == tail_; }
    bool robFull() const { return tail_ - head_ == rob_.size(); }

    /// @}

    std::uint64_t cycles() const { return cycles_.value(); }
    std::uint64_t retired() const { return retired_.value() + retiredAcc_; }

    /** Retired micro-ops per cycle. */
    double ipc() const;

    /**
     * Snapshots are taken only between runs with an empty ROB (occupied
     * slots hold in-flight loads whose completion callbacks cannot be
     * serialized): just the ROB cursors and the generation counter are
     * carried, so dispatch resumes with fresh slots and exact sequence
     * numbering. The run budget is per-run state armed by beginRun().
     */
    void saveState(SnapWriter &w) const override;
    void loadState(SnapReader &r) override;
    const char *snapName() const override { return "core"; }

  private:
    struct RobEntry
    {
        OpKind kind = OpKind::Int;
        Addr addr = 0;
        Addr pc = 0;
        bool done = false;
        Cycle doneCycle = 0;
        bool issued = false;
        /** Generation tag so stale memory callbacks are ignored. */
        std::uint64_t seq = 0;
        /** ROB slot of a dependent load waiting on this one, or -1. */
        int waiter = -1;
    };

    void issueLoad(unsigned slot, Cycle now);
    void loadComplete(unsigned slot, std::uint64_t seq, Cycle when);

    unsigned robIndex(std::uint64_t pos) const
    {
        return static_cast<unsigned>(pos % rob_.size());
    }

    CoreParams params_;
    MemoryPort &mem_;
    EventQueue &events_;
    Workload &workload_;

    std::vector<RobEntry> rob_;
    std::uint64_t head_ = 0;  ///< oldest occupied position
    std::uint64_t tail_ = 0;  ///< next free position
    std::uint64_t nextSeq_ = 1;
    /** ROB position of the most recently dispatched load (or none). */
    std::uint64_t lastLoadPos_ = ~std::uint64_t{0};

    /** Armed run budget (micro-ops to retire). */
    std::uint64_t budget_ = 0;
    /** Micro-ops dispatched toward the current budget. */
    std::uint64_t dispatchedCount_ = 0;
    /** Micro-ops retired toward the current budget. */
    std::uint64_t retiredCount_ = 0;

    /**
     * Per-run accumulators for the per-op counters, published into the
     * stat group by closeRun(): the step loop then touches plain
     * integers instead of registered statistics. Zero outside a
     * beginRun()/closeRun() pair; retired() folds the pending count in.
     */
    std::uint64_t retiredAcc_ = 0;
    std::uint64_t loadsAcc_ = 0;
    std::uint64_t storesAcc_ = 0;
    std::uint64_t robFullAcc_ = 0;

    ScalarStat cycles_;
    ScalarStat retired_;
    ScalarStat loads_;
    ScalarStat stores_;
    ScalarStat robFullCycles_;
};

} // namespace fdp

#endif // FDP_CPU_OOO_CORE_HH
