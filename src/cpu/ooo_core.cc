#include "cpu/ooo_core.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace fdp
{

namespace
{
constexpr std::uint64_t kNoPos = ~std::uint64_t{0};
} // namespace

OooCore::OooCore(const CoreParams &params, MemoryPort &mem,
                 EventQueue &events, Workload &workload, StatGroup &stats)
    : params_(params), mem_(mem), events_(events), workload_(workload),
      rob_(params.robSize),
      cycles_(stats, "cycles", "simulated cycles"),
      retired_(stats, "retired", "retired micro-ops"),
      loads_(stats, "loads", "retired loads"),
      stores_(stats, "stores", "retired stores"),
      robFullCycles_(stats, "rob_full_cycles",
                     "cycles dispatch stalled on a full ROB")
{
    if (params_.robSize == 0 || params_.width == 0)
        fatal("core needs nonzero ROB size and width");
    lastLoadPos_ = kNoPos;
}

void
OooCore::issueLoad(unsigned slot, Cycle now)
{
    RobEntry &e = rob_[slot];
    e.issued = true;
    const std::uint64_t seq = e.seq;
    mem_.demandAccess(e.addr, e.pc, false, now,
                      [this, slot, seq](Cycle c) {
                          loadComplete(slot, seq, c);
                      });
}

void
OooCore::loadComplete(unsigned slot, std::uint64_t seq, Cycle when)
{
    RobEntry &e = rob_[slot];
    if (e.seq != seq)
        return;  // the slot was recycled; stale callback
    e.done = true;
    e.doneCycle = when;
    if (e.waiter >= 0) {
        const unsigned w = static_cast<unsigned>(e.waiter);
        e.waiter = -1;
        issueLoad(w, when);
    }
}

void
OooCore::beginRun(std::uint64_t numInsts)
{
    budget_ = numInsts;
    dispatchedCount_ = 0;
    retiredCount_ = 0;
    retiredAcc_ = 0;
    loadsAcc_ = 0;
    storesAcc_ = 0;
    robFullAcc_ = 0;
}

bool
OooCore::step(Cycle now)
{
    // Retire up to `width` completed micro-ops in program order.
    unsigned r = 0;
    while (r < params_.width && head_ != tail_) {
        RobEntry &h = rob_[robIndex(head_)];
        if (!h.done || h.doneCycle > now)
            break;
        ++head_;
        ++retiredCount_;
        ++r;
    }
    retiredAcc_ += r;

    // Dispatch up to `width` new micro-ops while the ROB has room.
    // Dispatch never exceeds the budget, so the run ends with exactly
    // `budget_` retirements and an empty ROB.
    unsigned d = 0;
    while (d < params_.width && tail_ - head_ < rob_.size() &&
           dispatchedCount_ < budget_) {
        const MicroOp op = workload_.next();
        const std::uint64_t pos = tail_++;
        const unsigned slot = robIndex(pos);
        RobEntry &e = rob_[slot];
        e = RobEntry{};
        e.seq = nextSeq_++;
        e.kind = op.kind;
        e.addr = op.addr;
        e.pc = op.pc;

        switch (op.kind) {
          case OpKind::Int:
            e.done = true;
            e.doneCycle = now + 1;
            e.issued = true;
            break;
          case OpKind::Store:
            ++storesAcc_;
            // Stores drain through the store buffer: they access the
            // hierarchy but never block retirement.
            mem_.demandAccess(op.addr, op.pc, true, now, [](Cycle) {});
            e.done = true;
            e.doneCycle = now + 1;
            e.issued = true;
            break;
          case OpKind::Load: {
            ++loadsAcc_;
            bool issue_now = true;
            if (op.depPrevLoad && lastLoadPos_ != kNoPos &&
                lastLoadPos_ >= head_) {
                RobEntry &prod = rob_[robIndex(lastLoadPos_)];
                if (!prod.done) {
                    prod.waiter = static_cast<int>(slot);
                    issue_now = false;
                }
            }
            if (issue_now)
                issueLoad(slot, now);
            lastLoadPos_ = pos;
            break;
          }
        }
        ++d;
        ++dispatchedCount_;
    }

    return r + d > 0;
}

Cycle
OooCore::wakeCycle() const
{
    if (head_ == tail_)
        return kNoCycle;
    const RobEntry &h = rob_[robIndex(head_)];
    return h.done ? h.doneCycle : kNoCycle;
}

void
OooCore::noteDeadTime(Cycle cycles)
{
    if (robFull())
        robFullAcc_ += cycles;
}

void
OooCore::closeRun(Cycle start, Cycle end)
{
    cycles_ += (end - start) + 1;
    // Publish the per-op counters batched across the run.
    retired_ += retiredAcc_;
    loads_ += loadsAcc_;
    stores_ += storesAcc_;
    robFullCycles_ += robFullAcc_;
    retiredAcc_ = 0;
    loadsAcc_ = 0;
    storesAcc_ = 0;
    robFullAcc_ = 0;
}

void
OooCore::run(std::uint64_t numInsts)
{
    beginRun(numInsts);
    Cycle cyc = events_.horizon();
    const Cycle start = cyc;

    while (!runDone()) {
        events_.serviceUntil(cyc);
        const bool progressed = step(cyc);
        if (runDone())
            break;

        // Advance the clock, skipping dead time when fully stalled.
        Cycle nxt = cyc + 1;
        if (!progressed) {
            Cycle target = std::min(events_.nextEventCycle(), wakeCycle());
            if (target == kNoCycle) {
                if (!robEmpty())
                    panic("core deadlock: stalled with no pending events");
                target = cyc + 1;
            }
            if (target > cyc)
                nxt = target;
            noteDeadTime(nxt - cyc);
        }
        cyc = nxt;
    }

    closeRun(start, cyc);
}

void
OooCore::saveState(SnapWriter &w) const
{
    FDP_ASSERT(robEmpty(),
               "core: snapshot with %llu micro-ops in the ROB",
               static_cast<unsigned long long>(tail_ - head_));
    w.beginSection(snapName());
    w.putU32(static_cast<std::uint32_t>(rob_.size()));
    w.putU64(head_);
    w.putU64(tail_);
    w.putU64(nextSeq_);
    w.putU64(lastLoadPos_);
    w.endSection();
}

void
OooCore::loadState(SnapReader &r)
{
    FDP_ASSERT(robEmpty(),
               "core: restore with %llu micro-ops in the ROB",
               static_cast<unsigned long long>(tail_ - head_));
    r.openSection(snapName());
    const std::uint32_t rob_size = r.getU32();
    if (rob_size != rob_.size())
        fatal("snapshot: ROB holds %zu entries, snapshot has %u",
              rob_.size(), rob_size);
    head_ = r.getU64();
    tail_ = r.getU64();
    nextSeq_ = r.getU64();
    lastLoadPos_ = r.getU64();
    r.closeSection();
    if (head_ != tail_)
        fatal("snapshot: core section holds a non-empty ROB");
}

double
OooCore::ipc() const
{
    return ratio(static_cast<double>(retired()),
                 static_cast<double>(cycles_.value()));
}

} // namespace fdp
