#include "dram/dram_backend.hh"

#include <cmath>

#include "sim/logging.hh"

namespace fdp
{

Cycle
DramParams::transferCycles() const
{
    return static_cast<Cycle>(
        std::ceil(static_cast<double>(kBlockBytes) / busBytesPerCycle));
}

Cycle
DramParams::unloadedLatency() const
{
    return accessRowConflict + transferCycles() + returnCycles;
}

DramParams
DramParams::withUnloadedLatency(Cycle total)
{
    DramParams p;
    const Cycle transfer = p.transferCycles();
    if (total < transfer + 20)
        fatal("unloaded DRAM latency %llu too small",
              static_cast<unsigned long long>(total));
    const Cycle rest = total - transfer;
    p.accessRowConflict = rest / 2;
    p.accessRowHit = (p.accessRowConflict * 3) / 5;
    p.returnCycles = rest - p.accessRowConflict;
    return p;
}

} // namespace fdp
