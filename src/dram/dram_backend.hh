/**
 * @file
 * The DRAM backend seam: the parameter structs, the request priority /
 * accuracy-tier vocabulary, and the abstract interface both memory
 * systems talk to (DESIGN.md §18).
 *
 * Two implementations exist:
 *  - the flat bandwidth-limited model of paper Table 3
 *    (mem/dram.hh, the default baseline), and
 *  - the FR-FCFS multi-channel controller (dram/dram_controller.hh,
 *    opt-in via DramKind::Controller) that adds per-bank queues,
 *    row-policy knobs, accuracy-directed prefetch priority, and
 *    per-core bandwidth QoS.
 *
 * This layer knows nothing above sim/: the memory systems pick an
 * implementation, the FDP controller supplies the PrefetchTier.
 */

#ifndef FDP_DRAM_DRAM_BACKEND_HH
#define FDP_DRAM_DRAM_BACKEND_HH

#include <cstddef>
#include <cstdint>

#include "sim/check.hh"
#include "sim/inline_function.hh"
#include "sim/snapshot.hh"
#include "sim/types.hh"

namespace fdp
{

/** DRAM timing/geometry parameters (paper Table 3). */
struct DramParams
{
    unsigned banks = 32;
    /** Blocks per DRAM row (128 x 64B = 8KB rows). */
    unsigned rowBlocks = 128;
    /** Bank access phase, row-buffer hit (cycles). */
    Cycle accessRowHit = 150;
    /** Bank access phase, row conflict (cycles). */
    Cycle accessRowConflict = 250;
    /** Open-row command cadence: bank busy per pipelined row hit. */
    Cycle casToCASCycles = 8;
    /** Data-bus bandwidth (4.5 GB/s at 4 GHz = 1.125 B/cycle). */
    double busBytesPerCycle = 1.125;
    /** Fixed fill/return overhead after the transfer (cycles). */
    Cycle returnCycles = 193;
    /** Capacity of a bus-request queue (per channel, for controllers). */
    std::size_t queueCapacity = 128;
    /** Writebacks get demand priority beyond this backlog. */
    std::size_t writebackHighWater = 64;

    /** Cycles one block occupies the data bus. */
    Cycle transferCycles() const;

    /** Unloaded row-conflict latency (the paper's "minimum" 500). */
    Cycle unloadedLatency() const;

    /** Bank access phase with the bank precharged but no row open
     *  (activate without the preceding precharge of a conflict). */
    Cycle accessRowEmpty() const
    {
        return (accessRowHit + accessRowConflict) / 2;
    }

    /**
     * Derive a parameter set whose unloaded row-conflict latency is
     * @p total cycles (used by the Table 7 sensitivity sweep).
     */
    static DramParams withUnloadedLatency(Cycle total);
};

/** Priority of a bus request. */
enum class BusPriority : std::uint8_t { Demand, Prefetch, Writeback };

/**
 * Paper Table 2 accuracy class of the interval a prefetch was issued
 * in. The FR-FCFS controller schedules by it: High may compete with
 * demands for row hits, Medium runs behind all demands, Low runs last
 * and is droppable under queue pressure. The flat model ignores it.
 */
enum class PrefetchTier : std::uint8_t { High, Medium, Low };

/** Which DRAM backend a machine instantiates. */
enum class DramKind : std::uint8_t { Flat, Controller };

/** Row-buffer management policy of the controller. */
enum class RowPolicy : std::uint8_t { Open, Closed, Adaptive };

/** Memory-controller configuration (ignored under DramKind::Flat). */
struct DramCtrlParams
{
    DramKind kind = DramKind::Flat;
    /** Independent channels, each with its own banks, queues, and data
     *  bus. Must be a power of two dividing DramParams::rowBlocks. */
    unsigned channels = 2;
    RowPolicy rowPolicy = RowPolicy::Open;
    /** Accuracy-directed prefetch priority (the FDP tie-in). Off =
     *  accuracy-blind FR-FCFS: demands and prefetches are one class. */
    bool fdpPriority = true;
    /** Drop Low-tier prefetches once their channel's read queue holds
     *  this many requests (0 = never drop by tier). */
    std::size_t lowTierDropAt = 16;
    /** QoS: per-core cap on queued prefetches per channel (0 = off). */
    unsigned qosInFlightCap = 0;
    /** QoS: least-served-core-first tie-breaking among equal-priority
     *  scheduling candidates (weighted service). */
    bool qosWeighted = false;
};

/**
 * Abstract DRAM + memory-bus engine. Implementations own their
 * statistics (registered under the shared memory StatGroup with the
 * flat model's names, so result extraction is backend-agnostic) and
 * honor the repo contracts: audited invariants, quiesce-point
 * snapshots, and bit-identical determinism.
 */
class DramBackend : public Auditable, public Snapshottable
{
  public:
    using DoneFn = fdp::DoneFn;

    ~DramBackend() override = default;

    /**
     * Enqueue a block request on behalf of @p core. Returns false (and
     * drops the request) only for prefetches the backend refuses: a
     * full queue, a Low-tier drop under pressure, or a QoS cap. @p done
     * is invoked with the cycle at which the fill reaches the L2; pass
     * nullptr for writebacks. @p tier is the issuing core's FDP
     * accuracy class at issue time (meaningful for prefetches only).
     */
    virtual bool enqueue(BlockAddr block, BusPriority prio, Cycle now,
                         DoneFn done, CoreId core = kCore0,
                         PrefetchTier tier = PrefetchTier::High) = 0;

    /**
     * Promote a still-queued prefetch for @p block to demand priority
     * (a demand merged with it in the MSHR). No-op if already granted.
     */
    virtual void promoteToDemand(BlockAddr block) = 0;

    /** Requests currently waiting (all priorities, all channels). */
    virtual std::size_t queued() const = 0;

    /// @name Lifetime statistics
    /// @{
    virtual std::uint64_t busAccesses() const = 0;
    /** Measured data-bus occupancy, summed over every channel. */
    virtual std::uint64_t busBusyCycles() const = 0;
    virtual std::uint64_t rowHits() const = 0;
    virtual std::uint64_t rowConflicts() const = 0;

    /** Blocks transferred on the bus on behalf of @p core. */
    virtual std::uint64_t busAccessesByCore(CoreId core) const = 0;
    /// @}

    /**
     * Zero the per-core attribution counters (and any other raw
     * counters audited against registered statistics) alongside a
     * StatGroup reset at a measurement boundary.
     */
    virtual void resetAttribution() = 0;

    /** Independent data buses: busBusyCycles() can reach
     *  dataBuses() * elapsed, so utilization windows normalize by it. */
    virtual unsigned dataBuses() const = 0;

    virtual const DramParams &params() const = 0;
};

} // namespace fdp

#endif // FDP_DRAM_DRAM_BACKEND_HH
