#include "dram/dram_controller.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace fdp
{

DramController::DramController(const DramParams &params,
                               const DramCtrlParams &ctrl,
                               EventQueue &events, StatGroup &stats,
                               unsigned numCores)
    : params_(params), ctrl_(ctrl), events_(events),
      transferCycles_(params.transferCycles()),
      coreBusAccesses_(numCores, 0), coreServed_(numCores, 0),
      corePrefQueued_(numCores, 0),
      busAccesses_(stats, "bus_accesses", "blocks transferred on the bus"),
      demandGrants_(stats, "demand_grants", "demand bus grants"),
      prefetchGrants_(stats, "prefetch_grants", "prefetch bus grants"),
      writebackGrants_(stats, "writeback_grants", "writeback bus grants"),
      rowHits_(stats, "row_hits", "row-buffer hits"),
      rowConflicts_(stats, "row_conflicts", "row-buffer conflicts"),
      rowEmpties_(stats, "row_empties",
                  "accesses to a precharged bank (no open row)"),
      busBusyCycles_(stats, "bus_busy_cycles",
                     "cycles any data bus was busy (all channels)"),
      promotions_(stats, "promotions", "prefetches promoted to demand"),
      lowTierDrops_(stats, "low_tier_drops",
                    "low-accuracy prefetches dropped under queue pressure"),
      qosRejects_(stats, "qos_rejects",
                  "prefetches rejected by the per-core QoS cap")
{
    if (params_.banks == 0 || params_.rowBlocks == 0)
        fatal("DRAM needs nonzero banks and row size");
    if (numCores == 0)
        fatal("DRAM needs at least one requesting core");
    if (ctrl_.channels == 0 ||
        (ctrl_.channels & (ctrl_.channels - 1)) != 0)
        fatal("DRAM controller needs a power-of-two channel count "
              "(got %u)", ctrl_.channels);
    if (params_.rowBlocks % ctrl_.channels != 0)
        fatal("DRAM row size (%u blocks) must be a multiple of the "
              "channel count (%u) for XOR interleaving",
              params_.rowBlocks, ctrl_.channels);
    channels_.resize(ctrl_.channels);
    for (Channel &c : channels_) {
        c.bankReady.assign(params_.banks, 0);
        c.openRow.assign(params_.banks, kNoRow);
    }
}

unsigned
DramController::channelOf(BlockAddr block) const
{
    // XOR interleaving: consecutive blocks stripe across channels, and
    // folding the row index in remaps bank-conflicting strides from
    // row to row. rowBlocks % channels == 0 (checked above) keeps the
    // map injective per channel: one row's blocks never straddle the
    // same channel slot twice.
    return static_cast<unsigned>((block ^ (block / params_.rowBlocks)) %
                                 ctrl_.channels);
}

void
DramController::decode(BlockAddr block, unsigned *bank,
                       std::uint64_t *row) const
{
    const BlockAddr local = block / ctrl_.channels;
    const std::uint64_t global_row = local / params_.rowBlocks;
    *bank = static_cast<unsigned>(global_row % params_.banks);
    *row = global_row / params_.banks;
}

bool
DramController::enqueue(BlockAddr block, BusPriority prio, Cycle now,
                        DoneFn done, CoreId core, PrefetchTier tier)
{
    const unsigned ch = channelOf(block);
    Channel &c = channels_[ch];
    switch (prio) {
      case BusPriority::Demand:
        if (c.readQ.size() >= params_.queueCapacity)
            panic("demand bus queue overflow (MSHRs should bound it)");
        break;
      case BusPriority::Prefetch:
        if (c.readQ.size() >= params_.queueCapacity)
            return false;
        if (ctrl_.qosInFlightCap > 0 &&
            corePrefQueued_[core.index()] >= ctrl_.qosInFlightCap) {
            ++qosRejects_;
            return false;
        }
        if (ctrl_.fdpPriority && tier == PrefetchTier::Low &&
            ctrl_.lowTierDropAt > 0 &&
            c.readQ.size() >= ctrl_.lowTierDropAt) {
            ++lowTierDrops_;
            return false;
        }
        ++corePrefQueued_[core.index()];
        break;
      case BusPriority::Writeback:
        break;
    }
    std::deque<Request> &q =
        prio == BusPriority::Writeback ? c.wbQ : c.readQ;
    q.push_back({block, prio, tier, now, nextSeq_++, core,
                 std::move(done)});
    schedulePump(ch, now);
    return true;
}

void
DramController::promoteToDemand(BlockAddr block)
{
    Channel &c = channels_[channelOf(block)];
    auto it = std::find_if(c.readQ.begin(), c.readQ.end(),
                           [block](const Request &r) {
                               return r.block == block &&
                                      r.prio == BusPriority::Prefetch;
                           });
    if (it == c.readQ.end())
        return;  // already granted the bus; nothing to expedite
    it->prio = BusPriority::Demand;
    --corePrefQueued_[it->core.index()];
    ++promotions_;
}

std::size_t
DramController::queued() const
{
    std::size_t n = 0;
    for (const Channel &c : channels_)
        n += c.readQ.size() + c.wbQ.size();
    return n;
}

std::uint64_t
DramController::busBusyCycles() const
{
    std::uint64_t busy = 0;
    for (const Channel &c : channels_)
        busy += c.busyCycles;
    return busy;
}

std::uint64_t
DramController::busBusyCyclesOnChannel(unsigned ch) const
{
    FDP_ASSERT(ch < channels_.size(),
               "%s: channel %u of %zu asked for its occupancy",
               auditName(), ch, channels_.size());
    return channels_[ch].busyCycles;
}

std::uint64_t
DramController::busAccessesByCore(CoreId core) const
{
    FDP_ASSERT(core.index() < coreBusAccesses_.size(),
               "%s: core %u of %zu asked for its bus accesses",
               auditName(), core.index(), coreBusAccesses_.size());
    return coreBusAccesses_[core.index()];
}

void
DramController::resetAttribution()
{
    for (std::uint64_t &n : coreBusAccesses_)
        n = 0;
    // The measured occupancies are audited against the bus_busy_cycles
    // statistic, which the measurement boundary resets with its group.
    for (Channel &c : channels_)
        c.busyCycles = 0;
}

unsigned
DramController::pickClass(const Channel &c, const Request &r) const
{
    unsigned bank;
    std::uint64_t row;
    decode(r.block, &bank, &row);
    const bool row_hit = c.openRow[bank] == row;
    if (!ctrl_.fdpPriority)
        return row_hit ? 0 : 1;  // accuracy-blind FR-FCFS: one class
    if (r.prio == BusPriority::Demand)
        return row_hit ? 0 : 1;
    // A prefetch demoted below every queued demand starves outright on
    // a saturated bus, and a starved stream's accuracy collapses to
    // zero — a demotion death spiral. So only the low-accuracy tier
    // runs strictly behind demands (and is shed at enqueue): High is
    // scheduled exactly like a demand, and Medium only yields its
    // row-buffer misses.
    switch (r.tier) {
      case PrefetchTier::High:
        return row_hit ? 0 : 1;  // demand-equivalent
      case PrefetchTier::Medium:
        return row_hit ? 0 : 2;
      case PrefetchTier::Low:
        break;
    }
    return row_hit ? 3 : 4;
}

std::size_t
DramController::pickRead(const Channel &c) const
{
    std::size_t best = kNoPick;
    unsigned best_class = 0;
    std::uint64_t best_served = 0;
    for (std::size_t i = 0; i < c.readQ.size(); ++i) {
        const Request &r = c.readQ[i];
        const unsigned cls = pickClass(c, r);
        // Weighted service: among equal-class candidates the core with
        // the least read grants wins; age (queue order) breaks ties.
        const std::uint64_t served =
            ctrl_.qosWeighted ? coreServed_[r.core.index()] : 0;
        if (best == kNoPick || cls < best_class ||
            (cls == best_class && served < best_served)) {
            best = i;
            best_class = cls;
            best_served = served;
        }
    }
    return best;
}

void
DramController::schedulePump(unsigned ch, Cycle now)
{
    Channel &c = channels_[ch];
    if (c.pumpScheduled)
        return;
    c.pumpScheduled = true;
    events_.schedule(std::max(now, c.busFree), [this, ch] { pump(ch); });
}

void
DramController::pump(unsigned ch)
{
    Channel &c = channels_[ch];
    c.pumpScheduled = false;

    const std::size_t read = pickRead(c);
    Request req;
    if (read != kNoPick &&
        (c.readQ[read].prio == BusPriority::Demand ||
         pickClass(c, c.readQ[read]) == 0 ||
         c.wbQ.size() <= params_.writebackHighWater)) {
        req = std::move(c.readQ[read]);
        c.readQ.erase(c.readQ.begin() +
                      static_cast<std::ptrdiff_t>(read));
    } else if (!c.wbQ.empty() &&
               (read == kNoPick ||
                c.wbQ.size() > params_.writebackHighWater)) {
        // Writebacks run behind reads, except past the high-water
        // backlog, where they pre-empt prefetches (never a demand or a
        // head-class row hit; see above).
        req = std::move(c.wbQ.front());
        c.wbQ.pop_front();
    } else if (read != kNoPick) {
        req = std::move(c.readQ[read]);
        c.readQ.erase(c.readQ.begin() +
                      static_cast<std::ptrdiff_t>(read));
    } else {
        return;
    }

    const Cycle now = events_.horizon();
    unsigned bank;
    std::uint64_t row;
    decode(req.block, &bank, &row);

    const bool row_hit = c.openRow[bank] == row;
    const bool row_empty = !row_hit && c.openRow[bank] == kNoRow;
    const Cycle access = row_hit    ? params_.accessRowHit
                         : row_empty ? params_.accessRowEmpty()
                                     : params_.accessRowConflict;

    // Same bank/bus pipeline as the flat model, per channel: open-row
    // hits pipeline at the CAS cadence, activates (empty or conflict)
    // occupy the bank until their transfer ends, and the data transfer
    // serializes on the channel's bus.
    const Cycle access_start =
        std::max(req.enqueueCycle, c.bankReady[bank]);
    const Cycle data_start =
        std::max({access_start + access, c.busFree, now});
    const Cycle data_end = data_start + transferCycles_;

    c.busFree = data_end;
    c.bankReady[bank] =
        row_hit ? access_start + params_.casToCASCycles : data_end;
    switch (ctrl_.rowPolicy) {
      case RowPolicy::Open:
        c.openRow[bank] = row;
        break;
      case RowPolicy::Closed:
        c.openRow[bank] = kNoRow;  // auto-precharge
        break;
      case RowPolicy::Adaptive:
        // Precharge after a conflict (the open row is not earning its
        // keep); stay open after hits and first-touch activates.
        c.openRow[bank] = row_hit || row_empty ? row : kNoRow;
        break;
    }

    ++busAccesses_;
    ++coreBusAccesses_[req.core.index()];
    c.busyCycles += transferCycles_;
    busBusyCycles_ += transferCycles_;
    if (row_hit)
        ++rowHits_;
    else if (row_empty)
        ++rowEmpties_;
    else
        ++rowConflicts_;
    switch (req.prio) {
      case BusPriority::Demand:
        ++demandGrants_;
        ++coreServed_[req.core.index()];
        break;
      case BusPriority::Prefetch:
        ++prefetchGrants_;
        ++coreServed_[req.core.index()];
        --corePrefQueued_[req.core.index()];
        break;
      case BusPriority::Writeback:
        ++writebackGrants_;
        break;
    }

    if (req.done) {
        const Cycle fill = data_end + params_.returnCycles;
        events_.schedule(fill, [fn = std::move(req.done),
                                fill]() mutable { fn(fill); });
    }

    if (!c.readQ.empty() || !c.wbQ.empty())
        schedulePump(ch, c.busFree);
}

void
DramController::saveState(SnapWriter &w) const
{
    FDP_ASSERT(queued() == 0,
               "%s: snapshot with %zu requests queued (not quiesced)",
               auditName(), queued());
    for (const Channel &c : channels_)
        FDP_ASSERT(!c.pumpScheduled,
                   "%s: snapshot with a pump event pending", auditName());
    w.beginSection(snapName());
    w.putU32(ctrl_.channels);
    w.putU32(params_.banks);
    for (const Channel &c : channels_) {
        w.putU64(c.busFree);
        w.putU64(c.busyCycles);
        for (const Cycle ready : c.bankReady)
            w.putU64(ready);
        for (const std::uint64_t row : c.openRow)
            w.putU64(row);
    }
    w.putU32(static_cast<std::uint32_t>(coreBusAccesses_.size()));
    for (const std::uint64_t n : coreBusAccesses_)
        w.putU64(n);
    for (const std::uint64_t n : coreServed_)
        w.putU64(n);
    w.endSection();
}

void
DramController::loadState(SnapReader &r)
{
    FDP_ASSERT(queued() == 0,
               "%s: restore with %zu requests queued", auditName(),
               queued());
    for (const Channel &c : channels_)
        FDP_ASSERT(!c.pumpScheduled,
                   "%s: restore with a pump event pending", auditName());
    r.openSection(snapName());
    const std::uint32_t chans = r.getU32();
    if (chans != ctrl_.channels)
        fatal("snapshot: controller has %u channels, snapshot has %u",
              ctrl_.channels, chans);
    const std::uint32_t banks = r.getU32();
    if (banks != params_.banks)
        fatal("snapshot: DRAM has %u banks, snapshot has %u",
              params_.banks, banks);
    for (Channel &c : channels_) {
        c.busFree = r.getU64();
        c.busyCycles = r.getU64();
        for (Cycle &ready : c.bankReady)
            ready = r.getU64();
        for (std::uint64_t &row : c.openRow)
            row = r.getU64();
    }
    const std::uint32_t cores = r.getU32();
    if (cores != coreBusAccesses_.size())
        fatal("snapshot: DRAM serves %zu cores, snapshot has %u",
              coreBusAccesses_.size(), cores);
    for (std::uint64_t &n : coreBusAccesses_)
        n = r.getU64();
    for (std::uint64_t &n : coreServed_)
        n = r.getU64();
    r.closeSection();
    // Derived state is rebuilt, not serialized: the queues are empty at
    // a quiesce point, so arrival sequencing restarts and the per-core
    // queued-prefetch recount is zero.
    nextSeq_ = 0;
    for (unsigned &n : corePrefQueued_)
        n = 0;
}

void
DramController::audit() const
{
    FDP_ASSERT(channels_.size() == ctrl_.channels,
               "%s: %zu channel states for %u configured channels",
               auditName(), channels_.size(), ctrl_.channels);
    std::uint64_t busy_sum = 0;
    std::vector<unsigned> pref_queued(corePrefQueued_.size(), 0);
    for (std::size_t ch = 0; ch < channels_.size(); ++ch) {
        const Channel &c = channels_[ch];
        FDP_ASSERT(c.readQ.size() <= params_.queueCapacity,
                   "%s: channel %zu read queue holds %zu of %zu entries",
                   auditName(), ch, c.readQ.size(),
                   params_.queueCapacity);
        FDP_ASSERT(c.bankReady.size() == params_.banks &&
                       c.openRow.size() == params_.banks,
                   "%s: channel %zu bank state sized %zu/%zu for %u "
                   "banks",
                   auditName(), ch, c.bankReady.size(), c.openRow.size(),
                   params_.banks);
        // Between event dispatches, queued work always has a pump
        // pending: enqueue() schedules one and pump() re-schedules
        // while work remains on the channel.
        FDP_ASSERT((c.readQ.empty() && c.wbQ.empty()) || c.pumpScheduled,
                   "%s: channel %zu has %zu queued requests but no pump "
                   "scheduled",
                   auditName(), ch, c.readQ.size() + c.wbQ.size());
        busy_sum += c.busyCycles;

        std::uint64_t last_seq = 0;
        bool have_seq = false;
        const auto auditRequest = [&](const Request &r, bool writeback) {
            FDP_ASSERT(channelOf(r.block) == ch,
                       "%s: block %llu queued on channel %zu but routes "
                       "to channel %u",
                       auditName(),
                       static_cast<unsigned long long>(r.block), ch,
                       channelOf(r.block));
            FDP_ASSERT((r.prio == BusPriority::Writeback) == writeback,
                       "%s: channel %zu %s queue holds a request with "
                       "priority %u",
                       auditName(), ch, writeback ? "writeback" : "read",
                       static_cast<unsigned>(r.prio));
            FDP_ASSERT(r.core.index() < coreBusAccesses_.size(),
                       "%s: queued request for block %llu tagged with "
                       "core %u of %zu",
                       auditName(),
                       static_cast<unsigned long long>(r.block),
                       r.core.index(), coreBusAccesses_.size());
            FDP_ASSERT(static_cast<bool>(r.done) == !writeback,
                       "%s: queued request for block %llu %s a "
                       "completion callback",
                       auditName(),
                       static_cast<unsigned long long>(r.block),
                       writeback ? "has" : "is missing");
            FDP_ASSERT(!have_seq || r.seq > last_seq,
                       "%s: channel %zu queue order disagrees with "
                       "arrival order (seq %llu after %llu)",
                       auditName(), ch,
                       static_cast<unsigned long long>(r.seq),
                       static_cast<unsigned long long>(last_seq));
            FDP_ASSERT(r.seq < nextSeq_,
                       "%s: queued request carries unissued sequence "
                       "number %llu",
                       auditName(),
                       static_cast<unsigned long long>(r.seq));
            last_seq = r.seq;
            have_seq = true;
            if (r.prio == BusPriority::Prefetch)
                ++pref_queued[r.core.index()];
        };
        for (const Request &r : c.readQ)
            auditRequest(r, false);
        have_seq = false;
        for (const Request &r : c.wbQ)
            auditRequest(r, true);
    }
    FDP_ASSERT(busy_sum == busBusyCycles_.value(),
               "%s: per-channel occupancies sum to %llu but the "
               "registered statistic is %llu",
               auditName(), static_cast<unsigned long long>(busy_sum),
               static_cast<unsigned long long>(busBusyCycles_.value()));
    std::uint64_t per_core_sum = 0;
    for (const std::uint64_t n : coreBusAccesses_)
        per_core_sum += n;
    FDP_ASSERT(per_core_sum == busAccesses_.value(),
               "%s: per-core bus accesses sum to %llu but the shared "
               "total is %llu",
               auditName(), static_cast<unsigned long long>(per_core_sum),
               static_cast<unsigned long long>(busAccesses_.value()));
    for (std::size_t i = 0; i < corePrefQueued_.size(); ++i)
        FDP_ASSERT(pref_queued[i] == corePrefQueued_[i],
                   "%s: core %zu QoS ledger says %u queued prefetches "
                   "but the queues hold %u",
                   auditName(), i, corePrefQueued_[i], pref_queued[i]);
}

} // namespace fdp
