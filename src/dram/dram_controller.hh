/**
 * @file
 * FR-FCFS multi-channel memory controller (DESIGN.md §18).
 *
 * Replaces the flat three-deque bus model with a real controller:
 *  - XOR channel interleaving: consecutive blocks stripe across
 *    channels, and the row index is folded in so same-bank streams on
 *    one channel remap on the next, each channel owning its banks,
 *    request queues, and data bus;
 *  - FR-FCFS scheduling per channel: row-buffer hits first, oldest
 *    first within a class, with the flat model's writeback high-water
 *    starvation bound;
 *  - row-policy knobs: open (leave rows open), closed (auto-precharge
 *    after every access), adaptive (precharge after a conflict, stay
 *    open after hits);
 *  - the FDP tie-in: prefetches carry the issuing core's Table 2
 *    accuracy tier. High-accuracy prefetches are scheduled exactly
 *    like demands, Medium ones yield only their row-buffer misses to
 *    demand misses, and Low ones run strictly last and are dropped at
 *    enqueue once their channel queue is under pressure. With
 *    fdpPriority off the controller is accuracy-blind: demands and
 *    prefetches form a single FR-FCFS class (the baseline to beat);
 *  - per-core bandwidth QoS on top of CoreId attribution: an in-flight
 *    cap on queued prefetches per core, and optional weighted service
 *    (least-served core first among equal-priority candidates).
 */

#ifndef FDP_DRAM_DRAM_CONTROLLER_HH
#define FDP_DRAM_DRAM_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "dram/dram_backend.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace fdp
{

/** Event-driven FR-FCFS multi-channel DRAM controller. */
class DramController : public DramBackend
{
  public:
    /**
     * @param numCores  cores that may issue requests; attribution, QoS
     *                  caps, and weighted service track this many
     */
    DramController(const DramParams &params, const DramCtrlParams &ctrl,
                   EventQueue &events, StatGroup &stats,
                   unsigned numCores = 1);

    bool enqueue(BlockAddr block, BusPriority prio, Cycle now, DoneFn done,
                 CoreId core = kCore0,
                 PrefetchTier tier = PrefetchTier::High) override;
    void promoteToDemand(BlockAddr block) override;
    std::size_t queued() const override;

    std::uint64_t busAccesses() const override
    {
        return busAccesses_.value();
    }
    /** Sum of the per-channel measured data-bus occupancies (the
     *  registered statistic mirrors it; audited equal). */
    std::uint64_t busBusyCycles() const override;
    std::uint64_t rowHits() const override { return rowHits_.value(); }
    std::uint64_t rowConflicts() const override
    {
        return rowConflicts_.value();
    }
    std::uint64_t busAccessesByCore(CoreId core) const override;
    void resetAttribution() override;
    unsigned dataBuses() const override { return ctrl_.channels; }
    const DramParams &params() const override { return params_; }

    const DramCtrlParams &ctrlParams() const { return ctrl_; }

    /** Channel @p block is routed to (XOR interleaving); for tests. */
    unsigned channelOf(BlockAddr block) const;

    /** Measured data-bus occupancy of one channel, in cycles. */
    std::uint64_t busBusyCyclesOnChannel(unsigned ch) const;

    /// @name Controller-specific lifetime statistics
    /// @{
    std::uint64_t rowEmpties() const { return rowEmpties_.value(); }
    std::uint64_t lowTierDrops() const { return lowTierDrops_.value(); }
    std::uint64_t qosRejects() const { return qosRejects_.value(); }
    /// @}

    /**
     * Invariants: channel/bank state arrays match the configured
     * geometry; every read queue stays within capacity; each queued
     * request sits on the channel its block routes to, in the queue
     * matching its priority, with a completion callback iff it is not
     * a writeback, a valid core id, and arrival sequence numbers
     * strictly increasing in queue order; a pump event is scheduled on
     * every channel with queued work; the per-core bus accesses sum to
     * the shared total; the per-channel measured bus occupancies sum to
     * the registered statistic; and the per-core queued-prefetch
     * counters match a recount of the queues.
     */
    void audit() const override;
    const char *auditName() const override { return "dram_controller"; }

    /**
     * Snapshots are taken only at quiesce points: queued requests carry
     * completion closures, so saveState() asserts every queue is empty
     * and serializes the per-channel bank timing, open-row registers,
     * bus horizons and measured occupancies, plus the per-core
     * attribution and service counters. Derived state (arrival
     * sequencing, queued-prefetch counts) is rebuilt on restore.
     */
    void saveState(SnapWriter &w) const override;
    void loadState(SnapReader &r) override;
    const char *snapName() const override { return "dramctl"; }

  private:
    friend struct AuditCorrupter;

    /** An open-row register holding no row (precharged bank). */
    static constexpr std::uint64_t kNoRow = ~std::uint64_t{0};
    static constexpr std::size_t kNoPick = ~std::size_t{0};

    struct Request
    {
        BlockAddr block = 0;
        BusPriority prio = BusPriority::Demand;
        PrefetchTier tier = PrefetchTier::High;
        Cycle enqueueCycle = 0;
        /** Global arrival order; the FCFS age within every class. */
        std::uint64_t seq = 0;
        CoreId core;
        DoneFn done;
    };

    struct Channel
    {
        std::deque<Request> readQ;  ///< demands + prefetches (FR-FCFS)
        std::deque<Request> wbQ;
        std::vector<Cycle> bankReady;
        std::vector<std::uint64_t> openRow;
        Cycle busFree = 0;
        /** Measured data-bus occupancy (sources the busUtil window). */
        std::uint64_t busyCycles = 0;
        bool pumpScheduled = false;
    };

    /** Split @p block into its per-channel bank and row coordinates. */
    void decode(BlockAddr block, unsigned *bank,
                std::uint64_t *row) const;

    /**
     * Scheduling rank of a queued read given the bank's current open
     * row; lower wins. 0 is the FR-FCFS head class (row hits from
     * demands, High, and Medium prefetches), 1 is demand and High
     * misses, then Medium misses, then the Low tier.
     */
    unsigned pickClass(const Channel &c, const Request &r) const;

    /** Index of the best read in @p c's queue, or kNoPick. */
    std::size_t pickRead(const Channel &c) const;

    void schedulePump(unsigned ch, Cycle now);
    void pump(unsigned ch);

    DramParams params_;
    DramCtrlParams ctrl_;
    EventQueue &events_;
    Cycle transferCycles_;

    /** deque: Channel is non-relocatable (queued DoneFn closures). */
    std::deque<Channel> channels_;
    /** Bus accesses attributed to each requesting core. */
    std::vector<std::uint64_t> coreBusAccesses_;
    /** Read grants per core, the weighted-service ledger. */
    std::vector<std::uint64_t> coreServed_;
    /** Queued (not yet granted) prefetches per core, for the QoS cap. */
    std::vector<unsigned> corePrefQueued_;
    std::uint64_t nextSeq_ = 0;

    ScalarStat busAccesses_;
    ScalarStat demandGrants_;
    ScalarStat prefetchGrants_;
    ScalarStat writebackGrants_;
    ScalarStat rowHits_;
    ScalarStat rowConflicts_;
    ScalarStat rowEmpties_;
    ScalarStat busBusyCycles_;
    ScalarStat promotions_;
    ScalarStat lowTierDrops_;
    ScalarStat qosRejects_;
};

} // namespace fdp

#endif // FDP_DRAM_DRAM_CONTROLLER_HH
