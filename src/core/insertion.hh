/**
 * @file
 * LRU-stack insertion positions for prefetched blocks (paper Section
 * 3.3.2). The cache's recency stack is indexed with 0 = LRU and
 * (assoc - 1) = MRU.
 */

#ifndef FDP_CORE_INSERTION_HH
#define FDP_CORE_INSERTION_HH

#include <cstdint>

namespace fdp
{

/** Where in the set's LRU stack a filled block is inserted. */
enum class InsertPos : std::uint8_t
{
    Lru = 0,   // least-recently-used position
    Lru4 = 1,  // floor(n/4)-th least-recently-used position
    Mid = 2,   // floor(n/2)-th least-recently-used position
    Mru = 3,   // most-recently-used position
};

/** Number of distinct insertion positions (for distributions). */
inline constexpr std::size_t kNumInsertPos = 4;

/** Map an insertion position to a recency-stack index for @p assoc ways. */
constexpr unsigned
insertStackIndex(InsertPos pos, unsigned assoc)
{
    switch (pos) {
      case InsertPos::Lru:
        return 0;
      case InsertPos::Lru4:
        return assoc / 4;
      case InsertPos::Mid:
        return assoc / 2;
      case InsertPos::Mru:
      default:
        return assoc - 1;
    }
}

/** Human-readable name of an insertion position. */
constexpr const char *
insertPosName(InsertPos pos)
{
    switch (pos) {
      case InsertPos::Lru: return "LRU";
      case InsertPos::Lru4: return "LRU-4";
      case InsertPos::Mid: return "MID";
      case InsertPos::Mru: return "MRU";
      default: return "?";
    }
}

} // namespace fdp

#endif // FDP_CORE_INSERTION_HH
