/**
 * @file
 * Interval-sampled feedback counters (paper Section 3.2).
 *
 * Each hardware counter accumulates events during a sampling interval;
 * at the interval boundary its smoothed value is updated by Equation 1:
 *
 *     CounterValue = (CounterValueAtBeginningOfInterval
 *                     + CounterValueDuringInterval) / 2
 *
 * which weights the most recent interval most heavily while retaining
 * exponentially-decayed history.
 */

#ifndef FDP_CORE_FEEDBACK_COUNTERS_HH
#define FDP_CORE_FEEDBACK_COUNTERS_HH

#include <cstdint>

#include "sim/check.hh"
#include "sim/snapshot.hh"

namespace fdp
{

/** One interval-halved feedback counter. */
class IntervalCounter
{
  public:
    /** Count one event in the current interval. */
    void increment(std::uint64_t n = 1) { interval_ += n; }

    /** Apply Equation 1 at an interval boundary and clear the interval. */
    void
    endInterval()
    {
        smoothed_ = (smoothed_ + static_cast<double>(interval_)) / 2.0;
        interval_ = 0;
    }

    /** Smoothed value as of the last interval boundary. */
    double value() const { return smoothed_; }

    /** Raw count accumulated in the current (unfinished) interval. */
    std::uint64_t intervalValue() const { return interval_; }

    void
    reset()
    {
        interval_ = 0;
        smoothed_ = 0.0;
    }

    /** Raw serialization helpers (FeedbackCounters owns the section). */
    void
    save(SnapWriter &w) const
    {
        w.putU64(interval_);
        w.putDouble(smoothed_);
    }

    void
    load(SnapReader &r)
    {
        interval_ = r.getU64();
        smoothed_ = r.getDouble();
    }

  private:
    friend struct AuditCorrupter;

    std::uint64_t interval_ = 0;
    double smoothed_ = 0.0;
};

/**
 * The full set of FDP feedback counters (paper Section 3.1) plus the
 * derived accuracy / lateness / pollution metrics.
 */
class FeedbackCounters : public Auditable, public Snapshottable
{
  public:
    /** A prefetch request was sent to memory. */
    void onPrefetchSent() { prefTotal_.increment(); }

    /** A demand request consumed a prefetched block (cache or MSHR). */
    void onPrefetchUsed() { usedTotal_.increment(); }

    /** A demand request hit a still-in-flight prefetch MSHR. */
    void onLatePrefetch() { lateTotal_.increment(); }

    /** A demand request missed in the L2. */
    void onDemandMiss() { demandTotal_.increment(); }

    /** A demand L2 miss was attributed to the prefetcher by the filter. */
    void onPollutionMiss() { pollutionTotal_.increment(); }

    /** Apply Equation 1 to every counter. */
    void endInterval();

    /** Accuracy = used-total / pref-total (0 when nothing sent). */
    double accuracy() const;

    /** Lateness = late-total / used-total (0 when nothing used). */
    double lateness() const;

    /** Pollution = pollution-total / demand-total (0 when no misses). */
    double pollution() const;

    void reset();

    const IntervalCounter &prefTotal() const { return prefTotal_; }
    const IntervalCounter &usedTotal() const { return usedTotal_; }
    const IntervalCounter &lateTotal() const { return lateTotal_; }
    const IntervalCounter &demandTotal() const { return demandTotal_; }
    const IntervalCounter &pollutionTotal() const { return pollutionTotal_; }

    /**
     * Invariants: every smoothed value is finite and non-negative, and
     * the coupled counters stay ordered the way the controller drives
     * them — late <= used and pollution <= demand, both for the raw
     * in-progress interval and for the smoothed values (Equation 1
     * preserves the ordering inductively).
     */
    void audit() const override;
    const char *auditName() const override { return "feedback_counters"; }

    /** Serialize all five counters (interval + smoothed value each). */
    void saveState(SnapWriter &w) const override;
    void loadState(SnapReader &r) override;
    const char *snapName() const override { return "fdp/counters"; }

  private:
    friend struct AuditCorrupter;

    IntervalCounter prefTotal_;
    IntervalCounter usedTotal_;
    IntervalCounter lateTotal_;
    IntervalCounter demandTotal_;
    IntervalCounter pollutionTotal_;
};

} // namespace fdp

#endif // FDP_CORE_FEEDBACK_COUNTERS_HH
