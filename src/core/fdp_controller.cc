#include "core/fdp_controller.hh"

#include "prefetch/prefetcher.hh"
#include "sim/logging.hh"

namespace fdp
{

FdpController::FdpController(const FdpParams &params, Prefetcher *pf,
                             StatGroup &stats)
    : params_(params), prefetcher_(pf), filter_(params.filterBits),
      level_(params.initialLevel),
      insertPos_(params.dynamicInsertion ? InsertPos::Mid
                                         : params.staticInsertPos),
      prefSent_(stats, "pref_sent", "prefetches sent to memory"),
      prefUsed_(stats, "pref_used", "useful prefetches"),
      prefLate_(stats, "pref_late", "late (but useful) prefetches"),
      demandMisses_(stats, "demand_misses", "demand L2 misses"),
      pollutionMisses_(stats, "pollution_misses",
                       "demand misses attributed to the prefetcher"),
      intervals_(stats, "intervals", "sampling intervals completed"),
      levelDist_(stats, "level_dist",
                 "intervals spent at each aggressiveness level (1..5)",
                 kMaxAggrLevel),
      insertDist_(stats, "insert_dist",
                  "prefetch fills per insertion position (LRU..MRU)",
                  kNumInsertPos)
{
    if (params_.initialLevel < kMinAggrLevel ||
        params_.initialLevel > kMaxAggrLevel)
        fatal("FDP initial level %u out of range", params_.initialLevel);
    if (params_.intervalEvictions == 0)
        fatal("FDP interval length must be nonzero");
    if (prefetcher_ && params_.dynamicAggressiveness)
        prefetcher_->setAggressiveness(level_);
}

void
FdpController::onPrefetchSent()
{
    counters_.onPrefetchSent();
    ++prefSent_;
}

void
FdpController::onPrefetchUsedInCache()
{
    counters_.onPrefetchUsed();
    ++prefUsed_;
}

void
FdpController::onLatePrefetchMshrHit()
{
    // A late prefetch is by definition also a useful one: the lateness
    // metric is Late / Useful, so both counters move together here.
    counters_.onLatePrefetch();
    counters_.onPrefetchUsed();
    ++prefLate_;
    ++prefUsed_;
}

bool
FdpController::onDemandMiss(BlockAddr block)
{
    counters_.onDemandMiss();
    ++demandMisses_;
    if (!filter_.demandMissCausedByPrefetcher(block))
        return false;
    counters_.onPollutionMiss();
    ++pollutionMisses_;
    return true;
}

void
FdpController::onDemandBlockEvictedByPrefetch(BlockAddr block)
{
    filter_.onDemandBlockEvictedByPrefetch(block);
}

void
FdpController::onPrefetchFill(BlockAddr block)
{
    filter_.onPrefetchFill(block);
    insertDist_.sample(static_cast<std::size_t>(insertPos_));
}

void
FdpController::onBlockRefetchedByOtherCore(BlockAddr block)
{
    filter_.onPrefetchFill(block);
}

void
FdpController::onCacheEviction()
{
    if (++evictionCount_ < params_.intervalEvictions)
        return;
    evictionCount_ = 0;
    endInterval();
}

FdpController::Action
FdpController::decideAggressiveness(const FdpThresholds &t, double accuracy,
                                    double lateness, double pollution)
{
    enum { High, Medium, Low } acc;
    if (accuracy >= t.aHigh)
        acc = High;
    else if (accuracy >= t.aLow)
        acc = Medium;
    else
        acc = Low;
    const bool late = lateness > t.tLateness;
    const bool polluting = pollution > t.tPollution;

    // Paper Table 2, all 12 cases.
    switch (acc) {
      case High:
        if (late)
            return Action::Increment;   // cases 1, 2: chase timeliness
        return polluting ? Action::Decrement   // case 4
                         : Action::NoChange;   // case 3: best case
      case Medium:
        if (late && !polluting)
            return Action::Increment;   // case 5
        if (!late && !polluting)
            return Action::NoChange;    // case 7
        return Action::Decrement;       // cases 6, 8
      case Low:
      default:
        if (!late && !polluting)
            return Action::NoChange;    // case 11
        return Action::Decrement;       // cases 9, 10, 12
    }
}

FdpController::Action
FdpController::decideAccuracyOnly(const FdpThresholds &t, double accuracy)
{
    if (accuracy >= t.aHigh)
        return Action::Increment;
    if (accuracy >= t.aLow)
        return Action::NoChange;
    return Action::Decrement;
}

InsertPos
FdpController::decideInsertion(const FdpThresholds &t, double pollution)
{
    if (pollution < t.pLow)
        return InsertPos::Mid;
    if (pollution < t.pHigh)
        return InsertPos::Lru4;
    return InsertPos::Lru;
}

void
FdpController::endInterval()
{
    counters_.endInterval();
    ++intervals_;

    const double accuracy = counters_.accuracy();
    const double lateness = counters_.lateness();
    const double pollution = counters_.pollution();

    if (params_.dynamicAggressiveness) {
        const Action action =
            params_.accuracyOnly
                ? decideAccuracyOnly(params_.thresholds, accuracy)
                : decideAggressiveness(params_.thresholds, accuracy,
                                       lateness, pollution);
        if (action == Action::Increment && level_ < kMaxAggrLevel)
            ++level_;
        else if (action == Action::Decrement && level_ > kMinAggrLevel)
            --level_;
        if (prefetcher_)
            prefetcher_->setAggressiveness(level_);
    }
    levelDist_.sample(level_ - 1);

    if (params_.dynamicInsertion)
        insertPos_ = decideInsertion(params_.thresholds, pollution);

    if (endOfIntervalHook_)
        endOfIntervalHook_();
}

void
FdpController::setPrefetcher(Prefetcher *pf)
{
    prefetcher_ = pf;
    if (prefetcher_ && params_.dynamicAggressiveness)
        prefetcher_->setAggressiveness(level_);
}

void
FdpController::reset()
{
    counters_.reset();
    filter_.clear();
    level_ = params_.initialLevel;
    insertPos_ = params_.dynamicInsertion ? InsertPos::Mid
                                          : params_.staticInsertPos;
    evictionCount_ = 0;
    if (prefetcher_ && params_.dynamicAggressiveness)
        prefetcher_->setAggressiveness(level_);
}

void
FdpController::saveState(SnapWriter &w) const
{
    w.beginSection(snapName());
    w.putU8(static_cast<std::uint8_t>(level_));
    w.putU8(static_cast<std::uint8_t>(insertPos_));
    w.putU64(evictionCount_);
    w.endSection();
    counters_.saveState(w);
    filter_.saveState(w);
}

void
FdpController::loadState(SnapReader &r)
{
    r.openSection(snapName());
    level_ = r.getU8();
    insertPos_ = static_cast<InsertPos>(r.getU8());
    evictionCount_ = r.getU64();
    r.closeSection();
    if (level_ < kMinAggrLevel || level_ > kMaxAggrLevel)
        fatal("snapshot: FDP level %u out of range", level_);
    if (static_cast<std::uint8_t>(insertPos_) >= kNumInsertPos)
        fatal("snapshot: FDP insertion position %u out of range",
              static_cast<unsigned>(insertPos_));
    counters_.loadState(r);
    filter_.loadState(r);
    if (prefetcher_ && params_.dynamicAggressiveness)
        prefetcher_->setAggressiveness(level_);
}

void
FdpController::audit() const
{
    FDP_ASSERT(level_ >= kMinAggrLevel && level_ <= kMaxAggrLevel,
               "%s: dynamic configuration counter %u outside [%u, %u]",
               auditName(), level_, kMinAggrLevel, kMaxAggrLevel);
    FDP_ASSERT(static_cast<std::uint8_t>(insertPos_) < kNumInsertPos,
               "%s: insertion policy %u is not a legal InsertPos",
               auditName(), static_cast<unsigned>(insertPos_));
    FDP_ASSERT(evictionCount_ < params_.intervalEvictions,
               "%s: eviction count %llu reached interval length %llu "
               "without closing the interval",
               auditName(),
               static_cast<unsigned long long>(evictionCount_),
               static_cast<unsigned long long>(params_.intervalEvictions));
    FDP_ASSERT(prefUsed_.value() <= prefSent_.value(),
               "%s: %llu prefetches used but only %llu sent", auditName(),
               static_cast<unsigned long long>(prefUsed_.value()),
               static_cast<unsigned long long>(prefSent_.value()));
    FDP_ASSERT(prefLate_.value() <= prefUsed_.value(),
               "%s: %llu late prefetches but only %llu used", auditName(),
               static_cast<unsigned long long>(prefLate_.value()),
               static_cast<unsigned long long>(prefUsed_.value()));
    FDP_ASSERT(pollutionMisses_.value() <= demandMisses_.value(),
               "%s: %llu pollution misses but only %llu demand misses",
               auditName(),
               static_cast<unsigned long long>(pollutionMisses_.value()),
               static_cast<unsigned long long>(demandMisses_.value()));
    if (prefetcher_ && params_.dynamicAggressiveness)
        FDP_ASSERT(prefetcher_->aggressiveness() == level_,
                   "%s: prefetcher runs at level %u but controller is at "
                   "%u",
                   auditName(), prefetcher_->aggressiveness(), level_);
    counters_.audit();
    filter_.audit();
}

double
FdpController::lifetimeAccuracy() const
{
    return ratio(static_cast<double>(prefUsed_.value()),
                 static_cast<double>(prefSent_.value()));
}

double
FdpController::lifetimeLateness() const
{
    return ratio(static_cast<double>(prefLate_.value()),
                 static_cast<double>(prefUsed_.value()));
}

double
FdpController::lifetimePollution() const
{
    return ratio(static_cast<double>(pollutionMisses_.value()),
                 static_cast<double>(demandMisses_.value()));
}

PrefetchTier
FdpController::accuracyTier() const
{
    // No completed interval yet (cold start or measurement-boundary
    // reset): no evidence against the stream, so schedule it neutrally.
    if (intervals_.value() == 0)
        return PrefetchTier::High;
    const double acc = counters_.accuracy();
    if (acc >= params_.thresholds.aHigh)
        return PrefetchTier::High;
    if (acc >= params_.thresholds.aLow)
        return PrefetchTier::Medium;
    return PrefetchTier::Low;
}

} // namespace fdp
