/**
 * @file
 * Bloom-filter pollution tracker (paper Section 3.1.3, Figure 4).
 *
 * A 4096-entry bit vector indexed by the XOR of the low and next-higher
 * 12 bits of the cache-block address approximates the set of
 * demand-fetched blocks that prefetches evicted from the L2:
 *
 *  - set   when a demand-fetched block is evicted by a prefetch fill;
 *  - reset when a prefetch fill for that block address arrives (the block
 *    is back in the cache);
 *  - test  on every demand miss: a set bit means the miss would not have
 *    happened without the prefetcher.
 */

#ifndef FDP_CORE_POLLUTION_FILTER_HH
#define FDP_CORE_POLLUTION_FILTER_HH

#include <cstdint>
#include <vector>

#include "sim/check.hh"
#include "sim/snapshot.hh"
#include "sim/types.hh"

namespace fdp
{

/** XOR-indexed bit-vector estimating prefetcher-generated pollution. */
class PollutionFilter : public Auditable, public Snapshottable
{
  public:
    /** @param bits filter size; must be a power of two (paper: 4096). */
    explicit PollutionFilter(std::size_t bits = 4096);

    /** A demand-fetched block was evicted by a prefetch fill. */
    void onDemandBlockEvictedByPrefetch(BlockAddr block);

    /** A prefetch fill for @p block arrived from memory. */
    void onPrefetchFill(BlockAddr block);

    /**
     * Test on a demand miss: true means the filter attributes this miss
     * to the prefetcher.
     */
    bool demandMissCausedByPrefetcher(BlockAddr block) const;

    /** Number of set bits (for tests/stats). */
    std::size_t popcount() const;

    std::size_t size() const { return bits_.size(); }

    void clear();

    /** The paper's index function: low 12 bits XOR next 12 bits. */
    std::size_t indexOf(BlockAddr block) const;

    /**
     * Invariants: the filter size is a power of two, the index mask
     * matches it, and the set-bit count is within the filter size.
     */
    void audit() const override;
    const char *auditName() const override { return "pollution_filter"; }

    /** Serialize the bit vector, packed eight bits per byte. */
    void saveState(SnapWriter &w) const override;
    void loadState(SnapReader &r) override;
    const char *snapName() const override { return "fdp/filter"; }

  private:
    friend struct AuditCorrupter;

    std::vector<bool> bits_;
    std::size_t mask_;
    unsigned shift_ = 12;
};

} // namespace fdp

#endif // FDP_CORE_POLLUTION_FILTER_HH
