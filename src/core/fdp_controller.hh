/**
 * @file
 * The Feedback Directed Prefetching controller (paper Section 3).
 *
 * Owns the feedback counters, the pollution filter, the Dynamic
 * Configuration Counter, and the dynamic insertion decision. The memory
 * system invokes the on*() hooks as the corresponding microarchitectural
 * events occur; at every sampling-interval boundary (T_interval L2
 * evictions) the controller recomputes accuracy / lateness / pollution and
 * applies the Table 2 aggressiveness policy and the Section 3.3.2
 * insertion policy.
 *
 * The controller also runs with both dynamic features disabled, in which
 * case it is a pure metrics observer: Figures 2 and 3 of the paper are
 * produced that way.
 */

#ifndef FDP_CORE_FDP_CONTROLLER_HH
#define FDP_CORE_FDP_CONTROLLER_HH

#include <cstdint>
#include <functional>
#include <string>

#include "core/feedback_counters.hh"
#include "core/insertion.hh"
#include "core/pollution_filter.hh"
#include "dram/dram_backend.hh"
#include "prefetch/aggressiveness.hh"
#include "sim/check.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace fdp
{

class Prefetcher;

/** Classification thresholds (paper Section 4.3). */
struct FdpThresholds
{
    double aHigh = 0.75;       ///< accuracy >= aHigh  -> "high"
    double aLow = 0.40;        ///< accuracy >= aLow   -> "medium"
    double tLateness = 0.01;   ///< lateness > tLateness -> "late"
    double tPollution = 0.005; ///< pollution > tPollution -> "polluting"
    double pLow = 0.005;       ///< insertion: pollution < pLow  -> MID
    double pHigh = 0.25;       ///< insertion: pollution < pHigh -> LRU-4
};

/** FDP configuration. */
struct FdpParams
{
    /** Enable Table 2 dynamic aggressiveness control. */
    bool dynamicAggressiveness = true;
    /** Enable Section 3.3.2 dynamic insertion control. */
    bool dynamicInsertion = true;
    /** Section 5.6 ablation: throttle on accuracy alone. */
    bool accuracyOnly = false;
    /** T_interval: L2 evictions per sampling interval (paper: 8192). */
    std::uint64_t intervalEvictions = 8192;
    /** Pollution filter size in bits (paper: 4096). */
    std::size_t filterBits = 4096;
    /** Initial Dynamic Configuration Counter value (paper: 3). */
    unsigned initialLevel = kInitialAggrLevel;
    /** Insertion position used while dynamicInsertion is off. */
    InsertPos staticInsertPos = InsertPos::Mru;
    /**
     * Audit/report label; empty keeps the default "fdp_controller".
     * The multi-core machine labels each per-core controller (e.g.
     * "fdp_controller.c2") so audit failures name the core.
     */
    std::string label;
    FdpThresholds thresholds;
};

/** The feedback controller of the paper. */
class FdpController : public Auditable, public Snapshottable
{
  public:
    /** The three Table 2 update actions. */
    enum class Action : std::uint8_t { Decrement, NoChange, Increment };

    /**
     * @param params  configuration
     * @param pf      prefetcher to throttle (may be null for observing)
     * @param stats   group receiving the controller's lifetime statistics
     */
    FdpController(const FdpParams &params, Prefetcher *pf, StatGroup &stats);

    /// @name Hooks invoked by the memory system
    /// @{

    /** A prefetch went to memory (counts toward pref-total). */
    void onPrefetchSent();

    /** A demand access hit a prefetched block resident in the L2. */
    void onPrefetchUsedInCache();

    /**
     * A demand request hit an in-flight prefetch MSHR: the prefetch is
     * late (and also useful, so both counters move; see DESIGN.md).
     */
    void onLatePrefetchMshrHit();

    /**
     * A demand request missed in the L2. Returns true when the pollution
     * filter attributes the miss to the prefetcher.
     */
    bool onDemandMiss(BlockAddr block);

    /** A demand-fetched block was evicted by a prefetch fill. */
    void onDemandBlockEvictedByPrefetch(BlockAddr block);

    /** A prefetch fill arrived from memory (clears its filter bit). */
    void onPrefetchFill(BlockAddr block);

    /**
     * Another core's prefetch fill brought @p block back into the
     * shared cache: clear the local filter bit so later misses on the
     * block are no longer attributed to pollution (the data is present
     * again, exactly as after a local prefetch fill).
     */
    void onBlockRefetchedByOtherCore(BlockAddr block);

    /** Any valid L2 block was evicted; drives the sampling interval. */
    void onCacheEviction();

    /// @}

    /** Position at which the next prefetch fill is inserted. */
    InsertPos insertPos() const { return insertPos_; }

    /** Current Dynamic Configuration Counter value (1..5). */
    unsigned level() const { return level_; }

    /**
     * Accuracy tier of this core's prefetch stream for DRAM scheduling
     * (paper Table 2 thresholds on the smoothed accuracy): High until
     * the first sampling interval completes, then High / Medium / Low
     * by the aHigh / aLow cut points. The FR-FCFS controller schedules
     * low-tier prefetches strictly behind demands and may drop them
     * under queue pressure.
     */
    PrefetchTier accuracyTier() const;

    /** Lifetime (whole-run) metrics for Figures 2/3 style reporting. */
    double lifetimeAccuracy() const;
    double lifetimeLateness() const;
    double lifetimePollution() const;

    /** Smoothed (Equation 1) metrics as of the last interval boundary. */
    const FeedbackCounters &counters() const { return counters_; }

    /** Distribution of counter values over intervals (Figure 6). */
    const DistributionStat &levelDistribution() const { return levelDist_; }

    /** Distribution of prefetch insertion positions (Figure 8). */
    const DistributionStat &
    insertDistribution() const
    {
        return insertDist_;
    }

    std::uint64_t intervalsCompleted() const { return intervals_.value(); }

    /**
     * Install @p hook to run after every completed sampling interval;
     * the experiment harness uses it to audit the whole machine at the
     * paper's natural checkpoint cadence.
     */
    void
    setEndOfIntervalHook(std::function<void()> hook)
    {
        endOfIntervalHook_ = std::move(hook);
    }

    /**
     * Attach (or detach, with nullptr) the prefetcher to throttle. The
     * warm-up boundary runs the controller detached, then attaches the
     * per-configuration prefetcher; the level is re-published so the
     * prefetcher and the controller always agree.
     */
    void setPrefetcher(Prefetcher *pf);

    /**
     * Return every dynamic decision to its construction-time value and
     * clear the counters and the pollution filter (measurement-boundary
     * reset; the registered lifetime statistics are reset separately by
     * their StatGroup).
     */
    void reset();

    /**
     * Invariants: the Dynamic Configuration Counter stays in [1,5], the
     * insertion policy is a legal enum value, the eviction count stays
     * below the interval length, lifetime counters are ordered
     * (used <= sent, late <= used, pollution <= demand misses), the
     * throttled prefetcher agrees on the level, and the owned counters
     * and pollution filter pass their own audits.
     */
    void audit() const override;
    const char *
    auditName() const override
    {
        return params_.label.empty() ? "fdp_controller"
                                     : params_.label.c_str();
    }

    /**
     * Pure policy function for Table 2: classify the metrics and return
     * the configured counter update. Exposed so tests can exercise all
     * 12 cases directly.
     */
    static Action decideAggressiveness(const FdpThresholds &t,
                                       double accuracy, double lateness,
                                       double pollution);

    /** Section 5.6 ablation policy: accuracy-only throttling. */
    static Action decideAccuracyOnly(const FdpThresholds &t,
                                     double accuracy);

    /** Section 3.3.2 insertion policy. */
    static InsertPos decideInsertion(const FdpThresholds &t,
                                     double pollution);

    /**
     * Serialize the dynamic decision state (level, insertion position,
     * eviction count) plus the owned counters and pollution filter.
     */
    void saveState(SnapWriter &w) const override;
    void loadState(SnapReader &r) override;
    const char *snapName() const override { return "fdp"; }

  private:
    friend struct AuditCorrupter;

    void endInterval();

    std::function<void()> endOfIntervalHook_;
    FdpParams params_;
    Prefetcher *prefetcher_;
    FeedbackCounters counters_;
    PollutionFilter filter_;
    unsigned level_;
    InsertPos insertPos_;
    std::uint64_t evictionCount_ = 0;

    // Lifetime statistics (whole-run, never halved).
    ScalarStat prefSent_;
    ScalarStat prefUsed_;
    ScalarStat prefLate_;
    ScalarStat demandMisses_;
    ScalarStat pollutionMisses_;
    ScalarStat intervals_;
    DistributionStat levelDist_;
    DistributionStat insertDist_;
};

} // namespace fdp

#endif // FDP_CORE_FDP_CONTROLLER_HH
