#include "core/pollution_filter.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace fdp
{

PollutionFilter::PollutionFilter(std::size_t bits)
    : bits_(bits, false), mask_(bits - 1)
{
    if (bits == 0 || (bits & (bits - 1)) != 0)
        fatal("pollution filter size must be a power of two, got %zu", bits);
    shift_ = 0;
    while ((std::size_t{1} << shift_) < bits)
        ++shift_;
}

std::size_t
PollutionFilter::indexOf(BlockAddr block) const
{
    // Figure 4: CacheBlockAddress[11:0] XOR CacheBlockAddress[23:12],
    // generalized to the configured filter width.
    return static_cast<std::size_t>((block ^ (block >> shift_)) & mask_);
}

void
PollutionFilter::onDemandBlockEvictedByPrefetch(BlockAddr block)
{
    bits_[indexOf(block)] = true;
}

void
PollutionFilter::onPrefetchFill(BlockAddr block)
{
    bits_[indexOf(block)] = false;
}

bool
PollutionFilter::demandMissCausedByPrefetcher(BlockAddr block) const
{
    return bits_[indexOf(block)];
}

std::size_t
PollutionFilter::popcount() const
{
    return static_cast<std::size_t>(
        std::count(bits_.begin(), bits_.end(), true));
}

void
PollutionFilter::clear()
{
    std::fill(bits_.begin(), bits_.end(), false);
}

void
PollutionFilter::saveState(SnapWriter &w) const
{
    w.beginSection(snapName());
    w.putU32(static_cast<std::uint32_t>(bits_.size()));
    for (std::size_t base = 0; base < bits_.size(); base += 8) {
        std::uint8_t byte = 0;
        const std::size_t n = std::min<std::size_t>(8, bits_.size() - base);
        for (std::size_t i = 0; i < n; ++i)
            if (bits_[base + i])
                byte |= static_cast<std::uint8_t>(1u << i);
        w.putU8(byte);
    }
    w.endSection();
}

void
PollutionFilter::loadState(SnapReader &r)
{
    r.openSection(snapName());
    const std::uint32_t bits = r.getU32();
    if (bits != bits_.size())
        fatal("snapshot: pollution filter has %zu bits, snapshot has %u",
              bits_.size(), bits);
    for (std::size_t base = 0; base < bits_.size(); base += 8) {
        const std::uint8_t byte = r.getU8();
        const std::size_t n = std::min<std::size_t>(8, bits_.size() - base);
        for (std::size_t i = 0; i < n; ++i)
            bits_[base + i] = (byte & (1u << i)) != 0;
    }
    r.closeSection();
}

void
PollutionFilter::audit() const
{
    const std::size_t bits = bits_.size();
    FDP_ASSERT(bits != 0 && (bits & (bits - 1)) == 0,
               "%s: size %zu is not a power of two", auditName(), bits);
    FDP_ASSERT(mask_ == bits - 1,
               "%s: index mask %zu does not match size %zu", auditName(),
               mask_, bits);
    FDP_ASSERT((std::size_t{1} << shift_) == bits,
               "%s: index shift %u does not match size %zu", auditName(),
               shift_, bits);
    FDP_ASSERT(popcount() <= bits, "%s: %zu set bits in a %zu-bit filter",
               auditName(), popcount(), bits);
}

} // namespace fdp
