#include "core/pollution_filter.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace fdp
{

PollutionFilter::PollutionFilter(std::size_t bits)
    : bits_(bits, false), mask_(bits - 1)
{
    if (bits == 0 || (bits & (bits - 1)) != 0)
        fatal("pollution filter size must be a power of two, got %zu", bits);
    shift_ = 0;
    while ((std::size_t{1} << shift_) < bits)
        ++shift_;
}

std::size_t
PollutionFilter::indexOf(BlockAddr block) const
{
    // Figure 4: CacheBlockAddress[11:0] XOR CacheBlockAddress[23:12],
    // generalized to the configured filter width.
    return static_cast<std::size_t>((block ^ (block >> shift_)) & mask_);
}

void
PollutionFilter::onDemandBlockEvictedByPrefetch(BlockAddr block)
{
    bits_[indexOf(block)] = true;
}

void
PollutionFilter::onPrefetchFill(BlockAddr block)
{
    bits_[indexOf(block)] = false;
}

bool
PollutionFilter::demandMissCausedByPrefetcher(BlockAddr block) const
{
    return bits_[indexOf(block)];
}

std::size_t
PollutionFilter::popcount() const
{
    return static_cast<std::size_t>(
        std::count(bits_.begin(), bits_.end(), true));
}

void
PollutionFilter::clear()
{
    std::fill(bits_.begin(), bits_.end(), false);
}

} // namespace fdp
