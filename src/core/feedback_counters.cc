#include "core/feedback_counters.hh"

#include "sim/stats.hh"

namespace fdp
{

void
FeedbackCounters::endInterval()
{
    prefTotal_.endInterval();
    usedTotal_.endInterval();
    lateTotal_.endInterval();
    demandTotal_.endInterval();
    pollutionTotal_.endInterval();
}

double
FeedbackCounters::accuracy() const
{
    return ratio(usedTotal_.value(), prefTotal_.value());
}

double
FeedbackCounters::lateness() const
{
    return ratio(lateTotal_.value(), usedTotal_.value());
}

double
FeedbackCounters::pollution() const
{
    return ratio(pollutionTotal_.value(), demandTotal_.value());
}

void
FeedbackCounters::reset()
{
    prefTotal_.reset();
    usedTotal_.reset();
    lateTotal_.reset();
    demandTotal_.reset();
    pollutionTotal_.reset();
}

} // namespace fdp
