#include "core/feedback_counters.hh"

#include <cmath>

#include "sim/stats.hh"

namespace fdp
{

void
FeedbackCounters::endInterval()
{
    prefTotal_.endInterval();
    usedTotal_.endInterval();
    lateTotal_.endInterval();
    demandTotal_.endInterval();
    pollutionTotal_.endInterval();
}

double
FeedbackCounters::accuracy() const
{
    return ratio(usedTotal_.value(), prefTotal_.value());
}

double
FeedbackCounters::lateness() const
{
    return ratio(lateTotal_.value(), usedTotal_.value());
}

double
FeedbackCounters::pollution() const
{
    return ratio(pollutionTotal_.value(), demandTotal_.value());
}

void
FeedbackCounters::audit() const
{
    const IntervalCounter *all[] = {&prefTotal_, &usedTotal_, &lateTotal_,
                                    &demandTotal_, &pollutionTotal_};
    const char *names[] = {"pref", "used", "late", "demand", "pollution"};
    for (std::size_t i = 0; i < 5; ++i) {
        const double v = all[i]->value();
        FDP_ASSERT(std::isfinite(v) && v >= 0.0,
                   "%s: %s-total smoothed value %f is not a finite "
                   "non-negative number",
                   auditName(), names[i], v);
    }
    FDP_ASSERT(lateTotal_.intervalValue() <= usedTotal_.intervalValue(),
               "%s: %llu late prefetches exceed %llu used this interval",
               auditName(),
               static_cast<unsigned long long>(lateTotal_.intervalValue()),
               static_cast<unsigned long long>(usedTotal_.intervalValue()));
    FDP_ASSERT(lateTotal_.value() <= usedTotal_.value(),
               "%s: smoothed late-total %f exceeds smoothed used-total %f",
               auditName(), lateTotal_.value(), usedTotal_.value());
    FDP_ASSERT(
        pollutionTotal_.intervalValue() <= demandTotal_.intervalValue(),
        "%s: %llu pollution misses exceed %llu demand misses this interval",
        auditName(),
        static_cast<unsigned long long>(pollutionTotal_.intervalValue()),
        static_cast<unsigned long long>(demandTotal_.intervalValue()));
    FDP_ASSERT(pollutionTotal_.value() <= demandTotal_.value(),
               "%s: smoothed pollution-total %f exceeds smoothed "
               "demand-total %f",
               auditName(), pollutionTotal_.value(), demandTotal_.value());
}

void
FeedbackCounters::saveState(SnapWriter &w) const
{
    w.beginSection(snapName());
    prefTotal_.save(w);
    usedTotal_.save(w);
    lateTotal_.save(w);
    demandTotal_.save(w);
    pollutionTotal_.save(w);
    w.endSection();
}

void
FeedbackCounters::loadState(SnapReader &r)
{
    r.openSection(snapName());
    prefTotal_.load(r);
    usedTotal_.load(r);
    lateTotal_.load(r);
    demandTotal_.load(r);
    pollutionTotal_.load(r);
    r.closeSection();
}

void
FeedbackCounters::reset()
{
    prefTotal_.reset();
    usedTotal_.reset();
    lateTotal_.reset();
    demandTotal_.reset();
    pollutionTotal_.reset();
}

} // namespace fdp
