/**
 * @file
 * Parallel sweep scheduler for the experiment harness.
 *
 * Every paper artifact is a benchmark x configuration sweep of fully
 * independent simulated machines, so the harness fans each (benchmark,
 * config) cell out to a fixed-size thread pool. Determinism contract
 * (DESIGN.md Section 10): each run's workload seed is the benchmark's
 * calibrated one from spec_suite.cc — a pure function of the benchmark
 * name, so every config sees the identical trace — and a run shares no
 * mutable state with any other run, so result tables are bit-identical
 * regardless of thread count or completion order.
 *
 * This is the only file in src/ or tools/ allowed to touch std::thread
 * (enforced by tools/fdp_lint.py rule pool-only-threading).
 */

#ifndef FDP_HARNESS_SWEEP_POOL_HH
#define FDP_HARNESS_SWEEP_POOL_HH

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "harness/experiment.hh"

namespace fdp
{

/**
 * Fixed-size worker pool. Jobs are opaque closures; the pool makes no
 * fairness or ordering guarantee between them, which is why sweep
 * results are written into pre-sized slots instead of being collected
 * in completion order.
 */
class SweepPool
{
  public:
    /** Spin up @p threads workers (clamped to at least one). */
    explicit SweepPool(unsigned threads);

    /**
     * Joins all workers. Jobs that have not started yet are dropped so
     * an early exit (e.g. an exception unwinding a sweep) cannot hang
     * on a deep queue; the currently running jobs complete first.
     */
    ~SweepPool();

    SweepPool(const SweepPool &) = delete;
    SweepPool &operator=(const SweepPool &) = delete;

    /** Enqueue one job. Must not be called concurrently with wait(). */
    void submit(std::function<void()> job);

    /**
     * Block until every submitted job has finished, then rethrow the
     * first exception any job raised (if one did).
     */
    void wait();

    /** Number of worker threads. */
    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable workReady_;
    std::condition_variable allDone_;
    std::deque<std::function<void()>> pending_;
    std::vector<std::thread> workers_;
    std::size_t running_ = 0;
    bool stopping_ = false;
    std::exception_ptr firstError_;
};

/** One labeled configuration column of a sweep. */
using LabeledConfig = std::pair<std::string, RunConfig>;

/**
 * Result-store attachment for sweeps (see harness/result_store.hh).
 * With a directory set, every fresh cell is persisted there; with
 * resume also set, cells whose key is already present are served from
 * the store instead of being re-simulated. Because stored results are
 * bit-identical to freshly computed ones (determinism contract), the
 * merged output is byte-for-byte the same as a cold run's.
 */
struct SweepStoreConfig
{
    std::string dir;     ///< empty = store disabled
    bool resume = false; ///< reuse cells already present

    bool enabled() const { return !dir.empty(); }
};

/**
 * Parse "--store DIR" / "--resume" from a bench binary's command line.
 * Fatal when --store is trailing or --resume appears without --store.
 */
SweepStoreConfig parseSweepStoreArgs(int argc, char **argv);

/** Install @p config process-wide for subsequent runSweep calls. */
void setSweepStore(const SweepStoreConfig &config);

/** The installed store configuration (disabled by default). */
const SweepStoreConfig &sweepStore();

/**
 * One-call adoption for bench binaries: parse --store/--resume from
 * argv and install the result. Returns the parsed configuration.
 */
SweepStoreConfig configureSweepStore(int argc, char **argv);

/**
 * Run every (benchmark, config) cell of a sweep, fanning the cells out
 * over @p jobs worker threads (0 = defaultSweepJobs(); 1 = the plain
 * sequential path with no threads created). results[c][b] is benchmark
 * b under configs[c], in the argument order, regardless of completion
 * order. Cells are handed to the pool longest-first (LPT by the
 * config's instruction count) so a long run picked up last cannot
 * leave the tail of the sweep running on one thread; the ordering only
 * affects wall-clock, never results. Prints one sweep-throughput line
 * to stderr (stdout tables stay bit-identical across thread counts).
 */
std::vector<std::vector<RunResult>>
runSweep(const std::vector<std::string> &benchmarks,
         const std::vector<LabeledConfig> &configs, unsigned jobs = 0);

/** Single-configuration sweep: the parallel form of runSuite(). */
std::vector<RunResult>
runSuiteParallel(const std::vector<std::string> &benchmarks,
                 const RunConfig &config, const std::string &configLabel,
                 unsigned jobs = 0);

/**
 * Sweep width when the caller does not say: FDP_JOBS from the
 * environment if set (fatal if not a positive integer), else
 * hardware_concurrency, else 1.
 */
unsigned defaultSweepJobs();

/**
 * Parse "--jobs N" from a bench binary's command line; falls back to
 * defaultSweepJobs(). Fatal with a clear diagnostic on a missing,
 * non-numeric, zero, or implausibly large value.
 */
unsigned sweepJobs(int argc, char **argv);

} // namespace fdp

#endif // FDP_HARNESS_SWEEP_POOL_HH
