#include "harness/json_value.hh"

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace fdp
{

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    const JsonValue *found = nullptr;
    for (const auto &[k, v] : members)
        if (k == key)
            found = &v;  // last wins, matching common JSON semantics
    return found;
}

double
JsonValue::asNumber(double fallback) const
{
    return kind == Kind::Number ? number : fallback;
}

const std::string &
JsonValue::asString() const
{
    static const std::string empty;
    return kind == Kind::String ? string : empty;
}

namespace
{

/** Deep recursion guard: our documents nest 3-4 levels; 64 is ample. */
constexpr int kMaxDepth = 64;

struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    int line = 1;
    std::string error;

    bool fail(const std::string &what)
    {
        if (error.empty())
            error = "line " + std::to_string(line) + ": " + what;
        return false;
    }

    void skipWs()
    {
        while (pos < text.size()) {
            const char c = text[pos];
            if (c == '\n')
                ++line;
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                return;
            ++pos;
        }
    }

    bool literal(const char *word, std::size_t len)
    {
        if (text.compare(pos, len, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos += len;
        return true;
    }

    bool parseString(std::string *out)
    {
        if (pos >= text.size() || text[pos] != '"')
            return fail("expected '\"'");
        ++pos;
        out->clear();
        while (pos < text.size()) {
            const char c = text[pos++];
            if (c == '"')
                return true;
            if (c == '\n')
                return fail("unterminated string");
            if (c != '\\') {
                out->push_back(c);
                continue;
            }
            if (pos >= text.size())
                return fail("unterminated escape");
            const char e = text[pos++];
            switch (e) {
              case '"': out->push_back('"'); break;
              case '\\': out->push_back('\\'); break;
              case '/': out->push_back('/'); break;
              case 'b': out->push_back('\b'); break;
              case 'f': out->push_back('\f'); break;
              case 'n': out->push_back('\n'); break;
              case 'r': out->push_back('\r'); break;
              case 't': out->push_back('\t'); break;
              case 'u': {
                if (pos + 4 > text.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                // The writers only escape control characters; encode
                // anything else as UTF-8 so round trips stay lossless.
                if (code < 0x80) {
                    out->push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out->push_back(static_cast<char>(0xC0 | (code >> 6)));
                    out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out->push_back(static_cast<char>(0xE0 | (code >> 12)));
                    out->push_back(
                        static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
                    out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool parseNumber(JsonValue *out)
    {
        const std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
                text[pos] == '+' || text[pos] == '-'))
            ++pos;
        if (pos == start)
            return fail("expected a number");
        const std::string num = text.substr(start, pos - start);
        char *end = nullptr;
        out->kind = JsonValue::Kind::Number;
        out->number = std::strtod(num.c_str(), &end);
        if (end != num.c_str() + num.size())
            return fail("malformed number '" + num + "'");
        return true;
    }

    bool parseValue(JsonValue *out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        const char c = text[pos];
        switch (c) {
          case '{': {
            ++pos;
            out->kind = JsonValue::Kind::Object;
            skipWs();
            if (pos < text.size() && text[pos] == '}') {
                ++pos;
                return true;
            }
            for (;;) {
                skipWs();
                std::string key;
                if (!parseString(&key))
                    return false;
                skipWs();
                if (pos >= text.size() || text[pos] != ':')
                    return fail("expected ':'");
                ++pos;
                JsonValue member;
                if (!parseValue(&member, depth + 1))
                    return false;
                out->members.emplace_back(std::move(key),
                                          std::move(member));
                skipWs();
                if (pos >= text.size())
                    return fail("unterminated object");
                if (text[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (text[pos] == '}') {
                    ++pos;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
          }
          case '[': {
            ++pos;
            out->kind = JsonValue::Kind::Array;
            skipWs();
            if (pos < text.size() && text[pos] == ']') {
                ++pos;
                return true;
            }
            for (;;) {
                JsonValue item;
                if (!parseValue(&item, depth + 1))
                    return false;
                out->items.push_back(std::move(item));
                skipWs();
                if (pos >= text.size())
                    return fail("unterminated array");
                if (text[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (text[pos] == ']') {
                    ++pos;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
          }
          case '"':
            out->kind = JsonValue::Kind::String;
            return parseString(&out->string);
          case 't':
            out->kind = JsonValue::Kind::Bool;
            out->boolean = true;
            return literal("true", 4);
          case 'f':
            out->kind = JsonValue::Kind::Bool;
            out->boolean = false;
            return literal("false", 5);
          case 'n':
            out->kind = JsonValue::Kind::Null;
            return literal("null", 4);
          default:
            return parseNumber(out);
        }
    }
};

} // namespace

bool
parseJson(const std::string &text, JsonValue *out, std::string *error)
{
    Parser p{text, 0, 1, {}};
    *out = JsonValue{};
    if (!p.parseValue(out, 0)) {
        *error = p.error;
        return false;
    }
    p.skipWs();
    if (p.pos != text.size()) {
        *error = "line " + std::to_string(p.line) +
                 ": trailing garbage after document";
        return false;
    }
    error->clear();
    return true;
}

} // namespace fdp
