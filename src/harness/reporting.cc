#include "harness/reporting.hh"

#include <iomanip>
#include <iostream>

#include "sim/logging.hh"

namespace fdp
{

double
meanOf(const std::vector<RunResult> &results, const Metric &metric,
       MeanKind mean)
{
    std::vector<double> values;
    values.reserve(results.size());
    for (const auto &r : results)
        values.push_back(metric(r));
    switch (mean) {
      case MeanKind::Geometric:
        return gmean(values);
      case MeanKind::Arithmetic:
        return amean(values);
      case MeanKind::None:
        return 0.0;
    }
    return 0.0;
}

Table
buildMetricTable(const std::string &title,
                 const std::vector<std::string> &benchmarks,
                 const std::vector<std::string> &configNames,
                 const std::vector<std::vector<RunResult>> &results,
                 const Metric &metric, int decimals, MeanKind mean)
{
    if (results.size() != configNames.size())
        panic("table %s: %zu result sets but %zu config names",
              title.c_str(), results.size(), configNames.size());
    for (const auto &per_config : results)
        if (per_config.size() != benchmarks.size())
            panic("table %s: config has %zu results for %zu benchmarks",
                  title.c_str(), per_config.size(), benchmarks.size());

    Table table(title);
    std::vector<std::string> header = {"benchmark"};
    header.insert(header.end(), configNames.begin(), configNames.end());
    table.setHeader(std::move(header));

    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        std::vector<std::string> row = {benchmarks[b]};
        for (std::size_t c = 0; c < results.size(); ++c)
            row.push_back(fmtDouble(metric(results[c][b]), decimals));
        table.addRow(std::move(row));
    }

    if (mean != MeanKind::None) {
        table.addRule();
        std::vector<std::string> row = {
            mean == MeanKind::Geometric ? "gmean" : "amean"};
        for (std::size_t c = 0; c < results.size(); ++c)
            row.push_back(fmtDouble(meanOf(results[c], metric, mean),
                                    decimals));
        table.addRow(std::move(row));
    }
    return table;
}

double
SweepStats::runsPerSecond() const
{
    return wallSeconds > 0.0
               ? static_cast<double>(runs) / wallSeconds
               : 0.0;
}

void
printSweepThroughput(const SweepStats &stats, std::ostream &os)
{
    const auto flags = os.flags();
    const auto precision = os.precision();
    os << "sweep-throughput: runs=" << stats.runs
       << " jobs=" << stats.jobs << std::fixed << " wall_s="
       << std::setprecision(3) << stats.wallSeconds << " runs_per_s="
       << std::setprecision(2) << stats.runsPerSecond() << '\n';
    os.flags(flags);
    os.precision(precision);
}

void
printSweepThroughput(const SweepStats &stats)
{
    printSweepThroughput(stats, std::cerr);
}

double
meanDelta(const std::vector<RunResult> &base,
          const std::vector<RunResult> &test, const Metric &metric,
          MeanKind mean)
{
    const double b = meanOf(base, metric, mean);
    const double t = meanOf(test, metric, mean);
    return b == 0.0 ? 0.0 : (t - b) / b;
}

} // namespace fdp
