#include "harness/reporting.hh"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <limits>
#include <sstream>

#include "sim/logging.hh"

namespace fdp
{

double
meanOf(const std::vector<RunResult> &results, const Metric &metric,
       MeanKind mean)
{
    std::vector<double> values;
    values.reserve(results.size());
    for (const auto &r : results)
        values.push_back(metric(r));
    switch (mean) {
      case MeanKind::Geometric:
        return gmean(values);
      case MeanKind::Arithmetic:
        return amean(values);
      case MeanKind::None:
        return 0.0;
    }
    return 0.0;
}

Table
buildMetricTable(const std::string &title,
                 const std::vector<std::string> &benchmarks,
                 const std::vector<std::string> &configNames,
                 const std::vector<std::vector<RunResult>> &results,
                 const Metric &metric, int decimals, MeanKind mean)
{
    if (results.size() != configNames.size())
        panic("table %s: %zu result sets but %zu config names",
              title.c_str(), results.size(), configNames.size());
    for (const auto &per_config : results)
        if (per_config.size() != benchmarks.size())
            panic("table %s: config has %zu results for %zu benchmarks",
                  title.c_str(), per_config.size(), benchmarks.size());

    Table table(title);
    std::vector<std::string> header = {"benchmark"};
    header.insert(header.end(), configNames.begin(), configNames.end());
    table.setHeader(std::move(header));

    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        std::vector<std::string> row = {benchmarks[b]};
        for (std::size_t c = 0; c < results.size(); ++c)
            row.push_back(fmtDouble(metric(results[c][b]), decimals));
        table.addRow(std::move(row));
    }

    if (mean != MeanKind::None) {
        table.addRule();
        std::vector<std::string> row = {
            mean == MeanKind::Geometric ? "gmean" : "amean"};
        for (std::size_t c = 0; c < results.size(); ++c)
            row.push_back(fmtDouble(meanOf(results[c], metric, mean),
                                    decimals));
        table.addRow(std::move(row));
    }
    return table;
}

double
SweepStats::runsPerSecond() const
{
    return wallSeconds > 0.0
               ? static_cast<double>(runs) / wallSeconds
               : 0.0;
}

void
printSweepThroughput(const SweepStats &stats, std::ostream &os)
{
    const auto flags = os.flags();
    const auto precision = os.precision();
    os << "sweep-throughput: runs=" << stats.runs
       << " jobs=" << stats.jobs << std::fixed << " wall_s="
       << std::setprecision(3) << stats.wallSeconds << " runs_per_s="
       << std::setprecision(2) << stats.runsPerSecond() << '\n';
    os.flags(flags);
    os.precision(precision);
}

void
printSweepThroughput(const SweepStats &stats)
{
    printSweepThroughput(stats, std::cerr);
}

namespace
{

/** Escape a string for a JSON string literal (ASCII metric names). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char hex[] = "0123456789abcdef";
                out += "\\u00";
                out += hex[(c >> 4) & 0xF];
                out += hex[c & 0xF];
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double value)
{
    std::ostringstream os;
    os << std::setprecision(std::numeric_limits<double>::max_digits10)
       << value;
    return os.str();
}

} // namespace

ResultsJson::ResultsJson(std::string source) : source_(std::move(source)) {}

void
ResultsJson::add(const std::string &name, const std::string &unit,
                 double value, const std::string &better)
{
    if (better != "higher" && better != "lower")
        panic("results entry %s: better must be higher|lower, got %s",
              name.c_str(), better.c_str());
    entries_.push_back(Entry{name, unit, better, value});
}

void
ResultsJson::addRunResult(const std::string &prefix, const RunResult &r)
{
    add(prefix + "/ipc", "insts/cycle", r.ipc, "higher");
    add(prefix + "/bpki", "bus-accesses/kilo-inst", r.bpki, "lower");
    add(prefix + "/accuracy", "ratio", r.accuracy, "higher");
    add(prefix + "/lateness", "ratio", r.lateness, "lower");
    add(prefix + "/pollution", "ratio", r.pollution, "lower");
    add(prefix + "/avg_miss_latency", "cycles", r.avgMissLatency, "lower");
    add(prefix + "/bus_accesses", "count",
        static_cast<double>(r.busAccesses), "lower");
}

void
ResultsJson::write(std::ostream &os) const
{
    os << "{\n";
    os << "  \"schema\": \"fdp-results-v1\",\n";
    os << "  \"source\": \"" << jsonEscape(source_) << "\",\n";
    os << "  \"entries\": [";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const Entry &e = entries_[i];
        os << (i == 0 ? "\n" : ",\n");
        os << "    {\"name\": \"" << jsonEscape(e.name)
           << "\", \"unit\": \"" << jsonEscape(e.unit)
           << "\", \"better\": \"" << e.better
           << "\", \"value\": " << jsonNumber(e.value) << "}";
    }
    os << "\n  ]\n}\n";
}

void
ResultsJson::writeFile(const std::string &path) const
{
    // An unwritable results path is a user/environment error (typo'd
    // directory, full disk), not a harness bug: report which path and
    // why, and exit instead of aborting.
    errno = 0;
    std::ofstream os(path);
    if (!os)
        fatal("cannot open results file %s for writing: %s", path.c_str(),
              std::strerror(errno));
    write(os);
    os.flush();
    if (!os)
        fatal("failed writing results file %s: %s", path.c_str(),
              std::strerror(errno));
}

std::string
resultsOutPath(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") != 0)
            continue;
        if (i + 1 >= argc)
            panic("--out requires a file path argument");
        return argv[i + 1];
    }
    return "";
}

void
writeSweepResults(const std::string &path, const std::string &source,
                  const std::vector<std::string> &benchmarks,
                  const std::vector<std::string> &configNames,
                  const std::vector<std::vector<RunResult>> &results)
{
    if (path.empty())
        return;
    if (results.size() != configNames.size())
        panic("sweep results %s: %zu result sets but %zu config names",
              source.c_str(), results.size(), configNames.size());

    ResultsJson json(source);
    for (std::size_t c = 0; c < results.size(); ++c) {
        if (results[c].size() != benchmarks.size())
            panic("sweep results %s: config %s has %zu results for %zu "
                  "benchmarks", source.c_str(), configNames[c].c_str(),
                  results[c].size(), benchmarks.size());
        for (std::size_t b = 0; b < benchmarks.size(); ++b)
            json.addRunResult(benchmarks[b] + "/" + configNames[c],
                              results[c][b]);
    }
    json.writeFile(path);
}

double
meanDelta(const std::vector<RunResult> &base,
          const std::vector<RunResult> &test, const Metric &metric,
          MeanKind mean)
{
    const double b = meanOf(base, metric, mean);
    const double t = meanOf(test, metric, mean);
    return b == 0.0 ? 0.0 : (t - b) / b;
}

} // namespace fdp
