#include "harness/result_store.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>

#include "sim/logging.hh"
#include "snap/snapshot_file.hh"
#include "workload/generators.hh"
#include "workload/spec_suite.hh"

namespace fdp
{

namespace
{

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t
fnvStep(std::uint64_t h, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (value >> (i * 8)) & 0xFF;
        h *= kFnvPrime;
    }
    return h;
}

std::string
fmtDoubleExact(double value)
{
    std::ostringstream os;
    os << std::setprecision(std::numeric_limits<double>::max_digits10)
       << value;
    return os.str();
}

std::string
jsonEscapeMinimal(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

/** Read a whole file; false (without diagnosis) when it cannot be. */
bool
readFileBytes(const std::string &path, std::string *out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::ostringstream buffer;
    buffer << is.rdbuf();
    if (is.bad())
        return false;
    *out = buffer.str();
    return true;
}

/** Write bytes to tmp + rename into place; false + errno msg on failure. */
bool
writeFileAtomic(const std::string &dir, const std::string &fileName,
                const std::string &bytes, std::string *error)
{
    // The temp name embeds the final name, so two concurrent writers of
    // the *same* key (legal only when their content is identical, by
    // the determinism contract) race harmlessly.
    const std::string tmp = dir + "/." + fileName + ".tmp";
    const std::string final_path = dir + "/" + fileName;
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            *error = tmp + ": " + std::strerror(errno);
            return false;
        }
        os.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size()));
        os.flush();
        if (!os) {
            *error = tmp + ": " + std::strerror(errno);
            return false;
        }
    }
    if (std::rename(tmp.c_str(), final_path.c_str()) != 0) {
        *error = final_path + ": rename: " + std::strerror(errno);
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

/** Unsigned helper: JSON numbers are doubles, counters are exact
 *  integers well under 2^53, so the round trip is lossless. */
std::uint64_t
numberAsU64(const JsonValue *v)
{
    return v ? static_cast<std::uint64_t>(v->asNumber()) : 0;
}

} // namespace

std::uint64_t
fnv1a64(const std::string &bytes)
{
    std::uint64_t h = kFnvOffset;
    for (unsigned char c : bytes) {
        h ^= c;
        h *= kFnvPrime;
    }
    return h;
}

std::string
hashHex(std::uint64_t hash)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[hash & 0xF];
        hash >>= 4;
    }
    return out;
}

std::string
binaryRevision()
{
    if (const char *env = std::getenv("FDP_BINARY_REV"))
        if (*env != '\0')
            return env;
    return "local";
}

std::string
configFingerprint(const RunConfig &c)
{
    std::ostringstream os;
    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    os << "l1.size=" << c.machine.l1.sizeBytes
       << " l1.assoc=" << c.machine.l1.assoc
       << " l1.lat=" << c.machine.l1Latency
       << " l2.size=" << c.machine.l2.sizeBytes
       << " l2.assoc=" << c.machine.l2.assoc
       << " l2.lat=" << c.machine.l2Latency
       << " l2.mshrs=" << c.machine.l2Mshrs
       << " mshr.reserve=" << c.machine.mshrDemandReserve
       << " pq.cap=" << c.machine.prefetchQueueCap
       << " dram.banks=" << c.machine.dram.banks
       << " dram.rowblocks=" << c.machine.dram.rowBlocks
       << " dram.rowhit=" << c.machine.dram.accessRowHit
       << " dram.rowconf=" << c.machine.dram.accessRowConflict
       << " dram.cas=" << c.machine.dram.casToCASCycles
       << " dram.buspc=" << c.machine.dram.busBytesPerCycle
       << " dram.return=" << c.machine.dram.returnCycles
       << " dram.qcap=" << c.machine.dram.queueCapacity
       << " dram.wbhigh=" << c.machine.dram.writebackHighWater
       << " dramctl.kind=" << static_cast<int>(c.machine.dramCtrl.kind)
       << " dramctl.ch=" << c.machine.dramCtrl.channels
       << " dramctl.rowpol="
       << static_cast<int>(c.machine.dramCtrl.rowPolicy)
       << " dramctl.fdpprio=" << c.machine.dramCtrl.fdpPriority
       << " dramctl.lowdrop=" << c.machine.dramCtrl.lowTierDropAt
       << " dramctl.qoscap=" << c.machine.dramCtrl.qosInFlightCap
       << " dramctl.qosw=" << c.machine.dramCtrl.qosWeighted
       << " pcache.on=" << c.machine.prefetchCache.enabled
       << " pcache.size=" << c.machine.prefetchCache.sizeBytes
       << " pcache.assoc=" << c.machine.prefetchCache.assoc
       << " wb=" << c.machine.modelWritebacks
       << " rob=" << c.core.robSize
       << " width=" << c.core.width
       << " pf=" << static_cast<int>(c.prefetcher)
       << " static=" << c.staticLevel
       << " fdp.da=" << c.fdp.dynamicAggressiveness
       << " fdp.di=" << c.fdp.dynamicInsertion
       << " fdp.acc=" << c.fdp.accuracyOnly
       << " fdp.interval=" << c.fdp.intervalEvictions
       << " fdp.filter=" << c.fdp.filterBits
       << " fdp.init=" << c.fdp.initialLevel
       << " fdp.ins=" << static_cast<int>(c.fdp.staticInsertPos)
       << " thr.ah=" << c.fdp.thresholds.aHigh
       << " thr.al=" << c.fdp.thresholds.aLow
       << " thr.late=" << c.fdp.thresholds.tLateness
       << " thr.pol=" << c.fdp.thresholds.tPollution
       << " thr.plow=" << c.fdp.thresholds.pLow
       << " thr.phigh=" << c.fdp.thresholds.pHigh
       << " insts=" << c.numInsts
       // The warm-up length changes what a cell measures, and the
       // snapshot format version guards against a stale warm-fork
       // producer, so both participate in the key (DESIGN.md Sec. 16).
       << " warmup=" << c.warmupInsts
       << " snapver=" << kSnapVersion
       // Runtime management (DESIGN.md §17): the manager swaps the
       // prefetcher mid-run, so its on/off state, its FSM cadence, and
       // the zoo membership all change what a cell measures. The zoo
       // list uses the EFFECTIVE membership so "empty = default" can
       // never collide with an explicit different zoo.
       << " mgr=" << static_cast<int>(c.manager)
       << " mgr.explore=" << c.managerParams.exploreIntervals
       << " mgr.exploit=" << c.managerParams.exploitIntervals
       << " mgr.hyst=" << c.managerParams.hysteresisPct
       << " mgr.drop=" << c.managerParams.reexploreDropPct
       << " mgr.zoo=";
    const std::vector<PrefetcherKind> &zoo =
        c.managerZoo.empty() ? defaultManagerZoo() : c.managerZoo;
    for (std::size_t i = 0; i < zoo.size(); ++i)
        os << (i ? "," : "") << static_cast<int>(zoo[i]);
    return os.str();
}

std::uint64_t
workloadTraceHash(const std::string &benchmark, std::uint64_t numOps)
{
    auto workload = makeBenchmark(benchmark);  // fatal on unknown names
    std::uint64_t h = kFnvOffset;
    for (std::uint64_t i = 0; i < numOps; ++i) {
        const MicroOp op = workload->next();
        h = fnvStep(h, static_cast<std::uint64_t>(op.kind) |
                           (static_cast<std::uint64_t>(op.depPrevLoad)
                            << 8));
        h = fnvStep(h, op.addr);
        h = fnvStep(h, op.pc);
    }
    return h;
}

StoreKey
makeStoreKey(const std::string &benchmark, const RunConfig &config,
             const std::string &configLabel, std::uint64_t traceHash)
{
    StoreKey key;
    key.benchmark = benchmark;
    key.configLabel = configLabel;
    key.canonical = "fdp-store-v1 bench=" + benchmark +
                    " seed=" + std::to_string(benchmarkParams(benchmark).seed) +
                    " trace=" + hashHex(traceHash) +
                    " label=" + configLabel +
                    " config{" + configFingerprint(config) + "}" +
                    " rev=" + binaryRevision() +
                    " simcore=" + std::to_string(kSimCoreVersion);
    key.hash = fnv1a64(key.canonical);
    return key;
}

StoreKey
makeStoreKey(const std::string &benchmark, const RunConfig &config,
             const std::string &configLabel)
{
    return makeStoreKey(benchmark, config, configLabel,
                        workloadTraceHash(benchmark, config.numInsts));
}

std::string
storeEntryJson(const StoreKey &key, const RunResult &r)
{
    std::ostringstream os;
    os << "{\n  \"schema\": \"fdp-store-v1\",\n";
    os << "  \"canonical\": \"" << jsonEscapeMinimal(key.canonical)
       << "\",\n";
    os << "  \"benchmark\": \"" << jsonEscapeMinimal(key.benchmark)
       << "\",\n";
    os << "  \"config\": \"" << jsonEscapeMinimal(key.configLabel)
       << "\",\n";
    os << "  \"binary_rev\": \"" << jsonEscapeMinimal(binaryRevision())
       << "\",\n";
    os << "  \"sim_core_version\": " << kSimCoreVersion << ",\n";
    os << "  \"result\": {\n";
    auto str = [&](const char *name, const std::string &v, bool comma) {
        os << "    \"" << name << "\": \"" << jsonEscapeMinimal(v) << "\""
           << (comma ? ",\n" : "\n");
    };
    auto num = [&](const char *name, double v, bool comma = true) {
        os << "    \"" << name << "\": " << fmtDoubleExact(v)
           << (comma ? ",\n" : "\n");
    };
    auto cnt = [&](const char *name, std::uint64_t v, bool comma = true) {
        os << "    \"" << name << "\": " << v << (comma ? ",\n" : "\n");
    };
    str("benchmark", r.benchmark, true);
    str("config", r.config, true);
    cnt("insts", r.insts);
    cnt("cycles", r.cycles);
    num("ipc", r.ipc);
    num("bpki", r.bpki);
    num("accuracy", r.accuracy);
    num("lateness", r.lateness);
    num("pollution", r.pollution);
    cnt("pref_sent", r.prefSent);
    cnt("pref_used", r.prefUsed);
    cnt("bus_accesses", r.busAccesses);
    cnt("l2_misses", r.l2Misses);
    cnt("demand_accesses", r.demandAccesses);
    cnt("demand_grants", r.demandGrants);
    cnt("prefetch_grants", r.prefetchGrants);
    cnt("writeback_grants", r.writebackGrants);
    cnt("mshr_stall_count", r.mshrStallCount);
    cnt("pref_drop_queue_full", r.prefDropQueueFull);
    num("avg_miss_latency", r.avgMissLatency);
    auto arr = [&](const char *name, const double *v, std::size_t n,
                   bool comma) {
        os << "    \"" << name << "\": [";
        for (std::size_t i = 0; i < n; ++i)
            os << (i ? ", " : "") << fmtDoubleExact(v[i]);
        os << "]" << (comma ? ",\n" : "\n");
    };
    arr("level_dist", r.levelDist.data(), r.levelDist.size(), true);
    arr("insert_dist", r.insertDist.data(), r.insertDist.size(), false);
    os << "  }\n}\n";
    return os.str();
}

bool
parseStoredResult(const JsonValue &doc, RunResult *out, std::string *error)
{
    error->clear();
    const JsonValue *res = doc.find("result");
    if (!res || res->kind != JsonValue::Kind::Object) {
        *error = "missing result object";
        return false;
    }
    auto require = [&](const char *name) -> const JsonValue * {
        const JsonValue *v = res->find(name);
        if (!v && error->empty())
            *error = std::string("missing result field ") + name;
        return v;
    };
    *out = RunResult{};
    const JsonValue *bench = require("benchmark");
    const JsonValue *config = require("config");
    out->benchmark = bench ? bench->asString() : "";
    out->config = config ? config->asString() : "";
    out->insts = numberAsU64(require("insts"));
    out->cycles = numberAsU64(require("cycles"));
    out->ipc = require("ipc") ? res->find("ipc")->asNumber() : 0.0;
    out->bpki = require("bpki") ? res->find("bpki")->asNumber() : 0.0;
    out->accuracy =
        require("accuracy") ? res->find("accuracy")->asNumber() : 0.0;
    out->lateness =
        require("lateness") ? res->find("lateness")->asNumber() : 0.0;
    out->pollution =
        require("pollution") ? res->find("pollution")->asNumber() : 0.0;
    out->prefSent = numberAsU64(require("pref_sent"));
    out->prefUsed = numberAsU64(require("pref_used"));
    out->busAccesses = numberAsU64(require("bus_accesses"));
    out->l2Misses = numberAsU64(require("l2_misses"));
    out->demandAccesses = numberAsU64(require("demand_accesses"));
    out->demandGrants = numberAsU64(require("demand_grants"));
    out->prefetchGrants = numberAsU64(require("prefetch_grants"));
    out->writebackGrants = numberAsU64(require("writeback_grants"));
    out->mshrStallCount = numberAsU64(require("mshr_stall_count"));
    out->prefDropQueueFull = numberAsU64(require("pref_drop_queue_full"));
    out->avgMissLatency = require("avg_miss_latency")
                              ? res->find("avg_miss_latency")->asNumber()
                              : 0.0;
    auto fillArray = [&](const char *name, double *dst, std::size_t n) {
        const JsonValue *v = require(name);
        if (!v)
            return;
        if (v->kind != JsonValue::Kind::Array || v->items.size() != n) {
            if (error->empty())
                *error = std::string("result field ") + name +
                         " is not an array of " + std::to_string(n);
            return;
        }
        for (std::size_t i = 0; i < n; ++i)
            dst[i] = v->items[i].asNumber();
    };
    fillArray("level_dist", out->levelDist.data(), out->levelDist.size());
    fillArray("insert_dist", out->insertDist.data(),
              out->insertDist.size());
    return error->empty();
}

ResultStore::ResultStore(std::string dir) : dir_(std::move(dir))
{
    if (dir_.empty())
        fatal("result store: empty directory path");
    // Create the path one component at a time (mkdir -p): sweeps are
    // routinely pointed at build-tree subdirectories that do not exist
    // yet. Existing components are fine; anything else is fatal.
    std::string prefix;
    std::size_t pos = 0;
    while (pos <= dir_.size()) {
        std::size_t next = dir_.find('/', pos);
        if (next == std::string::npos)
            next = dir_.size();
        prefix = dir_.substr(0, next);
        pos = next + 1;
        if (prefix.empty() || prefix == ".")
            continue;
        if (mkdir(prefix.c_str(), 0777) != 0 && errno != EEXIST)
            fatal("result store: cannot create %s: %s", prefix.c_str(),
                  std::strerror(errno));
    }
    struct stat st;
    if (stat(dir_.c_str(), &st) != 0 || !S_ISDIR(st.st_mode))
        fatal("result store: %s is not a directory", dir_.c_str());
}

bool
ResultStore::lookup(const StoreKey &key, RunResult *out) const
{
    const std::string path = dir_ + "/" + key.fileName();
    std::string bytes;
    if (!readFileBytes(path, &bytes))
        return false;  // absent (the common miss): stay quiet
    JsonValue doc;
    std::string error;
    if (!parseJson(bytes, &doc, &error)) {
        warn("result store: %s is corrupt (%s); treating as a miss",
             path.c_str(), error.c_str());
        return false;
    }
    const JsonValue *schema = doc.find("schema");
    const JsonValue *canonical = doc.find("canonical");
    if (!schema || schema->asString() != "fdp-store-v1" || !canonical ||
        canonical->asString() != key.canonical) {
        warn("result store: %s does not match its key; treating as a "
             "miss", path.c_str());
        return false;
    }
    if (!parseStoredResult(doc, out, &error)) {
        warn("result store: %s is corrupt (%s); treating as a miss",
             path.c_str(), error.c_str());
        return false;
    }
    return true;
}

void
ResultStore::insert(const StoreKey &key, const RunResult &result) const
{
    std::string error;
    if (!writeFileAtomic(dir_, key.fileName(),
                         storeEntryJson(key, result), &error))
        fatal("result store: cannot write entry: %s", error.c_str());
}

std::vector<std::string>
ResultStore::entryFiles() const
{
    std::vector<std::string> files;
    DIR *d = opendir(dir_.c_str());
    if (!d)
        fatal("result store: cannot list %s: %s", dir_.c_str(),
              std::strerror(errno));
    while (const dirent *ent = readdir(d)) {
        const std::string name = ent->d_name;
        if (name.size() > 5 && name[0] != '.' &&
            name.compare(name.size() - 5, 5, ".json") == 0)
            files.push_back(name);
    }
    closedir(d);
    std::sort(files.begin(), files.end());
    return files;
}

bool
ResultStore::readEntry(const std::string &fileName, StoreEntry *out,
                       std::string *error) const
{
    const std::string path = dir_ + "/" + fileName;
    std::string bytes;
    if (!readFileBytes(path, &bytes)) {
        *error = "cannot read " + path;
        return false;
    }
    JsonValue doc;
    if (!parseJson(bytes, &doc, error))
        return false;
    const JsonValue *schema = doc.find("schema");
    if (!schema || schema->asString() != "fdp-store-v1") {
        *error = "not an fdp-store-v1 document";
        return false;
    }
    out->fileName = fileName;
    out->canonical = doc.find("canonical") ?
        doc.find("canonical")->asString() : "";
    out->benchmark = doc.find("benchmark") ?
        doc.find("benchmark")->asString() : "";
    out->configLabel = doc.find("config") ?
        doc.find("config")->asString() : "";
    out->binaryRev = doc.find("binary_rev") ?
        doc.find("binary_rev")->asString() : "";
    out->simCoreVersion = static_cast<unsigned>(
        doc.find("sim_core_version")
            ? doc.find("sim_core_version")->asNumber()
            : 0.0);
    return parseStoredResult(doc, &out->result, error);
}

bool
ResultStore::copyEntryTo(const std::string &fileName,
                         const ResultStore &dst, std::string *error) const
{
    StoreEntry entry;
    if (!readEntry(fileName, &entry, error))
        return false;
    std::string bytes;
    if (!readFileBytes(dir_ + "/" + fileName, &bytes)) {
        *error = "cannot re-read " + dir_ + "/" + fileName;
        return false;
    }
    return writeFileAtomic(dst.dir(), fileName, bytes, error);
}

void
ResultStore::removeEntry(const std::string &fileName) const
{
    std::remove((dir_ + "/" + fileName).c_str());
}

} // namespace fdp
