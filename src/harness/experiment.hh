/**
 * @file
 * Experiment runner: assembles a full simulated machine (workload ->
 * core -> memory system -> prefetcher -> FDP controller), runs it, and
 * returns the metrics every paper table/figure is built from.
 */

#ifndef FDP_HARNESS_EXPERIMENT_HH
#define FDP_HARNESS_EXPERIMENT_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/fdp_controller.hh"
#include "cpu/ooo_core.hh"
#include "manage/prefetcher_manager.hh"
#include "mem/memory_system.hh"
#include "prefetch/prefetcher.hh"
#include "snap/machine_snapshot.hh"
#include "workload/generators.hh"

namespace fdp
{

/** Which prefetcher the machine uses. */
enum class PrefetcherKind : std::uint8_t
{
    None,
    Stream,
    GhbCdc,
    Stride,
    Vldp,
    Dspatch,
    NextLine,
};

/** Whether a runtime manager sits above the prefetcher. */
enum class ManagerKind : std::uint8_t
{
    /** The configured PrefetcherKind runs statically. */
    Off,
    /** ManagedPrefetcher explores/exploits the configured zoo. */
    Explore,
};

/** One complete machine + policy configuration. */
struct RunConfig
{
    MachineParams machine;
    CoreParams core;
    PrefetcherKind prefetcher = PrefetcherKind::Stream;
    /** Aggressiveness used while dynamic aggressiveness is off. */
    unsigned staticLevel = kMaxAggrLevel;
    FdpParams fdp;
    /** Runtime prefetcher management above FDP (DESIGN.md §17). */
    ManagerKind manager = ManagerKind::Off;
    ManagerParams managerParams;
    /** Candidate zoo when manager != Off; empty = defaultManagerZoo(). */
    std::vector<PrefetcherKind> managerZoo;
    std::uint64_t numInsts = 5'000'000;
    /**
     * Instructions simulated before measurement begins. The warm-up
     * phase runs with the prefetcher detached, so the warmed machine
     * state is a pure function of (benchmark, machine geometry,
     * warmupInsts) — never of the prefetcher or FDP policy — and one
     * warm snapshot can seed every cell of a policy sweep
     * (DESIGN.md Section 16). 0 (the default) measures from reset.
     */
    std::uint64_t warmupInsts = 0;

    /// @name Named configurations used throughout the paper
    /// @{

    /** No prefetcher at all. */
    static RunConfig noPrefetching();

    /** Traditional static configuration at @p level, MRU insertion. */
    static RunConfig staticLevelConfig(unsigned level,
                                       InsertPos ins = InsertPos::Mru);

    /** Dynamic Aggressiveness only (Section 5.1). */
    static RunConfig dynamicAggressiveness();

    /** Dynamic Insertion only, on a Very Aggressive prefetcher (5.2). */
    static RunConfig dynamicInsertion(unsigned staticLevel = kMaxAggrLevel);

    /** Full FDP: Dynamic Aggressiveness + Dynamic Insertion (5.3). */
    static RunConfig fullFdp();

    /** Section 5.6 ablation: throttle on accuracy alone. */
    static RunConfig accuracyOnlyFdp();

    /// @}
};

/** Everything a bench binary needs from one run. */
struct RunResult
{
    std::string benchmark;
    std::string config;
    std::uint64_t insts = 0;
    std::uint64_t cycles = 0;
    double ipc = 0.0;
    /** Memory bus accesses per thousand retired instructions. */
    double bpki = 0.0;
    double accuracy = 0.0;
    double lateness = 0.0;
    double pollution = 0.0;
    std::uint64_t prefSent = 0;
    std::uint64_t prefUsed = 0;
    std::uint64_t busAccesses = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t demandAccesses = 0;
    std::uint64_t demandGrants = 0;
    std::uint64_t prefetchGrants = 0;
    std::uint64_t writebackGrants = 0;
    std::uint64_t mshrStallCount = 0;
    std::uint64_t prefDropQueueFull = 0;
    double avgMissLatency = 0.0;
    /** Fraction of sampling intervals at each aggressiveness level. */
    std::array<double, 5> levelDist{};
    /** Fraction of prefetch fills per insertion position (LRU..MRU). */
    std::array<double, 4> insertDist{};
};

/** Build the configured prefetcher (nullptr for PrefetcherKind::None). */
std::unique_ptr<Prefetcher> makePrefetcher(PrefetcherKind kind,
                                           unsigned level);

/** Stable CLI/name-table identifier for @p kind ("stream", "vldp", …). */
const char *prefetcherKindName(PrefetcherKind kind);

/**
 * A per-core prefetcher selection as named on a command line or in a
 * workload mix: either one concrete PrefetcherKind, or the runtime
 * manager over the default zoo.
 */
struct PrefetcherSelection
{
    PrefetcherKind kind = PrefetcherKind::Stream;
    ManagerKind manager = ManagerKind::Off;
};

/** Every name prefetcherSelectionFromName accepts, in display order. */
const std::vector<std::string> &knownPrefetcherNames();

/** Resolve "none|stream|ghb|stride|vldp|dspatch|nextline|manager";
 *  unknown names are a clean fatal listing the valid ones. */
PrefetcherSelection prefetcherSelectionFromName(const std::string &name);

/** Apply @p name's selection to a copy of @p base. */
RunConfig applyPrefetcherSelection(const RunConfig &base,
                                   const std::string &name);

/** The manager's candidate zoo when RunConfig.managerZoo is empty. */
std::vector<PrefetcherKind> defaultManagerZoo();

/**
 * Build the run's prefetcher from the full config: the static
 * PrefetcherKind when the manager is off, or a ManagedPrefetcher over
 * the configured zoo (every candidate at the config's start level).
 */
std::unique_ptr<Prefetcher> makeRunPrefetcher(const RunConfig &config);

/**
 * One fully-assembled simulated machine: the event queue, the three
 * stat groups, the prefetcher, the FDP controller, the memory system,
 * and the core, wired together for @p config and driving @p workload.
 *
 * When @p config.warmupInsts is 0 the prefetcher is attached from
 * construction (the classic measure-from-reset machine). Otherwise it
 * is built but left detached — the warm-up phase runs prefetcher-free,
 * and measurementBoundary() attaches it. Snapshot capture and restore
 * see the machine through parts().
 */
struct SimMachine
{
    SimMachine(Workload &workload, const RunConfig &config);

    /** The snapshot view of this machine. */
    SnapshotParts parts();

    EventQueue events;
    StatGroup fdpStats{"fdp"};
    StatGroup memStats{"mem"};
    StatGroup coreStats{"core"};
    std::unique_ptr<Prefetcher> prefetcher;
    FdpController fdp;
    MemorySystem mem;
    OooCore core;
    Workload &workload;
};

/**
 * Transition @p m from warm-up to measurement: drain in-flight misses
 * to a quiesce point, flush and zero every statistic, zero DRAM's
 * per-core attribution, reset the FDP controller to its configured
 * initial policy, and attach the per-configuration prefetcher. Both
 * the cold path (after an in-place warm-up run) and the fork path
 * (after restoring a warm snapshot) cross exactly this boundary, which
 * is what makes them bit-identical.
 */
void measurementBoundary(SimMachine &m);

/**
 * Wire @p m's Auditable components into @p audits and, in debug builds
 * (or under FDP_AUDIT=1), re-audit at every sampling-interval boundary.
 * Returns whether periodic auditing is active, so the caller knows to
 * run a final pass after the measured run.
 */
bool wireAudits(SimMachine &m, AuditSet &audits);

/** Pull every RunResult field out of a finished measured run. */
RunResult extractResult(SimMachine &m, const std::string &configLabel);

/**
 * Run one named SPEC stand-in under @p config.
 *
 * The workload seed is the benchmark's calibrated one from
 * spec_suite.cc — a pure function of the benchmark name alone, never of
 * the configuration, scheduling, or completion order of other runs. All
 * configurations therefore see the identical trace (DESIGN.md Section
 * 10); runWorkload leaves caller-built workloads untouched.
 */
RunResult runBenchmark(const std::string &benchmark,
                       const RunConfig &config,
                       const std::string &configLabel);

/** Run a custom workload under @p config. */
RunResult runWorkload(Workload &workload, const RunConfig &config,
                      const std::string &configLabel);

/**
 * Run @p benchmark live exactly as runBenchmark does while recording
 * every micro-op the core consumes into an fdptrace-v1 file at
 * @p tracePath. The core pulls exactly numInsts ops, so replaying the
 * file with the same configuration is bit-identical to this run.
 */
RunResult recordBenchmark(const std::string &benchmark,
                          const RunConfig &config,
                          const std::string &configLabel,
                          const std::string &tracePath);

/**
 * Replay a recorded trace through the standard machine. Fatal (before
 * simulating anything) when the trace holds fewer micro-ops than
 * config.numInsts would consume.
 */
RunResult replayTrace(const std::string &tracePath,
                      const RunConfig &config,
                      const std::string &configLabel);

/** Run every benchmark in @p benchmarks under @p config. */
std::vector<RunResult> runSuite(const std::vector<std::string> &benchmarks,
                                const RunConfig &config,
                                const std::string &configLabel);

/**
 * Instruction-count override for bench binaries: honors
 * "--insts N" and "--quick" (1M) command-line flags. Fatal with a
 * clear diagnostic when --insts is trailing or not a number.
 */
std::uint64_t instructionBudget(int argc, char **argv,
                                std::uint64_t fallback = 5'000'000);

/**
 * Parse the value of a numeric command-line flag defensively: fatal
 * (with the offending flag and text in the message) unless @p text is
 * a plain positive decimal integer no larger than @p maxValue.
 */
std::uint64_t parseCountArg(const char *flag, const char *text,
                            std::uint64_t maxValue = ~0ull);

} // namespace fdp

#endif // FDP_HARNESS_EXPERIMENT_HH
