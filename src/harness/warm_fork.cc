#include "harness/warm_fork.hh"

#include <cerrno>
#include <cstring>

#include <sys/stat.h>
#include <sys/types.h>

#include "harness/result_store.hh"
#include "sim/check.hh"
#include "sim/logging.hh"
#include "workload/spec_suite.hh"

namespace fdp
{

SnapshotImage
captureWarmSnapshot(const std::string &benchmark, const RunConfig &config)
{
    if (config.warmupInsts == 0)
        fatal("warm snapshot of %s: warmupInsts is 0 (nothing to warm)",
              benchmark.c_str());

    // The neutral machine: the cell's geometry with no prefetcher and
    // the default (inert) FDP policy. Because warm-up always runs with
    // the prefetcher detached, this machine's events/workload/core/mem
    // state after warmupInsts instructions is bit-identical to any
    // per-config machine's at its own warm-up boundary.
    RunConfig neutral = RunConfig::noPrefetching();
    neutral.machine = config.machine;
    neutral.core = config.core;
    neutral.warmupInsts = config.warmupInsts;

    SyntheticWorkload workload(benchmarkParams(benchmark));
    SimMachine m(workload, neutral);
    m.core.run(config.warmupInsts);
    drainToQuiesce(m.events, m.mem);
    FDP_ASSERT(m.events.empty(),
               "warm snapshot: %zu events pending after drain",
               m.events.size());
    m.mem.flushStats();

    SnapshotImageBody body = captureMachine(m.parts());
    SnapshotImage image;
    image.benchmark = benchmark;
    image.geometry = machineGeometry(config.machine, config.core);
    image.warmupInsts = config.warmupInsts;
    image.sectionCount = body.sectionCount;
    image.body = std::move(body.bytes);
    return image;
}

void
saveWarmSnapshot(const std::string &benchmark, const RunConfig &config,
                 const std::string &path)
{
    writeSnapshotFile(path, captureWarmSnapshot(benchmark, config));
}

RunResult
runBenchmarkFromSnapshot(const SnapshotImage &image, const RunConfig &config,
                         const std::string &configLabel)
{
    if (config.warmupInsts != image.warmupInsts)
        fatal("snapshot: config warms %llu instructions, snapshot was "
              "taken after %llu",
              static_cast<unsigned long long>(config.warmupInsts),
              static_cast<unsigned long long>(image.warmupInsts));
    const std::string geom = machineGeometry(config.machine, config.core);
    if (geom != image.geometry)
        fatal("snapshot: machine geometry mismatch\n  machine:  %s\n"
              "  snapshot: %s", geom.c_str(), image.geometry.c_str());

    SyntheticWorkload workload(benchmarkParams(image.benchmark));
    SimMachine m(workload, config);
    restoreMachine(m.parts(), image.body, RestoreMode::Fork);

    AuditSet audits;
    const bool periodicAudit = wireAudits(m, audits);

    measurementBoundary(m);
    m.core.run(config.numInsts);

    if (periodicAudit)
        audits.runAll();

    return extractResult(m, configLabel);
}

std::string
warmSnapshotKey(const std::string &benchmark, const RunConfig &config,
                std::uint64_t traceHash)
{
    return "fdpsnap-store-v1 bench=" + benchmark +
           " seed=" + std::to_string(benchmarkParams(benchmark).seed) +
           " warmtrace=" + hashHex(traceHash) +
           " geom{" + machineGeometry(config.machine, config.core) + "}" +
           " warmup=" + std::to_string(config.warmupInsts) +
           " rev=" + binaryRevision() +
           " simcore=" + std::to_string(kSimCoreVersion) +
           " snapver=" + std::to_string(kSnapVersion);
}

std::string
warmSnapshotKey(const std::string &benchmark, const RunConfig &config)
{
    return warmSnapshotKey(
        benchmark, config,
        workloadTraceHash(benchmark, config.warmupInsts));
}

std::string
warmSnapshotPath(const std::string &storeDir, const std::string &key)
{
    const std::string dir = storeDir + "/snaps";
    if (mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST)
        fatal("sweep store: cannot create %s: %s", dir.c_str(),
              std::strerror(errno));
    return dir + "/" + hashHex(fnv1a64(key)) + ".fdpsnap";
}

SnapshotImage
loadOrCaptureWarmSnapshot(const std::string &storeDir,
                          const std::string &benchmark,
                          const RunConfig &config, std::uint64_t traceHash,
                          bool *wasHit)
{
    if (wasHit)
        *wasHit = false;
    if (storeDir.empty())
        return captureWarmSnapshot(benchmark, config);

    const std::string key = warmSnapshotKey(benchmark, config, traceHash);
    const std::string path = warmSnapshotPath(storeDir, key);
    struct stat st;
    if (stat(path.c_str(), &st) == 0) {
        // Content-addressed: the identity header can only disagree on a
        // key collision, which we treat as a miss and overwrite.
        SnapshotImage image = readSnapshotFile(path);
        if (image.benchmark == benchmark &&
            image.warmupInsts == config.warmupInsts &&
            image.geometry ==
                machineGeometry(config.machine, config.core)) {
            if (wasHit)
                *wasHit = true;
            return image;
        }
    }
    SnapshotImage image = captureWarmSnapshot(benchmark, config);
    writeSnapshotFile(path, image);
    return image;
}

} // namespace fdp
