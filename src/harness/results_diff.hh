/**
 * @file
 * Cross-run regression differ over fdp-results-v1 files.
 *
 * Two tolerance regimes, matched to what each metric class can
 * promise (DESIGN.md Section 15):
 *
 *   - Deterministic metrics (simulated counters and ratios: insts,
 *     cycles, IPC, BPKI, accuracy/lateness/pollution, bus accesses)
 *     are bit-identical across machines, --jobs, and completion order
 *     by the determinism contract. ANY difference — in either
 *     direction — is simulation-behavior drift and blocks by default.
 *   - Timing metrics (ns/op, insts/s, speedups) vary with the host;
 *     breaches beyond the (wide) tolerance are reported as noise and
 *     only block under strictTiming.
 *
 * An entry present in the baseline but absent from the fresh run
 * blocks too (a silently vanished metric is drift in the harness);
 * new entries are informational.
 */

#ifndef FDP_HARNESS_RESULTS_DIFF_HH
#define FDP_HARNESS_RESULTS_DIFF_HH

#include <cstddef>
#include <string>
#include <vector>

#include "sim/table.hh"

namespace fdp
{

/** One loaded fdp-results-v1 document. */
struct ResultsFile
{
    struct Entry
    {
        std::string name;
        std::string unit;
        std::string better;  ///< "higher" or "lower"
        double value = 0.0;
    };

    std::string path;
    std::string source;
    std::vector<Entry> entries;  ///< file order preserved

    const Entry *find(const std::string &name) const;
};

/**
 * Load and validate @p path as fdp-results-v1. Returns false with a
 * diagnostic on I/O failure, JSON syntax errors, a wrong schema, or
 * structurally bad entries (missing name/value, bad better).
 */
bool loadResultsFile(const std::string &path, ResultsFile *out,
                     std::string *error);

/** Which tolerance regime a metric belongs to. */
enum class MetricClass
{
    Deterministic,
    Timing,
};

/**
 * Classify by unit first (ns/op, insts/s, x, s, runs/s are timing),
 * then by name (".../ns", "..._per_s", "...wall..."): everything the
 * simulator computes is deterministic; everything the host clock
 * touches is timing. Simulated speedups use unit "ratio" and stay
 * deterministic; wall-clock speedups use unit "x".
 */
MetricClass classifyMetric(const std::string &name,
                           const std::string &unit);

/** Tolerances for one diff. */
struct DiffOptions
{
    /** Relative tolerance for timing metrics (0.75 = ±75%). */
    double timingTol = 0.75;
    /** Relative tolerance for deterministic metrics; 0 = exact. */
    double detTol = 0.0;
    /** Timing breaches block instead of reporting as noise. */
    bool strictTiming = false;
};

/** Per-entry verdict. */
enum class DiffStatus
{
    Ok,         ///< within tolerance
    Improved,   ///< timing beyond tolerance in the good direction
    Noise,      ///< timing beyond tolerance, non-blocking
    Regressed,  ///< blocking: deterministic drift, or strict timing
    Missing,    ///< blocking: in baseline, absent from fresh run
    Added,      ///< informational: new in fresh run
};

const char *diffStatusName(DiffStatus status);

struct DiffEntry
{
    std::string name;
    std::string unit;
    MetricClass cls = MetricClass::Deterministic;
    DiffStatus status = DiffStatus::Ok;
    double baseValue = 0.0;
    double freshValue = 0.0;
    /** (fresh - base) / |base|; +/-inf when base == 0 != fresh. */
    double relDelta = 0.0;
};

struct DiffReport
{
    std::vector<DiffEntry> entries;  ///< baseline order, then additions
    std::size_t ok = 0;
    std::size_t improved = 0;
    std::size_t noise = 0;
    std::size_t regressed = 0;
    std::size_t missing = 0;
    std::size_t added = 0;

    /** True when the diff must fail its caller (CI gate semantics). */
    bool blocking() const { return regressed > 0 || missing > 0; }
};

/** Compare @p fresh against @p base under @p options. */
DiffReport diffResults(const ResultsFile &base, const ResultsFile &fresh,
                       const DiffOptions &options);

/**
 * Human-readable table of every non-Ok entry (all entries when
 * @p everything), regressions first.
 */
Table buildDiffTable(const DiffReport &report, bool everything = false);

/**
 * Write the machine-readable verdict ("fdp-diff-v1": options, counts,
 * overall pass/fail, and every non-Ok entry) to @p path. Fatal on I/O
 * failure.
 */
void writeVerdictFile(const std::string &path, const DiffReport &report,
                      const ResultsFile &base, const ResultsFile &fresh,
                      const DiffOptions &options);

} // namespace fdp

#endif // FDP_HARNESS_RESULTS_DIFF_HH
