/**
 * @file
 * Minimal JSON document model and recursive-descent parser for the
 * harness' own artifacts: fdp-results-v1 files (ResultsJson, and the
 * tools/bench.sh merge of them) and fdp-store-v1 result-store entries.
 *
 * This is a reader for machine-written JSON, not a general-purpose
 * library: it accepts the full JSON grammar but keeps the model to the
 * five shapes those files use (object, array, string, number, bool;
 * null parses to a distinct kind). Numbers are stored as doubles
 * printed with max_digits10 by the writers, so parsing recovers the
 * exact bit pattern. Parse failures never crash or exit: parse()
 * returns false with a line-numbered message, because a truncated
 * store entry must read as "absent", not take the sweep down.
 */

#ifndef FDP_HARNESS_JSON_VALUE_HH
#define FDP_HARNESS_JSON_VALUE_HH

#include <string>
#include <utility>
#include <vector>

namespace fdp
{

/** One parsed JSON value (a tree; children owned by the parent). */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> items;  ///< Array elements, in order.
    /** Object members in insertion order (files are machine-written,
     *  so duplicate keys do not occur; the last one wins if they do). */
    std::vector<std::pair<std::string, JsonValue>> members;

    /** Object member by key, or nullptr (also when not an object). */
    const JsonValue *find(const std::string &key) const;

    /** @{ Typed accessors: the value if it has that kind, else the
     *  fallback. Callers validate kinds explicitly where it matters. */
    double asNumber(double fallback = 0.0) const;
    const std::string &asString() const;  ///< "" when not a string
    /** @} */
};

/**
 * Parse @p text as one JSON document. Returns true and fills @p out on
 * success; returns false and fills @p error (with a 1-based line
 * number) on any syntax error, trailing garbage, or input deeper than
 * an internal nesting limit.
 */
bool parseJson(const std::string &text, JsonValue *out, std::string *error);

} // namespace fdp

#endif // FDP_HARNESS_JSON_VALUE_HH
