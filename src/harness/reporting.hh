/**
 * @file
 * Table-building helpers shared by the bench binaries: each paper
 * figure/table is "benchmarks down the side, configurations across the
 * top, one metric in the cells, a mean row at the bottom".
 */

#ifndef FDP_HARNESS_REPORTING_HH
#define FDP_HARNESS_REPORTING_HH

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "sim/table.hh"

namespace fdp
{

/** Pulls one metric out of a RunResult. */
using Metric = std::function<double(const RunResult &)>;

/** How the mean row at the bottom of a table is computed. */
enum class MeanKind
{
    Geometric,   ///< the paper's IPC means
    Arithmetic,  ///< the paper's BPKI means ("amean")
    None,
};

/**
 * Build a benchmarks x configurations table of one metric.
 *
 * @param results  results[c][b] is benchmark b under configuration c
 *                 (all inner vectors ordered like @p benchmarks).
 */
Table buildMetricTable(const std::string &title,
                       const std::vector<std::string> &benchmarks,
                       const std::vector<std::string> &configNames,
                       const std::vector<std::vector<RunResult>> &results,
                       const Metric &metric, int decimals, MeanKind mean);

/** Mean of @p metric over one configuration's results. */
double meanOf(const std::vector<RunResult> &results, const Metric &metric,
              MeanKind mean);

/** Convenience metrics. */
inline double metricIpc(const RunResult &r) { return r.ipc; }
inline double metricBpki(const RunResult &r) { return r.bpki; }
inline double metricAccuracy(const RunResult &r) { return r.accuracy; }
inline double metricLateness(const RunResult &r) { return r.lateness; }
inline double metricPollution(const RunResult &r) { return r.pollution; }

/**
 * Percentage change of @p metric's mean from @p base to @p test
 * (0.065 = +6.5%).
 */
double meanDelta(const std::vector<RunResult> &base,
                 const std::vector<RunResult> &test, const Metric &metric,
                 MeanKind mean);

/** Wall-clock accounting for one sweep (see printSweepThroughput). */
struct SweepStats
{
    std::size_t runs = 0;     ///< (benchmark, config) cells executed
    unsigned jobs = 1;        ///< worker threads used
    double wallSeconds = 0.0;

    double runsPerSecond() const;
};

/**
 * Emit the machine-readable sweep throughput line
 * ("sweep-throughput: runs=N jobs=N wall_s=X runs_per_s=Y") BENCH
 * tooling tracks sweep speed with. Goes to @p os — std::cerr in the
 * one-argument form, so stdout result tables stay bit-identical across
 * thread counts.
 */
void printSweepThroughput(const SweepStats &stats, std::ostream &os);
void printSweepThroughput(const SweepStats &stats);

/**
 * Builder for the "fdp-results-v1" JSON document shared by the sweep
 * binaries' --out files, the macro benchmark, and tools/bench.sh's
 * BENCH_<rev>.json. One flat list of named scalar metrics:
 *
 *   {"schema": "fdp-results-v1", "source": "...",
 *    "entries": [{"name": ..., "unit": ..., "better": ..., "value": ...}]}
 *
 * Values round-trip exactly (printed with max_digits10), so diffing two
 * files compares the actual doubles, not a formatting of them.
 */
class ResultsJson
{
  public:
    explicit ResultsJson(std::string source);

    /** @p better is "higher" or "lower" (which direction is good). */
    void add(const std::string &name, const std::string &unit, double value,
             const std::string &better);

    /** Append every headline metric of one run under name prefix @p prefix. */
    void addRunResult(const std::string &prefix, const RunResult &r);

    void write(std::ostream &os) const;

    /** Write to @p path; fatal on I/O failure (a sweep's results are
     *  too expensive to lose silently). */
    void writeFile(const std::string &path) const;

    std::size_t size() const { return entries_.size(); }

  private:
    struct Entry
    {
        std::string name;
        std::string unit;
        std::string better;
        double value;
    };

    std::string source_;
    std::vector<Entry> entries_;
};

/**
 * Value of a "--out PATH" flag, or "" when absent. Fatal when --out is
 * trailing. Scans argv like instructionBudget so every sweep binary can
 * adopt it without reworking its CLI parsing.
 */
std::string resultsOutPath(int argc, char **argv);

/**
 * Persist one sweep (the same results[c][b] matrix buildMetricTable
 * consumes) to @p path as fdp-results-v1, one entry per
 * (benchmark, config, metric). No-op when @p path is empty, so callers
 * can pass resultsOutPath() straight through.
 */
void writeSweepResults(const std::string &path, const std::string &source,
                       const std::vector<std::string> &benchmarks,
                       const std::vector<std::string> &configNames,
                       const std::vector<std::vector<RunResult>> &results);

} // namespace fdp

#endif // FDP_HARNESS_REPORTING_HH
