/**
 * @file
 * Warm-fork sweep support (DESIGN.md Section 16).
 *
 * A sweep cell with warmupInsts > 0 spends most of its time re-warming
 * the same caches: the warm-up phase runs with the prefetcher detached,
 * so its machine state depends only on (benchmark, machine geometry,
 * warmupInsts) — one neutral warm-up serves every policy configuration.
 * This module captures that shared state once as an fdpsnap-v1 image
 * and forks each per-config measured run from the restored image,
 * bit-identical to warming each cell cold (runWorkload's in-place
 * warm-up path), because both sides cross the same measurement
 * boundary.
 *
 * Warm images are content-addressed into a result store's snaps/
 * subdirectory so resumed sweeps skip even the single warm-up run.
 */

#ifndef FDP_HARNESS_WARM_FORK_HH
#define FDP_HARNESS_WARM_FORK_HH

#include <string>

#include "harness/experiment.hh"
#include "snap/snapshot_file.hh"

namespace fdp
{

/**
 * Run @p config.warmupInsts instructions of @p benchmark on a neutral
 * machine (no prefetcher, default FDP policy, @p config's geometry),
 * drain to a quiesce point, and capture the machine. Fatal unless
 * warmupInsts > 0.
 */
SnapshotImage captureWarmSnapshot(const std::string &benchmark,
                                  const RunConfig &config);

/** captureWarmSnapshot + writeSnapshotFile (the --save-snap CLI path). */
void saveWarmSnapshot(const std::string &benchmark, const RunConfig &config,
                      const std::string &path);

/**
 * Fork one measured run from a warm image: rebuild @p config's machine,
 * restore the config-neutral sections, cross the measurement boundary,
 * and run config.numInsts instructions. Fatal when the image's
 * geometry or warm-up length disagrees with @p config.
 */
RunResult runBenchmarkFromSnapshot(const SnapshotImage &image,
                                   const RunConfig &config,
                                   const std::string &configLabel);

/**
 * Canonical content key of the warm snapshot @p config needs for
 * @p benchmark: the benchmark identity (name, seed, a content hash of
 * the first warmupInsts micro-ops), the machine geometry, the warm-up
 * length, the binary revision, and the simulator/snapshot versions.
 * Policy knobs are deliberately absent — that is the sharing.
 */
std::string warmSnapshotKey(const std::string &benchmark,
                            const RunConfig &config);

/** Same, with the workload trace hash precomputed (sweeps memoize it). */
std::string warmSnapshotKey(const std::string &benchmark,
                            const RunConfig &config,
                            std::uint64_t traceHash);

/** Entry path of the snapshot keyed @p key inside @p storeDir
 *  (creating the snaps/ subdirectory on first use). */
std::string warmSnapshotPath(const std::string &storeDir,
                             const std::string &key);

/**
 * Fetch the warm image for (benchmark, config) from the store at
 * @p storeDir, or capture it (and persist it) on a miss. An empty
 * @p storeDir skips persistence entirely. @p wasHit reports which
 * happened (may be nullptr).
 */
SnapshotImage loadOrCaptureWarmSnapshot(const std::string &storeDir,
                                        const std::string &benchmark,
                                        const RunConfig &config,
                                        std::uint64_t traceHash,
                                        bool *wasHit);

} // namespace fdp

#endif // FDP_HARNESS_WARM_FORK_HH
