#include "harness/sweep_pool.hh"

// fdp-analyze: suppress-file(wall-clock, steady_clock feeds the
// stderr throughput report only; simulated results never read it)

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>

#include "harness/reporting.hh"
#include "harness/result_store.hh"
#include "harness/warm_fork.hh"
#include "sim/logging.hh"
#include "workload/spec_suite.hh"

namespace fdp
{

namespace
{

// More workers than this is a configuration typo, not a machine.
constexpr std::uint64_t kMaxSweepJobs = 4096;

/** Process-wide store attachment (set once at startup, before any
 *  sweep runs, so there is no cross-thread mutation to order). */
SweepStoreConfig g_sweepStore;

} // namespace

SweepStoreConfig
parseSweepStoreArgs(int argc, char **argv)
{
    SweepStoreConfig config;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--store") == 0) {
            if (i + 1 >= argc)
                fatal("--store requires a directory path argument");
            config.dir = argv[++i];
        } else if (std::strcmp(argv[i], "--resume") == 0) {
            config.resume = true;
        }
    }
    if (config.resume && config.dir.empty())
        fatal("--resume needs --store DIR (nothing to resume from)");
    return config;
}

void
setSweepStore(const SweepStoreConfig &config)
{
    if (config.resume && config.dir.empty())
        fatal("sweep store: resume without a store directory");
    g_sweepStore = config;
}

const SweepStoreConfig &
sweepStore()
{
    return g_sweepStore;
}

SweepStoreConfig
configureSweepStore(int argc, char **argv)
{
    const SweepStoreConfig config = parseSweepStoreArgs(argc, argv);
    setSweepStore(config);
    return config;
}

SweepPool::SweepPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

SweepPool::~SweepPool()
{
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
        pending_.clear();
    }
    workReady_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
SweepPool::submit(std::function<void()> job)
{
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        pending_.push_back(std::move(job));
    }
    workReady_.notify_one();
}

void
SweepPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock,
                  [this] { return pending_.empty() && running_ == 0; });
    if (firstError_) {
        std::exception_ptr e = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(e);
    }
}

void
SweepPool::workerLoop()
{
    // A fatal() inside a job must not std::exit(1) from a worker:
    // sibling workers would still be running while static destructors
    // tear the process down. The guard turns it into a FatalError that
    // the catch below stores and wait() rethrows on the main thread.
    const detail::FatalThrowsGuard fatalThrows;
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workReady_.wait(lock, [this] {
                return stopping_ || !pending_.empty();
            });
            if (stopping_)
                return;
            job = std::move(pending_.front());
            pending_.pop_front();
            ++running_;
        }
        try {
            job();
        } catch (...) {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            --running_;
            if (pending_.empty() && running_ == 0)
                allDone_.notify_all();
        }
    }
}

std::vector<std::vector<RunResult>>
runSweep(const std::vector<std::string> &benchmarks,
         const std::vector<LabeledConfig> &configs, unsigned jobs)
{
    if (jobs == 0)
        jobs = defaultSweepJobs();
    const std::size_t cells = benchmarks.size() * configs.size();
    // Clamp before branching so the throughput line reports the worker
    // count that actually ran: never more than one per cell, and the
    // cells <= 1 fallback below is single-threaded by construction.
    if (static_cast<std::size_t>(jobs) > cells)
        jobs = cells == 0 ? 1 : static_cast<unsigned>(cells);
    // A bad benchmark name is a user error: report it from the main
    // thread, before any worker exists, instead of from inside a job.
    for (const auto &b : benchmarks)
        benchmarkParams(b);
    const auto start = std::chrono::steady_clock::now();

    std::vector<std::vector<RunResult>> results(configs.size());
    for (auto &row : results)
        row.resize(benchmarks.size());

    // Result-store attachment: resolve every cell's key up front (the
    // workload trace hash is memoized per (benchmark, numInsts) pair),
    // and serve resumable cells straight into their slots. All store
    // lookups happen here on the main thread; workers only insert, and
    // each insert touches its own entry file.
    const SweepStoreConfig storeCfg = sweepStore();
    std::unique_ptr<ResultStore> store;
    std::vector<StoreKey> keys;
    std::vector<char> cached;
    std::size_t hits = 0;
    if (storeCfg.enabled()) {
        store = std::make_unique<ResultStore>(storeCfg.dir);
        keys.resize(cells);
        cached.assign(cells, 0);
        std::map<std::pair<std::string, std::uint64_t>, std::uint64_t>
            traceHashes;
        for (std::size_t cell = 0; cell < cells; ++cell) {
            const std::size_t c = cell / benchmarks.size();
            const std::size_t b = cell % benchmarks.size();
            const auto hk = std::make_pair(benchmarks[b],
                                           configs[c].second.numInsts);
            auto it = traceHashes.find(hk);
            if (it == traceHashes.end())
                it = traceHashes
                         .emplace(hk,
                                  workloadTraceHash(hk.first, hk.second))
                         .first;
            keys[cell] = makeStoreKey(benchmarks[b], configs[c].second,
                                      configs[c].first, it->second);
            if (storeCfg.resume &&
                store->lookup(keys[cell], &results[c][b])) {
                cached[cell] = 1;
                ++hits;
            }
        }
    }
    const auto isCached = [&](std::size_t cell) {
        return !cached.empty() && cached[cell] != 0;
    };

    // Warm-fork attachment: cells with a warm-up phase share one
    // neutral warm snapshot per (benchmark, geometry, warmup) group —
    // captured here on the main thread (or served from the store's
    // snaps/ subdirectory), then fork-restored by each cell. Restoring
    // is bit-identical to warming in place (DESIGN.md Section 16), so
    // results do not depend on whether forking is active; FDP_NO_WARM_FORK=1
    // forces every cell down the cold in-place path.
    std::vector<std::shared_ptr<const SnapshotImage>> cellImage(cells);
    std::size_t snapGroups = 0, snapHits = 0;
    const char *noForkEnv = std::getenv("FDP_NO_WARM_FORK");
    if (noForkEnv == nullptr || *noForkEnv == '\0' ||
        std::strcmp(noForkEnv, "0") == 0) {
        std::map<std::string, std::shared_ptr<const SnapshotImage>> images;
        std::map<std::pair<std::string, std::uint64_t>, std::uint64_t>
            warmHashes;
        for (std::size_t cell = 0; cell < cells; ++cell) {
            if (isCached(cell))
                continue;
            const std::size_t c = cell / benchmarks.size();
            const std::size_t b = cell % benchmarks.size();
            const RunConfig &cfg = configs[c].second;
            if (cfg.warmupInsts == 0)
                continue;
            const auto hk =
                std::make_pair(benchmarks[b], cfg.warmupInsts);
            auto ht = warmHashes.find(hk);
            if (ht == warmHashes.end())
                ht = warmHashes
                         .emplace(hk,
                                  workloadTraceHash(hk.first, hk.second))
                         .first;
            const std::string key =
                warmSnapshotKey(benchmarks[b], cfg, ht->second);
            auto it = images.find(key);
            if (it == images.end()) {
                bool hit = false;
                it = images
                         .emplace(key, std::make_shared<SnapshotImage>(
                                           loadOrCaptureWarmSnapshot(
                                               storeCfg.dir, benchmarks[b],
                                               cfg, ht->second, &hit)))
                         .first;
                ++snapGroups;
                if (hit)
                    ++snapHits;
            }
            cellImage[cell] = it->second;
        }
    }
    const auto runCell = [&](std::size_t cell, const std::string &bench,
                             const LabeledConfig &cfg) {
        return cellImage[cell]
                   ? runBenchmarkFromSnapshot(*cellImage[cell], cfg.second,
                                              cfg.first)
                   : runBenchmark(bench, cfg.second, cfg.first);
    };

    if (jobs == 1) {
        // The pre-pool sequential path, byte for byte.
        for (std::size_t c = 0; c < configs.size(); ++c) {
            for (std::size_t b = 0; b < benchmarks.size(); ++b) {
                const std::size_t cell = c * benchmarks.size() + b;
                if (isCached(cell))
                    continue;
                results[c][b] = runCell(cell, benchmarks[b], configs[c]);
                if (store)
                    store->insert(keys[cell], results[c][b]);
            }
        }
    } else {
        // A worker fatal is deferred (FatalThrowsGuard) and re-raised
        // here on the main thread — but only after the pool has left
        // scope and joined every worker, so the exit cannot race them.
        std::string workerFatal;
        bool sawWorkerFatal = false;
        // LPT scheduling: submit the longest cells (most simulated
        // instructions) first so the pool tail does not idle behind one
        // long run picked up last. Ties keep the c-major submission
        // order, and every result still lands in its pre-sized slot, so
        // the output tables are unaffected by the ordering.
        std::vector<std::size_t> order;
        order.reserve(cells);
        for (std::size_t i = 0; i < cells; ++i)
            if (!isCached(i))
                order.push_back(i);
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t lhs, std::size_t rhs) {
                             const std::uint64_t li =
                                 configs[lhs / benchmarks.size()]
                                     .second.numInsts;
                             const std::uint64_t ri =
                                 configs[rhs / benchmarks.size()]
                                     .second.numInsts;
                             return li > ri;
                         });
        {
            SweepPool pool(jobs);
            for (const std::size_t cell : order) {
                const std::size_t c = cell / benchmarks.size();
                const std::size_t b = cell % benchmarks.size();
                RunResult *slot = &results[c][b];
                const std::string *bench = &benchmarks[b];
                const LabeledConfig *cfg = &configs[c];
                const ResultStore *cellStore = store.get();
                const StoreKey *key = cellStore ? &keys[cell] : nullptr;
                pool.submit([&runCell, cell, slot, bench, cfg, cellStore,
                             key] {
                    *slot = runCell(cell, *bench, *cfg);
                    if (cellStore)
                        cellStore->insert(*key, *slot);
                });
            }
            try {
                pool.wait();
            } catch (const FatalError &e) {
                sawWorkerFatal = true;
                workerFatal = e.what();
            }
        }
        if (sawWorkerFatal)
            fatal("%s", workerFatal.c_str());
    }

    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - start;
    SweepStats stats;
    stats.runs = cells - hits;  // cells actually simulated
    stats.jobs = jobs;
    stats.wallSeconds = wall.count();
    printSweepThroughput(stats);
    // Like the throughput line: stderr only, so stdout result tables
    // stay bit-identical between cold and resumed runs.
    if (store)
        std::cerr << "sweep-store: dir=" << store->dir()
                  << " resume=" << (storeCfg.resume ? 1 : 0)
                  << " hits=" << hits << " misses=" << (cells - hits)
                  << '\n';
    if (snapGroups > 0)
        std::cerr << "sweep-snap: groups=" << snapGroups
                  << " store-hits=" << snapHits
                  << " captured=" << (snapGroups - snapHits) << '\n';
    return results;
}

std::vector<RunResult>
runSuiteParallel(const std::vector<std::string> &benchmarks,
                 const RunConfig &config, const std::string &configLabel,
                 unsigned jobs)
{
    std::vector<LabeledConfig> configs = {{configLabel, config}};
    return std::move(runSweep(benchmarks, configs, jobs).front());
}

unsigned
defaultSweepJobs()
{
    if (const char *env = std::getenv("FDP_JOBS"))
        return static_cast<unsigned>(
            parseCountArg("FDP_JOBS", env, kMaxSweepJobs));
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

unsigned
sweepJobs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0) {
            if (i + 1 >= argc)
                fatal("--jobs requires a value (worker thread count)");
            return static_cast<unsigned>(
                parseCountArg("--jobs", argv[i + 1], kMaxSweepJobs));
        }
    }
    return defaultSweepJobs();
}

} // namespace fdp
