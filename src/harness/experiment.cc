#include "harness/experiment.hh"

#include <charconv>
#include <cstring>
#include <string>

#include "prefetch/ghb_prefetcher.hh"
#include "prefetch/stream_prefetcher.hh"
#include "prefetch/stride_prefetcher.hh"
#include "sim/check.hh"
#include "sim/logging.hh"
#include "trace/trace_workload.hh"
#include "workload/spec_suite.hh"

namespace fdp
{

RunConfig
RunConfig::noPrefetching()
{
    RunConfig c;
    c.prefetcher = PrefetcherKind::None;
    c.fdp.dynamicAggressiveness = false;
    c.fdp.dynamicInsertion = false;
    return c;
}

RunConfig
RunConfig::staticLevelConfig(unsigned level, InsertPos ins)
{
    RunConfig c;
    c.staticLevel = level;
    c.fdp.dynamicAggressiveness = false;
    c.fdp.dynamicInsertion = false;
    c.fdp.staticInsertPos = ins;
    return c;
}

RunConfig
RunConfig::dynamicAggressiveness()
{
    RunConfig c;
    c.fdp.dynamicAggressiveness = true;
    c.fdp.dynamicInsertion = false;
    c.fdp.staticInsertPos = InsertPos::Mru;
    return c;
}

RunConfig
RunConfig::dynamicInsertion(unsigned staticLevel)
{
    RunConfig c;
    c.staticLevel = staticLevel;
    c.fdp.dynamicAggressiveness = false;
    c.fdp.dynamicInsertion = true;
    return c;
}

RunConfig
RunConfig::fullFdp()
{
    RunConfig c;
    c.fdp.dynamicAggressiveness = true;
    c.fdp.dynamicInsertion = true;
    return c;
}

RunConfig
RunConfig::accuracyOnlyFdp()
{
    RunConfig c = fullFdp();
    c.fdp.accuracyOnly = true;
    return c;
}

std::unique_ptr<Prefetcher>
makePrefetcher(PrefetcherKind kind, unsigned level)
{
    switch (kind) {
      case PrefetcherKind::None:
        return nullptr;
      case PrefetcherKind::Stream: {
        StreamPrefetcherParams p;
        p.initialLevel = level;
        return std::make_unique<StreamPrefetcher>(p);
      }
      case PrefetcherKind::GhbCdc: {
        GhbPrefetcherParams p;
        p.initialLevel = level;
        return std::make_unique<GhbPrefetcher>(p);
      }
      case PrefetcherKind::Stride: {
        StridePrefetcherParams p;
        p.initialLevel = level;
        return std::make_unique<StridePrefetcher>(p);
      }
    }
    panic("unknown prefetcher kind");
}

RunResult
runWorkload(Workload &workload, const RunConfig &config,
            const std::string &configLabel)
{
    EventQueue events;
    StatGroup fdp_stats("fdp");
    StatGroup mem_stats("mem");
    StatGroup core_stats("core");

    FdpParams fp = config.fdp;
    const unsigned start_level =
        fp.dynamicAggressiveness ? fp.initialLevel : config.staticLevel;
    if (!fp.dynamicAggressiveness)
        fp.initialLevel = config.staticLevel;

    auto prefetcher = makePrefetcher(config.prefetcher, start_level);
    FdpController fdp(fp, prefetcher.get(), fdp_stats);
    MemorySystem mem(config.machine, events, prefetcher.get(), fdp,
                     mem_stats);
    OooCore core(config.core, mem, events, workload, core_stats);

    // Audit the assembled machine at every sampling-interval boundary in
    // debug builds (and whenever FDP_AUDIT=1 asks for it), so structural
    // corruption surfaces at the paper's natural checkpoint cadence
    // instead of as silently wrong results.
    AuditSet audits;
    audits.add(&events);
    audits.add(&fdp);
    audits.add(&mem);
    if (prefetcher)
        audits.add(prefetcher.get());
    // Auditable frontends (e.g. TraceWorkload) join the same pass.
    if (const auto *aw = dynamic_cast<const Auditable *>(&workload))
        audits.add(aw);
    const bool periodicAudit = debugBuild() || auditRequestedByEnv();
    if (periodicAudit)
        fdp.setEndOfIntervalHook([&audits] { audits.runAll(); });

    core.run(config.numInsts);

    if (periodicAudit)
        audits.runAll();

    RunResult r;
    r.benchmark = workload.name();
    r.config = configLabel;
    r.insts = core.retired();
    r.cycles = core.cycles();
    r.ipc = core.ipc();
    r.busAccesses = mem.dram().busAccesses();
    r.bpki = ratio(static_cast<double>(r.busAccesses),
                   static_cast<double>(r.insts) / 1000.0);
    r.accuracy = fdp.lifetimeAccuracy();
    r.lateness = fdp.lifetimeLateness();
    r.pollution = fdp.lifetimePollution();
    r.l2Misses = mem.l2Misses();
    r.demandAccesses = mem.demandAccesses();
    r.mshrStallCount = mem.mshrStalls();
    r.avgMissLatency = mem.avgDemandMissLatency();
    for (const auto *s : mem_stats.scalars()) {
        if (s->name() == "demand_grants")
            r.demandGrants = s->value();
        else if (s->name() == "prefetch_grants")
            r.prefetchGrants = s->value();
        else if (s->name() == "writeback_grants")
            r.writebackGrants = s->value();
        else if (s->name() == "pref_drop_queue_full")
            r.prefDropQueueFull = s->value();
    }

    for (const auto *s : fdp_stats.scalars()) {
        if (s->name() == "pref_sent")
            r.prefSent = s->value();
        else if (s->name() == "pref_used")
            r.prefUsed = s->value();
    }
    const DistributionStat &ld = fdp.levelDistribution();
    for (std::size_t i = 0; i < r.levelDist.size(); ++i)
        r.levelDist[i] = ld.fraction(i);
    const DistributionStat &id = fdp.insertDistribution();
    for (std::size_t i = 0; i < r.insertDist.size(); ++i)
        r.insertDist[i] = id.fraction(i);
    return r;
}

RunResult
runBenchmark(const std::string &benchmark, const RunConfig &config,
             const std::string &configLabel)
{
    // The workload seed is the benchmark's hand-calibrated one from
    // spec_suite.cc — a pure function of the benchmark name and nothing
    // else. Every configuration therefore simulates the identical
    // trace, so cross-config deltas isolate the config effect, and
    // results stay bit-identical for any thread count or completion
    // order (DESIGN.md Section 10).
    SyntheticWorkload workload(benchmarkParams(benchmark));
    return runWorkload(workload, config, configLabel);
}

RunResult
recordBenchmark(const std::string &benchmark, const RunConfig &config,
                const std::string &configLabel,
                const std::string &tracePath)
{
    const SyntheticParams &params = benchmarkParams(benchmark);
    SyntheticWorkload workload(params);
    TraceWriter writer(tracePath, benchmark, params.seed);
    RecordingWorkload recorder(workload, writer);
    const RunResult r = runWorkload(recorder, config, configLabel);
    writer.finish();
    return r;
}

RunResult
replayTrace(const std::string &tracePath, const RunConfig &config,
            const std::string &configLabel)
{
    TraceWorkload workload(tracePath);
    const std::uint64_t available = workload.reader().header().opCount;
    if (config.numInsts > available)
        fatal("trace %s holds %llu micro-ops but this run consumes "
              "%llu; record a longer trace", tracePath.c_str(),
              static_cast<unsigned long long>(available),
              static_cast<unsigned long long>(config.numInsts));
    return runWorkload(workload, config, configLabel);
}

std::vector<RunResult>
runSuite(const std::vector<std::string> &benchmarks,
         const RunConfig &config, const std::string &configLabel)
{
    std::vector<RunResult> results;
    results.reserve(benchmarks.size());
    for (const auto &b : benchmarks)
        results.push_back(runBenchmark(b, config, configLabel));
    return results;
}

std::uint64_t
parseCountArg(const char *flag, const char *text, std::uint64_t maxValue)
{
    if (text == nullptr || *text == '\0')
        fatal("%s: empty value (expected a positive integer)", flag);
    std::uint64_t value = 0;
    const char *end = text + std::strlen(text);
    const auto [ptr, ec] = std::from_chars(text, end, value);
    if (ec == std::errc::result_out_of_range)
        fatal("%s: value `%s' does not fit in 64 bits", flag, text);
    if (ec != std::errc() || ptr != end)
        fatal("%s: `%s' is not a positive integer", flag, text);
    if (value == 0)
        fatal("%s: must be at least 1", flag);
    if (value > maxValue)
        fatal("%s: %llu is implausibly large (max %llu)", flag,
              static_cast<unsigned long long>(value),
              static_cast<unsigned long long>(maxValue));
    return value;
}

std::uint64_t
instructionBudget(int argc, char **argv, std::uint64_t fallback)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            return 1'000'000;
        if (std::strcmp(argv[i], "--insts") == 0) {
            if (i + 1 >= argc)
                fatal("--insts requires a value (instruction count)");
            return parseCountArg("--insts", argv[i + 1]);
        }
    }
    return fallback;
}

} // namespace fdp
