#include "harness/experiment.hh"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "prefetch/dspatch_prefetcher.hh"
#include "prefetch/ghb_prefetcher.hh"
#include "prefetch/nextline_prefetcher.hh"
#include "prefetch/stream_prefetcher.hh"
#include "prefetch/stride_prefetcher.hh"
#include "prefetch/vldp_prefetcher.hh"
#include "sim/check.hh"
#include "sim/logging.hh"
#include "trace/trace_workload.hh"
#include "workload/spec_suite.hh"

namespace fdp
{

RunConfig
RunConfig::noPrefetching()
{
    RunConfig c;
    c.prefetcher = PrefetcherKind::None;
    c.fdp.dynamicAggressiveness = false;
    c.fdp.dynamicInsertion = false;
    return c;
}

RunConfig
RunConfig::staticLevelConfig(unsigned level, InsertPos ins)
{
    RunConfig c;
    c.staticLevel = level;
    c.fdp.dynamicAggressiveness = false;
    c.fdp.dynamicInsertion = false;
    c.fdp.staticInsertPos = ins;
    return c;
}

RunConfig
RunConfig::dynamicAggressiveness()
{
    RunConfig c;
    c.fdp.dynamicAggressiveness = true;
    c.fdp.dynamicInsertion = false;
    c.fdp.staticInsertPos = InsertPos::Mru;
    return c;
}

RunConfig
RunConfig::dynamicInsertion(unsigned staticLevel)
{
    RunConfig c;
    c.staticLevel = staticLevel;
    c.fdp.dynamicAggressiveness = false;
    c.fdp.dynamicInsertion = true;
    return c;
}

RunConfig
RunConfig::fullFdp()
{
    RunConfig c;
    c.fdp.dynamicAggressiveness = true;
    c.fdp.dynamicInsertion = true;
    return c;
}

RunConfig
RunConfig::accuracyOnlyFdp()
{
    RunConfig c = fullFdp();
    c.fdp.accuracyOnly = true;
    return c;
}

std::unique_ptr<Prefetcher>
makePrefetcher(PrefetcherKind kind, unsigned level)
{
    switch (kind) {
      case PrefetcherKind::None:
        return nullptr;
      case PrefetcherKind::Stream: {
        StreamPrefetcherParams p;
        p.initialLevel = level;
        return std::make_unique<StreamPrefetcher>(p);
      }
      case PrefetcherKind::GhbCdc: {
        GhbPrefetcherParams p;
        p.initialLevel = level;
        return std::make_unique<GhbPrefetcher>(p);
      }
      case PrefetcherKind::Stride: {
        StridePrefetcherParams p;
        p.initialLevel = level;
        return std::make_unique<StridePrefetcher>(p);
      }
      case PrefetcherKind::Vldp: {
        VldpPrefetcherParams p;
        p.initialLevel = level;
        return std::make_unique<VldpPrefetcher>(p);
      }
      case PrefetcherKind::Dspatch: {
        DspatchPrefetcherParams p;
        p.initialLevel = level;
        return std::make_unique<DspatchPrefetcher>(p);
      }
      case PrefetcherKind::NextLine: {
        NextLinePrefetcherParams p;
        p.initialLevel = level;
        return std::make_unique<NextLinePrefetcher>(p);
      }
    }
    panic("unknown prefetcher kind");
}

const char *
prefetcherKindName(PrefetcherKind kind)
{
    switch (kind) {
      case PrefetcherKind::None: return "none";
      case PrefetcherKind::Stream: return "stream";
      case PrefetcherKind::GhbCdc: return "ghb";
      case PrefetcherKind::Stride: return "stride";
      case PrefetcherKind::Vldp: return "vldp";
      case PrefetcherKind::Dspatch: return "dspatch";
      case PrefetcherKind::NextLine: return "nextline";
    }
    panic("unknown prefetcher kind");
}

const std::vector<std::string> &
knownPrefetcherNames()
{
    static const std::vector<std::string> names = {
        "none",    "stream",   "ghb",     "stride",
        "vldp",    "dspatch",  "nextline", "manager",
    };
    return names;
}

PrefetcherSelection
prefetcherSelectionFromName(const std::string &name)
{
    if (name == "manager")
        return {PrefetcherKind::Stream, ManagerKind::Explore};
    for (const PrefetcherKind kind :
         {PrefetcherKind::None, PrefetcherKind::Stream,
          PrefetcherKind::GhbCdc, PrefetcherKind::Stride,
          PrefetcherKind::Vldp, PrefetcherKind::Dspatch,
          PrefetcherKind::NextLine})
        if (name == prefetcherKindName(kind))
            return {kind, ManagerKind::Off};
    std::string known;
    for (const auto &n : knownPrefetcherNames())
        known += (known.empty() ? "" : " ") + n;
    fatal("unknown prefetcher `%s' (known: %s)", name.c_str(),
          known.c_str());
}

RunConfig
applyPrefetcherSelection(const RunConfig &base, const std::string &name)
{
    const PrefetcherSelection sel = prefetcherSelectionFromName(name);
    RunConfig c = base;
    c.prefetcher = sel.kind;
    c.manager = sel.manager;
    return c;
}

std::vector<PrefetcherKind>
defaultManagerZoo()
{
    return {PrefetcherKind::Stream, PrefetcherKind::Stride,
            PrefetcherKind::Vldp, PrefetcherKind::Dspatch,
            PrefetcherKind::NextLine};
}

namespace
{

/** FdpParams as the machine actually runs them: a static-aggressiveness
 *  configuration pins the controller to the static level. */
FdpParams
resolvedFdpParams(const RunConfig &config)
{
    FdpParams fp = config.fdp;
    if (!fp.dynamicAggressiveness)
        fp.initialLevel = config.staticLevel;
    return fp;
}

/** The prefetcher's construction-time aggressiveness level. */
unsigned
startLevel(const RunConfig &config)
{
    return config.fdp.dynamicAggressiveness ? config.fdp.initialLevel
                                            : config.staticLevel;
}

} // namespace

std::unique_ptr<Prefetcher>
makeRunPrefetcher(const RunConfig &config)
{
    const unsigned level = startLevel(config);
    if (config.manager == ManagerKind::Off)
        return makePrefetcher(config.prefetcher, level);
    const std::vector<PrefetcherKind> kinds =
        config.managerZoo.empty() ? defaultManagerZoo() : config.managerZoo;
    std::vector<std::unique_ptr<Prefetcher>> zoo;
    zoo.reserve(kinds.size());
    for (const PrefetcherKind kind : kinds) {
        if (kind == PrefetcherKind::None)
            fatal("manager zoo cannot contain `none'");
        zoo.push_back(makePrefetcher(kind, level));
    }
    ManagerParams mp = config.managerParams;
    mp.initialLevel = level;
    return std::make_unique<ManagedPrefetcher>(mp, std::move(zoo));
}

SimMachine::SimMachine(Workload &workload, const RunConfig &config)
    : prefetcher(makeRunPrefetcher(config)),
      fdp(resolvedFdpParams(config),
          config.warmupInsts == 0 ? prefetcher.get() : nullptr, fdpStats),
      mem(config.machine, events,
          config.warmupInsts == 0 ? prefetcher.get() : nullptr, fdp,
          memStats),
      core(config.core, mem, events, workload, coreStats),
      workload(workload)
{
}

SnapshotParts
SimMachine::parts()
{
    return SnapshotParts{events,   workload, core,     mem,      fdp,
                         prefetcher.get(),   fdpStats, memStats, coreStats};
}

void
measurementBoundary(SimMachine &m)
{
    drainToQuiesce(m.events, m.mem);
    FDP_ASSERT(m.events.empty(),
               "measurement boundary: %zu events pending after drain",
               m.events.size());
    m.mem.flushStats();
    m.fdpStats.resetAll();
    m.memStats.resetAll();
    m.coreStats.resetAll();
    m.mem.resetAttribution();
    m.fdp.setPrefetcher(m.prefetcher.get());
    m.fdp.reset();
    m.mem.setPrefetcher(m.prefetcher.get());
    // The prefetcher was detached all through warm-up, so for the
    // static kinds this is a no-op on an already-fresh component. A
    // ManagedPrefetcher, though, was ticked by the warm-up's interval
    // boundaries; resetting its FSM here makes the cold path
    // bit-identical to a fork restore (which rebuilds it fresh).
    if (m.prefetcher)
        m.prefetcher->reset();
}

// Audit the assembled machine at every sampling-interval boundary so
// structural corruption surfaces at the paper's natural checkpoint
// cadence instead of as silently wrong results.
bool
wireAudits(SimMachine &m, AuditSet &audits)
{
    audits.add(&m.events);
    audits.add(&m.fdp);
    audits.add(&m.mem);
    if (m.prefetcher)
        audits.add(m.prefetcher.get());
    // Auditable frontends (e.g. TraceWorkload) join the same pass.
    if (const auto *aw = dynamic_cast<const Auditable *>(&m.workload))
        audits.add(aw);
    const bool periodicAudit = debugBuild() || auditRequestedByEnv();
    // Every sampling interval publishes the memory system's batched
    // counters, so the stat group is exact at each paper checkpoint;
    // audit builds then verify the whole machine at the same cadence.
    // A managed prefetcher also consumes the closed interval here —
    // after the FDP controller has applied its own throttling policy —
    // so reconfiguration and throttling share one boundary.
    auto *manager = dynamic_cast<ManagedPrefetcher *>(m.prefetcher.get());
    m.fdp.setEndOfIntervalHook([&m, &audits, periodicAudit, manager] {
        m.mem.flushStats();
        if (manager != nullptr) {
            const FeedbackCounters &fc = m.fdp.counters();
            manager->intervalTick({fc.accuracy(), fc.lateness(),
                                   fc.pollution(), m.core.retired(),
                                   m.events.horizon()});
            if (std::getenv("FDP_MANAGER_TRACE") != nullptr)
                std::cerr << "mgr tick=" << manager->ticks()
                          << " ops=" << m.core.retired() << " phase="
                          << (manager->phase() ==
                                      ManagedPrefetcher::Phase::Explore
                                  ? "explore"
                                  : "exploit")
                          << " active=" << manager->activeName()
                          << '\n';
        }
        if (periodicAudit)
            audits.runAll();
    });
    return periodicAudit;
}

RunResult
extractResult(SimMachine &m, const std::string &configLabel)
{
    // Publish batched counters before reading the stat group directly.
    m.mem.flushStats();
    RunResult r;
    r.benchmark = m.workload.name();
    r.config = configLabel;
    r.insts = m.core.retired();
    r.cycles = m.core.cycles();
    r.ipc = m.core.ipc();
    r.busAccesses = m.mem.dram().busAccesses();
    r.bpki = ratio(static_cast<double>(r.busAccesses),
                   static_cast<double>(r.insts) / 1000.0);
    r.accuracy = m.fdp.lifetimeAccuracy();
    r.lateness = m.fdp.lifetimeLateness();
    r.pollution = m.fdp.lifetimePollution();
    r.l2Misses = m.mem.l2Misses();
    r.demandAccesses = m.mem.demandAccesses();
    r.mshrStallCount = m.mem.mshrStalls();
    r.avgMissLatency = m.mem.avgDemandMissLatency();
    for (const auto *s : m.memStats.scalars()) {
        if (s->name() == "demand_grants")
            r.demandGrants = s->value();
        else if (s->name() == "prefetch_grants")
            r.prefetchGrants = s->value();
        else if (s->name() == "writeback_grants")
            r.writebackGrants = s->value();
        else if (s->name() == "pref_drop_queue_full")
            r.prefDropQueueFull = s->value();
    }

    for (const auto *s : m.fdpStats.scalars()) {
        if (s->name() == "pref_sent")
            r.prefSent = s->value();
        else if (s->name() == "pref_used")
            r.prefUsed = s->value();
    }
    const DistributionStat &ld = m.fdp.levelDistribution();
    for (std::size_t i = 0; i < r.levelDist.size(); ++i)
        r.levelDist[i] = ld.fraction(i);
    const DistributionStat &id = m.fdp.insertDistribution();
    for (std::size_t i = 0; i < r.insertDist.size(); ++i)
        r.insertDist[i] = id.fraction(i);
    return r;
}

RunResult
runWorkload(Workload &workload, const RunConfig &config,
            const std::string &configLabel)
{
    SimMachine m(workload, config);

    AuditSet audits;
    const bool periodicAudit = wireAudits(m, audits);

    if (config.warmupInsts > 0) {
        m.core.run(config.warmupInsts);
        measurementBoundary(m);
    }
    m.core.run(config.numInsts);

    if (periodicAudit)
        audits.runAll();

    return extractResult(m, configLabel);
}

RunResult
runBenchmark(const std::string &benchmark, const RunConfig &config,
             const std::string &configLabel)
{
    // The workload seed is the benchmark's hand-calibrated one from
    // spec_suite.cc — a pure function of the benchmark name and nothing
    // else. Every configuration therefore simulates the identical
    // trace, so cross-config deltas isolate the config effect, and
    // results stay bit-identical for any thread count or completion
    // order (DESIGN.md Section 10).
    SyntheticWorkload workload(benchmarkParams(benchmark));
    return runWorkload(workload, config, configLabel);
}

RunResult
recordBenchmark(const std::string &benchmark, const RunConfig &config,
                const std::string &configLabel,
                const std::string &tracePath)
{
    const SyntheticParams &params = benchmarkParams(benchmark);
    SyntheticWorkload workload(params);
    TraceWriter writer(tracePath, benchmark, params.seed);
    RecordingWorkload recorder(workload, writer);
    const RunResult r = runWorkload(recorder, config, configLabel);
    writer.finish();
    return r;
}

RunResult
replayTrace(const std::string &tracePath, const RunConfig &config,
            const std::string &configLabel)
{
    TraceWorkload workload(tracePath);
    const std::uint64_t available = workload.reader().header().opCount;
    if (config.warmupInsts + config.numInsts > available)
        fatal("trace %s holds %llu micro-ops but this run consumes "
              "%llu; record a longer trace", tracePath.c_str(),
              static_cast<unsigned long long>(available),
              static_cast<unsigned long long>(config.warmupInsts +
                                              config.numInsts));
    return runWorkload(workload, config, configLabel);
}

std::vector<RunResult>
runSuite(const std::vector<std::string> &benchmarks,
         const RunConfig &config, const std::string &configLabel)
{
    std::vector<RunResult> results;
    results.reserve(benchmarks.size());
    for (const auto &b : benchmarks)
        results.push_back(runBenchmark(b, config, configLabel));
    return results;
}

std::uint64_t
parseCountArg(const char *flag, const char *text, std::uint64_t maxValue)
{
    if (text == nullptr || *text == '\0')
        fatal("%s: empty value (expected a positive integer)", flag);
    std::uint64_t value = 0;
    const char *end = text + std::strlen(text);
    const auto [ptr, ec] = std::from_chars(text, end, value);
    if (ec == std::errc::result_out_of_range)
        fatal("%s: value `%s' does not fit in 64 bits", flag, text);
    if (ec != std::errc() || ptr != end)
        fatal("%s: `%s' is not a positive integer", flag, text);
    if (value == 0)
        fatal("%s: must be at least 1", flag);
    if (value > maxValue)
        fatal("%s: %llu is implausibly large (max %llu)", flag,
              static_cast<unsigned long long>(value),
              static_cast<unsigned long long>(maxValue));
    return value;
}

std::uint64_t
instructionBudget(int argc, char **argv, std::uint64_t fallback)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            return 1'000'000;
        if (std::strcmp(argv[i], "--insts") == 0) {
            if (i + 1 >= argc)
                fatal("--insts requires a value (instruction count)");
            return parseCountArg("--insts", argv[i + 1]);
        }
    }
    return fallback;
}

} // namespace fdp
