/**
 * @file
 * Content-addressed on-disk store of sweep results (fdp-store-v1).
 *
 * Every (benchmark, config) sweep cell is a pure function of its
 * inputs: the micro-op trace the workload generator produces, the full
 * machine/policy configuration, and the simulator revision. The store
 * exploits that purity the way simulator farms around gem5/Scarab do —
 * never recompute a cell whose inputs have not changed. A cell's key
 * is the FNV-1a hash of a canonical string covering:
 *
 *   - the workload: benchmark name, calibrated seed, op count, and a
 *     content hash of the actual micro-op stream (so a generator
 *     change invalidates cached cells even at the same seed);
 *   - the configuration: the label plus every RunConfig knob, printed
 *     canonically (machine geometry, DRAM timing, prefetcher kind,
 *     FDP thresholds, instruction budget);
 *   - the code: the binary revision (FDP_BINARY_REV, set by CI to the
 *     commit SHA) and kSimCoreVersion, bumped on any intentional
 *     simulation-semantics change.
 *
 * Entries are single JSON files named <keyhash>.json, written via
 * temp-file + rename so a crashed or killed sweep never leaves a
 * half-written entry under its final name. Reads are defensive:
 * truncated, corrupt, or hash-colliding entries read as misses (the
 * cell just reruns and the entry is rewritten), never as errors.
 * Because the determinism contract makes results independent of
 * --jobs, machine, and completion order, stores can be merged across
 * machines with `fdp_results merge` (DESIGN.md Section 15).
 */

#ifndef FDP_HARNESS_RESULT_STORE_HH
#define FDP_HARNESS_RESULT_STORE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/json_value.hh"

namespace fdp
{

/**
 * Simulation-semantics version folded into every store key. Bump this
 * whenever a change intentionally alters simulated results (cache
 * policy fixes, latency model changes, FDP threshold updates, ...) so
 * stale cached cells can never satisfy a lookup from the new code.
 * Forgetting to bump is caught by CI's bench-diff trajectory gate,
 * which compares deterministic counters exactly against the committed
 * baseline.
 */
inline constexpr unsigned kSimCoreVersion = 1;

/**
 * Revision of the running binary: $FDP_BINARY_REV when set (CI exports
 * the commit SHA), else "local". Participates in every store key.
 */
std::string binaryRevision();

/** FNV-1a 64-bit over a byte string (the store's content hash). */
std::uint64_t fnv1a64(const std::string &bytes);

/** 16-hex-digit lowercase rendering of a 64-bit hash. */
std::string hashHex(std::uint64_t hash);

/**
 * Canonical fingerprint of every RunConfig field that can influence
 * simulated results, one "name=value" per knob. Doubles are printed
 * with max_digits10 so distinct configurations never collide.
 */
std::string configFingerprint(const RunConfig &config);

/**
 * Content hash of the first @p numOps micro-ops of @p benchmark's
 * calibrated generator — the exact stream a numOps-instruction run
 * consumes. Generator-speed (~10 ns/op), so hashing is cheap relative
 * to simulating the same ops.
 */
std::uint64_t workloadTraceHash(const std::string &benchmark,
                                std::uint64_t numOps);

/** Fully-resolved key of one sweep cell. */
struct StoreKey
{
    std::string benchmark;
    std::string configLabel;
    /** The canonical key string (stored in the entry and re-verified
     *  on lookup, so a hash collision reads as a miss). */
    std::string canonical;
    std::uint64_t hash = 0;

    /** Entry file name within the store directory. */
    std::string fileName() const { return hashHex(hash) + ".json"; }
};

/** Build a cell key with the workload trace hash precomputed (sweeps
 *  memoize it per (benchmark, numInsts) pair). */
StoreKey makeStoreKey(const std::string &benchmark, const RunConfig &config,
                      const std::string &configLabel,
                      std::uint64_t traceHash);

/** Convenience form: computes the trace hash itself. */
StoreKey makeStoreKey(const std::string &benchmark, const RunConfig &config,
                      const std::string &configLabel);

/** One decoded store entry (for `fdp_results ls` and merge). */
struct StoreEntry
{
    std::string fileName;
    std::string canonical;
    std::string benchmark;
    std::string configLabel;
    std::string binaryRev;
    unsigned simCoreVersion = 0;
    RunResult result;
};

/**
 * The on-disk store. Thread-compatible the way the sweep needs it:
 * lookups happen on the main thread before cells are submitted, and
 * concurrent insert() calls from pool workers are safe because each
 * writes its own temp file and rename() is atomic.
 */
class ResultStore
{
  public:
    /** Open (creating if needed) the store at @p dir; fatal when the
     *  directory cannot be created or is not usable. */
    explicit ResultStore(std::string dir);

    const std::string &dir() const { return dir_; }

    /**
     * Fetch the result cached under @p key into @p out. Returns false
     * (a miss) when the entry is absent, unreadable, fails to parse,
     * or stores a different canonical key (collision or corruption);
     * a corrupt entry additionally warns with the parse error.
     */
    bool lookup(const StoreKey &key, RunResult *out) const;

    /**
     * Persist @p result under @p key (temp file + atomic rename;
     * overwrites any existing entry). Fatal on I/O failure: the user
     * asked for a store, so losing results silently is worse than
     * stopping.
     */
    void insert(const StoreKey &key, const RunResult &result) const;

    /** Sorted entry file names (*.json) currently in the store. */
    std::vector<std::string> entryFiles() const;

    /**
     * Decode one entry file. Returns false with a diagnostic when it
     * cannot be read or is not a valid fdp-store-v1 document.
     */
    bool readEntry(const std::string &fileName, StoreEntry *out,
                   std::string *error) const;

    /**
     * Copy entry @p fileName into @p dst byte-for-byte (validated
     * first; temp + rename on the destination side). Returns false
     * with a diagnostic when the source entry is corrupt.
     */
    bool copyEntryTo(const std::string &fileName, const ResultStore &dst,
                     std::string *error) const;

    /** Delete entry @p fileName (missing files are not an error). */
    void removeEntry(const std::string &fileName) const;

  private:
    std::string dir_;
};

/** Serialize one result as an fdp-store-v1 JSON document. */
std::string storeEntryJson(const StoreKey &key, const RunResult &result);

/** Decode the RunResult inside a parsed fdp-store-v1 document. */
bool parseStoredResult(const JsonValue &doc, RunResult *out,
                       std::string *error);

} // namespace fdp

#endif // FDP_HARNESS_RESULT_STORE_HH
