#include "harness/results_diff.hh"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <limits>
#include <set>
#include <sstream>

#include "harness/json_value.hh"
#include "sim/logging.hh"

namespace fdp
{

namespace
{

std::string
fmtDoubleExact(double value)
{
    std::ostringstream os;
    os << std::setprecision(std::numeric_limits<double>::max_digits10)
       << value;
    return os.str();
}

std::string
jsonEscapeMinimal(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

/** Human rendering of a relative delta, sign included. */
std::string
fmtRelDelta(double rel)
{
    if (std::isinf(rel))
        return rel > 0 ? "+inf" : "-inf";
    std::ostringstream os;
    os << (rel >= 0 ? "+" : "") << std::fixed << std::setprecision(2)
       << rel * 100.0 << "%";
    return os.str();
}

} // namespace

const ResultsFile::Entry *
ResultsFile::find(const std::string &name) const
{
    for (const Entry &e : entries)
        if (e.name == name)
            return &e;
    return nullptr;
}

bool
loadResultsFile(const std::string &path, ResultsFile *out,
                std::string *error)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        *error = path + ": " + std::strerror(errno);
        return false;
    }
    std::ostringstream buffer;
    buffer << is.rdbuf();
    if (is.bad()) {
        *error = path + ": read failed";
        return false;
    }

    JsonValue doc;
    if (!parseJson(buffer.str(), &doc, error)) {
        *error = path + ": " + *error;
        return false;
    }
    const JsonValue *schema = doc.find("schema");
    if (!schema || schema->asString() != "fdp-results-v1") {
        *error = path + ": schema is not fdp-results-v1";
        return false;
    }
    const JsonValue *entries = doc.find("entries");
    if (!entries || entries->kind != JsonValue::Kind::Array) {
        *error = path + ": missing entries array";
        return false;
    }

    out->path = path;
    out->source = doc.find("source") ? doc.find("source")->asString() : "";
    out->entries.clear();
    out->entries.reserve(entries->items.size());
    std::set<std::string> seen;
    for (const JsonValue &item : entries->items) {
        const JsonValue *name = item.find("name");
        const JsonValue *value = item.find("value");
        const JsonValue *better = item.find("better");
        if (!name || name->kind != JsonValue::Kind::String || !value ||
            value->kind != JsonValue::Kind::Number) {
            *error = path + ": entry without string name / numeric value";
            return false;
        }
        const std::string betterStr =
            better ? better->asString() : "higher";
        if (betterStr != "higher" && betterStr != "lower") {
            *error = path + ": entry " + name->asString() +
                     ": better must be higher|lower";
            return false;
        }
        if (!seen.insert(name->asString()).second) {
            *error = path + ": duplicate entry " + name->asString();
            return false;
        }
        out->entries.push_back(
            {name->asString(),
             item.find("unit") ? item.find("unit")->asString() : "",
             betterStr, value->number});
    }
    error->clear();
    return true;
}

MetricClass
classifyMetric(const std::string &name, const std::string &unit)
{
    static const std::set<std::string> timingUnits = {
        "ns/op", "insts/s", "x", "s", "runs/s"};
    if (timingUnits.count(unit))
        return MetricClass::Timing;
    auto endsWith = [&](const char *suffix) {
        const std::size_t n = std::strlen(suffix);
        return name.size() >= n &&
               name.compare(name.size() - n, n, suffix) == 0;
    };
    // Simulated speedups (IPC ratios) carry unit "ratio" and stay
    // deterministic; only the unit "x" wall-clock kind is timing.
    if (endsWith("/ns") || endsWith("_per_s") ||
        name.find("wall") != std::string::npos)
        return MetricClass::Timing;
    return MetricClass::Deterministic;
}

const char *
diffStatusName(DiffStatus status)
{
    switch (status) {
      case DiffStatus::Ok:
        return "ok";
      case DiffStatus::Improved:
        return "improved";
      case DiffStatus::Noise:
        return "noise";
      case DiffStatus::Regressed:
        return "regressed";
      case DiffStatus::Missing:
        return "missing";
      case DiffStatus::Added:
        return "added";
    }
    return "?";
}

DiffReport
diffResults(const ResultsFile &base, const ResultsFile &fresh,
            const DiffOptions &options)
{
    DiffReport report;
    for (const ResultsFile::Entry &b : base.entries) {
        DiffEntry d;
        d.name = b.name;
        d.unit = b.unit;
        d.cls = classifyMetric(b.name, b.unit);
        d.baseValue = b.value;
        const ResultsFile::Entry *f = fresh.find(b.name);
        if (!f) {
            d.status = DiffStatus::Missing;
            ++report.missing;
            report.entries.push_back(std::move(d));
            continue;
        }
        d.freshValue = f->value;
        if (b.value == f->value) {
            d.relDelta = 0.0;
            d.status = DiffStatus::Ok;
        } else if (b.value == 0.0) {
            d.relDelta = f->value > 0
                             ? std::numeric_limits<double>::infinity()
                             : -std::numeric_limits<double>::infinity();
        } else {
            d.relDelta = (f->value - b.value) / std::fabs(b.value);
        }
        if (b.value != f->value) {
            const double tol = d.cls == MetricClass::Deterministic
                                   ? options.detTol
                                   : options.timingTol;
            const bool within = std::fabs(d.relDelta) <= tol;
            if (within) {
                d.status = DiffStatus::Ok;
            } else if (d.cls == MetricClass::Deterministic) {
                // Direction is irrelevant: a deterministic counter
                // moving at all is simulation-behavior drift.
                d.status = DiffStatus::Regressed;
            } else {
                const bool worse = b.better == "higher"
                                       ? f->value < b.value
                                       : f->value > b.value;
                if (!worse)
                    d.status = DiffStatus::Improved;
                else
                    d.status = options.strictTiming
                                   ? DiffStatus::Regressed
                                   : DiffStatus::Noise;
            }
        }
        switch (d.status) {
          case DiffStatus::Ok:
            ++report.ok;
            break;
          case DiffStatus::Improved:
            ++report.improved;
            break;
          case DiffStatus::Noise:
            ++report.noise;
            break;
          case DiffStatus::Regressed:
            ++report.regressed;
            break;
          default:
            break;
        }
        report.entries.push_back(std::move(d));
    }
    for (const ResultsFile::Entry &f : fresh.entries) {
        if (base.find(f.name))
            continue;
        DiffEntry d;
        d.name = f.name;
        d.unit = f.unit;
        d.cls = classifyMetric(f.name, f.unit);
        d.status = DiffStatus::Added;
        d.freshValue = f.value;
        ++report.added;
        report.entries.push_back(std::move(d));
    }
    return report;
}

Table
buildDiffTable(const DiffReport &report, bool everything)
{
    Table table("results diff: " + std::to_string(report.regressed) +
                " regressed, " + std::to_string(report.missing) +
                " missing, " + std::to_string(report.noise) + " noise, " +
                std::to_string(report.improved) + " improved, " +
                std::to_string(report.added) + " added, " +
                std::to_string(report.ok) + " ok");
    table.setHeader(
        {"metric", "class", "status", "baseline", "fresh", "delta"});

    // Blocking rows first so a failing CI log leads with the cause.
    auto severity = [](DiffStatus s) {
        switch (s) {
          case DiffStatus::Regressed: return 0;
          case DiffStatus::Missing: return 1;
          case DiffStatus::Noise: return 2;
          case DiffStatus::Improved: return 3;
          case DiffStatus::Added: return 4;
          case DiffStatus::Ok: return 5;
        }
        return 6;
    };
    std::vector<const DiffEntry *> rows;
    for (const DiffEntry &d : report.entries)
        if (everything || d.status != DiffStatus::Ok)
            rows.push_back(&d);
    std::stable_sort(rows.begin(), rows.end(),
                     [&](const DiffEntry *a, const DiffEntry *b) {
                         return severity(a->status) < severity(b->status);
                     });
    for (const DiffEntry *d : rows) {
        const bool det = d->cls == MetricClass::Deterministic;
        table.addRow({d->name, det ? "det" : "timing",
                      diffStatusName(d->status),
                      d->status == DiffStatus::Added
                          ? "-"
                          : fmtDoubleExact(d->baseValue),
                      d->status == DiffStatus::Missing
                          ? "-"
                          : fmtDoubleExact(d->freshValue),
                      d->status == DiffStatus::Added ||
                              d->status == DiffStatus::Missing
                          ? "-"
                          : fmtRelDelta(d->relDelta)});
    }
    return table;
}

void
writeVerdictFile(const std::string &path, const DiffReport &report,
                 const ResultsFile &base, const ResultsFile &fresh,
                 const DiffOptions &options)
{
    std::ostringstream os;
    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    os << "{\n  \"schema\": \"fdp-diff-v1\",\n";
    os << "  \"base\": \"" << jsonEscapeMinimal(base.path) << "\",\n";
    os << "  \"fresh\": \"" << jsonEscapeMinimal(fresh.path) << "\",\n";
    os << "  \"options\": {\"timing_tol\": " << options.timingTol
       << ", \"det_tol\": " << options.detTol << ", \"strict_timing\": "
       << (options.strictTiming ? "true" : "false") << "},\n";
    os << "  \"verdict\": \"" << (report.blocking() ? "fail" : "pass")
       << "\",\n";
    os << "  \"counts\": {\"ok\": " << report.ok << ", \"improved\": "
       << report.improved << ", \"noise\": " << report.noise
       << ", \"regressed\": " << report.regressed << ", \"missing\": "
       << report.missing << ", \"added\": " << report.added << "},\n";
    os << "  \"entries\": [";
    bool first = true;
    for (const DiffEntry &d : report.entries) {
        if (d.status == DiffStatus::Ok)
            continue;
        os << (first ? "\n" : ",\n");
        first = false;
        os << "    {\"name\": \"" << jsonEscapeMinimal(d.name)
           << "\", \"class\": \""
           << (d.cls == MetricClass::Deterministic ? "det" : "timing")
           << "\", \"status\": \"" << diffStatusName(d.status) << "\"";
        if (d.status != DiffStatus::Added)
            os << ", \"base\": " << fmtDoubleExact(d.baseValue);
        if (d.status != DiffStatus::Missing)
            os << ", \"fresh\": " << fmtDoubleExact(d.freshValue);
        if (d.status != DiffStatus::Added &&
            d.status != DiffStatus::Missing && !std::isinf(d.relDelta))
            os << ", \"rel_delta\": " << fmtDoubleExact(d.relDelta);
        os << "}";
    }
    os << "\n  ]\n}\n";

    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    if (!file)
        fatal("cannot open verdict file %s for writing: %s", path.c_str(),
              std::strerror(errno));
    file << os.str();
    file.flush();
    if (!file)
        fatal("failed writing verdict file %s: %s", path.c_str(),
              std::strerror(errno));
}

} // namespace fdp
