/**
 * @file
 * Parameterized synthetic workload generator.
 *
 * One generator class covers every SPEC stand-in by mixing four memory
 * behaviors, selected per micro-op with configured probabilities:
 *
 *  - stream: round-robin walks over long sequential regions (trains the
 *    stream prefetcher; long streams -> high accuracy, short -> low);
 *  - hot:    uniform reuse of a fixed working set (the data aggressive
 *    prefetching can pollute);
 *  - chase:  dependent (pointer-chasing) loads, either scattered through
 *    a permuted cycle (irregular, unprefetchable) or sequential
 *    (prefetchable but demand-rate-bound -> late prefetches);
 *  - random: uniform cold misses in a huge region (untrainable noise).
 *
 * The remainder of the op mix is single-cycle Int work. Everything is
 * driven by a seeded Rng, so traces replay exactly.
 */

#ifndef FDP_WORKLOAD_GENERATORS_HH
#define FDP_WORKLOAD_GENERATORS_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/check.hh"
#include "sim/rng.hh"
#include "sim/snapshot.hh"
#include "sim/types.hh"
#include "workload/workload.hh"

namespace fdp
{

/** Knobs of the synthetic generator (see file comment). */
struct SyntheticParams
{
    std::string name = "synthetic";

    /// @name Op mix: probabilities of each memory behavior per micro-op.
    /// The remainder (1 - sum) is Int work.
    /// @{
    double pStream = 0.0;
    double pHot = 0.0;
    double pChase = 0.0;
    double pRandom = 0.0;
    /**
     * delta: walks 4 KB pages with the repeating block-delta pattern
     * {+1, +3, +2} (new random page on overflow), touching each block
     * with eight sequential 8-byte accesses so the L1 absorbs 7/8 of
     * them — the band's L2-block rate is pDelta/8 per op, the same
     * shape as the stream band's. Irregular enough that a monotonic
     * stream tracker keeps losing its window, but exactly the history
     * a delta-correlating prefetcher (VLDP) locks onto.
     */
    double pDelta = 0.0;
    /// @}

    /**
     * When nonzero, swap the stream and delta bands' probabilities
     * every phaseOps micro-ops. Builds mixed-phase traces where the
     * best prefetcher changes at phase boundaries — the case runtime
     * management (DESIGN.md §17) exists for. 0 disables phasing.
     */
    std::uint64_t phaseOps = 0;

    /** Percentage of (non-chase) memory ops that are stores. */
    unsigned storePercent = 20;

    /// @name Stream behavior
    /// @{
    unsigned numStreams = 4;
    unsigned streamLenBlocks = 1024;   ///< blocks before a stream respawns
    unsigned accessStrideBytes = 8;    ///< per-access stride within streams
    double descendingFrac = 0.0;       ///< fraction of descending streams
    /// @}

    /// @name Hot-set behavior
    /// @{
    unsigned hotBlocks = 1024;
    /**
     * Access pattern over the hot set. Uniform models scattered reuse
     * (very pollution-resistant: hot blocks are constantly re-promoted).
     * Sweep walks a fixed pseudo-random permutation cyclically, giving
     * every block the same LRU reuse distance - the loopy array-sweep
     * reuse of art/ammp that prefetcher pollution destroys.
     */
    enum class HotPattern : std::uint8_t { Uniform, Sweep };
    HotPattern hotPattern = HotPattern::Uniform;
    /// @}

    /// @name Chase behavior
    /// @{
    unsigned chaseBlocks = 1 << 15;    ///< power of two
    bool chaseSequential = false;      ///< sequential dependent walk
    /// @}

    std::uint64_t seed = 1;
};

/** The configurable synthetic micro-op stream. */
class SyntheticWorkload : public Workload, public Snapshottable
{
  public:
    explicit SyntheticWorkload(const SyntheticParams &params);

    MicroOp next() override;
    void reset() override;
    const char *name() const override { return params_.name.c_str(); }

    const SyntheticParams &params() const { return params_; }

    /**
     * Serialize the generator cursor: the Rng state, the per-stream
     * walkers, and the chase/hot cursors. The sweep permutation is a
     * pure function of the parameters, so it is rebuilt, not stored.
     */
    void saveState(SnapWriter &w) const override;
    void loadState(SnapReader &r) override;
    const char *snapName() const override { return "workload"; }

  private:
    struct Stream
    {
        Addr cur = 0;
        std::uint64_t remainingBytes = 0;
        int dir = 1;
        Addr pc = 0;
    };

    MicroOp streamOp();
    MicroOp hotOp();
    MicroOp chaseOp();
    MicroOp randomOp();
    MicroOp deltaOp();
    void respawnStream(Stream &s);

    SyntheticParams params_;
    Rng rng_;
    std::vector<Stream> streams_;
    unsigned nextStream_ = 0;
    std::uint64_t chaseCur_ = 0;
    Addr chaseSeqAddr_ = 0;
    /** Fixed visit order for HotPattern::Sweep. */
    std::vector<std::uint32_t> hotOrder_;
    std::size_t hotCursor_ = 0;
    /// @name Delta-walker cursor (see pDelta)
    /// @{
    std::uint64_t deltaPage_ = 0;   ///< page index within the region
    unsigned deltaOffset_ = 1;      ///< block offset within the page
    unsigned deltaPhase_ = 0;       ///< position in the {+1,+3,+2} cycle
    unsigned deltaWord_ = 0;        ///< 8-byte word within the block
    /// @}
    /** Ops emitted since reset; drives the phaseOps band swap. */
    std::uint64_t opCount_ = 0;
};

/**
 * Alternates between two sub-workloads every @p phaseOps micro-ops,
 * exercising FDP's interval-based adaptation (examples + tests).
 */
class PhasedWorkload : public Workload
{
  public:
    PhasedWorkload(std::unique_ptr<Workload> a, std::unique_ptr<Workload> b,
                   std::uint64_t phaseOps, std::string name);

    MicroOp next() override;
    void reset() override;
    const char *name() const override { return name_.c_str(); }

    /** Which phase (0 or 1) the next op comes from. */
    unsigned currentPhase() const;

  private:
    std::unique_ptr<Workload> a_;
    std::unique_ptr<Workload> b_;
    std::uint64_t phaseOps_;
    std::uint64_t count_ = 0;
    std::string name_;
};

/**
 * Offsets every memory address of an owned sub-workload by a fixed
 * base, modeling one program of a multi-programmed co-run: each core's
 * stream lives in a disjoint slice of the physical address space, so
 * co-runners contend for cache capacity and bus bandwidth but never
 * share data. PCs are left untouched (prefetcher history is per core,
 * so PC aliasing across cores cannot occur anyway), and Int ops carry
 * no address to rebase. The rebase is a pure constant offset: run
 * alone, a rebased workload behaves bit-identically to its inner one
 * as long as the base is block- and DRAM-row-aligned.
 *
 * Forwards audits when the inner workload is Auditable (e.g. a
 * TraceWorkload frontend).
 */
class RebasedWorkload : public Workload, public Auditable
{
  public:
    RebasedWorkload(std::unique_ptr<Workload> inner, Addr base);

    MicroOp next() override;
    void reset() override { inner_->reset(); }
    const char *name() const override { return inner_->name(); }
    Addr base() const { return base_; }

    void audit() const override;
    const char *auditName() const override { return "rebased_workload"; }

  private:
    std::unique_ptr<Workload> inner_;
    Addr base_;
};

/// @name Address-space layout of the synthetic generators
/// Regions are disjoint so behaviors never alias.
/// @{
inline constexpr Addr kHotRegionBase = 0x1'0000'0000ull;
inline constexpr Addr kChaseRegionBase = 0x2'0000'0000ull;
inline constexpr Addr kDeltaRegionBase = 0x8'0000'0000ull;
inline constexpr Addr kDeltaRegionSize = 0x10'0000'0000ull;  // 64 GB
inline constexpr Addr kDeltaPageBytes = 4096;
inline constexpr Addr kStreamRegionBase = 0x40'0000'0000ull;
inline constexpr Addr kStreamRegionSize = 0x100'0000'0000ull;  // 1 TB
inline constexpr Addr kRandomRegionBase = 0x200'0000'0000ull;
inline constexpr Addr kRandomRegionSize = 0x100'0000'0000ull;  // 1 TB
/// @}

} // namespace fdp

#endif // FDP_WORKLOAD_GENERATORS_HH
