#include "workload/generators.hh"

#include <utility>

#include "sim/logging.hh"

namespace fdp
{

SyntheticWorkload::SyntheticWorkload(const SyntheticParams &params)
    : params_(params), rng_(params.seed)
{
    const double mix = params_.pStream + params_.pHot + params_.pChase +
                       params_.pRandom + params_.pDelta;
    if (mix > 1.0)
        fatal("workload %s: op-mix probabilities sum to %f > 1",
              params_.name.c_str(), mix);
    if (params_.pChase > 0.0 &&
        (params_.chaseBlocks & (params_.chaseBlocks - 1)) != 0)
        fatal("workload %s: chaseBlocks must be a power of two",
              params_.name.c_str());
    if (params_.pStream > 0.0 && params_.numStreams == 0)
        fatal("workload %s: pStream > 0 needs numStreams > 0",
              params_.name.c_str());
    reset();
}

void
SyntheticWorkload::reset()
{
    rng_ = Rng(params_.seed);
    streams_.assign(params_.numStreams, Stream{});
    for (unsigned i = 0; i < params_.numStreams; ++i) {
        streams_[i].pc = 0x4000 + 4 * i;
        respawnStream(streams_[i]);
    }
    nextStream_ = 0;
    chaseCur_ = rng_.range(std::max<unsigned>(params_.chaseBlocks, 1));
    chaseSeqAddr_ = kChaseRegionBase;

    // Only draw for the delta walker when it can ever run: workloads
    // predating the band replay their exact historical rng sequence.
    deltaPage_ = 0;
    deltaOffset_ = 1;
    deltaPhase_ = 0;
    deltaWord_ = 0;
    opCount_ = 0;
    if (params_.pDelta > 0.0 || params_.phaseOps != 0)
        deltaPage_ = rng_.range(kDeltaRegionSize / kDeltaPageBytes);

    hotOrder_.clear();
    hotCursor_ = 0;
    if (params_.hotPattern == SyntheticParams::HotPattern::Sweep &&
        params_.hotBlocks > 0) {
        hotOrder_.resize(params_.hotBlocks);
        for (std::uint32_t i = 0; i < params_.hotBlocks; ++i)
            hotOrder_[i] = i;
        // Fisher-Yates with the workload's own Rng: the same seed always
        // produces the same (scattered, untrainable) sweep order.
        for (std::size_t i = hotOrder_.size(); i > 1; --i)
            std::swap(hotOrder_[i - 1], hotOrder_[rng_.range(i)]);
    }
}

void
SyntheticWorkload::respawnStream(Stream &s)
{
    const Addr span = kStreamRegionSize / kBlockBytes;
    s.cur = kStreamRegionBase + blockBase(rng_.range(span));
    s.dir = rng_.chance(params_.descendingFrac) ? -1 : 1;
    s.remainingBytes =
        std::uint64_t{params_.streamLenBlocks} * kBlockBytes;
}

MicroOp
SyntheticWorkload::streamOp()
{
    Stream &s = streams_[nextStream_];
    // Wrap-around compare instead of a division on the per-op path.
    if (++nextStream_ >= streams_.size())
        nextStream_ = 0;

    MicroOp op;
    op.kind = rng_.range(100) < params_.storePercent ? OpKind::Store
                                                     : OpKind::Load;
    op.addr = s.cur;
    op.pc = s.pc;

    const Addr step = params_.accessStrideBytes;
    s.cur = s.dir > 0 ? s.cur + step : s.cur - step;
    s.remainingBytes = s.remainingBytes > step ? s.remainingBytes - step : 0;
    if (s.remainingBytes == 0)
        respawnStream(s);
    return op;
}

MicroOp
SyntheticWorkload::hotOp()
{
    MicroOp op;
    op.kind = rng_.range(100) < params_.storePercent ? OpKind::Store
                                                     : OpKind::Load;
    Addr block;
    if (params_.hotPattern == SyntheticParams::HotPattern::Sweep) {
        block = hotOrder_[hotCursor_];
        if (++hotCursor_ >= hotOrder_.size())
            hotCursor_ = 0;
    } else {
        block = rng_.range(params_.hotBlocks);
    }
    const Addr word = rng_.range(kBlockBytes / 8) * 8;
    op.addr = kHotRegionBase + blockBase(block) + word;
    op.pc = 0x8000 + 4 * (rng_.range(16));
    return op;
}

MicroOp
SyntheticWorkload::chaseOp()
{
    MicroOp op;
    op.kind = OpKind::Load;
    op.depPrevLoad = true;
    op.pc = 0xc000;

    if (params_.chaseSequential) {
        // Sequential dependent walk: prefetchable, but the demand rate is
        // bounded only by the chain latency, so prefetches run late.
        op.addr = chaseSeqAddr_;
        chaseSeqAddr_ += 8;
        return op;
    }

    // Permuted cycle through the chase region: a full-period affine step
    // keeps the walk deterministic but scattered (unprefetchable).
    const std::uint64_t n = params_.chaseBlocks;
    chaseCur_ = (chaseCur_ * 5 + 1) & (n - 1);
    op.addr = kChaseRegionBase + blockBase(chaseCur_);
    return op;
}

MicroOp
SyntheticWorkload::randomOp()
{
    MicroOp op;
    op.kind = rng_.range(100) < params_.storePercent ? OpKind::Store
                                                     : OpKind::Load;
    const Addr span = kRandomRegionSize / kBlockBytes;
    op.addr = kRandomRegionBase + blockBase(rng_.range(span));
    op.pc = 0x10000 + 4 * (rng_.range(64));
    return op;
}

MicroOp
SyntheticWorkload::deltaOp()
{
    MicroOp op;
    op.kind = rng_.range(100) < params_.storePercent ? OpKind::Store
                                                     : OpKind::Load;
    op.addr = kDeltaRegionBase + deltaPage_ * kDeltaPageBytes +
              blockBase(deltaOffset_) + 8 * deltaWord_;
    op.pc = 0x14000;

    // Eight sequential words per block (the L1 absorbs all but the
    // first), THEN advance to the next block of the delta cycle.
    if (++deltaWord_ < kBlockBytes / 8)
        return op;
    deltaWord_ = 0;

    static constexpr unsigned kDeltas[3] = {1, 3, 2};
    const unsigned d = kDeltas[deltaPhase_];
    if (++deltaPhase_ >= 3)
        deltaPhase_ = 0;
    if (deltaOffset_ + d >= kDeltaPageBytes / kBlockBytes) {
        // Page exhausted: jump to a fresh random page but keep the
        // delta cycle running, so the PATTERN survives page crossings
        // even though raw addresses do not.
        deltaPage_ = rng_.range(kDeltaRegionSize / kDeltaPageBytes);
        deltaOffset_ = 1;
    } else {
        deltaOffset_ += d;
    }
    return op;
}

MicroOp
SyntheticWorkload::next()
{
    // The phase flip swaps the stream and delta bands' shares, so a
    // phased workload alternates which prefetcher its traffic trains.
    double pStream = params_.pStream;
    double pDelta = params_.pDelta;
    if (params_.phaseOps != 0 &&
        (opCount_ / params_.phaseOps) % 2 != 0)
        std::swap(pStream, pDelta);
    ++opCount_;

    double x = rng_.uniform();
    if (x < pStream)
        return streamOp();
    x -= pStream;
    if (x < params_.pHot)
        return hotOp();
    x -= params_.pHot;
    if (x < params_.pChase)
        return chaseOp();
    x -= params_.pChase;
    if (x < params_.pRandom)
        return randomOp();
    x -= params_.pRandom;
    if (x < pDelta)
        return deltaOp();
    return MicroOp{};  // Int op
}

void
SyntheticWorkload::saveState(SnapWriter &w) const
{
    w.beginSection(snapName());
    w.putString(params_.name);
    std::uint64_t rng_state[4];
    rng_.stateWords(rng_state);
    for (const std::uint64_t word : rng_state)
        w.putU64(word);
    w.putU32(static_cast<std::uint32_t>(streams_.size()));
    for (const Stream &s : streams_) {
        w.putU64(s.cur);
        w.putU64(s.remainingBytes);
        w.putI64(s.dir);
        w.putU64(s.pc);
    }
    w.putU32(nextStream_);
    w.putU64(chaseCur_);
    w.putU64(chaseSeqAddr_);
    w.putU64(hotCursor_);
    // Snapshot format v2: the delta walker and the phase counter.
    w.putU64(deltaPage_);
    w.putU32(deltaOffset_);
    w.putU32(deltaPhase_);
    w.putU32(deltaWord_);
    w.putU64(opCount_);
    w.endSection();
}

void
SyntheticWorkload::loadState(SnapReader &r)
{
    r.openSection(snapName());
    const std::string name = r.getString();
    if (name != params_.name)
        fatal("snapshot: workload is %s, snapshot was taken on %s",
              params_.name.c_str(), name.c_str());
    std::uint64_t rng_state[4];
    for (std::uint64_t &word : rng_state)
        word = r.getU64();
    rng_.setStateWords(rng_state);
    const std::uint32_t n = r.getU32();
    if (n != streams_.size())
        fatal("snapshot: workload %s has %zu streams, snapshot has %u",
              params_.name.c_str(), streams_.size(), n);
    for (Stream &s : streams_) {
        s.cur = r.getU64();
        s.remainingBytes = r.getU64();
        s.dir = static_cast<int>(r.getI64());
        s.pc = r.getU64();
    }
    nextStream_ = r.getU32();
    chaseCur_ = r.getU64();
    chaseSeqAddr_ = r.getU64();
    hotCursor_ = static_cast<std::size_t>(r.getU64());
    deltaPage_ = r.getU64();
    deltaOffset_ = r.getU32();
    deltaPhase_ = r.getU32();
    deltaWord_ = r.getU32();
    opCount_ = r.getU64();
    r.closeSection();
}

PhasedWorkload::PhasedWorkload(std::unique_ptr<Workload> a,
                               std::unique_ptr<Workload> b,
                               std::uint64_t phaseOps, std::string name)
    : a_(std::move(a)), b_(std::move(b)), phaseOps_(phaseOps),
      name_(std::move(name))
{
    if (phaseOps_ == 0)
        fatal("phased workload needs a nonzero phase length");
}

unsigned
PhasedWorkload::currentPhase() const
{
    return static_cast<unsigned>((count_ / phaseOps_) % 2);
}

MicroOp
PhasedWorkload::next()
{
    Workload &w = currentPhase() == 0 ? *a_ : *b_;
    ++count_;
    return w.next();
}

void
PhasedWorkload::reset()
{
    a_->reset();
    b_->reset();
    count_ = 0;
}

RebasedWorkload::RebasedWorkload(std::unique_ptr<Workload> inner, Addr base)
    : inner_(std::move(inner)), base_(base)
{
    if (!inner_)
        fatal("rebased workload needs an inner workload");
}

MicroOp
RebasedWorkload::next()
{
    MicroOp op = inner_->next();
    if (op.kind != OpKind::Int)
        op.addr += base_;
    return op;
}

void
RebasedWorkload::audit() const
{
    if (const auto *a = dynamic_cast<const Auditable *>(inner_.get()))
        a->audit();
}

} // namespace fdp
