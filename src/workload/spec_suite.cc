#include "workload/spec_suite.hh"

#include <map>

#include "sim/logging.hh"

namespace fdp
{

namespace
{

// Calibration notes (DESIGN.md Section 4). The 4.5 GB/s bus moves one
// 64B block per ~57 cycles, so the sustainable demand rate is ~17.5
// blocks per thousand cycles. Streams consume one new block per
// (64 / accessStrideBytes) stream ops, i.e. new-block rate = pStream/8
// blocks per micro-op at the default 8B stride:
//  - streaming winners target ~7-12 BPKI: far below the bus limit, so
//    misses are latency-bound and aggressive prefetching is a big win;
//  - art/ammp keep a near-L2-sized reuse set plus a trickle of short
//    false streams whose distance-64 overshoot pollutes the reuse set;
//  - mcf runs many streams at a demand rate beyond the bus, so its
//    (near-perfect) prefetches can never arrive early: high lateness,
//    modest benefit - exactly the paper's mcf behavior.

SyntheticParams
make(const char *name, double p_stream, double p_hot, double p_chase,
     double p_random, unsigned streams, unsigned stream_len,
     unsigned hot_blocks, unsigned store_pct, std::uint64_t seed)
{
    SyntheticParams p;
    p.name = name;
    p.pStream = p_stream;
    p.pHot = p_hot;
    p.pChase = p_chase;
    p.pRandom = p_random;
    p.numStreams = streams;
    p.streamLenBlocks = stream_len;
    p.hotBlocks = hot_blocks;
    p.storePercent = store_pct;
    p.seed = seed;
    return p;
}

std::map<std::string, SyntheticParams>
buildSuite()
{
    std::map<std::string, SyntheticParams> suite;
    auto add = [&suite](SyntheticParams p) { suite[p.name] = std::move(p); };

    // ---- 17 memory-intensive benchmarks (Figures 1-10) ----

    // FP streaming codes: long sequential streams, latency-bound at
    // no-prefetching, accuracy > 40%; aggressive prefetching is a
    // multi-x win (paper Figure 1).
    add(make("swim", 0.090, 0.03, 0.000, 0.0000, 8, 8192, 512, 8, 101));
    add(make("mgrid", 0.080, 0.05, 0.000, 0.0000, 6, 4096, 1024, 8, 102));
    add(make("applu", 0.070, 0.05, 0.000, 0.0000, 8, 2048, 1024, 8, 103));
    add(make("galgel", 0.070, 0.08, 0.000, 0.0000, 12, 1024, 2048, 8, 104));
    add(make("equake", 0.060, 0.08, 0.005, 0.0000, 4, 2048, 2048, 8, 105));
    add(make("facerec", 0.055, 0.06, 0.000, 0.0000, 4, 4096, 1536, 6, 106));
    add(make("lucas", 0.100, 0.02, 0.000, 0.0000, 16, 8192, 256, 8, 107));
    add(make("wupwise", 0.050, 0.08, 0.000, 0.0000, 4, 2048, 2048, 8, 108));
    add(make("apsi", 0.060, 0.08, 0.000, 0.0000, 8, 512, 3072, 8, 109));

    // Pollution victims: cache-resident reuse set + short false streams;
    // accuracy < 40% and heavy pollution, so aggressive prefetching
    // loses badly (paper: art -48.2%, ammp -28.9% vs no prefetching).
    {
        SyntheticParams p = make("art", 0.025, 0.48, 0.000, 0.0010, 6, 8,
                                 15360, 10, 110);
        p.hotPattern = SyntheticParams::HotPattern::Sweep;
        p.descendingFrac = 0.2;
        add(p);
    }
    {
        SyntheticParams p = make("ammp", 0.015, 0.44, 0.006, 0.0008, 5, 10,
                                 15104, 10, 111);
        p.hotPattern = SyntheticParams::HotPattern::Sweep;
        p.chaseBlocks = 1 << 15;  // 2MB scattered dependent set
        add(p);
    }

    // mcf: demand rate beyond the bus. Prefetches are near-perfectly
    // accurate but can never be early (>90% late) and the benefit is
    // bounded by bandwidth, not latency.
    {
        SyntheticParams p = make("mcf", 0.300, 0.020, 0.010, 0.0000, 24,
                                 16384, 256, 5, 112);
        p.chaseBlocks = 1 << 18;
        add(p);
    }

    // Mixed INT codes: moderate streams + reuse + irregular noise.
    add(make("parser", 0.030, 0.25, 0.010, 0.0060, 6, 256, 8192, 20, 113));
    add(make("bzip2", 0.040, 0.20, 0.000, 0.0030, 4, 512, 6144, 25, 114));
    add(make("gap", 0.050, 0.15, 0.000, 0.0015, 6, 1024, 4096, 20, 115));
    {
        SyntheticParams p = make("twolf", 0.008, 0.35, 0.008, 0.0015, 4,
                                 64, 14848, 15, 116);
        p.hotPattern = SyntheticParams::HotPattern::Sweep;
        add(p);
    }
    {
        SyntheticParams p = make("vpr", 0.010, 0.32, 0.008, 0.0010, 4,
                                 128, 14592, 15, 117);
        p.hotPattern = SyntheticParams::HotPattern::Sweep;
        add(p);
    }

    // ---- The remaining 9 benchmarks (Figure 14): low L2 miss rates ----
    add(make("crafty", 0.0030, 0.32, 0.0, 0.0004, 2, 64, 800, 20, 118));
    add(make("eon", 0.0015, 0.35, 0.0, 0.0002, 2, 32, 600, 20, 119));
    add(make("gzip", 0.0060, 0.30, 0.0, 0.0004, 2, 128, 3000, 25, 120));
    add(make("perlbmk", 0.0025, 0.32, 0.0, 0.0008, 2, 64, 1500, 20, 121));
    add(make("vortex", 0.0045, 0.30, 0.0, 0.0008, 2, 96, 2500, 25, 122));
    add(make("mesa", 0.0030, 0.30, 0.0, 0.0002, 2, 64, 1200, 20, 123));
    // gcc: working set close to the L2 size; the paper reports FDP
    // gaining ~3% here by curbing pollution of useful blocks.
    {
        SyntheticParams p = make("gcc", 0.0060, 0.30, 0.0, 0.0008, 4, 96,
                                 14592, 20, 124);
        p.hotPattern = SyntheticParams::HotPattern::Sweep;
        add(p);
    }
    // fma3d: the one bandwidth-hungry member of the quiet group.
    add(make("fma3d", 0.0200, 0.16, 0.0, 0.0008, 4, 256, 4096, 25, 125));
    add(make("sixtrack", 0.0030, 0.26, 0.0, 0.0002, 2, 64, 2000, 20, 126));

    // ---- Prefetcher-zoo stressors (DESIGN.md §17) ----
    // deltamix: nearly all memory traffic walks the {+1,+3,+2} page
    // pattern at ~12 BPKI — latency-bound, so prefetching matters. A
    // monotonic stream tracker wastes half its bandwidth on the
    // skipped blocks; a delta-correlating prefetcher locks on within
    // one page.
    {
        SyntheticParams p = make("deltamix", 0.000, 0.04, 0.000, 0.0005,
                                 4, 64, 1024, 8, 127);
        p.pDelta = 0.095;
        add(p);
    }
    // phaseflip: alternates a stream-heavy and a delta-heavy phase.
    // Phase A is wupwise-shaped: four concurrent streams keep the MLP
    // low, so misses serialize and the stream prefetcher's distance-64
    // timeliness crushes VLDP's shallow delta chains (~1.6 vs ~1.0
    // IPC); phase B hands the same share to the delta walker, where
    // the roles invert. The best static prefetcher flips at every
    // 24M-op boundary (a couple dozen FDP sampling intervals per
    // phase, so one exploration round amortizes); only runtime
    // management tracks the winner.
    {
        SyntheticParams p = make("phaseflip", 0.055, 0.08, 0.000, 0.0005,
                                 4, 2048, 2048, 8, 128);
        p.pDelta = 0.005;
        p.phaseOps = 24'000'000;
        add(p);
    }

    return suite;
}

const std::map<std::string, SyntheticParams> &
suite()
{
    static const std::map<std::string, SyntheticParams> s = buildSuite();
    return s;
}

} // namespace

const std::vector<std::string> &
memoryIntensiveBenchmarks()
{
    static const std::vector<std::string> v = {
        "ammp", "applu", "apsi", "art",   "bzip2",  "equake",
        "facerec", "galgel", "gap", "lucas", "mcf",  "mgrid",
        "parser", "swim", "twolf", "vpr", "wupwise",
    };
    return v;
}

const std::vector<std::string> &
remainingBenchmarks()
{
    static const std::vector<std::string> v = {
        "crafty", "eon", "fma3d", "gcc", "gzip",
        "mesa", "perlbmk", "sixtrack", "vortex",
    };
    return v;
}

const std::vector<std::string> &
zooBenchmarks()
{
    static const std::vector<std::string> v = {"deltamix", "phaseflip"};
    return v;
}

std::vector<std::string>
allBenchmarks()
{
    std::vector<std::string> v = memoryIntensiveBenchmarks();
    const auto &rest = remainingBenchmarks();
    v.insert(v.end(), rest.begin(), rest.end());
    return v;
}

const SyntheticParams &
benchmarkParams(const std::string &name)
{
    auto it = suite().find(name);
    if (it == suite().end())
        fatal("unknown benchmark '%s'", name.c_str());
    return it->second;
}

std::unique_ptr<SyntheticWorkload>
makeBenchmark(const std::string &name)
{
    return std::make_unique<SyntheticWorkload>(benchmarkParams(name));
}

} // namespace fdp
