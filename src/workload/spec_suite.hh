/**
 * @file
 * Synthetic stand-ins for the 26 SPEC CPU2000 benchmarks (DESIGN.md §4).
 *
 * The 17 memory-intensive benchmarks of paper Figures 1-10 and the
 * remaining 9 of Figure 14 each map to a SyntheticParams tuned to
 * reproduce that benchmark's published qualitative behavior: streaming
 * winners (swim, mgrid, ...), pollution victims (art, ammp), the
 * high-accuracy/high-lateness case (mcf), mixed INT codes, and the
 * quiet low-miss group.
 */

#ifndef FDP_WORKLOAD_SPEC_SUITE_HH
#define FDP_WORKLOAD_SPEC_SUITE_HH

#include <memory>
#include <string>
#include <vector>

#include "workload/generators.hh"

namespace fdp
{

/** Names of the 17 memory-intensive benchmarks (paper Figures 1-10). */
const std::vector<std::string> &memoryIntensiveBenchmarks();

/** Names of the remaining 9 benchmarks (paper Figure 14). */
const std::vector<std::string> &remainingBenchmarks();

/** All 26 benchmark names. */
std::vector<std::string> allBenchmarks();

/**
 * Names of the prefetcher-zoo stressors (DESIGN.md §17): deltamix
 * trains a delta-correlating prefetcher and starves a monotonic one;
 * phaseflip alternates stream- and delta-friendly phases so only
 * runtime management tracks the winner. NOT part of allBenchmarks():
 * the default sweep set (and its pinned baselines) predates them.
 */
const std::vector<std::string> &zooBenchmarks();

/** Generator parameters for @p name; fatal on unknown names. */
const SyntheticParams &benchmarkParams(const std::string &name);

/** Construct the generator for @p name. */
std::unique_ptr<SyntheticWorkload> makeBenchmark(const std::string &name);

} // namespace fdp

#endif // FDP_WORKLOAD_SPEC_SUITE_HH
