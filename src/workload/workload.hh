/**
 * @file
 * Micro-op trace interface between workload generators and the core.
 *
 * The paper drives its simulator with SPEC CPU2000 binaries; this
 * reproduction substitutes deterministic synthetic generators that
 * produce an equivalent micro-op stream (see DESIGN.md Section 4).
 */

#ifndef FDP_WORKLOAD_WORKLOAD_HH
#define FDP_WORKLOAD_WORKLOAD_HH

#include <cstdint>

#include "sim/types.hh"

namespace fdp
{

/** Kind of a micro-op as the core model distinguishes them. */
enum class OpKind : std::uint8_t
{
    Int,    ///< non-memory work; completes in one cycle
    Load,   ///< completes when the memory system responds
    Store,  ///< issues to memory but never blocks retirement
};

/** One element of the instruction stream. */
struct MicroOp
{
    OpKind kind = OpKind::Int;
    Addr addr = 0;
    Addr pc = 0;
    /**
     * True for loads whose address depends on the previous load's value
     * (pointer chasing): the core serializes their memory accesses.
     */
    bool depPrevLoad = false;
};

/** Infinite deterministic micro-op stream. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Produce the next micro-op. */
    virtual MicroOp next() = 0;

    /** Restart the stream from the beginning (same seed). */
    virtual void reset() = 0;

    /** Identifier used in reports. */
    virtual const char *name() const = 0;
};

} // namespace fdp

#endif // FDP_WORKLOAD_WORKLOAD_HH
