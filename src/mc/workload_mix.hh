/**
 * @file
 * Workload mixes for multi-core co-run experiments (DESIGN.md §13).
 *
 * A mix names one program per core: either a calibrated SPEC stand-in
 * from spec_suite.cc or a recorded fdptrace-v1 file. Each core's
 * program is wrapped in a RebasedWorkload placing it in a disjoint
 * 2^46-byte slice of the physical address space, so co-runners share
 * the L2, the MSHRs, and the memory bus but never data. Seeds stay
 * calibrated and per benchmark (DESIGN.md §10); when a mix runs the
 * same benchmark on several cores, each duplicate gets a distinct
 * deterministic seed perturbation so the copies do not move in
 * lockstep.
 */

#ifndef FDP_MC_WORKLOAD_MIX_HH
#define FDP_MC_WORKLOAD_MIX_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/types.hh"
#include "workload/workload.hh"

namespace fdp
{

/**
 * Per-core slice of the physical address space (2^46 bytes). The
 * synthetic generators top out below 2^42, so slices can never touch;
 * the stride is a multiple of every cache-set and DRAM-row geometry in
 * use, so rebasing changes no index/bank mapping relative to a core's
 * own stream.
 */
inline constexpr Addr kCoreAddrStride = Addr{1} << 46;

/** One core's program: a benchmark stand-in or a recorded trace. */
struct MixEntry
{
    std::string benchmark;  ///< spec_suite name; empty for a trace
    std::string tracePath;  ///< fdptrace-v1 path; empty for a benchmark

    /** Name used in per-core reporting rows. */
    std::string displayName() const;
};

/** A named co-run: one entry per core. */
struct MixSpec
{
    std::string name;
    std::vector<MixEntry> entries;
    /**
     * Optional per-core prefetcher selections (McRunConfig semantics:
     * one name per core, empty = the run configuration's prefetcher on
     * every core). Lets a named mix pin a heterogeneous machine, e.g.
     * mix4-zoo's stream/vldp/dspatch/manager line-up.
     */
    std::vector<std::string> corePrefetchers;

    unsigned numCores() const
    {
        return static_cast<unsigned>(entries.size());
    }
};

/** The named 2- and 4-core mixes (bandwidth-bound, victim, latency). */
const std::vector<MixSpec> &namedMixes();

/** Look up a named mix; fatal (listing the names) on an unknown one. */
const MixSpec &mixByName(const std::string &name);

/** Build an ad-hoc mix running one recorded trace per core. */
MixSpec traceMix(const std::vector<std::string> &tracePaths);

/**
 * Instantiate the per-core workloads of @p spec, rebased into each
 * core's address slice. Fatal on unknown benchmark names or unreadable
 * traces. Duplicate benchmark entries get deterministic per-core seed
 * perturbations (a pure function of the duplicate index).
 */
std::vector<std::unique_ptr<Workload>> buildMixWorkloads(const MixSpec &spec);

/**
 * The workload for @p entry running alone, NOT rebased: the
 * single-core baseline runs of weighted/harmonic speedup use it, and
 * for benchmarks it is bit-identical to what runBenchmark simulates.
 * @p dupIndex is the entry's duplicate index within its mix so the
 * baseline replays the exact co-run stream.
 */
std::unique_ptr<Workload> buildAloneWorkload(const MixEntry &entry,
                                             unsigned dupIndex);

} // namespace fdp

#endif // FDP_MC_WORKLOAD_MIX_HH
