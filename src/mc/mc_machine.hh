/**
 * @file
 * Multi-core co-run driver (DESIGN.md §13): N OooCore pipelines over
 * one McMemorySystem, advanced in lockstep on ONE shared event queue.
 *
 * Every simulated cycle, cores step in core-id order (retire then
 * dispatch); when no core makes progress the clock jumps to the next
 * event or head-of-ROB wake cycle, exactly like the single-core run
 * loop. The interleaving is therefore a pure function of the
 * configuration and the workloads — bit-identical across hosts, job
 * counts, and repeated runs — and a 1-core McMachine run reproduces
 * OooCore::run() over MemorySystem cycle for cycle.
 *
 * Each core runs until IT has retired the per-core budget; cores that
 * finish early stop issuing while the rest keep contending (their
 * in-flight prefetches still drain). Per-core cycle counts cover each
 * core's own completion window, the standard multi-programmed
 * methodology for IPC_shared.
 */

#ifndef FDP_MC_MC_MACHINE_HH
#define FDP_MC_MC_MACHINE_HH

#include <memory>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "mc/workload_mix.hh"

namespace fdp
{

/** One co-run configuration: the per-core machine plus the core count. */
struct McRunConfig
{
    /**
     * Per-core configuration. machine/core give the Table 3 geometry
     * (the L2, MSHRs, and DRAM of which are shared); prefetcher and
     * fdp are replicated per core; numInsts is the PER-CORE budget.
     */
    RunConfig base;
    unsigned numCores = 2;
    /**
     * Optional per-core prefetcher selections (one name per core, as
     * accepted by prefetcherSelectionFromName: "stream", "vldp",
     * "manager", …). Empty = every core runs base.prefetcher, the
     * homogeneous default. Heterogeneous mixes drop out of the zoo for
     * free: each core builds its own selection over the shared L2.
     */
    std::vector<std::string> corePrefetchers;
};

/** One core's share of a co-run. */
struct McCoreResult
{
    std::string program;
    /** Prefetcher this core ran ("manager[vldp]" = manager, exploiting
     *  vldp when the run ended; "-" = none). */
    std::string prefetcher;
    std::uint64_t insts = 0;
    std::uint64_t cycles = 0;
    double ipc = 0.0;
    double bpki = 0.0;
    double accuracy = 0.0;
    double lateness = 0.0;
    double pollution = 0.0;
    std::uint64_t prefSent = 0;
    std::uint64_t prefUsed = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t demandAccesses = 0;
    /** This core's share of the shared memory bus. */
    std::uint64_t busAccesses = 0;
    /** Demand blocks this core's prefetches evicted from the L2. */
    std::uint64_t pollutionInflicted = 0;
    /** Demand blocks this core lost to OTHER cores' prefetches. */
    std::uint64_t crossPollutionSuffered = 0;
    /** Single-core baseline IPC; set by the mix runner. */
    double aloneIpc = 0.0;
    /** IPC_shared / IPC_alone; set by the mix runner. */
    double speedup = 0.0;
};

/** Everything one co-run produces. */
struct McRunResult
{
    std::string mix;
    std::string config;
    unsigned numCores = 0;
    std::vector<McCoreResult> cores;
    /** Cycles until the LAST core retired its budget. */
    std::uint64_t cycles = 0;
    /** Total shared-bus accesses (all cores, all priorities). */
    std::uint64_t busAccesses = 0;
    /** Sum of per-core IPCs. */
    double throughput = 0.0;
    /// @name Multi-program metrics; set by the mix runner
    /// @{
    double weightedSpeedup = 0.0;
    double harmonicSpeedup = 0.0;
    /** min/max per-core speedup (1.0 = perfectly fair). */
    double fairness = 0.0;
    /// @}
};

/**
 * Run @p workloads (one per core, typically from buildMixWorkloads)
 * under @p config. Speedup fields are left zero — runMixSweep fills
 * them from the single-core baselines.
 */
McRunResult runMcWorkloads(const McRunConfig &config,
                           const std::vector<std::unique_ptr<Workload>> &workloads,
                           const std::string &mixName,
                           const std::string &configLabel);

/** Instantiate @p spec's workloads and co-run them under @p config. */
McRunResult runMix(const MixSpec &spec, const McRunConfig &config,
                   const std::string &configLabel);

} // namespace fdp

#endif // FDP_MC_MC_MACHINE_HH
