/**
 * @file
 * Shared memory hierarchy for N-core co-runs (DESIGN.md §13): per-core
 * L1s and prefetch request queues over ONE shared L2, ONE shared MSHR
 * file, and ONE bandwidth-limited DRAM bus, with a per-core FDP
 * controller observing each core's own prefetcher.
 *
 * The demand/prefetch/fill state machine is the single-core
 * MemorySystem's, operation for operation, with every request tagged
 * by its CoreId so shared structures attribute costs to cores:
 *  - L2 lines carry the installing core; pollution is charged to the
 *    prefetching core and reported to the victim line's owner core;
 *  - MSHR entries carry the allocating core; a demand that merges into
 *    another core's in-flight prefetch retags the entry to the
 *    demanding core (the late-prefetch credit stays with the issuer);
 *  - DRAM counts bus accesses per core (bandwidth share).
 *
 * Shared-L2 evictions tick EVERY controller's sampling interval, so
 * all cores' intervals stay synchronized (an audited invariant) and
 * end-of-interval audits see the whole machine at one cadence. With
 * numCores == 1 the behavior is bit-identical to MemorySystem.
 */

#ifndef FDP_MC_MC_MEMORY_SYSTEM_HH
#define FDP_MC_MC_MEMORY_SYSTEM_HH

#include <deque>
#include <memory>
#include <vector>

#include "core/fdp_controller.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/memory_port.hh"
#include "mem/memory_system.hh"
#include "mem/mshr.hh"
#include "prefetch/prefetcher.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace fdp
{

/** N private L1s + shared L2 + shared MSHRs + shared DRAM. */
// fdp-analyze: suppress(snapshot-coverage, multi-core co-runs are not
// snapshot targets yet; warm-fork sweeps cover single-core machines)
class McMemorySystem : public Auditable
{
  public:
    /**
     * @param params       machine configuration (Table 3 geometry); the
     *                     prefetch cache must be disabled (single-core
     *                     only)
     * @param events       shared event queue
     * @param prefetchers  one per core (entries may be null)
     * @param controllers  one per core, never null
     * @param sharedStats  group receiving shared-structure statistics
     *                     (same names as the single-core MemorySystem)
     * @param coreStats    one group per core for that core's share of
     *                     every shared counter
     */
    McMemorySystem(const MachineParams &params, EventQueue &events,
                   const std::vector<Prefetcher *> &prefetchers,
                   const std::vector<FdpController *> &controllers,
                   StatGroup &sharedStats,
                   const std::vector<StatGroup *> &coreStats);

    /** Demand load/store by @p core; @p done fires with the data. */
    void demandAccess(CoreId core, Addr addr, Addr pc, bool isWrite,
                      Cycle now, DoneFn done);

    /** MemoryPort view binding @p core, for driving an OooCore. */
    MemoryPort &port(CoreId core);

    unsigned numCores() const { return numCores_; }

    /** True when no misses are in flight and no requests are queued. */
    bool quiesced() const;

    const SetAssocCache &l1(CoreId core) const;
    const SetAssocCache &l2() const { return l2_; }
    DramBackend &dram() { return *dram_; }
    const DramBackend &dram() const { return *dram_; }

    /** Data-bus utilization over the last closed measurement window,
     *  normalized by the backend's data-bus count (same value the
     *  single-core MemorySystem reports for the same request stream). */
    double busUtilization() const { return busUtil_; }

    /// @name Per-core lifetime statistics
    /// @{
    std::uint64_t demandAccesses(CoreId core) const;
    std::uint64_t l2Misses(CoreId core) const;
    std::uint64_t mshrStalls(CoreId core) const;
    std::uint64_t prefDropQueueFull(CoreId core) const;
    /** Demand blocks this core's prefetch fills evicted (any victim). */
    std::uint64_t pollutionInflicted(CoreId core) const;
    /** This core's demand blocks evicted by OTHER cores' prefetches. */
    std::uint64_t crossPollutionSuffered(CoreId core) const;
    /** Shared-L2 evictions caused by this core's fills. */
    std::uint64_t l2EvictionsCaused(CoreId core) const;
    /** Average alloc-to-fill cycles of this core's demand misses. */
    double avgDemandMissLatency(CoreId core) const;
    /// @}

    /**
     * Invariants: per-core structures within capacity; core-id tags of
     * queued demands valid; every per-core counter column sums exactly
     * to its shared total (stat-scoping conservation); all controllers'
     * sampling intervals synchronized; plus the structural audits of
     * the L1s, the L2, the MSHR file, and the DRAM model.
     */
    void audit() const override;
    const char *auditName() const override { return "mc_memory_system"; }

  private:
    friend struct AuditCorrupter;

    /** MemoryPort adapter binding one CoreId. */
    class Port : public MemoryPort
    {
      public:
        Port(McMemorySystem &sys, CoreId core) : sys_(sys), core_(core) {}
        void
        demandAccess(Addr addr, Addr pc, bool isWrite, Cycle now,
                     DoneFn done) override
        {
            sys_.demandAccess(core_, addr, pc, isWrite, now,
                              std::move(done));
        }

      private:
        McMemorySystem &sys_;
        CoreId core_;
    };

    struct PendingDemand
    {
        CoreId core;
        BlockAddr block;
        bool isWrite;
        DoneFn done;
        Cycle arrival;
    };

    /** One core's private structures and its share of every counter. */
    struct PerCore
    {
        PerCore(const MachineParams &params, unsigned numCores,
                StatGroup &stats);

        SetAssocCache l1;
        std::deque<BlockAddr> prefetchQueue;

        ScalarStat demandAccesses;
        ScalarStat l1Hits;
        ScalarStat l1Misses;
        ScalarStat l2Hits;
        ScalarStat l2Misses;
        ScalarStat mshrMerges;
        ScalarStat mshrStalls;
        ScalarStat prefIssued;
        ScalarStat prefDropL2Hit;
        ScalarStat prefDropInFlight;
        ScalarStat prefDropQueueFull;
        ScalarStat writebacks;
        ScalarStat demandMissFills;
        ScalarStat demandMissCycles;
        ScalarStat l2EvictionsCaused;
        ScalarStat pollutionInflicted;
        ScalarStat crossPollutionSuffered;
    };

    PerCore &core(CoreId c) { return perCore_[c.index()]; }
    const PerCore &core(CoreId c) const { return perCore_[c.index()]; }

    void observeAndIssue(CoreId core, const PrefetchObservation &obs,
                         Cycle now);
    /** Close the shared bus-utilization window if @p now moved past it
     *  (one shared bus, so one shared window; see MemorySystem). */
    void updateBusUtil(Cycle now);
    void drainPrefetchQueue(CoreId core, Cycle now);
    void drainAllPrefetchQueues(Cycle now);
    void startDemandMiss(CoreId core, BlockAddr block, bool isWrite,
                         Cycle now, DoneFn done);
    void onFill(BlockAddr block, Cycle fillCycle);
    void insertL2Fill(CoreId by, BlockAddr block, bool prefBit, bool dirty,
                      Cycle now);
    void fillL1(CoreId core, BlockAddr block, bool isWrite, Cycle now);
    void admitPending(Cycle now);

    MachineParams params_;
    EventQueue &events_;
    unsigned numCores_;
    std::vector<Prefetcher *> prefetchers_;
    std::vector<FdpController *> fdp_;

    /** deque: ScalarStat registers into its group, so no relocation. */
    std::deque<PerCore> perCore_;
    std::deque<Port> ports_;

    SetAssocCache l2_;
    MshrFile mshrs_;
    std::unique_ptr<DramBackend> dram_;

    /// @name Shared bus-utilization window (see MemorySystem)
    /// @{
    double busUtil_ = 0.0;
    Cycle busWindowStart_ = 0;
    std::uint64_t busWindowBusy_ = 0;
    /// @}

    std::deque<PendingDemand> mshrWaitQ_;
    std::vector<BlockAddr> pfCandidates_;  ///< scratch, reused per access
    std::vector<DoneFn> fillWaiters_;      ///< scratch, reused per fill

    /// @name Shared totals (single-core MemorySystem stat names)
    /// @{
    ScalarStat demandAccesses_;
    ScalarStat l1Hits_;
    ScalarStat l1Misses_;
    ScalarStat l2Hits_;
    ScalarStat l2Misses_;
    ScalarStat mshrMerges_;
    ScalarStat mshrStalls_;
    ScalarStat prefIssued_;
    ScalarStat prefDropL2Hit_;
    ScalarStat prefDropInFlight_;
    ScalarStat prefDropQueueFull_;
    ScalarStat writebacks_;
    ScalarStat demandMissFills_;
    ScalarStat demandMissCycles_;
    /// @}
};

} // namespace fdp

#endif // FDP_MC_MC_MEMORY_SYSTEM_HH
