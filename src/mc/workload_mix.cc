#include "mc/workload_mix.hh"

#include <utility>

#include "sim/logging.hh"
#include "trace/trace_workload.hh"
#include "workload/generators.hh"
#include "workload/spec_suite.hh"

namespace fdp
{

namespace
{

/**
 * Deterministic seed perturbation for the k-th duplicate of a
 * benchmark within one mix: a pure function of the calibrated seed and
 * the duplicate index, so mixes stay bit-identical across runs and
 * job counts while the copies diverge from each other.
 */
std::uint64_t
duplicateSeed(std::uint64_t seed, unsigned dupIndex)
{
    return seed + 1000003ull * dupIndex;
}

MixEntry
bench(const char *name)
{
    MixEntry e;
    e.benchmark = name;
    return e;
}

MixSpec
mix(const char *name, std::vector<MixEntry> entries)
{
    MixSpec s;
    s.name = name;
    s.entries = std::move(entries);
    return s;
}

std::vector<MixSpec>
buildNamedMixes()
{
    std::vector<MixSpec> mixes;
    // Two streamers: both latency-bound alone, bandwidth-bound
    // together; fixed-aggressive prefetching overshoots the shared bus.
    mixes.push_back(mix("mix2-stream", {bench("swim"), bench("mgrid")}));
    // Streamer + pollution victim: swim's (accurate) prefetches fight
    // art's near-L2-sized reuse set for shared capacity.
    mixes.push_back(mix("mix2-victim", {bench("swim"), bench("art")}));
    // Bandwidth hog + low-rate streamer: mcf saturates the bus, so
    // lucas' prefetches queue behind it and run late.
    mixes.push_back(mix("mix2-late", {bench("mcf"), bench("lucas")}));
    // Four streamers: the 4.5 GB/s bus is ~4x oversubscribed; per-core
    // throttling must ration bandwidth the fixed config wastes.
    mixes.push_back(mix("mix4-bw", {bench("swim"), bench("mgrid"),
                                    bench("applu"), bench("lucas")}));
    // Two streamers + two pollution-prone reuse codes.
    mixes.push_back(mix("mix4-victim", {bench("swim"), bench("mgrid"),
                                        bench("art"), bench("ammp")}));
    // Heterogeneous: streamer, victim, bandwidth hog, mixed INT.
    mixes.push_back(mix("mix4-mixed", {bench("swim"), bench("art"),
                                       bench("mcf"), bench("bzip2")}));
    // Prefetcher zoo: heterogeneous per-core PREFETCHERS over a
    // heterogeneous program mix — a streamer on stream, a delta walker
    // on vldp, a spatial reuse code on dspatch, and the manager left to
    // pick for the bandwidth hog (DESIGN.md §17).
    MixSpec zoo = mix("mix4-zoo", {bench("swim"), bench("deltamix"),
                                   bench("art"), bench("mcf")});
    zoo.corePrefetchers = {"stream", "vldp", "dspatch", "manager"};
    mixes.push_back(std::move(zoo));
    // Eight streamers: two copies of each mix4-bw program (duplicates
    // get distinct deterministic seeds, so the copies desynchronize).
    // The flat 4.5 GB/s bus is ~8x oversubscribed; the FR-FCFS
    // controller's FDP-directed scheduling is evaluated here.
    mixes.push_back(mix("mix8-bw",
                        {bench("swim"), bench("mgrid"), bench("applu"),
                         bench("lucas"), bench("swim"), bench("mgrid"),
                         bench("applu"), bench("lucas")}));
    // Heterogeneous eight: streamers, pollution victims, bandwidth
    // hogs, and mixed INT sharing one L2 and one memory controller.
    mixes.push_back(mix("mix8-mixed",
                        {bench("swim"), bench("art"), bench("mcf"),
                         bench("bzip2"), bench("mgrid"), bench("applu"),
                         bench("lucas"), bench("equake")}));
    // Sixteen streamers: four copies of each mix4-bw program; the
    // extreme bandwidth-bound point for multi-channel scaling.
    mixes.push_back(mix("mix16-bw",
                        {bench("swim"), bench("mgrid"), bench("applu"),
                         bench("lucas"), bench("swim"), bench("mgrid"),
                         bench("applu"), bench("lucas"), bench("swim"),
                         bench("mgrid"), bench("applu"), bench("lucas"),
                         bench("swim"), bench("mgrid"), bench("applu"),
                         bench("lucas")}));
    return mixes;
}

} // namespace

std::string
MixEntry::displayName() const
{
    if (!benchmark.empty())
        return benchmark;
    // Strip the directory part of a trace path for report rows.
    const std::size_t slash = tracePath.find_last_of('/');
    return slash == std::string::npos ? tracePath
                                      : tracePath.substr(slash + 1);
}

const std::vector<MixSpec> &
namedMixes()
{
    static const std::vector<MixSpec> mixes = buildNamedMixes();
    return mixes;
}

const MixSpec &
mixByName(const std::string &name)
{
    std::string known;
    for (const MixSpec &m : namedMixes()) {
        if (m.name == name)
            return m;
        known += known.empty() ? m.name : ", " + m.name;
    }
    fatal("unknown mix `%s' (known mixes: %s)", name.c_str(),
          known.c_str());
}

MixSpec
traceMix(const std::vector<std::string> &tracePaths)
{
    if (tracePaths.empty())
        fatal("a trace mix needs at least one trace path");
    MixSpec s;
    s.name = "trace-mix";
    for (const std::string &p : tracePaths) {
        MixEntry e;
        e.tracePath = p;
        s.entries.push_back(std::move(e));
    }
    return s;
}

std::unique_ptr<Workload>
buildAloneWorkload(const MixEntry &entry, unsigned dupIndex)
{
    if (!entry.tracePath.empty())
        return std::make_unique<TraceWorkload>(entry.tracePath);
    SyntheticParams params = benchmarkParams(entry.benchmark);
    params.seed = duplicateSeed(params.seed, dupIndex);
    return std::make_unique<SyntheticWorkload>(params);
}

std::vector<std::unique_ptr<Workload>>
buildMixWorkloads(const MixSpec &spec)
{
    if (spec.entries.empty())
        fatal("mix %s has no entries", spec.name.c_str());
    std::vector<std::unique_ptr<Workload>> workloads;
    workloads.reserve(spec.entries.size());
    for (unsigned core = 0; core < spec.numCores(); ++core) {
        const MixEntry &entry = spec.entries[core];
        if (entry.benchmark.empty() == entry.tracePath.empty())
            fatal("mix %s core %u: an entry names exactly one of a "
                  "benchmark or a trace", spec.name.c_str(), core);
        // Duplicate index: how many earlier cores run the same program.
        unsigned dup = 0;
        for (unsigned prev = 0; prev < core; ++prev)
            if (spec.entries[prev].benchmark == entry.benchmark &&
                spec.entries[prev].tracePath == entry.tracePath)
                ++dup;
        workloads.push_back(std::make_unique<RebasedWorkload>(
            buildAloneWorkload(entry, dup), kCoreAddrStride * core));
    }
    return workloads;
}

} // namespace fdp
