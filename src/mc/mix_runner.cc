#include "mc/mix_runner.hh"

// fdp-analyze: suppress-file(wall-clock, steady_clock feeds the
// stderr throughput report only; simulated results never read it)

#include <algorithm>
#include <chrono>

#include "harness/sweep_pool.hh"
#include "sim/logging.hh"
#include "trace/trace_reader.hh"
#include "workload/spec_suite.hh"

namespace fdp
{

namespace
{

/**
 * Alone-baseline dedup key: two cores share a baseline cell exactly
 * when they replay the identical stream — the same trace file, or the
 * same benchmark at the same duplicate index (duplicates run perturbed
 * seeds, so they are distinct streams) — on the same machine, i.e. the
 * same per-core prefetcher selection when the mix is heterogeneous.
 */
std::string
baselineKey(const MixEntry &entry, unsigned dup, const std::string &sel)
{
    const std::string machine = sel.empty() ? "" : "|p:" + sel;
    if (!entry.tracePath.empty())
        return "t:" + entry.tracePath + machine;
    return "b:" + entry.benchmark + "#" + std::to_string(dup) + machine;
}

} // namespace

std::vector<McRunResult>
runMixSweep(const MixSpec &mix, const std::vector<McLabeledConfig> &configs,
            unsigned jobs)
{
    if (configs.empty())
        fatal("mix sweep needs at least one configuration");
    const unsigned n = mix.numCores();
    if (n == 0)
        fatal("mix %s has no entries", mix.name.c_str());
    std::uint64_t maxInsts = 0;
    for (const McLabeledConfig &c : configs) {
        if (c.config.numCores != n)
            fatal("mix %s names %u cores but configuration %s has %u",
                  mix.name.c_str(), n, c.label.c_str(),
                  c.config.numCores);
        maxInsts = std::max(maxInsts, c.config.base.numInsts);
    }

    // Validate every program on the main thread, before any worker
    // exists: unknown benchmarks and malformed/short traces are user
    // errors, not worker fatals.
    std::vector<unsigned> dup(n, 0);
    for (unsigned i = 0; i < n; ++i) {
        const MixEntry &e = mix.entries[i];
        for (unsigned prev = 0; prev < i; ++prev)
            if (mix.entries[prev].benchmark == e.benchmark &&
                mix.entries[prev].tracePath == e.tracePath)
                ++dup[i];
        if (!e.benchmark.empty()) {
            benchmarkParams(e.benchmark);
            continue;
        }
        TraceReader reader(e.tracePath);
        const std::uint64_t available = reader.header().opCount;
        if (maxInsts > available)
            fatal("trace %s holds %llu micro-ops but this mix consumes "
                  "%llu per core; record a longer trace",
                  e.tracePath.c_str(),
                  static_cast<unsigned long long>(available),
                  static_cast<unsigned long long>(maxInsts));
    }

    // Effective per-core prefetcher selections, per configuration
    // (runMix falls back to the mix's own line-up when the config
    // leaves its vector empty). Parsed on the main thread so a typo in
    // a selection name is a user error, not a worker fatal.
    std::vector<std::vector<std::string>> sel(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
        sel[c] = configs[c].config.corePrefetchers.empty()
                     ? mix.corePrefetchers
                     : configs[c].config.corePrefetchers;
        if (!sel[c].empty() && sel[c].size() != n)
            fatal("mix %s names %u cores but configuration %s selects "
                  "%zu per-core prefetchers", mix.name.c_str(), n,
                  configs[c].label.c_str(), sel[c].size());
        for (const std::string &s : sel[c])
            prefetcherSelectionFromName(s);
    }

    // Alone-baseline cells, deduplicated within each configuration
    // (heterogeneous selections give each configuration its own key
    // space: the same program under a different prefetcher is a
    // different baseline).
    std::vector<std::vector<std::string>> keys(configs.size());
    std::vector<std::vector<unsigned>> exemplar(configs.size());
    std::vector<std::vector<std::size_t>> slotOf(
        configs.size(), std::vector<std::size_t>(n));
    std::size_t cells = configs.size();
    for (std::size_t c = 0; c < configs.size(); ++c) {
        for (unsigned i = 0; i < n; ++i) {
            const std::string key = baselineKey(
                mix.entries[i], dup[i], sel[c].empty() ? "" : sel[c][i]);
            const auto it =
                std::find(keys[c].begin(), keys[c].end(), key);
            if (it == keys[c].end()) {
                slotOf[c][i] = keys[c].size();
                keys[c].push_back(key);
                exemplar[c].push_back(i);
            } else {
                slotOf[c][i] =
                    static_cast<std::size_t>(it - keys[c].begin());
            }
        }
        cells += keys[c].size();
    }
    if (jobs == 0)
        jobs = defaultSweepJobs();
    if (static_cast<std::size_t>(jobs) > cells)
        jobs = static_cast<unsigned>(cells);
    const auto start = std::chrono::steady_clock::now();

    std::vector<McRunResult> results(configs.size());
    std::vector<std::vector<RunResult>> alone(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c)
        alone[c].resize(keys[c].size());

    const auto corunCell = [&mix, &configs, &results](std::size_t c) {
        results[c] = runMix(mix, configs[c].config, configs[c].label);
    };
    const auto aloneCell = [&mix, &configs, &alone, &dup, &exemplar,
                            &sel](std::size_t c, std::size_t k) {
        const unsigned coreIdx = exemplar[c][k];
        const auto workload =
            buildAloneWorkload(mix.entries[coreIdx], dup[coreIdx]);
        RunConfig rc = configs[c].config.base;
        if (!sel[c].empty())
            rc = applyPrefetcherSelection(rc, sel[c][coreIdx]);
        alone[c][k] =
            runWorkload(*workload, rc, configs[c].label + "-alone");
    };

    if (jobs == 1) {
        for (std::size_t c = 0; c < configs.size(); ++c) {
            corunCell(c);
            for (std::size_t k = 0; k < keys[c].size(); ++k)
                aloneCell(c, k);
        }
    } else {
        // Each result lands in its pre-sized slot, so completion order
        // never affects the output. Co-runs (roughly N single-core
        // runs' worth of work each) are submitted first, LPT-style.
        std::string workerFatal;
        bool sawWorkerFatal = false;
        {
            SweepPool pool(jobs);
            for (std::size_t c = 0; c < configs.size(); ++c)
                pool.submit([&corunCell, c] { corunCell(c); });
            for (std::size_t c = 0; c < configs.size(); ++c)
                for (std::size_t k = 0; k < keys[c].size(); ++k)
                    pool.submit([&aloneCell, c, k] { aloneCell(c, k); });
            try {
                pool.wait();
            } catch (const FatalError &e) {
                sawWorkerFatal = true;
                workerFatal = e.what();
            }
        }
        if (sawWorkerFatal)
            fatal("%s", workerFatal.c_str());
    }

    for (std::size_t c = 0; c < configs.size(); ++c) {
        std::vector<double> aloneIpc(n, 0.0);
        for (unsigned i = 0; i < n; ++i)
            aloneIpc[i] = alone[c][slotOf[c][i]].ipc;
        finalizeSpeedups(results[c], aloneIpc);
    }

    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - start;
    SweepStats stats;
    stats.runs = cells;
    stats.jobs = jobs;
    stats.wallSeconds = wall.count();
    printSweepThroughput(stats);
    return results;
}

Table
buildMixCoreTable(const std::vector<McRunResult> &results)
{
    if (results.empty())
        panic("per-core mix table needs at least one co-run");
    Table t("mix " + results.front().mix + ": per-core breakdown (" +
            std::to_string(results.front().numCores) + " cores)");
    t.setHeader({"config", "core", "program", "prefetcher", "IPC",
                 "alone", "speedup", "BPKI", "accuracy", "pollution",
                 "poll-out", "poll-in"});
    for (std::size_t c = 0; c < results.size(); ++c) {
        if (c > 0)
            t.addRule();
        const McRunResult &r = results[c];
        for (std::size_t i = 0; i < r.cores.size(); ++i) {
            const McCoreResult &core = r.cores[i];
            t.addRow({r.config, "c" + std::to_string(i), core.program,
                      core.prefetcher, fmtDouble(core.ipc, 3),
                      fmtDouble(core.aloneIpc, 3),
                      fmtDouble(core.speedup, 3),
                      fmtDouble(core.bpki, 2),
                      fmtDouble(core.accuracy, 2),
                      fmtDouble(core.pollution, 3),
                      std::to_string(core.pollutionInflicted),
                      std::to_string(core.crossPollutionSuffered)});
        }
    }
    return t;
}

Table
buildMixSummaryTable(const std::vector<McRunResult> &results)
{
    if (results.empty())
        panic("mix summary table needs at least one co-run");
    Table t("mix " + results.front().mix + ": multi-program metrics");
    t.setHeader({"config", "weighted speedup", "harmonic speedup",
                 "fairness", "throughput", "bus accesses"});
    for (const McRunResult &r : results)
        t.addRow({r.config, fmtDouble(r.weightedSpeedup, 3),
                  fmtDouble(r.harmonicSpeedup, 3),
                  fmtDouble(r.fairness, 3), fmtDouble(r.throughput, 3),
                  std::to_string(r.busAccesses)});
    return t;
}

void
addMcRunResult(ResultsJson &json, const McRunResult &r)
{
    const std::string base = r.mix + "/" + r.config;
    json.add(base + "/weighted_speedup", "ratio", r.weightedSpeedup,
             "higher");
    json.add(base + "/harmonic_speedup", "ratio", r.harmonicSpeedup,
             "higher");
    json.add(base + "/fairness", "ratio", r.fairness, "higher");
    json.add(base + "/throughput", "insts/cycle", r.throughput, "higher");
    json.add(base + "/bus_accesses", "count",
             static_cast<double>(r.busAccesses), "lower");
    for (std::size_t i = 0; i < r.cores.size(); ++i) {
        const McCoreResult &c = r.cores[i];
        const std::string p =
            base + "/c" + std::to_string(i) + "/" + c.program;
        json.add(p + "/ipc", "insts/cycle", c.ipc, "higher");
        json.add(p + "/speedup", "ratio", c.speedup, "higher");
        json.add(p + "/bpki", "bus-accesses/kilo-inst", c.bpki, "lower");
        json.add(p + "/accuracy", "ratio", c.accuracy, "higher");
        json.add(p + "/lateness", "ratio", c.lateness, "lower");
        json.add(p + "/pollution", "ratio", c.pollution, "lower");
        json.add(p + "/bus_accesses", "count",
                 static_cast<double>(c.busAccesses), "lower");
        json.add(p + "/pollution_inflicted", "count",
                 static_cast<double>(c.pollutionInflicted), "lower");
        json.add(p + "/cross_pollution_suffered", "count",
                 static_cast<double>(c.crossPollutionSuffered), "lower");
    }
}

} // namespace fdp
