/**
 * @file
 * Multi-programmed performance metrics (DESIGN.md §13).
 *
 * Per-core speedup is IPC_shared / IPC_alone, the alone run being the
 * same program under the same configuration on an otherwise idle
 * machine. Weighted speedup (the sum) measures system throughput,
 * harmonic speedup (N over the sum of reciprocals) balances
 * throughput against fairness, and the min/max fairness index exposes
 * starvation directly.
 */

#ifndef FDP_MC_MC_METRICS_HH
#define FDP_MC_MC_METRICS_HH

#include <vector>

#include "mc/mc_machine.hh"

namespace fdp
{

/** Sum of per-core speedups (system throughput). */
double weightedSpeedup(const std::vector<double> &speedups);

/** N / sum(1/speedup_i); 0 when any speedup is 0. */
double harmonicSpeedup(const std::vector<double> &speedups);

/** min/max of the per-core speedups; 1.0 = perfectly fair. */
double fairnessMinMax(const std::vector<double> &speedups);

/**
 * Fill @p r's per-core aloneIpc/speedup fields and the run-level
 * weighted/harmonic/fairness metrics from @p aloneIpc (one baseline
 * IPC per core, in core order). Fatal on a size mismatch.
 */
void finalizeSpeedups(McRunResult &r, const std::vector<double> &aloneIpc);

} // namespace fdp

#endif // FDP_MC_MC_METRICS_HH
