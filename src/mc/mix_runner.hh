/**
 * @file
 * Mix sweep runner: one workload mix under several co-run
 * configurations, with the single-core alone baselines needed for
 * weighted/harmonic speedup, fanned out over the harness sweep pool.
 *
 * Determinism contract (DESIGN.md §10): every cell — co-run or alone
 * baseline — is an independent simulated machine whose workload seeds
 * are pure functions of the mix definition, so the result tables are
 * bit-identical for any --jobs value and across repeated runs. The
 * sweep-throughput line goes to stderr only.
 */

#ifndef FDP_MC_MIX_RUNNER_HH
#define FDP_MC_MIX_RUNNER_HH

#include <string>
#include <vector>

#include "harness/reporting.hh"
#include "mc/mc_machine.hh"
#include "mc/mc_metrics.hh"
#include "sim/table.hh"

namespace fdp
{

/** One labeled co-run configuration column of a mix sweep. */
struct McLabeledConfig
{
    std::string label;
    McRunConfig config;
};

/**
 * Run @p mix under every configuration, plus one alone-baseline run
 * per distinct per-core program per configuration (under the same
 * configuration, on an idle machine), and finalize the speedup
 * metrics. results[c] is @p configs[c]'s co-run, in argument order.
 * Cells fan out over @p jobs worker threads (0 = defaultSweepJobs(),
 * 1 = fully sequential).
 */
std::vector<McRunResult> runMixSweep(const MixSpec &mix,
                                     const std::vector<McLabeledConfig> &configs,
                                     unsigned jobs = 0);

/**
 * Per-core detail table: one row per (configuration, core) with
 * shared IPC, speedup vs alone, bandwidth share, and pollution
 * attribution.
 */
Table buildMixCoreTable(const std::vector<McRunResult> &results);

/**
 * Headline table: one row per configuration with weighted speedup,
 * harmonic speedup, fairness, total throughput, and bus traffic.
 */
Table buildMixSummaryTable(const std::vector<McRunResult> &results);

/** Append every metric of one co-run to an fdp-results-v1 document. */
void addMcRunResult(ResultsJson &json, const McRunResult &r);

} // namespace fdp

#endif // FDP_MC_MIX_RUNNER_HH
