#include "mc/mc_memory_system.hh"

#include <utility>

#include "sim/logging.hh"

namespace fdp
{

namespace
{

/** Shared caches tag lines with owners from all @p numCores cores. */
CacheParams
withCores(CacheParams p, unsigned numCores)
{
    p.numCores = numCores;
    return p;
}

} // namespace

McMemorySystem::PerCore::PerCore(const MachineParams &params,
                                 unsigned numCores, StatGroup &stats)
    : l1(withCores(params.l1, numCores)),
      demandAccesses(stats, "demand_accesses", "demand loads+stores"),
      l1Hits(stats, "l1_hits", "L1D hits"),
      l1Misses(stats, "l1_misses", "L1D misses"),
      l2Hits(stats, "l2_hits", "L2 demand hits"),
      l2Misses(stats, "l2_misses", "L2 demand misses"),
      mshrMerges(stats, "mshr_merges",
                 "demands merged into in-flight MSHRs"),
      mshrStalls(stats, "mshr_stalls",
                 "demands stalled on a full MSHR file"),
      prefIssued(stats, "pref_issued", "prefetch candidates produced"),
      prefDropL2Hit(stats, "pref_drop_l2hit",
                    "prefetches dropped: block already cached"),
      prefDropInFlight(stats, "pref_drop_inflight",
                       "prefetches dropped: block already in flight"),
      prefDropQueueFull(stats, "pref_drop_queue_full",
                        "prefetches dropped: request queue overflow"),
      writebacks(stats, "writebacks",
                 "dirty blocks written back to DRAM"),
      demandMissFills(stats, "demand_miss_fills",
                      "DRAM fills that served demand misses"),
      demandMissCycles(stats, "demand_miss_cycles",
                       "total alloc-to-fill cycles of demand-miss fills"),
      l2EvictionsCaused(stats, "l2_evictions_caused",
                        "shared-L2 evictions caused by this core's fills"),
      pollutionInflicted(stats, "pollution_inflicted",
                         "demand blocks evicted by this core's "
                         "prefetch fills"),
      crossPollutionSuffered(stats, "cross_pollution_suffered",
                             "demand blocks lost to other cores' "
                             "prefetch fills")
{
}

McMemorySystem::McMemorySystem(const MachineParams &params,
                               EventQueue &events,
                               const std::vector<Prefetcher *> &prefetchers,
                               const std::vector<FdpController *> &controllers,
                               StatGroup &sharedStats,
                               const std::vector<StatGroup *> &coreStats)
    : params_(params), events_(events),
      numCores_(static_cast<unsigned>(controllers.size())),
      prefetchers_(prefetchers), fdp_(controllers),
      l2_(withCores(params.l2, numCores_)),
      mshrs_(params.l2Mshrs, numCores_),
      dram_(makeDramBackend(params.dram, params.dramCtrl, events,
                            sharedStats, numCores_)),
      demandAccesses_(sharedStats, "demand_accesses",
                      "demand loads+stores"),
      l1Hits_(sharedStats, "l1_hits", "L1D hits"),
      l1Misses_(sharedStats, "l1_misses", "L1D misses"),
      l2Hits_(sharedStats, "l2_hits", "L2 demand hits"),
      l2Misses_(sharedStats, "l2_misses", "L2 demand misses"),
      mshrMerges_(sharedStats, "mshr_merges",
                  "demands merged into in-flight MSHRs"),
      mshrStalls_(sharedStats, "mshr_stalls",
                  "demands stalled on a full MSHR file"),
      prefIssued_(sharedStats, "pref_issued",
                  "prefetch candidates produced"),
      prefDropL2Hit_(sharedStats, "pref_drop_l2hit",
                     "prefetches dropped: block already cached"),
      prefDropInFlight_(sharedStats, "pref_drop_inflight",
                        "prefetches dropped: block already in flight"),
      prefDropQueueFull_(sharedStats, "pref_drop_queue_full",
                         "prefetches dropped: request queue overflow"),
      writebacks_(sharedStats, "writebacks",
                  "dirty blocks written back to DRAM"),
      demandMissFills_(sharedStats, "demand_miss_fills",
                       "DRAM fills that served demand misses"),
      demandMissCycles_(sharedStats, "demand_miss_cycles",
                        "total alloc-to-fill cycles of demand-miss fills")
{
    if (numCores_ == 0)
        fatal("multi-core memory system needs at least one core");
    if (prefetchers_.size() != numCores_)
        fatal("%u controllers but %zu prefetchers", numCores_,
              prefetchers_.size());
    if (coreStats.size() != numCores_)
        fatal("%u cores but %zu per-core stat groups", numCores_,
              coreStats.size());
    for (unsigned i = 0; i < numCores_; ++i)
        if (fdp_[i] == nullptr)
            fatal("core %u has no FDP controller", i);
    if (params_.mshrDemandReserve >= params_.l2Mshrs)
        fatal("MSHR demand reserve must be below the MSHR capacity");
    if (params_.prefetchCache.enabled)
        fatal("the prefetch cache (Section 5.7) is single-core only");

    for (unsigned i = 0; i < numCores_; ++i) {
        perCore_.emplace_back(params_, numCores_, *coreStats[i]);
        ports_.emplace_back(*this, CoreId(i));
    }
}

MemoryPort &
McMemorySystem::port(CoreId core)
{
    if (core.index() >= numCores_)
        fatal("no port for core %u of %u", core.index(), numCores_);
    return ports_[core.index()];
}

const SetAssocCache &
McMemorySystem::l1(CoreId c) const
{
    return core(c).l1;
}

void
McMemorySystem::demandAccess(CoreId c, Addr addr, Addr pc, bool isWrite,
                             Cycle now, DoneFn done)
{
    PerCore &self = core(c);
    ++self.demandAccesses;
    ++demandAccesses_;
    const BlockAddr block = blockAddr(addr);
    const Cycle t1 = now + params_.l1Latency;

    if (self.l1.access(block, isWrite).hit) {
        ++self.l1Hits;
        ++l1Hits_;
        done(t1);
        return;
    }
    ++self.l1Misses;
    ++l1Misses_;

    const Cycle t2 = t1 + params_.l2Latency;
    const CacheAccessResult l2res = l2_.access(block, false);
    PrefetchObservation obs{addr, block, pc, !l2res.hit};

    if (l2res.hit) {
        ++self.l2Hits;
        ++l2Hits_;
        // The use is credited to the core whose prefetcher fetched the
        // block (with disjoint address slices, always the accessor).
        if (l2res.hitPrefetched)
            fdp_[l2_.ownerOf(block).index()]->onPrefetchUsedInCache();
        fillL1(c, block, isWrite, t2);
        done(t2);
        observeAndIssue(c, obs, t2);
        return;
    }

    ++self.l2Misses;
    ++l2Misses_;
    fdp_[c.index()]->onDemandMiss(block);
    observeAndIssue(c, obs, t2);

    if (MshrEntry *e = mshrs_.find(block)) {
        ++self.mshrMerges;
        ++mshrMerges_;
        if (e->prefBit) {
            // Late prefetch: the lateness is charged to the core that
            // issued the prefetch; the entry becomes a demand miss of
            // the demanding core.
            fdp_[e->core.index()]->onLatePrefetchMshrHit();
            e->prefBit = false;
            e->core = c;
            dram_->promoteToDemand(block);
        }
        if (isWrite)
            e->writeIntent = true;
        e->waiters.push_back(std::move(done));
        return;
    }

    if (mshrs_.full()) {
        ++self.mshrStalls;
        ++mshrStalls_;
        mshrWaitQ_.push_back({c, block, isWrite, std::move(done), t2});
        return;
    }
    startDemandMiss(c, block, isWrite, t2, std::move(done));
}

void
McMemorySystem::startDemandMiss(CoreId c, BlockAddr block, bool isWrite,
                                Cycle now, DoneFn done)
{
    MshrEntry &e = mshrs_.allocate(block, false, now, c);
    e.writeIntent = isWrite;
    e.waiters.push_back(std::move(done));
    dram_->enqueue(block, BusPriority::Demand, now,
                  [this, block](Cycle cy) { onFill(block, cy); }, c);
}

void
McMemorySystem::observeAndIssue(CoreId c, const PrefetchObservation &obs,
                                Cycle now)
{
    Prefetcher *pf = prefetchers_[c.index()];
    if (!pf)
        return;
    updateBusUtil(now);
    PrefetchObservation seen = obs;
    seen.busUtil = busUtil_;
    PerCore &self = core(c);
    pfCandidates_.clear();
    const std::size_t budget =
        params_.prefetchQueueCap - self.prefetchQueue.size();
    pf->observe(seen, pfCandidates_, budget);

    for (const BlockAddr b : pfCandidates_) {
        ++self.prefIssued;
        ++prefIssued_;
        if (self.prefetchQueue.size() >= params_.prefetchQueueCap) {
            ++self.prefDropQueueFull;
            ++prefDropQueueFull_;
            continue;
        }
        self.prefetchQueue.push_back(b);
    }
    drainPrefetchQueue(c, now);
}

void
McMemorySystem::updateBusUtil(Cycle now)
{
    if (now < busWindowStart_ + MemorySystem::kBusUtilWindow)
        return;
    const std::uint64_t busy = dram_->busBusyCycles();
    if (busy < busWindowBusy_) {
        busWindowStart_ = now;
        busWindowBusy_ = busy;
        return;
    }
    busUtil_ = static_cast<double>(busy - busWindowBusy_) /
               (static_cast<double>(now - busWindowStart_) *
                static_cast<double>(dram_->dataBuses()));
    if (busUtil_ > 1.0)
        busUtil_ = 1.0;
    busWindowStart_ = now;
    busWindowBusy_ = busy;
}

void
McMemorySystem::drainPrefetchQueue(CoreId c, Cycle now)
{
    PerCore &self = core(c);
    while (!self.prefetchQueue.empty()) {
        const BlockAddr b = self.prefetchQueue.front();
        if (l2_.probe(b)) {
            ++self.prefDropL2Hit;
            ++prefDropL2Hit_;
            self.prefetchQueue.pop_front();
            continue;
        }
        if (mshrs_.find(b)) {
            ++self.prefDropInFlight;
            ++prefDropInFlight_;
            self.prefetchQueue.pop_front();
            continue;
        }
        // Prefetches may not take the MSHRs reserved for demands; when
        // none is available the queue simply waits for a deallocation.
        if (mshrs_.size() + params_.mshrDemandReserve >= mshrs_.capacity())
            return;
        mshrs_.allocate(b, true, now, c);
        const bool sent =
            dram_->enqueue(b, BusPriority::Prefetch, now,
                          [this, b](Cycle cy) { onFill(b, cy); }, c,
                          fdp_[c.index()]->accuracyTier());
        if (!sent) {
            // Bus queue full: keep the candidate queued for later.
            mshrs_.deallocate(b);
            return;
        }
        self.prefetchQueue.pop_front();
        fdp_[c.index()]->onPrefetchSent();
    }
}

void
McMemorySystem::drainAllPrefetchQueues(Cycle now)
{
    // Core-id order: deterministic, and with one core identical to the
    // single-core drain.
    for (unsigned i = 0; i < numCores_; ++i)
        drainPrefetchQueue(CoreId(i), now);
}

void
McMemorySystem::onFill(BlockAddr block, Cycle fillCycle)
{
    MshrEntry *e = mshrs_.find(block);
    if (!e)
        panic("fill for block with no MSHR entry");

    const bool was_prefetch = e->prefBit;
    const bool write_intent = e->writeIntent;
    const CoreId owner = e->core;
    fillWaiters_.clear();
    fillWaiters_.swap(e->waiters);
    if (!was_prefetch) {
        PerCore &self = core(owner);
        ++self.demandMissFills;
        ++demandMissFills_;
        self.demandMissCycles += fillCycle - e->allocCycle;
        demandMissCycles_ += fillCycle - e->allocCycle;
    }
    mshrs_.deallocate(block);

    if (was_prefetch) {
        // The owner's filter clears its bit as a prefetch fill; every
        // other core clears too (the block is back in the shared L2),
        // without counting a fill it did not perform.
        for (unsigned i = 0; i < numCores_; ++i) {
            if (CoreId(i) == owner)
                fdp_[i]->onPrefetchFill(block);
            else
                fdp_[i]->onBlockRefetchedByOtherCore(block);
        }
        insertL2Fill(owner, block, true, false, fillCycle);
    } else {
        insertL2Fill(owner, block, false, false, fillCycle);
        fillL1(owner, block, write_intent, fillCycle);
    }

    for (auto &w : fillWaiters_)
        w(fillCycle);
    admitPending(fillCycle);
    drainAllPrefetchQueues(fillCycle);
}

void
McMemorySystem::insertL2Fill(CoreId by, BlockAddr block, bool prefBit,
                             bool dirty, Cycle now)
{
    const InsertPos pos =
        prefBit ? fdp_[by.index()]->insertPos() : InsertPos::Mru;
    const CacheVictim v = l2_.insert(block, prefBit, pos, dirty, by);
    if (!v.valid)
        return;
    ++core(by).l2EvictionsCaused;
    // Every shared-L2 eviction ticks EVERY controller, so all cores'
    // sampling intervals stay synchronized (audited invariant).
    for (unsigned i = 0; i < numCores_; ++i)
        fdp_[i]->onCacheEviction();
    if (prefBit && !v.prefBit) {
        // Pollution: the victim owner's filter learns the loss; the
        // cost is charged to the prefetching core and, when they
        // differ, also reported against the victim core.
        fdp_[v.owner.index()]->onDemandBlockEvictedByPrefetch(v.block);
        ++core(by).pollutionInflicted;
        if (!(v.owner == by))
            ++core(v.owner).crossPollutionSuffered;
    }
    if (v.dirty && params_.modelWritebacks) {
        ++core(v.owner).writebacks;
        ++writebacks_;
        dram_->enqueue(v.block, BusPriority::Writeback, now, nullptr,
                      v.owner);
    }
}

void
McMemorySystem::fillL1(CoreId c, BlockAddr block, bool isWrite, Cycle now)
{
    PerCore &self = core(c);
    if (self.l1.probe(block)) {
        if (isWrite)
            self.l1.markDirty(block);
        return;
    }
    const CacheVictim v =
        self.l1.insert(block, false, InsertPos::Mru, isWrite, c);
    if (v.valid && v.dirty) {
        // Dirty L1 victims land in the L2 when present there; otherwise
        // they must go all the way to memory.
        if (!l2_.markDirty(v.block) && params_.modelWritebacks) {
            ++self.writebacks;
            ++writebacks_;
            dram_->enqueue(v.block, BusPriority::Writeback, now, nullptr,
                          c);
        }
    }
}

void
McMemorySystem::admitPending(Cycle now)
{
    while (!mshrWaitQ_.empty() && !mshrs_.full()) {
        PendingDemand p = std::move(mshrWaitQ_.front());
        mshrWaitQ_.pop_front();
        // A prefetch issued while this demand waited may have brought
        // the block in already; it is a hit now.
        if (l2_.probe(p.block)) {
            fillL1(p.core, p.block, p.isWrite, now);
            p.done(now);
            continue;
        }
        if (MshrEntry *e = mshrs_.find(p.block)) {
            ++core(p.core).mshrMerges;
            ++mshrMerges_;
            if (e->prefBit) {
                fdp_[e->core.index()]->onLatePrefetchMshrHit();
                e->prefBit = false;
                e->core = p.core;
                dram_->promoteToDemand(p.block);
            }
            if (p.isWrite)
                e->writeIntent = true;
            e->waiters.push_back(std::move(p.done));
            continue;
        }
        startDemandMiss(p.core, p.block, p.isWrite, now,
                        std::move(p.done));
    }
}

bool
McMemorySystem::quiesced() const
{
    if (mshrs_.size() != 0 || !mshrWaitQ_.empty() || dram_->queued() != 0)
        return false;
    for (const PerCore &c : perCore_)
        if (!c.prefetchQueue.empty())
            return false;
    return true;
}

std::uint64_t
McMemorySystem::demandAccesses(CoreId c) const
{
    return core(c).demandAccesses.value();
}

std::uint64_t
McMemorySystem::l2Misses(CoreId c) const
{
    return core(c).l2Misses.value();
}

std::uint64_t
McMemorySystem::mshrStalls(CoreId c) const
{
    return core(c).mshrStalls.value();
}

std::uint64_t
McMemorySystem::prefDropQueueFull(CoreId c) const
{
    return core(c).prefDropQueueFull.value();
}

std::uint64_t
McMemorySystem::pollutionInflicted(CoreId c) const
{
    return core(c).pollutionInflicted.value();
}

std::uint64_t
McMemorySystem::crossPollutionSuffered(CoreId c) const
{
    return core(c).crossPollutionSuffered.value();
}

std::uint64_t
McMemorySystem::l2EvictionsCaused(CoreId c) const
{
    return core(c).l2EvictionsCaused.value();
}

double
McMemorySystem::avgDemandMissLatency(CoreId c) const
{
    return ratio(static_cast<double>(core(c).demandMissCycles.value()),
                 static_cast<double>(core(c).demandMissFills.value()));
}

void
McMemorySystem::audit() const
{
    FDP_ASSERT(params_.mshrDemandReserve < mshrs_.capacity(),
               "%s: demand reserve %zu swallows all %zu MSHRs",
               auditName(), params_.mshrDemandReserve, mshrs_.capacity());
    FDP_ASSERT(busUtil_ >= 0.0 && busUtil_ <= 1.0,
               "%s: bus utilization %f outside [0, 1]", auditName(),
               busUtil_);
    for (unsigned i = 0; i < numCores_; ++i) {
        FDP_ASSERT(perCore_[i].prefetchQueue.size() <=
                       params_.prefetchQueueCap,
                   "%s: core %u prefetch request queue holds %zu of %zu "
                   "entries",
                   auditName(), i, perCore_[i].prefetchQueue.size(),
                   params_.prefetchQueueCap);
        perCore_[i].l1.audit();
    }
    for (const PendingDemand &p : mshrWaitQ_)
        FDP_ASSERT(p.core.index() < numCores_,
                   "%s: queued demand tagged with core %u of %u",
                   auditName(), p.core.index(), numCores_);
    l2_.audit();
    mshrs_.audit();
    dram_->audit();

    // Stat scoping: every shared counter is exactly the sum of its
    // per-core breakdown — attribution may never invent or lose events.
    const auto conserve = [this](const char *name, const ScalarStat &total,
                                 ScalarStat PerCore::*field) {
        std::uint64_t sum = 0;
        for (const PerCore &c : perCore_)
            sum += (c.*field).value();
        FDP_ASSERT(sum == total.value(),
                   "%s: per-core %s sums to %llu but the shared total "
                   "is %llu",
                   auditName(), name,
                   static_cast<unsigned long long>(sum),
                   static_cast<unsigned long long>(total.value()));
    };
    conserve("demand_accesses", demandAccesses_, &PerCore::demandAccesses);
    conserve("l1_hits", l1Hits_, &PerCore::l1Hits);
    conserve("l1_misses", l1Misses_, &PerCore::l1Misses);
    conserve("l2_hits", l2Hits_, &PerCore::l2Hits);
    conserve("l2_misses", l2Misses_, &PerCore::l2Misses);
    conserve("mshr_merges", mshrMerges_, &PerCore::mshrMerges);
    conserve("mshr_stalls", mshrStalls_, &PerCore::mshrStalls);
    conserve("pref_issued", prefIssued_, &PerCore::prefIssued);
    conserve("pref_drop_l2hit", prefDropL2Hit_, &PerCore::prefDropL2Hit);
    conserve("pref_drop_inflight", prefDropInFlight_,
             &PerCore::prefDropInFlight);
    conserve("pref_drop_queue_full", prefDropQueueFull_,
             &PerCore::prefDropQueueFull);
    conserve("writebacks", writebacks_, &PerCore::writebacks);
    conserve("demand_miss_fills", demandMissFills_,
             &PerCore::demandMissFills);
    conserve("demand_miss_cycles", demandMissCycles_,
             &PerCore::demandMissCycles);

    // Shared-L2 evictions tick all controllers together, so their
    // sampling intervals can never drift apart.
    for (unsigned i = 1; i < numCores_; ++i)
        FDP_ASSERT(fdp_[i]->intervalsCompleted() ==
                       fdp_[0]->intervalsCompleted(),
                   "%s: core %u completed %llu sampling intervals but "
                   "core 0 completed %llu",
                   auditName(), i,
                   static_cast<unsigned long long>(
                       fdp_[i]->intervalsCompleted()),
                   static_cast<unsigned long long>(
                       fdp_[0]->intervalsCompleted()));
}

} // namespace fdp
