#include "mc/mc_metrics.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace fdp
{

double
weightedSpeedup(const std::vector<double> &speedups)
{
    double sum = 0.0;
    for (double s : speedups)
        sum += s;
    return sum;
}

double
harmonicSpeedup(const std::vector<double> &speedups)
{
    if (speedups.empty())
        return 0.0;
    double recip = 0.0;
    for (double s : speedups) {
        if (s <= 0.0)
            return 0.0;
        recip += 1.0 / s;
    }
    return static_cast<double>(speedups.size()) / recip;
}

double
fairnessMinMax(const std::vector<double> &speedups)
{
    if (speedups.empty())
        return 0.0;
    const auto [lo, hi] =
        std::minmax_element(speedups.begin(), speedups.end());
    return *hi > 0.0 ? *lo / *hi : 0.0;
}

void
finalizeSpeedups(McRunResult &r, const std::vector<double> &aloneIpc)
{
    if (aloneIpc.size() != r.cores.size())
        fatal("co-run %s/%s has %zu cores but %zu alone baselines",
              r.mix.c_str(), r.config.c_str(), r.cores.size(),
              aloneIpc.size());
    std::vector<double> speedups;
    speedups.reserve(r.cores.size());
    for (std::size_t i = 0; i < r.cores.size(); ++i) {
        McCoreResult &c = r.cores[i];
        c.aloneIpc = aloneIpc[i];
        c.speedup = ratio(c.ipc, c.aloneIpc);
        speedups.push_back(c.speedup);
    }
    r.weightedSpeedup = weightedSpeedup(speedups);
    r.harmonicSpeedup = harmonicSpeedup(speedups);
    r.fairness = fairnessMinMax(speedups);
}

} // namespace fdp
