#include "mc/mc_machine.hh"

#include <algorithm>
#include <deque>

#include "manage/prefetcher_manager.hh"
#include "mc/mc_memory_system.hh"
#include "sim/logging.hh"

namespace fdp
{

namespace
{

/** Human-readable prefetcher label for the per-core result row. */
std::string
describePrefetcher(const Prefetcher *pf)
{
    if (pf == nullptr)
        return "-";
    if (const auto *mgr = dynamic_cast<const ManagedPrefetcher *>(pf))
        return std::string("manager[") + mgr->activeName() + "]";
    return pf->name();
}

} // namespace

McRunResult
runMcWorkloads(const McRunConfig &config,
               const std::vector<std::unique_ptr<Workload>> &workloads,
               const std::string &mixName, const std::string &configLabel)
{
    const unsigned n = config.numCores;
    if (n == 0)
        fatal("a co-run needs at least one core");
    if (workloads.size() != n)
        fatal("co-run of %u cores got %zu workloads", n,
              workloads.size());
    if (!config.corePrefetchers.empty() && config.corePrefetchers.size() != n)
        fatal("co-run of %u cores got %zu per-core prefetcher selections",
              n, config.corePrefetchers.size());

    EventQueue events;
    StatGroup sharedStats("mem");
    // deques: StatGroup, FdpController, and OooCore register stats on
    // construction and must never relocate.
    std::deque<StatGroup> coreStats;
    std::deque<FdpController> controllers;
    std::deque<OooCore> cores;
    std::vector<std::unique_ptr<Prefetcher>> prefetchers;

    FdpParams fp = config.base.fdp;
    if (!fp.dynamicAggressiveness)
        fp.initialLevel = config.base.staticLevel;

    std::vector<Prefetcher *> pfPtrs;
    std::vector<FdpController *> fdpPtrs;
    std::vector<StatGroup *> groupPtrs;
    for (unsigned i = 0; i < n; ++i) {
        coreStats.emplace_back("c" + std::to_string(i));
        // Heterogeneous co-runs re-derive each core's config from the
        // base; makeRunPrefetcher picks the same start level the
        // controllers use (initialLevel when dynamic, staticLevel
        // otherwise) and wraps the zoo in a manager when selected.
        RunConfig cc = config.corePrefetchers.empty()
                           ? config.base
                           : applyPrefetcherSelection(
                                 config.base, config.corePrefetchers[i]);
        prefetchers.push_back(makeRunPrefetcher(cc));
        FdpParams fpi = fp;
        fpi.label = "fdp_controller.c" + std::to_string(i);
        controllers.emplace_back(fpi, prefetchers.back().get(),
                                 coreStats.back());
        pfPtrs.push_back(prefetchers.back().get());
        fdpPtrs.push_back(&controllers.back());
        groupPtrs.push_back(&coreStats.back());
    }

    McMemorySystem mem(config.base.machine, events, pfPtrs, fdpPtrs,
                       sharedStats, groupPtrs);
    for (unsigned i = 0; i < n; ++i)
        cores.emplace_back(config.base.core, mem.port(CoreId(i)), events,
                           *workloads[i], coreStats[i]);

    AuditSet audits;
    audits.add(&events);
    audits.add(&mem);
    for (unsigned i = 0; i < n; ++i) {
        audits.add(fdpPtrs[i]);
        if (pfPtrs[i])
            audits.add(pfPtrs[i]);
        if (const auto *aw =
                dynamic_cast<const Auditable *>(workloads[i].get()))
            audits.add(aw);
    }
    const bool periodicAudit = debugBuild() || auditRequestedByEnv();
    // Per-controller hooks: each manager samples ITS core's feedback
    // counters and retired-instruction count at that core's interval
    // boundary. Audits ride on the LAST controller only: shared-L2
    // evictions tick the controllers in core-id order, so only after
    // the last one closes its interval are all interval counts equal
    // again (which the mc audit asserts).
    for (unsigned i = 0; i < n; ++i) {
        auto *mgr = dynamic_cast<ManagedPrefetcher *>(pfPtrs[i]);
        const bool auditsHere = periodicAudit && i + 1 == n;
        if (mgr == nullptr && !auditsHere)
            continue;
        FdpController &ctrl = controllers[i];
        OooCore &core = cores[i];
        ctrl.setEndOfIntervalHook(
            [&audits, &events, &ctrl, &core, mgr, auditsHere] {
                if (mgr != nullptr) {
                    const FeedbackCounters &fc = ctrl.counters();
                    mgr->intervalTick({fc.accuracy(), fc.lateness(),
                                       fc.pollution(), core.retired(),
                                       events.horizon()});
                }
                if (auditsHere)
                    audits.runAll();
            });
    }

    // Lockstep drive: every core steps at every simulated cycle, in
    // core-id order, until each has retired the per-core budget.
    for (unsigned i = 0; i < n; ++i)
        cores[i].beginRun(config.base.numInsts);
    Cycle cyc = events.horizon();
    const Cycle start = cyc;
    std::vector<Cycle> finish(n, start);
    std::vector<bool> running(n, true);
    unsigned live = n;

    while (live > 0) {
        events.serviceUntil(cyc);
        bool progressed = false;
        for (unsigned i = 0; i < n; ++i) {
            if (!running[i])
                continue;
            progressed = cores[i].step(cyc) || progressed;
            if (cores[i].runDone()) {
                running[i] = false;
                finish[i] = cyc;
                --live;
            }
        }
        if (live == 0)
            break;

        // Advance the clock, skipping dead time when fully stalled.
        Cycle nxt = cyc + 1;
        if (!progressed) {
            Cycle target = events.nextEventCycle();
            for (unsigned i = 0; i < n; ++i)
                if (running[i])
                    target = std::min(target, cores[i].wakeCycle());
            if (target == kNoCycle) {
                for (unsigned i = 0; i < n; ++i)
                    if (running[i] && !cores[i].robEmpty())
                        panic("core %u deadlock: stalled with no "
                              "pending events", i);
                target = cyc + 1;
            }
            if (target > cyc)
                nxt = target;
            for (unsigned i = 0; i < n; ++i)
                if (running[i])
                    cores[i].noteDeadTime(nxt - cyc);
        }
        cyc = nxt;
    }
    for (unsigned i = 0; i < n; ++i)
        cores[i].closeRun(start, finish[i]);

    if (periodicAudit)
        audits.runAll();

    McRunResult r;
    r.mix = mixName;
    r.config = configLabel;
    r.numCores = n;
    r.busAccesses = mem.dram().busAccesses();
    for (unsigned i = 0; i < n; ++i) {
        McCoreResult c;
        c.program = workloads[i]->name();
        c.prefetcher = describePrefetcher(pfPtrs[i]);
        c.insts = cores[i].retired();
        c.cycles = cores[i].cycles();
        c.ipc = cores[i].ipc();
        c.accuracy = controllers[i].lifetimeAccuracy();
        c.lateness = controllers[i].lifetimeLateness();
        c.pollution = controllers[i].lifetimePollution();
        c.l2Misses = mem.l2Misses(CoreId(i));
        c.demandAccesses = mem.demandAccesses(CoreId(i));
        c.busAccesses = mem.dram().busAccessesByCore(CoreId(i));
        c.bpki = ratio(static_cast<double>(c.busAccesses),
                       static_cast<double>(c.insts) / 1000.0);
        c.pollutionInflicted = mem.pollutionInflicted(CoreId(i));
        c.crossPollutionSuffered = mem.crossPollutionSuffered(CoreId(i));
        for (const auto *s : coreStats[i].scalars()) {
            if (s->name() == "pref_sent")
                c.prefSent = s->value();
            else if (s->name() == "pref_used")
                c.prefUsed = s->value();
        }
        r.cycles = std::max(r.cycles, c.cycles);
        r.throughput += c.ipc;
        r.cores.push_back(std::move(c));
    }
    return r;
}

McRunResult
runMix(const MixSpec &spec, const McRunConfig &config,
       const std::string &configLabel)
{
    if (spec.numCores() != config.numCores)
        fatal("mix %s names %u cores but the configuration has %u",
              spec.name.c_str(), spec.numCores(), config.numCores);
    McRunConfig cfg = config;
    if (cfg.corePrefetchers.empty())
        cfg.corePrefetchers = spec.corePrefetchers;
    const auto workloads = buildMixWorkloads(spec);
    return runMcWorkloads(cfg, workloads, spec.name, configLabel);
}

} // namespace fdp
