/**
 * @file
 * Global History Buffer C/DC (C-Zone Delta Correlation) prefetcher
 * (Nesbit & Smith, as used by paper Section 5.7).
 *
 * L2 miss addresses are pushed into a circular Global History Buffer;
 * an index table keyed by Concentration Zone (CZone) heads a linked list
 * of that zone's misses through the buffer. On each miss the zone's
 * recent delta stream is reconstructed and the last delta pair is
 * correlated against history; on a match, the deltas that followed the
 * match are replayed to produce prefetch addresses.
 */

#ifndef FDP_PREFETCH_GHB_PREFETCHER_HH
#define FDP_PREFETCH_GHB_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace fdp
{

/** Configuration knobs for the GHB C/DC prefetcher. */
struct GhbPrefetcherParams
{
    /** Entries in the global history buffer. */
    unsigned ghbSize = 256;
    /** Entries in the CZone index table. */
    unsigned indexSize = 256;
    /** log2(CZone size in blocks); 10 = 64KB zones with 64B blocks. */
    unsigned czoneShift = 10;
    /** Maximum history walked per miss, in GHB entries. */
    unsigned maxHistory = 64;
    /** Initial aggressiveness level (1..5). */
    unsigned initialLevel = kInitialAggrLevel;
};

/** GHB-based delta-correlation prefetcher. */
class GhbPrefetcher : public Prefetcher
{
  public:
    explicit GhbPrefetcher(const GhbPrefetcherParams &params = {});

    void setAggressiveness(unsigned level) override;
    unsigned aggressiveness() const override { return level_; }
    const char *name() const override { return "ghb-cdc"; }
    void reset() override;

    /** Current prefetch degree (== distance for GHB, Section 5.7). */
    unsigned degree() const { return kGhbAggrTable[level_].degree; }

    /**
     * Invariants: aggressiveness level in range, index entries name
     * distinct zones with live-or-null head pointers, and every live
     * GHB link points strictly backwards in sequence order (the
     * same-zone lists are acyclic).
     */
    void audit() const override;

  private:
    friend struct AuditCorrupter;

    void doObserve(const PrefetchObservation &obs,
                   std::vector<BlockAddr> &out,
                   std::size_t budget) override;

    struct GhbEntry
    {
        std::int64_t block = 0;
        /** Sequence number of the previous same-zone entry (or 0). */
        std::uint64_t prevSeq = 0;
        bool hasPrev = false;
    };

    struct IndexEntry
    {
        bool valid = false;
        std::uint64_t zone = 0;
        std::uint64_t headSeq = 0;
        std::uint64_t lastUse = 0;
    };

    /** True when @p seq still addresses a live (not overwritten) slot. */
    bool seqLive(std::uint64_t seq) const;

    /** Index-table lookup; returns nullptr on miss. */
    IndexEntry *findZone(std::uint64_t zone);

    /** Index-table fill, evicting LRU if needed. */
    IndexEntry &allocateZone(std::uint64_t zone);

    GhbPrefetcherParams params_;
    unsigned level_;
    std::vector<GhbEntry> ghb_;
    std::vector<IndexEntry> index_;
    /** Sequence number of the next push; slot = seq % ghbSize. */
    std::uint64_t nextSeq_ = 1;
    std::uint64_t tick_ = 0;
    /** Scratch buffers reused across observe() calls. */
    std::vector<std::int64_t> history_;
    std::vector<std::int64_t> deltas_;
};

} // namespace fdp

#endif // FDP_PREFETCH_GHB_PREFETCHER_HH
