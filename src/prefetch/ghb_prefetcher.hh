/**
 * @file
 * Global History Buffer C/DC (C-Zone Delta Correlation) prefetcher
 * (Nesbit & Smith, as used by paper Section 5.7).
 *
 * L2 miss addresses are pushed into a circular Global History Buffer;
 * an index table keyed by Concentration Zone (CZone) heads a linked list
 * of that zone's misses through the buffer. On each miss the zone's
 * recent delta stream is reconstructed and the last delta pair is
 * correlated against history; on a match, the deltas that followed the
 * match are replayed to produce prefetch addresses.
 */

#ifndef FDP_PREFETCH_GHB_PREFETCHER_HH
#define FDP_PREFETCH_GHB_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace fdp
{

/** Configuration knobs for the GHB C/DC prefetcher. */
struct GhbPrefetcherParams
{
    /** Entries in the global history buffer. */
    unsigned ghbSize = 256;
    /** Entries in the CZone index table. */
    unsigned indexSize = 256;
    /** log2(CZone size in blocks); 10 = 64KB zones with 64B blocks. */
    unsigned czoneShift = 10;
    /** Maximum history walked per miss, in GHB entries. */
    unsigned maxHistory = 64;
    /** Initial aggressiveness level (1..5). */
    unsigned initialLevel = kInitialAggrLevel;
};

/** GHB-based delta-correlation prefetcher. */
class GhbPrefetcher : public Prefetcher
{
  public:
    explicit GhbPrefetcher(const GhbPrefetcherParams &params = {});

    void setAggressiveness(unsigned level) override;
    unsigned aggressiveness() const override { return level_; }
    const char *name() const override { return "ghb-cdc"; }
    void reset() override;

    /** Current prefetch degree (== distance for GHB, Section 5.7). */
    unsigned degree() const { return kGhbAggrTable[level_].degree; }

    /**
     * Invariants: aggressiveness level in range, index entries name
     * distinct zones with live-or-null head pointers, and every live
     * GHB link points strictly backwards in sequence order (the
     * same-zone lists are acyclic).
     */
    void audit() const override;

    /** Serialize the history buffer, the index table, and the cursors. */
    void saveState(SnapWriter &w) const override;
    void loadState(SnapReader &r) override;

  private:
    friend struct AuditCorrupter;

    void doObserve(const PrefetchObservation &obs,
                   std::vector<BlockAddr> &out,
                   std::size_t budget) override;

    struct GhbEntry
    {
        std::int64_t block = 0;
        /** Sequence number of the previous same-zone entry (or 0). */
        std::uint64_t prevSeq = 0;
        bool hasPrev = false;
        /**
         * Cached block - prevBlock, filled at push time. Entries are
         * immutable until overwritten, so while prevSeq is live this
         * equals the delta recomputed from the buffer; the history walk
         * reads it instead of chasing the predecessor's block. Derived:
         * rebuilt (not stored) by loadState().
         */
        std::int64_t delta = 0;
    };

    struct IndexEntry
    {
        bool valid = false;
        std::uint64_t zone = 0;
        std::uint64_t headSeq = 0;
        std::uint64_t lastUse = 0;
    };

    /** True when @p seq still addresses a live (not overwritten) slot. */
    bool seqLive(std::uint64_t seq) const;

    /** GHB slot of @p seq (single AND when ghbSize is a power of two). */
    std::size_t slotOf(std::uint64_t seq) const
    {
        return slotMask_ ? static_cast<std::size_t>(seq & slotMask_)
                         : static_cast<std::size_t>(seq % ghb_.size());
    }

    /** Zone-map probe position for @p zone. */
    std::size_t hashZone(std::uint64_t zone) const
    {
        return static_cast<std::size_t>(
            (zone * 0x9E3779B97F4A7C15ull) >> zoneHashShift_);
    }

    /** Rebuild the zone map from the valid index entries. */
    void rebuildZoneMap();

    /** Index-table lookup; returns nullptr on miss. O(1) via zoneMap_. */
    IndexEntry *findZone(std::uint64_t zone);

    /** Index-table fill, evicting LRU if needed. */
    IndexEntry &allocateZone(std::uint64_t zone);

    GhbPrefetcherParams params_;
    unsigned level_;
    std::vector<GhbEntry> ghb_;
    std::vector<IndexEntry> index_;
    /** Sequence number of the next push; slot = slotOf(seq). */
    std::uint64_t nextSeq_ = 1;
    std::uint64_t tick_ = 0;
    /** ghbSize - 1 when ghbSize is a power of two, else 0. */
    std::uint64_t slotMask_ = 0;
    /**
     * Open-addressed (linear-probe) map from zone to index_ slot, so
     * the per-miss lookup is O(1) instead of a table scan. Holds only
     * valid entries and is rebuilt whenever the index table changes
     * shape (allocation/eviction, reset, restore). Derived state:
     * never serialized, never audited as primary.
     */
    std::vector<std::uint32_t> zoneMap_;
    unsigned zoneHashShift_ = 0;
    /** Scratch buffer reused across observe() calls. */
    std::vector<std::int64_t> deltas_;
};

} // namespace fdp

#endif // FDP_PREFETCH_GHB_PREFETCHER_HH
