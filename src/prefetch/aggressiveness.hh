/**
 * @file
 * Aggressiveness configurations (paper Table 1 and Section 5.7).
 *
 * The Dynamic Configuration Counter is a 3-bit saturating counter clamped
 * to [1, 5]; each value names an aggressiveness level that maps to a
 * (Prefetch Distance, Prefetch Degree) pair for the prefetcher in use.
 */

#ifndef FDP_PREFETCH_AGGRESSIVENESS_HH
#define FDP_PREFETCH_AGGRESSIVENESS_HH

#include <array>
#include <cstdint>

namespace fdp
{

/** The five aggressiveness levels of paper Table 1. */
enum class AggrLevel : std::uint8_t
{
    VeryConservative = 1,
    Conservative = 2,
    MiddleOfTheRoad = 3,
    Aggressive = 4,
    VeryAggressive = 5,
};

inline constexpr unsigned kMinAggrLevel = 1;
inline constexpr unsigned kMaxAggrLevel = 5;
inline constexpr unsigned kInitialAggrLevel = 3;

/** A (distance, degree) pair selected by the configuration counter. */
struct AggrConfig
{
    unsigned distance;
    unsigned degree;
};

/**
 * Stream prefetcher configurations (paper Table 1).
 * Index 0 is unused so that levels index directly.
 */
inline constexpr std::array<AggrConfig, 6> kStreamAggrTable = {{
    {0, 0},   // unused
    {4, 1},   // Very Conservative
    {8, 1},   // Conservative
    {16, 2},  // Middle-of-the-Road
    {32, 4},  // Aggressive
    {64, 4},  // Very Aggressive
}};

/**
 * GHB C/DC configurations (paper Section 5.7: distance == degree; the
 * exact degrees were lost in text extraction and are calibrated so the
 * Middle-of-the-Road GHB configuration consumes bandwidth comparable to
 * the stream prefetcher's, as the paper's comparison requires).
 */
inline constexpr std::array<AggrConfig, 6> kGhbAggrTable = {{
    {0, 0},
    {2, 2},
    {4, 4},
    {8, 8},
    {12, 12},
    {16, 16},
}};

/** PC-stride configurations (paper Section 5.8; same shape as Table 1). */
inline constexpr std::array<AggrConfig, 6> kStrideAggrTable = {{
    {0, 0},
    {4, 1},
    {8, 1},
    {16, 2},
    {32, 4},
    {64, 4},
}};

/**
 * VLDP configurations. VLDP chains delta predictions, so `degree` is the
 * prediction-chain depth per trigger; `distance` is unused (the chain
 * itself walks ahead of the demand stream).
 */
inline constexpr std::array<AggrConfig, 6> kVldpAggrTable = {{
    {0, 0},
    {0, 1},
    {0, 1},
    {0, 2},
    {0, 3},
    {0, 4},
}};

/**
 * DSPatch configurations. A trigger replays a whole spatial bit-pattern,
 * so `degree` caps how many pattern bits are issued per trigger (a 2KB
 * region holds at most 32 blocks); `distance` is unused.
 */
inline constexpr std::array<AggrConfig, 6> kDspatchAggrTable = {{
    {0, 0},
    {0, 4},
    {0, 8},
    {0, 16},
    {0, 24},
    {0, 32},
}};

/** Next-line sandbox fallback: `degree` sequential blocks per L2 miss. */
inline constexpr std::array<AggrConfig, 6> kNextLineAggrTable = {{
    {0, 0},
    {0, 1},
    {0, 1},
    {0, 2},
    {0, 3},
    {0, 4},
}};

/** Human-readable name of an aggressiveness level (1-based). */
constexpr const char *
aggrLevelName(unsigned level)
{
    switch (level) {
      case 1: return "Very Conservative";
      case 2: return "Conservative";
      case 3: return "Middle-of-the-Road";
      case 4: return "Aggressive";
      case 5: return "Very Aggressive";
      default: return "?";
    }
}

} // namespace fdp

#endif // FDP_PREFETCH_AGGRESSIVENESS_HH
