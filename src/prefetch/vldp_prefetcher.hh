/**
 * @file
 * VLDP: Variable Length Delta Prefetcher (Shevgoor et al., MICRO 2015;
 * SNIPPETS.md snippet 3).
 *
 * Per-page delta histories feed a cascade of Delta Prediction Tables
 * (DPTs): DPT level j maps the last j block-deltas seen within a page
 * to the predicted next delta, and lookups prefer the longest matching
 * history. An Offset Prediction Table (OPT) predicts a delta from the
 * first-touched block offset alone, so even the first access to a page
 * can trigger a prefetch. Predictions chain multi-degree: each
 * predicted delta extends the speculative history used to look up the
 * next one.
 *
 * Deviations from the paper's hardware tables (documented here so the
 * audit invariants are readable): tables are direct-mapped with full
 * key compare instead of set-associative; all structures live at the
 * L2 and train on every demand access the L2 sees (the L1-filtered
 *  stream), not on an L1/L2 split.
 */

#ifndef FDP_PREFETCH_VLDP_PREFETCHER_HH
#define FDP_PREFETCH_VLDP_PREFETCHER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace fdp
{

/** Longest delta history tracked per page (== number of DPT levels). */
inline constexpr unsigned kVldpHistLen = 3;
/** 4KB pages of 64-byte blocks. */
inline constexpr unsigned kVldpPageShift = 12;
inline constexpr unsigned kVldpBlocksPerPage =
    1u << (kVldpPageShift - kBlockShift);

/** Configuration knobs for the VLDP prefetcher. */
struct VldpPrefetcherParams
{
    /** Pages tracked concurrently in the Delta History Buffer. */
    unsigned dhbEntries = 16;
    /** Entries per Delta Prediction Table level. */
    unsigned dptEntries = 64;
    /** Initial aggressiveness level (1..5). */
    unsigned initialLevel = kInitialAggrLevel;
};

/** Variable-length delta-history prefetcher. */
class VldpPrefetcher : public Prefetcher
{
  public:
    explicit VldpPrefetcher(const VldpPrefetcherParams &params = {});

    void setAggressiveness(unsigned level) override;
    unsigned aggressiveness() const override { return level_; }
    const char *name() const override { return "vldp"; }
    void reset() override;

    /** Prediction-chain depth per trigger at the current level. */
    unsigned degree() const { return kVldpAggrTable[level_].degree; }

    /**
     * Invariants: aggressiveness level in range; DHB offsets and delta
     * histories within page bounds with unique page tags and LRU stamps
     * not in the future; DPT entries stored in the slot their key
     * hashes to with legal deltas and saturating counters; OPT
     * predictions are legal nonzero deltas.
     */
    void audit() const override;

    /** Serialize the level, tick, DHB, OPT, and all DPT levels. */
    void saveState(SnapWriter &w) const override;
    void loadState(SnapReader &r) override;

  private:
    friend struct AuditCorrupter;

    /** One page's recent access history. */
    struct DhbEntry
    {
        bool valid = false;
        std::uint64_t pageTag = 0;
        /** Block offset of the most recent access within the page. */
        std::uint8_t lastOffset = 0;
        /** Block offset of the page's first recorded access (OPT key). */
        std::uint8_t firstOffset = 0;
        /** Deltas, most recent first; only the first numDeltas are live. */
        std::array<std::int8_t, kVldpHistLen> deltas{};
        std::uint8_t numDeltas = 0;
        std::uint64_t lastUse = 0;
    };

    /** Delta Prediction Table entry: history key -> next delta. */
    struct DptEntry
    {
        bool valid = false;
        /** History key, most recent first; level j uses the first j. */
        std::array<std::int8_t, kVldpHistLen> key{};
        std::int8_t pred = 0;
        /** 2-bit saturating accuracy counter. */
        std::uint8_t accuracy = 0;
    };

    /** Offset Prediction Table entry: first offset -> first delta. */
    struct OptEntry
    {
        bool valid = false;
        std::int8_t pred = 0;
        /** 2-bit saturating accuracy counter. */
        std::uint8_t accuracy = 0;
    };

    void doObserve(const PrefetchObservation &obs,
                   std::vector<BlockAddr> &out,
                   std::size_t budget) override;

    /** DHB slot for @p pageTag, or dhbEntries if untracked. */
    std::size_t findPage(std::uint64_t pageTag) const;
    /** LRU victim slot (invalid slots first, then oldest lastUse). */
    std::size_t victimSlot() const;
    /** DPT slot the first @p len deltas of @p key hash to. */
    std::size_t dptIndexOf(unsigned len,
                           const std::array<std::int8_t, kVldpHistLen> &key)
        const;
    /** Train DPT level @p len with history @p key -> @p delta. */
    void trainDpt(unsigned len,
                  const std::array<std::int8_t, kVldpHistLen> &key,
                  std::int8_t delta);
    /** Longest-match DPT lookup; 0 means no confident prediction. */
    std::int8_t predictDelta(
        unsigned histLen,
        const std::array<std::int8_t, kVldpHistLen> &hist) const;

    VldpPrefetcherParams params_;
    unsigned level_;
    std::vector<DhbEntry> dhb_;
    std::array<OptEntry, kVldpBlocksPerPage> opt_{};
    /** dpt_[j] is DPT level j+1 (keys of length j+1). */
    std::array<std::vector<DptEntry>, kVldpHistLen> dpt_;
    std::uint64_t tick_ = 0;
};

} // namespace fdp

#endif // FDP_PREFETCH_VLDP_PREFETCHER_HH
