/**
 * @file
 * DSPatch: Dual Spatial Pattern prefetcher (Bera et al., MICRO 2019;
 * PAPERS.md).
 *
 * Accesses are tracked per 2KB spatial region (32 cache blocks) in a
 * small Page Buffer; when a region retires, its access bit-pattern —
 * rotated so the triggering block's offset becomes bit 0 — trains a
 * Signature Prediction Table keyed by the trigger PC. Each SPT entry
 * keeps TWO patterns: CovP, the OR-union of observed patterns
 * (coverage-biased), and AccP, the AND-intersection (accuracy-biased).
 * On the next trigger by the same PC, one of the two is replayed —
 * AccP when the DRAM bus is saturated or the FDP aggressiveness level
 * is conservative, CovP otherwise — rotated back around the new
 * trigger offset.
 *
 * Deviations from the paper's hardware: the SPT is direct-mapped with
 * a full PC tag; pattern goodness is judged with simple popcount
 * precision/recall thresholds feeding 2-bit counters rather than the
 * paper's quantized quotients; bandwidth comes from the memory
 * system's windowed bus utilization (PrefetchObservation::busUtil).
 */

#ifndef FDP_PREFETCH_DSPATCH_PREFETCHER_HH
#define FDP_PREFETCH_DSPATCH_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace fdp
{

/** 2KB spatial regions of 64-byte blocks: 32 blocks, one u32 pattern. */
inline constexpr unsigned kDspatchRegionShift = 11;
inline constexpr unsigned kDspatchBlocksPerRegion =
    1u << (kDspatchRegionShift - kBlockShift);

/** Bus utilization at or above this selects the accuracy-biased AccP. */
inline constexpr double kDspatchBwThreshold = 0.60;

/** Configuration knobs for the DSPatch prefetcher. */
struct DspatchPrefetcherParams
{
    /** Regions tracked concurrently in the Page Buffer. */
    unsigned pbEntries = 32;
    /** Entries in the Signature Prediction Table. */
    unsigned sptEntries = 256;
    /** Initial aggressiveness level (1..5). */
    unsigned initialLevel = kInitialAggrLevel;
};

/** Dual spatial bit-pattern prefetcher. */
class DspatchPrefetcher : public Prefetcher
{
  public:
    explicit DspatchPrefetcher(const DspatchPrefetcherParams &params = {});

    void setAggressiveness(unsigned level) override;
    unsigned aggressiveness() const override { return level_; }
    const char *name() const override { return "dspatch"; }
    void reset() override;

    /** Pattern bits issued per trigger at the current level. */
    unsigned degree() const { return kDspatchAggrTable[level_].degree; }

    /**
     * Invariants: aggressiveness level in range; Page Buffer entries
     * keep their trigger bit set, trigger offsets inside the region,
     * unique region tags, and LRU stamps not in the future; SPT
     * patterns are nonzero with 2-bit scores.
     */
    void audit() const override;

    /** Serialize the level, tick, Page Buffer, and SPT. */
    void saveState(SnapWriter &w) const override;
    void loadState(SnapReader &r) override;

  private:
    friend struct AuditCorrupter;

    /** One in-flight spatial region. */
    struct PbEntry
    {
        bool valid = false;
        std::uint64_t regionTag = 0;
        /** Access bit-pattern; bit i = block i of the region touched. */
        std::uint32_t pattern = 0;
        /** Block offset of the access that allocated the region. */
        std::uint8_t triggerOffset = 0;
        /** PC of the allocating access (the SPT signature). */
        Addr triggerPc = 0;
        std::uint64_t lastUse = 0;
    };

    /** Dual learned patterns for one trigger-PC signature. */
    struct SptEntry
    {
        bool valid = false;
        Addr tag = 0;
        /** Coverage-biased pattern: OR-union of retired patterns. */
        std::uint32_t covP = 0;
        /** Accuracy-biased pattern: AND-intersection of retired patterns. */
        std::uint32_t accP = 0;
        /** 2-bit goodness counters for each pattern. */
        std::uint8_t covScore = 0;
        std::uint8_t accScore = 0;
    };

    void doObserve(const PrefetchObservation &obs,
                   std::vector<BlockAddr> &out,
                   std::size_t budget) override;

    /** Fold a retiring region's pattern into its SPT signature. */
    void retireRegion(const PbEntry &e);
    /** Replay the learned pattern for a fresh trigger. */
    void predict(const SptEntry &s, const PbEntry &trigger, double busUtil,
                 std::vector<BlockAddr> &out, std::size_t budget) const;

    std::size_t sptIndexOf(Addr pc) const;

    DspatchPrefetcherParams params_;
    unsigned level_;
    std::vector<PbEntry> pb_;
    std::vector<SptEntry> spt_;
    std::uint64_t tick_ = 0;
};

} // namespace fdp

#endif // FDP_PREFETCH_DSPATCH_PREFETCHER_HH
