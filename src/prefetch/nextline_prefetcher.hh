/**
 * @file
 * Next-line prefetcher: the zoo's sandbox fallback.
 *
 * On every L2 miss it requests the next `degree` sequential cache
 * blocks. No learned state beyond the observation tick; it exists as
 * the cheapest safe candidate for the runtime manager to fall back to
 * when no pattern-based prefetcher earns its bandwidth.
 */

#ifndef FDP_PREFETCH_NEXTLINE_PREFETCHER_HH
#define FDP_PREFETCH_NEXTLINE_PREFETCHER_HH

#include <cstdint>

#include "prefetch/prefetcher.hh"

namespace fdp
{

/** Configuration knobs for the next-line prefetcher. */
struct NextLinePrefetcherParams
{
    /** Initial aggressiveness level (1..5). */
    unsigned initialLevel = kInitialAggrLevel;
};

/** Sequential next-N-blocks prefetcher. */
class NextLinePrefetcher : public Prefetcher
{
  public:
    explicit NextLinePrefetcher(const NextLinePrefetcherParams &params = {});

    void setAggressiveness(unsigned level) override;
    unsigned aggressiveness() const override { return level_; }
    const char *name() const override { return "nextline"; }
    void reset() override;

    unsigned degree() const { return kNextLineAggrTable[level_].degree; }

    /** Invariants: aggressiveness level in range. */
    void audit() const override;

    /** Serialize the level and the tick. */
    void saveState(SnapWriter &w) const override;
    void loadState(SnapReader &r) override;

  private:
    friend struct AuditCorrupter;

    void doObserve(const PrefetchObservation &obs,
                   std::vector<BlockAddr> &out,
                   std::size_t budget) override;

    NextLinePrefetcherParams params_;
    unsigned level_;
    std::uint64_t tick_ = 0;
};

} // namespace fdp

#endif // FDP_PREFETCH_NEXTLINE_PREFETCHER_HH
