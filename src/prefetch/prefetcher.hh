/**
 * @file
 * Abstract interface every hardware data prefetcher implements.
 *
 * The memory system calls observe() on every demand L2 access; the
 * prefetcher appends candidate prefetch block addresses to the output
 * vector. FDP (or a static configuration) drives setAggressiveness().
 */

#ifndef FDP_PREFETCH_PREFETCHER_HH
#define FDP_PREFETCH_PREFETCHER_HH

#include <vector>

#include "prefetch/aggressiveness.hh"
#include "sim/check.hh"
#include "sim/snapshot.hh"
#include "sim/types.hh"

namespace fdp
{

/** One demand access as seen by the L2-side prefetcher. */
struct PrefetchObservation
{
    /** Full byte address of the demand access (for stride detection). */
    Addr addr;
    /** Block address of the demand access. */
    BlockAddr block;
    /** Program counter of the memory instruction (for PC-based schemes). */
    Addr pc;
    /** True when the access missed in the L2. */
    bool miss;
    /**
     * DRAM data-bus utilization over the memory system's recent
     * measurement window, in [0, 1]. Bandwidth-adaptive prefetchers
     * (DSPatch) bias toward accuracy when the bus is saturated; all
     * other prefetchers ignore it.
     */
    double busUtil = 0.0;
};

/** Base class for the stream / GHB / stride prefetchers. */
class Prefetcher : public Auditable, public Snapshottable
{
  public:
    ~Prefetcher() override = default;

    /** "No limit" budget for observe(). */
    static constexpr std::size_t kUnlimited = ~std::size_t{0};

    /**
     * Observe one demand L2 access and append at most @p budget prefetch
     * candidates (cache-block addresses) to @p out. @p budget is the
     * free space in the Prefetch Request Queue: a hardware prefetcher
     * only generates requests the queue can accept, and retries from the
     * same point on the next trigger rather than losing coverage.
     * The memory system further filters candidates against L2 contents
     * and MSHRs.
     */
    void
    observe(const PrefetchObservation &obs, std::vector<BlockAddr> &out,
            std::size_t budget = kUnlimited)
    {
        doObserve(obs, out, budget);
    }

    /** Select the aggressiveness level (1..5, paper Table 1). */
    virtual void setAggressiveness(unsigned level) = 0;

    /** Current aggressiveness level (1..5). */
    virtual unsigned aggressiveness() const = 0;

    /** Short identifier, e.g. "stream". */
    virtual const char *name() const = 0;

    /** Drop all learned state (streams, history, strides). */
    virtual void reset() = 0;

    /** Audit failures report the prefetcher under its short name. */
    const char *auditName() const override { return name(); }

    /** Snapshot sections are likewise named after the prefetcher. */
    const char *snapName() const override { return name(); }

  protected:
    /** Implementation of observe(); see the public wrapper. */
    virtual void doObserve(const PrefetchObservation &obs,
                           std::vector<BlockAddr> &out,
                           std::size_t budget) = 0;
};

} // namespace fdp

#endif // FDP_PREFETCH_PREFETCHER_HH
