/**
 * @file
 * PC-based stride prefetcher (Baer & Chen reference prediction table,
 * as used by paper Section 5.8).
 *
 * A table indexed by the PC of the memory instruction records the last
 * address and observed stride with a 4-state confidence FSM
 * (Initial / Transient / Steady / NoPred). Steady entries issue `degree`
 * prefetches ending `distance` strides ahead of the current access.
 */

#ifndef FDP_PREFETCH_STRIDE_PREFETCHER_HH
#define FDP_PREFETCH_STRIDE_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace fdp
{

/** Configuration knobs for the PC-stride prefetcher. */
struct StridePrefetcherParams
{
    /** Entries in the reference prediction table. */
    unsigned tableSize = 256;
    /** Initial aggressiveness level (1..5). */
    unsigned initialLevel = kInitialAggrLevel;
};

/** Reference-prediction-table stride prefetcher. */
class StridePrefetcher : public Prefetcher
{
  public:
    /** Baer-Chen confidence states. */
    enum class State : std::uint8_t
    {
        Initial,
        Transient,
        Steady,
        NoPred,
    };

    explicit StridePrefetcher(const StridePrefetcherParams &params = {});

    void setAggressiveness(unsigned level) override;
    unsigned aggressiveness() const override { return level_; }
    const char *name() const override { return "pc-stride"; }
    void reset() override;

    unsigned distance() const { return kStrideAggrTable[level_].distance; }
    unsigned degree() const { return kStrideAggrTable[level_].degree; }

    /** FSM state of the entry holding @p pc, or NoPred if absent. */
    State entryState(Addr pc) const;

    /**
     * Invariants: aggressiveness level in range, every valid entry in a
     * legal FSM state, stored in the slot its tag hashes to, with an LRU
     * timestamp not in the future.
     */
    void audit() const override;

    /** Serialize the level, the tick, and the prediction table. */
    void saveState(SnapWriter &w) const override;
    void loadState(SnapReader &r) override;

  private:
    friend struct AuditCorrupter;

    void doObserve(const PrefetchObservation &obs,
                   std::vector<BlockAddr> &out,
                   std::size_t budget) override;

    struct Entry
    {
        bool valid = false;
        Addr tag = 0;
        std::int64_t lastAddr = 0;
        std::int64_t stride = 0;  // in bytes
        State state = State::Initial;
        std::uint64_t lastUse = 0;
    };

    std::size_t indexOf(Addr pc) const;

    StridePrefetcherParams params_;
    unsigned level_;
    std::vector<Entry> table_;
    std::uint64_t tick_ = 0;
};

} // namespace fdp

#endif // FDP_PREFETCH_STRIDE_PREFETCHER_HH
