#include "prefetch/dspatch_prefetcher.hh"

#include "sim/logging.hh"

namespace fdp
{

namespace
{

std::uint32_t
rotl32(std::uint32_t x, unsigned s)
{
    s &= 31;
    return s == 0 ? x : (x << s) | (x >> (32 - s));
}

std::uint32_t
rotr32(std::uint32_t x, unsigned s)
{
    s &= 31;
    return s == 0 ? x : (x >> s) | (x << (32 - s));
}

unsigned
popcount32(std::uint32_t x)
{
    unsigned n = 0;
    for (; x != 0; x &= x - 1)
        ++n;
    return n;
}

/** Saturating 2-bit counter bump. */
void
bumpScore(std::uint8_t &score, bool good)
{
    if (good) {
        if (score < 3)
            ++score;
    } else if (score > 0) {
        --score;
    }
}

} // namespace

DspatchPrefetcher::DspatchPrefetcher(const DspatchPrefetcherParams &params)
    : params_(params), level_(params.initialLevel), pb_(params.pbEntries),
      spt_(params.sptEntries)
{
    if (params_.pbEntries == 0)
        fatal("dspatch prefetcher needs a nonzero page buffer");
    if (params_.sptEntries == 0)
        fatal("dspatch prefetcher needs a nonzero signature table");
    setAggressiveness(params_.initialLevel);
}

void
DspatchPrefetcher::setAggressiveness(unsigned level)
{
    if (level < kMinAggrLevel || level > kMaxAggrLevel)
        panic("dspatch prefetcher: bad aggressiveness level %u", level);
    level_ = level;
}

void
DspatchPrefetcher::reset()
{
    for (auto &e : pb_)
        e = PbEntry{};
    for (auto &e : spt_)
        e = SptEntry{};
    tick_ = 0;
}

void
DspatchPrefetcher::saveState(SnapWriter &w) const
{
    w.beginSection(snapName());
    w.putU8(static_cast<std::uint8_t>(level_));
    w.putU64(tick_);
    w.putU32(static_cast<std::uint32_t>(pb_.size()));
    for (const PbEntry &e : pb_) {
        w.putBool(e.valid);
        w.putU64(e.regionTag);
        w.putU32(e.pattern);
        w.putU8(e.triggerOffset);
        w.putU64(e.triggerPc);
        w.putU64(e.lastUse);
    }
    w.putU32(static_cast<std::uint32_t>(spt_.size()));
    for (const SptEntry &e : spt_) {
        w.putBool(e.valid);
        w.putU64(e.tag);
        w.putU32(e.covP);
        w.putU32(e.accP);
        w.putU8(e.covScore);
        w.putU8(e.accScore);
    }
    w.endSection();
}

void
DspatchPrefetcher::loadState(SnapReader &r)
{
    r.openSection(snapName());
    const unsigned level = r.getU8();
    if (level < kMinAggrLevel || level > kMaxAggrLevel)
        fatal("snapshot: dspatch prefetcher level %u out of range", level);
    level_ = level;
    tick_ = r.getU64();
    const std::uint32_t nPb = r.getU32();
    if (nPb != pb_.size())
        fatal("snapshot: dspatch page buffer holds %zu entries, snapshot "
              "has %u",
              pb_.size(), nPb);
    for (PbEntry &e : pb_) {
        e.valid = r.getBool();
        e.regionTag = r.getU64();
        e.pattern = r.getU32();
        e.triggerOffset = r.getU8();
        e.triggerPc = r.getU64();
        e.lastUse = r.getU64();
    }
    const std::uint32_t nSpt = r.getU32();
    if (nSpt != spt_.size())
        fatal("snapshot: dspatch signature table holds %zu entries, "
              "snapshot has %u",
              spt_.size(), nSpt);
    for (SptEntry &e : spt_) {
        e.valid = r.getBool();
        e.tag = r.getU64();
        e.covP = r.getU32();
        e.accP = r.getU32();
        e.covScore = r.getU8();
        e.accScore = r.getU8();
    }
    r.closeSection();
}

std::size_t
DspatchPrefetcher::sptIndexOf(Addr pc) const
{
    const Addr x = pc >> 2;
    return (x ^ (x >> 8)) % spt_.size();
}

void
DspatchPrefetcher::retireRegion(const PbEntry &e)
{
    // Anchor the pattern at the trigger offset so the signature learns
    // shape relative to its trigger, not absolute region position.
    const std::uint32_t anchored = rotr32(e.pattern, e.triggerOffset);
    SptEntry &s = spt_[sptIndexOf(e.triggerPc)];
    if (!s.valid || s.tag != e.triggerPc) {
        s.valid = true;
        s.tag = e.triggerPc;
        s.covP = anchored;
        s.accP = anchored;
        s.covScore = 1;
        s.accScore = 1;
        return;
    }
    // CovP is judged on precision (how much of what it would have
    // prefetched was touched); a drained score re-learns from scratch
    // so a phase change cannot leave a bloated union behind.
    const unsigned covHit = popcount32(s.covP & anchored);
    bumpScore(s.covScore, 2 * covHit >= popcount32(s.covP));
    if (s.covScore == 0) {
        s.covP = anchored;
        s.covScore = 1;
    } else {
        s.covP |= anchored;
    }
    // AccP is judged on recall (how much of the touched footprint it
    // still covers); the intersection can only shrink, so an emptied
    // pattern restarts from the fresh observation.
    const unsigned accHit = popcount32(s.accP & anchored);
    bumpScore(s.accScore, 2 * accHit >= popcount32(anchored));
    s.accP &= anchored;
    if (s.accP == 0) {
        s.accP = anchored;
        s.accScore = 1;
    }
}

void
DspatchPrefetcher::predict(const SptEntry &s, const PbEntry &trigger,
                           double busUtil, std::vector<BlockAddr> &out,
                           std::size_t budget) const
{
    // Accuracy-biased pattern when bandwidth is tight or FDP has
    // throttled us down; coverage-biased otherwise. A drained score
    // disqualifies a pattern, falling back to its dual.
    bool useAcc = busUtil >= kDspatchBwThreshold || level_ <= 2;
    if (useAcc && s.accScore == 0)
        useAcc = false;
    else if (!useAcc && s.covScore == 0)
        useAcc = true;
    std::uint32_t pat =
        rotl32(useAcc ? s.accP : s.covP, trigger.triggerOffset);
    pat &= ~(1u << trigger.triggerOffset);  // the trigger block is demand
    if (pat == 0)
        return;

    const BlockAddr regionBlockBase =
        static_cast<BlockAddr>(trigger.regionTag)
        << (kDspatchRegionShift - kBlockShift);
    const unsigned deg = degree();
    std::size_t produced = 0;
    // Issue near-to-far from the trigger so a tight degree keeps the
    // most immediately useful blocks.
    for (unsigned dist = 1; dist < kDspatchBlocksPerRegion; ++dist) {
        const int lo = static_cast<int>(trigger.triggerOffset) -
                       static_cast<int>(dist);
        const int hi = static_cast<int>(trigger.triggerOffset) +
                       static_cast<int>(dist);
        for (const int off : {hi, lo}) {
            if (off < 0 || off >= static_cast<int>(kDspatchBlocksPerRegion))
                continue;
            if ((pat & (1u << static_cast<unsigned>(off))) == 0)
                continue;
            if (produced >= deg || produced >= budget)
                return;
            out.push_back(regionBlockBase + static_cast<unsigned>(off));
            ++produced;
        }
    }
}

void
DspatchPrefetcher::audit() const
{
    FDP_ASSERT(level_ >= kMinAggrLevel && level_ <= kMaxAggrLevel,
               "%s: aggressiveness level %u outside [%u, %u]", auditName(),
               level_, kMinAggrLevel, kMaxAggrLevel);
    for (std::size_t i = 0; i < pb_.size(); ++i) {
        const PbEntry &e = pb_[i];
        if (!e.valid)
            continue;
        FDP_ASSERT(e.triggerOffset < kDspatchBlocksPerRegion,
                   "%s: PB entry %zu trigger offset %u outside region",
                   auditName(), i, e.triggerOffset);
        FDP_ASSERT((e.pattern & (1u << e.triggerOffset)) != 0,
                   "%s: PB entry %zu lost its trigger bit (pattern %x, "
                   "trigger %u)",
                   auditName(), i, e.pattern, e.triggerOffset);
        FDP_ASSERT(e.lastUse <= tick_,
                   "%s: PB entry %zu last used at tick %llu, after "
                   "current tick %llu",
                   auditName(), i,
                   static_cast<unsigned long long>(e.lastUse),
                   static_cast<unsigned long long>(tick_));
        for (std::size_t k = i + 1; k < pb_.size(); ++k)
            FDP_ASSERT(!pb_[k].valid || pb_[k].regionTag != e.regionTag,
                       "%s: region %llx tracked in PB slots %zu and %zu",
                       auditName(),
                       static_cast<unsigned long long>(e.regionTag), i, k);
    }
    for (std::size_t i = 0; i < spt_.size(); ++i) {
        const SptEntry &e = spt_[i];
        if (!e.valid)
            continue;
        FDP_ASSERT(sptIndexOf(e.tag) == i,
                   "%s: SPT entry for PC %llx stored in slot %zu but "
                   "hashes to %zu",
                   auditName(), static_cast<unsigned long long>(e.tag), i,
                   sptIndexOf(e.tag));
        FDP_ASSERT(e.covP != 0 && e.accP != 0,
                   "%s: SPT entry %zu holds an empty pattern", auditName(),
                   i);
        FDP_ASSERT(e.covScore <= 3 && e.accScore <= 3,
                   "%s: SPT entry %zu scores (%u, %u) overflow 2 bits",
                   auditName(), i, e.covScore, e.accScore);
    }
}

void
DspatchPrefetcher::doObserve(const PrefetchObservation &obs,
                             std::vector<BlockAddr> &out,
                             std::size_t budget)
{
    ++tick_;
    const std::uint64_t region = obs.addr >> kDspatchRegionShift;
    const auto offset = static_cast<std::uint8_t>(
        (obs.addr >> kBlockShift) & (kDspatchBlocksPerRegion - 1));

    // Subsequent access to a tracked region: just record the footprint.
    for (PbEntry &e : pb_) {
        if (e.valid && e.regionTag == region) {
            e.pattern |= 1u << offset;
            e.lastUse = tick_;
            return;
        }
    }

    // Region trigger: retire the LRU victim's learned footprint, then
    // track the new region and replay this PC's learned pattern.
    std::size_t victim = 0;
    for (std::size_t i = 0; i < pb_.size(); ++i) {
        if (!pb_[i].valid) {
            victim = i;
            break;
        }
        if (pb_[i].lastUse < pb_[victim].lastUse)
            victim = i;
    }
    if (pb_[victim].valid)
        retireRegion(pb_[victim]);
    PbEntry &e = pb_[victim];
    e = PbEntry{};
    e.valid = true;
    e.regionTag = region;
    e.pattern = 1u << offset;
    e.triggerOffset = offset;
    e.triggerPc = obs.pc;
    e.lastUse = tick_;

    const SptEntry &s = spt_[sptIndexOf(obs.pc)];
    if (s.valid && s.tag == obs.pc)
        predict(s, e, obs.busUtil, out, budget);
}

} // namespace fdp
