#include "prefetch/nextline_prefetcher.hh"

#include "sim/logging.hh"

namespace fdp
{

NextLinePrefetcher::NextLinePrefetcher(const NextLinePrefetcherParams &params)
    : params_(params), level_(params.initialLevel)
{
    setAggressiveness(params_.initialLevel);
}

void
NextLinePrefetcher::setAggressiveness(unsigned level)
{
    if (level < kMinAggrLevel || level > kMaxAggrLevel)
        panic("nextline prefetcher: bad aggressiveness level %u", level);
    level_ = level;
}

void
NextLinePrefetcher::reset()
{
    tick_ = 0;
}

void
NextLinePrefetcher::audit() const
{
    FDP_ASSERT(level_ >= kMinAggrLevel && level_ <= kMaxAggrLevel,
               "%s: aggressiveness level %u outside [%u, %u]", auditName(),
               level_, kMinAggrLevel, kMaxAggrLevel);
}

void
NextLinePrefetcher::saveState(SnapWriter &w) const
{
    w.beginSection(snapName());
    w.putU8(static_cast<std::uint8_t>(level_));
    w.putU64(tick_);
    w.endSection();
}

void
NextLinePrefetcher::loadState(SnapReader &r)
{
    r.openSection(snapName());
    const unsigned level = r.getU8();
    if (level < kMinAggrLevel || level > kMaxAggrLevel)
        fatal("snapshot: nextline prefetcher level %u out of range", level);
    level_ = level;
    tick_ = r.getU64();
    r.closeSection();
}

void
NextLinePrefetcher::doObserve(const PrefetchObservation &obs,
                              std::vector<BlockAddr> &out,
                              std::size_t budget)
{
    ++tick_;
    if (!obs.miss)
        return;
    const unsigned deg = degree();
    std::size_t produced = 0;
    for (unsigned j = 1; j <= deg; ++j) {
        if (produced >= budget)
            break;
        out.push_back(obs.block + j);
        ++produced;
    }
}

} // namespace fdp
