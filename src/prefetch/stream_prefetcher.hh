/**
 * @file
 * IBM POWER4-style stream prefetcher (paper Section 2.1).
 *
 * Tracks up to 64 access streams. Each tracking entry walks the
 * Invalid -> Allocated -> Training -> Monitor-and-Request state machine:
 * a demand L2 miss allocates an entry, the next two misses within +/-16
 * blocks train the direction, and once trained the entry monitors the
 * region between its start pointer (A) and end pointer (P). A demand L2
 * access inside the monitored region requests blocks [P+1 .. P+N] and
 * slides the region forward, keeping P at most Prefetch Distance ahead.
 */

#ifndef FDP_PREFETCH_STREAM_PREFETCHER_HH
#define FDP_PREFETCH_STREAM_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace fdp
{

/** Configuration knobs for the stream prefetcher. */
struct StreamPrefetcherParams
{
    /** Number of stream tracking entries. */
    unsigned numStreams = 64;
    /** Training window around the first miss, in blocks. */
    unsigned trainWindow = 16;
    /**
     * Aggregate requested-but-unconsumed window the engine paces itself
     * to (the Prefetch Request Queue plus headroom). Each monitoring
     * stream gets an equal share, so a few early streams cannot
     * monopolize the queue and starve later ones.
     */
    unsigned queueShareBudget = 192;
    /**
     * A monitoring entry counts toward the pacing share only if it
     * triggered within this many observations: stale entries from
     * ended streams must not throttle live ones.
     */
    std::uint64_t activityWindow = 1024;
    /** Initial aggressiveness level (1..5). */
    unsigned initialLevel = kInitialAggrLevel;
};

/** Multi-stream sequential prefetcher with 4-state tracking entries. */
class StreamPrefetcher : public Prefetcher
{
  public:
    /** Per-entry state machine states (paper Section 2.1). */
    enum class State : std::uint8_t
    {
        Invalid,
        Allocated,
        Training,
        MonitorRequest,
    };

    explicit StreamPrefetcher(const StreamPrefetcherParams &params = {});

    void setAggressiveness(unsigned level) override;
    unsigned aggressiveness() const override { return level_; }
    const char *name() const override { return "stream"; }
    void reset() override;

    /** Current prefetch distance (blocks P may run ahead of A). */
    unsigned distance() const { return kStreamAggrTable[level_].distance; }

    /** Distance after queue-share pacing across active streams. */
    unsigned effectiveDistance() const;

    /** Current prefetch degree (blocks requested per trigger). */
    unsigned degree() const { return kStreamAggrTable[level_].degree; }

    /** Number of entries currently in the Monitor-and-Request state. */
    unsigned numMonitoringStreams() const;

    /** Monitoring entries that triggered within the activity window. */
    unsigned numActiveStreams() const;

    /** State of tracking entry @p idx (for tests). */
    State entryState(unsigned idx) const { return entries_.at(idx).state; }

    /**
     * Invariants: aggressiveness level in range, every entry in a legal
     * state, trained entries with a +/-1 direction, monitored regions
     * oriented along their direction, and LRU timestamps not in the
     * future.
     */
    void audit() const override;

    /** Serialize the level, the tick, and every tracking entry. */
    void saveState(SnapWriter &w) const override;
    void loadState(SnapReader &r) override;

  private:
    friend struct AuditCorrupter;

    struct Entry
    {
        State state = State::Invalid;
        int dir = 1;             // +1 ascending, -1 descending
        std::int64_t firstMiss = 0;
        std::int64_t lastMiss = 0;
        std::int64_t startPtr = 0;  // A
        std::int64_t endPtr = 0;    // P
        std::uint64_t lastUse = 0;  // LRU timestamp
    };

    /** Monitor-region hit test. */
    static bool inMonitorRegion(const Entry &e, std::int64_t block);

    /** Training-window hit test (anchored at the entry's first miss). */
    bool inTrainWindow(const Entry &e, std::int64_t block) const;

    void doObserve(const PrefetchObservation &obs,
                   std::vector<BlockAddr> &out,
                   std::size_t budget) override;

    /** Issue up to min(degree, budget) prefetches past P and slide the
     *  region by the number actually issued. */
    void issueFromEntry(Entry &e, std::vector<BlockAddr> &out,
                        std::size_t budget);

    /**
     * (Re)start the monitored region at @p anchor and request the
     * start-up window (prefetch distance, bounded by @p budget). Used
     * when training completes and when the demand stream overtakes a
     * region whose ramp was starved of queue budget.
     */
    void startRamp(Entry &e, std::int64_t region_start,
                   std::int64_t ramp_from, std::vector<BlockAddr> &out,
                   std::size_t budget);

    /** Pick a victim entry: any Invalid entry, else the LRU one. */
    unsigned allocateEntry();

    /** Add/remove entry @p idx in the sorted monitor-index list. */
    void addMonitor(unsigned idx);
    void removeMonitor(unsigned idx);

    StreamPrefetcherParams params_;
    unsigned level_;
    std::vector<Entry> entries_;
    std::uint64_t tick_ = 0;
    /**
     * Indices of the entries currently in Monitor-and-Request state,
     * kept sorted so iterating it visits entries in the same order a
     * full table scan would. Derived state: maintained at every FSM
     * transition, rebuilt by loadState(), never serialized; audit()
     * recounts it against the table.
     */
    std::vector<std::uint32_t> monitorIdx_;
};

} // namespace fdp

#endif // FDP_PREFETCH_STREAM_PREFETCHER_HH
