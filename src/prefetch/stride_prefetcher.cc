#include "prefetch/stride_prefetcher.hh"

#include "sim/logging.hh"

namespace fdp
{

StridePrefetcher::StridePrefetcher(const StridePrefetcherParams &params)
    : params_(params), level_(params.initialLevel), table_(params.tableSize)
{
    if (params_.tableSize == 0)
        fatal("stride prefetcher needs a nonzero table size");
    setAggressiveness(params_.initialLevel);
}

void
StridePrefetcher::setAggressiveness(unsigned level)
{
    if (level < kMinAggrLevel || level > kMaxAggrLevel)
        panic("stride prefetcher: bad aggressiveness level %u", level);
    level_ = level;
}

void
StridePrefetcher::reset()
{
    for (auto &e : table_)
        e = Entry{};
    tick_ = 0;
}

void
StridePrefetcher::saveState(SnapWriter &w) const
{
    w.beginSection(snapName());
    w.putU8(static_cast<std::uint8_t>(level_));
    w.putU64(tick_);
    w.putU32(static_cast<std::uint32_t>(table_.size()));
    for (const Entry &e : table_) {
        w.putBool(e.valid);
        w.putU64(e.tag);
        w.putI64(e.lastAddr);
        w.putI64(e.stride);
        w.putU8(static_cast<std::uint8_t>(e.state));
        w.putU64(e.lastUse);
    }
    w.endSection();
}

void
StridePrefetcher::loadState(SnapReader &r)
{
    r.openSection(snapName());
    const unsigned level = r.getU8();
    if (level < kMinAggrLevel || level > kMaxAggrLevel)
        fatal("snapshot: stride prefetcher level %u out of range", level);
    level_ = level;
    tick_ = r.getU64();
    const std::uint32_t n = r.getU32();
    if (n != table_.size())
        fatal("snapshot: stride table holds %zu entries, snapshot has %u",
              table_.size(), n);
    for (Entry &e : table_) {
        e.valid = r.getBool();
        e.tag = r.getU64();
        e.lastAddr = r.getI64();
        e.stride = r.getI64();
        e.state = static_cast<State>(r.getU8());
        e.lastUse = r.getU64();
    }
    r.closeSection();
}

std::size_t
StridePrefetcher::indexOf(Addr pc) const
{
    // Memory instructions are word-aligned; drop the low bits and fold
    // the upper bits in so distinct PCs spread across the table.
    const Addr x = pc >> 2;
    return (x ^ (x >> 8)) % table_.size();
}

StridePrefetcher::State
StridePrefetcher::entryState(Addr pc) const
{
    const Entry &e = table_[indexOf(pc)];
    return (e.valid && e.tag == pc) ? e.state : State::NoPred;
}

void
StridePrefetcher::audit() const
{
    FDP_ASSERT(level_ >= kMinAggrLevel && level_ <= kMaxAggrLevel,
               "%s: aggressiveness level %u outside [%u, %u]", auditName(),
               level_, kMinAggrLevel, kMaxAggrLevel);
    for (std::size_t i = 0; i < table_.size(); ++i) {
        const Entry &e = table_[i];
        if (!e.valid)
            continue;
        FDP_ASSERT(static_cast<std::uint8_t>(e.state) <=
                       static_cast<std::uint8_t>(State::NoPred),
                   "%s: entry %zu in illegal FSM state %u", auditName(), i,
                   static_cast<unsigned>(e.state));
        FDP_ASSERT(indexOf(e.tag) == i,
                   "%s: entry for PC %llx stored in slot %zu but hashes "
                   "to %zu",
                   auditName(), static_cast<unsigned long long>(e.tag), i,
                   indexOf(e.tag));
        FDP_ASSERT(e.lastUse <= tick_,
                   "%s: entry %zu last used at tick %llu, after current "
                   "tick %llu",
                   auditName(), i,
                   static_cast<unsigned long long>(e.lastUse),
                   static_cast<unsigned long long>(tick_));
    }
}

void
StridePrefetcher::doObserve(const PrefetchObservation &obs,
                            std::vector<BlockAddr> &out,
                            std::size_t budget)
{
    ++tick_;
    Entry &e = table_[indexOf(obs.pc)];
    const auto addr = static_cast<std::int64_t>(obs.addr);

    if (!e.valid || e.tag != obs.pc) {
        e = Entry{};
        e.valid = true;
        e.tag = obs.pc;
        e.lastAddr = addr;
        e.state = State::Initial;
        e.lastUse = tick_;
        return;
    }

    e.lastUse = tick_;
    const std::int64_t delta = addr - e.lastAddr;
    e.lastAddr = addr;
    const bool correct = delta == e.stride && delta != 0;

    // Baer-Chen 4-state confidence FSM. A Steady-state mispredict keeps
    // the learned stride (the stream may resume after an interruption);
    // every other incorrect transition re-learns the stride.
    switch (e.state) {
      case State::Initial:
        e.state = correct ? State::Steady : State::Transient;
        if (!correct)
            e.stride = delta;
        break;
      case State::Transient:
        e.state = correct ? State::Steady : State::NoPred;
        if (!correct)
            e.stride = delta;
        break;
      case State::Steady:
        if (!correct)
            e.state = State::Initial;
        break;
      case State::NoPred:
        e.state = correct ? State::Transient : State::NoPred;
        if (!correct)
            e.stride = delta;
        break;
    }

    if (e.state != State::Steady || e.stride == 0)
        return;

    // Issue `degree` prefetches ending `distance` strides ahead. The
    // window slides by one stride per access, so every future address in
    // the stream is eventually requested exactly once (modulo dedup).
    const std::int64_t dist = distance();
    const std::int64_t deg = degree();
    BlockAddr last_block = obs.block;
    std::size_t produced = 0;
    for (std::int64_t j = dist - deg + 1; j <= dist; ++j) {
        if (produced >= budget)
            break;
        const std::int64_t pf = addr + e.stride * j;
        if (pf < 0)
            continue;
        const BlockAddr pf_block = blockAddr(static_cast<Addr>(pf));
        if (pf_block == last_block)
            continue;  // sub-block strides: avoid duplicate block requests
        last_block = pf_block;
        out.push_back(pf_block);
        ++produced;
    }
}

} // namespace fdp
