#include "prefetch/ghb_prefetcher.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace fdp
{

namespace
{
/** Empty zone-map slot sentinel. */
constexpr std::uint32_t kNoZoneSlot = ~std::uint32_t{0};
} // namespace

GhbPrefetcher::GhbPrefetcher(const GhbPrefetcherParams &params)
    : params_(params), level_(params.initialLevel), ghb_(params.ghbSize),
      index_(params.indexSize)
{
    if (params_.ghbSize == 0 || params_.indexSize == 0)
        fatal("GHB prefetcher needs nonzero buffer and index sizes");
    setAggressiveness(params_.initialLevel);
    deltas_.reserve(params_.maxHistory);

    if ((params_.ghbSize & (params_.ghbSize - 1)) == 0)
        slotMask_ = params_.ghbSize - 1;

    // Zone map sized to the next power of two >= 2x the index table, so
    // the load factor stays at or below one half.
    std::size_t cap = 8;
    unsigned bits = 3;
    while (cap < 2 * static_cast<std::size_t>(params_.indexSize)) {
        cap *= 2;
        ++bits;
    }
    zoneMap_.assign(cap, kNoZoneSlot);
    zoneHashShift_ = 64 - bits;
}

void
GhbPrefetcher::rebuildZoneMap()
{
    std::fill(zoneMap_.begin(), zoneMap_.end(), kNoZoneSlot);
    const std::size_t mask = zoneMap_.size() - 1;
    for (std::size_t i = 0; i < index_.size(); ++i) {
        if (!index_[i].valid)
            continue;
        std::size_t h = hashZone(index_[i].zone);
        while (zoneMap_[h] != kNoZoneSlot)
            h = (h + 1) & mask;
        zoneMap_[h] = static_cast<std::uint32_t>(i);
    }
}

void
GhbPrefetcher::setAggressiveness(unsigned level)
{
    if (level < kMinAggrLevel || level > kMaxAggrLevel)
        panic("GHB prefetcher: bad aggressiveness level %u", level);
    level_ = level;
}

void
GhbPrefetcher::reset()
{
    for (auto &e : ghb_)
        e = GhbEntry{};
    for (auto &e : index_)
        e = IndexEntry{};
    nextSeq_ = 1;
    tick_ = 0;
    std::fill(zoneMap_.begin(), zoneMap_.end(), kNoZoneSlot);
}

bool
GhbPrefetcher::seqLive(std::uint64_t seq) const
{
    // Sequence numbers start at 1; slot seq % ghbSize is overwritten once
    // ghbSize newer entries have been pushed.
    return seq != 0 && seq < nextSeq_ && nextSeq_ - seq <= ghb_.size();
}

GhbPrefetcher::IndexEntry *
GhbPrefetcher::findZone(std::uint64_t zone)
{
    const std::size_t mask = zoneMap_.size() - 1;
    for (std::size_t h = hashZone(zone);; h = (h + 1) & mask) {
        const std::uint32_t slot = zoneMap_[h];
        if (slot == kNoZoneSlot)
            return nullptr;
        IndexEntry &e = index_[slot];
        if (e.valid && e.zone == zone)
            return &e;
    }
}

GhbPrefetcher::IndexEntry &
GhbPrefetcher::allocateZone(std::uint64_t zone)
{
    IndexEntry *victim = &index_.front();
    for (auto &e : index_) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    *victim = IndexEntry{};
    victim->valid = true;
    victim->zone = zone;
    // The allocation scan is already O(indexSize), so rebuilding the
    // lookup map here keeps the same complexity while the per-miss
    // findZone stays O(1).
    rebuildZoneMap();
    return *victim;
}

void
GhbPrefetcher::audit() const
{
    FDP_ASSERT(level_ >= kMinAggrLevel && level_ <= kMaxAggrLevel,
               "%s: aggressiveness level %u outside [%u, %u]", auditName(),
               level_, kMinAggrLevel, kMaxAggrLevel);
    for (std::size_t i = 0; i < index_.size(); ++i) {
        const IndexEntry &e = index_[i];
        if (!e.valid)
            continue;
        FDP_ASSERT(e.lastUse <= tick_,
                   "%s: index entry %zu last used at tick %llu, after "
                   "current tick %llu",
                   auditName(), i,
                   static_cast<unsigned long long>(e.lastUse),
                   static_cast<unsigned long long>(tick_));
        FDP_ASSERT(e.headSeq < nextSeq_,
                   "%s: index entry %zu heads at future sequence %llu",
                   auditName(), i,
                   static_cast<unsigned long long>(e.headSeq));
        for (std::size_t j = 0; j < i; ++j)
            FDP_ASSERT(!index_[j].valid || index_[j].zone != e.zone,
                       "%s: zone %llu indexed by entries %zu and %zu",
                       auditName(),
                       static_cast<unsigned long long>(e.zone), j, i);
    }

    // Link-pointer acyclicity: every live entry's predecessor link must
    // point strictly backwards, so any walk monotonically decreases the
    // sequence number and terminates.
    const std::uint64_t lo =
        nextSeq_ > ghb_.size() ? nextSeq_ - ghb_.size() : 1;
    for (std::uint64_t seq = lo; seq < nextSeq_; ++seq) {
        const GhbEntry &e = ghb_[slotOf(seq)];
        if (e.hasPrev) {
            FDP_ASSERT(e.prevSeq != 0 && e.prevSeq < seq,
                       "%s: GHB entry %llu links forward to %llu (cycle)",
                       auditName(), static_cast<unsigned long long>(seq),
                       static_cast<unsigned long long>(e.prevSeq));
            if (seqLive(e.prevSeq))
                FDP_ASSERT(e.delta ==
                               e.block - ghb_[slotOf(e.prevSeq)].block,
                           "%s: GHB entry %llu caches delta %lld, buffer "
                           "says %lld",
                           auditName(),
                           static_cast<unsigned long long>(seq),
                           static_cast<long long>(e.delta),
                           static_cast<long long>(
                               e.block - ghb_[slotOf(e.prevSeq)].block));
        }
    }

    // Zone-map consistency: the derived lookup structure holds exactly
    // the valid index entries, each findable from its hash position.
    std::size_t mapped = 0;
    const std::size_t mask = zoneMap_.size() - 1;
    for (const std::uint32_t slot : zoneMap_) {
        if (slot == kNoZoneSlot)
            continue;
        ++mapped;
        FDP_ASSERT(slot < index_.size() && index_[slot].valid,
                   "%s: zone map points at dead index slot %u",
                   auditName(), slot);
    }
    std::size_t valid = 0;
    for (std::size_t i = 0; i < index_.size(); ++i) {
        if (!index_[i].valid)
            continue;
        ++valid;
        bool found = false;
        for (std::size_t h = hashZone(index_[i].zone);
             zoneMap_[h] != kNoZoneSlot; h = (h + 1) & mask) {
            if (zoneMap_[h] == i) {
                found = true;
                break;
            }
        }
        FDP_ASSERT(found, "%s: index entry %zu (zone %llu) missing from "
                   "the zone map", auditName(), i,
                   static_cast<unsigned long long>(index_[i].zone));
    }
    FDP_ASSERT(mapped == valid,
               "%s: zone map holds %zu slots for %zu valid entries",
               auditName(), mapped, valid);
}

void
GhbPrefetcher::saveState(SnapWriter &w) const
{
    w.beginSection(snapName());
    w.putU8(static_cast<std::uint8_t>(level_));
    w.putU64(nextSeq_);
    w.putU64(tick_);
    w.putU32(static_cast<std::uint32_t>(ghb_.size()));
    for (const GhbEntry &e : ghb_) {
        w.putI64(e.block);
        w.putU64(e.prevSeq);
        w.putBool(e.hasPrev);
    }
    w.putU32(static_cast<std::uint32_t>(index_.size()));
    for (const IndexEntry &e : index_) {
        w.putBool(e.valid);
        w.putU64(e.zone);
        w.putU64(e.headSeq);
        w.putU64(e.lastUse);
    }
    w.endSection();
}

void
GhbPrefetcher::loadState(SnapReader &r)
{
    r.openSection(snapName());
    const unsigned level = r.getU8();
    if (level < kMinAggrLevel || level > kMaxAggrLevel)
        fatal("snapshot: GHB prefetcher level %u out of range", level);
    level_ = level;
    nextSeq_ = r.getU64();
    tick_ = r.getU64();
    const std::uint32_t ghb_size = r.getU32();
    if (ghb_size != ghb_.size())
        fatal("snapshot: GHB holds %zu entries, snapshot has %u",
              ghb_.size(), ghb_size);
    for (GhbEntry &e : ghb_) {
        e.block = r.getI64();
        e.prevSeq = r.getU64();
        e.hasPrev = r.getBool();
    }
    const std::uint32_t index_size = r.getU32();
    if (index_size != index_.size())
        fatal("snapshot: GHB index holds %zu entries, snapshot has %u",
              index_.size(), index_size);
    for (IndexEntry &e : index_) {
        e.valid = r.getBool();
        e.zone = r.getU64();
        e.headSeq = r.getU64();
        e.lastUse = r.getU64();
    }
    r.closeSection();

    // Rebuild the derived state the snapshot does not carry: the cached
    // per-entry deltas (only meaningful while the predecessor is live)
    // and the zone lookup map.
    const std::uint64_t lo =
        nextSeq_ > ghb_.size() ? nextSeq_ - ghb_.size() : 1;
    for (std::uint64_t seq = lo; seq < nextSeq_; ++seq) {
        GhbEntry &e = ghb_[slotOf(seq)];
        e.delta = e.hasPrev && seqLive(e.prevSeq)
                      ? e.block - ghb_[slotOf(e.prevSeq)].block
                      : 0;
    }
    rebuildZoneMap();
}

void
GhbPrefetcher::doObserve(const PrefetchObservation &obs,
                         std::vector<BlockAddr> &out, std::size_t budget)
{
    if (!obs.miss)
        return;  // the C/DC prefetcher trains on the L2 miss stream

    ++tick_;
    const auto block = static_cast<std::int64_t>(obs.block);
    const std::uint64_t zone = obs.block >> params_.czoneShift;

    IndexEntry *idx = findZone(zone);
    if (!idx)
        idx = &allocateZone(zone);
    idx->lastUse = tick_;

    // Push this miss into the GHB, linking it to the zone's previous miss.
    const std::uint64_t seq = nextSeq_++;
    GhbEntry &slot = ghb_[slotOf(seq)];
    slot.block = block;
    slot.hasPrev = seqLive(idx->headSeq);
    slot.prevSeq = idx->headSeq;
    slot.delta = slot.hasPrev ? block - ghb_[slotOf(idx->headSeq)].block
                              : 0;
    idx->headSeq = seq;

    // Walk the zone's live link chain, collecting the cached deltas
    // newest-first. Entries are immutable until overwritten, so each
    // cached delta equals the difference of the two (still live) blocks
    // it was computed from -- no need to materialize the address
    // history itself.
    deltas_.clear();
    std::uint64_t cur = seq;
    std::size_t depth = 1;  // addresses visited (the new miss counts)
    for (;;) {
        const GhbEntry &e = ghb_[slotOf(cur)];
        if (depth >= params_.maxHistory || !e.hasPrev)
            break;
        if (!seqLive(e.prevSeq))
            break;
        deltas_.push_back(e.delta);
        cur = e.prevSeq;
        ++depth;
    }
    if (depth < 4)
        return;  // need at least 3 deltas to correlate a pair

    // Chronological order: deltas_[i] = addr[i+1] - addr[i].
    std::reverse(deltas_.begin(), deltas_.end());

    const std::size_t n = deltas_.size();
    const std::int64_t key1 = deltas_[n - 2];
    const std::int64_t key2 = deltas_[n - 1];

    // Find the most recent earlier occurrence of the (key1, key2) pair.
    std::size_t match = n;  // sentinel: no match
    for (std::size_t k = n - 2; k-- > 0;) {
        if (deltas_[k] == key1 && deltas_[k + 1] == key2) {
            match = k + 1;  // index of the second delta of the pair
            break;
        }
    }
    if (match == n)
        return;

    // Replay the deltas that followed the matched pair, cycling through
    // them until `degree` prefetch addresses have been produced.
    const unsigned deg = static_cast<unsigned>(
        std::min<std::size_t>(degree(), budget));
    const std::size_t replay_begin = match + 1;
    const std::size_t replay_len = n - replay_begin;
    if (replay_len == 0)
        return;

    std::int64_t addr = block;
    for (unsigned i = 0; i < deg; ++i) {
        addr += deltas_[replay_begin + (i % replay_len)];
        if (addr < 0)
            break;
        out.push_back(static_cast<BlockAddr>(addr));
    }
}

} // namespace fdp
