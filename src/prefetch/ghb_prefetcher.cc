#include "prefetch/ghb_prefetcher.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace fdp
{

GhbPrefetcher::GhbPrefetcher(const GhbPrefetcherParams &params)
    : params_(params), level_(params.initialLevel), ghb_(params.ghbSize),
      index_(params.indexSize)
{
    if (params_.ghbSize == 0 || params_.indexSize == 0)
        fatal("GHB prefetcher needs nonzero buffer and index sizes");
    setAggressiveness(params_.initialLevel);
    history_.reserve(params_.maxHistory);
    deltas_.reserve(params_.maxHistory);
}

void
GhbPrefetcher::setAggressiveness(unsigned level)
{
    if (level < kMinAggrLevel || level > kMaxAggrLevel)
        panic("GHB prefetcher: bad aggressiveness level %u", level);
    level_ = level;
}

void
GhbPrefetcher::reset()
{
    for (auto &e : ghb_)
        e = GhbEntry{};
    for (auto &e : index_)
        e = IndexEntry{};
    nextSeq_ = 1;
    tick_ = 0;
}

bool
GhbPrefetcher::seqLive(std::uint64_t seq) const
{
    // Sequence numbers start at 1; slot seq % ghbSize is overwritten once
    // ghbSize newer entries have been pushed.
    return seq != 0 && seq < nextSeq_ && nextSeq_ - seq <= ghb_.size();
}

GhbPrefetcher::IndexEntry *
GhbPrefetcher::findZone(std::uint64_t zone)
{
    for (auto &e : index_)
        if (e.valid && e.zone == zone)
            return &e;
    return nullptr;
}

GhbPrefetcher::IndexEntry &
GhbPrefetcher::allocateZone(std::uint64_t zone)
{
    IndexEntry *victim = &index_.front();
    for (auto &e : index_) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    *victim = IndexEntry{};
    victim->valid = true;
    victim->zone = zone;
    return *victim;
}

void
GhbPrefetcher::audit() const
{
    FDP_ASSERT(level_ >= kMinAggrLevel && level_ <= kMaxAggrLevel,
               "%s: aggressiveness level %u outside [%u, %u]", auditName(),
               level_, kMinAggrLevel, kMaxAggrLevel);
    for (std::size_t i = 0; i < index_.size(); ++i) {
        const IndexEntry &e = index_[i];
        if (!e.valid)
            continue;
        FDP_ASSERT(e.lastUse <= tick_,
                   "%s: index entry %zu last used at tick %llu, after "
                   "current tick %llu",
                   auditName(), i,
                   static_cast<unsigned long long>(e.lastUse),
                   static_cast<unsigned long long>(tick_));
        FDP_ASSERT(e.headSeq < nextSeq_,
                   "%s: index entry %zu heads at future sequence %llu",
                   auditName(), i,
                   static_cast<unsigned long long>(e.headSeq));
        for (std::size_t j = 0; j < i; ++j)
            FDP_ASSERT(!index_[j].valid || index_[j].zone != e.zone,
                       "%s: zone %llu indexed by entries %zu and %zu",
                       auditName(),
                       static_cast<unsigned long long>(e.zone), j, i);
    }

    // Link-pointer acyclicity: every live entry's predecessor link must
    // point strictly backwards, so any walk monotonically decreases the
    // sequence number and terminates.
    const std::uint64_t lo =
        nextSeq_ > ghb_.size() ? nextSeq_ - ghb_.size() : 1;
    for (std::uint64_t seq = lo; seq < nextSeq_; ++seq) {
        const GhbEntry &e = ghb_[seq % ghb_.size()];
        if (e.hasPrev)
            FDP_ASSERT(e.prevSeq != 0 && e.prevSeq < seq,
                       "%s: GHB entry %llu links forward to %llu (cycle)",
                       auditName(), static_cast<unsigned long long>(seq),
                       static_cast<unsigned long long>(e.prevSeq));
    }
}

void
GhbPrefetcher::doObserve(const PrefetchObservation &obs,
                         std::vector<BlockAddr> &out, std::size_t budget)
{
    if (!obs.miss)
        return;  // the C/DC prefetcher trains on the L2 miss stream

    ++tick_;
    const auto block = static_cast<std::int64_t>(obs.block);
    const std::uint64_t zone = obs.block >> params_.czoneShift;

    IndexEntry *idx = findZone(zone);
    if (!idx)
        idx = &allocateZone(zone);
    idx->lastUse = tick_;

    // Push this miss into the GHB, linking it to the zone's previous miss.
    const std::uint64_t seq = nextSeq_++;
    GhbEntry &slot = ghb_[seq % ghb_.size()];
    slot.block = block;
    slot.hasPrev = seqLive(idx->headSeq);
    slot.prevSeq = idx->headSeq;
    idx->headSeq = seq;

    // Reconstruct the zone's recent miss history (most recent first).
    history_.clear();
    std::uint64_t cur = seq;
    while (seqLive(cur) || cur == seq) {
        const GhbEntry &e = ghb_[cur % ghb_.size()];
        history_.push_back(e.block);
        if (history_.size() >= params_.maxHistory || !e.hasPrev)
            break;
        if (!seqLive(e.prevSeq))
            break;
        cur = e.prevSeq;
    }
    if (history_.size() < 4)
        return;  // need at least 3 deltas to correlate a pair

    // Chronological deltas: deltas_[i] = addr[i+1] - addr[i].
    deltas_.clear();
    for (std::size_t i = history_.size() - 1; i > 0; --i)
        deltas_.push_back(history_[i - 1] - history_[i]);

    const std::size_t n = deltas_.size();
    const std::int64_t key1 = deltas_[n - 2];
    const std::int64_t key2 = deltas_[n - 1];

    // Find the most recent earlier occurrence of the (key1, key2) pair.
    std::size_t match = n;  // sentinel: no match
    for (std::size_t k = n - 2; k-- > 0;) {
        if (deltas_[k] == key1 && deltas_[k + 1] == key2) {
            match = k + 1;  // index of the second delta of the pair
            break;
        }
    }
    if (match == n)
        return;

    // Replay the deltas that followed the matched pair, cycling through
    // them until `degree` prefetch addresses have been produced.
    const unsigned deg = static_cast<unsigned>(
        std::min<std::size_t>(degree(), budget));
    const std::size_t replay_begin = match + 1;
    const std::size_t replay_len = n - replay_begin;
    if (replay_len == 0)
        return;

    std::int64_t addr = block;
    for (unsigned i = 0; i < deg; ++i) {
        addr += deltas_[replay_begin + (i % replay_len)];
        if (addr < 0)
            break;
        out.push_back(static_cast<BlockAddr>(addr));
    }
}

} // namespace fdp
