#include "prefetch/stream_prefetcher.hh"

#include <algorithm>
#include <cstdlib>

#include "sim/logging.hh"

namespace fdp
{

StreamPrefetcher::StreamPrefetcher(const StreamPrefetcherParams &params)
    : params_(params), level_(params.initialLevel),
      entries_(params.numStreams)
{
    if (params_.numStreams == 0)
        fatal("stream prefetcher needs at least one tracking entry");
    setAggressiveness(params_.initialLevel);
}

void
StreamPrefetcher::setAggressiveness(unsigned level)
{
    if (level < kMinAggrLevel || level > kMaxAggrLevel)
        panic("stream prefetcher: bad aggressiveness level %u", level);
    level_ = level;
}

void
StreamPrefetcher::reset()
{
    for (auto &e : entries_)
        e = Entry{};
    tick_ = 0;
    monitorIdx_.clear();
}

void
StreamPrefetcher::addMonitor(unsigned idx)
{
    monitorIdx_.insert(
        std::lower_bound(monitorIdx_.begin(), monitorIdx_.end(), idx), idx);
}

void
StreamPrefetcher::removeMonitor(unsigned idx)
{
    const auto it =
        std::lower_bound(monitorIdx_.begin(), monitorIdx_.end(), idx);
    if (it != monitorIdx_.end() && *it == idx)
        monitorIdx_.erase(it);
}

bool
StreamPrefetcher::inMonitorRegion(const Entry &e, std::int64_t block)
{
    const std::int64_t lo = std::min(e.startPtr, e.endPtr);
    const std::int64_t hi = std::max(e.startPtr, e.endPtr);
    return block >= lo && block <= hi;
}

bool
StreamPrefetcher::inTrainWindow(const Entry &e, std::int64_t block) const
{
    return std::llabs(block - e.firstMiss) <=
           static_cast<std::int64_t>(params_.trainWindow);
}

unsigned
StreamPrefetcher::effectiveDistance() const
{
    const unsigned active = std::max(1u, numActiveStreams());
    const unsigned share =
        std::max(degree(), params_.queueShareBudget / active);
    return std::min(distance(), share);
}

void
StreamPrefetcher::issueFromEntry(Entry &e, std::vector<BlockAddr> &out,
                                 std::size_t budget)
{
    const std::int64_t n = std::min<std::int64_t>(
        degree(), static_cast<std::int64_t>(
                      std::min<std::size_t>(budget, kMaxAggrLevel * 64)));
    const std::int64_t dist = effectiveDistance();
    if (n == 0)
        return;

    // If the distance was lowered (FDP throttling down), pull the end
    // pointer back so new requests stay within the new distance of the
    // demand stream; already-issued blocks beyond it are simply
    // re-covered later and dropped as cache hits.
    if (std::llabs(e.endPtr - e.startPtr) > dist)
        e.endPtr = e.startPtr + e.dir * dist;

    for (std::int64_t i = 1; i <= n; ++i) {
        const std::int64_t block = e.endPtr + e.dir * i;
        if (block < 0)
            break;  // descending stream ran off the address space
        out.push_back(static_cast<BlockAddr>(block));
    }

    // Slide the monitored region: until it spans Prefetch Distance only
    // the end pointer advances; afterwards both pointers advance so that
    // P stays Prefetch Distance ahead of the demand stream.
    const std::int64_t size = std::llabs(e.endPtr - e.startPtr);
    e.endPtr += e.dir * n;
    if (size >= dist)
        e.startPtr += e.dir * n;
}

void
StreamPrefetcher::startRamp(Entry &e, std::int64_t region_start,
                            std::int64_t ramp_from,
                            std::vector<BlockAddr> &out, std::size_t budget)
{
    // The start-up window is what establishes the prefetch distance:
    // degree-per-trigger alone can never open a gap because triggers
    // arrive once per consumed block (paper footnote 5).
    const std::int64_t startup = std::min<std::int64_t>(
        effectiveDistance(),
        static_cast<std::int64_t>(std::min<std::size_t>(budget, 64)));
    e.startPtr = region_start;
    for (std::int64_t i = 1; i <= startup; ++i) {
        const std::int64_t pf = ramp_from + e.dir * i;
        if (pf < 0)
            break;
        out.push_back(static_cast<BlockAddr>(pf));
    }
    e.endPtr = ramp_from + e.dir * startup;
}

unsigned
StreamPrefetcher::allocateEntry()
{
    unsigned victim = 0;
    for (unsigned i = 0; i < entries_.size(); ++i) {
        if (entries_[i].state == State::Invalid)
            return i;
        if (entries_[i].lastUse < entries_[victim].lastUse)
            victim = i;
    }
    return victim;
}

void
StreamPrefetcher::doObserve(const PrefetchObservation &obs,
                            std::vector<BlockAddr> &out,
                            std::size_t budget)
{
    const auto block = static_cast<std::int64_t>(obs.block);
    ++tick_;

    // Any demand access (hit or miss) inside a monitored region triggers
    // the next batch of prefetch requests. A demand *miss* that has
    // overtaken the region (the ramp was starved of queue budget, or
    // prefetches were dropped) re-anchors the stream and restarts the
    // ramp - otherwise the entry silently dies and coverage collapses.
    // Both monitor-state scans walk monitorIdx_, which lists exactly
    // the Monitor-and-Request entries in table order: same visit order
    // as a full scan, without touching the other states' entries.
    const auto w = static_cast<std::int64_t>(params_.trainWindow);
    for (const std::uint32_t i : monitorIdx_) {
        Entry &e = entries_[i];
        if (inMonitorRegion(e, block)) {
            e.lastUse = tick_;
            issueFromEntry(e, out, budget);
            return;
        }
        const std::int64_t front = e.dir > 0
                                       ? std::max(e.startPtr, e.endPtr)
                                       : std::min(e.startPtr, e.endPtr);
        const std::int64_t overshoot = (block - front) * e.dir;
        if (obs.miss && overshoot > 0 && overshoot <= w) {
            e.lastUse = tick_;
            startRamp(e, block, block, out, budget);
            return;
        }
    }

    if (!obs.miss)
        return;  // hits outside monitored regions do not train streams

    // A miss trailing just behind an existing monitored stream belongs
    // to that stream (a demand catching a still-in-flight prefetch
    // behind the start pointer): it must not allocate a duplicate
    // tracking entry, which would train a redundant stream and flood
    // the prefetch request queue with copies.
    for (const std::uint32_t i : monitorIdx_) {
        Entry &e = entries_[i];
        const std::int64_t lo = std::min(e.startPtr, e.endPtr) - w;
        const std::int64_t hi = std::max(e.startPtr, e.endPtr) + w;
        if (block >= lo && block <= hi) {
            e.lastUse = tick_;
            return;
        }
    }

    // Misses train an existing Allocated/Training entry...
    for (unsigned i = 0; i < entries_.size(); ++i) {
        Entry &e = entries_[i];
        if (e.state != State::Allocated && e.state != State::Training)
            continue;
        if (!inTrainWindow(e, block))
            continue;

        e.lastUse = tick_;
        if (block == e.firstMiss || block == e.lastMiss)
            return;  // repeated miss on an in-flight block: no information

        if (e.state == State::Allocated) {
            e.dir = block > e.firstMiss ? 1 : -1;
            e.lastMiss = block;
            e.state = State::Training;
            return;
        }

        // Training: a second delta in the same direction confirms the
        // stream; a reversal restarts training from this miss.
        const int dir2 = block > e.lastMiss ? 1 : -1;
        if (dir2 != e.dir) {
            e.dir = block > e.firstMiss ? 1 : -1;
            e.lastMiss = block;
            return;
        }

        e.state = State::MonitorRequest;
        addMonitor(i);
        // The region begins at the allocating miss (paper footnote 5).
        startRamp(e, e.firstMiss, block, out, budget);
        return;
    }

    // ...or allocate a fresh entry when no tracking entry matches.
    const unsigned vi = allocateEntry();
    Entry &e = entries_[vi];
    if (e.state == State::MonitorRequest)
        removeMonitor(vi);
    e = Entry{};
    e.state = State::Allocated;
    e.firstMiss = block;
    e.lastMiss = block;
    e.lastUse = tick_;
}

void
StreamPrefetcher::audit() const
{
    FDP_ASSERT(level_ >= kMinAggrLevel && level_ <= kMaxAggrLevel,
               "%s: aggressiveness level %u outside [%u, %u]", auditName(),
               level_, kMinAggrLevel, kMaxAggrLevel);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const Entry &e = entries_[i];
        FDP_ASSERT(static_cast<std::uint8_t>(e.state) <=
                       static_cast<std::uint8_t>(State::MonitorRequest),
                   "%s: entry %zu in illegal state %u", auditName(), i,
                   static_cast<unsigned>(e.state));
        if (e.state == State::Invalid)
            continue;
        FDP_ASSERT(e.lastUse <= tick_,
                   "%s: entry %zu last used at tick %llu, after current "
                   "tick %llu",
                   auditName(), i,
                   static_cast<unsigned long long>(e.lastUse),
                   static_cast<unsigned long long>(tick_));
        if (e.state == State::Allocated)
            continue;
        FDP_ASSERT(e.dir == 1 || e.dir == -1,
                   "%s: trained entry %zu has direction %d", auditName(),
                   i, e.dir);
        if (e.state == State::MonitorRequest)
            FDP_ASSERT((e.endPtr - e.startPtr) * e.dir >= 0,
                       "%s: entry %zu monitors [%lld, %lld] against its "
                       "direction %d",
                       auditName(), i,
                       static_cast<long long>(e.startPtr),
                       static_cast<long long>(e.endPtr), e.dir);
    }

    // Monitor-list consistency: recount the table and require the
    // derived sorted index list to name exactly the monitoring entries.
    std::size_t pos = 0;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].state != State::MonitorRequest)
            continue;
        FDP_ASSERT(pos < monitorIdx_.size() && monitorIdx_[pos] == i,
                   "%s: monitoring entry %zu missing from the monitor "
                   "list", auditName(), i);
        ++pos;
    }
    FDP_ASSERT(pos == monitorIdx_.size(),
               "%s: monitor list holds %zu indices for %zu monitoring "
               "entries", auditName(), monitorIdx_.size(), pos);
}

void
StreamPrefetcher::saveState(SnapWriter &w) const
{
    w.beginSection(snapName());
    w.putU8(static_cast<std::uint8_t>(level_));
    w.putU64(tick_);
    w.putU32(static_cast<std::uint32_t>(entries_.size()));
    for (const Entry &e : entries_) {
        w.putU8(static_cast<std::uint8_t>(e.state));
        w.putI64(e.dir);
        w.putI64(e.firstMiss);
        w.putI64(e.lastMiss);
        w.putI64(e.startPtr);
        w.putI64(e.endPtr);
        w.putU64(e.lastUse);
    }
    w.endSection();
}

void
StreamPrefetcher::loadState(SnapReader &r)
{
    r.openSection(snapName());
    const unsigned level = r.getU8();
    if (level < kMinAggrLevel || level > kMaxAggrLevel)
        fatal("snapshot: stream prefetcher level %u out of range", level);
    level_ = level;
    tick_ = r.getU64();
    const std::uint32_t n = r.getU32();
    if (n != entries_.size())
        fatal("snapshot: stream prefetcher has %zu entries, snapshot has "
              "%u", entries_.size(), n);
    for (Entry &e : entries_) {
        e.state = static_cast<State>(r.getU8());
        e.dir = static_cast<int>(r.getI64());
        e.firstMiss = r.getI64();
        e.lastMiss = r.getI64();
        e.startPtr = r.getI64();
        e.endPtr = r.getI64();
        e.lastUse = r.getU64();
    }
    r.closeSection();

    // Rebuild the derived monitor-index list the snapshot omits.
    monitorIdx_.clear();
    for (unsigned i = 0; i < entries_.size(); ++i)
        if (entries_[i].state == State::MonitorRequest)
            monitorIdx_.push_back(i);
}

unsigned
StreamPrefetcher::numActiveStreams() const
{
    unsigned n = 0;
    for (const std::uint32_t i : monitorIdx_)
        if (tick_ - entries_[i].lastUse <= params_.activityWindow)
            ++n;
    return n;
}

unsigned
StreamPrefetcher::numMonitoringStreams() const
{
    return static_cast<unsigned>(monitorIdx_.size());
}

} // namespace fdp
