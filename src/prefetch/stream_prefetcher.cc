#include "prefetch/stream_prefetcher.hh"

#include <algorithm>
#include <cstdlib>

#include "sim/logging.hh"

namespace fdp
{

StreamPrefetcher::StreamPrefetcher(const StreamPrefetcherParams &params)
    : params_(params), level_(params.initialLevel),
      entries_(params.numStreams)
{
    if (params_.numStreams == 0)
        fatal("stream prefetcher needs at least one tracking entry");
    setAggressiveness(params_.initialLevel);
}

void
StreamPrefetcher::setAggressiveness(unsigned level)
{
    if (level < kMinAggrLevel || level > kMaxAggrLevel)
        panic("stream prefetcher: bad aggressiveness level %u", level);
    level_ = level;
}

void
StreamPrefetcher::reset()
{
    for (auto &e : entries_)
        e = Entry{};
    tick_ = 0;
}

bool
StreamPrefetcher::inMonitorRegion(const Entry &e, std::int64_t block)
{
    const std::int64_t lo = std::min(e.startPtr, e.endPtr);
    const std::int64_t hi = std::max(e.startPtr, e.endPtr);
    return block >= lo && block <= hi;
}

bool
StreamPrefetcher::inTrainWindow(const Entry &e, std::int64_t block) const
{
    return std::llabs(block - e.firstMiss) <=
           static_cast<std::int64_t>(params_.trainWindow);
}

unsigned
StreamPrefetcher::effectiveDistance() const
{
    const unsigned active = std::max(1u, numActiveStreams());
    const unsigned share =
        std::max(degree(), params_.queueShareBudget / active);
    return std::min(distance(), share);
}

void
StreamPrefetcher::issueFromEntry(Entry &e, std::vector<BlockAddr> &out,
                                 std::size_t budget)
{
    const std::int64_t n = std::min<std::int64_t>(
        degree(), static_cast<std::int64_t>(
                      std::min<std::size_t>(budget, kMaxAggrLevel * 64)));
    const std::int64_t dist = effectiveDistance();
    if (n == 0)
        return;

    // If the distance was lowered (FDP throttling down), pull the end
    // pointer back so new requests stay within the new distance of the
    // demand stream; already-issued blocks beyond it are simply
    // re-covered later and dropped as cache hits.
    if (std::llabs(e.endPtr - e.startPtr) > dist)
        e.endPtr = e.startPtr + e.dir * dist;

    for (std::int64_t i = 1; i <= n; ++i) {
        const std::int64_t block = e.endPtr + e.dir * i;
        if (block < 0)
            break;  // descending stream ran off the address space
        out.push_back(static_cast<BlockAddr>(block));
    }

    // Slide the monitored region: until it spans Prefetch Distance only
    // the end pointer advances; afterwards both pointers advance so that
    // P stays Prefetch Distance ahead of the demand stream.
    const std::int64_t size = std::llabs(e.endPtr - e.startPtr);
    e.endPtr += e.dir * n;
    if (size >= dist)
        e.startPtr += e.dir * n;
}

void
StreamPrefetcher::startRamp(Entry &e, std::int64_t region_start,
                            std::int64_t ramp_from,
                            std::vector<BlockAddr> &out, std::size_t budget)
{
    // The start-up window is what establishes the prefetch distance:
    // degree-per-trigger alone can never open a gap because triggers
    // arrive once per consumed block (paper footnote 5).
    const std::int64_t startup = std::min<std::int64_t>(
        effectiveDistance(),
        static_cast<std::int64_t>(std::min<std::size_t>(budget, 64)));
    e.startPtr = region_start;
    for (std::int64_t i = 1; i <= startup; ++i) {
        const std::int64_t pf = ramp_from + e.dir * i;
        if (pf < 0)
            break;
        out.push_back(static_cast<BlockAddr>(pf));
    }
    e.endPtr = ramp_from + e.dir * startup;
}

StreamPrefetcher::Entry &
StreamPrefetcher::allocateEntry()
{
    Entry *victim = &entries_.front();
    for (auto &e : entries_) {
        if (e.state == State::Invalid)
            return e;
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    return *victim;
}

void
StreamPrefetcher::doObserve(const PrefetchObservation &obs,
                            std::vector<BlockAddr> &out,
                            std::size_t budget)
{
    const auto block = static_cast<std::int64_t>(obs.block);
    ++tick_;

    // Any demand access (hit or miss) inside a monitored region triggers
    // the next batch of prefetch requests. A demand *miss* that has
    // overtaken the region (the ramp was starved of queue budget, or
    // prefetches were dropped) re-anchors the stream and restarts the
    // ramp - otherwise the entry silently dies and coverage collapses.
    const auto w = static_cast<std::int64_t>(params_.trainWindow);
    for (auto &e : entries_) {
        if (e.state != State::MonitorRequest)
            continue;
        if (inMonitorRegion(e, block)) {
            e.lastUse = tick_;
            issueFromEntry(e, out, budget);
            return;
        }
        const std::int64_t front = e.dir > 0
                                       ? std::max(e.startPtr, e.endPtr)
                                       : std::min(e.startPtr, e.endPtr);
        const std::int64_t overshoot = (block - front) * e.dir;
        if (obs.miss && overshoot > 0 && overshoot <= w) {
            e.lastUse = tick_;
            startRamp(e, block, block, out, budget);
            return;
        }
    }

    if (!obs.miss)
        return;  // hits outside monitored regions do not train streams

    // A miss trailing just behind an existing monitored stream belongs
    // to that stream (a demand catching a still-in-flight prefetch
    // behind the start pointer): it must not allocate a duplicate
    // tracking entry, which would train a redundant stream and flood
    // the prefetch request queue with copies.
    for (auto &e : entries_) {
        if (e.state != State::MonitorRequest)
            continue;
        const std::int64_t lo = std::min(e.startPtr, e.endPtr) - w;
        const std::int64_t hi = std::max(e.startPtr, e.endPtr) + w;
        if (block >= lo && block <= hi) {
            e.lastUse = tick_;
            return;
        }
    }

    // Misses train an existing Allocated/Training entry...
    for (auto &e : entries_) {
        if (e.state != State::Allocated && e.state != State::Training)
            continue;
        if (!inTrainWindow(e, block))
            continue;

        e.lastUse = tick_;
        if (block == e.firstMiss || block == e.lastMiss)
            return;  // repeated miss on an in-flight block: no information

        if (e.state == State::Allocated) {
            e.dir = block > e.firstMiss ? 1 : -1;
            e.lastMiss = block;
            e.state = State::Training;
            return;
        }

        // Training: a second delta in the same direction confirms the
        // stream; a reversal restarts training from this miss.
        const int dir2 = block > e.lastMiss ? 1 : -1;
        if (dir2 != e.dir) {
            e.dir = block > e.firstMiss ? 1 : -1;
            e.lastMiss = block;
            return;
        }

        e.state = State::MonitorRequest;
        // The region begins at the allocating miss (paper footnote 5).
        startRamp(e, e.firstMiss, block, out, budget);
        return;
    }

    // ...or allocate a fresh entry when no tracking entry matches.
    Entry &e = allocateEntry();
    e = Entry{};
    e.state = State::Allocated;
    e.firstMiss = block;
    e.lastMiss = block;
    e.lastUse = tick_;
}

void
StreamPrefetcher::audit() const
{
    FDP_ASSERT(level_ >= kMinAggrLevel && level_ <= kMaxAggrLevel,
               "%s: aggressiveness level %u outside [%u, %u]", auditName(),
               level_, kMinAggrLevel, kMaxAggrLevel);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const Entry &e = entries_[i];
        FDP_ASSERT(static_cast<std::uint8_t>(e.state) <=
                       static_cast<std::uint8_t>(State::MonitorRequest),
                   "%s: entry %zu in illegal state %u", auditName(), i,
                   static_cast<unsigned>(e.state));
        if (e.state == State::Invalid)
            continue;
        FDP_ASSERT(e.lastUse <= tick_,
                   "%s: entry %zu last used at tick %llu, after current "
                   "tick %llu",
                   auditName(), i,
                   static_cast<unsigned long long>(e.lastUse),
                   static_cast<unsigned long long>(tick_));
        if (e.state == State::Allocated)
            continue;
        FDP_ASSERT(e.dir == 1 || e.dir == -1,
                   "%s: trained entry %zu has direction %d", auditName(),
                   i, e.dir);
        if (e.state == State::MonitorRequest)
            FDP_ASSERT((e.endPtr - e.startPtr) * e.dir >= 0,
                       "%s: entry %zu monitors [%lld, %lld] against its "
                       "direction %d",
                       auditName(), i,
                       static_cast<long long>(e.startPtr),
                       static_cast<long long>(e.endPtr), e.dir);
    }
}

unsigned
StreamPrefetcher::numActiveStreams() const
{
    return static_cast<unsigned>(std::count_if(
        entries_.begin(), entries_.end(), [this](const Entry &e) {
            return e.state == State::MonitorRequest &&
                   tick_ - e.lastUse <= params_.activityWindow;
        }));
}

unsigned
StreamPrefetcher::numMonitoringStreams() const
{
    return static_cast<unsigned>(
        std::count_if(entries_.begin(), entries_.end(), [](const Entry &e) {
            return e.state == State::MonitorRequest;
        }));
}

} // namespace fdp
