#include "prefetch/vldp_prefetcher.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace fdp
{

namespace
{

/** Saturating 2-bit counter bump. */
void
bumpAccuracy(std::uint8_t &acc, bool correct)
{
    if (correct) {
        if (acc < 3)
            ++acc;
    } else if (acc > 0) {
        --acc;
    }
}

} // namespace

VldpPrefetcher::VldpPrefetcher(const VldpPrefetcherParams &params)
    : params_(params), level_(params.initialLevel), dhb_(params.dhbEntries)
{
    if (params_.dhbEntries == 0)
        fatal("vldp prefetcher needs a nonzero delta history buffer");
    if (params_.dptEntries == 0)
        fatal("vldp prefetcher needs nonzero delta prediction tables");
    for (auto &table : dpt_)
        table.resize(params_.dptEntries);
    setAggressiveness(params_.initialLevel);
}

void
VldpPrefetcher::setAggressiveness(unsigned level)
{
    if (level < kMinAggrLevel || level > kMaxAggrLevel)
        panic("vldp prefetcher: bad aggressiveness level %u", level);
    level_ = level;
}

void
VldpPrefetcher::reset()
{
    for (auto &e : dhb_)
        e = DhbEntry{};
    opt_ = {};
    for (auto &table : dpt_)
        for (auto &e : table)
            e = DptEntry{};
    tick_ = 0;
}

void
VldpPrefetcher::saveState(SnapWriter &w) const
{
    w.beginSection(snapName());
    w.putU8(static_cast<std::uint8_t>(level_));
    w.putU64(tick_);
    w.putU32(static_cast<std::uint32_t>(dhb_.size()));
    for (const DhbEntry &e : dhb_) {
        w.putBool(e.valid);
        w.putU64(e.pageTag);
        w.putU8(e.lastOffset);
        w.putU8(e.firstOffset);
        for (std::int8_t d : e.deltas)
            w.putU8(static_cast<std::uint8_t>(d));
        w.putU8(e.numDeltas);
        w.putU64(e.lastUse);
    }
    w.putU32(kVldpBlocksPerPage);
    for (const OptEntry &e : opt_) {
        w.putBool(e.valid);
        w.putU8(static_cast<std::uint8_t>(e.pred));
        w.putU8(e.accuracy);
    }
    w.putU32(static_cast<std::uint32_t>(params_.dptEntries));
    for (const auto &table : dpt_) {
        for (const DptEntry &e : table) {
            w.putBool(e.valid);
            for (std::int8_t d : e.key)
                w.putU8(static_cast<std::uint8_t>(d));
            w.putU8(static_cast<std::uint8_t>(e.pred));
            w.putU8(e.accuracy);
        }
    }
    w.endSection();
}

void
VldpPrefetcher::loadState(SnapReader &r)
{
    r.openSection(snapName());
    const unsigned level = r.getU8();
    if (level < kMinAggrLevel || level > kMaxAggrLevel)
        fatal("snapshot: vldp prefetcher level %u out of range", level);
    level_ = level;
    tick_ = r.getU64();
    const std::uint32_t nDhb = r.getU32();
    if (nDhb != dhb_.size())
        fatal("snapshot: vldp DHB holds %zu entries, snapshot has %u",
              dhb_.size(), nDhb);
    for (DhbEntry &e : dhb_) {
        e.valid = r.getBool();
        e.pageTag = r.getU64();
        e.lastOffset = r.getU8();
        e.firstOffset = r.getU8();
        for (std::int8_t &d : e.deltas)
            d = static_cast<std::int8_t>(r.getU8());
        e.numDeltas = r.getU8();
        e.lastUse = r.getU64();
    }
    const std::uint32_t nOpt = r.getU32();
    if (nOpt != kVldpBlocksPerPage)
        fatal("snapshot: vldp OPT holds %u entries, snapshot has %u",
              kVldpBlocksPerPage, nOpt);
    for (OptEntry &e : opt_) {
        e.valid = r.getBool();
        e.pred = static_cast<std::int8_t>(r.getU8());
        e.accuracy = r.getU8();
    }
    const std::uint32_t nDpt = r.getU32();
    if (nDpt != params_.dptEntries)
        fatal("snapshot: vldp DPT holds %u entries, snapshot has %u",
              params_.dptEntries, nDpt);
    for (auto &table : dpt_) {
        for (DptEntry &e : table) {
            e.valid = r.getBool();
            for (std::int8_t &d : e.key)
                d = static_cast<std::int8_t>(r.getU8());
            e.pred = static_cast<std::int8_t>(r.getU8());
            e.accuracy = r.getU8();
        }
    }
    r.closeSection();
}

std::size_t
VldpPrefetcher::findPage(std::uint64_t pageTag) const
{
    for (std::size_t i = 0; i < dhb_.size(); ++i)
        if (dhb_[i].valid && dhb_[i].pageTag == pageTag)
            return i;
    return dhb_.size();
}

std::size_t
VldpPrefetcher::victimSlot() const
{
    std::size_t victim = 0;
    for (std::size_t i = 0; i < dhb_.size(); ++i) {
        if (!dhb_[i].valid)
            return i;
        if (dhb_[i].lastUse < dhb_[victim].lastUse)
            victim = i;
    }
    return victim;
}

std::size_t
VldpPrefetcher::dptIndexOf(
    unsigned len, const std::array<std::int8_t, kVldpHistLen> &key) const
{
    // FNV-1a over the first `len` deltas; distinct history lengths hash
    // into distinct tables, so only the live prefix participates.
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned j = 0; j < len; ++j) {
        h ^= static_cast<std::uint8_t>(key[j]);
        h *= 1099511628211ull;
    }
    return h % params_.dptEntries;
}

void
VldpPrefetcher::trainDpt(unsigned len,
                         const std::array<std::int8_t, kVldpHistLen> &key,
                         std::int8_t delta)
{
    DptEntry &e = dpt_[len - 1][dptIndexOf(len, key)];
    bool match = e.valid;
    for (unsigned j = 0; match && j < len; ++j)
        match = e.key[j] == key[j];
    if (!match) {
        // Replace-on-zero: a confident resident entry survives one miss.
        if (e.valid && e.accuracy > 0) {
            --e.accuracy;
            return;
        }
        e.valid = true;
        e.key = {};
        for (unsigned j = 0; j < len; ++j)
            e.key[j] = key[j];
        e.pred = delta;
        e.accuracy = 1;
        return;
    }
    if (e.pred == delta) {
        bumpAccuracy(e.accuracy, true);
    } else if (e.accuracy == 0) {
        e.pred = delta;
        e.accuracy = 1;
    } else {
        --e.accuracy;
    }
}

std::int8_t
VldpPrefetcher::predictDelta(
    unsigned histLen, const std::array<std::int8_t, kVldpHistLen> &hist) const
{
    for (unsigned len = std::min(histLen, kVldpHistLen); len >= 1; --len) {
        const DptEntry &e = dpt_[len - 1][dptIndexOf(len, hist)];
        if (!e.valid || e.accuracy == 0)
            continue;
        bool match = true;
        for (unsigned j = 0; match && j < len; ++j)
            match = e.key[j] == hist[j];
        if (match)
            return e.pred;
    }
    return 0;
}

void
VldpPrefetcher::audit() const
{
    FDP_ASSERT(level_ >= kMinAggrLevel && level_ <= kMaxAggrLevel,
               "%s: aggressiveness level %u outside [%u, %u]", auditName(),
               level_, kMinAggrLevel, kMaxAggrLevel);
    for (std::size_t i = 0; i < dhb_.size(); ++i) {
        const DhbEntry &e = dhb_[i];
        if (!e.valid)
            continue;
        FDP_ASSERT(e.lastOffset < kVldpBlocksPerPage &&
                       e.firstOffset < kVldpBlocksPerPage,
                   "%s: DHB entry %zu offsets (%u, %u) outside page",
                   auditName(), i, e.lastOffset, e.firstOffset);
        FDP_ASSERT(e.numDeltas <= kVldpHistLen,
                   "%s: DHB entry %zu holds %u deltas (max %u)",
                   auditName(), i, e.numDeltas, kVldpHistLen);
        for (unsigned j = 0; j < e.numDeltas; ++j)
            FDP_ASSERT(e.deltas[j] != 0 &&
                           e.deltas[j] > -static_cast<int>(
                               kVldpBlocksPerPage) &&
                           e.deltas[j] < static_cast<int>(kVldpBlocksPerPage),
                       "%s: DHB entry %zu delta[%u] = %d illegal",
                       auditName(), i, j, static_cast<int>(e.deltas[j]));
        FDP_ASSERT(e.lastUse <= tick_,
                   "%s: DHB entry %zu last used at tick %llu, after "
                   "current tick %llu",
                   auditName(), i,
                   static_cast<unsigned long long>(e.lastUse),
                   static_cast<unsigned long long>(tick_));
        for (std::size_t k = i + 1; k < dhb_.size(); ++k)
            FDP_ASSERT(!dhb_[k].valid || dhb_[k].pageTag != e.pageTag,
                       "%s: page %llx tracked in DHB slots %zu and %zu",
                       auditName(),
                       static_cast<unsigned long long>(e.pageTag), i, k);
    }
    for (unsigned len = 1; len <= kVldpHistLen; ++len) {
        const auto &table = dpt_[len - 1];
        for (std::size_t i = 0; i < table.size(); ++i) {
            const DptEntry &e = table[i];
            if (!e.valid)
                continue;
            FDP_ASSERT(dptIndexOf(len, e.key) == i,
                       "%s: DPT%u entry stored in slot %zu but hashes "
                       "to %zu",
                       auditName(), len, i, dptIndexOf(len, e.key));
            FDP_ASSERT(e.accuracy <= 3,
                       "%s: DPT%u entry %zu accuracy %u overflows 2 bits",
                       auditName(), len, i, e.accuracy);
            FDP_ASSERT(e.pred != 0,
                       "%s: DPT%u entry %zu predicts a zero delta",
                       auditName(), len, i);
        }
    }
    for (std::size_t i = 0; i < opt_.size(); ++i) {
        const OptEntry &e = opt_[i];
        if (!e.valid)
            continue;
        FDP_ASSERT(e.accuracy <= 3,
                   "%s: OPT entry %zu accuracy %u overflows 2 bits",
                   auditName(), i, e.accuracy);
        FDP_ASSERT(e.pred != 0,
                   "%s: OPT entry %zu predicts a zero delta", auditName(),
                   i);
    }
}

void
VldpPrefetcher::doObserve(const PrefetchObservation &obs,
                          std::vector<BlockAddr> &out, std::size_t budget)
{
    ++tick_;
    const std::uint64_t page = obs.addr >> kVldpPageShift;
    const auto offset = static_cast<std::uint8_t>(
        (obs.addr >> kBlockShift) & (kVldpBlocksPerPage - 1));
    const BlockAddr pageBlockBase =
        static_cast<BlockAddr>(page)
        << (kVldpPageShift - kBlockShift);

    std::size_t slot = findPage(page);
    if (slot == dhb_.size()) {
        // First recorded access to this page: allocate and consult the
        // OPT so even the first touch can trigger a prefetch.
        slot = victimSlot();
        DhbEntry &e = dhb_[slot];
        e = DhbEntry{};
        e.valid = true;
        e.pageTag = page;
        e.lastOffset = offset;
        e.firstOffset = offset;
        e.lastUse = tick_;
        const OptEntry &o = opt_[offset];
        if (o.valid && o.accuracy > 0 && budget >= 1) {
            const int next = offset + o.pred;
            if (next >= 0 && next < static_cast<int>(kVldpBlocksPerPage))
                out.push_back(pageBlockBase + static_cast<unsigned>(next));
        }
        return;
    }

    DhbEntry &e = dhb_[slot];
    e.lastUse = tick_;
    const int rawDelta = static_cast<int>(offset)
                         - static_cast<int>(e.lastOffset);
    if (rawDelta == 0)
        return;
    const auto delta = static_cast<std::int8_t>(rawDelta);

    // The page's second access trains the OPT: first offset -> delta.
    if (e.numDeltas == 0) {
        OptEntry &o = opt_[e.firstOffset];
        if (!o.valid) {
            o.valid = true;
            o.pred = delta;
            o.accuracy = 1;
        } else if (o.pred == delta) {
            bumpAccuracy(o.accuracy, true);
        } else if (o.accuracy == 0) {
            o.pred = delta;
            o.accuracy = 1;
        } else {
            --o.accuracy;
        }
    }

    // Each DPT level learns: last-j-deltas -> the delta that followed.
    for (unsigned len = 1; len <= e.numDeltas; ++len)
        trainDpt(len, e.deltas, delta);

    // Push the new delta onto the history (most recent first).
    for (unsigned j = kVldpHistLen - 1; j >= 1; --j)
        e.deltas[j] = e.deltas[j - 1];
    e.deltas[0] = delta;
    if (e.numDeltas < kVldpHistLen)
        ++e.numDeltas;
    e.lastOffset = offset;

    // Multi-degree chained prediction: each predicted delta extends the
    // speculative history the next lookup keys on.
    std::array<std::int8_t, kVldpHistLen> hist = e.deltas;
    unsigned histLen = e.numDeltas;
    int cur = offset;
    const unsigned deg = degree();
    std::size_t produced = 0;
    for (unsigned d = 0; d < deg; ++d) {
        if (produced >= budget)
            break;
        const std::int8_t pred = predictDelta(histLen, hist);
        if (pred == 0)
            break;
        cur += pred;
        if (cur < 0 || cur >= static_cast<int>(kVldpBlocksPerPage))
            break;
        out.push_back(pageBlockBase + static_cast<unsigned>(cur));
        ++produced;
        for (unsigned j = kVldpHistLen - 1; j >= 1; --j)
            hist[j] = hist[j - 1];
        hist[0] = pred;
        if (histLen < kVldpHistLen)
            ++histLen;
    }
}

} // namespace fdp
