/**
 * @file
 * Minimal discrete-event kernel.
 *
 * The CPU model steps cycle by cycle; memory-system components schedule
 * completion callbacks on this queue. Events scheduled for the same cycle
 * fire in scheduling order (FIFO), which keeps the simulation deterministic.
 *
 * Layout: the ordering heap holds only 24-byte {when, seq, node} records
 * (hand-maintained binary min-heap in a flat vector), while the callbacks
 * live in a slab of fixed-capacity InplaceFunction slots recycled through
 * a freelist. Steady-state schedule/service cycles therefore touch only
 * pre-allocated memory: no per-event heap allocation, and sifting moves
 * small PODs instead of type-erased callables.
 */

#ifndef FDP_SIM_EVENT_QUEUE_HH
#define FDP_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <vector>

#include "sim/check.hh"
#include "sim/inline_function.hh"
#include "sim/snapshot.hh"
#include "sim/types.hh"

namespace fdp
{

/**
 * Inline capacity of an event callback. The largest production capture
 * is the DRAM fill wrapper (a DoneFn plus the fill cycle); test and
 * bench callbacks carrying a std::function or a small payload also fit.
 */
inline constexpr std::size_t kEventCallbackBytes = 80;

/** Ordered queue of timed callbacks driving the simulation. */
class EventQueue : public Auditable, public Snapshottable
{
  public:
    using Callback = InplaceFunction<void(), kEventCallbackBytes>;

    /**
     * Schedule @p fn to run at absolute cycle @p when.
     * Scheduling in the past (before the last serviced cycle) is a bug.
     */
    void schedule(Cycle when, Callback fn);

    /** Run every event with time <= @p now, in (time, FIFO) order. */
    void serviceUntil(Cycle now);

    /** Cycle of the earliest pending event, or kNoCycle if none. */
    Cycle nextEventCycle() const;

    /** True when no events are pending. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return heap_.size(); }

    /** Total events serviced since construction (for stats/tests). */
    std::uint64_t serviced() const { return serviced_; }

    /** Last cycle passed to serviceUntil(). */
    Cycle horizon() const { return horizon_; }

    /** Drop all pending events and reset the horizon. */
    void reset();

    /**
     * Invariants: the pending array is a valid heap, no pending event
     * predates the horizon, sequence numbers are consistent,
     * serviced + pending == scheduled, and the heap and the freelist
     * together account for every callback slab slot exactly once.
     */
    void audit() const override;
    const char *auditName() const override { return "event_queue"; }

    /**
     * Snapshots are taken only at quiesce points: callbacks are
     * closures and cannot be serialized, so saveState() asserts the
     * queue is empty and carries just the horizon and the monotonic
     * counters that order future events.
     */
    void saveState(SnapWriter &w) const override;
    void loadState(SnapReader &r) override;
    const char *snapName() const override { return "events"; }

  private:
    friend struct AuditCorrupter;

    /** Heap record: the callback stays put in the slab while sifting. */
    struct Entry
    {
        Cycle when;
        std::uint64_t seq;
        std::uint32_t node;  ///< slab slot holding the callback
    };

    static bool
    earlier(const Entry &a, const Entry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    void siftUp(std::size_t i);
    void siftDown(std::size_t i);

    std::vector<Entry> heap_;           ///< min-heap on (when, seq)
    std::vector<Callback> slab_;        ///< callback storage, recycled
    std::vector<std::uint32_t> free_;   ///< unused slab slots
    std::uint64_t nextSeq_ = 0;
    std::uint64_t serviced_ = 0;
    Cycle horizon_ = 0;
};

} // namespace fdp

#endif // FDP_SIM_EVENT_QUEUE_HH
