/**
 * @file
 * Minimal discrete-event kernel.
 *
 * The CPU model steps cycle by cycle; memory-system components schedule
 * completion callbacks on this queue. Events scheduled for the same cycle
 * fire in scheduling order (FIFO), which keeps the simulation deterministic.
 */

#ifndef FDP_SIM_EVENT_QUEUE_HH
#define FDP_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/check.hh"
#include "sim/types.hh"

namespace fdp
{

/** Ordered queue of timed callbacks driving the simulation. */
class EventQueue : public Auditable
{
  public:
    using Callback = std::function<void()>;

    /**
     * Schedule @p fn to run at absolute cycle @p when.
     * Scheduling in the past (before the last serviced cycle) is a bug.
     */
    void schedule(Cycle when, Callback fn);

    /** Run every event with time <= @p now, in (time, FIFO) order. */
    void serviceUntil(Cycle now);

    /** Cycle of the earliest pending event, or kNoCycle if none. */
    Cycle nextEventCycle() const;

    /** True when no events are pending. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return heap_.size(); }

    /** Total events serviced since construction (for stats/tests). */
    std::uint64_t serviced() const { return serviced_; }

    /** Last cycle passed to serviceUntil(). */
    Cycle horizon() const { return horizon_; }

    /** Drop all pending events and reset the horizon. */
    void reset();

    /**
     * Invariants: the pending array is a valid heap, no pending event
     * predates the horizon, sequence numbers are consistent, and
     * serviced + pending == scheduled.
     */
    void audit() const override;
    const char *auditName() const override { return "event_queue"; }

  private:
    friend struct AuditCorrupter;
    struct Event
    {
        Cycle when;
        std::uint64_t seq;
        Callback fn;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t serviced_ = 0;
    Cycle horizon_ = 0;
};

} // namespace fdp

#endif // FDP_SIM_EVENT_QUEUE_HH
