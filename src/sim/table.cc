#include "sim/table.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace fdp
{

void
Table::setHeader(std::vector<std::string> header)
{
    if (!rows_.empty())
        panic("table %s: header set after rows", title_.c_str());
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    if (row.size() != header_.size())
        panic("table %s: row width %zu != header width %zu", title_.c_str(),
              row.size(), header_.size());
    rows_.push_back(std::move(row));
}

void
Table::addRule()
{
    rulesBefore_.push_back(rows_.size());
}

void
Table::print(std::FILE *out) const
{
    std::vector<std::size_t> width(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto print_rule = [&]() {
        std::fputc('+', out);
        for (std::size_t c = 0; c < width.size(); ++c) {
            for (std::size_t i = 0; i < width[c] + 2; ++i)
                std::fputc('-', out);
            std::fputc('+', out);
        }
        std::fputc('\n', out);
    };
    auto print_cells = [&](const std::vector<std::string> &cells,
                           bool left_first) {
        std::fputc('|', out);
        for (std::size_t c = 0; c < cells.size(); ++c) {
            const bool left = left_first && c == 0;
            std::fprintf(out, left ? " %-*s |" : " %*s |",
                         static_cast<int>(width[c]), cells[c].c_str());
        }
        std::fputc('\n', out);
    };

    std::fprintf(out, "\n== %s ==\n", title_.c_str());
    print_rule();
    print_cells(header_, true);
    print_rule();
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        if (std::find(rulesBefore_.begin(), rulesBefore_.end(), r) !=
            rulesBefore_.end())
            print_rule();
        print_cells(rows_[r], true);
    }
    print_rule();
}

std::string
fmtDouble(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
    return buf;
}

std::string
fmtPercent(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f%%", decimals, v * 100.0);
    return buf;
}

double
gmean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : v) {
        if (x <= 0.0)
            panic("gmean: non-positive input %f", x);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(v.size()));
}

double
amean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : v)
        sum += x;
    return sum / static_cast<double>(v.size());
}

} // namespace fdp
