/**
 * @file
 * Runtime invariant checking for the simulator.
 *
 * FDP_ASSERT(cond, ...)        - always-on structural invariant; a failure
 *                                is a simulator bug and panics.
 * FDP_DEBUG_ASSERT(cond, ...)  - compiled out under NDEBUG; for checks on
 *                                hot paths.
 *
 * Components with machine-checkable structural invariants implement
 * Auditable: audit() walks the component's state and panics (through
 * FDP_ASSERT) on the first violated invariant. The experiment harness
 * collects every Auditable of a run in an AuditSet and runs it at each
 * FDP sampling-interval boundary in debug builds (or when FDP_AUDIT=1
 * is set in the environment); tests call audit() on demand.
 */

#ifndef FDP_SIM_CHECK_HH
#define FDP_SIM_CHECK_HH

#include <utility>
#include <vector>

#include "sim/logging.hh"

namespace fdp
{

namespace detail
{

/** FDP_ASSERT failure without a user message. */
[[noreturn]] inline void
assertFail(const char *file, int line, const char *cond)
{
    panic("%s:%d: assertion `%s' failed", file, line, cond);
}

/** FDP_ASSERT failure with a formatted user message. */
template <Printable... Args>
[[noreturn]] void
assertFail(const char *file, int line, const char *cond, const char *fmt,
           Args &&...args)
{
    panic("%s:%d: assertion `%s' failed: %s", file, line, cond,
          formatMessage(fmt, std::forward<Args>(args)...).c_str());
}

} // namespace detail

/**
 * Always-on invariant check: FDP_ASSERT(cond) or
 * FDP_ASSERT(cond, "context %u", value). Failure panics.
 */
#define FDP_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) [[unlikely]]                                           \
            ::fdp::detail::assertFail(__FILE__, __LINE__,                   \
                                      #cond __VA_OPT__(, ) __VA_ARGS__);    \
    } while (0)

/** Debug-build-only invariant check; compiled out under NDEBUG. */
#ifdef NDEBUG
#define FDP_DEBUG_ASSERT(cond, ...)                                         \
    do {                                                                    \
    } while (0)
#else
#define FDP_DEBUG_ASSERT(cond, ...) FDP_ASSERT(cond __VA_OPT__(, ) __VA_ARGS__)
#endif

/**
 * Test-only backdoor: tests declare this struct (a friend of every
 * Auditable component) to corrupt private state and verify that audit()
 * catches the corruption. Never defined in production code.
 */
struct AuditCorrupter;

/** A component whose structural invariants can be checked on demand. */
class Auditable
{
  public:
    virtual ~Auditable() = default;

    /** Check every structural invariant; panics on the first violation. */
    virtual void audit() const = 0;

    /** Component name used in audit failure messages. */
    virtual const char *auditName() const = 0;
};

/** The set of auditable components of one assembled machine. */
// fdp-analyze: suppress(audit-coverage, AuditSet is the audit
// framework itself; its registry is rebuilt per machine, not
// simulated state)
class AuditSet
{
  public:
    void add(const Auditable *component);

    /** audit() every registered component. */
    void runAll() const;

    std::size_t size() const { return components_.size(); }

  private:
    std::vector<const Auditable *> components_;
};

/** True when FDP_AUDIT is set (nonempty, not "0") in the environment. */
bool auditRequestedByEnv();

/** True in builds without NDEBUG (FDP_DEBUG_ASSERT active). */
inline constexpr bool
debugBuild()
{
#ifdef NDEBUG
    return false;
#else
    return true;
#endif
}

} // namespace fdp

#endif // FDP_SIM_CHECK_HH
