/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * All randomness in the simulator flows through Rng so that every experiment
 * is exactly reproducible from its seed. The generator is xoshiro256**,
 * seeded via splitmix64 (public-domain constructions by Blackman & Vigna).
 */

#ifndef FDP_SIM_RNG_HH
#define FDP_SIM_RNG_HH

#include <cstdint>

namespace fdp
{

/** Deterministic, seedable 64-bit PRNG (xoshiro256**). */
class Rng
{
  public:
    /** Construct from a 64-bit seed; identical seeds replay identically. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state_)
            word = splitmix64(x);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t
    range(std::uint64_t bound)
    {
        // Lemire's multiply-shift bounded mapping: negligible bias for the
        // bounds used by workload generation (all far below 2^48).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with success probability p. */
    bool chance(double p) { return uniform() < p; }

    /** Raw generator state, for snapshot serialization only. */
    void
    stateWords(std::uint64_t out[4]) const
    {
        for (int i = 0; i < 4; ++i)
            out[i] = state_[i];
    }

    /** Restore state captured by stateWords(); replay is then exact. */
    void
    setStateWords(const std::uint64_t in[4])
    {
        for (int i = 0; i < 4; ++i)
            state_[i] = in[i];
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static std::uint64_t
    splitmix64(std::uint64_t &x)
    {
        std::uint64_t z = (x += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    std::uint64_t state_[4];
};

} // namespace fdp

#endif // FDP_SIM_RNG_HH
