/**
 * @file
 * Fundamental scalar types shared by every simulator subsystem.
 */

#ifndef FDP_SIM_TYPES_HH
#define FDP_SIM_TYPES_HH

#include <cstdint>

namespace fdp
{

/** Byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** Cache-block address (byte address >> log2(block size)). */
using BlockAddr = std::uint64_t;

/** Simulated processor clock cycle. */
using Cycle = std::uint64_t;

/** Monotonically increasing statistic counter. */
using Counter = std::uint64_t;

/** Sentinel meaning "no cycle" / "never". */
inline constexpr Cycle kNoCycle = ~Cycle{0};

/**
 * Typed identity of one core in a (possibly multi-core) machine.
 *
 * Deliberately not an integer: outside the multi-core subsystem
 * (`src/mc/`) code passes core identity around opaquely and may only
 * use index() to key containers or print, never to do arithmetic
 * (lint rule `typed-core-id`). Single-core components default every
 * CoreId parameter to kCore0, so they never need to mention cores.
 */
class CoreId
{
  public:
    constexpr CoreId() = default;
    constexpr explicit CoreId(unsigned index)
        : index_(static_cast<std::uint8_t>(index))
    {
    }

    /** Raw index, for container lookups and display only. */
    constexpr unsigned index() const { return index_; }

    constexpr bool operator==(const CoreId &) const = default;

  private:
    std::uint8_t index_ = 0;
};

/** Core 0: the only core of a single-core machine. */
inline constexpr CoreId kCore0{};

/** Log2 of the cache block size used throughout the hierarchy (64B). */
inline constexpr unsigned kBlockShift = 6;

/** Cache block size in bytes. */
inline constexpr unsigned kBlockBytes = 1u << kBlockShift;

/** Convert a byte address to a cache-block address. */
constexpr BlockAddr
blockAddr(Addr addr)
{
    return addr >> kBlockShift;
}

/** Convert a cache-block address back to the block's base byte address. */
constexpr Addr
blockBase(BlockAddr block)
{
    return block << kBlockShift;
}

} // namespace fdp

#endif // FDP_SIM_TYPES_HH
