#include "sim/logging.hh"

#include <mutex>

namespace fdp::detail
{

namespace
{

std::mutex &
sinkMutex()
{
    static std::mutex m;
    return m;
}

thread_local bool fatalThrowsOnThisThread = false;

} // namespace

FatalThrowsGuard::FatalThrowsGuard()
{
    fatalThrowsOnThisThread = true;
}

FatalThrowsGuard::~FatalThrowsGuard()
{
    fatalThrowsOnThisThread = false;
}

void
fatalExit(const std::string &message)
{
    if (fatalThrowsOnThisThread)
        throw FatalError(message);
    emitLine(stderr, "fatal: ", message);
    std::exit(1);
}

void
emitLine(std::FILE *stream, const char *prefix, const std::string &message)
{
    // One lock per line: concurrent sweep runs (harness/sweep_pool.hh)
    // may report warnings at the same time, and a torn line in a CI log
    // is indistinguishable from a real corruption.
    const std::lock_guard<std::mutex> lock(sinkMutex());
    std::fprintf(stream, "%s%s\n", prefix, message.c_str());
    std::fflush(stream);
}

} // namespace fdp::detail
