/**
 * @file
 * Fixed-capacity, non-allocating std::function replacement for the
 * simulation hot paths.
 *
 * Every per-access callback in the simulator (event-queue events, MSHR
 * demand waiters, DRAM completion functions) used to be a
 * std::function, whose small-buffer optimization (16 bytes on
 * libstdc++) is too small for the real captures — a ROB completion
 * captures {core, slot, seq} and the DRAM fill wrapper captures a whole
 * completion callback — so the steady state heap-allocated on nearly
 * every simulated miss. InplaceFunction stores the callable inline in a
 * fixed buffer and refuses (at compile time) anything that does not
 * fit, making "no allocation per event" a structural property instead
 * of a hope.
 *
 * Move-only by design: callbacks own their captures and are consumed
 * exactly once per dispatch. A moved-from InplaceFunction is empty.
 */

#ifndef FDP_SIM_INLINE_FUNCTION_HH
#define FDP_SIM_INLINE_FUNCTION_HH

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

#include "sim/types.hh"

namespace fdp
{

template <typename Signature, std::size_t Capacity> class InplaceFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity>
{
  public:
    InplaceFunction() = default;
    InplaceFunction(std::nullptr_t) {}  // NOLINT: match std::function

    template <typename F,
              typename = std::enable_if_t<!std::is_same_v<
                  std::decay_t<F>, InplaceFunction>>>
    InplaceFunction(F &&fn)  // NOLINT: converting, like std::function
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_invocable_r_v<R, Fn &, Args...>,
                      "callable signature mismatch");
        static_assert(sizeof(Fn) <= Capacity,
                      "callable exceeds the inline capacity; shrink the "
                      "capture (or raise the call site's capacity)");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "over-aligned callables are not supported");
        static_assert(std::is_nothrow_move_constructible_v<Fn>,
                      "callables must be nothrow-movable");
        std::construct_at(reinterpret_cast<Fn *>(&storage_),
                          std::forward<F>(fn));
        invoke_ = [](void *raw, Args... args) -> R {
            return (*static_cast<Fn *>(raw))(
                std::forward<Args>(args)...);
        };
        relocate_ = [](void *dst, void *src) {
            Fn *from = static_cast<Fn *>(src);
            std::construct_at(static_cast<Fn *>(dst), std::move(*from));
            std::destroy_at(from);
        };
        destroy_ = [](void *raw) { std::destroy_at(static_cast<Fn *>(raw)); };
    }

    InplaceFunction(InplaceFunction &&other) noexcept { moveFrom(other); }

    InplaceFunction &
    operator=(InplaceFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InplaceFunction &
    operator=(std::nullptr_t) noexcept
    {
        reset();
        return *this;
    }

    InplaceFunction(const InplaceFunction &) = delete;
    InplaceFunction &operator=(const InplaceFunction &) = delete;

    ~InplaceFunction() { reset(); }

    explicit operator bool() const { return invoke_ != nullptr; }

    R
    operator()(Args... args)
    {
        return invoke_(&storage_, std::forward<Args>(args)...);
    }

  private:
    void
    reset() noexcept
    {
        if (destroy_ != nullptr)
            destroy_(&storage_);
        invoke_ = nullptr;
        relocate_ = nullptr;
        destroy_ = nullptr;
    }

    void
    moveFrom(InplaceFunction &other) noexcept
    {
        if (other.invoke_ == nullptr)
            return;
        other.relocate_(&storage_, &other.storage_);
        invoke_ = other.invoke_;
        relocate_ = other.relocate_;
        destroy_ = other.destroy_;
        other.invoke_ = nullptr;
        other.relocate_ = nullptr;
        other.destroy_ = nullptr;
    }

    alignas(std::max_align_t) std::byte storage_[Capacity];
    R (*invoke_)(void *, Args...) = nullptr;
    void (*relocate_)(void *dst, void *src) = nullptr;
    void (*destroy_)(void *) = nullptr;
};

/**
 * Inline capacity of a memory-side completion callback. Sized for the
 * largest real capture (the ROB's {core, slot, seq} completion plus
 * headroom for test lambdas holding a few references).
 */
inline constexpr std::size_t kDoneFnBytes = 40;

/**
 * Completion callback invoked with the cycle the data is available.
 * Shared by the MSHR waiter lists, the DRAM request queues, and the
 * MemorySystem demand-access API.
 */
using DoneFn = InplaceFunction<void(Cycle), kDoneFnBytes>;

} // namespace fdp

#endif // FDP_SIM_INLINE_FUNCTION_HH
