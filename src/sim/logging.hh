/**
 * @file
 * gem5-style status/error reporting helpers.
 *
 * panic()  - a simulator bug; aborts.
 * fatal()  - a user/configuration error; exits with status 1.
 * warn()   - something works but is suspicious.
 * inform() - plain status output.
 *
 * All four drain through the mutex-guarded sink in logging.cc, so
 * messages from concurrent sweep runs (harness/sweep_pool.hh) come out
 * as whole lines instead of interleaved fragments.
 */

#ifndef FDP_SIM_LOGGING_HH
#define FDP_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>

namespace fdp
{

/**
 * A fatal() raised on a thread where exiting is not allowed (a sweep
 * pool worker — see detail::FatalThrowsGuard). Carries the formatted
 * message; SweepPool::wait() rethrows it on the main thread, where it
 * becomes a normal fatal exit.
 */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

namespace detail
{

/**
 * Types that may be forwarded to the printf machinery. Passing anything
 * else (a std::string, a struct, ...) through a C variadic call is
 * undefined behavior, so the gate is enforced at compile time; callers
 * must pass `.c_str()` / a scalar instead.
 */
template <typename T>
concept Printable =
    std::is_arithmetic_v<std::remove_cvref_t<T>> ||
    std::is_enum_v<std::remove_cvref_t<T>> ||
    std::is_pointer_v<std::remove_cvref_t<T>> ||
    std::is_array_v<std::remove_cvref_t<T>> ||
    std::is_null_pointer_v<std::remove_cvref_t<T>>;

template <Printable... Args>
std::string
formatMessage(const char *fmt, Args &&...args)
{
    if constexpr (sizeof...(Args) == 0) {
        return std::string(fmt);
    } else {
        const int n = std::snprintf(nullptr, 0, fmt,
                                    std::forward<Args>(args)...);
        std::string out(n > 0 ? static_cast<size_t>(n) : 0, '\0');
        if (n > 0)
            std::snprintf(out.data(), out.size() + 1, fmt,
                          std::forward<Args>(args)...);
        return out;
    }
}

/**
 * Serialized line writer behind every helper below (logging.cc): one
 * "<prefix><message>\n" per call, under a process-wide mutex.
 */
void emitLine(std::FILE *stream, const char *prefix,
              const std::string &message);

/**
 * Terminate on a fatal(): print "fatal: <message>" and exit(1) — or, on
 * a thread holding a FatalThrowsGuard, throw FatalError(message)
 * instead, deferring both the diagnostic and the exit to whichever
 * thread catches it. std::exit from a worker thread while siblings run
 * is undefined behavior (static destructors race live workers), so the
 * sweep pool routes every worker fatal through this escape hatch.
 */
[[noreturn]] void fatalExit(const std::string &message);

/**
 * RAII guard: while alive, fatal() on this thread throws FatalError
 * instead of exiting the process. Held for the lifetime of each sweep
 * pool worker (src/harness/sweep_pool.cc) and nothing else.
 */
class FatalThrowsGuard
{
  public:
    FatalThrowsGuard();
    ~FatalThrowsGuard();

    FatalThrowsGuard(const FatalThrowsGuard &) = delete;
    FatalThrowsGuard &operator=(const FatalThrowsGuard &) = delete;
};

} // namespace detail

/** Report an internal simulator bug and abort. */
template <detail::Printable... Args>
[[noreturn]] void
panic(const char *fmt, Args &&...args)
{
    detail::emitLine(stderr, "panic: ",
                     detail::formatMessage(fmt,
                                           std::forward<Args>(args)...));
    std::abort();
}

/**
 * Report an unrecoverable user/configuration error and exit — except on
 * a sweep pool worker thread, where it throws FatalError for the main
 * thread to report (see detail::FatalThrowsGuard).
 */
template <detail::Printable... Args>
[[noreturn]] void
fatal(const char *fmt, Args &&...args)
{
    detail::fatalExit(detail::formatMessage(fmt,
                                            std::forward<Args>(args)...));
}

/** Report a suspicious-but-survivable condition. */
template <detail::Printable... Args>
void
warn(const char *fmt, Args &&...args)
{
    detail::emitLine(stderr, "warn: ",
                     detail::formatMessage(fmt,
                                           std::forward<Args>(args)...));
}

/** Report plain status output. */
template <detail::Printable... Args>
void
inform(const char *fmt, Args &&...args)
{
    detail::emitLine(stdout, "info: ",
                     detail::formatMessage(fmt,
                                           std::forward<Args>(args)...));
}

} // namespace fdp

#endif // FDP_SIM_LOGGING_HH
