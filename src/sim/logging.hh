/**
 * @file
 * gem5-style status/error reporting helpers.
 *
 * panic()  - a simulator bug; aborts.
 * fatal()  - a user/configuration error; exits with status 1.
 * warn()   - something works but is suspicious.
 * inform() - plain status output.
 *
 * All four drain through the mutex-guarded sink in logging.cc, so
 * messages from concurrent sweep runs (harness/sweep_pool.hh) come out
 * as whole lines instead of interleaved fragments.
 */

#ifndef FDP_SIM_LOGGING_HH
#define FDP_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <type_traits>
#include <utility>

namespace fdp
{

namespace detail
{

/**
 * Types that may be forwarded to the printf machinery. Passing anything
 * else (a std::string, a struct, ...) through a C variadic call is
 * undefined behavior, so the gate is enforced at compile time; callers
 * must pass `.c_str()` / a scalar instead.
 */
template <typename T>
concept Printable =
    std::is_arithmetic_v<std::remove_cvref_t<T>> ||
    std::is_enum_v<std::remove_cvref_t<T>> ||
    std::is_pointer_v<std::remove_cvref_t<T>> ||
    std::is_array_v<std::remove_cvref_t<T>> ||
    std::is_null_pointer_v<std::remove_cvref_t<T>>;

template <Printable... Args>
std::string
formatMessage(const char *fmt, Args &&...args)
{
    if constexpr (sizeof...(Args) == 0) {
        return std::string(fmt);
    } else {
        const int n = std::snprintf(nullptr, 0, fmt,
                                    std::forward<Args>(args)...);
        std::string out(n > 0 ? static_cast<size_t>(n) : 0, '\0');
        if (n > 0)
            std::snprintf(out.data(), out.size() + 1, fmt,
                          std::forward<Args>(args)...);
        return out;
    }
}

/**
 * Serialized line writer behind every helper below (logging.cc): one
 * "<prefix><message>\n" per call, under a process-wide mutex.
 */
void emitLine(std::FILE *stream, const char *prefix,
              const std::string &message);

} // namespace detail

/** Report an internal simulator bug and abort. */
template <detail::Printable... Args>
[[noreturn]] void
panic(const char *fmt, Args &&...args)
{
    detail::emitLine(stderr, "panic: ",
                     detail::formatMessage(fmt,
                                           std::forward<Args>(args)...));
    std::abort();
}

/** Report an unrecoverable user/configuration error and exit. */
template <detail::Printable... Args>
[[noreturn]] void
fatal(const char *fmt, Args &&...args)
{
    detail::emitLine(stderr, "fatal: ",
                     detail::formatMessage(fmt,
                                           std::forward<Args>(args)...));
    std::exit(1);
}

/** Report a suspicious-but-survivable condition. */
template <detail::Printable... Args>
void
warn(const char *fmt, Args &&...args)
{
    detail::emitLine(stderr, "warn: ",
                     detail::formatMessage(fmt,
                                           std::forward<Args>(args)...));
}

/** Report plain status output. */
template <detail::Printable... Args>
void
inform(const char *fmt, Args &&...args)
{
    detail::emitLine(stdout, "info: ",
                     detail::formatMessage(fmt,
                                           std::forward<Args>(args)...));
}

} // namespace fdp

#endif // FDP_SIM_LOGGING_HH
