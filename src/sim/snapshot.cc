#include "sim/snapshot.hh"

#include <bit>
#include <limits>

#include "sim/check.hh"

namespace fdp
{

// ---------------------------------------------------------------------------
// SnapWriter.
// ---------------------------------------------------------------------------

void
SnapWriter::beginSection(const std::string &name)
{
    FDP_ASSERT(!inSection_, "snapshot writer: nested section `%s'",
               name.c_str());
    FDP_ASSERT(!name.empty() && name.size() <= 255,
               "snapshot writer: bad section name length %zu", name.size());
    bytes_.push_back(static_cast<std::uint8_t>(name.size()));
    bytes_.insert(bytes_.end(), name.begin(), name.end());
    lenPatchPos_ = bytes_.size();
    // Placeholder payload length, patched by endSection().
    for (int i = 0; i < 4; ++i)
        bytes_.push_back(0);
    inSection_ = true;
    ++sections_;
}

void
SnapWriter::endSection()
{
    FDP_ASSERT(inSection_, "snapshot writer: endSection with none open");
    const std::size_t payload = bytes_.size() - lenPatchPos_ - 4;
    FDP_ASSERT(payload <= std::numeric_limits<std::uint32_t>::max());
    for (int i = 0; i < 4; ++i)
        bytes_[lenPatchPos_ + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>((payload >> (i * 8)) & 0xFF);
    inSection_ = false;
}

void
SnapWriter::putU8(std::uint8_t v)
{
    FDP_ASSERT(inSection_, "snapshot writer: put outside a section");
    bytes_.push_back(v);
}

void
SnapWriter::putU16(std::uint16_t v)
{
    putU8(static_cast<std::uint8_t>(v & 0xFF));
    putU8(static_cast<std::uint8_t>(v >> 8));
}

void
SnapWriter::putU32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        putU8(static_cast<std::uint8_t>((v >> (i * 8)) & 0xFF));
}

void
SnapWriter::putU64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        putU8(static_cast<std::uint8_t>((v >> (i * 8)) & 0xFF));
}

void
SnapWriter::putI64(std::int64_t v)
{
    putU64(static_cast<std::uint64_t>(v));
}

void
SnapWriter::putDouble(double v)
{
    putU64(std::bit_cast<std::uint64_t>(v));
}

void
SnapWriter::putString(const std::string &s)
{
    FDP_ASSERT(s.size() <= std::numeric_limits<std::uint16_t>::max(),
               "snapshot writer: string of %zu bytes", s.size());
    putU16(static_cast<std::uint16_t>(s.size()));
    for (char c : s)
        putU8(static_cast<std::uint8_t>(c));
}

void
SnapWriter::putBytes(const std::vector<std::uint8_t> &blob)
{
    FDP_ASSERT(inSection_, "snapshot writer: put outside a section");
    FDP_ASSERT(blob.size() <= std::numeric_limits<std::uint32_t>::max(),
               "snapshot writer: blob of %zu bytes", blob.size());
    putU32(static_cast<std::uint32_t>(blob.size()));
    bytes_.insert(bytes_.end(), blob.begin(), blob.end());
}

// ---------------------------------------------------------------------------
// SnapReader.
// ---------------------------------------------------------------------------

SnapReader::SnapReader(const std::uint8_t *data, std::size_t size)
    : data_(data), size_(size)
{
}

SnapReader::SnapReader(const std::vector<std::uint8_t> &bytes)
    : SnapReader(bytes.data(), bytes.size())
{
}

void
SnapReader::need(std::size_t n) const
{
    const std::size_t limit = inSection_ ? sectionEnd_ : size_;
    if (pos_ + n > limit) {
        if (inSection_)
            fatal("snapshot: section `%s' payload truncated (need %zu "
                  "bytes, %zu left)",
                  sectionName_.c_str(), n, limit - pos_);
        fatal("snapshot: body truncated (need %zu bytes, %zu left)", n,
              limit - pos_);
    }
}

std::string
SnapReader::enterFrame()
{
    FDP_ASSERT(!inSection_, "snapshot reader: section `%s' still open",
               sectionName_.c_str());
    need(1);
    const std::size_t nameLen = data_[pos_++];
    need(nameLen + 4);
    std::string name(reinterpret_cast<const char *>(data_ + pos_), nameLen);
    pos_ += nameLen;
    std::uint32_t payload = 0;
    for (int i = 0; i < 4; ++i)
        payload |= static_cast<std::uint32_t>(data_[pos_++]) << (i * 8);
    if (pos_ + payload > size_)
        fatal("snapshot: section `%s' runs past the end of the body",
              name.c_str());
    sectionEnd_ = pos_ + payload;
    return name;
}

void
SnapReader::openSection(const std::string &expected)
{
    const std::string name = enterFrame();
    if (name != expected)
        fatal("snapshot: expected section `%s', found `%s'",
              expected.c_str(), name.c_str());
    sectionName_ = name;
    inSection_ = true;
}

void
SnapReader::closeSection()
{
    FDP_ASSERT(inSection_, "snapshot reader: closeSection with none open");
    if (pos_ != sectionEnd_)
        fatal("snapshot: section `%s' has %zu unconsumed payload bytes",
              sectionName_.c_str(), sectionEnd_ - pos_);
    inSection_ = false;
}

void
SnapReader::skipSection(const std::string &expected)
{
    const std::string name = enterFrame();
    if (name != expected)
        fatal("snapshot: expected section `%s', found `%s'",
              expected.c_str(), name.c_str());
    pos_ = sectionEnd_;
}

std::uint8_t
SnapReader::getU8()
{
    FDP_ASSERT(inSection_, "snapshot reader: get outside a section");
    need(1);
    return data_[pos_++];
}

std::uint16_t
SnapReader::getU16()
{
    const std::uint16_t lo = getU8();
    const std::uint16_t hi = getU8();
    return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t
SnapReader::getU32()
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(getU8()) << (i * 8);
    return v;
}

std::uint64_t
SnapReader::getU64()
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(getU8()) << (i * 8);
    return v;
}

std::int64_t
SnapReader::getI64()
{
    return static_cast<std::int64_t>(getU64());
}

double
SnapReader::getDouble()
{
    return std::bit_cast<double>(getU64());
}

std::string
SnapReader::getString()
{
    const std::uint16_t len = getU16();
    need(len);
    std::string s(reinterpret_cast<const char *>(data_ + pos_), len);
    pos_ += len;
    return s;
}

std::vector<std::uint8_t>
SnapReader::getBytes()
{
    const std::uint32_t len = getU32();
    need(len);
    std::vector<std::uint8_t> blob(data_ + pos_, data_ + pos_ + len);
    pos_ += len;
    return blob;
}

} // namespace fdp
