/**
 * @file
 * ASCII table formatting for benchmark harness output.
 *
 * Every bench binary prints the rows/series of one paper table or figure;
 * this class keeps that output aligned and uniform.
 */

#ifndef FDP_SIM_TABLE_HH
#define FDP_SIM_TABLE_HH

#include <cstdio>
#include <string>
#include <vector>

namespace fdp
{

/** Column-aligned ASCII table with a title and a header row. */
// fdp-analyze: suppress(audit-coverage, output formatting only;
// rows are write-once strings, never simulator state)
class Table
{
  public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    /** Set the header; must be called before the first row. */
    void setHeader(std::vector<std::string> header);

    /** Append one data row (must match the header width). */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal rule before the next row (e.g. above means). */
    void addRule();

    /** Render the table to @p out. */
    void print(std::FILE *out = stdout) const;

    std::size_t numRows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::size_t> rulesBefore_;
};

/** Format a double with @p decimals fraction digits. */
std::string fmtDouble(double v, int decimals = 2);

/** Format a percentage (0.137 -> "13.7%"). */
std::string fmtPercent(double v, int decimals = 1);

/** Geometric mean; zero/negative entries are a caller bug. */
double gmean(const std::vector<double> &v);

/** Arithmetic mean of @p v (0 for empty input). */
double amean(const std::vector<double> &v);

} // namespace fdp

#endif // FDP_SIM_TABLE_HH
