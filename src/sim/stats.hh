/**
 * @file
 * Lightweight statistics framework.
 *
 * Components declare ScalarStat / DistributionStat members and register
 * them with a StatGroup; the group knows how to dump every statistic with
 * a hierarchical name, in the spirit of gem5's stats package but sized for
 * this project.
 */

#ifndef FDP_SIM_STATS_HH
#define FDP_SIM_STATS_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/snapshot.hh"
#include "sim/types.hh"

namespace fdp
{

class StatGroup;

/** A single named 64-bit event counter. */
class ScalarStat
{
  public:
    /** Register this statistic as @p name under @p group. */
    ScalarStat(StatGroup &group, std::string name, std::string desc);

    ScalarStat(const ScalarStat &) = delete;
    ScalarStat &operator=(const ScalarStat &) = delete;

    ScalarStat &operator++() { ++value_; return *this; }
    ScalarStat &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    std::string name_;
    std::string desc_;
    std::uint64_t value_ = 0;
};

/** A named bucketed distribution (fixed bucket count known up front). */
// fdp-analyze: suppress(audit-coverage, stats are observers; they
// record simulated state but nothing reads them back mid-run)
class DistributionStat
{
  public:
    /**
     * Register a distribution with @p buckets buckets; bucket labels are
     * supplied at dump time by position or default to their index.
     */
    DistributionStat(StatGroup &group, std::string name, std::string desc,
                     std::size_t buckets);

    DistributionStat(const DistributionStat &) = delete;
    DistributionStat &operator=(const DistributionStat &) = delete;

    /** Record one sample in bucket @p bucket (out of range is a bug). */
    void sample(std::size_t bucket, std::uint64_t count = 1);

    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
    std::size_t numBuckets() const { return buckets_.size(); }
    std::uint64_t total() const;

    /** Fraction of all samples falling in bucket @p i (0 if empty). */
    double fraction(std::size_t i) const;

    void reset();

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    std::string name_;
    std::string desc_;
    std::vector<std::uint64_t> buckets_;
};

/**
 * Owner of a related set of statistics. Groups nest by name prefix only;
 * there is no object hierarchy to keep the framework cheap.
 */
// fdp-analyze: suppress(audit-coverage, stats are observers; they
// record simulated state but nothing reads them back mid-run)
class StatGroup : public Snapshottable
{
  public:
    explicit StatGroup(std::string name)
        : name_(std::move(name)), snapName_("stats/" + name_)
    {
    }

    const std::string &name() const { return name_; }

    /** Dump "group.stat value # desc" lines for every registered stat. */
    void dump(std::ostream &out) const;

    /** Zero every registered statistic. */
    void resetAll();

    /**
     * Serialize every registered statistic by name. loadState()
     * requires the restoring group to register the same statistics in
     * the same order (a fresh, identically-assembled machine does).
     */
    void saveState(SnapWriter &w) const override;
    void loadState(SnapReader &r) override;
    const char *snapName() const override { return snapName_.c_str(); }

    const std::vector<ScalarStat *> &scalars() const { return scalars_; }
    const std::vector<DistributionStat *> &
    distributions() const
    {
        return distributions_;
    }

  private:
    friend class ScalarStat;
    friend class DistributionStat;

    std::string name_;
    std::string snapName_;
    std::vector<ScalarStat *> scalars_;
    std::vector<DistributionStat *> distributions_;
};

/** Safe ratio helper: returns 0 when the denominator is 0. */
inline double
ratio(double num, double den)
{
    return den == 0.0 ? 0.0 : num / den;
}

} // namespace fdp

#endif // FDP_SIM_STATS_HH
