/**
 * @file
 * Component-state serialization for fdpsnap-v1 snapshots.
 *
 * SnapWriter/SnapReader are the byte codec: a snapshot body is a
 * sequence of named sections, each `u8 nameLen + name + u32 payloadLen
 * + payload`, with every scalar little-endian. The codec knows nothing
 * about files or checksums — the framed container (magic, version,
 * CRC) lives in src/snap/snapshot_file.hh, which wraps these bodies.
 *
 * Components with state that must survive a warm-fork implement
 * Snapshottable: saveState() writes exactly one section, loadState()
 * consumes exactly that section, and the pair is bit-faithful — a
 * restored component must be indistinguishable from the original, so
 * save -> restore -> run is bit-identical to an uninterrupted run.
 * Reader-side mismatches (wrong section name, short payload, leftover
 * bytes) are clean fatal() diagnostics, never UB or silent garbage.
 */

#ifndef FDP_SIM_SNAPSHOT_HH
#define FDP_SIM_SNAPSHOT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace fdp
{

/** Appends named, length-framed sections to a growing byte buffer. */
// fdp-analyze: suppress(audit-coverage, the codec's buffer is the
// serialization in flight, not simulation state; it is validated
// structurally by SnapReader on every read)
class SnapWriter
{
  public:
    /** Open a section; every put below lands in its payload. */
    void beginSection(const std::string &name);

    /** Close the open section, patching its payload length. */
    void endSection();

    void putU8(std::uint8_t v);
    void putU16(std::uint16_t v);
    void putU32(std::uint32_t v);
    void putU64(std::uint64_t v);
    /** Two's-complement through u64, so the round trip is exact. */
    void putI64(std::int64_t v);
    void putBool(bool v) { putU8(v ? 1 : 0); }
    /** IEEE-754 bits through u64, so the round trip is exact. */
    void putDouble(double v);
    /** u16 length + raw bytes (names, labels; not bulk data). */
    void putString(const std::string &s);
    /** u32 length + raw bytes. For nested snapshot bodies (e.g. a
     *  composite component embedding its children's sections as one
     *  opaque blob inside its own section). */
    void putBytes(const std::vector<std::uint8_t> &blob);

    const std::vector<std::uint8_t> &bytes() const { return bytes_; }
    std::uint32_t sectionCount() const { return sections_; }

  private:
    std::vector<std::uint8_t> bytes_;
    std::size_t lenPatchPos_ = 0;
    bool inSection_ = false;
    std::uint32_t sections_ = 0;
};

/**
 * Sequential reader over one snapshot body. Construction borrows the
 * bytes; the buffer must outlive the reader. Every structural
 * violation — unexpected section name, truncated payload, a section
 * left partially consumed — is a clean fatal().
 */
class SnapReader
{
  public:
    SnapReader(const std::uint8_t *data, std::size_t size);
    explicit SnapReader(const std::vector<std::uint8_t> &bytes);

    /** Enter the next section; fatal unless it is named @p expected. */
    void openSection(const std::string &expected);

    /** Leave the section; fatal unless its payload is fully consumed. */
    void closeSection();

    /** Skip the next section wholesale; fatal unless named @p expected.
     *  Used by fork-restores that rebuild a component from its config
     *  instead of the saved state. */
    void skipSection(const std::string &expected);

    std::uint8_t getU8();
    std::uint16_t getU16();
    std::uint32_t getU32();
    std::uint64_t getU64();
    std::int64_t getI64();
    bool getBool() { return getU8() != 0; }
    double getDouble();
    std::string getString();
    std::vector<std::uint8_t> getBytes();

    /** True once every byte of the body has been consumed. */
    bool atEnd() const { return pos_ == size_; }

  private:
    /** Name of the section at pos_, advancing past its frame header
     *  and setting sectionEnd_. */
    std::string enterFrame();
    void need(std::size_t n) const;

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    std::size_t sectionEnd_ = 0;
    bool inSection_ = false;
    std::string sectionName_;
};

/**
 * A component whose complete simulated state can be serialized into a
 * snapshot section and restored bit-faithfully. Implementations pair
 * with Auditable: anything audited is state the simulation depends on,
 * so it must either snapshot or carry a reasoned analyzer suppression
 * (rule snapshot-coverage).
 */
class Snapshottable
{
  public:
    virtual ~Snapshottable() = default;

    /** Serialize complete state as one section named snapName(). */
    virtual void saveState(SnapWriter &w) const = 0;

    /** Restore state from the section saveState() wrote. The component
     *  must already be constructed with identical configuration. */
    virtual void loadState(SnapReader &r) = 0;

    /** Stable section name (also used in mismatch diagnostics). */
    virtual const char *snapName() const = 0;
};

} // namespace fdp

#endif // FDP_SIM_SNAPSHOT_HH
