#include "sim/event_queue.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace fdp
{

void
EventQueue::schedule(Cycle when, Callback fn)
{
    if (when < horizon_)
        panic("event scheduled at cycle %llu before horizon %llu",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(horizon_));
    heap_.push(Event{when, nextSeq_++, std::move(fn)});
}

void
EventQueue::serviceUntil(Cycle now)
{
    while (!heap_.empty() && heap_.top().when <= now) {
        // Move the callback out before popping: the callback may schedule
        // new events, which mutates the heap underneath a held reference.
        Event ev = heap_.top();
        heap_.pop();
        horizon_ = ev.when;
        ++serviced_;
        ev.fn();
    }
    if (now > horizon_)
        horizon_ = now;
}

Cycle
EventQueue::nextEventCycle() const
{
    return heap_.empty() ? kNoCycle : heap_.top().when;
}

void
EventQueue::reset()
{
    heap_ = {};
    nextSeq_ = 0;
    serviced_ = 0;
    horizon_ = 0;
}

namespace
{

/** Expose the protected container of a std::priority_queue. */
template <typename Pq>
const typename Pq::container_type &
heapContainer(const Pq &pq)
{
    struct Peek : Pq { using Pq::c; };
    return static_cast<const Peek &>(pq).*(&Peek::c);
}

} // namespace

void
EventQueue::audit() const
{
    const auto &events = heapContainer(heap_);
    FDP_ASSERT(std::is_heap(events.begin(), events.end(), Later{}),
               "%s: pending events violate the heap ordering", auditName());
    FDP_ASSERT(serviced_ + events.size() == nextSeq_,
               "%s: %llu serviced + %zu pending != %llu scheduled",
               auditName(), static_cast<unsigned long long>(serviced_),
               events.size(), static_cast<unsigned long long>(nextSeq_));
    for (const Event &ev : events) {
        FDP_ASSERT(ev.when >= horizon_,
                   "%s: event at cycle %llu is before horizon %llu",
                   auditName(), static_cast<unsigned long long>(ev.when),
                   static_cast<unsigned long long>(horizon_));
        FDP_ASSERT(ev.seq < nextSeq_,
                   "%s: event sequence %llu >= next sequence %llu",
                   auditName(), static_cast<unsigned long long>(ev.seq),
                   static_cast<unsigned long long>(nextSeq_));
        FDP_ASSERT(ev.fn != nullptr, "%s: pending event with no callback",
                   auditName());
    }
}

} // namespace fdp
