#include "sim/event_queue.hh"

#include <utility>

#include "sim/logging.hh"

namespace fdp
{

void
EventQueue::siftUp(std::size_t i)
{
    const Entry e = heap_[i];
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!earlier(e, heap_[parent]))
            break;
        heap_[i] = heap_[parent];
        i = parent;
    }
    heap_[i] = e;
}

void
EventQueue::siftDown(std::size_t i)
{
    const Entry e = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
        std::size_t child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n && earlier(heap_[child + 1], heap_[child]))
            ++child;
        if (!earlier(heap_[child], e))
            break;
        heap_[i] = heap_[child];
        i = child;
    }
    heap_[i] = e;
}

void
EventQueue::schedule(Cycle when, Callback fn)
{
    if (when < horizon_)
        panic("event scheduled at cycle %llu before horizon %llu",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(horizon_));
    std::uint32_t node;
    if (free_.empty()) {
        node = static_cast<std::uint32_t>(slab_.size());
        slab_.emplace_back();
        free_.reserve(slab_.capacity());
    } else {
        node = free_.back();
        free_.pop_back();
    }
    slab_[node] = std::move(fn);
    heap_.push_back(Entry{when, nextSeq_++, node});
    siftUp(heap_.size() - 1);
}

void
EventQueue::serviceUntil(Cycle now)
{
    while (!heap_.empty() && heap_.front().when <= now) {
        const Entry top = heap_.front();
        heap_.front() = heap_.back();
        heap_.pop_back();
        if (!heap_.empty())
            siftDown(0);
        horizon_ = top.when;
        ++serviced_;
        // Move the callback out before invoking it: the callback may
        // schedule new events, which recycles slab slots underneath it.
        Callback fn = std::move(slab_[top.node]);
        slab_[top.node] = nullptr;
        free_.push_back(top.node);
        fn();
    }
    if (now > horizon_)
        horizon_ = now;
}

Cycle
EventQueue::nextEventCycle() const
{
    return heap_.empty() ? kNoCycle : heap_.front().when;
}

void
EventQueue::reset()
{
    heap_.clear();
    slab_.clear();
    free_.clear();
    nextSeq_ = 0;
    serviced_ = 0;
    horizon_ = 0;
}

void
EventQueue::saveState(SnapWriter &w) const
{
    FDP_ASSERT(heap_.empty(),
               "%s: snapshot with %zu events pending (not quiesced)",
               auditName(), heap_.size());
    w.beginSection(snapName());
    w.putU64(horizon_);
    w.putU64(nextSeq_);
    w.putU64(serviced_);
    w.endSection();
}

void
EventQueue::loadState(SnapReader &r)
{
    FDP_ASSERT(heap_.empty(),
               "%s: restore into a queue with %zu events pending",
               auditName(), heap_.size());
    r.openSection(snapName());
    horizon_ = r.getU64();
    nextSeq_ = r.getU64();
    serviced_ = r.getU64();
    r.closeSection();
}

void
EventQueue::audit() const
{
    for (std::size_t i = 1; i < heap_.size(); ++i)
        FDP_ASSERT(!earlier(heap_[i], heap_[(i - 1) / 2]),
                   "%s: pending events violate the heap ordering",
                   auditName());
    FDP_ASSERT(serviced_ + heap_.size() == nextSeq_,
               "%s: %llu serviced + %zu pending != %llu scheduled",
               auditName(), static_cast<unsigned long long>(serviced_),
               heap_.size(), static_cast<unsigned long long>(nextSeq_));
    FDP_ASSERT(heap_.size() + free_.size() == slab_.size(),
               "%s: %zu pending + %zu free slots != %zu slab slots",
               auditName(), heap_.size(), free_.size(), slab_.size());

    std::vector<bool> pending(slab_.size(), false);
    for (const Entry &ev : heap_) {
        FDP_ASSERT(ev.when >= horizon_,
                   "%s: event at cycle %llu is before horizon %llu",
                   auditName(), static_cast<unsigned long long>(ev.when),
                   static_cast<unsigned long long>(horizon_));
        FDP_ASSERT(ev.seq < nextSeq_,
                   "%s: event sequence %llu >= next sequence %llu",
                   auditName(), static_cast<unsigned long long>(ev.seq),
                   static_cast<unsigned long long>(nextSeq_));
        FDP_ASSERT(ev.node < slab_.size(),
                   "%s: event names slab slot %u of %zu", auditName(),
                   ev.node, slab_.size());
        FDP_ASSERT(!pending[ev.node],
                   "%s: two pending events share slab slot %u",
                   auditName(), ev.node);
        pending[ev.node] = true;
        FDP_ASSERT(static_cast<bool>(slab_[ev.node]),
                   "%s: pending event with no callback", auditName());
    }
    for (const std::uint32_t node : free_) {
        FDP_ASSERT(node < slab_.size(),
                   "%s: freelist names slab slot %u of %zu", auditName(),
                   node, slab_.size());
        FDP_ASSERT(!pending[node],
                   "%s: slab slot %u is both pending and free",
                   auditName(), node);
        pending[node] = true;
        FDP_ASSERT(!slab_[node],
                   "%s: free slab slot %u still holds a callback",
                   auditName(), node);
    }
}

} // namespace fdp
