#include "sim/event_queue.hh"

#include <utility>

#include "sim/logging.hh"

namespace fdp
{

void
EventQueue::schedule(Cycle when, Callback fn)
{
    if (when < horizon_)
        panic("event scheduled at cycle %llu before horizon %llu",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(horizon_));
    heap_.push(Event{when, nextSeq_++, std::move(fn)});
}

void
EventQueue::serviceUntil(Cycle now)
{
    while (!heap_.empty() && heap_.top().when <= now) {
        // Move the callback out before popping: the callback may schedule
        // new events, which mutates the heap underneath a held reference.
        Event ev = heap_.top();
        heap_.pop();
        horizon_ = ev.when;
        ++serviced_;
        ev.fn();
    }
    if (now > horizon_)
        horizon_ = now;
}

Cycle
EventQueue::nextEventCycle() const
{
    return heap_.empty() ? kNoCycle : heap_.top().when;
}

void
EventQueue::reset()
{
    heap_ = {};
    nextSeq_ = 0;
    serviced_ = 0;
    horizon_ = 0;
}

} // namespace fdp
