#include "sim/check.hh"

#include <cstdlib>
#include <cstring>

namespace fdp
{

void
AuditSet::add(const Auditable *component)
{
    FDP_ASSERT(component != nullptr, "null component added to audit set");
    components_.push_back(component);
}

void
AuditSet::runAll() const
{
    for (const Auditable *c : components_)
        c->audit();
}

bool
auditRequestedByEnv()
{
    const char *v = std::getenv("FDP_AUDIT");
    return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

} // namespace fdp
