#include "sim/stats.hh"

#include <iomanip>
#include <numeric>
#include <ostream>

#include "sim/logging.hh"

namespace fdp
{

ScalarStat::ScalarStat(StatGroup &group, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    group.scalars_.push_back(this);
}

DistributionStat::DistributionStat(StatGroup &group, std::string name,
                                   std::string desc, std::size_t buckets)
    : name_(std::move(name)), desc_(std::move(desc)), buckets_(buckets, 0)
{
    group.distributions_.push_back(this);
}

void
DistributionStat::sample(std::size_t bucket, std::uint64_t count)
{
    if (bucket >= buckets_.size())
        panic("distribution %s: bucket %zu out of %zu", name_.c_str(),
              bucket, buckets_.size());
    buckets_[bucket] += count;
}

std::uint64_t
DistributionStat::total() const
{
    return std::accumulate(buckets_.begin(), buckets_.end(),
                           std::uint64_t{0});
}

double
DistributionStat::fraction(std::size_t i) const
{
    const std::uint64_t sum = total();
    return sum == 0 ? 0.0
                    : static_cast<double>(buckets_.at(i)) /
                          static_cast<double>(sum);
}

void
DistributionStat::reset()
{
    for (auto &b : buckets_)
        b = 0;
}

void
StatGroup::dump(std::ostream &out) const
{
    for (const auto *s : scalars_) {
        out << name_ << '.' << std::setw(32) << std::left << s->name()
            << ' ' << std::setw(12) << std::right << s->value() << "  # "
            << s->desc() << '\n';
    }
    for (const auto *d : distributions_) {
        for (std::size_t i = 0; i < d->numBuckets(); ++i) {
            out << name_ << '.' << d->name() << '[' << i << "] "
                << std::setw(12) << std::right << d->bucket(i) << "  # "
                << d->desc() << '\n';
        }
    }
}

void
StatGroup::resetAll()
{
    for (auto *s : scalars_)
        s->reset();
    for (auto *d : distributions_)
        d->reset();
}

void
StatGroup::saveState(SnapWriter &w) const
{
    w.beginSection(snapName());
    w.putU32(static_cast<std::uint32_t>(scalars_.size()));
    for (const auto *s : scalars_) {
        w.putString(s->name());
        w.putU64(s->value());
    }
    w.putU32(static_cast<std::uint32_t>(distributions_.size()));
    for (const auto *d : distributions_) {
        w.putString(d->name());
        w.putU32(static_cast<std::uint32_t>(d->numBuckets()));
        for (std::size_t i = 0; i < d->numBuckets(); ++i)
            w.putU64(d->bucket(i));
    }
    w.endSection();
}

void
StatGroup::loadState(SnapReader &r)
{
    r.openSection(snapName());
    const std::uint32_t nScalars = r.getU32();
    if (nScalars != scalars_.size())
        fatal("snapshot: stat group %s has %zu scalars, snapshot has %u",
              name_.c_str(), scalars_.size(), nScalars);
    for (auto *s : scalars_) {
        const std::string name = r.getString();
        if (name != s->name())
            fatal("snapshot: stat group %s expected scalar %s, found %s",
                  name_.c_str(), s->name().c_str(), name.c_str());
        s->reset();
        *s += r.getU64();
    }
    const std::uint32_t nDists = r.getU32();
    if (nDists != distributions_.size())
        fatal("snapshot: stat group %s has %zu distributions, snapshot "
              "has %u", name_.c_str(), distributions_.size(), nDists);
    for (auto *d : distributions_) {
        const std::string name = r.getString();
        if (name != d->name())
            fatal("snapshot: stat group %s expected distribution %s, "
                  "found %s", name_.c_str(), d->name().c_str(),
                  name.c_str());
        const std::uint32_t buckets = r.getU32();
        if (buckets != d->numBuckets())
            fatal("snapshot: distribution %s has %zu buckets, snapshot "
                  "has %u", d->name().c_str(), d->numBuckets(), buckets);
        d->reset();
        for (std::size_t i = 0; i < d->numBuckets(); ++i) {
            const std::uint64_t count = r.getU64();
            if (count != 0)
                d->sample(i, count);
        }
    }
    r.closeSection();
}

} // namespace fdp
