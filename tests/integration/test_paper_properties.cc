/**
 * @file
 * Directional "shape" properties from the paper's evaluation, checked on
 * shortened runs: who wins, who loses, and why (accuracy / lateness /
 * pollution classes). Absolute magnitudes are checked loosely; the
 * bench binaries report the full-size numbers.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace fdp
{
namespace
{

RunConfig
quick(RunConfig c, std::uint64_t insts = 600'000)
{
    c.numInsts = insts;
    // Scaled-down runs get proportionally shorter sampling intervals so
    // FDP completes as many adaptation steps as a full-length run.
    c.fdp.intervalEvictions = 1024;
    return c;
}

RunResult
run(const char *bench, RunConfig c, const char *label)
{
    return runBenchmark(bench, c, label);
}

TEST(PaperShape, AggressivePrefetchingHelpsStreamingCodes)
{
    for (const char *b : {"swim", "mgrid", "applu"}) {
        const auto none = run(b, quick(RunConfig::noPrefetching()), "none");
        const auto va = run(b, quick(RunConfig::staticLevelConfig(5)), "va");
        EXPECT_GT(va.ipc, none.ipc * 1.3)
            << b << ": aggressive prefetching must be a big win";
    }
}

TEST(PaperShape, StreamingCodesHaveHighAccuracy)
{
    for (const char *b : {"swim", "lucas"}) {
        const auto va = run(b, quick(RunConfig::staticLevelConfig(5)), "va");
        EXPECT_GT(va.accuracy, 0.6) << b;
    }
}

TEST(PaperShape, AggressivePrefetchingHurtsArtAndAmmp)
{
    for (const char *b : {"art", "ammp"}) {
        const auto none = run(b, quick(RunConfig::noPrefetching()), "none");
        const auto va = run(b, quick(RunConfig::staticLevelConfig(5)), "va");
        EXPECT_LT(va.ipc, none.ipc * 0.95)
            << b << ": very aggressive prefetching must lose";
        EXPECT_LT(va.accuracy, 0.45) << b << ": accuracy class is Low";
    }
}

TEST(PaperShape, McfIsAccurateButLate)
{
    const auto va = run("mcf", quick(RunConfig::staticLevelConfig(1)),
                        "vc");
    EXPECT_GT(va.accuracy, 0.7) << "mcf accuracy is near perfect";
    EXPECT_GT(va.lateness, 0.5) << "most useful prefetches are late";
}

TEST(PaperShape, LatenessDropsWithAggressiveness)
{
    // Paper Section 2.2.2: aggressive prefetching issues earlier, so
    // lateness falls as the configuration gets more aggressive.
    const auto vc = run("swim", quick(RunConfig::staticLevelConfig(1)),
                        "vc");
    const auto va = run("swim", quick(RunConfig::staticLevelConfig(5)),
                        "va");
    EXPECT_LT(va.lateness, vc.lateness);
}

TEST(PaperShape, FdpRecoversArtLoss)
{
    const auto none = run("art", quick(RunConfig::noPrefetching()), "none");
    const auto va = run("art", quick(RunConfig::staticLevelConfig(5)),
                        "va");
    const auto fdp = run("art", quick(RunConfig::fullFdp()), "fdp");
    // FDP must close most of the gap the Very Aggressive config opened.
    EXPECT_GT(fdp.ipc, va.ipc);
    EXPECT_GT(fdp.ipc, none.ipc * 0.93)
        << "FDP must not lose (much) vs no prefetching";
}

TEST(PaperShape, FdpKeepsStreamingWins)
{
    const auto va = run("swim", quick(RunConfig::staticLevelConfig(5)),
                        "va");
    const auto fdp = run("swim", quick(RunConfig::fullFdp()), "fdp");
    EXPECT_GT(fdp.ipc, va.ipc * 0.9)
        << "FDP must keep most of the aggressive-prefetching win";
}

TEST(PaperShape, FdpThrottlesDownOnArt)
{
    const auto fdp = run("art", quick(RunConfig::dynamicAggressiveness()),
                         "dyn");
    // Figure 6: art spends almost all intervals at Very Conservative.
    EXPECT_GT(fdp.levelDist[0], 0.5);
}

TEST(PaperShape, FdpStaysAggressiveOnSwim)
{
    // Streaming codes touch fresh blocks, so the L2 only starts evicting
    // (and FDP only starts sampling) after ~1.5M instructions; use a
    // longer run than the other shape checks.
    const auto fdp = run("swim",
                         quick(RunConfig::dynamicAggressiveness(), 3'000'000),
                         "dyn");
    // Figure 6: streaming codes live at Aggressive/Very Aggressive.
    EXPECT_GT(fdp.levelDist[3] + fdp.levelDist[4], 0.5);
}

TEST(PaperShape, FdpSavesBandwidthOnPollutingCodes)
{
    const auto va = run("art", quick(RunConfig::staticLevelConfig(5)),
                        "va");
    const auto fdp = run("art", quick(RunConfig::fullFdp()), "fdp");
    EXPECT_LT(fdp.bpki, va.bpki * 0.9);
}

TEST(PaperShape, DynamicInsertionBeatsLruOnStreams)
{
    // Static LRU insertion evicts prefetched blocks before use on an
    // aggressive stream (paper Section 5.2); MRU and Dynamic do not.
    const auto lru = run(
        "swim",
        quick(RunConfig::staticLevelConfig(5, InsertPos::Lru), 3'000'000),
        "lru");
    const auto dyn = run(
        "swim", quick(RunConfig::dynamicInsertion(), 3'000'000), "dyn-ins");
    EXPECT_GT(dyn.ipc, lru.ipc);
}

TEST(PaperShape, ArtPrefersLowInsertionPositions)
{
    const auto dyn = run("art", quick(RunConfig::dynamicInsertion()),
                         "dyn-ins");
    // Figure 8: polluting codes insert at/near LRU most of the time.
    EXPECT_GT(dyn.insertDist[0] + dyn.insertDist[1], 0.5);
}

TEST(PaperShape, QuietBenchmarksBarelyPrefetch)
{
    for (const char *b : {"eon", "crafty", "mesa"}) {
        const auto va = run(b, quick(RunConfig::staticLevelConfig(5)),
                            "va");
        // Paper Table 4 scaling: quiet codes send orders of magnitude
        // fewer prefetches than the memory-intensive ones.
        EXPECT_LT(va.prefSent, 6000u) << b;
    }
}

TEST(PaperShape, PrefetchingDoesNotChangeRetiredWork)
{
    const auto none = run("gap", quick(RunConfig::noPrefetching()), "none");
    const auto fdp = run("gap", quick(RunConfig::fullFdp()), "fdp");
    EXPECT_EQ(none.insts, fdp.insts);
}

} // namespace
} // namespace fdp
