/**
 * @file
 * End-to-end tests of the experiment harness: full machine runs on the
 * synthetic suite with every prefetcher and policy variant.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "harness/reporting.hh"

namespace fdp
{
namespace
{

RunConfig
quick(RunConfig c, std::uint64_t insts = 400'000)
{
    c.numInsts = insts;
    return c;
}

TEST(EndToEnd, NoPrefetchingRunCompletes)
{
    const auto r = runBenchmark("swim", quick(RunConfig::noPrefetching()),
                                "none");
    EXPECT_EQ(r.insts, 400'000u);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_EQ(r.prefSent, 0u);
    EXPECT_GT(r.busAccesses, 0u);
}

TEST(EndToEnd, StaticConfigsRun)
{
    for (unsigned level : {1u, 3u, 5u}) {
        const auto r = runBenchmark(
            "mgrid", quick(RunConfig::staticLevelConfig(level)), "static");
        EXPECT_GT(r.ipc, 0.0) << "level " << level;
        EXPECT_GT(r.prefSent, 0u) << "level " << level;
    }
}

TEST(EndToEnd, FdpRunProducesDistributions)
{
    // art fills the L2 quickly (15K-block reuse set), so sampling
    // intervals complete even in a shortened run.
    RunConfig c = quick(RunConfig::fullFdp(), 800'000);
    c.fdp.intervalEvictions = 1024;
    const auto r = runBenchmark("art", c, "fdp");
    double level_total = 0.0;
    for (const double f : r.levelDist)
        level_total += f;
    EXPECT_NEAR(level_total, 1.0, 1e-9);  // intervals happened
    double ins_total = 0.0;
    for (const double f : r.insertDist)
        ins_total += f;
    EXPECT_NEAR(ins_total, 1.0, 1e-9);  // prefetch fills happened
}

TEST(EndToEnd, GhbPrefetcherRuns)
{
    RunConfig c = quick(RunConfig::staticLevelConfig(3));
    c.prefetcher = PrefetcherKind::GhbCdc;
    const auto r = runBenchmark("swim", c, "ghb");
    EXPECT_GT(r.prefSent, 0u);
    EXPECT_GT(r.accuracy, 0.3);
}

TEST(EndToEnd, StridePrefetcherRuns)
{
    RunConfig c = quick(RunConfig::staticLevelConfig(3));
    c.prefetcher = PrefetcherKind::Stride;
    const auto r = runBenchmark("swim", c, "stride");
    EXPECT_GT(r.prefSent, 0u);
}

TEST(EndToEnd, PrefetchCacheModeRuns)
{
    RunConfig c = quick(RunConfig::staticLevelConfig(5));
    c.machine.prefetchCache.enabled = true;
    c.machine.prefetchCache.sizeBytes = 32 * 1024;
    const auto r = runBenchmark("swim", c, "pcache");
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_DOUBLE_EQ(r.pollution, 0.0);
}

TEST(EndToEnd, ResultsAreReproducible)
{
    const auto a = runBenchmark("art", quick(RunConfig::fullFdp()), "fdp");
    const auto b = runBenchmark("art", quick(RunConfig::fullFdp()), "fdp");
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.busAccesses, b.busAccesses);
    EXPECT_EQ(a.prefSent, b.prefSent);
}

TEST(EndToEnd, RunSuiteShapesMatch)
{
    const std::vector<std::string> names = {"swim", "art"};
    const auto results =
        runSuite(names, quick(RunConfig::noPrefetching(), 100'000), "none");
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].benchmark, "swim");
    EXPECT_EQ(results[1].benchmark, "art");
}

TEST(EndToEnd, MetricTableBuilds)
{
    const std::vector<std::string> names = {"swim"};
    std::vector<std::vector<RunResult>> results;
    results.push_back(
        runSuite(names, quick(RunConfig::noPrefetching(), 100'000), "none"));
    results.push_back(runSuite(
        names, quick(RunConfig::staticLevelConfig(5), 100'000), "va"));
    Table t = buildMetricTable("demo", names, {"none", "va"}, results,
                               metricIpc, 2, MeanKind::Geometric);
    EXPECT_EQ(t.numRows(), 2u);  // one benchmark + gmean
}

TEST(EndToEnd, BpkiConsistentWithBusAccesses)
{
    const auto r = runBenchmark(
        "swim", quick(RunConfig::staticLevelConfig(5), 200'000), "va");
    EXPECT_NEAR(r.bpki,
                static_cast<double>(r.busAccesses) /
                    (static_cast<double>(r.insts) / 1000.0),
                1e-9);
}

TEST(EndToEnd, InstructionBudgetParsing)
{
    const char *argv1[] = {"bench", "--quick"};
    EXPECT_EQ(instructionBudget(2, const_cast<char **>(argv1), 5'000'000),
              1'000'000u);
    const char *argv2[] = {"bench", "--insts", "123456"};
    EXPECT_EQ(instructionBudget(3, const_cast<char **>(argv2), 5'000'000),
              123456u);
    const char *argv3[] = {"bench"};
    EXPECT_EQ(instructionBudget(1, const_cast<char **>(argv3), 5'000'000),
              5'000'000u);
}

} // namespace
} // namespace fdp
