/**
 * @file
 * Dynamic-behavior integration tests: FDP's adaptation over program
 * phases, monotone responses to machine parameters, and the prefetch
 * cache / FDP interaction - the behaviors behind paper Sections 3.2,
 * 5.7, and Table 7.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/fdp_controller.hh"
#include "cpu/ooo_core.hh"
#include "harness/experiment.hh"
#include "mem/memory_system.hh"
#include "prefetch/stream_prefetcher.hh"
#include "workload/generators.hh"
#include "workload/spec_suite.hh"

namespace fdp
{
namespace
{

SyntheticParams
streamingPhase()
{
    SyntheticParams p;
    p.name = "streaming";
    p.pStream = 0.08;
    p.numStreams = 4;
    p.streamLenBlocks = 8192;
    p.seed = 11;
    return p;
}

SyntheticParams
pollutingPhase()
{
    SyntheticParams p;
    p.name = "polluting";
    p.pStream = 0.06;
    p.numStreams = 8;
    p.streamLenBlocks = 6;
    p.pHot = 0.48;
    p.hotBlocks = 15360;
    p.hotPattern = SyntheticParams::HotPattern::Sweep;
    p.seed = 12;
    return p;
}

TEST(FdpDynamics, TracksAlternatingPhases)
{
    PhasedWorkload workload(
        std::make_unique<SyntheticWorkload>(streamingPhase()),
        std::make_unique<SyntheticWorkload>(pollutingPhase()),
        4'000'000, "phased");

    EventQueue events;
    StatGroup fs("fdp"), ms("mem"), cs("core");
    StreamPrefetcher prefetcher;
    FdpParams params;
    params.intervalEvictions = 1024;
    FdpController fdp(params, &prefetcher, fs);
    MemorySystem mem(MachineParams{}, events, &prefetcher, fdp, ms);
    OooCore core(CoreParams{}, mem, events, workload, cs);

    // End of first (streaming) phase: ramped up.
    core.run(4'000'000);
    EXPECT_GE(fdp.level(), 4u) << "should ramp up on accurate streams";

    // Into the polluting phase: throttled down.
    core.run(1'000'000);
    EXPECT_LE(fdp.level(), 2u) << "should throttle down on pollution";

    // Back in the streaming phase: recovered.
    core.run(3'500'000);
    EXPECT_GE(fdp.level(), 4u) << "should recover when the phase ends";
}

TEST(FdpDynamics, LongerMemoryLatencyLowersIpc)
{
    double prev = 1e9;
    for (const Cycle lat : {250u, 500u, 1000u}) {
        RunConfig c = RunConfig::fullFdp();
        c.machine.dram = DramParams::withUnloadedLatency(lat);
        c.numInsts = 400'000;
        const auto r = runBenchmark("facerec", c, "fdp");
        EXPECT_LT(r.ipc, prev) << "latency " << lat;
        prev = r.ipc;
    }
}

TEST(FdpDynamics, SmallerL2HurtsReuseHeavyCode)
{
    RunConfig small = RunConfig::noPrefetching();
    small.machine.l2.sizeBytes = 256 * 1024;
    small.numInsts = 1'000'000;
    RunConfig big = RunConfig::noPrefetching();
    big.numInsts = 1'000'000;
    const auto rs = runBenchmark("art", small, "small");
    const auto rb = runBenchmark("art", big, "big");
    // art's reuse set fits a 1MB L2 but not a 256KB one.
    EXPECT_LT(rs.ipc, rb.ipc * 0.9);
}

TEST(FdpDynamics, PrefetchCacheAvoidsPollutionOnArt)
{
    RunConfig va = RunConfig::staticLevelConfig(5);
    va.numInsts = 1'500'000;
    RunConfig pc = va;
    pc.machine.prefetchCache.enabled = true;
    pc.machine.prefetchCache.sizeBytes = 64 * 1024;
    const auto rva = runBenchmark("art", va, "va");
    const auto rpc = runBenchmark("art", pc, "va+pcache");
    EXPECT_DOUBLE_EQ(rpc.pollution, 0.0);
    EXPECT_GT(rpc.ipc, rva.ipc)
        << "a prefetch cache must shield art from pollution";
}

TEST(FdpDynamics, TinyPrefetchCacheLosesToL2Fills)
{
    // Paper Section 5.7: a 2KB prefetch cache thrashes under an
    // aggressive prefetcher - prefetched blocks are displaced before
    // use, so it performs worse than prefetching into the L2.
    RunConfig base = RunConfig::staticLevelConfig(5);
    base.numInsts = 1'500'000;
    RunConfig tiny = base;
    tiny.machine.prefetchCache.enabled = true;
    tiny.machine.prefetchCache.sizeBytes = 2 * 1024;
    tiny.machine.prefetchCache.assoc = 0;  // fully associative
    const auto rb = runBenchmark("facerec", base, "va");
    const auto rt = runBenchmark("facerec", tiny, "va+2kb");
    EXPECT_LT(rt.ipc, rb.ipc);
}

TEST(FdpDynamics, ThresholdsShiftThrottlingBehavior)
{
    // Pushing both accuracy thresholds above 1 classifies every interval
    // as Low accuracy, whose Table 2 rows never increment: the counter
    // can then never exceed its start value.
    RunConfig strict = RunConfig::dynamicAggressiveness();
    strict.fdp.thresholds.aHigh = 1.1;  // "high" is now unreachable...
    strict.fdp.thresholds.aLow = 1.05;  // ...and so is "medium"
    strict.fdp.intervalEvictions = 1024;
    strict.numInsts = 2'500'000;
    const auto r = runBenchmark("facerec", strict, "strict");
    EXPECT_DOUBLE_EQ(r.levelDist[3] + r.levelDist[4], 0.0);
}

TEST(FdpDynamics, IntervalCountScalesWithIntervalLength)
{
    RunConfig short_iv = RunConfig::fullFdp();
    short_iv.fdp.intervalEvictions = 512;
    short_iv.numInsts = 1'200'000;
    RunConfig long_iv = short_iv;
    long_iv.fdp.intervalEvictions = 4096;
    const auto rs = runBenchmark("art", short_iv, "short");
    const auto rl = runBenchmark("art", long_iv, "long");
    // Same run length, 8x shorter intervals => ~8x more samples; check
    // via the level distribution being nonempty for both and the short
    // one adapting at least as tightly (art ends throttled).
    EXPECT_GT(rs.levelDist[0] + rs.levelDist[1], 0.5);
    EXPECT_GT(rl.levelDist[0] + rl.levelDist[1] + rl.levelDist[2], 0.0);
}

} // namespace
} // namespace fdp
