/**
 * @file
 * Death tests proving every audit() actually catches corruption.
 *
 * Each test builds a component in a healthy (and where needed, populated)
 * state, verifies the clean audit passes, then flips exactly one private
 * field through the AuditCorrupter backdoor and expects the audit to
 * panic with the matching diagnostic. This is the negative half of the
 * invariant layer: without it a vacuous audit() would pass silently.
 */

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "support/corrupt.hh"
#include "trace/trace_writer.hh"

namespace fdp
{
namespace
{

// ---------------------------------------------------------------------------
// SetAssocCache
// ---------------------------------------------------------------------------

SetAssocCache
smallCache()
{
    CacheParams p;
    p.name = "testcache";
    p.sizeBytes = 4 * 1024;
    p.assoc = 4;
    SetAssocCache cache(p);
    cache.insert(0x100, false, InsertPos::Mru, false);
    cache.insert(0x200, true, InsertPos::Lru, false);
    return cache;
}

TEST(CacheAudit, CleanCachePasses)
{
    SetAssocCache cache = smallCache();
    cache.audit();
}

TEST(CacheAuditDeathTest, DuplicatedStackEntryCaught)
{
    SetAssocCache cache = smallCache();
    AuditCorrupter::cacheDuplicateStackEntry(cache);
    EXPECT_DEATH(cache.audit(), "recency stack holds");
}

TEST(CacheAuditDeathTest, DroppedStackEntryCaught)
{
    SetAssocCache cache = smallCache();
    AuditCorrupter::cacheDropStackEntry(cache);
    EXPECT_DEATH(cache.audit(), "recency stack holds");
}

// ---------------------------------------------------------------------------
// MshrFile
// ---------------------------------------------------------------------------

TEST(MshrAudit, CleanFilePasses)
{
    MshrFile mshrs(4);
    mshrs.allocate(0x40, false, 0);
    mshrs.audit();
}

TEST(MshrAuditDeathTest, KeyBlockMismatchCaught)
{
    MshrFile mshrs(4);
    mshrs.allocate(0x40, false, 0);
    AuditCorrupter::mshrMismatchKey(mshrs);
    EXPECT_DEATH(mshrs.audit(), "records block");
}

TEST(MshrAuditDeathTest, PrefetchEntryWithWaiterCaught)
{
    MshrFile mshrs(4);
    mshrs.allocate(0x40, false, 0);
    AuditCorrupter::mshrPrefetchWithWaiter(mshrs);
    EXPECT_DEATH(mshrs.audit(), "demand waiters");
}

// ---------------------------------------------------------------------------
// EventQueue
// ---------------------------------------------------------------------------

TEST(EventQueueAudit, CleanQueuePasses)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.audit();
}

TEST(EventQueueAuditDeathTest, EventBeforeHorizonCaught)
{
    EventQueue q;
    q.schedule(10, [] {});
    AuditCorrupter::eventQueuePastEvent(q);
    EXPECT_DEATH(q.audit(), "is before horizon");
}

TEST(EventQueueAuditDeathTest, BrokenAccountingCaught)
{
    EventQueue q;
    q.schedule(10, [] {});
    AuditCorrupter::eventQueueLoseEvent(q);
    EXPECT_DEATH(q.audit(), "scheduled");
}

// ---------------------------------------------------------------------------
// DramModel
// ---------------------------------------------------------------------------

struct DramUnderAudit
{
    EventQueue events;
    StatGroup stats{"dram"};
    DramModel dram{DramParams{}, events, stats};

    DramUnderAudit()
    {
        dram.enqueue(0x100, BusPriority::Demand, 0, [](Cycle) {});
        dram.enqueue(0x200, BusPriority::Prefetch, 0, [](Cycle) {});
        dram.enqueue(0x300, BusPriority::Writeback, 0, nullptr);
    }
};

TEST(DramAudit, CleanModelPasses)
{
    DramUnderAudit d;
    d.dram.audit();
    d.events.serviceUntil(1000000);
    d.dram.audit();
}

TEST(DramAuditDeathTest, OverfullBusQueueCaught)
{
    DramUnderAudit d;
    AuditCorrupter::dramOverfillQueue(d.dram);
    EXPECT_DEATH(d.dram.audit(), "bus queue holds");
}

TEST(DramAuditDeathTest, LostPumpEventCaught)
{
    DramUnderAudit d;
    AuditCorrupter::dramLosePump(d.dram);
    EXPECT_DEATH(d.dram.audit(), "no pump scheduled");
}

// ---------------------------------------------------------------------------
// DramController
// ---------------------------------------------------------------------------

struct DramCtrlUnderAudit
{
    EventQueue events;
    StatGroup stats{"dramctl"};
    DramController dram;

    DramCtrlUnderAudit()
        : dram(DramParams{},
               [] {
                   DramCtrlParams c;
                   c.kind = DramKind::Controller;
                   c.channels = 2;
                   return c;
               }(),
               events, stats, 2)
    {
        // One of each request kind, plus a second-core prefetch, spread
        // over both channels so every queue invariant has work to check.
        dram.enqueue(0x100, BusPriority::Demand, 0, [](Cycle) {});
        dram.enqueue(0x101, BusPriority::Demand, 0, [](Cycle) {});
        dram.enqueue(0x200, BusPriority::Prefetch, 0, [](Cycle) {},
                     kCore0, PrefetchTier::Medium);
        dram.enqueue(0x201, BusPriority::Prefetch, 0, [](Cycle) {},
                     CoreId(1), PrefetchTier::Low);
        dram.enqueue(0x300, BusPriority::Writeback, 0, nullptr);
    }
};

TEST(DramCtrlAudit, CleanControllerPasses)
{
    DramCtrlUnderAudit d;
    d.dram.audit();
    d.events.serviceUntil(1000000);
    d.dram.audit();
}

TEST(DramCtrlAuditDeathTest, OverfullReadQueueCaught)
{
    DramCtrlUnderAudit d;
    AuditCorrupter::dramCtrlOverfillQueue(d.dram);
    EXPECT_DEATH(d.dram.audit(), "read queue holds");
}

TEST(DramCtrlAuditDeathTest, LostPumpEventCaught)
{
    DramCtrlUnderAudit d;
    AuditCorrupter::dramCtrlLosePump(d.dram);
    EXPECT_DEATH(d.dram.audit(), "no pump");
}

TEST(DramCtrlAuditDeathTest, ChannelOccupancyDesyncCaught)
{
    DramCtrlUnderAudit d;
    AuditCorrupter::dramCtrlBreakChannelBusy(d.dram);
    EXPECT_DEATH(d.dram.audit(), "occupancies sum");
}

TEST(DramCtrlAuditDeathTest, MisroutedRequestCaught)
{
    DramCtrlUnderAudit d;
    AuditCorrupter::dramCtrlMisrouteRequest(d.dram);
    EXPECT_DEATH(d.dram.audit(), "routes");
}

TEST(DramCtrlAuditDeathTest, CoreAttributionDesyncCaught)
{
    DramCtrlUnderAudit d;
    AuditCorrupter::dramCtrlBreakCoreSum(d.dram);
    EXPECT_DEATH(d.dram.audit(), "per-core bus accesses sum");
}

// ---------------------------------------------------------------------------
// PollutionFilter
// ---------------------------------------------------------------------------

TEST(PollutionFilterAudit, CleanFilterPasses)
{
    PollutionFilter filter(64);
    filter.onDemandBlockEvictedByPrefetch(0x123);
    filter.audit();
}

TEST(PollutionFilterAuditDeathTest, BrokenMaskCaught)
{
    PollutionFilter filter(64);
    AuditCorrupter::filterBreakMask(filter);
    EXPECT_DEATH(filter.audit(), "index mask");
}

// ---------------------------------------------------------------------------
// FeedbackCounters
// ---------------------------------------------------------------------------

TEST(FeedbackCountersAudit, CleanCountersPass)
{
    FeedbackCounters c;
    c.onPrefetchSent();
    c.onPrefetchUsed();
    c.onLatePrefetch();
    c.endInterval();
    c.audit();
}

TEST(FeedbackCountersAuditDeathTest, NegativeSmoothedValueCaught)
{
    FeedbackCounters c;
    AuditCorrupter::countersNegativeSmoothed(c);
    EXPECT_DEATH(c.audit(), "finite");
}

TEST(FeedbackCountersAuditDeathTest, LateExceedingUsedCaught)
{
    FeedbackCounters c;
    AuditCorrupter::countersLateExceedsUsed(c);
    EXPECT_DEATH(c.audit(), "used this interval");
}

// ---------------------------------------------------------------------------
// FdpController
// ---------------------------------------------------------------------------

TEST(FdpControllerAudit, CleanControllerPasses)
{
    StatGroup stats("fdp");
    FdpController fdp(FdpParams{}, nullptr, stats);
    fdp.audit();
}

TEST(FdpControllerAuditDeathTest, LevelOutOfRangeCaught)
{
    StatGroup stats("fdp");
    FdpController fdp(FdpParams{}, nullptr, stats);
    AuditCorrupter::controllerBadLevel(fdp);
    EXPECT_DEATH(fdp.audit(), "outside");
}

TEST(FdpControllerAuditDeathTest, IllegalInsertPosCaught)
{
    StatGroup stats("fdp");
    FdpController fdp(FdpParams{}, nullptr, stats);
    AuditCorrupter::controllerBadInsertPos(fdp);
    EXPECT_DEATH(fdp.audit(), "not a legal InsertPos");
}

TEST(FdpControllerAuditDeathTest, UsedExceedingSentCaught)
{
    StatGroup stats("fdp");
    FdpController fdp(FdpParams{}, nullptr, stats);
    AuditCorrupter::controllerUsedExceedsSent(fdp);
    EXPECT_DEATH(fdp.audit(), "used but only");
}

TEST(FdpControllerAuditDeathTest, PrefetcherLevelDisagreementCaught)
{
    StatGroup stats("fdp");
    StreamPrefetcher pf;
    FdpParams fp;
    fp.dynamicAggressiveness = true;
    FdpController fdp(fp, &pf, stats);
    pf.setAggressiveness(fdp.level() == 5 ? 1 : 5);
    EXPECT_DEATH(fdp.audit(), "prefetcher runs at level");
}

// ---------------------------------------------------------------------------
// Prefetchers
// ---------------------------------------------------------------------------

TEST(StreamAudit, CleanPrefetcherPasses)
{
    StreamPrefetcher pf;
    std::vector<BlockAddr> out;
    for (Addr a = 0x10000; a < 0x10400; a += 0x40)
        pf.observe({a, a >> 6, 0x1000, true}, out);
    pf.audit();
}

TEST(StreamAuditDeathTest, ZeroDirectionCaught)
{
    StreamPrefetcher pf;
    AuditCorrupter::streamZeroDirection(pf);
    EXPECT_DEATH(pf.audit(), "has direction 0");
}

TEST(StreamAuditDeathTest, IllegalStateCaught)
{
    StreamPrefetcher pf;
    AuditCorrupter::streamIllegalState(pf);
    EXPECT_DEATH(pf.audit(), "illegal state");
}

TEST(GhbAudit, CleanPrefetcherPasses)
{
    GhbPrefetcher pf;
    std::vector<BlockAddr> out;
    for (Addr a = 0x10000; a < 0x10400; a += 0x80)
        pf.observe({a, a >> 6, 0x1000, true}, out);
    pf.audit();
}

TEST(GhbAuditDeathTest, LinkCycleCaught)
{
    GhbPrefetcher pf;
    std::vector<BlockAddr> out;
    pf.observe({0x10000, 0x10000 >> 6, 0x1000, true}, out);
    AuditCorrupter::ghbLinkCycle(pf);
    EXPECT_DEATH(pf.audit(), "links forward");
}

TEST(StrideAudit, CleanPrefetcherPasses)
{
    StridePrefetcher pf;
    std::vector<BlockAddr> out;
    for (Addr a = 0x10000; a < 0x10400; a += 0x40)
        pf.observe({a, a >> 6, 0x1000, true}, out);
    pf.audit();
}

TEST(StrideAuditDeathTest, EntryInWrongSlotCaught)
{
    StridePrefetcher pf;
    AuditCorrupter::strideWrongSlot(pf);
    EXPECT_DEATH(pf.audit(), "hashes");
}

TEST(VldpAudit, CleanPrefetcherPasses)
{
    VldpPrefetcher pf;
    std::vector<BlockAddr> out;
    for (Addr a = 0x10000; a < 0x10400; a += 0x40)
        pf.observe({a, a >> 6, 0x1000, true}, out);
    pf.audit();
}

TEST(VldpAuditDeathTest, DptEntryInWrongSlotCaught)
{
    VldpPrefetcher pf;
    AuditCorrupter::vldpDptWrongSlot(pf);
    EXPECT_DEATH(pf.audit(), "hashes");
}

TEST(DspatchAudit, CleanPrefetcherPasses)
{
    DspatchPrefetcher pf;
    std::vector<BlockAddr> out;
    for (Addr a = 0x10000; a < 0x14000; a += 0x240)
        pf.observe({a, a >> 6, 0x1000, true}, out);
    pf.audit();
}

TEST(DspatchAuditDeathTest, LostTriggerBitCaught)
{
    DspatchPrefetcher pf;
    AuditCorrupter::dspatchLoseTriggerBit(pf);
    EXPECT_DEATH(pf.audit(), "lost its trigger bit");
}

TEST(NextLineAudit, CleanPrefetcherPasses)
{
    NextLinePrefetcher pf;
    std::vector<BlockAddr> out;
    pf.observe({0x10000, 0x10000 >> 6, 0x1000, true}, out);
    pf.audit();
}

TEST(NextLineAuditDeathTest, BadLevelCaught)
{
    NextLinePrefetcher pf;
    AuditCorrupter::nextlineBadLevel(pf);
    EXPECT_DEATH(pf.audit(), "outside");
}

// ---------------------------------------------------------------------------
// ManagedPrefetcher (the runtime management layer over a real zoo)
// ---------------------------------------------------------------------------

ManagedPrefetcher
smallManager()
{
    std::vector<std::unique_ptr<Prefetcher>> zoo;
    zoo.push_back(std::make_unique<StreamPrefetcher>());
    zoo.push_back(std::make_unique<StridePrefetcher>());
    return ManagedPrefetcher(ManagerParams{}, std::move(zoo));
}

TEST(ManagerAudit, CleanManagerPasses)
{
    ManagedPrefetcher mgr = smallManager();
    std::vector<BlockAddr> out;
    for (Addr a = 0x10000; a < 0x10400; a += 0x40)
        mgr.observe({a, a >> 6, 0x1000, true}, out);
    mgr.intervalTick({0.5, 0.1, 0.0, 1000, 2000});
    mgr.audit();
}

TEST(ManagerAuditDeathTest, ActiveIndexOutsideZooCaught)
{
    ManagedPrefetcher mgr = smallManager();
    AuditCorrupter::managerBadActive(mgr);
    EXPECT_DEATH(mgr.audit(), "outside zoo");
}

TEST(ManagerAuditDeathTest, ExploreCursorDesyncCaught)
{
    ManagedPrefetcher mgr = smallManager();
    AuditCorrupter::managerExploreDesync(mgr);
    EXPECT_DEATH(mgr.audit(), "is live");
}

// ---------------------------------------------------------------------------
// TraceReader
// ---------------------------------------------------------------------------

/** A small but real sealed trace to audit against. */
std::string
auditTracePath()
{
    const std::string path = testing::TempDir() + "audit_trace.fdptrace";
    TraceWriter writer(path, "audit", 7);
    for (unsigned i = 0; i < 100; ++i)
        writer.append({OpKind::Load, 0x1000 + 64ull * i, 0x4000, false});
    writer.finish();
    return path;
}

TEST(TraceReaderAudit, CleanReaderPasses)
{
    TraceReader reader(auditTracePath());
    reader.audit();
    MicroOp op;
    while (reader.next(op)) {
    }
    reader.audit();
}

TEST(TraceReaderAuditDeathTest, BufferOverrunCaught)
{
    TraceReader reader(auditTracePath());
    AuditCorrupter::traceReaderBufferOverrun(reader);
    EXPECT_DEATH(reader.audit(), "buffer cursor");
}

TEST(TraceReaderAuditDeathTest, RecordCountOverflowCaught)
{
    TraceReader reader(auditTracePath());
    AuditCorrupter::traceReaderCountOverflow(reader);
    EXPECT_DEATH(reader.audit(), "delivered");
}

TEST(TraceReaderAuditDeathTest, ConsumedAheadOfFetchedCaught)
{
    TraceReader reader(auditTracePath());
    AuditCorrupter::traceReaderConsumedAheadOfFetched(reader);
    EXPECT_DEATH(reader.audit(), "fetched bytes");
}

// ---------------------------------------------------------------------------
// MemorySystem (delegating audit over the whole hierarchy)
// ---------------------------------------------------------------------------

struct SystemUnderAudit
{
    EventQueue events;
    StatGroup fdp_stats{"fdp"};
    StatGroup mem_stats{"mem"};
    std::unique_ptr<FdpController> fdp;
    std::unique_ptr<MemorySystem> mem;

    SystemUnderAudit()
    {
        FdpParams fp;
        fp.dynamicAggressiveness = false;
        fdp = std::make_unique<FdpController>(fp, nullptr, fdp_stats);
        mem = std::make_unique<MemorySystem>(MachineParams{}, events,
                                             nullptr, *fdp, mem_stats);
        mem->demandAccess(0x100000, 0x1000, false, 0, [](Cycle) {});
        events.serviceUntil(1000000);
    }
};

TEST(MemorySystemAudit, CleanSystemPasses)
{
    SystemUnderAudit s;
    s.mem->audit();
}

TEST(MemorySystemAuditDeathTest, OverfullPrefetchQueueCaught)
{
    SystemUnderAudit s;
    AuditCorrupter::memorySystemOverfillQueue(*s.mem);
    EXPECT_DEATH(s.mem->audit(), "prefetch request queue holds");
}

TEST(MemorySystemAuditDeathTest, NestedL2CorruptionCaught)
{
    SystemUnderAudit s;
    AuditCorrupter::memorySystemCorruptL2(*s.mem);
    EXPECT_DEATH(s.mem->audit(), "L2: set");
}

// ---------------------------------------------------------------------------
// McMemorySystem (core-id tagging and stat-scoping conservation)
// ---------------------------------------------------------------------------

struct McSystemUnderAudit
{
    EventQueue events;
    StatGroup shared_stats{"mem"};
    std::deque<StatGroup> core_stats;
    std::deque<FdpController> fdps;
    std::unique_ptr<McMemorySystem> mem;

    McSystemUnderAudit()
    {
        std::vector<Prefetcher *> pf_ptrs;
        std::vector<FdpController *> fdp_ptrs;
        std::vector<StatGroup *> group_ptrs;
        for (unsigned i = 0; i < 2; ++i) {
            core_stats.emplace_back("c" + std::to_string(i));
            FdpParams fp;
            fp.dynamicAggressiveness = false;
            fp.label = "fdp_controller.c" + std::to_string(i);
            fdps.emplace_back(fp, nullptr, core_stats.back());
            pf_ptrs.push_back(nullptr);
            fdp_ptrs.push_back(&fdps.back());
            group_ptrs.push_back(&core_stats.back());
        }
        mem = std::make_unique<McMemorySystem>(MachineParams{}, events,
                                               pf_ptrs, fdp_ptrs,
                                               shared_stats, group_ptrs);
        mem->demandAccess(CoreId(0), 0x100000, 0x1000, false, 0,
                          [](Cycle) {});
        mem->demandAccess(CoreId(1), 0x900000, 0x2000, false, 0,
                          [](Cycle) {});
        events.serviceUntil(1000000);
    }
};

TEST(McMemorySystemAudit, CleanSystemPasses)
{
    McSystemUnderAudit s;
    s.mem->audit();
}

TEST(McMemorySystemAuditDeathTest, QueuedDemandWithBadCoreTagCaught)
{
    McSystemUnderAudit s;
    AuditCorrupter::mcTagQueuedDemandBadCore(*s.mem);
    EXPECT_DEATH(s.mem->audit(), "queued demand tagged with core");
}

TEST(McMemorySystemAuditDeathTest, OverfullPerCorePrefetchQueueCaught)
{
    McSystemUnderAudit s;
    AuditCorrupter::mcOverfillPrefetchQueue(*s.mem);
    EXPECT_DEATH(s.mem->audit(), "prefetch request queue holds");
}

TEST(McMemorySystemAuditDeathTest, BrokenStatConservationCaught)
{
    McSystemUnderAudit s;
    AuditCorrupter::mcBreakStatConservation(*s.mem);
    EXPECT_DEATH(s.mem->audit(), "shared total");
}

TEST(McMemorySystemAuditDeathTest, DesynchronizedIntervalsCaught)
{
    McSystemUnderAudit s;
    AuditCorrupter::controllerSkipInterval(s.fdps.back());
    EXPECT_DEATH(s.mem->audit(), "sampling intervals");
}

} // namespace
} // namespace fdp
