/**
 * @file
 * Workload mixes: named-mix catalog sanity, per-core address-slice
 * rebasing, deterministic duplicate-seed perturbation, and the
 * alone-baseline stream contract (co-run stream == alone stream + the
 * core's slice base).
 */

#include <gtest/gtest.h>

#include <set>

#include "mc/workload_mix.hh"
#include "workload/spec_suite.hh"

namespace fdp
{
namespace
{

MixSpec
benchMix(std::vector<std::string> names)
{
    MixSpec spec;
    spec.name = "test-mix";
    for (auto &n : names)
        spec.entries.push_back(MixEntry{std::move(n), ""});
    return spec;
}

TEST(WorkloadMix, NamedMixesAreWellFormed)
{
    const auto &mixes = namedMixes();
    ASSERT_FALSE(mixes.empty());
    std::set<std::string> names;
    for (const MixSpec &m : mixes) {
        EXPECT_TRUE(names.insert(m.name).second) << m.name;
        EXPECT_GE(m.numCores(), 2u) << m.name;
        for (const MixEntry &e : m.entries) {
            EXPECT_FALSE(e.benchmark.empty()) << m.name;
            EXPECT_TRUE(e.tracePath.empty()) << m.name;
            // Unknown benchmark names would be fatal here.
            benchmarkParams(e.benchmark);
        }
    }
}

TEST(WorkloadMix, CatalogHasTwoAndFourCoreMixes)
{
    bool two = false, four = false;
    for (const MixSpec &m : namedMixes()) {
        two = two || m.numCores() == 2;
        four = four || m.numCores() == 4;
    }
    EXPECT_TRUE(two);
    EXPECT_TRUE(four);
}

TEST(WorkloadMix, CatalogHasEightAndSixteenCoreMixes)
{
    // The memory-controller co-runs (DESIGN.md §18) need mixes wide
    // enough to oversubscribe a multi-channel bus.
    EXPECT_EQ(mixByName("mix8-bw").numCores(), 8u);
    EXPECT_EQ(mixByName("mix8-mixed").numCores(), 8u);
    EXPECT_EQ(mixByName("mix16-bw").numCores(), 16u);
}

TEST(WorkloadMix, MixByNameRoundTripsAndRejectsUnknown)
{
    for (const MixSpec &m : namedMixes())
        EXPECT_EQ(mixByName(m.name).name, m.name);
    EXPECT_EXIT(mixByName("no-such-mix"), testing::ExitedWithCode(1),
                "unknown mix");
}

TEST(WorkloadMix, CoRunStreamsLiveInDisjointSlices)
{
    const auto workloads = buildMixWorkloads(benchMix({"swim", "art"}));
    ASSERT_EQ(workloads.size(), 2u);
    for (unsigned c = 0; c < 2; ++c) {
        const Addr lo = kCoreAddrStride * c;
        const Addr hi = lo + kCoreAddrStride;
        for (int i = 0; i < 5000; ++i) {
            const MicroOp op = workloads[c]->next();
            if (op.kind == OpKind::Int)
                continue;
            EXPECT_GE(op.addr, lo);
            EXPECT_LT(op.addr, hi);
        }
    }
}

TEST(WorkloadMix, AloneStreamMatchesCoRunStreamModuloBase)
{
    const MixSpec spec = benchMix({"swim", "mgrid"});
    const auto corun = buildMixWorkloads(spec);
    for (unsigned c = 0; c < 2; ++c) {
        const auto alone = buildAloneWorkload(spec.entries[c], 0);
        const Addr base = kCoreAddrStride * c;
        for (int i = 0; i < 5000; ++i) {
            const MicroOp a = alone->next();
            const MicroOp b = corun[c]->next();
            ASSERT_EQ(a.kind, b.kind) << "op " << i;
            ASSERT_EQ(a.pc, b.pc) << "op " << i;
            if (a.kind != OpKind::Int) {
                ASSERT_EQ(a.addr + base, b.addr) << "op " << i;
            }
        }
    }
}

TEST(WorkloadMix, DuplicateBenchmarksGetDistinctStreams)
{
    const auto workloads = buildMixWorkloads(benchMix({"swim", "swim"}));
    // Both copies rebased back to a common origin must still diverge:
    // the duplicate runs a deterministically perturbed seed.
    bool diverged = false;
    for (int i = 0; i < 5000 && !diverged; ++i) {
        const MicroOp a = workloads[0]->next();
        const MicroOp b = workloads[1]->next();
        if (a.kind != b.kind)
            diverged = true;
        else if (a.kind != OpKind::Int &&
                 a.addr != b.addr - kCoreAddrStride)
            diverged = true;
    }
    EXPECT_TRUE(diverged);
}

TEST(WorkloadMix, DuplicatePerturbationIsDeterministic)
{
    const MixEntry entry{"swim", ""};
    const auto a = buildAloneWorkload(entry, 1);
    const auto b = buildAloneWorkload(entry, 1);
    for (int i = 0; i < 2000; ++i) {
        const MicroOp x = a->next();
        const MicroOp y = b->next();
        ASSERT_EQ(x.kind, y.kind);
        ASSERT_EQ(x.addr, y.addr);
        ASSERT_EQ(x.pc, y.pc);
    }
}

TEST(WorkloadMix, TraceMixNamesOneCorePerPath)
{
    const MixSpec spec = traceMix({"/tmp/a.fdptrace", "/tmp/b.fdptrace"});
    EXPECT_EQ(spec.numCores(), 2u);
    EXPECT_EQ(spec.entries[0].tracePath, "/tmp/a.fdptrace");
    EXPECT_TRUE(spec.entries[0].benchmark.empty());
}

TEST(WorkloadMix, EntryMustNameExactlyOneSource)
{
    MixSpec both;
    both.name = "bad";
    both.entries.push_back(MixEntry{"swim", "/tmp/x.fdptrace"});
    EXPECT_EXIT(buildMixWorkloads(both), testing::ExitedWithCode(1), "");
    MixSpec neither;
    neither.name = "bad2";
    neither.entries.push_back(MixEntry{"", ""});
    EXPECT_EXIT(buildMixWorkloads(neither), testing::ExitedWithCode(1),
                "");
}

TEST(WorkloadMix, DisplayNamePrefersTheBenchmark)
{
    EXPECT_EQ((MixEntry{"swim", ""}).displayName(), "swim");
    const std::string traceName =
        (MixEntry{"", "/tmp/foo.fdptrace"}).displayName();
    EXPECT_NE(traceName.find("foo"), std::string::npos);
}

} // namespace
} // namespace fdp
