/**
 * @file
 * Shared-hierarchy tests for the multi-core memory system: private L1s
 * over one L2/MSHR/DRAM, per-core attribution of misses, bus traffic,
 * and pollution, cross-core MSHR merging, and the stat-scoping
 * conservation audit.
 */

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <vector>

#include "mc/mc_memory_system.hh"
#include "prefetch/stream_prefetcher.hh"

namespace fdp
{
namespace
{

struct McSystem
{
    EventQueue events;
    StatGroup shared_stats{"mem"};
    std::deque<StatGroup> core_stats;
    std::vector<std::unique_ptr<StreamPrefetcher>> pfs;
    std::deque<FdpController> fdps;
    std::unique_ptr<McMemorySystem> mem;

    explicit McSystem(unsigned cores, bool with_prefetchers = false,
                      MachineParams mp = {})
    {
        std::vector<Prefetcher *> pf_ptrs;
        std::vector<FdpController *> fdp_ptrs;
        std::vector<StatGroup *> group_ptrs;
        for (unsigned i = 0; i < cores; ++i) {
            core_stats.emplace_back("c" + std::to_string(i));
            if (with_prefetchers) {
                StreamPrefetcherParams sp;
                sp.initialLevel = 5;
                pfs.push_back(std::make_unique<StreamPrefetcher>(sp));
            } else {
                pfs.push_back(nullptr);
            }
            FdpParams fp;
            fp.dynamicAggressiveness = false;
            fp.label = "fdp_controller.c" + std::to_string(i);
            fdps.emplace_back(fp, pfs.back().get(), core_stats.back());
            pf_ptrs.push_back(pfs.back().get());
            fdp_ptrs.push_back(&fdps.back());
            group_ptrs.push_back(&core_stats.back());
        }
        mem = std::make_unique<McMemorySystem>(mp, events, pf_ptrs,
                                               fdp_ptrs, shared_stats,
                                               group_ptrs);
    }

    /** Blocking demand load: returns the completion cycle. */
    Cycle
    load(unsigned core, Addr addr, Cycle now, Addr pc = 0x1000)
    {
        Cycle done = kNoCycle;
        mem->demandAccess(CoreId(core), addr, pc, false, now,
                          [&](Cycle c) { done = c; });
        events.serviceUntil(now + 1000000);
        return done;
    }
};

TEST(McMemorySystem, ColdMissPaysFullLatencyOnEachCore)
{
    McSystem s(2);
    EXPECT_EQ(s.load(0, 0x100000, 0), 2u + 10u + 500u);
    const Cycle t = s.events.horizon();
    EXPECT_EQ(s.load(1, 0x900000, t) - t, 2u + 10u + 500u);
    EXPECT_EQ(s.mem->l2Misses(CoreId(0)), 1u);
    EXPECT_EQ(s.mem->l2Misses(CoreId(1)), 1u);
    EXPECT_EQ(s.mem->demandAccesses(CoreId(0)), 1u);
    EXPECT_EQ(s.mem->demandAccesses(CoreId(1)), 1u);
    s.mem->audit();
}

TEST(McMemorySystem, L2IsSharedAcrossCores)
{
    McSystem s(2);
    s.load(0, 0x100000, 0);
    // Core 1's L1 is private (cold), but the block already sits in the
    // shared L2: 2 (L1 lookup) + 10 (L2 hit).
    const Cycle t = s.events.horizon();
    EXPECT_EQ(s.load(1, 0x100000, t) - t, 12u);
    EXPECT_EQ(s.mem->l2Misses(CoreId(1)), 0u);
}

TEST(McMemorySystem, L1sArePrivatePerCore)
{
    McSystem s(2);
    s.load(0, 0x100000, 0);
    Cycle t = s.events.horizon();
    s.load(0, 0x100000, t);
    // Core 0 hits its own L1 in 2 cycles...
    t = s.events.horizon();
    EXPECT_EQ(s.load(0, 0x100000, t) - t, 2u);
    // ...and that never warms core 1's L1.
    t = s.events.horizon();
    EXPECT_EQ(s.load(1, 0x100000, t) - t, 12u);
}

TEST(McMemorySystem, CrossCoreSecondaryMissMergesInMshr)
{
    McSystem s(2);
    std::vector<Cycle> done;
    s.mem->demandAccess(CoreId(0), 0x200000, 0, false, 0,
                        [&](Cycle c) { done.push_back(c); });
    s.mem->demandAccess(CoreId(1), 0x200008, 0, false, 1,
                        [&](Cycle c) { done.push_back(c); });
    s.events.serviceUntil(100000);
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0], done[1]);  // one fill serves both cores
    EXPECT_EQ(s.mem->dram().busAccesses(), 1u);
    s.mem->audit();
}

TEST(McMemorySystem, BusAccessesAttributedPerCore)
{
    McSystem s(2);
    Cycle t = 0;
    for (int i = 0; i < 6; ++i) {
        s.load(0, 0x1000000ull + i * 0x10000, t);
        t = s.events.horizon();
    }
    for (int i = 0; i < 3; ++i) {
        s.load(1, 0x8000000ull + i * 0x10000, t);
        t = s.events.horizon();
    }
    EXPECT_EQ(s.mem->dram().busAccessesByCore(CoreId(0)), 6u);
    EXPECT_EQ(s.mem->dram().busAccessesByCore(CoreId(1)), 3u);
    EXPECT_EQ(s.mem->dram().busAccesses(), 9u);
}

TEST(McMemorySystem, PrefetchFillsCreditTheIssuingCore)
{
    McSystem s(2, true);
    Cycle t = 0;
    for (int i = 0; i < 64; ++i) {
        s.load(0, 0x400000 + i * 64, t);
        t = s.events.horizon() + 2000;
    }
    // Only core 0 streamed: its controller saw every prefetch event.
    EXPECT_GT(s.fdps[0].counters().prefTotal().intervalValue(), 0u);
    EXPECT_EQ(s.fdps[1].counters().prefTotal().intervalValue(), 0u);
    s.mem->audit();
}

TEST(McMemorySystem, CrossCorePollutionAttributedToCauserAndVictim)
{
    MachineParams mp;
    mp.l2 = CacheParams{"L2", 8 * 1024, 4};  // 128 blocks, shared
    mp.l1 = CacheParams{"L1D", 1024, 2};     // nearly no L1 filtering
    McSystem s(2, true, mp);
    Cycle t = 0;
    // Core 0 fills the shared L2 with its demand working set.
    for (int i = 0; i < 128; ++i) {
        s.load(0, 0x10000000ull + i * 64, t);
        t = s.events.horizon() + 1000;
    }
    // Core 1 streams hard: its prefetch fills evict core 0's blocks.
    for (int i = 0; i < 256; ++i) {
        s.load(1, 0x20000000ull + i * 64, t);
        t = s.events.horizon() + 1000;
    }
    // Core 0 re-touches its set: the damage is already recorded.
    for (int i = 0; i < 128; ++i) {
        s.load(0, 0x10000000ull + i * 64, t);
        t = s.events.horizon() + 1000;
    }
    EXPECT_GT(s.mem->pollutionInflicted(CoreId(1)), 0u);
    EXPECT_GT(s.mem->crossPollutionSuffered(CoreId(0)), 0u);
    // Every block core 1 lost to a foreign prefetch was inflicted by
    // core 0, so the cross-suffered count can never exceed it.
    EXPECT_LE(s.mem->crossPollutionSuffered(CoreId(1)),
              s.mem->pollutionInflicted(CoreId(0)));
    s.mem->audit();
}

TEST(McMemorySystem, SamplingIntervalsStaySynchronized)
{
    MachineParams mp;
    mp.l2 = CacheParams{"L2", 8 * 1024, 4};
    McSystem s(2, true, mp);
    Cycle t = 0;
    // Enough shared-L2 evictions to pass several interval boundaries
    // (the audit asserts all controllers agree on the interval count).
    for (int i = 0; i < 512; ++i) {
        s.load(i % 2, (i % 2 ? 0x40000000ull : 0x10000000ull) + i * 64, t);
        t = s.events.horizon() + 500;
    }
    EXPECT_EQ(s.fdps[0].intervalsCompleted(),
              s.fdps[1].intervalsCompleted());
    s.mem->audit();
}

TEST(McMemorySystem, QuiescedAfterDrain)
{
    McSystem s(2, true);
    Cycle t = 0;
    for (int i = 0; i < 32; ++i) {
        s.load(i % 2, 0xC00000 + i * 64, t);
        t = s.events.horizon() + 1;
    }
    s.events.serviceUntil(t + 10000000);
    EXPECT_TRUE(s.mem->quiesced());
    s.mem->audit();
}

TEST(McMemorySystem, SingleCoreMatchesMemorySystemLatencies)
{
    // The 1-core McMemorySystem must reproduce MemorySystem's latency
    // composition exactly (the full parity run lives in
    // test_mc_machine.cc).
    McSystem s(1);
    EXPECT_EQ(s.load(0, 0x100000, 0), 512u);
    const Cycle t = s.events.horizon();
    EXPECT_EQ(s.load(0, 0x100000, t) - t, 2u);
}

TEST(McMemorySystem, PrefetchCacheModeIsRejected)
{
    MachineParams mp;
    mp.prefetchCache.enabled = true;
    EXPECT_EXIT(McSystem(2, true, mp), testing::ExitedWithCode(1),
                "prefetch cache");
}

TEST(McMemorySystem, StatConservationHoldsUnderMixedTraffic)
{
    McSystem s(4, true);
    Cycle t = 0;
    for (int i = 0; i < 256; ++i) {
        const unsigned c = i % 4;
        s.load(c, (Addr{c} << 30) + (i / 4) * 64, t);
        t = s.events.horizon() + (i % 3 == 0 ? 1 : 1500);
    }
    s.events.serviceUntil(t + 10000000);
    // audit() cross-checks every per-core counter column against its
    // shared total; any mis-scoped increment dies here.
    s.mem->audit();
    std::uint64_t demand = 0;
    for (unsigned c = 0; c < 4; ++c)
        demand += s.mem->demandAccesses(CoreId(c));
    EXPECT_EQ(demand, 256u);
}

} // namespace
} // namespace fdp
