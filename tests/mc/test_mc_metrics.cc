/**
 * @file
 * Multi-program metric math: weighted/harmonic speedup, the min/max
 * fairness index, and finalizeSpeedups wiring them into a co-run
 * result.
 */

#include <gtest/gtest.h>

#include "mc/mc_metrics.hh"

namespace fdp
{
namespace
{

TEST(McMetrics, WeightedSpeedupIsTheSum)
{
    EXPECT_DOUBLE_EQ(weightedSpeedup({}), 0.0);
    EXPECT_DOUBLE_EQ(weightedSpeedup({0.5, 0.75}), 1.25);
    EXPECT_DOUBLE_EQ(weightedSpeedup({1.0, 1.0, 1.0, 1.0}), 4.0);
}

TEST(McMetrics, HarmonicSpeedupBalancesThroughputAndFairness)
{
    EXPECT_DOUBLE_EQ(harmonicSpeedup({1.0, 1.0}), 1.0);
    EXPECT_DOUBLE_EQ(harmonicSpeedup({0.5, 0.5}), 0.5);
    // Equal weighted speedup, unequal shares: harmonic punishes it.
    EXPECT_LT(harmonicSpeedup({0.9, 0.1}), harmonicSpeedup({0.5, 0.5}));
    EXPECT_DOUBLE_EQ(harmonicSpeedup({}), 0.0);
    EXPECT_DOUBLE_EQ(harmonicSpeedup({0.7, 0.0}), 0.0);
}

TEST(McMetrics, FairnessIsMinOverMax)
{
    EXPECT_DOUBLE_EQ(fairnessMinMax({0.8, 0.8}), 1.0);
    EXPECT_DOUBLE_EQ(fairnessMinMax({0.25, 0.5}), 0.5);
    EXPECT_DOUBLE_EQ(fairnessMinMax({}), 0.0);
    EXPECT_DOUBLE_EQ(fairnessMinMax({0.0, 0.0}), 0.0);
}

TEST(McMetrics, FinalizeSpeedupsFillsEveryDerivedField)
{
    McRunResult r;
    r.mix = "m";
    r.config = "c";
    r.numCores = 2;
    r.cores.resize(2);
    r.cores[0].ipc = 0.5;
    r.cores[1].ipc = 0.9;
    finalizeSpeedups(r, {1.0, 1.2});
    EXPECT_DOUBLE_EQ(r.cores[0].aloneIpc, 1.0);
    EXPECT_DOUBLE_EQ(r.cores[0].speedup, 0.5);
    EXPECT_DOUBLE_EQ(r.cores[1].speedup, 0.75);
    EXPECT_DOUBLE_EQ(r.weightedSpeedup, 1.25);
    EXPECT_DOUBLE_EQ(r.harmonicSpeedup, 2.0 / (1.0 / 0.5 + 1.0 / 0.75));
    EXPECT_DOUBLE_EQ(r.fairness, 0.5 / 0.75);
}

TEST(McMetrics, FinalizeSpeedupsRejectsSizeMismatch)
{
    McRunResult r;
    r.cores.resize(2);
    EXPECT_EXIT(finalizeSpeedups(r, {1.0}), testing::ExitedWithCode(1),
                "baselines");
}

} // namespace
} // namespace fdp
