/**
 * @file
 * Mix sweep tests: parallel and sequential execution produce
 * bit-identical results (DESIGN.md §10), speedups come out finalized
 * against the right alone baselines, and the report tables / JSON
 * carry every metric.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "mc/mix_runner.hh"

namespace fdp
{
namespace
{

McLabeledConfig
labeled(const std::string &label, RunConfig base, unsigned cores,
        std::uint64_t insts)
{
    base.numInsts = insts;
    McLabeledConfig c;
    c.label = label;
    c.config.base = base;
    c.config.numCores = cores;
    return c;
}

MixSpec
benchMix(const char *name, std::vector<std::string> benches)
{
    MixSpec spec;
    spec.name = name;
    for (auto &b : benches)
        spec.entries.push_back(MixEntry{std::move(b), ""});
    return spec;
}

std::vector<McLabeledConfig>
twoConfigs(unsigned cores, std::uint64_t insts)
{
    return {labeled("static5", RunConfig::staticLevelConfig(5), cores,
                    insts),
            labeled("fdp", RunConfig::fullFdp(), cores, insts)};
}

void
expectIdenticalResults(const std::vector<McRunResult> &a,
                       const std::vector<McRunResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t c = 0; c < a.size(); ++c) {
        EXPECT_EQ(a[c].cycles, b[c].cycles);
        EXPECT_EQ(a[c].busAccesses, b[c].busAccesses);
        EXPECT_DOUBLE_EQ(a[c].weightedSpeedup, b[c].weightedSpeedup);
        EXPECT_DOUBLE_EQ(a[c].harmonicSpeedup, b[c].harmonicSpeedup);
        EXPECT_DOUBLE_EQ(a[c].fairness, b[c].fairness);
        ASSERT_EQ(a[c].cores.size(), b[c].cores.size());
        for (std::size_t i = 0; i < a[c].cores.size(); ++i) {
            EXPECT_EQ(a[c].cores[i].cycles, b[c].cores[i].cycles);
            EXPECT_DOUBLE_EQ(a[c].cores[i].ipc, b[c].cores[i].ipc);
            EXPECT_DOUBLE_EQ(a[c].cores[i].aloneIpc,
                             b[c].cores[i].aloneIpc);
            EXPECT_DOUBLE_EQ(a[c].cores[i].speedup,
                             b[c].cores[i].speedup);
        }
    }
}

TEST(MixRunner, JobCountNeverChangesTheResults)
{
    const MixSpec spec = benchMix("det", {"swim", "art"});
    const auto configs = twoConfigs(2, 25'000);
    const auto seq = runMixSweep(spec, configs, 1);
    const auto par = runMixSweep(spec, configs, 4);
    expectIdenticalResults(seq, par);
}

TEST(MixRunner, SpeedupsComeOutFinalized)
{
    const MixSpec spec = benchMix("fin", {"swim", "mgrid"});
    const auto results =
        runMixSweep(spec, twoConfigs(2, 25'000), 2);
    ASSERT_EQ(results.size(), 2u);
    for (const McRunResult &r : results) {
        for (const McCoreResult &c : r.cores) {
            EXPECT_GT(c.aloneIpc, 0.0);
            EXPECT_GT(c.speedup, 0.0);
            // Sharing the hierarchy cannot beat running alone.
            EXPECT_LE(c.speedup, 1.0);
        }
        EXPECT_GT(r.weightedSpeedup, 0.0);
        EXPECT_LE(r.weightedSpeedup, 2.0);
        EXPECT_GT(r.harmonicSpeedup, 0.0);
        EXPECT_GT(r.fairness, 0.0);
        EXPECT_LE(r.fairness, 1.0);
    }
}

TEST(MixRunner, DuplicateProgramsShareOneBaselinePerSeed)
{
    // Two swim copies run perturbed seeds, so they are distinct
    // baseline cells; their alone IPCs differ from each other but both
    // come out positive and finalized.
    const MixSpec spec = benchMix("dup", {"swim", "swim"});
    const auto results = runMixSweep(
        spec, {labeled("fdp", RunConfig::fullFdp(), 2, 25'000)}, 2);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_GT(results[0].cores[0].aloneIpc, 0.0);
    EXPECT_GT(results[0].cores[1].aloneIpc, 0.0);
}

TEST(MixRunner, TablesCoverEveryConfigAndCore)
{
    const MixSpec spec = benchMix("tab", {"swim", "art"});
    const auto results = runMixSweep(spec, twoConfigs(2, 15'000), 2);
    const Table percore = buildMixCoreTable(results);
    EXPECT_EQ(percore.numRows(), 4u);  // 2 configs x 2 cores
    const Table summary = buildMixSummaryTable(results);
    EXPECT_EQ(summary.numRows(), 2u);  // one per config
}

TEST(MixRunner, JsonCarriesRunAndPerCoreMetrics)
{
    const MixSpec spec = benchMix("json", {"swim", "art"});
    const auto results = runMixSweep(
        spec, {labeled("fdp", RunConfig::fullFdp(), 2, 15'000)}, 2);
    ResultsJson json("test");
    addMcRunResult(json, results[0]);
    std::ostringstream os;
    json.write(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("json/fdp/weighted_speedup"), std::string::npos);
    EXPECT_NE(out.find("json/fdp/harmonic_speedup"), std::string::npos);
    EXPECT_NE(out.find("json/fdp/fairness"), std::string::npos);
    EXPECT_NE(out.find("json/fdp/c0/swim/ipc"), std::string::npos);
    EXPECT_NE(out.find("json/fdp/c1/art/speedup"), std::string::npos);
    EXPECT_NE(out.find("json/fdp/c1/art/cross_pollution_suffered"),
              std::string::npos);
}

TEST(MixRunner, RejectsConfigWithWrongCoreCount)
{
    const MixSpec spec = benchMix("bad", {"swim", "art"});
    EXPECT_EXIT(
        runMixSweep(spec,
                    {labeled("fdp", RunConfig::fullFdp(), 4, 1000)}, 1),
        testing::ExitedWithCode(1), "cores");
}

} // namespace
} // namespace fdp
